// Quickstart: build an MLOC store from a synthetic field, run one
// value-constrained (region) query and one spatially-constrained (value)
// query, and print what the framework did.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/store.hpp"
#include "datagen/datagen.hpp"

using namespace mloc;

int main() {
  // 1. A synthetic 2-D "simulation output": 512 x 512 doubles.
  const Grid field = datagen::gts_like(512, /*seed=*/1);

  // 2. An emulated parallel file system (8 OSTs, 1 MiB stripes).
  pfs::PfsStorage fs;

  // 3. Create a store: 64 equal-frequency bins, 64x64 chunks in Hilbert
  //    order, PLoD byte columns compressed with the built-in mzip codec,
  //    levels prioritized V-M-S.
  MlocConfig cfg;
  cfg.shape = field.shape();
  cfg.layout.chunk_shape = NDShape{64, 64};
  cfg.layout.num_bins = 64;
  cfg.layout.codec = "mzip";
  cfg.layout.order = LevelOrder::kVMS;
  auto store = MlocStore::create(&fs, "quickstart", cfg);
  if (!store.is_ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 store.status().to_string().c_str());
    return 1;
  }
  if (Status s = store.value().write_variable("phi", field); !s.is_ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf(
      "ingested %llu points -> %llu KiB data + %llu KiB index on %zu"
      " subfiles\n",
      static_cast<unsigned long long>(field.size()),
      static_cast<unsigned long long>(store.value().data_bytes() >> 10),
      static_cast<unsigned long long>(store.value().index_bytes() >> 10),
      fs.num_files());

  // 4. Region query: where is phi in [0.5, 1.0)? (positions only)
  Query region_q;
  region_q.vc = ValueConstraint{0.5, 1.0};
  region_q.values_needed = false;
  auto region = store.value().execute("phi", region_q, /*num_ranks=*/4);
  if (!region.is_ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 region.status().to_string().c_str());
    return 1;
  }
  std::printf("region query: %zu qualifying points, %llu/%llu bins touched"
              " (%llu aligned), modeled %s\n",
              region.value().positions.size(),
              static_cast<unsigned long long>(region.value().bins_touched),
              64ull,
              static_cast<unsigned long long>(region.value().aligned_bins),
              region.value().times.to_string().c_str());

  // 5. Value query: fetch phi on the sub-plane [100,200) x [300,400).
  Query value_q;
  value_q.sc = Region(2, {100, 300}, {200, 400});
  auto values = store.value().execute("phi", value_q, 4);
  if (!values.is_ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 values.status().to_string().c_str());
    return 1;
  }
  double sum = 0;
  for (double v : values.value().values) sum += v;
  std::printf("value query: %zu values, mean %.4f, modeled %s\n",
              values.value().values.size(),
              sum / static_cast<double>(values.value().values.size()),
              values.value().times.to_string().c_str());
  return 0;
}
