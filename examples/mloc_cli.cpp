// mloc_cli — command-line front end over the MLOC public API, with stores
// persisted to host directories (pfs::PfsStorage::save_to_dir/load_from_dir).
//
//   mloc_cli build --out DIR [--dataset gts|s3d|velocity] [--edge N]
//            [--chunk C] [--bins B] [--codec NAME] [--order vms|vsm]
//            [--seed S] [--var NAME] [--threads T] [--write-behind]
//   mloc_cli info  --store DIR
//   mloc_cli query --store DIR [--var NAME] [--vc LO:HI]
//            [--sc LO:HI[,LO:HI...]] [--plod L] [--ranks R] [--region-only]
//
// Examples:
//   mloc_cli build --out /tmp/gts --dataset gts --edge 1024 --codec isobar
//   mloc_cli query --store /tmp/gts --vc 0.5:1.0 --region-only
//   mloc_cli query --store /tmp/gts --sc 100:200,300:400 --plod 2
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "compress/registry.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "planner/planner.hpp"

using namespace mloc;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has_flag(const std::string& name) const {
    for (const auto& f : flags) {
      if (f == name) return true;
    }
    return false;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.flags.push_back(token);
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mloc_cli build --out DIR [--dataset gts|s3d|velocity] [--edge N]\n"
      "           [--chunk C] [--bins B] [--codec NAME] [--order vms|vsm]\n"
      "           [--index-fanout F] [--seed S] [--var NAME] [--threads T]\n"
      "           [--write-behind]\n"
      "  mloc_cli info  --store DIR\n"
      "  mloc_cli query --store DIR [--var NAME] [--vc LO:HI]\n"
      "           [--sc LO:HI[,LO:HI...]] [--plod L] [--ranks R]"
      " [--region-only]\n"
      "  mloc_cli plan  --store DIR (same query options) [--max-ranks N]\n");
  return 2;
}

int fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

int cmd_build(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) return usage();
  const std::string dataset = args.get("dataset", "gts");
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(args.get("seed", "1").c_str()));
  const auto edge = static_cast<std::uint32_t>(
      std::atoi(args.get("edge", dataset == "gts" ? "1024" : "96").c_str()));
  const auto chunk = static_cast<std::uint32_t>(
      std::atoi(args.get("chunk", dataset == "gts" ? "128" : "32").c_str()));

  Grid grid;
  if (dataset == "gts") {
    grid = datagen::gts_like(edge, seed);
  } else if (dataset == "s3d") {
    grid = datagen::s3d_like(edge, seed);
  } else if (dataset == "velocity") {
    grid = datagen::s3d_velocity_like(edge, seed);
  } else {
    std::fprintf(stderr, "unknown dataset: %s\n", dataset.c_str());
    return 2;
  }

  MlocConfig cfg;
  cfg.shape = grid.shape();
  cfg.layout.chunk_shape = (grid.shape().ndims() == 2)
                        ? NDShape{chunk, chunk}
                        : NDShape{chunk, chunk, chunk};
  cfg.layout.num_bins = std::atoi(args.get("bins", "100").c_str());
  cfg.layout.codec = args.get("codec", "mzip");
  cfg.layout.order =
      args.get("order", "vms") == "vsm" ? LevelOrder::kVSM : LevelOrder::kVMS;
  cfg.layout.index_fanout = std::atoi(args.get("index-fanout", "0").c_str());

  pfs::PfsStorage fs;
  auto store = MlocStore::create(&fs, "store", cfg);
  if (!store.is_ok()) return fail(store.status());
  const std::string var = args.get("var", "v");
  ingest::WriteOptions wopts;
  wopts.threads = std::max(1, std::atoi(args.get("threads", "1").c_str()));
  wopts.write_behind = args.has_flag("write-behind");
  if (Status s = store.value().write_variable(var, grid, wopts); !s.is_ok()) {
    return fail(s);
  }
  if (Status s = fs.save_to_dir(out); !s.is_ok()) return fail(s);
  const ingest::IngestStats ist = store.value().ingest_stats();
  std::printf(
      "built %s %s store: %llu points, %.2f MB data + %.2f MB index -> %s\n"
      "ingest: %d thread(s)%s, %.3fs wall (partition %.3fs, encode %.3fs,"
      " fold %.3fs, flush %.3fs), %llu fragments\n",
      dataset.c_str(), cfg.layout.codec.c_str(),
      static_cast<unsigned long long>(grid.size()),
      static_cast<double>(store.value().data_bytes()) / 1e6,
      static_cast<double>(store.value().index_bytes()) / 1e6, out.c_str(),
      ist.threads, ist.write_behind ? " + write-behind" : "", ist.wall_s,
      ist.partition_s, ist.encode_s, ist.fold_s, ist.flush_s,
      static_cast<unsigned long long>(ist.fragments_encoded));
  return 0;
}

int cmd_info(const Args& args) {
  const std::string dir = args.get("store");
  if (dir.empty()) return usage();
  // The store borrows the storage; keep both in this scope.
  auto fs = pfs::PfsStorage::load_from_dir(dir);
  if (!fs.is_ok()) return fail(fs.status());
  auto opened = MlocStore::open(&fs.value(), "store");
  if (!opened.is_ok()) return fail(opened.status());
  const MlocStore& store = opened.value();
  const MlocConfig& cfg = store.config();
  std::printf("store %s\n", dir.c_str());
  std::printf("  shape       %s, chunks %s\n", cfg.shape.to_string().c_str(),
              cfg.layout.chunk_shape.to_string().c_str());
  std::printf("  bins        %d (equal frequency)\n", cfg.layout.num_bins);
  if (cfg.layout.index_fanout > 1) {
    std::printf("  bin index   hierarchical, fanout %d (.hbx)\n",
                cfg.layout.index_fanout);
  }
  std::printf("  codec       %s (%s)\n", cfg.layout.codec.c_str(),
              is_byte_codec(cfg.layout.codec) ? "PLoD byte columns" : "whole values");
  std::printf("  level order %s\n",
              std::string(level_order_name(cfg.layout.order)).c_str());
  std::printf("  data        %.2f MB, index %.2f MB\n",
              static_cast<double>(store.data_bytes()) / 1e6,
              static_cast<double>(store.index_bytes()) / 1e6);
  std::printf("  variables  ");
  for (const auto& v : store.variables()) std::printf(" %s", v.c_str());
  std::printf("\n");
  return 0;
}

bool parse_range(const std::string& text, double* lo, double* hi) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  *lo = std::atof(text.substr(0, colon).c_str());
  *hi = std::atof(text.substr(colon + 1).c_str());
  return true;
}

Result<Query> parse_query(const Args& args, const MlocStore& store) {
  Query q;
  if (const std::string vc = args.get("vc"); !vc.empty()) {
    double lo = 0, hi = 0;
    if (!parse_range(vc, &lo, &hi)) {
      return invalid_argument("--vc expects LO:HI");
    }
    q.vc = ValueConstraint{lo, hi};
  }
  if (const std::string sc = args.get("sc"); !sc.empty()) {
    Coord lo{}, hi{};
    int dim = 0;
    std::size_t begin = 0;
    while (begin <= sc.size() && dim < NDShape::kMaxDims) {
      const std::size_t comma = sc.find(',', begin);
      const std::string part = sc.substr(
          begin, comma == std::string::npos ? std::string::npos
                                            : comma - begin);
      double dlo = 0, dhi = 0;
      if (!parse_range(part, &dlo, &dhi)) {
        return invalid_argument("--sc expects LO:HI[,LO:HI...]");
      }
      lo[dim] = static_cast<std::uint32_t>(dlo);
      hi[dim] = static_cast<std::uint32_t>(dhi);
      ++dim;
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    if (dim != store.config().shape.ndims()) {
      return invalid_argument("--sc needs " +
                              std::to_string(store.config().shape.ndims()) +
                              " dimensions");
    }
    q.sc = Region(dim, lo, hi);
  }
  q.plod_level = std::atoi(args.get("plod", "7").c_str());
  q.values_needed = !args.has_flag("region-only");
  return q;
}

int cmd_query(const Args& args) {
  const std::string dir = args.get("store");
  if (dir.empty()) return usage();
  auto fs = pfs::PfsStorage::load_from_dir(dir);
  if (!fs.is_ok()) return fail(fs.status());
  auto opened = MlocStore::open(&fs.value(), "store");
  if (!opened.is_ok()) return fail(opened.status());
  const MlocStore& store = opened.value();

  auto parsed = parse_query(args, store);
  if (!parsed.is_ok()) return fail(parsed.status());
  const Query& q = parsed.value();
  const int ranks = std::atoi(args.get("ranks", "8").c_str());
  const std::string var =
      args.get("var", store.variables().empty() ? "v" : store.variables()[0]);

  auto res = store.execute(var, q, ranks);
  if (!res.is_ok()) return fail(res.status());
  std::printf("%zu qualifying points; %llu bins touched (%llu aligned),"
              " %.2f MB read\n",
              res.value().positions.size(),
              static_cast<unsigned long long>(res.value().bins_touched),
              static_cast<unsigned long long>(res.value().aligned_bins),
              static_cast<double>(res.value().bytes_read) / 1e6);
  std::printf("modeled %s\n", res.value().times.to_string().c_str());
  if (q.values_needed && !res.value().values.empty()) {
    double sum = 0, mn = res.value().values[0], mx = mn;
    for (double v : res.value().values) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    std::printf("values: mean %.6g, min %.6g, max %.6g\n",
                sum / static_cast<double>(res.value().values.size()), mn, mx);
  }
  return 0;
}

int cmd_plan(const Args& args) {
  const std::string dir = args.get("store");
  if (dir.empty()) return usage();
  auto fs = pfs::PfsStorage::load_from_dir(dir);
  if (!fs.is_ok()) return fail(fs.status());
  auto opened = MlocStore::open(&fs.value(), "store");
  if (!opened.is_ok()) return fail(opened.status());
  const MlocStore& store = opened.value();

  auto parsed = parse_query(args, store);
  if (!parsed.is_ok()) return fail(parsed.status());
  const Query& q = parsed.value();
  const std::string var =
      args.get("var", store.variables().empty() ? "v" : store.variables()[0]);
  const int max_ranks = std::atoi(args.get("max-ranks", "128").c_str());

  planner::QueryPlanner planner(&store);
  auto ranks = planner.recommend_ranks(var, q, max_ranks);
  if (!ranks.is_ok()) return fail(ranks.status());
  auto est = planner.estimate(var, q, ranks.value());
  if (!est.is_ok()) return fail(est.status());
  std::printf("plan for %s (recommended ranks: %d of max %d)\n", var.c_str(),
              ranks.value(), max_ranks);
  std::printf("  bins touched    %llu (%llu aligned)\n",
              static_cast<unsigned long long>(est.value().bins_touched),
              static_cast<unsigned long long>(est.value().aligned_bins));
  std::printf("  est fragments   %llu, est seeks %llu\n",
              static_cast<unsigned long long>(est.value().est_fragments),
              static_cast<unsigned long long>(est.value().est_seeks));
  std::printf("  est bytes       %.2f MB\n",
              static_cast<double>(est.value().est_bytes) / 1e6);
  std::printf("  est result size %.0f points\n", est.value().est_points);
  std::printf("  est I/O time    %.4f s\n", est.value().est_io_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "build") return cmd_build(args);
  if (args.command == "info") return cmd_info(args);
  if (args.command == "query") return cmd_query(args);
  if (args.command == "plan") return cmd_plan(args);
  return usage();
}
