// Progressive multiresolution exploration (paper §III-B-3): answer the
// same value query at increasing PLoD levels, reporting I/O saved and the
// accuracy of derived statistics at each precision — the
// "coarse-preview-then-refine" workflow PLoD enables.
//
//   $ ./examples/multires_explorer
#include <cmath>
#include <cstdio>

#include "analytics/analytics.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "plod/plod.hpp"

using namespace mloc;

int main() {
  std::printf("PLoD progressive refinement on an S3D-like field\n");
  const Grid field = datagen::s3d_like(96, /*seed=*/21);

  pfs::PfsStorage fs;
  MlocConfig cfg;
  cfg.shape = field.shape();
  cfg.layout.chunk_shape = NDShape{32, 32, 32};
  cfg.layout.num_bins = 40;
  cfg.layout.codec = "mzip";  // PLoD byte columns require a byte codec
  auto store = MlocStore::create(&fs, "mr", cfg);
  MLOC_CHECK(store.is_ok());
  MLOC_CHECK(store.value().write_variable("temperature", field).is_ok());

  const Region roi(3, {10, 10, 10}, {80, 80, 80});

  // Full-precision reference for error reporting.
  Query full;
  full.sc = roi;
  auto reference = store.value().execute("temperature", full, 8);
  MLOC_CHECK(reference.is_ok());
  const auto ref_stats = analytics::compute_stats(reference.value().values);

  std::printf("  %-12s %12s %14s %16s %14s\n", "PLoD", "bytes read",
              "modeled time", "max rel error", "mean error");
  for (int level = 1; level <= 7; ++level) {
    Query q;
    q.sc = roi;
    q.plod_level = level;
    auto res = store.value().execute("temperature", q, 8);
    MLOC_CHECK(res.is_ok());
    const double max_err = analytics::max_relative_error(
        reference.value().values, res.value().values);
    const auto stats = analytics::compute_stats(res.value().values);
    const double mean_err =
        std::abs(stats.mean - ref_stats.mean) / std::abs(ref_stats.mean);
    std::printf("  %d (%d bytes) %10.2f MB %12.4fs %15.3g %15.3g\n", level,
                plod::level_bytes(level),
                static_cast<double>(res.value().bytes_read) / 1e6,
                res.value().times.total(), max_err, mean_err);
  }
  std::printf(
      "level 2 (3 bytes) already bounds per-point error below %.3g —\n"
      "the paper's 0.008%% mean-analysis regime — at ~3/8 the I/O.\n",
      plod::level_max_relative_error(2));
  return 0;
}
