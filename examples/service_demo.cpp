// Serving-layer demo: a QueryService in front of one MLOC store, several
// client threads exploring the same field concurrently. Shows per-query
// ServiceStats (queue wait, cache hits, bytes saved) and the service-wide
// aggregates — the cache turns repeated exploration into index-only I/O.
//
//   $ ./examples/service_demo
#include <cstdio>
#include <thread>
#include <vector>

#include "datagen/datagen.hpp"
#include "service/query_service.hpp"

using namespace mloc;

int main() {
  // A 512x512 synthetic field in an MLOC-COL store (PLoD byte columns).
  const Grid field = datagen::gts_like(512, /*seed=*/1);
  pfs::PfsStorage fs;
  MlocConfig cfg;
  cfg.shape = field.shape();
  cfg.layout.chunk_shape = NDShape{64, 64};
  cfg.layout.num_bins = 64;
  cfg.layout.codec = "mzip";
  auto store = MlocStore::create(&fs, "svc_demo", cfg);
  if (!store.is_ok() || !store.value().write_variable("phi", field).is_ok()) {
    std::fprintf(stderr, "store setup failed\n");
    return 1;
  }

  // Service: 4 workers, 16 MiB fragment cache, FIFO admission.
  service::ServiceConfig svc_cfg;
  svc_cfg.num_workers = 4;
  svc_cfg.cache.budget_bytes = 16ull << 20;
  service::QueryService svc(std::move(store).value(), svc_cfg);

  // Three clients explore overlapping regions at mixed PLoD levels — the
  // pattern the fragment cache is built for.
  constexpr int kClients = 3;
  constexpr int kQueriesPerClient = 12;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&svc, t] {
      auto sid = svc.open_session("client-" + std::to_string(t));
      if (!sid.is_ok()) return;
      for (int i = 0; i < kQueriesPerClient; ++i) {
        service::Request req;
        req.var = "phi";
        const std::uint32_t off = 64u * static_cast<std::uint32_t>(i % 3);
        req.query.sc = Region(2, {off, 128}, {256 + off, 384});
        req.query.plod_level = (i % 2 == 0) ? 3 : 7;
        service::Response resp = svc.run(sid.value(), req);
        if (!resp.status.is_ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       resp.status.to_string().c_str());
          return;
        }
        if (t == 0) {  // one client narrates
          std::printf(
              "  q%-3llu level %d: %6zu values | wait %6.2f us | exec"
              " %7.2f us | modeled %7.3f ms | cache %llu hit / %llu partial"
              " / %llu miss, %llu KiB saved\n",
              static_cast<unsigned long long>(resp.stats.query_id),
              req.query.plod_level, resp.result.values.size(),
              resp.stats.queue_wait_s * 1e6, resp.stats.exec_wall_s * 1e6,
              resp.stats.modeled_s * 1e3,
              static_cast<unsigned long long>(resp.stats.cache.hits),
              static_cast<unsigned long long>(resp.stats.cache.partial_hits),
              static_cast<unsigned long long>(resp.stats.cache.misses),
              static_cast<unsigned long long>(resp.stats.cache.bytes_saved >>
                                              10));
        }
      }
      auto s = svc.session_stats(sid.value());
      if (s.is_ok()) {
        std::printf("session %-9s: %llu queries, modeled %.3f s total\n",
                    s.value().label.c_str(),
                    static_cast<unsigned long long>(s.value().completed),
                    s.value().total_modeled_s);
      }
    });
  }
  for (auto& c : clients) c.join();

  const auto agg = svc.aggregate();
  const auto cache = svc.cache_stats();
  const double hit_ratio =
      static_cast<double>(agg.cache.hits + agg.cache.partial_hits) /
      static_cast<double>(agg.cache.hits + agg.cache.partial_hits +
                          agg.cache.misses + 1e-12);
  std::printf(
      "\naggregate: %llu submitted, %llu completed | avg queue wait %.2f us"
      " | modeled %.3f s total\n",
      static_cast<unsigned long long>(agg.submitted),
      static_cast<unsigned long long>(agg.completed),
      agg.total_queue_wait_s / static_cast<double>(agg.completed) * 1e6,
      agg.total_modeled_s);
  std::printf(
      "cache: %.0f%% warm fragment ratio, %llu entries, %llu KiB resident,"
      " %llu evictions, %llu MiB of payload reads avoided\n",
      hit_ratio * 100.0, static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(cache.bytes_cached >> 10),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(agg.cache.bytes_saved >> 20));
  return 0;
}
