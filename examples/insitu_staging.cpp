// In-situ staging of a running "simulation" (paper contribution 4): time
// steps are handed to the MLOC pipeline asynchronously while the solver
// keeps computing; afterwards a spatio-temporal query tracks a feature
// (hot region) across the staged steps.
//
//   $ ./examples/insitu_staging
#include <cstdio>

#include "datagen/datagen.hpp"
#include "staging/staging.hpp"
#include "util/timer.hpp"

using namespace mloc;

int main() {
  std::printf("in-situ staging of 8 simulation time steps\n");
  constexpr std::uint32_t kEdge = 256;
  constexpr std::uint64_t kSteps = 8;

  pfs::PfsStorage fs;
  MlocConfig cfg;
  cfg.shape = NDShape{kEdge, kEdge};
  cfg.layout.chunk_shape = NDShape{64, 64};
  cfg.layout.num_bins = 32;
  cfg.layout.codec = "isobar";
  auto store = MlocStore::create(&fs, "sim", cfg);
  MLOC_CHECK(store.is_ok());

  Stopwatch wall;
  {
    staging::StagingPipeline pipeline(&store.value(), {.queue_capacity = 2});
    for (std::uint64_t t = 0; t < kSteps; ++t) {
      // The "solver": produce the next step (seed advances the flow).
      Grid step = datagen::gts_like(kEdge, 1000 + t);
      MLOC_CHECK(pipeline.submit("potential", t, std::move(step)).is_ok());
    }
    MLOC_CHECK(pipeline.finish().is_ok());
    const auto stats = pipeline.stats();
    std::printf(
        "  staged %llu steps (%.1f MB raw) in %.2fs wall; staging thread"
        " busy %.2fs,\n  producer blocked %.2fs (backpressure)\n",
        static_cast<unsigned long long>(stats.steps_staged),
        static_cast<double>(stats.bytes_in) / 1e6, wall.seconds(),
        stats.staging_seconds, stats.producer_wait_seconds);
  }
  std::printf("  store now holds %zu variables, %.1f MB data + %.1f MB"
              " index\n",
              store.value().variables().size(),
              static_cast<double>(store.value().data_bytes()) / 1e6,
              static_cast<double>(store.value().index_bytes()) / 1e6);

  // Spatio-temporal exploration: how does the hot region evolve?
  Query q;
  q.vc = ValueConstraint{0.8, 1e9};
  q.values_needed = false;
  auto series = staging::query_time_range(store.value(), "potential", 0,
                                          kSteps - 1, q, 4);
  MLOC_CHECK(series.is_ok());
  std::printf("  cells with potential > 0.8 per step:");
  for (const auto& res : series.value()) {
    std::printf(" %zu", res.positions.size());
  }
  std::printf("\n");
  return 0;
}
