// Climate scenario (paper §III-A-2): "for climate datasets, scientists may
// be mostly interested in queries of temperature values within a certain
// spatial region" — spatially-constrained value retrieval followed by
// statistics, on a store whose order favours full-precision spatial reads
// (V-S-M).
//
//   $ ./examples/climate_region_analysis
#include <cmath>
#include <cstdio>

#include "analytics/analytics.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"

using namespace mloc;

int main() {
  std::printf("S3D-like 3-D field, regional value retrieval + statistics\n");
  const Grid field = datagen::s3d_like(128, /*seed=*/11);

  pfs::PfsStorage fs;
  MlocConfig cfg;
  cfg.shape = field.shape();
  cfg.layout.chunk_shape = NDShape{32, 32, 32};
  cfg.layout.num_bins = 50;
  cfg.layout.codec = "mzip";
  cfg.layout.order = LevelOrder::kVSM;  // spatial access at full precision favored
  auto store = MlocStore::create(&fs, "climate", cfg);
  MLOC_CHECK(store.is_ok());
  MLOC_CHECK(store.value().write_variable("temperature", field).is_ok());

  // Three nested "regions of interest".
  const Region regions[] = {
      Region(3, {0, 0, 0}, {32, 32, 32}),
      Region(3, {16, 16, 16}, {80, 80, 80}),
      Region(3, {0, 0, 0}, {128, 128, 128}),
  };
  for (const Region& roi : regions) {
    Query q;
    q.sc = roi;
    auto res = store.value().execute("temperature", q, 8);
    MLOC_CHECK(res.is_ok());
    const auto stats = analytics::compute_stats(res.value().values);
    std::printf(
        "  region %-28s %8llu pts  mean %7.1f K  sd %6.1f  [%6.1f, %6.1f]"
        "  %.4fs\n",
        roi.to_string().c_str(), static_cast<unsigned long long>(stats.count),
        stats.mean, std::sqrt(stats.variance), stats.min, stats.max,
        res.value().times.total());
  }

  // Combined constraint: burning cells inside a region.
  Query q;
  q.sc = Region(3, {32, 0, 0}, {96, 128, 128});
  q.vc = ValueConstraint{2000.0, 1e9};
  auto res = store.value().execute("temperature", q, 8);
  MLOC_CHECK(res.is_ok());
  std::printf("  burning cells (T>2000K) in mid-slab: %zu (%.4fs)\n",
              res.value().positions.size(), res.value().times.total());
  return 0;
}
