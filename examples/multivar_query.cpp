// Multi-variable access (paper §III-D-4): select the spatial region where
// the temperature satisfies a constraint (region-only pass on variable A),
// then fetch the fuel mass fraction there (value retrieval on variable B
// through the shared position bitmap) — "what are the temperature values
// within New York, where the humidity is above 90%?" pattern.
//
//   $ ./examples/multivar_query
#include <cmath>
#include <cstdio>

#include "analytics/analytics.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"

using namespace mloc;

int main() {
  std::printf("multi-variable query: fuel fraction where T in [2000, 2400)\n");
  const Grid temperature = datagen::s3d_like(96, /*seed=*/31);
  const Grid fuel = datagen::s3d_species_like(temperature, /*seed=*/32);

  pfs::PfsStorage fs;
  MlocConfig cfg;
  cfg.shape = temperature.shape();
  cfg.layout.chunk_shape = NDShape{32, 32, 32};
  cfg.layout.num_bins = 50;
  cfg.layout.codec = "mzip";
  auto store = MlocStore::create(&fs, "mv", cfg);
  MLOC_CHECK(store.is_ok());
  MLOC_CHECK(store.value().write_variable("temperature", temperature).is_ok());
  MLOC_CHECK(store.value().write_variable("fuel", fuel).is_ok());

  const ValueConstraint burning{2000.0, 2400.0};
  auto res = store.value().multivar_query("temperature", burning, "fuel",
                                          /*plod_level=*/7, /*num_ranks=*/8);
  MLOC_CHECK(res.is_ok());

  const auto stats = analytics::compute_stats(res.value().values);
  std::printf(
      "  %llu burning cells; fuel fraction there: mean %.5f (sd %.5f)\n",
      static_cast<unsigned long long>(stats.count), stats.mean,
      std::sqrt(stats.variance));
  std::printf("  modeled %s\n", res.value().times.to_string().c_str());

  // Cross-check against the raw grids.
  double expect_sum = 0;
  std::uint64_t expect_n = 0;
  for (std::uint64_t i = 0; i < temperature.size(); ++i) {
    if (burning.matches(temperature.at_linear(i))) {
      expect_sum += fuel.at_linear(i);
      ++expect_n;
    }
  }
  MLOC_CHECK(expect_n == stats.count);
  std::printf("  verified against raw grids: %llu cells, mean %.5f\n",
              static_cast<unsigned long long>(expect_n),
              expect_sum / static_cast<double>(expect_n));
  return 0;
}
