// Fusion scenario (paper §III-A-2): "for fusion simulation datasets
// scientists may mainly be interested in queries of regions with
// temperature values higher than some threshold" — so the store is
// configured VC-first and queried with threshold region queries at several
// selectivities, comparing against a raw sequential scan.
//
//   $ ./examples/fusion_threshold_query
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/seqscan.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"

using namespace mloc;

int main() {
  std::printf("GTS-like fusion field, threshold region queries\n");
  const Grid field = datagen::gts_like(1024, /*seed=*/7);

  pfs::PfsStorage fs;
  MlocConfig cfg;
  cfg.shape = field.shape();
  cfg.layout.chunk_shape = NDShape{128, 128};
  cfg.layout.num_bins = 100;  // VC optimization first: fine-grained binning
  cfg.layout.codec = "isobar";
  auto store = MlocStore::create(&fs, "gts", cfg);
  MLOC_CHECK(store.is_ok());
  MLOC_CHECK(store.value().write_variable("temperature", field).is_ok());

  auto seqscan = baselines::SeqScanStore::create(&fs, "gts_raw", field);
  MLOC_CHECK(seqscan.is_ok());

  // Thresholds at decreasing quantiles of the field ("abnormally high").
  std::vector<double> sorted(field.values().begin(), field.values().end());
  std::sort(sorted.begin(), sorted.end());
  for (double quantile : {0.999, 0.99, 0.9}) {
    const double threshold =
        sorted[static_cast<std::size_t>(quantile * (sorted.size() - 1))];

    Query q;
    q.vc = ValueConstraint{threshold,
                           std::numeric_limits<double>::infinity()};
    q.values_needed = false;
    auto mloc_res = store.value().execute("temperature", q, 8);
    MLOC_CHECK(mloc_res.is_ok());

    auto scan_res = seqscan.value().region_query(*q.vc, false, 8);
    MLOC_CHECK(scan_res.is_ok());
    MLOC_CHECK(scan_res.value().positions == mloc_res.value().positions);

    std::printf(
        "  T > %+.4f (top %4.1f%%): %7zu points | MLOC %.4fs (%5.2f MB read,"
        " %llu bins) | scan %.4fs (%5.2f MB)\n",
        threshold, 100 * (1 - quantile), mloc_res.value().positions.size(),
        mloc_res.value().times.total(),
        static_cast<double>(mloc_res.value().bytes_read) / 1e6,
        static_cast<unsigned long long>(mloc_res.value().bins_touched),
        scan_res.value().times.total(),
        static_cast<double>(scan_res.value().bytes_read) / 1e6);
  }
  std::printf("answers verified identical against the sequential scan\n");
  return 0;
}
