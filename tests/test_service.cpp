// Serving-layer tests: FragmentCache hit/miss accounting and LRU eviction,
// PLoD prefix reuse through the store's FragmentProvider hook, QueryService
// sessions/admission/deadlines/cancellation/priorities, and a multi-thread
// hammer asserting served results are bit-identical to cold execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/datagen.hpp"
#include "plod/plod.hpp"
#include "service/fragment_cache.hpp"
#include "service/query_service.hpp"

namespace mloc {
namespace {

using service::FragmentCache;
using service::QueryService;
using service::Request;
using service::Response;
using service::ServiceConfig;
using service::SessionId;

MlocConfig small_config(const NDShape& shape, const NDShape& chunk,
                        const std::string& codec = "mzip") {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = 16;
  cfg.layout.codec = codec;
  cfg.layout.sample_stride = 7;
  return cfg;
}

Result<MlocStore> make_store(pfs::PfsStorage* fs,
                             const std::string& codec = "mzip") {
  Grid grid = datagen::gts_like(64, 42);
  auto store =
      MlocStore::create(fs, "svc", small_config(grid.shape(), NDShape{16, 16},
                                                codec));
  if (!store.is_ok()) return store;
  MLOC_RETURN_IF_ERROR(store.value().write_variable("phi", grid));
  return store;
}

std::shared_ptr<const FragmentData> make_data(std::uint64_t count,
                                              int depth) {
  auto d = std::make_shared<FragmentData>();
  d->count = count;
  for (int g = 0; g < depth; ++g) {
    d->planes.emplace_back(plod::group_bytes(g) * count, std::uint8_t{0xAB});
  }
  return d;
}

// ------------------------------------------------ FragmentCache directly

TEST(FragmentCache, LruEvictionAtByteBudget) {
  // One shard for a deterministic LRU order; budget fits two entries.
  auto data = make_data(256, 7);  // ~2 KiB each
  FragmentCache cache({/*budget_bytes=*/2 * data->byte_size() + 64,
                       /*shards=*/1});
  const FragmentKey a{"phi", 0, 0}, b{"phi", 1, 0}, c{"phi", 2, 0};
  cache.insert(a, data);
  cache.insert(b, data);
  EXPECT_NE(cache.lookup(a), nullptr);  // touch: b becomes LRU
  cache.insert(c, data);                // evicts b, not a
  EXPECT_NE(cache.lookup(a), nullptr);
  EXPECT_EQ(cache.lookup(b), nullptr);
  EXPECT_NE(cache.lookup(c), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes_cached, cache.config().budget_bytes);
}

TEST(FragmentCache, KeepsDeepestPrefix) {
  FragmentCache cache({1 << 20, 1});
  const FragmentKey k{"phi", 3, 7};
  cache.insert(k, make_data(64, 2));
  cache.insert(k, make_data(64, 5));  // upgrade
  auto got = cache.lookup(k);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->depth(), 5);
  cache.insert(k, make_data(64, 3));  // shallower: ignored
  got = cache.lookup(k);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->depth(), 5);
  EXPECT_EQ(cache.stats().upgrades, 1u);
}

TEST(FragmentCache, ZeroBudgetAdmitsNothing) {
  FragmentCache cache({0, 1});
  const FragmentKey k{"phi", 0, 0};
  cache.insert(k, make_data(64, 3));
  EXPECT_EQ(cache.lookup(k), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ------------------------------------- provider hook through the store

TEST(ServiceCache, HitMissAccountingAndIdenticalResults) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();
  FragmentCache cache({32 << 20, 4});
  store.value().set_fragment_provider(&cache);

  Query q;
  q.sc = Region(2, {8, 8}, {40, 48});
  auto cold = store.value().execute("phi", q);
  ASSERT_TRUE(cold.is_ok());
  EXPECT_GT(cold.value().cache.misses, 0u);
  EXPECT_EQ(cold.value().cache.hits, 0u);
  EXPECT_EQ(cold.value().cache.bytes_saved, 0u);

  auto warm = store.value().execute("phi", q);
  ASSERT_TRUE(warm.is_ok());
  EXPECT_EQ(warm.value().cache.misses, 0u);
  EXPECT_EQ(warm.value().cache.partial_hits, 0u);
  EXPECT_EQ(warm.value().cache.hits, warm.value().fragments_read);
  EXPECT_GT(warm.value().cache.bytes_saved, 0u);
  // Payload reads disappeared: only index/header bytes remain.
  EXPECT_LT(warm.value().bytes_read, cold.value().bytes_read);

  // Cached fragments must not change the answer in any way.
  EXPECT_EQ(warm.value().positions, cold.value().positions);
  EXPECT_EQ(warm.value().values, cold.value().values);
}

TEST(ServiceCache, PlodPrefixReuse) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  FragmentCache cache({32 << 20, 4});
  store.value().set_fragment_provider(&cache);

  Query q;
  q.sc = Region(2, {0, 0}, {32, 32});
  q.plod_level = 3;
  auto l3 = store.value().execute("phi", q);
  ASSERT_TRUE(l3.is_ok());
  EXPECT_GT(l3.value().cache.misses, 0u);

  // Level-2 request is answered entirely by the level-3 prefix entries.
  q.plod_level = 2;
  auto l2 = store.value().execute("phi", q);
  ASSERT_TRUE(l2.is_ok());
  EXPECT_EQ(l2.value().cache.hits, l2.value().fragments_read);
  EXPECT_EQ(l2.value().cache.misses, 0u);
  EXPECT_EQ(l2.value().cache.partial_hits, 0u);

  // Level-7 only fetches the missing planes 3..6 (partial hits), saving
  // exactly the bytes of the cached prefix.
  q.plod_level = 7;
  auto l7 = store.value().execute("phi", q);
  ASSERT_TRUE(l7.is_ok());
  EXPECT_EQ(l7.value().cache.partial_hits, l7.value().fragments_read);
  EXPECT_EQ(l7.value().cache.misses, 0u);
  EXPECT_GT(l7.value().cache.bytes_saved, 0u);
  EXPECT_LT(l7.value().cache.bytes_saved + l7.value().bytes_read,
            2 * l7.value().bytes_read);  // prefix < the re-read planes

  // Results at every level match a provider-less store bit for bit.
  pfs::PfsStorage cold_fs;
  auto cold = make_store(&cold_fs);
  ASSERT_TRUE(cold.is_ok());
  for (int level : {2, 3, 7}) {
    q.plod_level = level;
    auto warm_res = store.value().execute("phi", q);
    auto cold_res = cold.value().execute("phi", q);
    ASSERT_TRUE(warm_res.is_ok());
    ASSERT_TRUE(cold_res.is_ok());
    EXPECT_EQ(warm_res.value().positions, cold_res.value().positions);
    EXPECT_EQ(warm_res.value().values, cold_res.value().values);
  }
}

TEST(ServiceCache, WholeValueCodecCaches) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs, "isobar");
  ASSERT_TRUE(store.is_ok());
  FragmentCache cache({32 << 20, 4});
  store.value().set_fragment_provider(&cache);

  Query q;
  q.sc = Region(2, {8, 8}, {24, 24});
  auto cold = store.value().execute("phi", q);
  ASSERT_TRUE(cold.is_ok());
  auto warm = store.value().execute("phi", q);
  ASSERT_TRUE(warm.is_ok());
  EXPECT_EQ(warm.value().cache.hits, warm.value().fragments_read);
  EXPECT_EQ(warm.value().positions, cold.value().positions);
  EXPECT_EQ(warm.value().values, cold.value().values);
}

// ----------------------------------------------------- QueryService

ServiceConfig paused_config() {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.start_paused = true;
  return cfg;
}

TEST(QueryService, SessionLifecycleAndStats) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  QueryService svc(std::move(store).value());

  auto sid = svc.open_session("viz-client");
  ASSERT_TRUE(sid.is_ok());

  Request req;
  req.var = "phi";
  req.query.sc = Region(2, {0, 0}, {16, 16});
  Response resp = svc.run(sid.value(), req);
  ASSERT_TRUE(resp.status.is_ok()) << resp.status.to_string();
  EXPECT_FALSE(resp.result.positions.empty());
  EXPECT_GT(resp.stats.modeled_s, 0.0);
  EXPECT_EQ(resp.stats.session, sid.value());

  auto sstats = svc.session_stats(sid.value());
  ASSERT_TRUE(sstats.is_ok());
  EXPECT_EQ(sstats.value().label, "viz-client");
  EXPECT_EQ(sstats.value().submitted, 1u);
  EXPECT_EQ(sstats.value().completed, 1u);

  ASSERT_TRUE(svc.close_session(sid.value()).is_ok());
  Response closed = svc.run(sid.value(), req);
  EXPECT_EQ(closed.status.code(), ErrorCode::kFailedPrecondition);
  Response unknown = svc.run(999, req);
  EXPECT_EQ(unknown.status.code(), ErrorCode::kNotFound);

  const auto agg = svc.aggregate();
  EXPECT_EQ(agg.completed, 1u);
  EXPECT_EQ(agg.rejected, 2u);  // closed session + unknown session
  EXPECT_EQ(agg.sessions_opened, 1u);
  EXPECT_EQ(agg.sessions_open, 0u);
}

TEST(QueryService, QueryErrorsPropagate) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  QueryService svc(std::move(store).value());
  auto sid = svc.open_session();
  ASSERT_TRUE(sid.is_ok());

  Request bad;
  bad.var = "ghost";
  EXPECT_EQ(svc.run(sid.value(), bad).status.code(), ErrorCode::kNotFound);

  Request degenerate;
  degenerate.var = "phi";
  degenerate.query.vc = ValueConstraint{1.0, 1.0};
  EXPECT_EQ(svc.run(sid.value(), degenerate).status.code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.aggregate().failed, 2u);
}

TEST(QueryService, DeadlineExpiryWhileQueued) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  QueryService svc(std::move(store).value(), paused_config());
  auto sid = svc.open_session();
  ASSERT_TRUE(sid.is_ok());

  Request req;
  req.var = "phi";
  req.query.sc = Region(2, {0, 0}, {16, 16});
  req.deadline_s = 1e-4;
  auto sub = svc.submit(sid.value(), req);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  svc.resume();
  Response resp = sub.response.get();
  EXPECT_EQ(resp.status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_GE(resp.stats.queue_wait_s, 1e-4);
  EXPECT_EQ(svc.aggregate().expired, 1u);
}

TEST(QueryService, AdmissionControlRejectsWhenFull) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  ServiceConfig cfg = paused_config();
  cfg.max_queue_depth = 2;
  QueryService svc(std::move(store).value(), cfg);
  auto sid = svc.open_session();
  ASSERT_TRUE(sid.is_ok());

  Request req;
  req.var = "phi";
  req.query.sc = Region(2, {0, 0}, {16, 16});
  auto a = svc.submit(sid.value(), req);
  auto b = svc.submit(sid.value(), req);
  auto c = svc.submit(sid.value(), req);  // over the limit: rejected now
  Response rejected = c.response.get();
  EXPECT_EQ(rejected.status.code(), ErrorCode::kResourceExhausted);

  svc.resume();
  EXPECT_TRUE(a.response.get().status.is_ok());
  EXPECT_TRUE(b.response.get().status.is_ok());
  const auto agg = svc.aggregate();
  EXPECT_EQ(agg.rejected, 1u);
  EXPECT_EQ(agg.completed, 2u);
  EXPECT_EQ(agg.peak_queue_depth, 2u);
}

TEST(QueryService, CancelQueuedQuery) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  QueryService svc(std::move(store).value(), paused_config());
  auto sid = svc.open_session();
  ASSERT_TRUE(sid.is_ok());

  Request req;
  req.var = "phi";
  req.query.sc = Region(2, {0, 0}, {16, 16});
  auto sub = svc.submit(sid.value(), req);
  ASSERT_TRUE(svc.cancel(sub.id).is_ok());
  EXPECT_FALSE(svc.cancel(sub.id).is_ok());  // double cancel
  svc.resume();
  EXPECT_EQ(sub.response.get().status.code(), ErrorCode::kCancelled);
  EXPECT_EQ(svc.aggregate().cancelled, 1u);
  EXPECT_FALSE(svc.cancel(12345).is_ok());  // unknown id
}

TEST(QueryService, PrioritySchedulingRunsHighFirst) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  ServiceConfig cfg;
  cfg.num_workers = 1;  // serialize dispatch to observe the order
  cfg.policy = service::SchedulingPolicy::kPriority;
  cfg.start_paused = true;
  QueryService svc(std::move(store).value(), cfg);
  auto sid = svc.open_session();
  ASSERT_TRUE(sid.is_ok());

  Request req;
  req.var = "phi";
  req.query.sc = Region(2, {0, 0}, {8, 8});
  std::vector<service::Submission> subs;
  for (int prio : {0, 5, 1, 5}) {
    req.priority = prio;
    subs.push_back(svc.submit(sid.value(), req));
  }
  svc.resume();
  std::vector<double> wait(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    Response r = subs[i].response.get();
    ASSERT_TRUE(r.status.is_ok());
    wait[i] = r.stats.queue_wait_s;
  }
  // prio-5 queries (ids 1 and 3, submission order) dispatch before the
  // prio-1 and prio-0 ones; among equals, FIFO.
  EXPECT_LT(wait[1], wait[2]);
  EXPECT_LT(wait[3], wait[2]);
  EXPECT_LT(wait[1], wait[0]);
  EXPECT_LT(wait[2], wait[0]);
}

TEST(QueryService, ShutdownFailsUndispatchedQueries) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  auto svc = std::make_unique<QueryService>(std::move(store).value(),
                                            paused_config());
  auto sid = svc->open_session();
  ASSERT_TRUE(sid.is_ok());
  Request req;
  req.var = "phi";
  auto sub = svc->submit(sid.value(), req);
  svc.reset();  // never resumed
  EXPECT_EQ(sub.response.get().status.code(), ErrorCode::kFailedPrecondition);
}

// ------------------------------------------------------------- hammer

TEST(QueryService, HammerMatchesColdExecution) {
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  const NDShape shape = store.value().config().shape;

  // 64+ mixed VC / SC / PLoD queries, deterministic.
  Grid grid = datagen::gts_like(64, 42);
  Rng rng(20120910);
  std::vector<Request> requests;
  for (int i = 0; i < 72; ++i) {
    Request req;
    req.var = "phi";
    req.num_ranks = 1 + i % 3;
    const int kind = i % 4;
    if (kind == 0) {  // region-only VC query
      req.query.vc = datagen::random_vc(grid, 0.1, rng);
      req.query.values_needed = false;
    } else if (kind == 1) {  // SC value retrieval at a reduced level
      req.query.sc = datagen::random_sc(shape, 0.15, rng);
      req.query.plod_level = 1 + i % 7;
    } else if (kind == 2) {  // combined VC + SC
      req.query.vc = datagen::random_vc(grid, 0.3, rng);
      req.query.sc = datagen::random_sc(shape, 0.4, rng);
    } else {  // full-precision SC, repeated region flavor
      req.query.sc = Region(2, {8, 8}, {40, 56});
      req.query.plod_level = 7 - i % 3;
    }
    requests.push_back(std::move(req));
  }

  // Cold reference results, sequentially, before the store moves into the
  // service (execute is const and leaves no state behind).
  std::vector<QueryResult> expected;
  for (const auto& req : requests) {
    auto res = store.value().execute(req.var, req.query, req.num_ranks);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    expected.push_back(std::move(res).value());
  }

  ServiceConfig cfg;
  cfg.num_workers = 4;
  cfg.cache.budget_bytes = 8 << 20;
  cfg.cache.shards = 4;
  QueryService svc(std::move(store).value(), cfg);

  constexpr int kClients = 4;
  std::vector<std::vector<Response>> responses(kClients);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto sid = svc.open_session("client-" + std::to_string(t));
      ASSERT_TRUE(sid.is_ok());
      std::vector<service::Submission> subs;
      for (std::size_t i = t; i < requests.size(); i += kClients) {
        subs.push_back(svc.submit(sid.value(), requests[i]));
      }
      for (auto& sub : subs) {
        responses[t].push_back(sub.response.get());
      }
    });
  }
  for (auto& c : clients) c.join();

  // Bit-identical positions and values, regardless of thread interleaving
  // and cache state.
  for (int t = 0; t < kClients; ++t) {
    for (std::size_t j = 0; j < responses[t].size(); ++j) {
      const std::size_t i = t + j * kClients;
      const Response& r = responses[t][j];
      ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
      EXPECT_EQ(r.result.positions, expected[i].positions)
          << "query " << i;
      EXPECT_EQ(r.result.values, expected[i].values) << "query " << i;
    }
  }

  const auto agg = svc.aggregate();
  EXPECT_EQ(agg.submitted, requests.size());
  EXPECT_EQ(agg.completed, requests.size());
  EXPECT_GT(agg.cache.hits + agg.cache.partial_hits, 0u);  // reuse happened
  EXPECT_GT(svc.cache_stats().entries, 0u);
}

// ----------------------------------------------------------- live ingest

TEST(QueryService, ReingestInvalidatesCachedFragments) {
  // Regression: before epoch-keyed FragmentKeys, a warm cache kept serving
  // the replaced generation's decompressed payloads after a re-ingest.
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.cache.budget_bytes = 8 << 20;
  cfg.ingest = {.threads = 2, .write_behind = true};
  QueryService svc(std::move(store).value(), cfg);
  auto sid = svc.open_session("reingest");
  ASSERT_TRUE(sid.is_ok());

  Request req;
  req.var = "phi";
  req.query.sc = Region(2, {0, 0}, {32, 32});
  req.query.values_needed = true;
  Response cold = svc.run(sid.value(), req);
  ASSERT_TRUE(cold.status.is_ok());
  ASSERT_GT(svc.cache_stats().entries, 0u);

  Grid fresh = datagen::gts_like(64, 4242);
  ASSERT_TRUE(svc.ingest("phi", fresh).is_ok());
  EXPECT_EQ(svc.cache_stats().entries, 0u);  // old generation erased

  Response warm = svc.run(sid.value(), req);
  ASSERT_TRUE(warm.status.is_ok());
  ASSERT_EQ(warm.result.values.size(), 1024u);
  for (std::size_t i = 0; i < warm.result.values.size(); ++i) {
    const Coord c = fresh.shape().delinearize(warm.result.positions[i]);
    ASSERT_EQ(warm.result.values[i], fresh.at(c)) << i;
  }

  const auto agg = svc.aggregate();
  EXPECT_EQ(agg.ingests, 1u);
  EXPECT_EQ(agg.ingest_failures, 0u);
  // Cumulative across the store's lifetime: initial write + re-ingest.
  EXPECT_EQ(agg.ingest.cells_routed, 2 * fresh.size());
  EXPECT_TRUE(agg.ingest.write_behind);
}

TEST(QueryService, IngestWhileServingHammer) {
  // Clients query a stable variable while the main thread streams new
  // variables in through the parallel pipeline; every query must succeed
  // and match cold execution.
  pfs::PfsStorage fs;
  auto store = make_store(&fs);
  ASSERT_TRUE(store.is_ok());

  Query q;
  q.sc = Region(2, {8, 8}, {40, 56});
  q.values_needed = true;
  auto expected = store.value().execute("phi", q, 2);
  ASSERT_TRUE(expected.is_ok());

  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.cache.budget_bytes = 8 << 20;
  cfg.ingest = {.threads = 2, .write_behind = true};
  QueryService svc(std::move(store).value(), cfg);

  std::vector<std::thread> clients;
  clients.reserve(2);
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      auto sid = svc.open_session("hammer-" + std::to_string(t));
      ASSERT_TRUE(sid.is_ok());
      Request req;
      req.var = "phi";
      req.query = q;
      req.num_ranks = 2;
      for (int i = 0; i < 8; ++i) {
        Response resp = svc.run(sid.value(), req);
        ASSERT_TRUE(resp.status.is_ok()) << resp.status.to_string();
        EXPECT_EQ(resp.result.values, expected.value().values);
      }
    });
  }
  for (int round = 0; round < 4; ++round) {
    Grid hot = datagen::gts_like(64, 300 + round);
    ASSERT_TRUE(
        svc.ingest("hot" + std::to_string(round % 2), hot).is_ok());
  }
  for (auto& c : clients) c.join();

  const auto agg = svc.aggregate();
  EXPECT_EQ(agg.ingests, 4u);
  EXPECT_EQ(agg.failed, 0u);
}

}  // namespace
}  // namespace mloc
