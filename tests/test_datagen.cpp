// Tests for src/datagen: determinism, field properties the experiments
// rely on (smoothness, value spread), and workload selectivity accuracy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analytics/analytics.hpp"
#include "datagen/datagen.hpp"

namespace mloc::datagen {
namespace {

TEST(Datagen, GtsDeterministicPerSeed) {
  Grid a = gts_like(32, 5);
  Grid b = gts_like(32, 5);
  Grid c = gts_like(32, 6);
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
  EXPECT_FALSE(std::equal(a.values().begin(), a.values().end(),
                          c.values().begin()));
}

TEST(Datagen, GtsHasSpatialCoherence) {
  // Neighbor correlation: adjacent values much closer than random pairs.
  Grid g = gts_like(64, 7);
  double neighbor_diff = 0, random_diff = 0;
  Rng rng(1);
  int n = 0;
  for (std::uint32_t i = 0; i < 63; ++i) {
    for (std::uint32_t j = 0; j < 63; ++j) {
      neighbor_diff += std::abs(g.at({i, j}) - g.at({i, j + 1}));
      const Coord a{static_cast<std::uint32_t>(rng.next_below(64)),
                    static_cast<std::uint32_t>(rng.next_below(64))};
      const Coord b{static_cast<std::uint32_t>(rng.next_below(64)),
                    static_cast<std::uint32_t>(rng.next_below(64))};
      random_diff += std::abs(g.at(a) - g.at(b));
      ++n;
    }
  }
  EXPECT_LT(neighbor_diff, random_diff * 0.7);
}

TEST(Datagen, S3dTemperatureRangeIsPhysical) {
  Grid g = s3d_like(24, 8);
  const auto s = analytics::compute_stats(
      std::vector<double>(g.values().begin(), g.values().end()));
  EXPECT_GT(s.min, 500.0);
  EXPECT_LT(s.max, 2700.0);
  EXPECT_GT(s.max - s.min, 800.0);  // both burnt and unburnt regions exist
}

TEST(Datagen, SpeciesAntiCorrelatedWithTemperature) {
  Grid t = s3d_like(20, 9);
  Grid y = s3d_species_like(t, 10);
  // Correlation coefficient must be clearly negative.
  const auto ts = analytics::compute_stats(
      std::vector<double>(t.values().begin(), t.values().end()));
  const auto ys = analytics::compute_stats(
      std::vector<double>(y.values().begin(), y.values().end()));
  double cov = 0;
  for (std::uint64_t i = 0; i < t.size(); ++i) {
    cov += (t.at_linear(i) - ts.mean) * (y.at_linear(i) - ys.mean);
  }
  cov /= static_cast<double>(t.size());
  const double corr = cov / std::sqrt(ts.variance * ys.variance);
  EXPECT_LT(corr, -0.8);
}

class VcSelectivity : public ::testing::TestWithParam<double> {};

TEST_P(VcSelectivity, AchievesTargetWithin2x) {
  const double target = GetParam();
  Grid g = gts_like(128, 11);
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    const ValueConstraint vc = random_vc(g, target, rng);
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < g.size(); ++i) {
      if (vc.matches(g.at_linear(i))) ++hits;
    }
    const double actual = static_cast<double>(hits) /
                          static_cast<double>(g.size());
    EXPECT_GT(actual, target / 2) << "trial " << trial;
    EXPECT_LT(actual, target * 2 + 0.01) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, VcSelectivity,
                         ::testing::Values(0.01, 0.05, 0.1));

class ScSelectivity : public ::testing::TestWithParam<double> {};

TEST_P(ScSelectivity, VolumeMatchesTarget) {
  const double target = GetParam();
  Rng rng(13);
  const NDShape shapes[] = {NDShape{256, 256}, NDShape{64, 64, 64}};
  for (const auto& shape : shapes) {
    for (int trial = 0; trial < 10; ++trial) {
      const Region r = random_sc(shape, target, rng);
      EXPECT_TRUE(Region::whole(shape).contains(r));
      const double actual = static_cast<double>(r.volume()) /
                            static_cast<double>(shape.volume());
      EXPECT_GT(actual, target / 3);
      EXPECT_LT(actual, target * 3 + 0.01);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, ScSelectivity,
                         ::testing::Values(0.001, 0.01, 0.1));

}  // namespace
}  // namespace mloc::datagen
