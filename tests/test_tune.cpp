// Autotuner tests: trace JSON round-trip and strict parsing, the
// QueryService recorder hook, and the tuner itself — the recommendation
// must never predict worse than the default, must beat a deliberately
// mismatched default, and the predicted cost must be reproducible by
// re-ingesting under the recommended layout.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "datagen/datagen.hpp"
#include "planner/planner.hpp"
#include "service/query_service.hpp"
#include "tune/tuner.hpp"

namespace mloc::tune {
namespace {

QueryTrace sample_trace() {
  QueryTrace t;
  {
    TracedQuery tq;
    tq.var = "temp";
    tq.num_ranks = 2;
    tq.query.plod_level = 7;
    tq.query.values_needed = true;
    tq.query.vc = ValueConstraint{0.25, 0.75};
    tq.query.sc = Region(2, Coord{0, 0}, Coord{15, 31});
    t.queries.push_back(tq);
  }
  {
    TracedQuery tq;  // minimal: defaults everywhere
    tq.var = "salinity";
    t.queries.push_back(tq);
  }
  return t;
}

TEST(Trace, JsonRoundTrip) {
  const QueryTrace t = sample_trace();
  auto parsed = QueryTrace::from_json(t.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().queries.size(), 2u);

  const TracedQuery& a = parsed.value().queries[0];
  EXPECT_EQ(a.var, "temp");
  EXPECT_EQ(a.num_ranks, 2);
  EXPECT_EQ(a.query.plod_level, 7);
  EXPECT_TRUE(a.query.values_needed);
  ASSERT_TRUE(a.query.vc.has_value());
  EXPECT_DOUBLE_EQ(a.query.vc->lo, 0.25);
  EXPECT_DOUBLE_EQ(a.query.vc->hi, 0.75);
  ASSERT_TRUE(a.query.sc.has_value());
  EXPECT_EQ(a.query.sc->ndims(), 2);
  EXPECT_EQ(a.query.sc->hi(1), 31u);

  const TracedQuery& b = parsed.value().queries[1];
  EXPECT_EQ(b.var, "salinity");
  EXPECT_EQ(b.num_ranks, 1);
  EXPECT_FALSE(b.query.vc.has_value());
  EXPECT_FALSE(b.query.sc.has_value());

  // Serialization is canonical: a round-trip re-emits the same bytes.
  EXPECT_EQ(t.to_json(), parsed.value().to_json());
}

TEST(Trace, ParserRejectsMalformedDocuments) {
  const char* bad[] = {
      "",                                              // empty
      "{\"queries\":[",                                // truncated
      "{\"queries\":[{\"ranks\":1}]}",                 // missing var
      "{\"queries\":[{\"var\":\"t\",\"boom\":1}]}",    // unknown key
      "{\"queries\":[{\"var\":\"t\",\"ranks\":0}]}",   // ranks < 1
      "{\"queries\":[{\"var\":\"t\",\"plod_level\":8}]}",
      "{\"queries\":[{\"var\":\"t\",\"sc\":{\"lo\":[0,0],\"hi\":[3]}}]}",
      "{\"queries\":[{\"var\":\"t\",\"sc\":{\"lo\":[5],\"hi\":[3]}}]}",
      "{\"queries\":[]} trailing",                     // trailing content
  };
  for (const char* doc : bad) {
    auto parsed = QueryTrace::from_json(doc);
    EXPECT_FALSE(parsed.is_ok()) << doc;
  }
  EXPECT_TRUE(QueryTrace::from_json("{\"queries\":[]}").is_ok());
}

TEST(Trace, ServiceRecordsSuccessfulSingleVariableQueries) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 42);
  MlocConfig cfg;
  cfg.shape = grid.shape();
  cfg.layout.chunk_shape = NDShape{16, 16};
  cfg.layout.num_bins = 16;
  auto store = MlocStore::create(&fs, "svc", cfg);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  service::QueryService svc(std::move(store).value());
  TraceRecorder rec;
  svc.set_trace_recorder(&rec);
  auto session = svc.open_session("tune");
  ASSERT_TRUE(session.is_ok());

  service::Request ok_req;
  ok_req.var = "phi";
  ok_req.query.vc = ValueConstraint{0.3, 0.7};
  ok_req.num_ranks = 4;
  EXPECT_TRUE(svc.run(session.value(), ok_req).status.is_ok());

  service::Request bad_req;  // unknown variable: must not be recorded
  bad_req.var = "nope";
  EXPECT_FALSE(svc.run(session.value(), bad_req).status.is_ok());

  const QueryTrace trace = rec.snapshot();
  ASSERT_EQ(trace.queries.size(), 1u);
  EXPECT_EQ(trace.queries[0].var, "phi");
  EXPECT_EQ(trace.queries[0].num_ranks, 4);
  ASSERT_TRUE(trace.queries[0].query.vc.has_value());
  EXPECT_DOUBLE_EQ(trace.queries[0].query.vc->lo, 0.3);

  svc.set_trace_recorder(nullptr);
  EXPECT_TRUE(svc.run(session.value(), ok_req).status.is_ok());
  EXPECT_EQ(rec.size(), 1u);  // detached: no further records
}

// ------------------------------------------------------------- the tuner

/// Store whose default layout is deliberately mismatched with the
/// workload: coarse bins, small chunks, and a level order whose
/// reduced-precision reads scatter into many short runs. The trace is
/// dominated by selective reduced-precision value queries, so seeks (and
/// with finer bins, bytes) drop sharply under better settings.
struct TunerFixture {
  pfs::PfsStorage fs;
  Grid grid;
  Result<MlocStore> store;

  TunerFixture()
      : grid(datagen::gts_like(64, 3)), store(make_store()) {}

  Result<MlocStore> make_store() {
    MlocConfig cfg;
    cfg.shape = grid.shape();
    cfg.layout.chunk_shape = NDShape{16, 16};
    cfg.layout.num_bins = 2;
    cfg.layout.order = LevelOrder::kVMS;
    MLOC_ASSIGN_OR_RETURN(MlocStore s,
                          MlocStore::create(&fs, "tn", cfg));
    MLOC_RETURN_IF_ERROR(s.write_variable("temp", grid));
    return s;
  }

  static QueryTrace workload() {
    QueryTrace t;
    for (int i = 0; i < 4; ++i) {
      TracedQuery tq;
      tq.var = "temp";
      tq.num_ranks = 2;
      tq.query.plod_level = 2;
      tq.query.vc = ValueConstraint{0.40 + 0.02 * i, 0.55 + 0.02 * i};
      t.queries.push_back(tq);
    }
    return t;
  }

  static SearchSpace small_space() {
    SearchSpace space;
    space.bin_counts = {2, 8, 32};
    space.chunk_shapes = {NDShape{16, 16}, NDShape{32, 32}};
    space.interleave_samples = 1;
    space.random_restarts = 1;
    space.max_rounds = 3;
    return space;
  }
};

TEST(Tuner, RecommendationBeatsMismatchedDefault) {
  TunerFixture fx;
  ASSERT_TRUE(fx.store.is_ok()) << fx.store.status().to_string();

  auto tuned = tune_variable(fx.store.value(), "temp",
                             TunerFixture::workload(),
                             TunerFixture::small_space());
  ASSERT_TRUE(tuned.is_ok()) << tuned.status().to_string();
  const TuneResult& r = tuned.value();

  EXPECT_EQ(r.var, "temp");
  EXPECT_EQ(r.trace_queries, 4);
  EXPECT_GT(r.evaluations, 1);
  EXPECT_EQ(r.baseline.num_bins, 2);
  EXPECT_EQ(r.baseline.order, LevelOrder::kVMS);

  // Never worse than the default (the default is in the search space),
  // and for this mismatched setup strictly better.
  EXPECT_LE(r.predicted_cost_tuned, r.predicted_cost_default);
  EXPECT_LT(r.predicted_cost_tuned, 0.8 * r.predicted_cost_default);
  // Selective low-PLoD value queries want finer bins than the default 2.
  EXPECT_GT(r.recommended.num_bins, 2);
  // The recommendation must be ingestible as-is.
  EXPECT_TRUE(
      validate_layout(r.recommended, fx.grid.shape()).is_ok());
}

TEST(Tuner, PredictedTunedCostIsReproducible) {
  TunerFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  const QueryTrace trace = TunerFixture::workload();

  auto tuned = tune_variable(fx.store.value(), "temp", trace,
                             TunerFixture::small_space());
  ASSERT_TRUE(tuned.is_ok());

  // Re-ingest under the recommended layout and replay the trace through
  // the planner: the summed cost must equal the tuner's prediction.
  pfs::PfsStorage scratch;
  MlocConfig cfg;
  cfg.shape = fx.grid.shape();
  cfg.layout = tuned.value().recommended;
  auto replay = MlocStore::create(&scratch, "replay", cfg);
  ASSERT_TRUE(replay.is_ok());
  ASSERT_TRUE(replay.value().write_variable("temp", fx.grid).is_ok());

  planner::QueryPlanner planner(&replay.value());
  double total = 0.0;
  for (const TracedQuery& tq : trace.queries) {
    auto est = planner.estimate("temp", tq.query, tq.num_ranks);
    ASSERT_TRUE(est.is_ok());
    total += est.value().est_io_seconds;
  }
  EXPECT_NEAR(total, tuned.value().predicted_cost_tuned,
              1e-12 * std::abs(total));
}

TEST(Tuner, RejectsVariablesAbsentFromTrace) {
  TunerFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryTrace other;
  {
    TracedQuery tq;
    tq.var = "pressure";
    other.queries.push_back(tq);
  }
  auto tuned = tune_variable(fx.store.value(), "temp", other,
                             TunerFixture::small_space());
  ASSERT_FALSE(tuned.is_ok());
  EXPECT_EQ(tuned.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Tuner, ReportJsonCarriesCostsAndLayouts) {
  TuneResult r;
  r.var = "temp";
  r.baseline.num_bins = 2;
  r.recommended.num_bins = 32;
  r.recommended.curve = sfc::CurveKind::kGeneralizedMorton;
  r.recommended.interleave = "yxyx";
  r.predicted_cost_default = 2.0;
  r.predicted_cost_tuned = 0.5;
  r.evaluations = 9;
  r.trace_queries = 4;

  const std::string json = tune_report_json({r});
  EXPECT_NE(json.find("\"var\":\"temp\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_cost_default\":2"), std::string::npos);
  EXPECT_NE(json.find("\"predicted_cost_tuned\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"interleave\":\"yxyx\""), std::string::npos);
  EXPECT_NE(json.find("\"curve\":\"generalized-morton\""),
            std::string::npos);
  EXPECT_NE(json.find("\"evaluations\":9"), std::string::npos);
}

}  // namespace
}  // namespace mloc::tune
