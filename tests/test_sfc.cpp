// Tests for src/sfc: Hilbert/Morton mappings, curve orders over lattices,
// hierarchical multiresolution levels. Includes the locality property the
// MLOC design leans on (Hilbert beats Morton on neighbor distance).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "sfc/hilbert.hpp"

namespace mloc::sfc {
namespace {

int manhattan(const Coord& a, const Coord& b, int ndims) {
  int d = 0;
  for (int i = 0; i < ndims; ++i) {
    d += std::abs(static_cast<long>(a[i]) - static_cast<long>(b[i]));
  }
  return d;
}

TEST(Hilbert, Order1In2DMatchesCanonicalU) {
  // The order-1 2-D Hilbert curve visits (0,0),(0,1),(1,1),(1,0) (one of the
  // standard reflections; verify it is a U shape: 4 distinct cells, each
  // step adjacent).
  std::vector<Coord> cells;
  for (std::uint64_t i = 0; i < 4; ++i) cells.push_back(hilbert_axes(2, 1, i));
  std::set<std::pair<std::uint32_t, std::uint32_t>> distinct;
  for (auto& c : cells) distinct.insert({c[0], c[1]});
  EXPECT_EQ(distinct.size(), 4u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(manhattan(cells[i - 1], cells[i], 2), 1);
  }
}

// Parameterized bijectivity sweep over (ndims, order).
class HilbertBijection
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HilbertBijection, IndexAxesRoundTrip) {
  const auto [ndims, order] = GetParam();
  const std::uint64_t total = 1ull << (ndims * order);
  std::vector<bool> seen(total, false);
  NDShape cube(ndims, [&] {
    Coord c{};
    for (int d = 0; d < ndims; ++d) c[d] = 1u << order;
    return c;
  }());
  for (std::uint64_t off = 0; off < cube.volume(); ++off) {
    const Coord axes = cube.delinearize(off);
    const std::uint64_t h = hilbert_index(ndims, order, axes);
    ASSERT_LT(h, total);
    ASSERT_FALSE(seen[h]) << "collision at h=" << h;
    seen[h] = true;
    const Coord back = hilbert_axes(ndims, order, h);
    for (int d = 0; d < ndims; ++d) ASSERT_EQ(back[d], axes[d]);
  }
}

TEST_P(HilbertBijection, ConsecutiveIndicesAreFaceAdjacent) {
  // Defining property of the Hilbert curve: each step moves to a cell at
  // Manhattan distance exactly 1.
  const auto [ndims, order] = GetParam();
  const std::uint64_t total = 1ull << (ndims * order);
  Coord prev = hilbert_axes(ndims, order, 0);
  for (std::uint64_t h = 1; h < total; ++h) {
    const Coord cur = hilbert_axes(ndims, order, h);
    ASSERT_EQ(manhattan(prev, cur, ndims), 1) << "at h=" << h;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HilbertBijection,
                         ::testing::Values(std::tuple{2, 1}, std::tuple{2, 2},
                                           std::tuple{2, 3}, std::tuple{2, 5},
                                           std::tuple{3, 1}, std::tuple{3, 2},
                                           std::tuple{3, 3}, std::tuple{4, 1},
                                           std::tuple{4, 2}));

TEST(Morton, KnownInterleave2D) {
  // Morton of (x=1,y=0) with x the first axis: bits interleave x-first.
  EXPECT_EQ(morton_index(2, 1, {0, 0}), 0u);
  EXPECT_EQ(morton_index(2, 1, {0, 1}), 1u);
  EXPECT_EQ(morton_index(2, 1, {1, 0}), 2u);
  EXPECT_EQ(morton_index(2, 1, {1, 1}), 3u);
  EXPECT_EQ(morton_index(2, 2, {2, 3}), 0b1101u);
}

TEST(Morton, RoundTrip3D) {
  const int order = 3;
  for (std::uint64_t i = 0; i < (1ull << (3 * order)); ++i) {
    const Coord a = morton_axes(3, order, i);
    EXPECT_EQ(morton_index(3, order, a), i);
  }
}

TEST(CoveringOrder, SmallestEnclosingPowerOfTwo) {
  EXPECT_EQ(covering_order(NDShape{1}), 0);
  EXPECT_EQ(covering_order(NDShape{2, 2}), 1);
  EXPECT_EQ(covering_order(NDShape{3, 2}), 2);
  EXPECT_EQ(covering_order(NDShape{16, 16, 16}), 4);
  EXPECT_EQ(covering_order(NDShape{17, 4}), 5);
}

TEST(CurveOrder, RowMajorIsIdentity) {
  auto co = CurveOrder::make(CurveKind::kRowMajor, NDShape{3, 4});
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(co.rank_of(i), i);
    EXPECT_EQ(co.chunk_at(i), i);
  }
}

class CurveOrderPermutation
    : public ::testing::TestWithParam<std::tuple<CurveKind, int, int, int>> {};

TEST_P(CurveOrderPermutation, IsBijectiveOverRaggedLattice) {
  const auto [kind, a, b, c] = GetParam();
  NDShape lattice = (c > 0) ? NDShape{static_cast<std::uint32_t>(a),
                                      static_cast<std::uint32_t>(b),
                                      static_cast<std::uint32_t>(c)}
                            : NDShape{static_cast<std::uint32_t>(a),
                                      static_cast<std::uint32_t>(b)};
  auto co = CurveOrder::make(kind, lattice);
  EXPECT_EQ(co.size(), lattice.volume());
  std::vector<bool> seen(co.size(), false);
  for (std::uint32_t rank = 0; rank < co.size(); ++rank) {
    const ChunkId id = co.chunk_at(rank);
    ASSERT_LT(id, co.size());
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
    EXPECT_EQ(co.rank_of(id), rank);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CurveOrderPermutation,
    ::testing::Values(std::tuple{CurveKind::kHilbert, 4, 4, 0},
                      std::tuple{CurveKind::kHilbert, 5, 3, 0},
                      std::tuple{CurveKind::kHilbert, 7, 2, 3},
                      std::tuple{CurveKind::kMorton, 4, 4, 0},
                      std::tuple{CurveKind::kMorton, 6, 5, 0},
                      std::tuple{CurveKind::kMorton, 3, 3, 3},
                      std::tuple{CurveKind::kRowMajor, 5, 5, 0}));

// ------------------------------------------------ generalized Morton

TEST(Interleave, ParseAcceptsLettersAndDigits) {
  auto p = parse_interleave("zyXx", 3);
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value().slots, (std::vector<std::uint8_t>{2, 1, 0, 0}));
  EXPECT_EQ(p.value().bits[0], 2);
  EXPECT_EQ(p.value().bits[1], 1);
  EXPECT_EQ(p.value().bits[2], 1);
  auto digits = parse_interleave("210100", 3);
  ASSERT_TRUE(digits.is_ok());
  EXPECT_EQ(digits.value().slots,
            (std::vector<std::uint8_t>{2, 1, 0, 1, 0, 0}));
}

TEST(Interleave, ParseRejectsBadPatterns) {
  EXPECT_FALSE(parse_interleave("", 2).is_ok());
  EXPECT_FALSE(parse_interleave("xq", 2).is_ok());
  EXPECT_FALSE(parse_interleave("xyz", 2).is_ok());  // z outside 2-D
  EXPECT_FALSE(parse_interleave(std::string(65, 'x'), 1).is_ok());
}

TEST(Interleave, ValidateRequiresCoverage) {
  // y never appears.
  EXPECT_FALSE(validate_interleave("xxx", NDShape{8, 2}).is_ok());
  // y appears but 2^1 < 4.
  EXPECT_FALSE(validate_interleave("xxxy", NDShape{8, 4}).is_ok());
  EXPECT_TRUE(validate_interleave("xxxyy", NDShape{8, 4}).is_ok());
  // Extra head-room bits are legal.
  EXPECT_TRUE(validate_interleave("xxxxyyy", NDShape{8, 4}).is_ok());
}

TEST(GeneralizedMorton, IndexRoundTripsUnderArbitraryPatterns) {
  for (const char* pattern : {"xyxyxy", "yyxxxy", "xxxyyy", "yxyxyx"}) {
    auto p = parse_interleave(pattern, 2);
    ASSERT_TRUE(p.is_ok());
    for (std::uint32_t x = 0; x < 8; ++x) {
      for (std::uint32_t y = 0; y < 8; ++y) {
        const std::uint64_t h = generalized_morton_index(p.value(), {x, y});
        const Coord back = generalized_morton_axes(p.value(), h);
        EXPECT_EQ(back[0], x) << pattern;
        EXPECT_EQ(back[1], y) << pattern;
      }
    }
  }
}

TEST(GeneralizedMorton, CanonicalPatternEqualsClassicMorton) {
  // Differential: under the canonical interleave, the generalized mapping
  // must agree with morton_index cell-for-cell (classic Morton is the
  // special case the generalization collapses to).
  for (const NDShape& lattice :
       {NDShape{8, 8}, NDShape{16, 4}, NDShape{4, 4, 4}, NDShape{8, 2, 4}}) {
    const std::string pattern = canonical_interleave(lattice);
    auto p = parse_interleave(pattern, lattice.ndims());
    ASSERT_TRUE(p.is_ok());
    const int order = covering_order(lattice);
    for (std::uint64_t i = 0; i < lattice.volume(); ++i) {
      const Coord c = lattice.delinearize(i);
      EXPECT_EQ(generalized_morton_index(p.value(), c),
                morton_index(lattice.ndims(), order, c))
          << pattern << " at " << i;
    }
  }
}

TEST(GeneralizedMorton, CanonicalCurveOrderEqualsClassicMortonOrder) {
  // Same differential at the CurveOrder level, including ragged lattices
  // where out-of-lattice cube cells are skipped by dense re-ranking.
  for (const NDShape& lattice : {NDShape{8, 8}, NDShape{5, 3}, NDShape{7, 2, 3}}) {
    auto gen = CurveOrder::make_generalized(canonical_interleave(lattice),
                                            lattice);
    ASSERT_TRUE(gen.is_ok());
    const CurveOrder classic = CurveOrder::make(CurveKind::kMorton, lattice);
    ASSERT_EQ(gen.value().size(), classic.size());
    for (std::uint32_t id = 0; id < classic.size(); ++id) {
      EXPECT_EQ(gen.value().rank_of(id), classic.rank_of(id));
    }
  }
}

TEST(GeneralizedMorton, NonCanonicalPatternChangesTheOrder) {
  // A column-major-flavored pattern ("all y bits outermost") must produce a
  // genuinely different permutation — otherwise the search axis is dead.
  const NDShape lattice{8, 8};
  auto gen = CurveOrder::make_generalized("yyyxxx", lattice);
  ASSERT_TRUE(gen.is_ok());
  const CurveOrder classic = CurveOrder::make(CurveKind::kMorton, lattice);
  bool differs = false;
  for (std::uint32_t id = 0; id < classic.size(); ++id) {
    if (gen.value().rank_of(id) != classic.rank_of(id)) differs = true;
  }
  EXPECT_TRUE(differs);
  // And it is still a bijection.
  std::vector<bool> seen(gen.value().size(), false);
  for (std::uint32_t r = 0; r < gen.value().size(); ++r) {
    const ChunkId id = gen.value().chunk_at(r);
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
    EXPECT_EQ(gen.value().rank_of(id), r);
  }
}

TEST(GeneralizedMorton, MakeRejectsUncoveringPattern) {
  EXPECT_FALSE(CurveOrder::make_generalized("xy", NDShape{8, 8}).is_ok());
  EXPECT_FALSE(CurveOrder::make(CurveKind::kGeneralizedMorton, "xy",
                                NDShape{8, 8})
                   .is_ok());
  // Pattern-free kinds ignore the interleave argument.
  auto h = CurveOrder::make(CurveKind::kHilbert, "", NDShape{8, 8});
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(h.value().kind(), CurveKind::kHilbert);
}

// Number of contiguous curve-rank runs ("clusters", i.e. seeks) needed to
// cover every cell of `region` — the locality metric of Moon et al. that
// MLOC's seek-reduction argument rests on.
int cluster_count(const CurveOrder& co, const NDShape& lattice,
                  const Region& region) {
  std::vector<std::uint32_t> ranks;
  region.for_each([&](const Coord& c) {
    ranks.push_back(co.rank_of(static_cast<ChunkId>(lattice.linearize(c))));
  });
  std::sort(ranks.begin(), ranks.end());
  int runs = ranks.empty() ? 0 : 1;
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    if (ranks[i] != ranks[i - 1] + 1) ++runs;
  }
  return runs;
}

TEST(CurveOrder, HilbertClusteringBeatsMortonOnRandomRects) {
  // Moon et al. (TKDE'01): Hilbert achieves fewer clusters than Z-order for
  // rectangular queries on average. Sweep a grid of rectangle shapes.
  const NDShape lattice{32, 32};
  auto hil = CurveOrder::make(CurveKind::kHilbert, lattice);
  auto mor = CurveOrder::make(CurveKind::kMorton, lattice);
  long hil_total = 0, mor_total = 0;
  for (std::uint32_t w : {3u, 5u, 8u, 13u}) {
    for (std::uint32_t h : {3u, 5u, 8u, 13u}) {
      for (std::uint32_t x = 0; x + w <= 32; x += 5) {
        for (std::uint32_t y = 0; y + h <= 32; y += 5) {
          const Region q(2, {x, y}, {x + w, y + h});
          hil_total += cluster_count(hil, lattice, q);
          mor_total += cluster_count(mor, lattice, q);
        }
      }
    }
  }
  EXPECT_LT(hil_total, mor_total);
}

TEST(CurveOrder, HilbertBeatsRowMajorOnSlowDimensionColumns) {
  // A column along the slow (first) dimension costs one seek per cell in
  // row-major order but few seeks in Hilbert order — the pathological case
  // §III-B-2 motivates ("performance to access values in different
  // dimensions may vary greatly").
  const NDShape lattice{32, 32};
  auto hil = CurveOrder::make(CurveKind::kHilbert, lattice);
  auto row = CurveOrder::make(CurveKind::kRowMajor, lattice);
  long hil_total = 0, row_total = 0;
  for (std::uint32_t y = 0; y < 32; y += 3) {
    const Region column(2, {0, y}, {32, y + 1});
    hil_total += cluster_count(hil, lattice, column);
    row_total += cluster_count(row, lattice, column);
  }
  EXPECT_LT(static_cast<double>(hil_total), 0.75 * static_cast<double>(row_total));
}

TEST(HierLevel, PartitionsPositionsByDivisibility) {
  // 2-D, 3 levels, fanout 4: level 0 = positions divisible by 16,
  // level 1 = divisible by 4 but not 16, level 2 = the rest.
  const int levels = 3, ndims = 2;
  for (std::uint64_t p = 0; p < 64; ++p) {
    const int lvl = hier_level(p, levels, ndims);
    if (p % 16 == 0) {
      EXPECT_EQ(lvl, 0) << p;
    } else if (p % 4 == 0) {
      EXPECT_EQ(lvl, 1) << p;
    } else {
      EXPECT_EQ(lvl, 2) << p;
    }
  }
}

TEST(HierLevel, SingleLevelIsAlwaysZero) {
  for (std::uint64_t p = 0; p < 32; ++p) {
    EXPECT_EQ(hier_level(p, 1, 3), 0);
  }
}

TEST(HierOrder, IsPermutationWithLevelsContiguous) {
  const std::uint32_t total = 64;
  auto order = hier_order(total, 3, 2);
  ASSERT_EQ(order.size(), total);
  std::vector<bool> seen(total, false);
  int prev_level = 0;
  for (std::uint32_t pos : order) {
    ASSERT_LT(pos, total);
    ASSERT_FALSE(seen[pos]);
    seen[pos] = true;
    const int lvl = hier_level(pos, 3, 2);
    EXPECT_GE(lvl, prev_level);  // levels never decrease along the order
    prev_level = lvl;
  }
}

TEST(HierOrder, CoarsestLevelIsPrefix) {
  // Reading a prefix of the reordered layout must yield exactly the
  // level-0 subset — that is what makes subset-based multiresolution a
  // single contiguous read.
  auto order = hier_order(256, 3, 2);
  const std::size_t level0_count = 256 / 16;
  for (std::size_t i = 0; i < level0_count; ++i) {
    EXPECT_EQ(hier_level(order[i], 3, 2), 0);
  }
  EXPECT_EQ(hier_level(order[level0_count], 3, 2), 1);
}

}  // namespace
}  // namespace mloc::sfc
