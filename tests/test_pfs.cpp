// Tests for src/pfs: storage semantics, extent coalescing, and cost-model
// invariants (monotonicity in bytes/seeks, striping speedup, contention
// saturation with rank count — the mechanism behind paper Fig. 7).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pfs/pfs.hpp"

namespace mloc::pfs {
namespace {

Bytes make_bytes(std::size_t n, std::uint8_t fill = 0xAB) {
  return Bytes(n, fill);
}

// --------------------------------------------------------------- storage

TEST(PfsStorage, CreateOpenAppendRead) {
  PfsStorage fs;
  auto id = fs.create("bin_0.dat");
  ASSERT_TRUE(id.is_ok());
  EXPECT_TRUE(fs.append(id.value(), make_bytes(100, 1)).is_ok());
  EXPECT_TRUE(fs.append(id.value(), make_bytes(50, 2)).is_ok());
  EXPECT_EQ(fs.file_size(id.value()).value(), 150u);

  auto data = fs.read(id.value(), 90, 20);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value()[0], 1);
  EXPECT_EQ(data.value()[19], 2);

  EXPECT_EQ(fs.open("bin_0.dat").value(), id.value());
  EXPECT_FALSE(fs.open("missing").is_ok());
}

TEST(PfsStorage, DuplicateCreateFails) {
  PfsStorage fs;
  ASSERT_TRUE(fs.create("x").is_ok());
  EXPECT_FALSE(fs.create("x").is_ok());
}

TEST(PfsStorage, ReadPastEndFails) {
  PfsStorage fs;
  auto id = fs.create("f").value();
  ASSERT_TRUE(fs.append(id, make_bytes(10)).is_ok());
  EXPECT_FALSE(fs.read(id, 5, 10).is_ok());
  EXPECT_TRUE(fs.read(id, 5, 5).is_ok());
  EXPECT_TRUE(fs.read(id, 10, 0).is_ok());  // empty read at EOF is fine
}

TEST(PfsStorage, BadFileIdFails) {
  PfsStorage fs;
  EXPECT_FALSE(fs.read(99, 0, 1).is_ok());
  EXPECT_FALSE(fs.append(99, make_bytes(1)).is_ok());
  EXPECT_FALSE(fs.file_size(99).is_ok());
}

TEST(PfsStorage, ReadBatchReturnsPerRequestBuffersAndLogsEachExtent) {
  PfsStorage fs;
  auto a = fs.create("a").value();
  auto b = fs.create("b").value();
  ASSERT_TRUE(fs.append(a, make_bytes(100, 1)).is_ok());
  ASSERT_TRUE(fs.append(b, make_bytes(100, 2)).is_ok());

  const std::vector<ReadRequest> reqs = {
      {a, 10, 20}, {b, 0, 50}, {a, 90, 10}, {a, 0, 0}};
  IoLog log;
  auto out = fs.read_batch(reqs, &log, /*rank=*/3);
  ASSERT_TRUE(out.is_ok());
  ASSERT_EQ(out.value().size(), 4u);
  EXPECT_EQ(out.value()[0].size(), 20u);
  EXPECT_EQ(out.value()[0][0], 1);
  EXPECT_EQ(out.value()[1].size(), 50u);
  EXPECT_EQ(out.value()[1][0], 2);
  EXPECT_EQ(out.value()[3].size(), 0u);
  // One IoRecord per non-empty request, all tagged with the caller's rank.
  ASSERT_EQ(log.records().size(), 3u);
  for (const auto& rec : log.records()) EXPECT_EQ(rec.rank, 3u);
  EXPECT_EQ(log.total_bytes(), 80u);
}

TEST(PfsStorage, ReadBatchFailsAtomically) {
  PfsStorage fs;
  auto a = fs.create("a").value();
  ASSERT_TRUE(fs.append(a, make_bytes(100)).is_ok());

  // Any invalid request fails the whole batch before a byte is read or
  // logged — no partial results.
  IoLog log;
  const std::vector<ReadRequest> past_end = {{a, 0, 10}, {a, 95, 10}};
  EXPECT_FALSE(fs.read_batch(past_end, &log).is_ok());
  const std::vector<ReadRequest> bad_id = {{a, 0, 10}, {99, 0, 1}};
  EXPECT_FALSE(fs.read_batch(bad_id, &log).is_ok());
  EXPECT_TRUE(log.records().empty());
}

TEST(PfsStorage, TotalBytesAndListing) {
  PfsStorage fs;
  auto a = fs.create("a").value();
  auto b = fs.create("b").value();
  ASSERT_TRUE(fs.append(a, make_bytes(100)).is_ok());
  ASSERT_TRUE(fs.append(b, make_bytes(250)).is_ok());
  EXPECT_EQ(fs.total_bytes(), 350u);
  auto listing = fs.listing();
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0].first, "a");
  EXPECT_EQ(listing[1].second, 250u);
}

TEST(PfsStorage, ReadsAreLogged) {
  PfsStorage fs;
  auto id = fs.create("f").value();
  ASSERT_TRUE(fs.append(id, make_bytes(1000)).is_ok());
  IoLog log;
  ASSERT_TRUE(fs.read(id, 10, 100, &log, 3).is_ok());
  ASSERT_TRUE(fs.read(id, 500, 200, &log, 3).is_ok());
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].offset, 10u);
  EXPECT_EQ(log.records()[1].len, 200u);
  EXPECT_EQ(log.records()[1].rank, 3u);
  EXPECT_EQ(log.total_bytes(), 300u);
}

TEST(PfsStorage, SaveLoadRoundTripsThroughHostFilesystem) {
  const std::string dir = ::testing::TempDir() + "mloc_pfs_test";
  {
    PfsStorage fs;
    auto a = fs.create("store.meta").value();
    auto b = fs.create("store/var.bin0.dat").value();
    ASSERT_TRUE(fs.append(a, make_bytes(100, 7)).is_ok());
    ASSERT_TRUE(fs.append(b, make_bytes(5000, 9)).is_ok());
    ASSERT_TRUE(fs.save_to_dir(dir).is_ok());
  }
  auto loaded = PfsStorage::load_from_dir(dir);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().num_files(), 2u);
  auto a = loaded.value().open("store.meta");
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(loaded.value().file_size(a.value()).value(), 100u);
  auto b = loaded.value().open("store/var.bin0.dat");
  ASSERT_TRUE(b.is_ok());
  auto content = loaded.value().read(b.value(), 4990, 10);
  ASSERT_TRUE(content.is_ok());
  EXPECT_EQ(content.value(), make_bytes(10, 9));
}

TEST(PfsStorage, LoadFromMissingDirFails) {
  EXPECT_FALSE(PfsStorage::load_from_dir("/nonexistent/mloc").is_ok());
}

// ------------------------------------------------------------ cost model

PfsConfig test_cfg() {
  PfsConfig cfg;
  cfg.num_osts = 4;
  cfg.stripe_size = 1024;
  cfg.seek_latency_s = 0.010;
  cfg.ost_bandwidth_bps = 1.0e6;
  cfg.open_latency_s = 0.001;
  return cfg;
}

TEST(PfsModel, EmptyLogCostsNothing) {
  IoLog log;
  EXPECT_DOUBLE_EQ(model_makespan(test_cfg(), log, 1), 0.0);
}

TEST(PfsModel, SingleSmallReadCostsSeekPlusTransferPlusOpen) {
  IoLog log;
  log.add(0, 0, 1000, 0);  // fits one stripe
  const auto cfg = test_cfg();
  const double expect = 0.001 + 0.010 + 1000.0 / 1.0e6;
  EXPECT_NEAR(model_makespan(cfg, log, 1), expect, 1e-12);
}

TEST(PfsModel, ContiguousReadsCoalesceIntoOneSeek) {
  const auto cfg = test_cfg();
  IoLog split;
  split.add(0, 0, 500, 0);
  split.add(0, 500, 500, 0);
  IoLog whole;
  whole.add(0, 0, 1000, 0);
  EXPECT_DOUBLE_EQ(model_makespan(cfg, split, 1),
                   model_makespan(cfg, whole, 1));
}

TEST(PfsModel, ScatteredReadsPayMoreSeeks) {
  const auto cfg = test_cfg();
  IoLog scattered;
  IoLog contiguous;
  // Same total bytes, 10 extents vs 1.
  for (int i = 0; i < 10; ++i) {
    scattered.add(0, static_cast<std::uint64_t>(i) * 10000, 100, 0);
  }
  contiguous.add(0, 0, 1000, 0);
  EXPECT_GT(model_makespan(cfg, scattered, 1),
            model_makespan(cfg, contiguous, 1) + 8 * cfg.seek_latency_s);
}

TEST(PfsModel, MoreBytesNeverCheaper) {
  const auto cfg = test_cfg();
  IoLog small, large;
  small.add(0, 0, 10000, 0);
  large.add(0, 0, 50000, 0);
  EXPECT_LT(model_makespan(cfg, small, 1), model_makespan(cfg, large, 1));
}

TEST(PfsModel, StripedLargeReadRunsFasterThanSingleOst) {
  const auto cfg = test_cfg();  // 4 OSTs, 1 KiB stripes
  IoLog log;
  log.add(0, 0, 64 * 1024, 0);  // spans 64 stripes -> all 4 OSTs
  const double t = model_makespan(cfg, log, 1);
  const double single_ost = 0.001 + 0.010 + 64.0 * 1024 / 1.0e6;
  // Should approach a 4x transfer speedup (per-rank bound); the OST-load
  // bound (each OST serves 1/4 of the bytes) does not dominate here.
  EXPECT_LT(t, single_ost * 0.5);
  EXPECT_GE(t, 0.001 + 0.010 + 64.0 * 1024 / (4 * 1.0e6) - 1e-12);
}

TEST(PfsModel, PerfectlyParallelRanksScaleUntilOstsSaturate) {
  // Mechanism check for Fig. 7: doubling ranks halves per-rank time while
  // OST aggregate stays constant; once per-OST load dominates, scaling
  // stops.
  const auto cfg = test_cfg();
  // Seek-dominated workload: 1024 scattered small reads over 16 files.
  const int total_reads = 1024;
  std::vector<double> times;
  for (int ranks : {1, 2, 4, 8, 16, 32}) {
    IoLog log;
    for (int i = 0; i < total_reads; ++i) {
      const auto file = static_cast<FileId>(i % 16);
      const std::uint64_t off = static_cast<std::uint64_t>(i) * 100000;
      log.add(file, off, 512, static_cast<std::uint32_t>(i % ranks));
    }
    times.push_back(model_makespan(cfg, log, ranks));
  }
  EXPECT_LT(times[1], times[0] * 0.6);  // 2 ranks beat 1
  EXPECT_LT(times[2], times[1] * 0.6);  // 4 beat 2
  // Saturation: the last doubling gains little (<25% improvement) because
  // the per-OST aggregate (seeks + bytes on 4 OSTs) becomes the bound.
  EXPECT_GT(times[5], times[4] * 0.75);
}

TEST(PfsModel, DetailBoundsAreConsistent) {
  const auto cfg = test_cfg();
  IoLog log;
  log.add(0, 0, 100000, 0);
  log.add(1, 0, 100000, 1);
  const auto detail = model_makespan_detail(cfg, log, 2);
  EXPECT_GT(detail.slowest_rank_s, 0.0);
  EXPECT_GT(detail.busiest_ost_s, 0.0);
  EXPECT_DOUBLE_EQ(detail.makespan(),
                   std::max(detail.slowest_rank_s, detail.busiest_ost_s));
  EXPECT_DOUBLE_EQ(model_makespan(cfg, log, 2), detail.makespan());
}

TEST(PfsModel, OpensChargedPerDistinctFile) {
  const auto cfg = test_cfg();
  IoLog one_file, three_files;
  for (int i = 0; i < 3; ++i) {
    one_file.add(0, static_cast<std::uint64_t>(i) * 100000, 100, 0);
    three_files.add(static_cast<FileId>(i), static_cast<std::uint64_t>(i) * 100000, 100, 0);
  }
  // Same seeks/bytes; the three-file log pays two extra opens.
  EXPECT_NEAR(model_makespan(cfg, three_files, 1),
              model_makespan(cfg, one_file, 1) + 2 * cfg.open_latency_s,
              1e-9);
}

TEST(PfsModel, ColumnAssignmentTouchesFewerFilesThanRoundRobin) {
  // Paper §III-D: assigning as many blocks as possible of a single bin
  // (file) to one process minimizes opens/contention. Verify the model
  // rewards that choice.
  const auto cfg = test_cfg();
  const int ranks = 4, files = 4, blocks_per_file = 8;
  const std::uint64_t block = 1000;

  IoLog column, round_robin;
  int idx = 0;
  for (int f = 0; f < files; ++f) {
    for (int b = 0; b < blocks_per_file; ++b, ++idx) {
      const std::uint64_t off = static_cast<std::uint64_t>(b) * 50000;
      // Column order: file f entirely handled by rank f.
      column.add(static_cast<FileId>(f), off, block,
                 static_cast<std::uint32_t>(f));
      // Round robin: block idx handled by rank idx % ranks.
      round_robin.add(static_cast<FileId>(f), off, block,
                      static_cast<std::uint32_t>(idx % ranks));
    }
  }
  EXPECT_LT(model_makespan(cfg, column, ranks),
            model_makespan(cfg, round_robin, ranks));
}

}  // namespace
}  // namespace mloc::pfs
