// Tests for src/baselines: each comparator must return exactly the same
// answers as a brute-force scan (they differ from MLOC in cost, never in
// correctness), plus the cost-shape properties the paper's comparison
// rests on (FastBit's index-load dominance, SciDB's scan-everything VC).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/fastbit_like.hpp"
#include "baselines/scidb_like.hpp"
#include "baselines/seqscan.hpp"
#include "datagen/datagen.hpp"

namespace mloc::baselines {
namespace {

Grid test_grid() { return datagen::gts_like(64, 7); }

struct Truth {
  std::vector<std::uint64_t> positions;
  std::vector<double> values;
};

Truth brute_vc(const Grid& g, ValueConstraint vc) {
  Truth t;
  for (std::uint64_t i = 0; i < g.size(); ++i) {
    if (vc.matches(g.at_linear(i))) {
      t.positions.push_back(i);
      t.values.push_back(g.at_linear(i));
    }
  }
  return t;
}

Truth brute_sc(const Grid& g, const Region& sc) {
  Truth t;
  for (std::uint64_t i = 0; i < g.size(); ++i) {
    if (sc.contains(g.shape().delinearize(i))) {
      t.positions.push_back(i);
      t.values.push_back(g.at_linear(i));
    }
  }
  return t;
}

// --------------------------------------------------------------- seqscan

TEST(SeqScan, RegionQueryMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SeqScanStore::create(&fs, "s", g);
  ASSERT_TRUE(store.is_ok());
  const ValueConstraint vc{-0.2, 0.3};
  auto res = store.value().region_query(vc, /*values_needed=*/true);
  ASSERT_TRUE(res.is_ok());
  const Truth t = brute_vc(g, vc);
  EXPECT_EQ(res.value().positions, t.positions);
  EXPECT_EQ(res.value().values, t.values);
  // Full scan: reads the whole file.
  EXPECT_EQ(res.value().bytes_read, g.size() * sizeof(double));
}

TEST(SeqScan, ValueQueryMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SeqScanStore::create(&fs, "s", g);
  ASSERT_TRUE(store.is_ok());
  const Region sc(2, {5, 9}, {31, 44});
  auto res = store.value().value_query(sc);
  ASSERT_TRUE(res.is_ok());
  const Truth t = brute_sc(g, sc);
  EXPECT_EQ(res.value().positions, t.positions);
  EXPECT_EQ(res.value().values, t.values);
  // Partial read: far less than the whole file.
  EXPECT_LT(res.value().bytes_read, g.size() * sizeof(double) / 2);
}

TEST(SeqScan, RankCountDoesNotChangeAnswers) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SeqScanStore::create(&fs, "s", g);
  ASSERT_TRUE(store.is_ok());
  const ValueConstraint vc{0.0, 0.4};
  auto r1 = store.value().region_query(vc, true, 1);
  auto r8 = store.value().region_query(vc, true, 8);
  ASSERT_TRUE(r1.is_ok() && r8.is_ok());
  EXPECT_EQ(r1.value().positions, r8.value().positions);
  EXPECT_EQ(r1.value().values, r8.value().values);
}

TEST(SeqScan, OpenValidatesSize) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  ASSERT_TRUE(SeqScanStore::create(&fs, "s", g).is_ok());
  EXPECT_TRUE(SeqScanStore::open(&fs, "s", g.shape()).is_ok());
  EXPECT_FALSE(SeqScanStore::open(&fs, "s", NDShape{8, 8}).is_ok());
}

// --------------------------------------------------------------- fastbit

TEST(FastBit, RegionQueryMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = FastBitStore::create(&fs, "f", g, 64);
  ASSERT_TRUE(store.is_ok());
  const ValueConstraint vc{-0.15, 0.25};
  auto res = store.value().region_query(vc, /*values_needed=*/true);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const Truth t = brute_vc(g, vc);
  EXPECT_EQ(res.value().positions, t.positions);
  EXPECT_EQ(res.value().values, t.values);
}

TEST(FastBit, ValueQueryMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = FastBitStore::create(&fs, "f", g, 64);
  ASSERT_TRUE(store.is_ok());
  const Region sc(2, {0, 10}, {20, 60});
  auto res = store.value().value_query(sc);
  ASSERT_TRUE(res.is_ok());
  const Truth t = brute_sc(g, sc);
  EXPECT_EQ(res.value().positions, t.positions);
  EXPECT_EQ(res.value().values, t.values);
}

TEST(FastBit, EveryQueryPaysTheFullIndexLoad) {
  // The paper's explanation of FastBit's poor disk-resident performance.
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = FastBitStore::create(&fs, "f", g, 64);
  ASSERT_TRUE(store.is_ok());
  const std::uint64_t index_size = store.value().index_bytes();
  ASSERT_GT(index_size, 0u);
  // Even a tiny value query reads >= the index size.
  auto res = store.value().value_query(Region(2, {0, 0}, {2, 2}));
  ASSERT_TRUE(res.is_ok());
  EXPECT_GE(res.value().bytes_read, index_size);
}

TEST(FastBit, FineBinningInflatesIndex) {
  pfs::PfsStorage fs1, fs2;
  Grid g = test_grid();
  auto coarse = FastBitStore::create(&fs1, "f", g, 16);
  auto fine = FastBitStore::create(&fs2, "f", g, 1000);
  ASSERT_TRUE(coarse.is_ok() && fine.is_ok());
  EXPECT_GT(fine.value().index_bytes(), coarse.value().index_bytes());
}

TEST(FastBit, OpenReadsScheme) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  ASSERT_TRUE(FastBitStore::create(&fs, "f", g, 32).is_ok());
  auto reopened = FastBitStore::open(&fs, "f", g.shape());
  ASSERT_TRUE(reopened.is_ok());
  const ValueConstraint vc{0.0, 0.2};
  auto res = reopened.value().region_query(vc, false);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(res.value().positions, brute_vc(g, vc).positions);
}

// ----------------------------------------------------------------- scidb

SciDbStore::Options scidb_opts() {
  SciDbStore::Options opts;
  opts.chunk_shape = NDShape{16, 16};
  opts.overlap = 4;
  opts.per_chunk_overhead_s = 0.005;
  return opts;
}

TEST(SciDb, ValueQueryMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SciDbStore::create(&fs, "d", g, scidb_opts());
  ASSERT_TRUE(store.is_ok());
  const Region sc(2, {7, 3}, {42, 29});
  auto res = store.value().value_query(sc);
  ASSERT_TRUE(res.is_ok());
  const Truth t = brute_sc(g, sc);
  EXPECT_EQ(res.value().positions, t.positions);
  EXPECT_EQ(res.value().values, t.values);
}

TEST(SciDb, RegionQueryMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SciDbStore::create(&fs, "d", g, scidb_opts());
  ASSERT_TRUE(store.is_ok());
  const ValueConstraint vc{-0.1, 0.15};
  auto res = store.value().region_query(vc, true);
  ASSERT_TRUE(res.is_ok());
  const Truth t = brute_vc(g, vc);
  EXPECT_EQ(res.value().positions, t.positions);
  EXPECT_EQ(res.value().values, t.values);
}

TEST(SciDb, OverlapReplicationInflatesData) {
  // Table I's asterisk: SciDB stores more than the raw bytes.
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SciDbStore::create(&fs, "d", g, scidb_opts());
  ASSERT_TRUE(store.is_ok());
  EXPECT_GT(store.value().data_bytes(), g.size() * sizeof(double));
}

TEST(SciDb, RegionQueryScansEverything) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SciDbStore::create(&fs, "d", g, scidb_opts());
  ASSERT_TRUE(store.is_ok());
  auto res = store.value().region_query({1e30, 2e30}, false);
  ASSERT_TRUE(res.is_ok());
  EXPECT_TRUE(res.value().positions.empty());
  // Still read the entire (replicated) dataset.
  EXPECT_EQ(res.value().bytes_read, store.value().data_bytes());
}

TEST(SciDb, ValueQueryReadsOnlyCoveringChunks) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SciDbStore::create(&fs, "d", g, scidb_opts());
  ASSERT_TRUE(store.is_ok());
  auto small = store.value().value_query(Region(2, {0, 0}, {8, 8}));
  ASSERT_TRUE(small.is_ok());
  EXPECT_LT(small.value().bytes_read, store.value().data_bytes() / 4);
}

TEST(SciDb, RankInvariance) {
  pfs::PfsStorage fs;
  Grid g = test_grid();
  auto store = SciDbStore::create(&fs, "d", g, scidb_opts());
  ASSERT_TRUE(store.is_ok());
  const Region sc(2, {10, 10}, {50, 50});
  auto r1 = store.value().value_query(sc, 1);
  auto r4 = store.value().value_query(sc, 4);
  ASSERT_TRUE(r1.is_ok() && r4.is_ok());
  EXPECT_EQ(r1.value().positions, r4.value().positions);
  EXPECT_EQ(r1.value().values, r4.value().values);
}

}  // namespace
}  // namespace mloc::baselines
