// Tests for src/binning: quantile boundary construction, balance of
// equal-frequency bins, interval semantics (bin_of vs lower/upper),
// overlap/alignment query logic, serialization, duplicate-heavy inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "binning/binning.hpp"
#include "util/rng.hpp"

namespace mloc {
namespace {

std::vector<double> gaussian_sample(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = 300.0 + 40.0 * rng.next_gaussian();
  return out;
}

TEST(Binning, SingleBinCoversEverything) {
  auto sample = gaussian_sample(100, 1);
  auto scheme = BinningScheme::equal_frequency(sample, 1);
  EXPECT_EQ(scheme.num_bins(), 1);
  EXPECT_EQ(scheme.bin_of(-1e300), 0);
  EXPECT_EQ(scheme.bin_of(1e300), 0);
  EXPECT_EQ(scheme.lower(0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(scheme.upper(0), std::numeric_limits<double>::infinity());
}

TEST(Binning, EqualFrequencyIsBalanced) {
  auto sample = gaussian_sample(100000, 2);
  const int nbins = 100;
  auto scheme = BinningScheme::equal_frequency(sample, nbins);
  ASSERT_EQ(scheme.num_bins(), nbins);
  std::vector<int> counts(nbins, 0);
  for (double v : sample) ++counts[scheme.bin_of(v)];
  // Perfect balance would be 1000 per bin; allow modest quantile noise.
  for (int b = 0; b < nbins; ++b) {
    EXPECT_GT(counts[b], 800) << "bin " << b;
    EXPECT_LT(counts[b], 1200) << "bin " << b;
  }
}

TEST(Binning, EqualWidthBoundaries) {
  auto scheme = BinningScheme::equal_width(0.0, 10.0, 5);
  EXPECT_EQ(scheme.num_bins(), 5);
  EXPECT_DOUBLE_EQ(scheme.upper(0), 2.0);
  EXPECT_DOUBLE_EQ(scheme.lower(3), 6.0);
  EXPECT_EQ(scheme.bin_of(1.9), 0);
  EXPECT_EQ(scheme.bin_of(2.0), 1);  // boundary goes up (half-open)
  EXPECT_EQ(scheme.bin_of(-5.0), 0);
  EXPECT_EQ(scheme.bin_of(99.0), 4);
}

TEST(Binning, BinOfIsConsistentWithIntervals) {
  auto sample = gaussian_sample(5000, 3);
  auto scheme = BinningScheme::equal_frequency(sample, 16);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double(100.0, 500.0);
    const int b = scheme.bin_of(v);
    EXPECT_GE(v, scheme.lower(b));
    EXPECT_LT(v, scheme.upper(b));
  }
}

TEST(Binning, NanGoesToLastBin) {
  auto scheme = BinningScheme::equal_width(0, 1, 4);
  EXPECT_EQ(scheme.bin_of(std::numeric_limits<double>::quiet_NaN()), 3);
}

TEST(Binning, DuplicateHeavySampleCollapsesBins) {
  // A sample that is 99% one value cannot support 10 distinct quantiles;
  // boundaries must stay strictly increasing (fewer bins, never empty
  // intervals).
  std::vector<double> sample(1000, 5.0);
  sample[0] = 1.0;
  sample[999] = 9.0;
  auto scheme = BinningScheme::equal_frequency(sample, 10);
  EXPECT_GE(scheme.num_bins(), 1);
  EXPECT_LE(scheme.num_bins(), 10);
  for (int b = 0; b + 1 < scheme.num_bins(); ++b) {
    EXPECT_LT(scheme.upper(b), scheme.upper(b + 1));
  }
  // Every value still maps somewhere valid.
  for (double v : sample) {
    const int b = scheme.bin_of(v);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, scheme.num_bins());
  }
}

TEST(Binning, OverlapSpanBasics) {
  auto scheme = BinningScheme::equal_width(0.0, 100.0, 10);  // width 10
  auto span = scheme.bins_overlapping(25.0, 55.0);
  EXPECT_EQ(span.first, 2);
  EXPECT_EQ(span.last, 5);

  // Exactly on boundaries: [20, 50) covers bins 2,3,4 only.
  span = scheme.bins_overlapping(20.0, 50.0);
  EXPECT_EQ(span.first, 2);
  EXPECT_EQ(span.last, 4);

  // Degenerate range.
  EXPECT_TRUE(scheme.bins_overlapping(5.0, 5.0).empty());
  EXPECT_TRUE(scheme.bins_overlapping(7.0, 3.0).empty());

  // Unbounded-ish range covers all bins.
  span = scheme.bins_overlapping(-1e308, 1e308);
  EXPECT_EQ(span.first, 0);
  EXPECT_EQ(span.last, 9);
}

TEST(Binning, AlignedSemantics) {
  auto scheme = BinningScheme::equal_width(0.0, 100.0, 10);
  // Bin 3 covers [30, 40).
  EXPECT_TRUE(scheme.aligned(3, 30.0, 40.0));
  EXPECT_TRUE(scheme.aligned(3, 25.0, 45.0));
  EXPECT_FALSE(scheme.aligned(3, 31.0, 45.0));
  EXPECT_FALSE(scheme.aligned(3, 25.0, 39.0));
  // Edge bins have infinite bounds: only an infinite constraint aligns.
  EXPECT_FALSE(scheme.aligned(0, -1e308, 50.0));
  EXPECT_TRUE(scheme.aligned(
      0, -std::numeric_limits<double>::infinity(), 10.0));
}

TEST(Binning, AlignedBinsAllQualifyUnderVC) {
  // Property: every value in an aligned bin satisfies the constraint — the
  // invariant that lets MLOC skip decompression for aligned bins.
  auto sample = gaussian_sample(20000, 5);
  auto scheme = BinningScheme::equal_frequency(sample, 32);
  const double lo = 280.0, hi = 340.0;
  auto span = scheme.bins_overlapping(lo, hi);
  for (double v : sample) {
    const int b = scheme.bin_of(v);
    if (b >= span.first && b <= span.last && scheme.aligned(b, lo, hi)) {
      EXPECT_GE(v, lo);
      EXPECT_LT(v, hi);
    }
  }
}

TEST(Binning, ValuesOutsideOverlapSpanNeverQualify) {
  auto sample = gaussian_sample(20000, 6);
  auto scheme = BinningScheme::equal_frequency(sample, 32);
  const double lo = 290.0, hi = 310.0;
  auto span = scheme.bins_overlapping(lo, hi);
  for (double v : sample) {
    if (v >= lo && v < hi) {
      const int b = scheme.bin_of(v);
      EXPECT_GE(b, span.first);
      EXPECT_LE(b, span.last);
    }
  }
}

TEST(Binning, SerializationRoundTrip) {
  auto sample = gaussian_sample(5000, 7);
  auto scheme = BinningScheme::equal_frequency(sample, 100);
  ByteWriter w;
  scheme.serialize(w);
  ByteReader r(w.bytes());
  auto back = BinningScheme::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), scheme);
  EXPECT_TRUE(r.exhausted());
}

TEST(Binning, DeserializeRejectsNonMonotonicBoundaries) {
  ByteWriter w;
  w.put_varint(2);
  w.put_f64(5.0);
  w.put_f64(3.0);
  ByteReader r(w.bytes());
  EXPECT_FALSE(BinningScheme::deserialize(r).is_ok());
}

TEST(Binning, DeserializeRejectsTruncation) {
  ByteWriter w;
  w.put_varint(4);
  w.put_f64(1.0);
  ByteReader r(w.bytes());
  EXPECT_FALSE(BinningScheme::deserialize(r).is_ok());
}

TEST(Binning, NanOnlySampleStillWorks) {
  std::vector<double> sample(10, std::numeric_limits<double>::quiet_NaN());
  auto scheme = BinningScheme::equal_frequency(sample, 4);
  EXPECT_GE(scheme.num_bins(), 1);
  EXPECT_EQ(scheme.bin_of(1.0), scheme.num_bins() - 1 >= 0
                                    ? scheme.bin_of(1.0)
                                    : 0);  // no crash; value maps somewhere
}

// ---------------------------------------------------------------------------
// Differential and edge-case tests for the batched bin router. bin_of_batch
// must agree with the per-value std::upper_bound reference on every scheme
// shape (flat lockstep search below 64 boundaries, Eytzinger above) and on
// every special value, since it feeds the ingest partition stage.

std::vector<double> routing_values(const BinningScheme& scheme,
                                   std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0:
        vals[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        vals[i] = std::numeric_limits<double>::infinity();
        break;
      case 2:
        vals[i] = -std::numeric_limits<double>::infinity();
        break;
      case 3:
        // Exactly on a boundary: must route to the upper bin.
        vals[i] = scheme.num_bins() > 1
                      ? scheme.upper(static_cast<int>(i) %
                                     (scheme.num_bins() - 1))
                      : 0.0;
        break;
      default:
        vals[i] = rng.next_double(-2000.0, 2000.0);
    }
  }
  return vals;
}

TEST(BinningDifferential, BatchMatchesScalarAcrossSchemeShapes) {
  Rng rng(7);
  std::vector<double> sample(5000);
  for (auto& v : sample) v = rng.next_double(-1000.0, 1000.0);
  // 1 and 2 bins (degenerate), 64/65 straddling the flat-vs-Eytzinger
  // switchover, and 1024 deep in the Eytzinger path.
  for (const int num_bins : {1, 2, 3, 64, 65, 128, 1024}) {
    const auto scheme = BinningScheme::equal_frequency(sample, num_bins);
    // Counts around the 4-lane lockstep width plus a big batch.
    for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 1023u}) {
      const auto vals = routing_values(scheme, n, 31 * n + num_bins);
      std::vector<int> fast(n);
      std::vector<int> ref(n);
      scheme.bin_of_batch(vals, fast);
      detail::scalar::bin_of_batch(scheme, vals, ref);
      EXPECT_EQ(fast, ref) << "num_bins=" << num_bins << " n=" << n;
    }
  }
}

TEST(BinningDifferential, BoundaryValuesRouteToUpperBin) {
  const auto scheme = BinningScheme::equal_width(0.0, 100.0, 10);
  ASSERT_EQ(scheme.num_bins(), 10);
  for (int bin = 0; bin + 1 < scheme.num_bins(); ++bin) {
    const double boundary = scheme.upper(bin);
    EXPECT_EQ(scheme.bin_of(boundary), bin + 1) << "boundary " << boundary;
    // The batch path must agree with the scalar path on exact boundaries.
    const std::vector<double> one{boundary};
    std::vector<int> out(1);
    scheme.bin_of_batch(one, out);
    EXPECT_EQ(out[0], bin + 1);
  }
}

TEST(BinningDifferential, NanRoutesToLastBinInBothPaths) {
  const auto scheme = BinningScheme::equal_width(0.0, 1.0, 8);
  const std::vector<double> vals{std::numeric_limits<double>::quiet_NaN(),
                                 0.5,
                                 std::numeric_limits<double>::quiet_NaN(),
                                 -1.0};
  std::vector<int> out(vals.size());
  scheme.bin_of_batch(vals, out);
  EXPECT_EQ(out[0], scheme.num_bins() - 1);
  EXPECT_EQ(out[2], scheme.num_bins() - 1);
  EXPECT_EQ(out[3], 0);
  EXPECT_EQ(scheme.bin_of(vals[0]), scheme.num_bins() - 1);
}

TEST(BinningDifferential, OneBinSchemeRoutesEverythingToBinZero) {
  const BinningScheme scheme;  // no interior boundaries
  ASSERT_EQ(scheme.num_bins(), 1);
  const std::vector<double> vals{-1e308, 0.0, 1e308,
                                 std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::infinity()};
  std::vector<int> out(vals.size(), -1);
  scheme.bin_of_batch(vals, out);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(out[i], 0) << "i=" << i;
    EXPECT_EQ(scheme.bin_of(vals[i]), 0) << "i=" << i;
  }
}

}  // namespace
}  // namespace mloc
