// Tests for src/compress: bit I/O, Huffman, mzip, RLE, ISOBAR-like,
// B-spline fitting, ISABELA-like (error-bound property sweeps), xor-delta,
// registry, and corrupt-stream failure injection for every codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "compress/bitstream.hpp"
#include "compress/bspline.hpp"
#include "compress/huffman.hpp"
#include "compress/isabela.hpp"
#include "compress/isobar.hpp"
#include "compress/mzip.hpp"
#include "compress/registry.hpp"
#include "compress/rle.hpp"
#include "compress/xor_delta.hpp"
#include "util/rng.hpp"

namespace mloc {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed, int alphabet = 256) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.next_below(alphabet));
  }
  return out;
}

std::vector<double> smooth_field(std::size_t n, std::uint64_t seed) {
  // Sum of sinusoids + small noise: the value profile of simulation data.
  Rng rng(seed);
  std::vector<double> out(n);
  const double f1 = rng.next_double(0.5, 3.0);
  const double f2 = rng.next_double(5.0, 20.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / n;
    out[i] = 100.0 + 40.0 * std::sin(f1 * 6.28 * x) +
             5.0 * std::sin(f2 * 6.28 * x) + 0.1 * rng.next_gaussian();
  }
  return out;
}

// ------------------------------------------------------------- bitstream

TEST(BitStream, RoundTripMixedWidths) {
  BitWriter w;
  w.put_bits(0b101, 3);
  w.put_bits(0xFFFF, 16);
  w.put_bits(0, 1);
  w.put_bits(0x123456789ABCDull, 50);
  w.finish();
  BitReader r(w.bytes());
  EXPECT_EQ(r.get_bits(3), 0b101u);
  EXPECT_EQ(r.get_bits(16), 0xFFFFu);
  EXPECT_EQ(r.get_bits(1), 0u);
  EXPECT_EQ(r.get_bits(50), 0x123456789ABCDull);
  EXPECT_FALSE(r.overrun());
}

TEST(BitStream, OverrunReadsZeroAndFlags) {
  BitWriter w;
  w.put_bits(1, 1);
  w.finish();
  BitReader r(w.bytes());
  r.get_bits(8);  // consumes the only byte
  EXPECT_EQ(r.get_bits(16), 0u);
  EXPECT_TRUE(r.overrun());
}

TEST(BitStream, PeekDoesNotConsume) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  w.finish();
  BitReader r(w.bytes());
  EXPECT_EQ(r.peek_bits(4), 0b1011u);
  EXPECT_EQ(r.get_bits(4), 0b1011u);
}

// --------------------------------------------------------------- Huffman

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 1000;
  freqs['b'] = 300;
  freqs['c'] = 50;
  freqs['z'] = 1;
  const HuffmanCode code = HuffmanCode::from_frequencies(freqs);
  EXPECT_LE(code.lengths()['a'], code.lengths()['z']);

  BitWriter w;
  const std::string msg = "abacabadzcabbaab";
  // 'd' has zero frequency — give it one so it is encodable.
  std::vector<std::uint64_t> freqs2 = freqs;
  freqs2['d'] = 1;
  const HuffmanCode code2 = HuffmanCode::from_frequencies(freqs2);
  for (char ch : msg) code2.encode_symbol(w, static_cast<unsigned char>(ch));
  w.finish();

  BitReader r(w.bytes());
  std::string back;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    const int sym = code2.decode_symbol(r);
    ASSERT_GE(sym, 0);
    back.push_back(static_cast<char>(sym));
  }
  EXPECT_EQ(back, msg);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs[42] = 7;
  const HuffmanCode code = HuffmanCode::from_frequencies(freqs);
  EXPECT_EQ(code.lengths()[42], 1);
  BitWriter w;
  for (int i = 0; i < 5; ++i) code.encode_symbol(w, 42);
  w.finish();
  BitReader r(w.bytes());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(code.decode_symbol(r), 42);
}

TEST(Huffman, UniformDistributionNearLog2N) {
  std::vector<std::uint64_t> freqs(256, 10);
  const HuffmanCode code = HuffmanCode::from_frequencies(freqs);
  for (int s = 0; s < 256; ++s) EXPECT_EQ(code.lengths()[s], 8);
}

TEST(Huffman, LengthsRespectLimit) {
  // Fibonacci-like frequencies force very deep unbalanced trees; lengths
  // must still be capped at kMaxCodeLen and remain decodable.
  std::vector<std::uint64_t> freqs(40, 0);
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs[i] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const HuffmanCode code = HuffmanCode::from_frequencies(freqs);
  for (auto l : code.lengths()) EXPECT_LE(l, HuffmanCode::kMaxCodeLen);

  BitWriter w;
  for (int s = 0; s < 40; ++s) code.encode_symbol(w, s);
  w.finish();
  BitReader r(w.bytes());
  for (int s = 0; s < 40; ++s) EXPECT_EQ(code.decode_symbol(r), s);
}

TEST(Huffman, LengthTableSerializationRoundTrip) {
  std::vector<std::uint64_t> freqs(300, 0);
  for (int i = 0; i < 300; i += 3) freqs[i] = i + 1;
  const HuffmanCode code = HuffmanCode::from_frequencies(freqs);
  ByteWriter w;
  code.serialize_lengths(w);
  ByteReader r(w.bytes());
  auto lens = HuffmanCode::deserialize_lengths(r, 300);
  ASSERT_TRUE(lens.is_ok());
  EXPECT_EQ(lens.value(), code.lengths());
}

TEST(Huffman, FromLengthsRejectsOversubscribed) {
  std::vector<std::uint8_t> lens = {1, 1, 1};  // Kraft sum 1.5 > 1
  EXPECT_FALSE(HuffmanCode::from_lengths(lens).is_ok());
}

TEST(Huffman, FromLengthsRejectsEmpty) {
  std::vector<std::uint8_t> lens(16, 0);
  EXPECT_FALSE(HuffmanCode::from_lengths(lens).is_ok());
}

// ------------------------------------------------------------------ mzip

class MzipRoundTrip : public ::testing::TestWithParam<int> {};

Bytes adversarial_buffer(int which) {
  Bytes raw;
  switch (which) {
    case 0: raw = {}; break;
    case 1: raw = {0x42}; break;
    case 2: raw = Bytes(100000, 0xAA); break;                 // constant
    case 3: raw = random_bytes(65536, 1); break;              // incompressible
    case 4: raw = random_bytes(65536, 2, 4); break;           // small alphabet
    case 5: {                                                 // periodic
      for (int i = 0; i < 50000; ++i) raw.push_back("abcdefg"[i % 7]);
      break;
    }
    case 6: {  // long-range self-similarity (window stress)
      raw = random_bytes(1000, 3);
      Bytes block = raw;
      for (int rep = 0; rep < 64; ++rep) {
        raw.insert(raw.end(), block.begin(), block.end());
      }
      break;
    }
    case 7: {  // overlapping-match pattern (dist < len)
      raw = Bytes(3, 'x');
      for (int i = 0; i < 1000; ++i) raw.push_back(raw[i]);
      break;
    }
    case 8: {  // real-ish doubles image
      auto field = smooth_field(8192, 4);
      raw = doubles_to_bytes(field);
      break;
    }
    default: break;
  }
  return raw;
}

TEST_P(MzipRoundTrip, AdversarialBuffers) {
  const Bytes raw = adversarial_buffer(GetParam());
  const MzipCodec codec;
  auto enc = codec.encode(raw);
  ASSERT_TRUE(enc.is_ok());
  auto dec = codec.decode(enc.value());
  ASSERT_TRUE(dec.is_ok()) << dec.status().to_string();
  EXPECT_EQ(dec.value(), raw);
}

INSTANTIATE_TEST_SUITE_P(Buffers, MzipRoundTrip, ::testing::Range(0, 9));

// The word-level fast encoder must emit the exact byte stream of the
// retained byte-at-a-time reference on every adversarial buffer and at
// several chain depths (the prefilter/skip-ahead interplay depends on
// max_chain). Byte identity is the whole contract — see DESIGN.md §11.
class MzipDifferential : public ::testing::TestWithParam<int> {};

TEST_P(MzipDifferential, FastEncoderMatchesScalarReference) {
  const Bytes raw = adversarial_buffer(GetParam());
  for (const int max_chain : {1, 8, 64}) {
    const MzipCodec codec(max_chain);
    const auto fast = codec.encode(raw);
    const auto ref = detail::scalar::mzip_encode(raw, max_chain);
    ASSERT_TRUE(fast.is_ok());
    ASSERT_TRUE(ref.is_ok());
    EXPECT_EQ(fast.value(), ref.value()) << "max_chain=" << max_chain;
  }
}

INSTANTIATE_TEST_SUITE_P(Buffers, MzipDifferential, ::testing::Range(0, 9));

TEST(Mzip, CompressesRepetitiveData) {
  Bytes raw(200000, 0);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>((i / 100) % 7);
  }
  const MzipCodec codec;
  auto enc = codec.encode(raw);
  ASSERT_TRUE(enc.is_ok());
  EXPECT_LT(enc.value().size(), raw.size() / 20);
}

TEST(Mzip, RandomDataExpandsOnlySlightly) {
  Bytes raw = random_bytes(100000, 9);
  const MzipCodec codec;
  auto enc = codec.encode(raw);
  ASSERT_TRUE(enc.is_ok());
  EXPECT_LT(enc.value().size(), raw.size() * 103 / 100 + 512);
}

TEST(Mzip, HigherChainImprovesOrMatchesRatio) {
  Bytes raw;
  Rng rng(12);
  // Mildly repetitive text-like data where search depth matters.
  const char* words[] = {"temperature", "pressure", "velocity", "entropy"};
  for (int i = 0; i < 20000; ++i) {
    const char* word = words[rng.next_below(4)];
    raw.insert(raw.end(), word, word + std::strlen(word));
  }
  auto quick = MzipCodec(4).encode(raw);
  auto deep = MzipCodec(256).encode(raw);
  ASSERT_TRUE(quick.is_ok() && deep.is_ok());
  EXPECT_LE(deep.value().size(), quick.value().size());
  EXPECT_EQ(MzipCodec().decode(deep.value()).value(), raw);
}

TEST(Mzip, DecodeRejectsCorruptStreams) {
  const MzipCodec codec;
  Bytes raw = random_bytes(5000, 5);
  Bytes enc = codec.encode(raw).value();

  Bytes truncated(enc.begin(), enc.begin() + enc.size() / 2);
  EXPECT_FALSE(codec.decode(truncated).is_ok());

  Bytes flipped = enc;
  flipped[flipped.size() / 2] ^= 0xFF;
  auto res = codec.decode(flipped);
  // Either detected as corrupt, or (rarely) decodes to wrong bytes of the
  // right length — in which case the content must differ from raw, proving
  // the header-size check ran. Accept only detected-corrupt or mismatch.
  if (res.is_ok()) {
    EXPECT_NE(res.value(), raw);
  }

  Bytes empty_claims_trailing = {0x00, 0x01};
  EXPECT_FALSE(codec.decode(empty_claims_trailing).is_ok());
}

// ------------------------------------------------------------------- RLE

TEST(Rle, RoundTripAndRatio) {
  const RleCodec codec;
  Bytes raw(100000, 7);
  for (int i = 0; i < 100; ++i) raw[i * 997] = 9;
  auto enc = codec.encode(raw);
  ASSERT_TRUE(enc.is_ok());
  EXPECT_LT(enc.value().size(), 2000u);
  EXPECT_EQ(codec.decode(enc.value()).value(), raw);
}

TEST(Rle, RoundTripEmpty) {
  const RleCodec codec;
  auto enc = codec.encode({});
  ASSERT_TRUE(enc.is_ok());
  EXPECT_EQ(codec.decode(enc.value()).value(), Bytes{});
}

TEST(Rle, RoundTripNoRuns) {
  const RleCodec codec;
  Bytes raw;
  for (int i = 0; i < 256; ++i) raw.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(codec.decode(codec.encode(raw).value()).value(), raw);
}

TEST(Rle, DecodeRejectsRunOverflow) {
  const RleCodec codec;
  ByteWriter w;
  w.put_varint(10);  // declared size 10
  w.put_u8(5);
  w.put_varint(100);  // run of 100 overflows
  EXPECT_FALSE(codec.decode(w.bytes()).is_ok());
}

TEST(Rle, DecodeRejectsTrailingBytes) {
  const RleCodec codec;
  ByteWriter w;
  w.put_varint(2);
  w.put_u8(5);
  w.put_varint(2);
  w.put_u8(99);  // trailing garbage
  EXPECT_FALSE(codec.decode(w.bytes()).is_ok());
}

// ---------------------------------------------------------------- ISOBAR

TEST(Isobar, ByteEntropyBounds) {
  EXPECT_DOUBLE_EQ(IsobarCodec::byte_entropy({}), 0.0);
  Bytes constant(1000, 42);
  EXPECT_DOUBLE_EQ(IsobarCodec::byte_entropy(constant), 0.0);
  Bytes uniform = random_bytes(1 << 16, 77);
  EXPECT_GT(IsobarCodec::byte_entropy(uniform), 7.9);
  EXPECT_LE(IsobarCodec::byte_entropy(uniform), 8.0);
}

TEST(Isobar, LosslessRoundTripSmoothField) {
  const IsobarCodec codec;
  auto field = smooth_field(10000, 21);
  auto enc = codec.encode(field);
  ASSERT_TRUE(enc.is_ok());
  auto dec = codec.decode(enc.value());
  ASSERT_TRUE(dec.is_ok());
  EXPECT_EQ(dec.value(), field);
}

TEST(Isobar, LosslessRoundTripSpecialValues) {
  const IsobarCodec codec;
  std::vector<double> vals = {0.0,
                              -0.0,
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity(),
                              std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::denorm_min(),
                              std::numeric_limits<double>::max(),
                              1.0};
  auto dec = codec.decode(codec.encode(vals).value());
  ASSERT_TRUE(dec.is_ok());
  ASSERT_EQ(dec.value().size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    // Bit-exact comparison (NaN != NaN under operator==).
    std::uint64_t a, b;
    std::memcpy(&a, &vals[i], 8);
    std::memcpy(&b, &dec.value()[i], 8);
    EXPECT_EQ(a, b) << "at " << i;
  }
}

TEST(Isobar, CompressesSmoothDataBeatsRawSize) {
  const IsobarCodec codec;
  auto field = smooth_field(50000, 31);
  auto enc = codec.encode(field);
  ASSERT_TRUE(enc.is_ok());
  EXPECT_LT(enc.value().size(), field.size() * 8);
}

TEST(Isobar, EmptyInput) {
  const IsobarCodec codec;
  auto enc = codec.encode({});
  ASSERT_TRUE(enc.is_ok());
  EXPECT_TRUE(codec.decode(enc.value()).value().empty());
}

TEST(Isobar, DecodeRejectsBadPlaneFlag) {
  const IsobarCodec codec;
  auto field = smooth_field(100, 5);
  Bytes enc = codec.encode(field).value();
  // First plane flag comes right after the count varint; corrupt it.
  ByteReader probe(enc);
  (void)probe.get_varint();
  const std::size_t flag_pos = probe.position();
  enc[flag_pos] = 99;
  EXPECT_FALSE(codec.decode(enc).is_ok());
}

TEST(Isobar, DecodeRejectsTruncation) {
  const IsobarCodec codec;
  auto field = smooth_field(1000, 6);
  Bytes enc = codec.encode(field).value();
  Bytes truncated(enc.begin(), enc.begin() + enc.size() * 2 / 3);
  EXPECT_FALSE(codec.decode(truncated).is_ok());
}

// --------------------------------------------------------------- BSpline

TEST(BSpline, PartitionOfUnity) {
  const CubicBSpline s(std::vector<double>(12, 1.0));
  for (double u = 0.0; u <= 1.0; u += 0.01) {
    EXPECT_NEAR(s.evaluate(u), 1.0, 1e-12) << "u=" << u;
  }
  EXPECT_NEAR(s.evaluate(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.evaluate(1.0), 1.0, 1e-12);
}

TEST(BSpline, FitsLineExactly) {
  std::vector<double> y(100);
  for (int i = 0; i < 100; ++i) y[i] = 2.0 * i + 5.0;
  const CubicBSpline s = CubicBSpline::fit(y, 8);
  for (int i = 0; i < 100; ++i) {
    const double u = i / 99.0;
    EXPECT_NEAR(s.evaluate(u), y[i], 1e-6);
  }
}

TEST(BSpline, FitsSmoothMonotoneCurveClosely) {
  // The ISABELA use case: a sorted (monotone) sample of a smooth field.
  auto field = smooth_field(1024, 41);
  std::sort(field.begin(), field.end());
  const CubicBSpline s = CubicBSpline::fit(field, 30);
  double max_err = 0;
  for (int i = 0; i < 1024; ++i) {
    const double u = i / 1023.0;
    max_err = std::max(max_err, std::abs(s.evaluate(u) - field[i]));
  }
  const double range = field.back() - field.front();
  EXPECT_LT(max_err, 0.05 * range);
}

TEST(BSpline, HandlesTinyInputs) {
  for (int n : {1, 2, 3, 4, 7}) {
    std::vector<double> y(n, 3.5);
    const CubicBSpline s = CubicBSpline::fit(y, 4);
    EXPECT_NEAR(s.evaluate(0.0), 3.5, 1e-6) << n;
    if (n > 1) {
      EXPECT_NEAR(s.evaluate(1.0), 3.5, 1e-6) << n;
    }
  }
}

// --------------------------------------------------------------- ISABELA

class IsabelaErrorBound : public ::testing::TestWithParam<double> {};

TEST_P(IsabelaErrorBound, PointwiseRelativeErrorGuaranteed) {
  const double eps = GetParam();
  IsabelaCodec codec({.error_bound = eps, .window = 512, .coefficients = 24});
  auto field = smooth_field(5000, 51);
  auto enc = codec.encode(field);
  ASSERT_TRUE(enc.is_ok());
  auto dec = codec.decode(enc.value());
  ASSERT_TRUE(dec.is_ok()) << dec.status().to_string();
  ASSERT_EQ(dec.value().size(), field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    const double err = std::abs(dec.value()[i] - field[i]);
    // Tiny tolerance on top of the bound absorbs final rounding.
    ASSERT_LE(err, eps * std::abs(field[i]) * (1 + 1e-12) + 1e-300)
        << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, IsabelaErrorBound,
                         ::testing::Values(0.1, 0.01, 0.001, 0.0001));

TEST(Isabela, AchievesStrongCompressionOnSmoothData) {
  IsabelaCodec codec({.error_bound = 0.01, .window = 1024, .coefficients = 30});
  auto field = smooth_field(100000, 61);
  auto enc = codec.encode(field);
  ASSERT_TRUE(enc.is_ok());
  // Paper Table I: ISABELA reaches ~20% of raw (1.6 GB of 8 GB).
  EXPECT_LT(enc.value().size(), field.size() * 8 / 3);
}

TEST(Isabela, HandlesSpecialValuesViaExceptions) {
  IsabelaCodec codec({.error_bound = 0.01, .window = 64, .coefficients = 8});
  std::vector<double> vals(200, 1.0);
  vals[3] = 0.0;
  vals[10] = -5.0;   // sign flip vs the mostly-positive fit
  vals[50] = std::numeric_limits<double>::infinity();
  vals[77] = std::numeric_limits<double>::quiet_NaN();
  vals[120] = 1e-308;
  auto dec = codec.decode(codec.encode(vals).value());
  ASSERT_TRUE(dec.is_ok());
  EXPECT_EQ(dec.value()[3], 0.0);
  EXPECT_NEAR(dec.value()[10], -5.0, 0.05);
  EXPECT_TRUE(std::isinf(dec.value()[50]));
  EXPECT_TRUE(std::isnan(dec.value()[77]));
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i == 3 || i == 50 || i == 77 || i == 120 || i == 10) continue;
    EXPECT_NEAR(dec.value()[i], 1.0, 0.011);
  }
}

TEST(Isabela, EmptyAndSingleValue) {
  IsabelaCodec codec;
  EXPECT_TRUE(codec.decode(codec.encode({}).value()).value().empty());
  std::vector<double> one = {42.0};
  auto dec = codec.decode(codec.encode(one).value());
  ASSERT_TRUE(dec.is_ok());
  EXPECT_NEAR(dec.value()[0], 42.0, 0.5);
}

TEST(Isabela, WindowNotMultipleOfInput) {
  IsabelaCodec codec({.error_bound = 0.01, .window = 100, .coefficients = 8});
  auto field = smooth_field(257, 71);  // 2 full windows + remainder of 57
  auto dec = codec.decode(codec.encode(field).value());
  ASSERT_TRUE(dec.is_ok());
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_NEAR(dec.value()[i], field[i], 0.011 * std::abs(field[i]));
  }
}

TEST(Isabela, DecodeRejectsCorruption) {
  IsabelaCodec codec;
  auto field = smooth_field(3000, 81);
  Bytes enc = codec.encode(field).value();

  Bytes truncated(enc.begin(), enc.begin() + enc.size() / 2);
  EXPECT_FALSE(codec.decode(truncated).is_ok());

  Bytes tiny = {0x05};  // claims 5 values then ends
  EXPECT_FALSE(codec.decode(tiny).is_ok());
}

// ------------------------------------------------------------- xor-delta

TEST(XorDelta, LosslessRoundTripSmoothAndRandom) {
  const XorDeltaCodec codec;
  for (std::uint64_t seed : {1ull, 2ull}) {
    auto field = smooth_field(20000, seed);
    auto dec = codec.decode(codec.encode(field).value());
    ASSERT_TRUE(dec.is_ok());
    EXPECT_EQ(dec.value(), field);
  }
  // Random doubles (bit patterns from RNG).
  Rng rng(3);
  std::vector<double> vals(5000);
  for (auto& v : vals) {
    const std::uint64_t bits = rng.next_u64();
    std::memcpy(&v, &bits, 8);
    if (std::isnan(v)) v = 0.0;
  }
  auto dec = codec.decode(codec.encode(vals).value());
  ASSERT_TRUE(dec.is_ok());
  EXPECT_EQ(dec.value(), vals);
}

TEST(XorDelta, SmoothDataCompresses) {
  const XorDeltaCodec codec;
  // Slowly varying values share exponent and high mantissa bytes.
  std::vector<double> vals(50000);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals[i] = 1000.0 + static_cast<double>(i) * 1e-7;
  }
  auto enc = codec.encode(vals);
  ASSERT_TRUE(enc.is_ok());
  EXPECT_LT(enc.value().size(), vals.size() * 8 / 2);
}

TEST(XorDelta, DecodeRejectsTruncation) {
  const XorDeltaCodec codec;
  auto field = smooth_field(1000, 91);
  Bytes enc = codec.encode(field).value();
  Bytes truncated(enc.begin(), enc.begin() + enc.size() / 3);
  EXPECT_FALSE(codec.decode(truncated).is_ok());
}

// -------------------------------------------------------------- registry

TEST(Registry, ConstructsEveryRegisteredCodec) {
  for (const auto& name : registered_codec_names()) {
    auto codec = make_double_codec(name);
    ASSERT_TRUE(codec.is_ok()) << name;
    EXPECT_EQ(codec.value()->name(), name);
  }
}

TEST(Registry, EveryCodecRoundTripsWithinItsErrorBound) {
  auto field = smooth_field(4096, 99);
  for (const auto& name : registered_codec_names()) {
    auto codec = make_double_codec(name).value();
    auto enc = codec->encode(field);
    ASSERT_TRUE(enc.is_ok()) << name;
    auto dec = codec->decode(enc.value());
    ASSERT_TRUE(dec.is_ok()) << name;
    ASSERT_EQ(dec.value().size(), field.size()) << name;
    for (std::size_t i = 0; i < field.size(); ++i) {
      if (codec->lossless()) {
        ASSERT_EQ(dec.value()[i], field[i]) << name << " at " << i;
      } else {
        ASSERT_LE(std::abs(dec.value()[i] - field[i]),
                  codec->max_relative_error() * std::abs(field[i]) + 1e-300)
            << name << " at " << i;
      }
    }
  }
}

TEST(Registry, IsabelaParameterSuffix) {
  auto codec = make_double_codec("isabela:0.001");
  ASSERT_TRUE(codec.is_ok());
  EXPECT_DOUBLE_EQ(codec.value()->max_relative_error(), 0.001);
  EXPECT_FALSE(make_double_codec("isabela:2.0").is_ok());
  EXPECT_FALSE(make_double_codec("isabela:-1").is_ok());
}

TEST(Registry, UnknownNameFails) {
  auto res = make_double_codec("gzip");
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace mloc
