// Tests for src/analytics: histogram semantics and error metric, K-means
// convergence and misclassification metric, statistics kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analytics/analytics.hpp"
#include "plod/plod.hpp"
#include "util/rng.hpp"

namespace mloc::analytics {
namespace {

TEST(Histogram, CountsPartitionInput) {
  std::vector<double> vals = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5};
  Histogram h = build_histogram(vals, 4);
  std::uint64_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, vals.size());
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 3.5);
}

TEST(Histogram, BinOfClampsOutOfRange) {
  Histogram h = build_histogram(std::vector<double>{0.0, 10.0}, 5);
  EXPECT_EQ(h.bin_of(-100.0), 0);
  EXPECT_EQ(h.bin_of(100.0), 4);
  EXPECT_EQ(h.bin_of(10.0), 4);  // max value lands in last bin
}

TEST(Histogram, ConstantInputSafe) {
  Histogram h = build_histogram(std::vector<double>(100, 7.0), 10);
  std::uint64_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, 100u);
}

TEST(Histogram, ErrorZeroForIdenticalData) {
  Rng rng(1);
  std::vector<double> vals(10000);
  for (auto& v : vals) v = rng.next_gaussian();
  Histogram h = build_histogram(vals, 50);
  EXPECT_DOUBLE_EQ(histogram_error(h, vals, vals), 0.0);
}

TEST(Histogram, ErrorGrowsWithDegradation) {
  // Table VI's trend: fewer PLoD bytes => more points change bins.
  Rng rng(2);
  std::vector<double> vals(50000);
  for (auto& v : vals) v = 300.0 + 40.0 * rng.next_gaussian();
  Histogram h = build_histogram(vals, 100);

  auto shredded = plod::shred(vals);
  const std::vector<double> l2 = plod::assemble(shredded, 2).value();
  const std::vector<double> l3 = plod::assemble(shredded, 3).value();
  const std::vector<double> l4 = plod::assemble(shredded, 4).value();
  const double e2 = histogram_error(h, vals, l2);
  const double e3 = histogram_error(h, vals, l3);
  const double e4 = histogram_error(h, vals, l4);
  EXPECT_GT(e2, e3);
  EXPECT_GE(e3, e4);
  // Magnitudes in the paper's ballpark: percent-level at 2 bytes,
  // sub-0.1% at 3 bytes.
  EXPECT_GT(e2, 0.001);
  EXPECT_LT(e3, 0.001);
}

TEST(KMeans, SeparatesObviousClusters) {
  // Three tight 2-D blobs.
  Rng rng(3);
  std::vector<double> pts;
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 5}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 200; ++i) {
      pts.push_back(centers[c][0] + 0.3 * rng.next_gaussian());
      pts.push_back(centers[c][1] + 0.3 * rng.next_gaussian());
    }
  }
  Rng seed_rng(4);
  auto res = kmeans(pts, 2, 3, 100, seed_rng);
  // Every blob's points share one assignment.
  for (int c = 0; c < 3; ++c) {
    const std::uint32_t label = res.assignment[c * 200];
    for (int i = 1; i < 200; ++i) {
      ASSERT_EQ(res.assignment[c * 200 + i], label) << "blob " << c;
    }
  }
  EXPECT_LT(res.inertia / 600.0, 1.0);
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng rng(5);
  std::vector<double> pts(2000);
  for (auto& p : pts) p = rng.next_gaussian();
  Rng a(77), b(77);
  auto ra = kmeans(pts, 2, 5, 50, a);
  auto rb = kmeans(pts, 2, 5, 50, b);
  EXPECT_EQ(ra.assignment, rb.assignment);
  EXPECT_EQ(ra.centroids, rb.centroids);
}

TEST(KMeans, InertiaNonIncreasingWithMoreIterations) {
  Rng rng(6);
  std::vector<double> pts(3000);
  for (auto& p : pts) p = rng.next_gaussian() * 5;
  Rng s1(9), s2(9);
  auto one = kmeans(pts, 3, 4, 1, s1);
  auto many = kmeans(pts, 3, 4, 50, s2);
  EXPECT_LE(many.inertia, one.inertia * (1 + 1e-9));
}

TEST(KMeans, MisclassificationZeroForIdenticalData) {
  Rng rng(7);
  std::vector<double> pts(4000);
  for (auto& p : pts) p = rng.next_gaussian();
  EXPECT_DOUBLE_EQ(kmeans_misclassification(pts, pts, 2, 4, 30, 11), 0.0);
}

TEST(KMeans, MisclassificationShrinksWithPlodLevel) {
  Rng rng(8);
  std::vector<double> vals(20000);
  for (auto& v : vals) v = 300.0 + 40.0 * rng.next_gaussian();
  auto shredded = plod::shred(vals);
  const auto l2 = plod::assemble(shredded, 2).value();
  const auto l4 = plod::assemble(shredded, 4).value();
  const double e2 = kmeans_misclassification(vals, l2, 2, 4, 40, 13);
  const double e4 = kmeans_misclassification(vals, l4, 2, 4, 40, 13);
  EXPECT_GE(e2, e4);
  EXPECT_LT(e4, 0.01);
}

TEST(Stats, MatchesClosedForm) {
  std::vector<double> vals = {1, 2, 3, 4, 5};
  Stats s = compute_stats(vals);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, EmptyInput) {
  Stats s = compute_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(MaxRelativeError, Basics) {
  std::vector<double> a = {1.0, 2.0, 0.0};
  std::vector<double> b = {1.1, 2.0, 0.5};
  // 10% on the first, absolute 0.5 on the zero.
  EXPECT_NEAR(max_relative_error(a, b), 0.5, 1e-12);
  std::vector<double> c = {100.0};
  std::vector<double> d = {101.0};
  EXPECT_NEAR(max_relative_error(c, d), 0.01, 1e-12);
}

}  // namespace
}  // namespace mloc::analytics
