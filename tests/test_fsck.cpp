// mloc_fsck / LayoutVerifier tests: a clean store passes every check under
// all layout configurations, and one injected corruption per invariant
// family (bin boundaries, positional index, PLoD planes, Hilbert order,
// checksums) is detected and attributed to the right check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/layout.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "tools/fsck.hpp"

namespace mloc {
namespace {

MlocConfig small_config(const NDShape& shape, const NDShape& chunk,
                        const std::string& codec,
                        LevelOrder order = LevelOrder::kVMS) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = 16;
  cfg.layout.codec = codec;
  cfg.layout.order = order;
  cfg.layout.sample_stride = 7;
  return cfg;
}

/// Build a one-variable store named "s" on `fs`.
void build_store(pfs::PfsStorage& fs, const std::string& codec,
                 LevelOrder order = LevelOrder::kVMS) {
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      &fs, "s", small_config(grid.shape(), NDShape{16, 16}, codec, order));
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
}

/// Mutate the payload of subfile `name` and re-seal it with a fresh CRC
/// footer, so the tampering exercises the *semantic* checks rather than
/// tripping the footer first.
void tamper_resealed(pfs::PfsStorage& fs, const std::string& name,
                     const std::function<void(Bytes&)>& mutate) {
  auto id = fs.open(name);
  ASSERT_TRUE(id.is_ok()) << name;
  auto size = fs.file_size(id.value());
  ASSERT_TRUE(size.is_ok());
  Bytes content = fs.read(id.value(), 0, size.value()).value();
  auto payload_len = verify_subfile_footer(content);
  ASSERT_TRUE(payload_len.is_ok()) << name;
  content.resize(payload_len.value());
  mutate(content);
  append_subfile_footer(content);
  ASSERT_TRUE(fs.set_contents(id.value(), std::move(content)).is_ok());
}

/// First file name with the given suffix.
std::string file_named(const pfs::PfsStorage& fs, const std::string& suffix) {
  for (const auto& [name, size] : fs.listing()) {
    if (name.ends_with(suffix) && size > 2 * kSubfileFooterSize) return name;
  }
  ADD_FAILURE() << "no file matching " << suffix;
  return {};
}

bool has_check(const fsck::Report& r, const std::string& check) {
  return std::any_of(r.issues.begin(), r.issues.end(),
                     [&](const fsck::Issue& i) { return i.check == check; });
}

std::string checks_of(const fsck::Report& r) {
  std::string out;
  for (const auto& i : r.issues) {
    out += "[" + i.check + "] " + i.object + ": " + i.detail + "\n";
  }
  return out;
}

// --------------------------------------------------------- clean datasets

TEST(Fsck, CleanStorePassesEveryConfig) {
  struct Case {
    std::string codec;
    LevelOrder order;
  };
  const std::vector<Case> cases = {
      {"mzip", LevelOrder::kVMS},       // PLoD byte columns, groups outer
      {"mzip", LevelOrder::kVSM},       // PLoD byte columns, fragments outer
      {"rle", LevelOrder::kVMS},        // alternate byte codec
      {"xor-delta", LevelOrder::kVMS},  // whole-value lossless
      {"isabela:0.01", LevelOrder::kVMS},  // whole-value lossy
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.codec);
    pfs::PfsStorage fs;
    build_store(fs, c.codec, c.order);
    fsck::LayoutVerifier verifier(&fs);
    const fsck::Report report = verifier.verify_store("s");
    EXPECT_TRUE(report.ok()) << checks_of(report);
    EXPECT_EQ(report.variables_checked, 1u);
    EXPECT_GT(report.fragments_checked, 0u);
    EXPECT_GT(report.bytes_verified, 0u);
  }
}

TEST(Fsck, DiscoverStoresFindsEveryMetaFile) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");
  fsck::LayoutVerifier verifier(&fs);
  EXPECT_EQ(verifier.discover_stores(), std::vector<std::string>{"s"});
}

TEST(Fsck, JsonReportIsWellFormedOnCleanStore) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");
  fsck::LayoutVerifier verifier(&fs);
  const std::string json = verifier.verify_store("s").json();
  EXPECT_NE(json.find("\"store\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"issues\":[]"), std::string::npos) << json;
}

// --------------------------------------- one injection per invariant class

// checksum: a byte flip with no footer re-seal must be caught by the
// whole-file CRC — even in bytes no query would ever read.
TEST(Fsck, FooterCatchesUnresealedByteFlip) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");
  const std::string dat = file_named(fs, ".dat");
  auto id = fs.open(dat).value();
  auto size = fs.file_size(id).value();
  Bytes content = fs.read(id, 0, size).value();
  content[size / 2] ^= 0x01;
  ASSERT_TRUE(fs.set_contents(id, std::move(content)).is_ok());

  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "footer")) << checks_of(report);
}

// bins: making two interior boundaries equal breaks strict monotonicity;
// the metadata decode path must reject the scheme.
TEST(Fsck, NonMonotoneBinBoundariesDetected) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");
  auto store = MlocStore::open(&fs, "s");
  ASSERT_TRUE(store.is_ok());
  const BinningScheme* scheme = store.value().binning("phi").value();
  const double b3 = scheme->upper(3);
  const double b4 = scheme->upper(4);
  ASSERT_LT(b3, b4);

  tamper_resealed(fs, "s.meta", [&](Bytes& payload) {
    // Overwrite boundary 4's byte image with boundary 3's, duplicating it.
    std::uint8_t from[8];
    std::uint8_t to[8];
    std::memcpy(from, &b4, 8);
    std::memcpy(to, &b3, 8);
    auto it = std::search(payload.begin(), payload.end(),
                          std::begin(from), std::end(from));
    ASSERT_NE(it, payload.end());
    std::copy(std::begin(to), std::end(to), it);
  });

  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "meta")) << checks_of(report);
}

// index: a flipped byte inside a positional-index blob (footer re-sealed)
// must be caught by the blob's FNV checksum.
TEST(Fsck, CorruptPositionBlobDetected) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");
  tamper_resealed(fs, file_named(fs, ".idx"), [](Bytes& payload) {
    payload.back() ^= 0xFF;  // last blob byte (blobs sit after the table)
  });

  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "positions")) << checks_of(report);
}

// planes: a flipped byte inside a compressed payload segment (footer
// re-sealed) must be caught by the segment FNV before plane decode.
TEST(Fsck, CorruptPayloadSegmentDetected) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");
  tamper_resealed(fs, file_named(fs, ".dat"), [](Bytes& payload) {
    payload[payload.size() / 2] ^= 0xFF;
  });

  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "planes")) << checks_of(report);
}

// Hilbert order: swapping two fragment-table entries reorders fragments
// out of curve order. Re-serializing the swapped table yields the same
// header length (same entries, different order), so the table still
// decodes — the order invariant is what must catch it.
TEST(Fsck, FragmentsOutOfCurveOrderDetected) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");

  // Find a bin whose table has at least two fragments.
  std::string victim;
  for (const auto& [name, size] : fs.listing()) {
    if (!name.ends_with(".idx") || size <= 2 * kSubfileFooterSize) continue;
    auto id = fs.open(name).value();
    Bytes content = fs.read(id, 0, size).value();
    const std::uint64_t payload = verify_subfile_footer(content).value();
    ByteReader r(std::span<const std::uint8_t>(content).first(payload));
    auto layout = BinLayout::deserialize(r);
    if (layout.is_ok() && layout.value().fragments.size() >= 2) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty()) << "no bin with >= 2 fragments";

  tamper_resealed(fs, victim, [](Bytes& payload) {
    ByteReader r{std::span<const std::uint8_t>(payload)};
    auto layout = BinLayout::deserialize(r);
    ASSERT_TRUE(layout.is_ok());
    const std::size_t header_len = r.position();
    std::swap(layout.value().fragments[0], layout.value().fragments[1]);
    ByteWriter w;
    layout.value().serialize(w);
    Bytes swapped = std::move(w).take();
    ASSERT_EQ(swapped.size(), header_len);  // same entries, same encoding
    std::copy(swapped.begin(), swapped.end(), payload.begin());
  });

  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "order")) << checks_of(report);
}

// The store's own read path must also reject tampered subfiles on first
// cache-miss access after reopen (lazy footer verification).
TEST(Fsck, StoreQueryRejectsUnresealedTamperingAfterReopen) {
  pfs::PfsStorage fs;
  build_store(fs, "mzip");
  const std::string dat = file_named(fs, ".dat");
  auto id = fs.open(dat).value();
  auto size = fs.file_size(id).value();
  Bytes content = fs.read(id, 0, size).value();
  content[size - 1] ^= 0xFF;  // footer magic byte: no query reads it
  ASSERT_TRUE(fs.set_contents(id, std::move(content)).is_ok());

  auto reopened = MlocStore::open(&fs, "s");
  ASSERT_TRUE(reopened.is_ok());
  Query q;
  q.vc = ValueConstraint{-1e30, 1e30};
  q.values_needed = true;  // force payload reads even for aligned bins
  auto res = reopened.value().execute("phi", q);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorruptData);
}

}  // namespace
}  // namespace mloc
