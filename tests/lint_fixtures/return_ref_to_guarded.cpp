// MUST NOT COMPILE under -Wthread-safety -Werror.
//
// Invariant family: references to guarded state never escape the critical
// section. This fixture hands out a mutable reference to a MLOC_GUARDED_BY
// field from a function that does not hold (and cannot promise) the
// capability — the caller would mutate shared state with no lock held.
#include "util/sync.hpp"

namespace {

class Holder {
 public:
  // Violation: returns a reference to mu_-guarded state without holding mu_.
  int& slot() { return value_; }

 private:
  mloc::sync::Mutex mu_;
  int value_ MLOC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Holder h;
  h.slot() = 7;
  return 0;
}
