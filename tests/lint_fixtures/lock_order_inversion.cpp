// MUST NOT COMPILE under -Wthread-safety -Wthread-safety-beta -Werror.
//
// Invariant family: declared lock order (MLOC_ACQUIRED_BEFORE) is honoured
// everywhere. first_ is declared acquired-before second_, and this fixture
// takes them in the opposite order — the shape of an AB/BA deadlock. Order
// checking lives behind -Wthread-safety-beta, which is why the CI gate and
// this suite pass that flag explicitly.
#include "util/sync.hpp"

namespace {

class Ordered {
 public:
  // Violation: acquires second_ and then first_, inverting the declared
  // ACQUIRED_BEFORE relation.
  void inverted() MLOC_EXCLUDES(first_, second_) {
    mloc::sync::MutexLock inner(second_);
    mloc::sync::MutexLock outer(first_);
    ++steps_;
  }

 private:
  mloc::sync::Mutex first_ MLOC_ACQUIRED_BEFORE(second_);
  mloc::sync::Mutex second_;
  int steps_ MLOC_GUARDED_BY(second_) = 0;
};

}  // namespace

int main() {
  Ordered o;
  o.inverted();
  return 0;
}
