// MUST NOT COMPILE under -Wthread-safety -Werror.
//
// Invariant family: guarded state is only touched while its capability is
// held. This fixture reads a MLOC_GUARDED_BY field with no lock at all; if
// the gate lets it through, every GUARDED_BY annotation in the tree is
// decorative.
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void bump() MLOC_EXCLUDES(mu_) {
    mloc::sync::MutexLock lock(mu_);
    ++value_;
  }

  // Violation: reads value_ without holding mu_.
  int peek() const { return value_; }

 private:
  mutable mloc::sync::Mutex mu_;
  int value_ MLOC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.peek();
}
