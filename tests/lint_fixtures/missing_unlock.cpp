// MUST NOT COMPILE under -Wthread-safety -Werror.
//
// Invariant family: every acquired capability is released on every path out
// of the function (unless the signature says otherwise with ACQUIRE/
// RELEASE). This fixture locks a bare Mutex and returns while still holding
// it on one path — the classic early-return leak a scoped guard prevents.
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  // Violation: mu_ is still held at the end of the function.
  int take(bool flush) MLOC_EXCLUDES(mu_) {
    mu_.lock();
    int out = value_;
    if (flush) value_ = 0;
    return out;
  }

 private:
  mloc::sync::Mutex mu_;
  int value_ MLOC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.take(true);
}
