// Positive control for the thread-safety fixture suite: exercises every
// annotation family the violation fixtures abuse (GUARDED_BY, REQUIRES,
// EXCLUDES, ACQUIRED_BEFORE, RETURN_CAPABILITY, CondVar wait loops,
// reader/writer locks) in the correct way. This file MUST compile under
// `-Wthread-safety -Wthread-safety-beta -Werror`; if it does not, the
// include paths or the sync layer itself are broken and every "expected
// failure" below would be failing for the wrong reason.
#include "util/sync.hpp"

namespace {

using mloc::sync::CondVar;
using mloc::sync::Mutex;
using mloc::sync::MutexLock;
using mloc::sync::ReaderLock;
using mloc::sync::SharedMutex;
using mloc::sync::WriterLock;

class Mailbox {
 public:
  void push(int v) MLOC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ = v;
    ready_ = true;
    cv_.notify_one();
  }

  int pop() MLOC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!ready_) cv_.wait(lock);
    ready_ = false;
    return take_locked();
  }

  Mutex& mutex() MLOC_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  int take_locked() MLOC_REQUIRES(mu_) { return value_; }

  Mutex mu_;
  CondVar cv_;
  int value_ MLOC_GUARDED_BY(mu_) = 0;
  bool ready_ MLOC_GUARDED_BY(mu_) = false;
};

class Table {
 public:
  int read() const MLOC_EXCLUDES(rw_) {
    ReaderLock lock(rw_);
    return rows_;
  }
  void write(int v) MLOC_EXCLUDES(rw_) {
    WriterLock lock(rw_);
    rows_ = v;
  }

 private:
  mutable SharedMutex rw_;
  int rows_ MLOC_GUARDED_BY(rw_) = 0;
};

class Ordered {
 public:
  void both() MLOC_EXCLUDES(first_, second_) {
    MutexLock outer(first_);
    MutexLock inner(second_);
    ++steps_;
  }

 private:
  Mutex first_ MLOC_ACQUIRED_BEFORE(second_);
  Mutex second_;
  int steps_ MLOC_GUARDED_BY(second_) = 0;
};

}  // namespace

int main() {
  Mailbox m;
  m.push(1);
  Table t;
  t.write(2);
  Ordered o;
  o.both();
  return m.pop() + t.read();
}
