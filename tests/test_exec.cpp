// Staged query engine tests: IoScheduler coalescing rules (unit level),
// coalesced-vs-naive bit-identical results across every layout config,
// extent/seek reduction on a Table-VI-style query mix, planner exact-match
// against execution on cold caches, header-cache reuse on reopened stores,
// fsck cleanliness after engine queries, and a threads x shared-cache
// stress for TSan.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "exec/io_scheduler.hpp"
#include "planner/planner.hpp"
#include "service/fragment_cache.hpp"
#include "tools/fsck.hpp"

namespace mloc {
namespace {

MlocConfig small_config(const NDShape& shape, const NDShape& chunk,
                        const std::string& codec,
                        LevelOrder order = LevelOrder::kVMS) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = 16;
  cfg.layout.codec = codec;
  cfg.layout.order = order;
  cfg.layout.sample_stride = 7;
  return cfg;
}

Result<MlocStore> build_store(pfs::PfsStorage& fs, const std::string& codec,
                              LevelOrder order) {
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      &fs, "s", small_config(grid.shape(), NDShape{16, 16}, codec, order));
  if (!store.is_ok()) return store;
  MLOC_RETURN_IF_ERROR(store.value().write_variable("phi", grid));
  return store;
}

/// Table-VI-style mix: value retrieval over a spatial subset (so fragment
/// runs have gaps), plus a VC + full-domain retrieval, at two PLoD levels.
std::vector<Query> query_mix(bool plod) {
  std::vector<Query> mix;
  {
    Query q;
    q.sc = Region(2, {8, 8}, {56, 40});
    mix.push_back(q);
  }
  {
    Query q;
    q.sc = Region(2, {0, 16}, {64, 48});
    if (plod) q.plod_level = 2;
    mix.push_back(q);
  }
  {
    Query q;
    q.vc = ValueConstraint{-0.5, 0.75};
    mix.push_back(q);
  }
  return mix;
}

// ------------------------------------------------------ IoScheduler unit

TEST(IoScheduler, AdjacentAndOverlappingSegmentsAlwaysMerge) {
  // Touching or overlapping extents merge regardless of merge class.
  const std::vector<exec::PlannedSegment> segs = {
      {1, 0, 100, 7}, {1, 100, 50, 9}, {1, 120, 100, 3}};
  std::vector<exec::SlotRef> slots;
  const auto merged = exec::coalesce_segments(segs, 0, &slots);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].offset, 0u);
  EXPECT_EQ(merged[0].len, 220u);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(slots[i].extent, 0);
    EXPECT_EQ(slots[i].delta, segs[i].offset);
  }
}

TEST(IoScheduler, SameClassGapBridgesWithinLimitOnly) {
  const std::vector<exec::PlannedSegment> same = {{1, 0, 10, 2},
                                                  {1, 40, 10, 2}};
  EXPECT_EQ(exec::coalesce_segments(same, 64, nullptr).size(), 1u);
  EXPECT_EQ(exec::coalesce_segments(same, 16, nullptr).size(), 2u);

  // Same gap, different classes: never bridged.
  const std::vector<exec::PlannedSegment> cross = {{1, 0, 10, 2},
                                                   {1, 40, 10, 3}};
  EXPECT_EQ(exec::coalesce_segments(cross, 64, nullptr).size(), 2u);
}

TEST(IoScheduler, DifferentFilesNeverMerge) {
  const std::vector<exec::PlannedSegment> segs = {{1, 0, 10, 2},
                                                  {2, 10, 10, 2}};
  EXPECT_EQ(exec::coalesce_segments(segs, 1 << 20, nullptr).size(), 2u);
}

TEST(IoScheduler, SlotsAddressOriginalBytesAfterBridging) {
  const std::vector<exec::PlannedSegment> segs = {
      {1, 100, 10, 2}, {1, 0, 10, 2}, {1, 30, 10, 2}};
  std::vector<exec::SlotRef> slots;
  const auto merged = exec::coalesce_segments(segs, 64, &slots);
  ASSERT_EQ(merged.size(), 1u);  // sorted then bridged: [0, 110)
  EXPECT_EQ(merged[0].offset, 0u);
  EXPECT_EQ(merged[0].len, 110u);
  EXPECT_EQ(slots[0].delta, 100u);
  EXPECT_EQ(slots[1].delta, 0u);
  EXPECT_EQ(slots[2].delta, 30u);
}

TEST(IoScheduler, ZeroLengthSegmentsGetNoExtent) {
  const std::vector<exec::PlannedSegment> segs = {{1, 0, 0, 2}, {1, 5, 10, 2}};
  std::vector<exec::SlotRef> slots;
  const auto merged = exec::coalesce_segments(segs, 0, &slots);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(slots[0].extent, -1);
  EXPECT_EQ(slots[1].extent, 0);

  const auto naive = exec::naive_schedule(segs, &slots);
  ASSERT_EQ(naive.size(), 1u);
  EXPECT_EQ(slots[0].extent, -1);
}

TEST(IoScheduler, NaiveScheduleIsOneExtentPerSegment) {
  const std::vector<exec::PlannedSegment> segs = {
      {1, 0, 10, 2}, {1, 10, 10, 2}, {1, 20, 10, 2}};
  std::vector<exec::SlotRef> slots;
  const auto naive = exec::naive_schedule(segs, &slots);
  ASSERT_EQ(naive.size(), 3u);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(slots[i].extent, static_cast<int>(i));
    EXPECT_EQ(slots[i].delta, 0u);
  }
}

// ------------------------------------------- engine end-to-end invariants

class EngineConfigs
    : public ::testing::TestWithParam<std::tuple<std::string, LevelOrder>> {};

TEST_P(EngineConfigs, CoalescedAndNaiveAreBitIdentical) {
  const auto& [codec, order] = GetParam();
  pfs::PfsStorage fs;
  auto store = build_store(fs, codec, order);
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();

  exec::ExecOptions coalesced;
  exec::ExecOptions naive;
  naive.naive_io = true;
  naive.decode_workers = 0;  // also exercise the inline-decode path

  const bool plod = store.value().describe("phi").value().plod_capable;
  for (const Query& q : query_mix(plod)) {
    for (int ranks : {1, 3}) {
      auto a = store.value().execute("phi", q, ranks, coalesced);
      auto b = store.value().execute("phi", q, ranks, naive);
      ASSERT_TRUE(a.is_ok()) << a.status().to_string();
      ASSERT_TRUE(b.is_ok()) << b.status().to_string();
      EXPECT_EQ(a.value().positions, b.value().positions);
      EXPECT_EQ(a.value().values, b.value().values);
      // Same plan, different scheduling: identical logical counters.
      EXPECT_EQ(a.value().fragments_read, b.value().fragments_read);
      EXPECT_EQ(a.value().fragments_skipped, b.value().fragments_skipped);
      EXPECT_EQ(a.value().exec.extents_naive, b.value().exec.extents_naive);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, EngineConfigs,
    ::testing::Values(
        std::make_tuple("mzip", LevelOrder::kVMS),
        std::make_tuple("mzip", LevelOrder::kVSM),
        std::make_tuple("rle", LevelOrder::kVMS),
        std::make_tuple("xor-delta", LevelOrder::kVMS),
        std::make_tuple("isabela:0.01", LevelOrder::kVMS)));

TEST(Engine, CoalescingReducesExtentsAndModeledSeeks) {
  pfs::PfsStorage fs;
  auto store = build_store(fs, "mzip", LevelOrder::kVMS);
  ASSERT_TRUE(store.is_ok());

  // Sanity: the fixture really has >= 4 fragments per touched bin on
  // average (the acceptance bar for this comparison).
  Query probe;
  auto probed = store.value().execute("phi", probe);
  ASSERT_TRUE(probed.is_ok());
  ASSERT_GE(probed.value().fragments_read,
            4 * probed.value().bins_touched);

  exec::ExecOptions naive;
  naive.naive_io = true;
  for (const Query& q : query_mix(/*plod=*/true)) {
    for (int ranks : {1, 3}) {
      auto n = store.value().execute("phi", q, ranks, naive);
      auto c = store.value().execute("phi", q, ranks, exec::ExecOptions{});
      ASSERT_TRUE(n.is_ok() && c.is_ok());
      // Strictly fewer IoLog extents and strictly fewer modeled seeks.
      EXPECT_LT(c.value().exec.extents_coalesced,
                c.value().exec.extents_naive);
      EXPECT_LT(c.value().exec.modeled_seeks, n.value().exec.modeled_seeks);
      EXPECT_LE(c.value().times.io, n.value().times.io);
    }
  }
}

TEST(Engine, PlannerEstimateMatchesColdExecutionExactly) {
  pfs::PfsStorage fs;
  {
    auto created = build_store(fs, "mzip", LevelOrder::kVMS);
    ASSERT_TRUE(created.is_ok());
  }
  for (const Query& q : query_mix(/*plod=*/true)) {
    // Reopen per query: cold header cache, so the estimate must predict
    // the header reads too.
    auto store = MlocStore::open(&fs, "s");
    ASSERT_TRUE(store.is_ok());
    planner::QueryPlanner planner(&store.value());
    auto est = planner.estimate("phi", q, 1);
    ASSERT_TRUE(est.is_ok());
    auto run = store.value().execute("phi", q, 1);
    ASSERT_TRUE(run.is_ok());
    EXPECT_EQ(est.value().bins_touched, run.value().bins_touched);
    EXPECT_EQ(est.value().aligned_bins, run.value().aligned_bins);
    EXPECT_EQ(est.value().est_fragments, run.value().fragments_read);
    EXPECT_EQ(est.value().est_bytes, run.value().bytes_read);
    EXPECT_EQ(est.value().est_seeks, run.value().exec.modeled_seeks);
    EXPECT_DOUBLE_EQ(est.value().est_io_seconds, run.value().times.io);
  }
}

TEST(Engine, HeaderCacheEliminatesRereadsAfterFirstQuery) {
  pfs::PfsStorage fs;
  {
    auto created = build_store(fs, "mzip", LevelOrder::kVMS);
    ASSERT_TRUE(created.is_ok());
  }
  auto store = MlocStore::open(&fs, "s");
  ASSERT_TRUE(store.is_ok());
  Query q;
  q.sc = Region(2, {8, 8}, {56, 40});
  auto cold = store.value().execute("phi", q);
  auto warm = store.value().execute("phi", q);
  ASSERT_TRUE(cold.is_ok() && warm.is_ok());
  // No FragmentProvider attached: only the header reads can disappear.
  EXPECT_LT(warm.value().bytes_read, cold.value().bytes_read);
  EXPECT_EQ(warm.value().positions, cold.value().positions);

  // A freshly created store is header-warm from the start: both runs read
  // the same bytes.
  pfs::PfsStorage fs2;
  auto created = build_store(fs2, "mzip", LevelOrder::kVMS);
  ASSERT_TRUE(created.is_ok());
  auto first = created.value().execute("phi", q);
  auto second = created.value().execute("phi", q);
  ASSERT_TRUE(first.is_ok() && second.is_ok());
  EXPECT_EQ(first.value().bytes_read, second.value().bytes_read);
}

TEST(Engine, CacheStatsSplitPlannedReadAndSavedBytes) {
  pfs::PfsStorage fs;
  auto store = build_store(fs, "mzip", LevelOrder::kVMS);
  ASSERT_TRUE(store.is_ok());
  service::FragmentCache cache;
  store.value().set_fragment_provider(&cache);

  Query q;
  q.sc = Region(2, {8, 8}, {56, 40});
  auto cold = store.value().execute("phi", q);
  auto warm = store.value().execute("phi", q);
  ASSERT_TRUE(cold.is_ok() && warm.is_ok());

  EXPECT_EQ(cold.value().exec.bytes_from_cache, 0u);
  EXPECT_GT(cold.value().exec.bytes_planned, 0u);
  EXPECT_GT(warm.value().exec.bytes_from_cache, 0u);
  EXPECT_LT(warm.value().bytes_read, cold.value().bytes_read);
  EXPECT_EQ(warm.value().positions, cold.value().positions);
  EXPECT_EQ(warm.value().values, cold.value().values);
  store.value().set_fragment_provider(nullptr);
}

TEST(Engine, FsckPassesOnStoreQueriedThroughEngine) {
  pfs::PfsStorage fs;
  auto store = build_store(fs, "mzip", LevelOrder::kVMS);
  ASSERT_TRUE(store.is_ok());
  for (const Query& q : query_mix(/*plod=*/true)) {
    ASSERT_TRUE(store.value().execute("phi", q, 3).is_ok());
  }
  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_TRUE(report.ok()) << report.human();
}

TEST(Engine, MixedLayoutVariablesThroughOneEngineAndCache) {
  // Two variables of one store under different layouts (order, curve,
  // bins, chunking), served through the staged engine with a shared
  // FragmentCache: every (query, ranks, schedule) combination must be
  // bit-identical to a single-layout reference store of the same data.
  Grid grid_a = datagen::gts_like(64, 42);
  Grid grid_b = datagen::gts_like(64, 43);

  VariableLayout la;  // kVMS / hilbert / 16 bins / 16x16 (fixture default)
  la.chunk_shape = NDShape{16, 16};
  la.num_bins = 16;
  la.sample_stride = 7;
  VariableLayout lb = la;
  lb.chunk_shape = NDShape{8, 8};
  lb.num_bins = 9;
  lb.order = LevelOrder::kVSM;
  lb.curve = sfc::CurveKind::kGeneralizedMorton;
  lb.interleave = "yyyxxx";

  pfs::PfsStorage fs;
  MlocConfig cfg = small_config(grid_a.shape(), la.chunk_shape, "mzip");
  auto mixed = MlocStore::create(&fs, "mixed", cfg);
  ASSERT_TRUE(mixed.is_ok());
  ASSERT_TRUE(mixed.value().write_variable("a", grid_a, la).is_ok());
  ASSERT_TRUE(mixed.value().write_variable("b", grid_b, lb).is_ok());
  service::FragmentCache cache;
  mixed.value().set_fragment_provider(&cache);

  pfs::PfsStorage ref_fs;
  auto ref_a = MlocStore::create(&ref_fs, "ra", cfg);
  MlocConfig cfg_b = cfg;
  cfg_b.layout = lb;
  auto ref_b = MlocStore::create(&ref_fs, "rb", cfg_b);
  ASSERT_TRUE(ref_a.is_ok() && ref_b.is_ok());
  ASSERT_TRUE(ref_a.value().write_variable("a", grid_a).is_ok());
  ASSERT_TRUE(ref_b.value().write_variable("b", grid_b).is_ok());

  exec::ExecOptions naive;
  naive.naive_io = true;
  naive.decode_workers = 0;
  for (const Query& q : query_mix(/*plod=*/true)) {
    for (int ranks : {1, 3}) {
      for (const exec::ExecOptions& opts : {exec::ExecOptions{}, naive}) {
        auto ma = mixed.value().execute("a", q, ranks, opts);
        auto mb = mixed.value().execute("b", q, ranks, opts);
        auto ea = ref_a.value().execute("a", q, ranks, opts);
        auto eb = ref_b.value().execute("b", q, ranks, opts);
        ASSERT_TRUE(ma.is_ok() && mb.is_ok() && ea.is_ok() && eb.is_ok());
        EXPECT_EQ(ma.value().positions, ea.value().positions);
        EXPECT_EQ(ma.value().values, ea.value().values);
        EXPECT_EQ(mb.value().positions, eb.value().positions);
        EXPECT_EQ(mb.value().values, eb.value().values);
      }
    }
  }
  mixed.value().set_fragment_provider(nullptr);

  fsck::Report report = fsck::LayoutVerifier(&fs).verify_store("mixed");
  EXPECT_TRUE(report.ok()) << report.human();
}

TEST(Engine, ConcurrentQueriesWithSharedCacheAndWorkers) {
  pfs::PfsStorage fs;
  auto store = build_store(fs, "mzip", LevelOrder::kVMS);
  ASSERT_TRUE(store.is_ok());
  service::FragmentCache cache;
  store.value().set_fragment_provider(&cache);

  exec::ExecOptions opts;
  opts.decode_workers = 2;
  opts.min_decode_tasks = 1;  // force the worker pool on

  Query q;
  q.vc = ValueConstraint{-0.5, 0.75};
  auto expected = store.value().execute("phi", q, 1, opts);
  ASSERT_TRUE(expected.is_ok());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<Status> statuses(kThreads, Status::ok());
  std::vector<std::vector<std::uint64_t>> positions(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int iter = 0; iter < 3; ++iter) {
        auto r = store.value().execute("phi", q, 2, opts);
        if (!r.is_ok()) {
          statuses[t] = r.status();
          return;
        }
        positions[t] = std::move(r.value().positions);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[t].is_ok()) << statuses[t].to_string();
    EXPECT_EQ(positions[t], expected.value().positions);
  }
  store.value().set_fragment_provider(nullptr);
}

}  // namespace
}  // namespace mloc
