// Tests for src/staging: asynchronous ingest correctness, backpressure,
// error propagation, finish/drain semantics, time-range queries.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "datagen/datagen.hpp"
#include "staging/staging.hpp"

namespace mloc::staging {
namespace {

MlocConfig cfg_for(const NDShape& shape) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = NDShape{16, 16};
  cfg.layout.num_bins = 8;
  cfg.layout.codec = "mzip";
  return cfg;
}

TEST(Staging, AllStepsLandAndAreQueryable) {
  pfs::PfsStorage fs;
  Grid step0 = datagen::gts_like(64, 1);
  auto store = MlocStore::create(&fs, "s", cfg_for(step0.shape()));
  ASSERT_TRUE(store.is_ok());

  std::vector<Grid> steps;
  for (std::uint64_t t = 0; t < 5; ++t) {
    steps.push_back(datagen::gts_like(64, 100 + t));
  }
  {
    StagingPipeline pipeline(&store.value(), {.queue_capacity = 2});
    for (std::uint64_t t = 0; t < 5; ++t) {
      ASSERT_TRUE(pipeline.submit("phi", t, steps[t]).is_ok());
    }
    ASSERT_TRUE(pipeline.finish().is_ok());
    const auto stats = pipeline.stats();
    EXPECT_EQ(stats.steps_submitted, 5u);
    EXPECT_EQ(stats.steps_staged, 5u);
    EXPECT_EQ(stats.bytes_in, 5 * steps[0].size() * sizeof(double));
    EXPECT_GT(stats.staging_seconds, 0.0);
  }

  EXPECT_EQ(store.value().variables().size(), 5u);
  for (std::uint64_t t = 0; t < 5; ++t) {
    Query q;
    q.sc = Region(2, {0, 0}, {8, 8});
    auto res = store.value().execute(step_variable("phi", t), q);
    ASSERT_TRUE(res.is_ok()) << t;
    ASSERT_EQ(res.value().values.size(), 64u);
    EXPECT_EQ(res.value().values[0], steps[t].at({0, 0}));
  }
}

TEST(Staging, FinishIsIdempotentAndBlocksFurtherSubmits) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(32, 2);
  auto cfg = cfg_for(grid.shape());
  cfg.layout.chunk_shape = NDShape{16, 16};
  auto store = MlocStore::create(&fs, "s", cfg);
  ASSERT_TRUE(store.is_ok());
  StagingPipeline pipeline(&store.value(), {});
  ASSERT_TRUE(pipeline.submit("phi", 0, grid).is_ok());
  EXPECT_TRUE(pipeline.finish().is_ok());
  EXPECT_TRUE(pipeline.finish().is_ok());
  auto status = pipeline.submit("phi", 1, grid);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
}

TEST(Staging, DuplicateStepErrorSurfacesAtFinish) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(32, 3);
  auto cfg = cfg_for(grid.shape());
  cfg.layout.chunk_shape = NDShape{16, 16};
  auto store = MlocStore::create(&fs, "s", cfg);
  ASSERT_TRUE(store.is_ok());
  StagingPipeline pipeline(&store.value(), {});
  ASSERT_TRUE(pipeline.submit("phi", 0, grid).is_ok());
  ASSERT_TRUE(pipeline.submit("phi", 0, grid).is_ok());  // same step name
  Status status = pipeline.finish();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(pipeline.stats().steps_staged, 1u);
}

TEST(Staging, BackpressureBoundsTheQueue) {
  // With capacity 1 and a slow consumer, producer wait time must be
  // nonzero while everything still lands.
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(128, 4);  // big enough that writes take time
  auto cfg = cfg_for(grid.shape());
  auto store = MlocStore::create(&fs, "s", cfg);
  ASSERT_TRUE(store.is_ok());
  StagingPipeline pipeline(&store.value(), {.queue_capacity = 1});
  for (std::uint64_t t = 0; t < 4; ++t) {
    ASSERT_TRUE(pipeline.submit("phi", t, grid = datagen::gts_like(128, 50 + t))
                    .is_ok());
  }
  ASSERT_TRUE(pipeline.finish().is_ok());
  EXPECT_EQ(pipeline.stats().steps_staged, 4u);
  EXPECT_GT(pipeline.stats().producer_wait_seconds, 0.0);
}

TEST(Staging, TimeRangeQueryReturnsPerStepResults) {
  pfs::PfsStorage fs;
  Grid step0 = datagen::gts_like(64, 5);
  auto store = MlocStore::create(&fs, "s", cfg_for(step0.shape()));
  ASSERT_TRUE(store.is_ok());
  StagingPipeline pipeline(&store.value(), {});
  std::vector<Grid> steps;
  for (std::uint64_t t = 0; t < 3; ++t) {
    steps.push_back(datagen::gts_like(64, 200 + t));
    ASSERT_TRUE(pipeline.submit("phi", t, steps[t]).is_ok());
  }
  ASSERT_TRUE(pipeline.finish().is_ok());

  Query q;
  q.vc = ValueConstraint{0.0, 0.3};
  q.values_needed = false;
  auto res = query_time_range(store.value(), "phi", 0, 2, q);
  ASSERT_TRUE(res.is_ok());
  ASSERT_EQ(res.value().size(), 3u);
  for (std::uint64_t t = 0; t < 3; ++t) {
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < steps[t].size(); ++i) {
      if (q.vc->matches(steps[t].at_linear(i))) ++expect;
    }
    EXPECT_EQ(res.value()[t].positions.size(), expect) << "step " << t;
  }
}

TEST(Staging, TimeRangeRejectsInvertedRange) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(32, 6);
  auto cfg = cfg_for(grid.shape());
  cfg.layout.chunk_shape = NDShape{16, 16};
  auto store = MlocStore::create(&fs, "s", cfg);
  ASSERT_TRUE(store.is_ok());
  EXPECT_FALSE(query_time_range(store.value(), "phi", 3, 1, Query{}).is_ok());
}

}  // namespace
}  // namespace mloc::staging
