// Integration tests for src/core: full write->query pipelines for every
// level order and codec, cross-checked against brute-force scans of the
// raw grid; multi-variable bitmap hand-off; PLoD-level queries; rank-count
// invariance; persistence (open after create); failure injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "compress/registry.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "plod/plod.hpp"

namespace mloc {
namespace {

struct Truth {
  std::vector<std::uint64_t> positions;
  std::vector<double> values;
};

/// Brute-force reference with the store's semantics: VC/SC evaluated on
/// the original values; returned values degraded to the queried PLoD
/// level.
Truth brute_force(const Grid& grid, const Query& q) {
  Truth out;
  std::vector<double> level_values(grid.values().begin(),
                                   grid.values().end());
  if (q.plod_level < 7) {
    auto shredded = plod::shred(level_values);
    level_values = plod::assemble(shredded, q.plod_level).value();
  }
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    if (q.vc.has_value() && !q.vc->matches(grid.at_linear(i))) continue;
    if (q.sc.has_value() && !q.sc->contains(grid.shape().delinearize(i))) {
      continue;
    }
    out.positions.push_back(i);
    if (q.values_needed) out.values.push_back(level_values[i]);
  }
  return out;
}

MlocConfig small_config(const NDShape& shape, const NDShape& chunk,
                        const std::string& codec,
                        LevelOrder order = LevelOrder::kVMS) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = 16;
  cfg.layout.codec = codec;
  cfg.layout.order = order;
  cfg.layout.sample_stride = 7;
  return cfg;
}

Grid test_grid_2d() { return datagen::gts_like(64, 42); }
Grid test_grid_3d() { return datagen::s3d_like(24, 43); }

// ------------------------------------------------- parameterized sweeps

class StoreRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, LevelOrder>> {};

TEST_P(StoreRoundTrip, ValueQueryMatchesBruteForce) {
  const auto& [codec, order] = GetParam();
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, codec, order));
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // Pure SC query (paper Table III shape).
  Query q;
  q.sc = Region(2, {10, 20}, {40, 50});
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const Truth truth = brute_force(grid, q);
  ASSERT_EQ(res.value().positions, truth.positions) << codec;
  if (make_double_codec(codec).value()->lossless()) {
    EXPECT_EQ(res.value().values, truth.values);
  } else {
    const double eps = make_double_codec(codec).value()->max_relative_error();
    ASSERT_EQ(res.value().values.size(), truth.values.size());
    for (std::size_t i = 0; i < truth.values.size(); ++i) {
      EXPECT_LE(std::abs(res.value().values[i] - truth.values[i]),
                eps * std::abs(truth.values[i]) + 1e-300);
    }
  }
}

TEST_P(StoreRoundTrip, RegionQueryMatchesBruteForce) {
  const auto& [codec, order] = GetParam();
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, codec, order));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // Pure VC region-only query (paper Table II shape). Lossy codecs change
  // stored values, so compare against the store's own notion of values:
  // for lossless codecs exact match; for lossy only sanity bounds.
  Rng rng(7);
  Query q;
  q.vc = datagen::random_vc(grid, 0.05, rng);
  q.values_needed = false;
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  EXPECT_TRUE(res.value().values.empty());

  if (make_double_codec(codec).value()->lossless()) {
    const Truth truth = brute_force(grid, q);
    EXPECT_EQ(res.value().positions, truth.positions);
  } else {
    // Lossy: positions of comfortably-interior values must be present, and
    // all reported positions must be within the widened constraint.
    const double eps = make_double_codec(codec).value()->max_relative_error();
    std::set<std::uint64_t> got(res.value().positions.begin(),
                                res.value().positions.end());
    for (std::uint64_t i = 0; i < grid.size(); ++i) {
      const double v = grid.at_linear(i);
      const double margin = 2 * eps * std::abs(v) + 1e-12;
      if (v >= q.vc->lo + margin && v < q.vc->hi - margin) {
        EXPECT_TRUE(got.contains(i)) << "interior value missing at " << i;
      }
    }
    for (std::uint64_t p : res.value().positions) {
      const double v = grid.at_linear(p);
      const double margin = 2 * eps * std::abs(v) + 1e-12;
      EXPECT_GE(v, q.vc->lo - margin);
      EXPECT_LT(v, q.vc->hi + margin);
    }
  }
}

TEST_P(StoreRoundTrip, CombinedVcScQuery) {
  const auto& [codec, order] = GetParam();
  if (!make_double_codec(codec).value()->lossless()) GTEST_SKIP();
  pfs::PfsStorage fs;
  Grid grid = test_grid_3d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{8, 8, 8}, codec, order));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("temp", grid).is_ok());

  Query q;
  q.vc = ValueConstraint{1500.0, 2200.0};
  q.sc = Region(3, {4, 0, 6}, {20, 16, 22});
  auto res = store.value().execute("temp", q);
  ASSERT_TRUE(res.is_ok());
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
  EXPECT_EQ(res.value().values, truth.values);
}

INSTANTIATE_TEST_SUITE_P(
    CodecsAndOrders, StoreRoundTrip,
    ::testing::Values(std::tuple{"mzip", LevelOrder::kVMS},
                      std::tuple{"mzip", LevelOrder::kVSM},
                      std::tuple{"raw", LevelOrder::kVMS},
                      std::tuple{"rle", LevelOrder::kVSM},
                      std::tuple{"isobar", LevelOrder::kVMS},
                      std::tuple{"xor-delta", LevelOrder::kVMS},
                      std::tuple{"isabela:0.001", LevelOrder::kVMS}));

// ------------------------------------------------------- rank invariance

class StoreRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(StoreRankSweep, ResultsIdenticalAcrossRankCounts) {
  const int ranks = GetParam();
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  Query q;
  q.vc = ValueConstraint{-0.1, 0.2};
  q.sc = Region(2, {0, 0}, {50, 64});
  auto reference = store.value().execute("phi", q, 1);
  ASSERT_TRUE(reference.is_ok());
  auto res = store.value().execute("phi", q, ranks);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(res.value().positions, reference.value().positions);
  EXPECT_EQ(res.value().values, reference.value().values);
}

INSTANTIATE_TEST_SUITE_P(Ranks, StoreRankSweep,
                         ::testing::Values(1, 2, 3, 8, 17));

// ------------------------------------------------------------- PLoD path

class StorePlodSweep : public ::testing::TestWithParam<int> {};

TEST_P(StorePlodSweep, LevelQueriesMatchShreddedTruth) {
  const int level = GetParam();
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  Query q;
  q.sc = Region(2, {8, 8}, {40, 56});
  q.plod_level = level;
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const Truth truth = brute_force(grid, q);
  ASSERT_EQ(res.value().positions, truth.positions);
  EXPECT_EQ(res.value().values, truth.values);

  // Lower levels must read fewer bytes (that is the whole point).
  if (level < 7) {
    Query full = q;
    full.plod_level = 7;
    auto full_res = store.value().execute("phi", full);
    ASSERT_TRUE(full_res.is_ok());
    EXPECT_LT(res.value().bytes_read, full_res.value().bytes_read);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, StorePlodSweep, ::testing::Range(1, 8));

TEST(StorePlod, LevelBelowFullRejectedOnDoubleCodecStore) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "isobar"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  Query q;
  q.plod_level = 2;
  auto res = store.value().execute("phi", q);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kUnsupported);
}

// ---------------------------------------------------------- multivar

TEST(StoreMultivar, BitmapHandoffMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid temp = test_grid_3d();
  Grid species = datagen::s3d_species_like(temp, 99);
  auto store = MlocStore::create(
      &fs, "t", small_config(temp.shape(), NDShape{8, 8, 8}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("temp", temp).is_ok());
  ASSERT_TRUE(store.value().write_variable("yfuel", species).is_ok());

  const ValueConstraint vc{2000.0, 2500.0};
  auto res = store.value().multivar_query("temp", vc, "yfuel");
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();

  // Reference: positions where temp qualifies; values from species there.
  std::vector<std::uint64_t> expect_pos;
  std::vector<double> expect_val;
  for (std::uint64_t i = 0; i < temp.size(); ++i) {
    if (vc.matches(temp.at_linear(i))) {
      expect_pos.push_back(i);
      expect_val.push_back(species.at_linear(i));
    }
  }
  EXPECT_EQ(res.value().positions, expect_pos);
  EXPECT_EQ(res.value().values, expect_val);
}

TEST(StoreMultivar, AndSelectMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid temp = test_grid_3d();
  Grid species = datagen::s3d_species_like(temp, 99);
  auto store = MlocStore::create(
      &fs, "t", small_config(temp.shape(), NDShape{8, 8, 8}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("temp", temp).is_ok());
  ASSERT_TRUE(store.value().write_variable("yfuel", species).is_ok());

  const ValueConstraint hot{1800.0, 1e9};
  const ValueConstraint rich{0.05, 1e9};
  auto res = store.value().multivar_select(
      {{"temp", hot}, {"yfuel", rich}}, MlocStore::Combine::kAnd, "yfuel");
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();

  std::vector<std::uint64_t> expect_pos;
  std::vector<double> expect_val;
  for (std::uint64_t i = 0; i < temp.size(); ++i) {
    if (hot.matches(temp.at_linear(i)) &&
        rich.matches(species.at_linear(i))) {
      expect_pos.push_back(i);
      expect_val.push_back(species.at_linear(i));
    }
  }
  EXPECT_EQ(res.value().positions, expect_pos);
  EXPECT_EQ(res.value().values, expect_val);
}

TEST(StoreMultivar, OrSelectMatchesBruteForce) {
  pfs::PfsStorage fs;
  Grid temp = test_grid_3d();
  Grid species = datagen::s3d_species_like(temp, 99);
  auto store = MlocStore::create(
      &fs, "t", small_config(temp.shape(), NDShape{8, 8, 8}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("temp", temp).is_ok());
  ASSERT_TRUE(store.value().write_variable("yfuel", species).is_ok());

  const ValueConstraint cold{-1e9, 850.0};
  const ValueConstraint lean{-1e9, 0.01};
  // Positions only (empty fetch_var).
  auto res = store.value().multivar_select(
      {{"temp", cold}, {"yfuel", lean}}, MlocStore::Combine::kOr, "");
  ASSERT_TRUE(res.is_ok());
  EXPECT_TRUE(res.value().values.empty());

  std::vector<std::uint64_t> expect_pos;
  for (std::uint64_t i = 0; i < temp.size(); ++i) {
    if (cold.matches(temp.at_linear(i)) ||
        lean.matches(species.at_linear(i))) {
      expect_pos.push_back(i);
    }
  }
  EXPECT_EQ(res.value().positions, expect_pos);
}

TEST(StoreMultivar, SelectRejectsEmptyPredicates) {
  pfs::PfsStorage fs;
  Grid temp = test_grid_3d();
  auto store = MlocStore::create(
      &fs, "t", small_config(temp.shape(), NDShape{8, 8, 8}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("temp", temp).is_ok());
  EXPECT_FALSE(store.value()
                   .multivar_select({}, MlocStore::Combine::kAnd, "temp")
                   .is_ok());
}

TEST(StoreMultivar, SelectUnknownVariableFails) {
  pfs::PfsStorage fs;
  Grid temp = test_grid_3d();
  auto store = MlocStore::create(
      &fs, "t", small_config(temp.shape(), NDShape{8, 8, 8}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("temp", temp).is_ok());
  EXPECT_FALSE(store.value()
                   .multivar_select({{"ghost", {0, 1}}},
                                    MlocStore::Combine::kAnd, "temp")
                   .is_ok());
}

TEST(StoreMultivar, EmptySelectionYieldsEmptyResult) {
  pfs::PfsStorage fs;
  Grid temp = test_grid_3d();
  Grid species = datagen::s3d_species_like(temp, 99);
  auto store = MlocStore::create(
      &fs, "t", small_config(temp.shape(), NDShape{8, 8, 8}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("temp", temp).is_ok());
  ASSERT_TRUE(store.value().write_variable("yfuel", species).is_ok());
  auto res = store.value().multivar_query("temp", {1e9, 2e9}, "yfuel");
  ASSERT_TRUE(res.is_ok());
  EXPECT_TRUE(res.value().positions.empty());
  EXPECT_TRUE(res.value().values.empty());
}

// ------------------------------------------------------------ persistence

TEST(StorePersistence, OpenAfterCreateSeesIdenticalResults) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  {
    auto store = MlocStore::create(
        &fs, "persisted", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  }
  auto reopened = MlocStore::open(&fs, "persisted");
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened.value().variables(), std::vector<std::string>{"phi"});
  EXPECT_EQ(reopened.value().config().layout.codec, "mzip");

  Query q;
  q.vc = ValueConstraint{0.0, 0.5};
  auto res = reopened.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok());
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
}

TEST(StorePersistence, OpenMissingStoreFails) {
  pfs::PfsStorage fs;
  EXPECT_FALSE(MlocStore::open(&fs, "nope").is_ok());
}

TEST(StorePersistence, CorruptMetaRejected) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  {
    auto store = MlocStore::create(
        &fs, "c", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  }
  auto meta = fs.open("c.meta").value();
  ASSERT_TRUE(fs.set_contents(meta, Bytes{1, 2, 3}).is_ok());
  EXPECT_FALSE(MlocStore::open(&fs, "c").is_ok());
}

TEST(StorePersistence, CorruptDataSegmentDetectedByChecksum) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "c", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // Flip one byte in the middle of every bin's data file.
  for (auto& [name, size] : fs.listing()) {
    if (name.ends_with(".dat") && size > 0) {
      auto id = fs.open(name).value();
      Bytes content = fs.read(id, 0, size).value();
      content[size / 2] ^= 0xFF;
      ASSERT_TRUE(fs.set_contents(id, std::move(content)).is_ok());
    }
  }
  Query q;
  q.sc = Region(2, {0, 0}, {64, 64});
  auto res = store.value().execute("phi", q);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorruptData);
}

TEST(StorePersistence, CorruptPositionBlobDetectedByChecksum) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "c", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // Corrupt the blob section (bytes after the header) of every .idx file.
  // The last kSubfileFooterSize bytes are the CRC footer, so the last blob
  // byte sits just before it.
  for (auto& [name, size] : fs.listing()) {
    if (name.ends_with(".idx") && size > 2 * kSubfileFooterSize) {
      auto id = fs.open(name).value();
      Bytes content = fs.read(id, 0, size).value();
      content[size - kSubfileFooterSize - 1] ^= 0xFF;  // last blob byte
      ASSERT_TRUE(fs.set_contents(id, std::move(content)).is_ok());
    }
  }
  Query q;
  q.vc = ValueConstraint{-1e30, 1e30};
  q.values_needed = false;
  auto res = store.value().execute("phi", q);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorruptData);
}

// ---------------------------------------------------------- misc behavior

TEST(Store, AlignedBinsSkipDataReads) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto cfg = small_config(grid.shape(), NDShape{16, 16}, "mzip");
  cfg.layout.num_bins = 32;
  auto store = MlocStore::create(&fs, "t", cfg);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // A VC exactly covering whole bins: use bin boundaries as the range.
  Query q;
  q.values_needed = false;
  q.vc = ValueConstraint{-1e30, 1e30};  // covers all interior bins
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok());
  // All interior bins aligned; only the two infinite-edge bins are not.
  EXPECT_GE(res.value().aligned_bins, res.value().bins_touched - 2);
  // Aligned bins answer from the index: far fewer fragments decompressed
  // than a value query would need.
  EXPECT_LT(res.value().fragments_read, res.value().bins_touched * 2);
}

TEST(Store, EqualWidthBinningWorksAndPersists) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto cfg = small_config(grid.shape(), NDShape{16, 16}, "mzip");
  cfg.layout.binning = BinningKind::kEqualWidth;
  {
    auto store = MlocStore::create(&fs, "ew", cfg);
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  }
  auto reopened = MlocStore::open(&fs, "ew");
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value().config().layout.binning, BinningKind::kEqualWidth);

  Query q;
  q.vc = ValueConstraint{-0.1, 0.3};
  q.sc = Region(2, {4, 4}, {60, 50});
  auto res = reopened.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok());
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
  EXPECT_EQ(res.value().values, truth.values);
}

TEST(Store, EqualFrequencyIsMoreBalancedThanEqualWidth) {
  // The §III-B-1 claim, checked directly on bin populations.
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();  // skewed value distribution
  auto imbalance = [&](BinningKind kind, const std::string& name) {
    auto cfg = small_config(grid.shape(), NDShape{16, 16}, "raw");
    cfg.layout.binning = kind;
    cfg.layout.num_bins = 16;
    auto store = MlocStore::create(&fs, name, cfg);
    MLOC_CHECK(store.is_ok());
    MLOC_CHECK(store.value().write_variable("phi", grid).is_ok());
    auto scheme = store.value().binning("phi").value();
    std::vector<std::uint64_t> pop(scheme->num_bins(), 0);
    for (std::uint64_t i = 0; i < grid.size(); ++i) {
      ++pop[scheme->bin_of(grid.at_linear(i))];
    }
    const auto [mn, mx] = std::minmax_element(pop.begin(), pop.end());
    return static_cast<double>(*mx) / static_cast<double>(std::max<std::uint64_t>(*mn, 1));
  };
  EXPECT_LT(imbalance(BinningKind::kEqualFrequency, "ef"),
            imbalance(BinningKind::kEqualWidth, "ew"));
}

TEST(Store, OneDimensionalVariableWorks) {
  // GTS data is natively 1-D (paper §IV-A aggregates steps into 2-D);
  // the pipeline must handle it directly too.
  pfs::PfsStorage fs;
  NDShape shape{4096};
  Grid grid(shape);
  Rng rng(31);
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    grid.at_linear(i) = std::sin(i * 0.01) + 0.1 * rng.next_gaussian();
  }
  auto store = MlocStore::create(
      &fs, "t", small_config(shape, NDShape{256}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  Query q;
  q.vc = ValueConstraint{0.5, 2.0};
  q.sc = Region(1, {100}, {3000});
  auto res = store.value().execute("phi", q, 3);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
  EXPECT_EQ(res.value().values, truth.values);
}

TEST(Store, FourDimensionalSpaceTimeVariableWorks) {
  // 3-D space + time as the fourth dimension: the "space+time" analysis
  // the paper's introduction motivates.
  pfs::PfsStorage fs;
  NDShape shape{8, 8, 8, 6};  // x, y, z, t
  Grid grid(shape);
  Rng rng(32);
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    grid.at_linear(i) = 10.0 + rng.next_gaussian();
  }
  auto store = MlocStore::create(
      &fs, "t", small_config(shape, NDShape{4, 4, 4, 3}, "isobar"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("u", grid).is_ok());

  Query q;
  q.sc = Region(4, {2, 0, 3, 1}, {7, 8, 8, 4});  // spatial box x time window
  q.vc = ValueConstraint{10.0, 12.0};
  auto res = store.value().execute("u", q, 5);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
  EXPECT_EQ(res.value().values, truth.values);
}

TEST(Store, VcFilteringIsOnOriginalValuesAtReducedPlod) {
  // Explicit check of the documented semantics: the qualifying set is
  // independent of plod_level; only returned values degrade.
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  Query full;
  full.vc = ValueConstraint{-0.05, 0.22};
  Query reduced = full;
  reduced.plod_level = 2;
  auto r_full = store.value().execute("phi", full);
  auto r_reduced = store.value().execute("phi", reduced);
  ASSERT_TRUE(r_full.is_ok() && r_reduced.is_ok());
  EXPECT_EQ(r_full.value().positions, r_reduced.value().positions);
  // Returned values differ but stay within the level-2 bound.
  ASSERT_EQ(r_full.value().values.size(), r_reduced.value().values.size());
  const double bound = plod::level_max_relative_error(2);
  for (std::size_t i = 0; i < r_full.value().values.size(); ++i) {
    EXPECT_LE(std::abs(r_full.value().values[i] - r_reduced.value().values[i]),
              bound * std::abs(r_full.value().values[i]) + 1e-300);
  }
}

TEST(Store, ZoneMapsSkipDisjointFragmentsInMisalignedBins) {
  pfs::PfsStorage fs;
  // A field with a strong spatial gradient: most chunks' value ranges are
  // far from a narrow VC, so zone maps prune fragments inside the two
  // misaligned edge bins.
  NDShape shape{64, 64};
  Grid grid(shape);
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    grid.at_linear(i) = static_cast<double>(i);  // perfectly sorted field
  }
  auto cfg = small_config(shape, NDShape{8, 8}, "mzip");
  cfg.layout.num_bins = 4;  // coarse bins -> VC below covers a sliver of one bin
  auto store = MlocStore::create(&fs, "t", cfg);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  Query q;
  q.vc = ValueConstraint{100.0, 140.0};  // a sliver inside bin 0
  q.values_needed = false;
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok());
  // Correctness.
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
  // Pruning happened: bin 0 holds 16 fragments (two chunk rows); the
  // second chunk row's value ranges are disjoint from [100, 140).
  EXPECT_GE(res.value().fragments_skipped, 8u);
  EXPECT_LE(res.value().fragments_read, 8u);
}

TEST(Store, ZoneMapAlignedFragmentsAvoidDecompression) {
  pfs::PfsStorage fs;
  NDShape shape{64, 64};
  Grid grid(shape);
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    grid.at_linear(i) = static_cast<double>(i);
  }
  auto cfg = small_config(shape, NDShape{8, 8}, "mzip");
  cfg.layout.num_bins = 4;
  auto store = MlocStore::create(&fs, "t", cfg);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // VC covering most of bin 0 but not all of it: the bin is misaligned,
  // yet all fully-contained fragments answer from the index alone.
  Query q;
  q.vc = ValueConstraint{0.0, 1000.0};
  q.values_needed = false;
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok());
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
  // 1000 points = ~15 full 64-point fragments + boundary ones; far fewer
  // fragments decompressed than matched.
  EXPECT_LT(res.value().fragments_read, 8u);
}

TEST(Store, DegenerateOrNanVcRejected) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // An empty half-open range ([lo, lo)) can never match: surfaced as an
  // error instead of a silently empty result.
  EXPECT_FALSE((ValueConstraint{5.0, 5.0}).valid());
  Query q;
  q.vc = ValueConstraint{5.0, 5.0};
  auto res = store.value().execute("phi", q);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kInvalidArgument);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const auto& vc :
       {ValueConstraint{nan, 1.0}, ValueConstraint{0.0, nan},
        ValueConstraint{2.0, 1.0}}) {
    EXPECT_FALSE(vc.valid());
    q.vc = vc;
    auto bad = store.value().execute("phi", q);
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
  }

  // The default (unbounded) constraint stays valid.
  EXPECT_TRUE(ValueConstraint{}.valid());
}

TEST(Store, UnknownVariableFails) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  EXPECT_FALSE(store.value().execute("ghost", Query{}).is_ok());
}

TEST(Store, RewriteReplacesVariable) {
  // Writing an existing name re-ingests: same subfiles (no file-table
  // growth), one variable entry, and queries see only the fresh data.
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  const std::size_t files_before = fs.num_files();

  Grid fresh = datagen::gts_like(64, 77);
  ASSERT_TRUE(store.value().write_variable("phi", fresh).is_ok());
  EXPECT_EQ(fs.num_files(), files_before);
  EXPECT_EQ(store.value().variables().size(), 1u);

  Query q;
  q.sc = Region(2, {0, 0}, {8, 8});
  q.values_needed = true;
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const Truth want = brute_force(fresh, q);
  EXPECT_EQ(res.value().values, want.values);
}

TEST(Store, ShapeMismatchRejected) {
  pfs::PfsStorage fs;
  auto store = MlocStore::create(
      &fs, "t", small_config(NDShape{64, 64}, NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  Grid wrong(NDShape{32, 32});
  EXPECT_FALSE(store.value().write_variable("phi", wrong).is_ok());
}

TEST(Store, InvalidQueryParamsRejected) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  Query q;
  q.plod_level = 0;
  EXPECT_FALSE(store.value().execute("phi", q).is_ok());
  q.plod_level = 8;
  EXPECT_FALSE(store.value().execute("phi", q).is_ok());
  Query q2;
  EXPECT_FALSE(store.value().execute("phi", q2, 0).is_ok());
  Query q3;
  q3.sc = Region(3, {0, 0, 0}, {1, 1, 1});  // wrong dimensionality
  EXPECT_FALSE(store.value().execute("phi", q3).is_ok());
}

TEST(Store, StorageAccountingIsConsistent) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  const std::uint64_t data = store.value().data_bytes();
  const std::uint64_t index = store.value().index_bytes();
  EXPECT_GT(data, 0u);
  EXPECT_GT(index, 0u);
  EXPECT_EQ(data + index, fs.total_bytes());
}

TEST(Store, QueryTimesArePopulated) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  Query q;
  q.sc = Region(2, {0, 0}, {32, 32});
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok());
  EXPECT_GT(res.value().times.io, 0.0);
  EXPECT_GT(res.value().bytes_read, 0u);
  EXPECT_GT(res.value().times.total(), 0.0);
}

TEST(Store, VsmFullPrecisionReadsFewerSeeksThanVms) {
  // Table VII mechanism: for full-precision access V-S-M stores a
  // fragment's byte groups adjacently (1 run per fragment) while V-M-S
  // scatters them across 7 group sections (up to 7 runs) — so the modeled
  // I/O for the same SC query is lower under V-S-M.
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto vms = MlocStore::create(&fs, "vms",
                               small_config(grid.shape(), NDShape{8, 8},
                                            "mzip", LevelOrder::kVMS));
  auto vsm = MlocStore::create(&fs, "vsm",
                               small_config(grid.shape(), NDShape{8, 8},
                                            "mzip", LevelOrder::kVSM));
  ASSERT_TRUE(vms.is_ok() && vsm.is_ok());
  ASSERT_TRUE(vms.value().write_variable("phi", grid).is_ok());
  ASSERT_TRUE(vsm.value().write_variable("phi", grid).is_ok());

  Query full;
  full.sc = Region(2, {16, 16}, {48, 48});
  auto t_vms = vms.value().execute("phi", full);
  auto t_vsm = vsm.value().execute("phi", full);
  ASSERT_TRUE(t_vms.is_ok() && t_vsm.is_ok());
  EXPECT_EQ(t_vms.value().positions, t_vsm.value().positions);
  EXPECT_LT(t_vsm.value().times.io, t_vms.value().times.io);

  Query low = full;
  low.plod_level = 2;
  auto l_vms = vms.value().execute("phi", low);
  auto l_vsm = vsm.value().execute("phi", low);
  ASSERT_TRUE(l_vms.is_ok() && l_vsm.is_ok());
  EXPECT_LT(l_vms.value().times.io, l_vsm.value().times.io);
}

// ------------------------------------------------- per-variable layouts

VariableLayout alt_layout() {
  // Deliberately different from small_config's default on every axis the
  // tuner searches: order, curve (generalized Morton with a non-canonical
  // interleave), bin count, and chunk shape.
  VariableLayout l;
  l.chunk_shape = NDShape{8, 8};
  l.num_bins = 9;
  l.order = LevelOrder::kVSM;
  l.curve = sfc::CurveKind::kGeneralizedMorton;
  l.interleave = "yyyxxx";
  l.codec = "mzip";
  l.sample_stride = 3;
  return l;
}

TEST(MixedLayout, TwoLayoutsInOneStoreMatchSingleLayoutStores) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();

  // Mixed store: "a" under the default layout, "b" under alt_layout().
  auto mixed = MlocStore::create(
      &fs, "mixed", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(mixed.is_ok());
  ASSERT_TRUE(mixed.value().write_variable("a", grid).is_ok());
  ASSERT_TRUE(
      mixed.value().write_variable("b", grid, alt_layout()).is_ok());

  // Reference stores, each single-layout.
  auto ref_a = MlocStore::create(
      &fs, "ref_a", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  MlocConfig cfg_b;
  cfg_b.shape = grid.shape();
  cfg_b.layout = alt_layout();
  auto ref_b = MlocStore::create(&fs, "ref_b", cfg_b);
  ASSERT_TRUE(ref_a.is_ok() && ref_b.is_ok());
  ASSERT_TRUE(ref_a.value().write_variable("a", grid).is_ok());
  ASSERT_TRUE(ref_b.value().write_variable("b", grid).is_ok());

  // Byte-identical query results for both variables against their
  // single-layout twins, across query shapes and rank counts.
  std::vector<Query> queries;
  { Query q; q.vc = ValueConstraint{0.2, 0.7}; queries.push_back(q); }
  { Query q; q.sc = Region(2, {8, 8}, {40, 52}); queries.push_back(q); }
  {
    Query q;
    q.vc = ValueConstraint{0.1, 0.9};
    q.sc = Region(2, {0, 16}, {64, 48});
    q.plod_level = 3;
    queries.push_back(q);
  }
  for (const Query& q : queries) {
    for (int ranks : {1, 4}) {
      for (const char* var : {"a", "b"}) {
        auto got = mixed.value().execute(var, q, ranks);
        auto want = (var[0] == 'a' ? ref_a : ref_b).value().execute(var, q,
                                                                    ranks);
        ASSERT_TRUE(got.is_ok() && want.is_ok()) << var;
        EXPECT_EQ(got.value().positions, want.value().positions) << var;
        EXPECT_EQ(got.value().values, want.value().values) << var;
      }
    }
  }

  // Brute-force ground truth holds for the generalized-Morton variable.
  Query q;
  q.vc = ValueConstraint{0.2, 0.7};
  q.values_needed = true;
  auto res = mixed.value().execute("b", q);
  ASSERT_TRUE(res.is_ok());
  const Truth truth = brute_force(grid, q);
  EXPECT_EQ(res.value().positions, truth.positions);
  EXPECT_EQ(res.value().values, truth.values);

  // Cross-variable bitmap hand-off works across differing layouts.
  auto mv = mixed.value().multivar_query("a", ValueConstraint{0.3, 0.8}, "b");
  ASSERT_TRUE(mv.is_ok()) << mv.status().to_string();
}

TEST(MixedLayout, LayoutsSurviveReopen) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  {
    auto store = MlocStore::create(
        &fs, "mix", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value().write_variable("a", grid).is_ok());
    ASSERT_TRUE(store.value().write_variable("b", grid, alt_layout()).is_ok());
  }
  auto reopened = MlocStore::open(&fs, "mix");
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  auto la = reopened.value().variable_layout("a");
  auto lb = reopened.value().variable_layout("b");
  ASSERT_TRUE(la.is_ok() && lb.is_ok());
  EXPECT_EQ(*la.value(), reopened.value().config().layout);
  EXPECT_EQ(*lb.value(), alt_layout());
  EXPECT_EQ(lb.value()->interleave, "yyyxxx");

  // Queries still work per layout after reopen.
  Query q;
  q.sc = Region(2, {4, 4}, {30, 60});
  for (const char* var : {"a", "b"}) {
    auto res = reopened.value().execute(var, q);
    ASSERT_TRUE(res.is_ok()) << var;
    const Truth truth = brute_force(grid, q);
    EXPECT_EQ(res.value().positions, truth.positions) << var;
  }
}

TEST(MixedLayout, ReingestMayChangeLayout) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid, alt_layout()).is_ok());
  auto layout = store.value().variable_layout("phi");
  ASSERT_TRUE(layout.is_ok());
  EXPECT_EQ(*layout.value(), alt_layout());

  Query q;
  q.vc = ValueConstraint{0.25, 0.75};
  auto res = store.value().execute("phi", q);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(res.value().positions, brute_force(grid, q).positions);
}

// ------------------------------------------------- layout validation

TEST(LayoutValidation, BadLayoutsRejectedAtIngest) {
  pfs::PfsStorage fs;
  Grid grid = test_grid_2d();
  auto store = MlocStore::create(
      &fs, "t", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());

  const VariableLayout good = store.value().config().layout;
  auto expect_invalid = [&](VariableLayout l, const char* what) {
    auto st = store.value().write_variable("v", grid, l);
    EXPECT_FALSE(st.is_ok()) << what;
    EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument) << what;
  };

  { VariableLayout l = good; l.num_bins = 0; expect_invalid(l, "bins"); }
  { VariableLayout l = good; l.sample_stride = 0; expect_invalid(l, "stride"); }
  { VariableLayout l = good; l.chunk_shape = NDShape{16, 16, 16};
    expect_invalid(l, "rank"); }
  { VariableLayout l = good; l.chunk_shape = NDShape{128, 16};
    expect_invalid(l, "chunk > grid"); }
  { VariableLayout l = good; l.codec = "no-such-codec";
    expect_invalid(l, "codec"); }
  { VariableLayout l = good; l.curve = sfc::CurveKind::kGeneralizedMorton;
    l.interleave = "x";  // y never appears
    expect_invalid(l, "interleave coverage"); }
  { VariableLayout l = good; l.interleave = "xyxy";  // pattern w/o curve
    expect_invalid(l, "interleave without generalized curve"); }

  // Nothing was published by the failed attempts.
  EXPECT_TRUE(store.value().variables().empty());

  // create() validates the default layout the same way.
  MlocConfig bad;
  bad.shape = grid.shape();
  bad.layout = good;
  bad.layout.num_bins = -1;
  EXPECT_FALSE(MlocStore::create(&fs, "bad", bad).is_ok());
}

// ------------------------------------------------- v2 back-compat

TEST(BackCompat, V2StoreFixtureOpensAndQueries) {
  // tests/data/v2-store was written by the pre-refactor (meta v2,
  // store-wide layout) code: 32x32 gts grid, 16x16 chunks, 8 bins, mzip,
  // hilbert, V-M-S, stride 101, one variable "temp". The legacy open path
  // must reproduce its layout and its exact query results.
  auto fs = pfs::PfsStorage::load_from_dir(std::string(MLOC_TEST_DATA_DIR) +
                                           "/v2-store");
  ASSERT_TRUE(fs.is_ok()) << fs.status().to_string();
  auto store = MlocStore::open(&fs.value(), "store");
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();

  EXPECT_EQ(store.value().variables(), std::vector<std::string>{"temp"});
  auto layout = store.value().variable_layout("temp");
  ASSERT_TRUE(layout.is_ok());
  EXPECT_EQ(layout.value()->chunk_shape, (NDShape{16, 16}));
  EXPECT_EQ(layout.value()->num_bins, 8);
  EXPECT_EQ(layout.value()->codec, "mzip");
  EXPECT_EQ(layout.value()->curve, sfc::CurveKind::kHilbert);
  EXPECT_EQ(layout.value()->order, LevelOrder::kVMS);
  EXPECT_EQ(layout.value()->sample_stride, 101u);
  EXPECT_TRUE(layout.value()->interleave.empty());
  // The store-wide legacy layout doubles as the default layout.
  EXPECT_EQ(store.value().config().layout, *layout.value());

  Query q;
  q.vc = ValueConstraint{0.2, 0.8};
  q.values_needed = true;
  auto res = store.value().execute("temp", q, 2);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  ASSERT_EQ(res.value().positions.size(), 136u);
  double sum = 0.0, lo = res.value().values[0], hi = lo;
  for (double v : res.value().values) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(sum / 136.0, 0.400972, 1e-6);
  EXPECT_NEAR(lo, 0.201853, 1e-6);
  EXPECT_NEAR(hi, 0.780933, 1e-6);
}

}  // namespace
}  // namespace mloc
