// Hierarchical bitmap index (src/index) tests: tree build / header
// round-trip, top-down cover correctness, store-level A/B bit-identity
// against the flat positional path across layout configs, planner
// estimate == cold execution with the index enabled, meta v4 reopen,
// node caching through the FragmentProvider, the tuner's fan-out axis,
// and one injected corruption per fsck "index" invariant family.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "index/hbx.hpp"
#include "planner/planner.hpp"
#include "service/fragment_cache.hpp"
#include "tools/fsck.hpp"
#include "tune/trace.hpp"
#include "tune/tuner.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mloc {
namespace {

using index::HbxBuild;
using index::HbxHeader;
using index::HbxNode;

Bitmap random_bitmap(std::uint64_t nbits, double density, std::uint64_t seed) {
  Bitmap b(nbits);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < nbits; ++i) {
    if (rng.next_double() < density) b.set(i);
  }
  return b;
}

std::vector<WahBitmap> random_leaves(int nbins, std::uint64_t nbits,
                                     std::uint64_t seed) {
  std::vector<WahBitmap> leaves;
  leaves.reserve(static_cast<std::size_t>(nbins));
  for (int b = 0; b < nbins; ++b) {
    leaves.push_back(WahBitmap::compress(
        random_bitmap(nbits, 0.05, seed + static_cast<std::uint64_t>(b))));
  }
  return leaves;
}

/// OR of leaves[first..last] (the ground truth any cover must reproduce).
WahBitmap leaf_union(const std::vector<WahBitmap>& leaves, int first,
                     int last, std::uint64_t nbits) {
  WahBitmap acc = WahBitmap::compress(Bitmap(nbits));
  for (int b = first; b <= last; ++b) {
    acc = WahBitmap::logical_or(acc, leaves[static_cast<std::size_t>(b)]);
  }
  return acc;
}

// ------------------------------------------------------------ tree build

TEST(HbxBuild, HeaderRoundTripAndAggregates) {
  const std::uint64_t nbits = 1000;
  const int nbins = 13;  // non-power-of-fanout: ragged top levels
  const auto leaves = random_leaves(nbins, nbits, 7);
  const HbxBuild built = index::build_index(leaves, nbits, 4);

  // Level structure: 13 -> 4 -> 1.
  ASSERT_EQ(built.header.num_levels(), 3);
  EXPECT_EQ(built.header.level(0).size(), 13u);
  EXPECT_EQ(built.header.level(1).size(), 4u);
  EXPECT_EQ(built.header.level(2).size(), 1u);
  EXPECT_EQ(built.bitmaps.size(), built.header.nodes.size());

  // Every node's bitmap is the OR of the leaves it spans, and its table
  // entry records the exact popcount.
  for (std::size_t i = 0; i < built.header.nodes.size(); ++i) {
    const HbxNode& n = built.header.nodes[i];
    EXPECT_TRUE(built.bitmaps[i] ==
                leaf_union(leaves, n.first_bin, n.last_bin(), nbits))
        << "node " << i;
    EXPECT_EQ(built.bitmaps[i].count(), n.popcount) << "node " << i;
  }

  // Header serialize/deserialize round-trips bit-for-bit.
  const Bytes img = built.header.serialize();
  ASSERT_EQ(img.size(), built.header.header_len);
  auto parsed = HbxHeader::deserialize(img);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().fanout, 4);
  EXPECT_EQ(parsed.value().num_bins, nbins);
  EXPECT_EQ(parsed.value().nbits, nbits);
  EXPECT_EQ(parsed.value().level_begin, built.header.level_begin);
  ASSERT_EQ(parsed.value().nodes.size(), built.header.nodes.size());
  for (std::size_t i = 0; i < built.header.nodes.size(); ++i) {
    const HbxNode& a = built.header.nodes[i];
    const HbxNode& b = parsed.value().nodes[i];
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.first_bin, b.first_bin);
    EXPECT_EQ(a.bin_count, b.bin_count);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.popcount, b.popcount);
  }

  // The sealed file verifies and its node extents hold the bitmaps.
  auto payload = verify_subfile_footer(built.file);
  ASSERT_TRUE(payload.is_ok());
  for (std::size_t i = 0; i < built.header.nodes.size(); ++i) {
    const HbxNode& n = built.header.nodes[i];
    const auto seg = std::span<const std::uint8_t>(built.file)
                         .subspan(built.header.header_len + n.offset,
                                  n.length);
    EXPECT_EQ(fnv1a64(seg), n.checksum) << "node " << i;
    ByteReader r(seg);
    auto bm = WahBitmap::deserialize(r);
    ASSERT_TRUE(bm.is_ok());
    EXPECT_TRUE(bm.value() == built.bitmaps[i]) << "node " << i;
  }
}

TEST(HbxBuild, SingleBinAndBinaryFanout) {
  const std::uint64_t nbits = 64;
  const HbxBuild one = index::build_index(random_leaves(1, nbits, 3), nbits, 2);
  EXPECT_EQ(one.header.num_levels(), 1);
  EXPECT_EQ(one.header.nodes.size(), 1u);

  const auto leaves = random_leaves(8, nbits, 4);
  const HbxBuild bin = index::build_index(leaves, nbits, 2);
  EXPECT_EQ(bin.header.num_levels(), 4);  // 8 -> 4 -> 2 -> 1
  EXPECT_EQ(bin.header.nodes.size(), 15u);
}

TEST(HbxCover, RandomSpansMatchLeafUnion) {
  const std::uint64_t nbits = 500;
  const int nbins = 21;
  const auto leaves = random_leaves(nbins, nbits, 11);
  const HbxBuild built = index::build_index(leaves, nbits, 3);

  Rng rng(99);
  for (int t = 0; t < 200; ++t) {
    int a = static_cast<int>(rng.next_below(static_cast<std::size_t>(nbins)));
    int b = static_cast<int>(rng.next_below(static_cast<std::size_t>(nbins)));
    if (a > b) std::swap(a, b);
    const std::vector<std::size_t> ids = index::cover(built.header, a, b);

    // Covered bins tile [a, b] exactly, without overlap.
    std::vector<int> covered;
    for (std::size_t id : ids) {
      const HbxNode& n = built.header.nodes[id];
      for (int bin = n.first_bin; bin <= n.last_bin(); ++bin) {
        covered.push_back(bin);
      }
    }
    std::sort(covered.begin(), covered.end());
    ASSERT_EQ(covered.size(), static_cast<std::size_t>(b - a + 1));
    for (int bin = a; bin <= b; ++bin) {
      EXPECT_EQ(covered[static_cast<std::size_t>(bin - a)], bin);
    }

    // The OR of the covered nodes equals the OR of the span's leaves.
    WahBitmap acc = WahBitmap::compress(Bitmap(nbits));
    for (std::size_t id : ids) {
      acc = WahBitmap::logical_or(acc, built.bitmaps[id]);
    }
    EXPECT_TRUE(acc == leaf_union(leaves, a, b, nbits));

    // Minimality (binary property): never more nodes than bins, and a
    // full span resolves to the single root.
    EXPECT_LE(ids.size(), static_cast<std::size_t>(b - a + 1));
    if (a == 0 && b == nbins - 1) EXPECT_EQ(ids.size(), 1u);
  }

  EXPECT_TRUE(index::cover(built.header, 5, 4).empty());
  EXPECT_TRUE(index::cover(built.header, -3, -1).empty());
}

// ------------------------------------------------------- store-level A/B

MlocConfig hbx_config(const NDShape& shape, const NDShape& chunk,
                      LevelOrder order, sfc::CurveKind curve, int num_bins,
                      int fanout) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = num_bins;
  cfg.layout.codec = "mzip";
  cfg.layout.order = order;
  cfg.layout.curve = curve;
  cfg.layout.index_fanout = fanout;
  return cfg;
}

TEST(HbxStore, RegionQueriesBitIdenticalToFlatPathAcrossConfigs) {
  struct Case {
    LevelOrder order;
    sfc::CurveKind curve;
    int num_bins;
    int fanout;
  };
  const std::vector<Case> cases = {
      {LevelOrder::kVMS, sfc::CurveKind::kHilbert, 64, 4},
      {LevelOrder::kVSM, sfc::CurveKind::kMorton, 64, 8},
      {LevelOrder::kVMS, sfc::CurveKind::kRowMajor, 128, 2},
  };
  const Grid grid = datagen::gts_like(64, 42);
  for (const auto& c : cases) {
    SCOPED_TRACE(std::to_string(c.num_bins) + " bins, fanout " +
                 std::to_string(c.fanout));
    pfs::PfsStorage fs;
    auto store = MlocStore::create(
        &fs, "s",
        hbx_config(grid.shape(), NDShape{16, 16}, c.order, c.curve,
                   c.num_bins, c.fanout));
    ASSERT_TRUE(store.is_ok()) << store.status().to_string();
    ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

    Rng rng(7);
    for (double sel : {0.02, 0.2, 0.6}) {
      Query q;
      q.vc = datagen::random_vc(grid, sel, rng);
      q.values_needed = false;

      exec::ExecOptions hier;
      exec::ExecOptions flat;
      flat.use_hbx = false;
      auto rh = store.value().execute("phi", q, 2, hier);
      auto rf = store.value().execute("phi", q, 2, flat);
      ASSERT_TRUE(rh.is_ok()) << rh.status().to_string();
      ASSERT_TRUE(rf.is_ok()) << rf.status().to_string();
      EXPECT_EQ(rh.value().positions, rf.value().positions);
      // The tree must actually engage on interior bins (wide selections
      // always align at least one bin).
      if (sel >= 0.2) {
        EXPECT_GT(rh.value().aligned_bins, 0u);
      }
    }

    // SC + VC region queries take the flat path for boundary bins and
    // intersect node bitmaps positionally — still identical.
    Query q;
    q.vc = datagen::random_vc(grid, 0.3, rng);
    q.sc = Region(2, Coord{8, 8}, Coord{40, 56});
    q.values_needed = false;
    exec::ExecOptions flat;
    flat.use_hbx = false;
    auto rh = store.value().execute("phi", q, 1);
    auto rf = store.value().execute("phi", q, 1, flat);
    ASSERT_TRUE(rh.is_ok());
    ASSERT_TRUE(rf.is_ok());
    EXPECT_EQ(rh.value().positions, rf.value().positions);
  }
}

TEST(HbxStore, ValueRetrievalUnaffectedByIndex) {
  const Grid grid = datagen::gts_like(32, 5);
  pfs::PfsStorage fs;
  auto store = MlocStore::create(
      &fs, "s",
      hbx_config(grid.shape(), NDShape{8, 8}, LevelOrder::kVMS,
                 sfc::CurveKind::kHilbert, 16, 4));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  Rng rng(3);
  Query q;
  q.vc = datagen::random_vc(grid, 0.4, rng);
  q.values_needed = true;
  exec::ExecOptions flat;
  flat.use_hbx = false;
  auto rh = store.value().execute("phi", q, 1);
  auto rf = store.value().execute("phi", q, 1, flat);
  ASSERT_TRUE(rh.is_ok());
  ASSERT_TRUE(rf.is_ok());
  EXPECT_EQ(rh.value().positions, rf.value().positions);
  EXPECT_EQ(rh.value().values, rf.value().values);
  // Value retrieval must touch fragments regardless, so the index stays
  // out of the plan entirely.
  EXPECT_EQ(rh.value().bytes_read, rf.value().bytes_read);
}

TEST(HbxStore, MultivarSelectMatchesFlatDecomposition) {
  const Grid t = datagen::s3d_like(16, 21);
  const Grid y = datagen::s3d_species_like(t, 22);
  pfs::PfsStorage fs;
  MlocConfig cfg = hbx_config(t.shape(), NDShape{8, 8, 8}, LevelOrder::kVMS,
                              sfc::CurveKind::kHilbert, 32, 4);
  auto store = MlocStore::create(&fs, "s", cfg);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("T", t).is_ok());
  ASSERT_TRUE(store.value().write_variable("Y", y).is_ok());

  pfs::PfsStorage fs_flat;
  MlocConfig cfg_flat = cfg;
  cfg_flat.layout.index_fanout = 0;
  auto flat = MlocStore::create(&fs_flat, "s", cfg_flat);
  ASSERT_TRUE(flat.is_ok());
  ASSERT_TRUE(flat.value().write_variable("T", t).is_ok());
  ASSERT_TRUE(flat.value().write_variable("Y", y).is_ok());

  Rng rng(17);
  const ValueConstraint vct = datagen::random_vc(t, 0.35, rng);
  const ValueConstraint vcy = datagen::random_vc(y, 0.35, rng);
  for (auto combine : {MlocStore::Combine::kAnd, MlocStore::Combine::kOr}) {
    auto rh = store.value().multivar_select({{"T", vct}, {"Y", vcy}}, combine,
                                            "Y", 7, 2);
    auto rf = flat.value().multivar_select({{"T", vct}, {"Y", vcy}}, combine,
                                           "Y", 7, 2);
    ASSERT_TRUE(rh.is_ok()) << rh.status().to_string();
    ASSERT_TRUE(rf.is_ok()) << rf.status().to_string();
    EXPECT_EQ(rh.value().positions, rf.value().positions);
    EXPECT_EQ(rh.value().values, rf.value().values);
  }
}

// ------------------------------------------------- estimate == execution

TEST(HbxStore, PlannerEstimateMatchesColdExecution) {
  const Grid grid = datagen::gts_like(64, 9);
  pfs::PfsStorage fs;
  auto store = MlocStore::create(
      &fs, "s",
      hbx_config(grid.shape(), NDShape{16, 16}, LevelOrder::kVMS,
                 sfc::CurveKind::kHilbert, 64, 4));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  Rng rng(13);
  for (int ranks : {1, 3}) {
    for (double sel : {0.05, 0.3, 0.7}) {
      Query q;
      q.vc = datagen::random_vc(grid, sel, rng);
      q.values_needed = false;
      planner::QueryPlanner planner(&store.value());
      auto est = planner.estimate("phi", q, ranks);
      ASSERT_TRUE(est.is_ok()) << est.status().to_string();
      auto res = store.value().execute("phi", q, ranks);
      ASSERT_TRUE(res.is_ok()) << res.status().to_string();
      EXPECT_EQ(est.value().est_bytes, res.value().bytes_read)
          << "sel " << sel << " ranks " << ranks;
      EXPECT_EQ(est.value().est_seeks, res.value().exec.modeled_seeks);
      EXPECT_EQ(est.value().aligned_bins, res.value().aligned_bins);
      if (ranks == 1) {
        EXPECT_DOUBLE_EQ(est.value().est_io_seconds, res.value().times.io);
      } else {
        // estimate() takes the best makespan over nested power-of-two
        // rank splits, so it lower-bounds the executed split.
        EXPECT_LE(est.value().est_io_seconds, res.value().times.io + 1e-12);
      }
    }
  }
}

// ------------------------------------------------------- reopen + cache

TEST(HbxStore, MetaV4ReopenKeepsIndex) {
  const Grid grid = datagen::gts_like(48, 31);
  pfs::PfsStorage fs;
  {
    auto store = MlocStore::create(
        &fs, "s",
        hbx_config(grid.shape(), NDShape{16, 16}, LevelOrder::kVMS,
                   sfc::CurveKind::kHilbert, 32, 4));
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  }
  auto reopened = MlocStore::open(&fs, "s");
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  auto sub = reopened.value().hbx_subfile("phi");
  ASSERT_TRUE(sub.is_ok());
  EXPECT_TRUE(sub.value().present);
  EXPECT_GT(sub.value().header_len, 0u);

  Rng rng(41);
  Query q;
  q.vc = datagen::random_vc(grid, 0.4, rng);
  q.values_needed = false;
  exec::ExecOptions flat;
  flat.use_hbx = false;
  auto rh = reopened.value().execute("phi", q, 1);
  auto rf = reopened.value().execute("phi", q, 1, flat);
  ASSERT_TRUE(rh.is_ok());
  ASSERT_TRUE(rf.is_ok());
  EXPECT_EQ(rh.value().positions, rf.value().positions);
  EXPECT_GT(rh.value().aligned_bins, 0u);
}

TEST(HbxStore, NodeBitmapsServedFromFragmentCache) {
  const Grid grid = datagen::gts_like(48, 12);
  pfs::PfsStorage fs;
  auto store = MlocStore::create(
      &fs, "s",
      hbx_config(grid.shape(), NDShape{16, 16}, LevelOrder::kVMS,
                 sfc::CurveKind::kHilbert, 32, 4));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  service::FragmentCache cache;
  store.value().set_fragment_provider(&cache);

  Rng rng(8);
  Query q;
  q.vc = datagen::random_vc(grid, 0.5, rng);
  q.values_needed = false;
  auto cold = store.value().execute("phi", q, 1);
  ASSERT_TRUE(cold.is_ok());
  ASSERT_GT(cold.value().aligned_bins, 0u);
  auto warm = store.value().execute("phi", q, 1);
  ASSERT_TRUE(warm.is_ok());
  EXPECT_EQ(cold.value().positions, warm.value().positions);
  EXPECT_GT(warm.value().cache.hits, 0u);
  EXPECT_LT(warm.value().bytes_read, cold.value().bytes_read);
}

// ------------------------------------------------------------ tuner axis

TEST(HbxTune, FanoutIsASearchableKnob) {
  const Grid grid = datagen::gts_like(32, 77);
  pfs::PfsStorage fs;
  auto store = MlocStore::create(
      &fs, "s",
      hbx_config(grid.shape(), NDShape{8, 8}, LevelOrder::kVMS,
                 sfc::CurveKind::kHilbert, 64, 0));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  // Region-only workload: the .hbx path prunes .idx bytes, so a fan-out
  // candidate must beat the index-less baseline.
  tune::QueryTrace trace;
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    Query q;
    q.vc = datagen::random_vc(grid, 0.4, rng);
    q.values_needed = false;
    trace.queries.push_back({"phi", q, 1});
  }
  tune::SearchSpace space;
  space.bin_counts = {64};
  space.chunk_shapes = {NDShape{8, 8}};
  space.index_fanouts = {0, 4};
  space.interleave_samples = 0;
  space.random_restarts = 0;
  auto result = tune::tune_variable(store.value(), "phi", trace, space);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().recommended.index_fanout, 4);
  EXPECT_LT(result.value().predicted_cost_tuned,
            result.value().predicted_cost_default);
  const std::string json = tune::tune_report_json({result.value()});
  EXPECT_NE(json.find("\"index_fanout\":4"), std::string::npos);
}

// ------------------------------------------------------ fsck corruptions

void build_fsck_store(pfs::PfsStorage& fs) {
  const Grid grid = datagen::gts_like(48, 2);
  auto store = MlocStore::create(
      &fs, "s",
      hbx_config(grid.shape(), NDShape{16, 16}, LevelOrder::kVMS,
                 sfc::CurveKind::kHilbert, 16, 4));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
}

bool has_check(const fsck::Report& r, const std::string& check) {
  return std::any_of(r.issues.begin(), r.issues.end(),
                     [&](const fsck::Issue& i) { return i.check == check; });
}

std::string checks_of(const fsck::Report& r) {
  std::string out;
  for (const auto& i : r.issues) {
    out += "[" + i.check + "] " + i.object + ": " + i.detail + "\n";
  }
  return out;
}

/// Swap one set and one clear payload bit inside a literal WAH word of
/// node `id`'s serialized bitmap, recompute the node's FNV checksum in the
/// header, and re-seal the footer. Length, stream validity, bit width and
/// popcount all survive, so only the semantic invariants (aggregate OR /
/// leaf vs positional index) can trip. Returns false when the node has no
/// mutable literal word.
bool corrupt_node_bitmap(pfs::PfsStorage& fs, std::size_t id) {
  auto fid = fs.open("s/phi.hbx");
  EXPECT_TRUE(fid.is_ok());
  const std::uint64_t size = fs.file_size(fid.value()).value();
  Bytes content = fs.read(fid.value(), 0, size).value();
  auto payload = verify_subfile_footer(content);
  EXPECT_TRUE(payload.is_ok());
  auto header = HbxHeader::deserialize(
      std::span<const std::uint8_t>(content).first(payload.value()));
  EXPECT_TRUE(header.is_ok()) << header.status().to_string();
  HbxHeader h = std::move(header).value();
  const HbxNode& n = h.nodes[id];

  const std::size_t node_off =
      static_cast<std::size_t>(h.header_len + n.offset);
  const auto node_span =
      std::span<const std::uint8_t>(content).subspan(node_off, n.length);
  ByteReader r(node_span);
  EXPECT_TRUE(r.get_varint().is_ok());  // nbits
  auto nwords = r.get_varint();
  EXPECT_TRUE(nwords.is_ok());
  const std::size_t words_off = node_off + r.position();

  bool mutated = false;
  // Skip the final word: flipping padding bits in the last group would
  // change count() and trip the popcount check instead.
  for (std::uint64_t w = 0; nwords.value() > 0 && w + 1 < nwords.value();
       ++w) {
    std::uint32_t word;
    std::memcpy(&word, content.data() + words_off + 4 * w, 4);
    const std::uint32_t lit = word & 0x7FFF'FFFFu;
    if ((word >> 31) != 0 || lit == 0 || lit == 0x7FFF'FFFFu) continue;
    const std::uint32_t lowest_set = lit & (~lit + 1);
    const std::uint32_t inv = ~lit & 0x7FFF'FFFFu;
    const std::uint32_t lowest_clear = inv & (~inv + 1);
    word = (word ^ lowest_set) | lowest_clear;
    std::memcpy(content.data() + words_off + 4 * w, &word, 4);
    mutated = true;
    break;
  }
  if (!mutated) return false;

  h.nodes[id].checksum = fnv1a64(
      std::span<const std::uint8_t>(content).subspan(node_off, n.length));
  const Bytes img = h.serialize();
  EXPECT_EQ(img.size(), h.header_len);  // only a fixed-width u64 changed
  std::memcpy(content.data(), img.data(), img.size());
  content.resize(payload.value());
  append_subfile_footer(content);
  EXPECT_TRUE(fs.set_contents(fid.value(), std::move(content)).is_ok());
  return true;
}

TEST(HbxFsck, CleanStorePassesIndexChecks) {
  pfs::PfsStorage fs;
  build_fsck_store(fs);
  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_TRUE(report.ok()) << checks_of(report);
  ASSERT_EQ(report.variable_layouts.size(), 1u);
  EXPECT_TRUE(report.variable_layouts[0].hbx_present);
  EXPECT_EQ(report.variable_layouts[0].index_fanout, 4);
  EXPECT_GT(report.variable_layouts[0].hbx_nodes, 16u);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"hbx\":{\"present\":true"), std::string::npos);
}

TEST(HbxFsck, DetectsBadAggregateOr) {
  pfs::PfsStorage fs;
  build_fsck_store(fs);
  // 16 leaves at fanout 4: nodes 16..19 are level-1 aggregates.
  bool mutated = false;
  for (std::size_t id = 16; id < 21 && !mutated; ++id) {
    mutated = corrupt_node_bitmap(fs, id);
  }
  ASSERT_TRUE(mutated) << "no aggregate node with a mutable literal word";
  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "index")) << checks_of(report);
  bool aggregate_issue = false;
  for (const auto& i : report.issues) {
    if (i.check == "index" && i.detail.find("OR of its") != std::string::npos) {
      aggregate_issue = true;
    }
  }
  EXPECT_TRUE(aggregate_issue) << checks_of(report);
}

TEST(HbxFsck, DetectsLeafPositionalMismatch) {
  pfs::PfsStorage fs;
  build_fsck_store(fs);
  bool mutated = false;
  for (std::size_t id = 0; id < 16 && !mutated; ++id) {
    mutated = corrupt_node_bitmap(fs, id);
  }
  ASSERT_TRUE(mutated) << "no leaf node with a mutable literal word";
  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  bool leaf_issue = false;
  for (const auto& i : report.issues) {
    if (i.check == "index" &&
        i.detail.find("positional index") != std::string::npos) {
      leaf_issue = true;
    }
  }
  EXPECT_TRUE(leaf_issue) << checks_of(report);
}

TEST(HbxFsck, DetectsTruncatedHbx) {
  pfs::PfsStorage fs;
  build_fsck_store(fs);
  auto fid = fs.open("s/phi.hbx");
  ASSERT_TRUE(fid.is_ok());
  const std::uint64_t size = fs.file_size(fid.value()).value();
  Bytes content = fs.read(fid.value(), 0, size).value();
  content.resize(content.size() / 2);
  ASSERT_TRUE(fs.set_contents(fid.value(), std::move(content)).is_ok());
  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_FALSE(report.ok());
  bool footer_on_hbx = false;
  for (const auto& i : report.issues) {
    if (i.check == "footer" && i.object == "phi.hbx") footer_on_hbx = true;
  }
  EXPECT_TRUE(footer_on_hbx) << checks_of(report);
}

}  // namespace
}  // namespace mloc
