// Tests for src/multires: hierarchical subset partitioning invariants,
// level reads vs brute force, spatial pruning, coverage fractions,
// persistence, codec interop, failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "datagen/datagen.hpp"
#include "multires/subset.hpp"

namespace mloc::multires {
namespace {

SubsetStore::Config small_cfg(const NDShape& shape, int levels = 3,
                              const std::string& codec = "mzip") {
  SubsetStore::Config cfg;
  cfg.shape = shape;
  cfg.num_levels = levels;
  cfg.codec = codec;
  cfg.segment_points = 1024;
  return cfg;
}

TEST(SubsetStore, TopLevelReadReturnsEveryPointExactly) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 1);
  auto store = SubsetStore::create(&fs, "s", small_cfg(grid.shape()));
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  auto res = store.value().read_level("phi", 2);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  ASSERT_EQ(res.value().positions.size(), grid.size());
  for (std::size_t i = 0; i < res.value().positions.size(); ++i) {
    EXPECT_EQ(res.value().positions[i], i);  // ascending, complete
    EXPECT_EQ(res.value().values[i], grid.at_linear(i));
  }
}

TEST(SubsetStore, LevelsAreNestedAndDisjoint) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 2);
  auto store = SubsetStore::create(&fs, "s", small_cfg(grid.shape()));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  std::vector<std::set<std::uint64_t>> level_sets;
  for (int lvl = 0; lvl < 3; ++lvl) {
    auto res = store.value().read_level("phi", lvl);
    ASSERT_TRUE(res.is_ok());
    level_sets.emplace_back(res.value().positions.begin(),
                            res.value().positions.end());
  }
  // Nesting: level k's result contains level k-1's.
  for (std::uint64_t p : level_sets[0]) EXPECT_TRUE(level_sets[1].contains(p));
  for (std::uint64_t p : level_sets[1]) EXPECT_TRUE(level_sets[2].contains(p));
  // Strict growth.
  EXPECT_LT(level_sets[0].size(), level_sets[1].size());
  EXPECT_LT(level_sets[1].size(), level_sets[2].size());
}

TEST(SubsetStore, CoverageMatchesDivisibilityTheory) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 3);  // 2-D: fanout 4
  auto store = SubsetStore::create(&fs, "s", small_cfg(grid.shape(), 3));
  ASSERT_TRUE(store.is_ok());
  // Union of levels 0..k = positions divisible by 4^(2-k):
  // k=0 -> 1/16 of the curve, k=1 -> 1/4, k=2 -> all.
  EXPECT_NEAR(store.value().coverage(0), 1.0 / 16, 1e-9);
  EXPECT_NEAR(store.value().coverage(1), 1.0 / 4, 1e-9);
  EXPECT_DOUBLE_EQ(store.value().coverage(2), 1.0);
}

TEST(SubsetStore, LowResIsAUniformishSubsample) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 4);
  auto store = SubsetStore::create(&fs, "s", small_cfg(grid.shape()));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  auto res = store.value().read_level("phi", 0);
  ASSERT_TRUE(res.is_ok());
  // Every 16x16 tile must contain at least one sample (uniformity).
  for (std::uint32_t tx = 0; tx < 64; tx += 16) {
    for (std::uint32_t ty = 0; ty < 64; ty += 16) {
      const Region tile(2, {tx, ty}, {tx + 16, ty + 16});
      bool found = false;
      for (std::uint64_t p : res.value().positions) {
        if (tile.contains(grid.shape().delinearize(p))) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "tile " << tile.to_string();
    }
  }
}

TEST(SubsetStore, SpatialConstraintFiltersAndPrunes) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(128, 5);
  auto cfg = small_cfg(grid.shape());
  cfg.segment_points = 256;  // many segments -> pruning visible
  auto store = SubsetStore::create(&fs, "s", cfg);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  const Region roi(2, {0, 0}, {16, 16});
  auto res = store.value().read_level("phi", 2, roi);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(res.value().positions.size(), roi.volume());
  for (std::uint64_t p : res.value().positions) {
    EXPECT_TRUE(roi.contains(grid.shape().delinearize(p)));
  }
  auto full = store.value().read_level("phi", 2);
  ASSERT_TRUE(full.is_ok());
  EXPECT_LT(res.value().bytes_read, full.value().bytes_read / 4);
}

TEST(SubsetStore, RankInvariance) {
  pfs::PfsStorage fs;
  Grid grid = datagen::s3d_like(24, 6);
  auto store = SubsetStore::create(&fs, "s", small_cfg(grid.shape()));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("t", grid).is_ok());
  auto r1 = store.value().read_level("t", 1, {}, 1);
  auto r7 = store.value().read_level("t", 1, {}, 7);
  ASSERT_TRUE(r1.is_ok() && r7.is_ok());
  EXPECT_EQ(r1.value().positions, r7.value().positions);
  EXPECT_EQ(r1.value().values, r7.value().values);
}

TEST(SubsetStore, LowerLevelsReadFewerBytes) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(128, 7);
  auto store = SubsetStore::create(&fs, "s", small_cfg(grid.shape()));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  std::uint64_t prev = 0;
  for (int lvl = 0; lvl < 3; ++lvl) {
    auto res = store.value().read_level("phi", lvl);
    ASSERT_TRUE(res.is_ok());
    EXPECT_GT(res.value().bytes_read, prev);
    prev = res.value().bytes_read;
  }
}

TEST(SubsetStore, PersistsAcrossOpen) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 8);
  {
    auto store = SubsetStore::create(&fs, "p", small_cfg(grid.shape()));
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  }
  auto reopened = SubsetStore::open(&fs, "p");
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened.value().variables(), std::vector<std::string>{"phi"});
  auto res = reopened.value().read_level("phi", 2);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(res.value().positions.size(), grid.size());
}

TEST(SubsetStore, WorksWithLossyCodecWithinBound) {
  pfs::PfsStorage fs;
  Grid grid = datagen::s3d_like(24, 9);
  auto store = SubsetStore::create(
      &fs, "s", small_cfg(grid.shape(), 3, "isabela:0.001"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("t", grid).is_ok());
  auto res = store.value().read_level("t", 2);
  ASSERT_TRUE(res.is_ok());
  ASSERT_EQ(res.value().positions.size(), grid.size());
  for (std::size_t i = 0; i < res.value().positions.size(); ++i) {
    const double truth = grid.at_linear(res.value().positions[i]);
    EXPECT_LE(std::abs(res.value().values[i] - truth),
              0.001 * std::abs(truth) + 1e-300);
  }
}

TEST(SubsetStore, InvalidInputsRejected) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 10);
  auto store = SubsetStore::create(&fs, "s", small_cfg(grid.shape()));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  EXPECT_FALSE(store.value().write_variable("phi", grid).is_ok());
  EXPECT_FALSE(store.value().read_level("ghost", 0).is_ok());
  EXPECT_FALSE(store.value().read_level("phi", -1).is_ok());
  EXPECT_FALSE(store.value().read_level("phi", 3).is_ok());
  EXPECT_FALSE(store.value().read_level("phi", 0, {}, 0).is_ok());

  SubsetStore::Config bad = small_cfg(grid.shape());
  bad.num_levels = 0;
  EXPECT_FALSE(SubsetStore::create(&fs, "b", bad).is_ok());
}

TEST(SubsetStore, CorruptMetaRejected) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 11);
  {
    auto store = SubsetStore::create(&fs, "c", small_cfg(grid.shape()));
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());
  }
  auto meta = fs.open("c.mrsmeta").value();
  ASSERT_TRUE(fs.set_contents(meta, Bytes{9, 9, 9, 9}).is_ok());
  EXPECT_FALSE(SubsetStore::open(&fs, "c").is_ok());
}

}  // namespace
}  // namespace mloc::multires
