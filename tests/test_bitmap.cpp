// Tests for src/bitmap: plain bitset semantics, WAH round-trips (property
// sweeps over densities), compressed-domain ops vs naive reference, and
// corrupt-stream rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "util/rng.hpp"

namespace mloc {
namespace {

Bitmap random_bitmap(std::uint64_t nbits, double density, std::uint64_t seed) {
  Bitmap b(nbits);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < nbits; ++i) {
    if (rng.next_double() < density) b.set(i);
  }
  return b;
}

// ---------------------------------------------------------------- Bitmap

TEST(Bitmap, SetGetClear) {
  Bitmap b(100);
  EXPECT_FALSE(b.get(42));
  b.set(42);
  EXPECT_TRUE(b.get(42));
  b.set(42, false);
  EXPECT_FALSE(b.get(42));
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, CountAcrossWordBoundaries) {
  Bitmap b(130);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.count(), 4u);
}

TEST(Bitmap, AndOrSemantics) {
  Bitmap a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  Bitmap both = a;
  both &= b;
  EXPECT_EQ(both.count(), 1u);
  EXPECT_TRUE(both.get(2));
  Bitmap any = a;
  any |= b;
  EXPECT_EQ(any.count(), 3u);
}

TEST(Bitmap, FlipClearsPadding) {
  Bitmap b(70);  // 64 + 6 bits; padding in second word must stay clear
  b.flip();
  EXPECT_EQ(b.count(), 70u);
  b.flip();
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitmap, ForEachSetAscending) {
  Bitmap b(200);
  const std::vector<std::uint64_t> positions = {0, 31, 63, 64, 100, 199};
  for (auto p : positions) b.set(p);
  std::vector<std::uint64_t> seen;
  b.for_each_set([&](std::uint64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, positions);
}

// ------------------------------------------------------------------- WAH

class WahRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(WahRoundTrip, CompressDecompressIsIdentity) {
  const auto [nbits, density] = GetParam();
  Bitmap plain = random_bitmap(nbits, density, nbits * 31 + 7);
  WahBitmap wah = WahBitmap::compress(plain);
  EXPECT_EQ(wah.size_bits(), nbits);
  EXPECT_EQ(wah.decompress(), plain);
  EXPECT_EQ(wah.count(), plain.count());
}

TEST_P(WahRoundTrip, SerializeDeserializeIsIdentity) {
  const auto [nbits, density] = GetParam();
  Bitmap plain = random_bitmap(nbits, density, nbits + 17);
  WahBitmap wah = WahBitmap::compress(plain);
  ByteWriter w;
  wah.serialize(w);
  ByteReader r(w.bytes());
  auto back = WahBitmap::deserialize(r);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), wah);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, WahRoundTrip,
    ::testing::Values(std::tuple{0ull, 0.0}, std::tuple{1ull, 1.0},
                      std::tuple{31ull, 0.5}, std::tuple{32ull, 0.5},
                      std::tuple{62ull, 0.01}, std::tuple{1000ull, 0.0},
                      std::tuple{1000ull, 1.0}, std::tuple{1000ull, 0.001},
                      std::tuple{1000ull, 0.05}, std::tuple{1000ull, 0.5},
                      std::tuple{1000ull, 0.95}, std::tuple{100000ull, 0.01},
                      std::tuple{100000ull, 0.5}));

TEST(Wah, SparseBitmapCompressesWell) {
  // 1M bits with 0.1% density: WAH should be far below the 125 KB raw size.
  Bitmap plain = random_bitmap(1 << 20, 0.001, 5);
  WahBitmap wah = WahBitmap::compress(plain);
  EXPECT_LT(wah.byte_size(), plain.byte_size() / 5);
}

TEST(Wah, UniformFillIsTiny) {
  Bitmap zeros(1 << 20);
  EXPECT_LT(WahBitmap::compress(zeros).byte_size(), 64u);
  Bitmap ones(1 << 20);
  ones.flip();
  EXPECT_LT(WahBitmap::compress(ones).byte_size(), 64u);
}

TEST(Wah, DenseRandomDoesNotBlowUp) {
  // Incompressible input: WAH costs at most ~32/31 of raw + constant.
  Bitmap plain = random_bitmap(1 << 16, 0.5, 6);
  WahBitmap wah = WahBitmap::compress(plain);
  EXPECT_LT(wah.byte_size(), plain.byte_size() * 110 / 100 + 64);
}

class WahBinaryOps
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WahBinaryOps, CompressedAndOrMatchNaive) {
  const auto [da, db] = GetParam();
  const std::uint64_t n = 50000;
  Bitmap pa = random_bitmap(n, da, 11);
  Bitmap pb = random_bitmap(n, db, 22);
  WahBitmap wa = WahBitmap::compress(pa);
  WahBitmap wb = WahBitmap::compress(pb);

  Bitmap expect_and = pa;
  expect_and &= pb;
  Bitmap expect_or = pa;
  expect_or |= pb;

  EXPECT_EQ(WahBitmap::logical_and(wa, wb).decompress(), expect_and);
  EXPECT_EQ(WahBitmap::logical_or(wa, wb).decompress(), expect_or);
}

INSTANTIATE_TEST_SUITE_P(
    DensityPairs, WahBinaryOps,
    ::testing::Values(std::tuple{0.0, 0.0}, std::tuple{0.0, 1.0},
                      std::tuple{1.0, 1.0}, std::tuple{0.001, 0.001},
                      std::tuple{0.001, 0.5}, std::tuple{0.5, 0.5},
                      std::tuple{0.9, 0.1}));

TEST(Wah, BinaryOpResultStaysCanonical) {
  // AND of two sparse maps is sparser; result must re-coalesce into fills,
  // not degenerate into literals.
  Bitmap pa = random_bitmap(1 << 18, 0.01, 31);
  Bitmap pb = random_bitmap(1 << 18, 0.01, 32);
  WahBitmap out = WahBitmap::logical_and(WahBitmap::compress(pa),
                                         WahBitmap::compress(pb));
  EXPECT_LT(out.byte_size(), 1u << 13);
}

TEST(Wah, CountOnCompressedEqualsDecompressed) {
  for (double d : {0.0, 0.003, 0.2, 0.97, 1.0}) {
    Bitmap plain = random_bitmap(12345, d, static_cast<std::uint64_t>(d * 100) + 1);
    WahBitmap wah = WahBitmap::compress(plain);
    EXPECT_EQ(wah.count(), plain.count());
  }
}

// Alternating maximal 1-fill / 0-fill runs, with run lengths chosen so every
// transition lands exactly on a 31-bit group boundary (the WAH word unit).
// The merge loops must consume partial fills from both sides without losing
// or duplicating a group when the two operands' runs are out of phase.
Bitmap alternating_fills(std::uint64_t groups_per_run, std::uint64_t runs,
                         bool start_set, std::uint64_t tail_bits) {
  Bitmap b(groups_per_run * 31 * runs + tail_bits);
  bool value = start_set;
  std::uint64_t pos = 0;
  for (std::uint64_t r = 0; r < runs; ++r) {
    for (std::uint64_t i = 0; i < groups_per_run * 31; ++i, ++pos) {
      if (value) b.set(pos);
    }
    value = !value;
  }
  for (std::uint64_t i = 0; i < tail_bits; ++i, ++pos) {
    if (i % 2 == 0) b.set(pos);  // literal tail straddling the last boundary
  }
  return b;
}

TEST(Wah, AlternatingFillPhasesMergeAtWordBoundaries) {
  for (std::uint64_t ga : {1ull, 2ull, 5ull}) {
    for (std::uint64_t gb : {1ull, 3ull, 7ull}) {
      for (std::uint64_t tail : {0ull, 1ull, 30ull}) {
        // Equal total widths, different run phases on the two sides.
        const std::uint64_t lcm_groups = ga * gb * 6;
        Bitmap pa = alternating_fills(ga, lcm_groups / ga, true, tail);
        Bitmap pb = alternating_fills(gb, lcm_groups / gb, false, tail);
        ASSERT_EQ(pa.size(), pb.size());
        WahBitmap wa = WahBitmap::compress(pa);
        WahBitmap wb = WahBitmap::compress(pb);

        Bitmap expect_and = pa;
        expect_and &= pb;
        Bitmap expect_or = pa;
        expect_or |= pb;
        EXPECT_EQ(WahBitmap::logical_and(wa, wb).decompress(), expect_and);
        EXPECT_EQ(WahBitmap::logical_or(wa, wb).decompress(), expect_or);
        // Canonical outputs round-trip through compress of the plain result.
        EXPECT_EQ(WahBitmap::logical_and(wa, wb),
                  WahBitmap::compress(expect_and));
        EXPECT_EQ(WahBitmap::logical_or(wa, wb),
                  WahBitmap::compress(expect_or));
      }
    }
  }
}

TEST(Wah, EmptyBitmapIdentities) {
  // Zero-width operands: AND/OR of two empties is empty and canonical.
  const WahBitmap none = WahBitmap::compress(Bitmap(0));
  EXPECT_EQ(WahBitmap::logical_and(none, none).size_bits(), 0u);
  EXPECT_EQ(WahBitmap::logical_or(none, none).size_bits(), 0u);
  EXPECT_EQ(WahBitmap::logical_and(none, none).count(), 0u);
  EXPECT_EQ(WahBitmap::logical_or(none, none), none);

  // All-zero operand of matching width: AND annihilates, OR is identity.
  for (std::uint64_t n : {31ull, 62ull, 1000ull}) {
    const WahBitmap zeros = WahBitmap::compress(Bitmap(n));
    const WahBitmap x = WahBitmap::compress(random_bitmap(n, 0.4, n + 3));
    EXPECT_EQ(WahBitmap::logical_and(x, zeros), zeros);
    EXPECT_EQ(WahBitmap::logical_and(zeros, x), zeros);
    EXPECT_EQ(WahBitmap::logical_or(x, zeros), x);
    EXPECT_EQ(WahBitmap::logical_or(zeros, x), x);
  }
}

// Differential check of the hierarchical engine's combine order: a
// per-variable selection assembled as an OR of disjoint per-level pieces,
// then ANDed across variables level-wise, must equal the flat wah_and of the
// complete per-variable bitmaps. Pieces model hbx tree levels: each level
// owns a random subset of disjoint bin spans, rasterized at full width.
TEST(Wah, TreeLevelAndMatchesFlatAndOverRandomPredicates) {
  const std::uint64_t n = 4096;
  const std::uint64_t bins = 64;
  const std::uint64_t bin_w = n / bins;
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    // Two "variables": random predicate satisfaction per bin per variable.
    std::vector<Bitmap> full;
    std::vector<std::vector<WahBitmap>> levels;  // [var][level]
    for (int v = 0; v < 2; ++v) {
      Bitmap whole(n);
      std::vector<Bitmap> lv(3, Bitmap(n));
      for (std::uint64_t b = 0; b < bins; ++b) {
        if (rng.next_double() < 0.5) continue;  // bin excluded by predicate
        const std::uint64_t level = rng.next_below(3);  // which tree level
        for (std::uint64_t i = b * bin_w; i < (b + 1) * bin_w; ++i) {
          if (rng.next_double() < 0.7) {
            whole.set(i);
            lv[level].set(i);
          }
        }
      }
      full.push_back(whole);
      std::vector<WahBitmap> wl;
      for (const Bitmap& piece : lv) wl.push_back(WahBitmap::compress(piece));
      levels.push_back(std::move(wl));
    }

    // Flat path: AND the complete per-variable bitmaps.
    const WahBitmap flat = WahBitmap::logical_and(
        WahBitmap::compress(full[0]), WahBitmap::compress(full[1]));

    // Tree path: reassemble each variable by OR over levels, AND across
    // variables (the order the engine folds partial results).
    WahBitmap acc;
    for (int v = 0; v < 2; ++v) {
      WahBitmap per_var;
      for (const WahBitmap& piece : levels[v]) {
        per_var = per_var.size_bits() == 0
                      ? piece
                      : WahBitmap::logical_or(per_var, piece);
      }
      acc = v == 0 ? per_var : WahBitmap::logical_and(acc, per_var);
    }
    EXPECT_EQ(acc, flat);
    EXPECT_EQ(acc.decompress(), flat.decompress());
  }
}

// --------------------------------------------------- failure injection

TEST(Wah, DeserializeRejectsTruncatedStream) {
  Bitmap plain = random_bitmap(1000, 0.3, 3);
  ByteWriter w;
  WahBitmap::compress(plain).serialize(w);
  Bytes truncated(w.bytes().begin(), w.bytes().end() - 5);
  ByteReader r(truncated);
  EXPECT_FALSE(WahBitmap::deserialize(r).is_ok());
}

TEST(Wah, DeserializeRejectsGroupCountMismatch) {
  ByteWriter w;
  w.put_varint(1000);  // claims 1000 bits (33 groups)
  w.put_varint(1);     // but provides a single 2-group fill
  w.put_u32(0x80000000u | 0x40000000u | 2u);
  ByteReader r(w.bytes());
  auto res = WahBitmap::deserialize(r);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorruptData);
}

TEST(Wah, DeserializeRejectsZeroLengthFill) {
  ByteWriter w;
  w.put_varint(31);
  w.put_varint(1);
  w.put_u32(0x80000000u);  // fill of length 0
  ByteReader r(w.bytes());
  EXPECT_FALSE(WahBitmap::deserialize(r).is_ok());
}

TEST(Wah, DeserializeRejectsAbsurdWordCount) {
  ByteWriter w;
  w.put_varint(31);
  w.put_varint(1ull << 40);  // claims a trillion words
  ByteReader r(w.bytes());
  EXPECT_FALSE(WahBitmap::deserialize(r).is_ok());
}

// ---------------------------------------------------------------------------
// Differential tests: the word-level count/for_each_set fast paths and the
// fill-skipping WAH merges must match the retained bit-at-a-time /
// group-at-a-time references exactly (equal counts, equal index lists,
// word-identical compressed results) across sizes that straddle word and
// 31-bit-group boundaries and densities from empty to full.

class BitmapDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BitmapDifferential, CountAndForEachMatchScalarReference) {
  const auto [nbits, density] = GetParam();
  const Bitmap bm = random_bitmap(nbits, density, 17 + nbits);

  EXPECT_EQ(bm.count(), detail::scalar::bitmap_count(bm));

  std::vector<std::uint64_t> fast;
  bm.for_each_set([&](std::uint64_t i) { fast.push_back(i); });
  std::vector<std::uint64_t> ref;
  const std::uint64_t ref_count = detail::scalar::bitmap_collect_set(bm, ref);
  EXPECT_EQ(ref_count, ref.size());
  EXPECT_EQ(fast, ref);
}

TEST_P(BitmapDifferential, WahMergesMatchScalarReference) {
  const auto [nbits, density] = GetParam();
  const WahBitmap wa =
      WahBitmap::compress(random_bitmap(nbits, density, 23 + nbits));
  const WahBitmap wb =
      WahBitmap::compress(random_bitmap(nbits, 1.0 - density, 29 + nbits));

  EXPECT_EQ(WahBitmap::logical_and(wa, wb),
            detail::scalar::wah_logical_and(wa, wb));
  EXPECT_EQ(WahBitmap::logical_or(wa, wb),
            detail::scalar::wah_logical_or(wa, wb));
  // Self-merge: maximal fill runs on both sides at once.
  EXPECT_EQ(WahBitmap::logical_and(wa, wa),
            detail::scalar::wah_logical_and(wa, wa));
  EXPECT_EQ(WahBitmap::logical_or(wa, wa),
            detail::scalar::wah_logical_or(wa, wa));
}

INSTANTIATE_TEST_SUITE_P(
    SizeDensitySweep, BitmapDifferential,
    ::testing::Values(std::tuple{0ull, 0.0}, std::tuple{1ull, 1.0},
                      std::tuple{31ull, 0.5}, std::tuple{32ull, 0.5},
                      std::tuple{63ull, 0.5}, std::tuple{64ull, 0.5},
                      std::tuple{65ull, 0.02}, std::tuple{1000ull, 0.0},
                      std::tuple{1000ull, 1.0}, std::tuple{1000ull, 0.001},
                      std::tuple{50000ull, 0.01}, std::tuple{50000ull, 0.5},
                      std::tuple{50000ull, 0.99}));

}  // namespace
}  // namespace mloc
