// Wire-protocol tests: frame codec round-trip identity for every frame
// type, deterministic fuzz (truncation + byte flips at every offset must
// yield a clean Status, never UB), and server/client integration — served
// results bit-identical to in-process execution, pipelined out-of-order
// collection, cancel/deadline/session edge cases, protocol-error
// handling, and shutdown under load (the TSan hammer).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datagen/datagen.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "service/query_service.hpp"
#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace mloc {
namespace {

using namespace mloc::net;
using service::QueryService;
using service::Request;
using service::Response;
using service::ServiceConfig;
using service::SessionId;

// ------------------------------------------------------------ header codec

Bytes make_header_bytes(FrameHeader h) {
  Bytes out(kHeaderBytes);
  encode_header(h, out.data());
  return out;
}

TEST(WireHeader, RoundTripIdentity) {
  FrameHeader h;
  h.type = FrameType::kQuery;
  h.request_id = 0xDEADBEEFCAFEBABEull;
  h.payload_len = 12345;
  h.payload_crc = 0x8BADF00D;
  const Bytes bytes = make_header_bytes(h);

  auto back = decode_header(bytes);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().version, kProtocolVersion);
  EXPECT_EQ(back.value().type, FrameType::kQuery);
  EXPECT_EQ(back.value().request_id, h.request_id);
  EXPECT_EQ(back.value().payload_len, h.payload_len);
  EXPECT_EQ(back.value().payload_crc, h.payload_crc);
}

TEST(WireHeader, RejectsEveryTruncation) {
  const Bytes bytes = make_header_bytes(FrameHeader{});
  for (std::size_t len = 0; len < kHeaderBytes; ++len) {
    auto r = decode_header({bytes.data(), len});
    EXPECT_FALSE(r.is_ok()) << "length " << len;
  }
}

TEST(WireHeader, RejectsEveryByteFlip) {
  // The header CRC covers bytes [0, 24) and is itself stored in [24, 28),
  // so any single-byte corruption must be detected.
  FrameHeader h;
  h.type = FrameType::kQuery;
  h.request_id = 7;
  h.payload_len = 99;
  h.payload_crc = 0x12345678;
  const Bytes clean = make_header_bytes(h);
  for (std::size_t i = 0; i < kHeaderBytes; ++i) {
    Bytes bad = clean;
    bad[i] ^= 0x40;
    auto r = decode_header(bad);
    EXPECT_FALSE(r.is_ok()) << "flip at offset " << i;
  }
}

TEST(WireHeader, RejectsWrongVersionAsUnsupported) {
  FrameHeader h;
  h.version = kProtocolVersion + 1;
  auto r = decode_header(make_header_bytes(h));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnsupported);
}

TEST(WireHeader, RejectsUnknownTypeAsUnsupported) {
  FrameHeader h;
  h.type = static_cast<FrameType>(900);
  auto r = decode_header(make_header_bytes(h));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnsupported);
  EXPECT_FALSE(frame_type_known(900));
  EXPECT_TRUE(frame_type_known(static_cast<std::uint16_t>(FrameType::kPong)));
}

TEST(WireHeader, RejectsOversizedPayloadLength) {
  FrameHeader h;
  h.payload_len = kMaxPayloadBytes + 1;
  auto r = decode_header(make_header_bytes(h));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorruptData);
}

TEST(WireFrame, EncodeFrameVerifies) {
  const Bytes payload = encode_open_session("alice");
  const Bytes frame = encode_frame(FrameType::kOpenSession, 42, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size());

  auto h = decode_header(frame);
  ASSERT_TRUE(h.is_ok());
  std::span<const std::uint8_t> body(frame.data() + kHeaderBytes,
                                     frame.size() - kHeaderBytes);
  EXPECT_TRUE(verify_payload(h.value(), body).is_ok());

  Bytes tampered = frame;
  tampered[kHeaderBytes] ^= 0x01;
  std::span<const std::uint8_t> bad(tampered.data() + kHeaderBytes,
                                    tampered.size() - kHeaderBytes);
  EXPECT_FALSE(verify_payload(h.value(), bad).is_ok());
}

// ----------------------------------------------------------- payload codec

Request full_request() {
  Request req;
  req.var = "phi";
  req.query.vc = ValueConstraint{-1.25, 3.5};
  Coord lo{}, hi{};
  lo[0] = 4;
  hi[0] = 40;
  lo[1] = 8;
  hi[1] = 48;
  req.query.sc = Region(2, lo, hi);
  req.query.plod_level = 3;
  req.query.values_needed = true;
  req.priority = -7;
  req.deadline_s = 1.5;
  req.num_ranks = 9;
  service::MultivarSpec mv;
  mv.preds.push_back({"phi", ValueConstraint{0.0, 0.5}});
  mv.preds.push_back({"rho", ValueConstraint{-2.0, -1.0}});
  mv.combine = MlocStore::Combine::kOr;
  mv.fetch_var = "phi";
  req.multivar = std::move(mv);
  return req;
}

void expect_request_eq(const Request& a, const Request& b) {
  EXPECT_EQ(a.var, b.var);
  EXPECT_EQ(a.query.plod_level, b.query.plod_level);
  EXPECT_EQ(a.query.values_needed, b.query.values_needed);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.deadline_s, b.deadline_s);
  EXPECT_EQ(a.num_ranks, b.num_ranks);
  ASSERT_EQ(a.query.vc.has_value(), b.query.vc.has_value());
  if (a.query.vc.has_value()) {
    EXPECT_EQ(a.query.vc->lo, b.query.vc->lo);
    EXPECT_EQ(a.query.vc->hi, b.query.vc->hi);
  }
  ASSERT_EQ(a.query.sc.has_value(), b.query.sc.has_value());
  if (a.query.sc.has_value()) {
    ASSERT_EQ(a.query.sc->ndims(), b.query.sc->ndims());
    for (int d = 0; d < a.query.sc->ndims(); ++d) {
      EXPECT_EQ(a.query.sc->lo(d), b.query.sc->lo(d));
      EXPECT_EQ(a.query.sc->hi(d), b.query.sc->hi(d));
    }
  }
  ASSERT_EQ(a.multivar.has_value(), b.multivar.has_value());
  if (a.multivar.has_value()) {
    ASSERT_EQ(a.multivar->preds.size(), b.multivar->preds.size());
    for (std::size_t i = 0; i < a.multivar->preds.size(); ++i) {
      EXPECT_EQ(a.multivar->preds[i].var, b.multivar->preds[i].var);
      EXPECT_EQ(a.multivar->preds[i].vc.lo, b.multivar->preds[i].vc.lo);
      EXPECT_EQ(a.multivar->preds[i].vc.hi, b.multivar->preds[i].vc.hi);
    }
    EXPECT_EQ(a.multivar->combine, b.multivar->combine);
    EXPECT_EQ(a.multivar->fetch_var, b.multivar->fetch_var);
  }
}

TEST(WireRequest, RoundTripAllVariants) {
  std::vector<Request> variants;
  variants.push_back(Request{});  // defaults only
  {
    Request r;
    r.var = "v";
    r.query.vc = ValueConstraint{0.5, 1.0};
    r.query.values_needed = false;
    variants.push_back(r);
  }
  {
    Request r;
    r.var = "with spaces and \xE2\x98\x83";
    Coord lo{}, hi{};
    hi[0] = 10;
    hi[1] = 20;
    hi[2] = 30;
    r.query.sc = Region(3, lo, hi);
    variants.push_back(r);
  }
  variants.push_back(full_request());

  for (const Request& req : variants) {
    auto back = decode_request(encode_request(req));
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    expect_request_eq(req, back.value());
  }
}

TEST(WireRequest, RejectsEveryTruncation) {
  const Bytes p = encode_request(full_request());
  for (std::size_t len = 0; len < p.size(); ++len) {
    auto r = decode_request({p.data(), len});
    EXPECT_FALSE(r.is_ok()) << "length " << len;
  }
}

TEST(WireRequest, ByteFlipFuzzNeverCrashes) {
  // A flipped byte may still decode (e.g. inside a float), but it must
  // never abort, leak, or read out of bounds — ASan/UBSan enforce that.
  const Bytes clean = encode_request(full_request());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    for (std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      Bytes bad = clean;
      bad[i] ^= mask;
      (void)decode_request(bad);
    }
  }
}

TEST(WireRequest, RejectsUnknownFlags) {
  Bytes p = encode_request(Request{});
  p[0] |= 0x80;
  auto r = decode_request(p);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorruptData);
}

TEST(WireRequest, RejectsTrailingBytes) {
  Bytes p = encode_request(Request{});
  p.push_back(0);
  EXPECT_FALSE(decode_request(p).is_ok());
}

TEST(WireRequest, RejectsInvalidRegionWithoutAborting) {
  // Region's constructor MLOC_CHECKs lo <= hi; the decoder must catch the
  // invalid payload before constructing one.
  Request req;
  req.var = "v";
  Coord lo{}, hi{};
  lo[0] = 0;
  hi[0] = 10;
  req.query.sc = Region(1, lo, hi);
  Bytes p = encode_request(req);
  // Payload layout: flags u8, var (varint len + bytes), plod i64,
  // priority i64, deadline f64, ranks i64, then sc: ndims u8, lo u32, hi
  // u32. Overwrite hi with a value below lo.
  const std::size_t sc_off = 1 + 2 + 8 + 8 + 8 + 8;
  ASSERT_EQ(p.size(), sc_off + 1 + 4 + 4);
  p[sc_off] = 9;  // ndims out of range
  EXPECT_FALSE(decode_request(p).is_ok());
  p[sc_off] = 1;
  std::memset(p.data() + sc_off + 1, 0xFF, 4);  // lo = UINT32_MAX > hi
  // Re-encoding is not possible here (the payload CRC lives in the frame
  // header, not the payload), so decode_request sees the tampered bytes.
  auto r = decode_request(p);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorruptData);
}

TEST(WireAck, StatusRoundTrip) {
  for (const Status& st :
       {Status::ok(), not_found("no such thing"),
        deadline_exceeded("too slow"), cancelled("")}) {
    auto back = decode_status(encode_status(st));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().carried.code(), st.code());
    EXPECT_EQ(back.value().carried.message(), st.message());
  }
}

TEST(WireAck, RejectsUnknownErrorCode) {
  Bytes p = encode_status(not_found("x"));
  p[0] = 0xFF;
  p[1] = 0xFF;
  EXPECT_FALSE(decode_status(p).is_ok());
}

TEST(WireSession, OpenAndOpenedRoundTrip) {
  for (const std::string& label : {std::string{}, std::string{"viz-client"},
                                   std::string(300, 'x')}) {
    auto back = decode_open_session(encode_open_session(label));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), label);
  }
  auto id = decode_session_opened(encode_session_opened(0x1122334455667788ull));
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(id.value(), 0x1122334455667788ull);
}

TEST(WireCancel, RoundTripAndTruncation) {
  auto back = decode_cancel(encode_cancel(77));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), 77u);
  const Bytes p = encode_cancel(77);
  for (std::size_t len = 0; len < p.size(); ++len) {
    EXPECT_FALSE(decode_cancel({p.data(), len}).is_ok());
  }
}

TEST(WireShm, OfferRoundTripAndTruncation) {
  auto back = decode_shm_offer(encode_shm_offer(4ull << 20));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), 4ull << 20);
  const Bytes p = encode_shm_offer(1);
  for (std::size_t len = 0; len < p.size(); ++len) {
    EXPECT_FALSE(decode_shm_offer({p.data(), len}).is_ok());
  }
}

TEST(WireShm, AcceptRoundTripAndValidation) {
  ShmInfo info;
  info.name = "/mloc-1234-deadbeef";
  info.ring_bytes = 8ull << 20;
  info.token = 0xFEEDFACECAFED00Dull;
  info.data_offset = kShmControlBytes;
  auto back = decode_shm_accept(encode_shm_accept(info));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().name, info.name);
  EXPECT_EQ(back.value().ring_bytes, info.ring_bytes);
  EXPECT_EQ(back.value().token, info.token);
  EXPECT_EQ(back.value().data_offset, info.data_offset);

  const Bytes p = encode_shm_accept(info);
  for (std::size_t len = 0; len < p.size(); ++len) {
    EXPECT_FALSE(decode_shm_accept({p.data(), len}).is_ok());
  }
  // A name without the leading '/' cannot come from a well-behaved peer.
  ShmInfo bad = info;
  bad.name = "no-slash";
  EXPECT_FALSE(decode_shm_accept(encode_shm_accept(bad)).is_ok());
}

TEST(WireShm, AttachRoundTripAndTruncation) {
  for (bool mapped : {true, false}) {
    auto back = decode_shm_attach(encode_shm_attach(mapped));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), mapped);
  }
  EXPECT_FALSE(decode_shm_attach({}).is_ok());
  const Bytes junk = {7};  // only 0/1 are valid mapped flags
  EXPECT_FALSE(decode_shm_attach(junk).is_ok());
}

TEST(WireShm, ResultDescriptorRoundTripAndTruncation) {
  ShmDescriptor d;
  d.offset = 0x123456789ull;
  d.len = 0xABCDEF0u;
  d.release = 0x9876543210ull;
  auto back = decode_shm_result(encode_shm_result(d));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().offset, d.offset);
  EXPECT_EQ(back.value().len, d.len);
  EXPECT_EQ(back.value().release, d.release);
  const Bytes p = encode_shm_result(d);
  for (std::size_t len = 0; len < p.size(); ++len) {
    EXPECT_FALSE(decode_shm_result({p.data(), len}).is_ok());
  }
}

service::Response full_response() {
  service::Response resp;
  resp.status = Status::ok();
  resp.stats.query_id = 31;
  resp.stats.session = 5;
  resp.stats.queue_wait_s = 0.25;
  resp.stats.exec_wall_s = 1.5;
  resp.stats.modeled_s = 0.75;
  resp.stats.via_shm = true;
  resp.stats.cache = {1, 2, 3, 4};
  resp.stats.exec = {10, 20, 30, 40, 50, 60};
  resp.result.times.io = 0.125;
  resp.result.times.decompress = 0.5;
  resp.result.times.reconstruct = 0.0625;
  resp.result.bins_touched = 6;
  resp.result.aligned_bins = 2;
  resp.result.fragments_read = 12;
  resp.result.fragments_skipped = 3;
  resp.result.bytes_read = 4096;
  resp.result.cache = {5, 6, 7, 8};
  resp.result.exec = {11, 22, 33, 44, 55, 66};
  for (std::uint64_t i = 0; i < 100; ++i) {
    resp.result.positions.push_back(i * 17);
    resp.result.values.push_back(static_cast<double>(i) * 0.5 - 10.0);
  }
  return resp;
}

Bytes assemble(const EncodedResponse& er) {
  Bytes frame = er.head;
  const auto* pos = reinterpret_cast<const std::uint8_t*>(er.positions.data());
  frame.insert(frame.end(), pos, pos + er.positions.size() * 8);
  const auto* val = reinterpret_cast<const std::uint8_t*>(er.values.data());
  frame.insert(frame.end(), val, val + er.values.size() * 8);
  return frame;
}

TEST(WireResponse, ScatterGatherRoundTrip) {
  const service::Response resp = full_response();
  const auto expect_positions = resp.result.positions;
  const auto expect_values = resp.result.values;
  EncodedResponse er = encode_response_frame(902, full_response());
  EXPECT_EQ(er.positions, expect_positions);
  EXPECT_EQ(er.values, expect_values);

  // Reassemble the three scatter-gather pieces into one frame and decode
  // it the way a client does: header, payload CRC across all pieces,
  // payload.
  const Bytes frame = assemble(er);
  EXPECT_EQ(frame.size(), er.total_bytes());
  auto h = decode_header(frame);
  ASSERT_TRUE(h.is_ok()) << h.status().to_string();
  EXPECT_EQ(h.value().type, FrameType::kQueryResult);
  EXPECT_EQ(h.value().request_id, 902u);
  std::span<const std::uint8_t> payload(frame.data() + kHeaderBytes,
                                        frame.size() - kHeaderBytes);
  ASSERT_TRUE(verify_payload(h.value(), payload).is_ok());

  auto back = decode_response(payload);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const service::Response& b = back.value();
  EXPECT_TRUE(b.status.is_ok());
  EXPECT_EQ(b.stats.query_id, resp.stats.query_id);
  EXPECT_EQ(b.stats.session, resp.stats.session);
  EXPECT_EQ(b.stats.queue_wait_s, resp.stats.queue_wait_s);
  EXPECT_EQ(b.stats.exec_wall_s, resp.stats.exec_wall_s);
  EXPECT_EQ(b.stats.modeled_s, resp.stats.modeled_s);
  EXPECT_EQ(b.stats.via_shm, resp.stats.via_shm);
  EXPECT_EQ(b.stats.cache.hits, resp.stats.cache.hits);
  EXPECT_EQ(b.stats.exec.bytes_read, resp.stats.exec.bytes_read);
  EXPECT_EQ(b.result.times.io, resp.result.times.io);
  EXPECT_EQ(b.result.bins_touched, resp.result.bins_touched);
  EXPECT_EQ(b.result.bytes_read, resp.result.bytes_read);
  EXPECT_EQ(b.result.cache.misses, resp.result.cache.misses);
  EXPECT_EQ(b.result.exec.extents_coalesced,
            resp.result.exec.extents_coalesced);
  EXPECT_EQ(b.result.positions, expect_positions);
  EXPECT_EQ(b.result.values, expect_values);
}

TEST(WireResponse, ErrorResponseCarriesStatusWithEmptyArrays) {
  service::Response resp;
  resp.status = deadline_exceeded("expired in queue");
  EncodedResponse er = encode_response_frame(3, std::move(resp));
  EXPECT_TRUE(er.positions.empty());
  EXPECT_TRUE(er.values.empty());
  const Bytes frame = assemble(er);
  auto h = decode_header(frame);
  ASSERT_TRUE(h.is_ok());
  auto back = decode_response(
      {frame.data() + kHeaderBytes, frame.size() - kHeaderBytes});
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(back.value().status.message(), "expired in queue");
}

TEST(WireResponse, RejectsEveryTruncation) {
  const Bytes frame = assemble(encode_response_frame(1, full_response()));
  const std::size_t payload_size = frame.size() - kHeaderBytes;
  for (std::size_t len = 0; len < payload_size; ++len) {
    auto r = decode_response({frame.data() + kHeaderBytes, len});
    EXPECT_FALSE(r.is_ok()) << "length " << len;
  }
}

TEST(WireStats, RoundTripEveryField) {
  StatsSnapshot s;
  std::uint64_t n = 1;
  s.agg.submitted = n++;
  s.agg.completed = n++;
  s.agg.failed = n++;
  s.agg.rejected = n++;
  s.agg.expired = n++;
  s.agg.cancelled = n++;
  s.agg.queued = n++;
  s.agg.executing = n++;
  s.agg.cache = {n++, n++, n++, n++};
  s.agg.exec = {n++, n++, n++, n++, n++, n++};
  s.agg.total_queue_wait_s = 1.5;
  s.agg.total_exec_wall_s = 2.5;
  s.agg.total_modeled_s = 3.5;
  s.agg.peak_queue_depth = n++;
  s.agg.sessions_opened = n++;
  s.agg.sessions_open = n++;
  s.agg.ingests = n++;
  s.agg.ingest_failures = n++;
  s.agg.responses_shm = n++;
  s.agg.responses_tcp = n++;
  s.agg.bytes_shm = n++;
  s.agg.bytes_tcp = n++;
  s.agg.ingest.cells_routed = n++;
  s.agg.ingest.fragments_encoded = n++;
  s.agg.ingest.bins_written = n++;
  s.agg.ingest.bytes_written = n++;
  s.agg.ingest.partition_s = 0.1;
  s.agg.ingest.encode_s = 0.2;
  s.agg.ingest.fold_s = 0.3;
  s.agg.ingest.flush_s = 0.4;
  s.agg.ingest.wall_s = 0.5;
  s.agg.ingest.threads = 3;
  s.agg.ingest.write_behind = true;
  s.cache = {n++, n++, n++, n++, n++, n++, n++, n++};

  auto back = decode_stats(encode_stats(s));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const StatsSnapshot& b = back.value();
  EXPECT_EQ(b.agg.submitted, s.agg.submitted);
  EXPECT_EQ(b.agg.completed, s.agg.completed);
  EXPECT_EQ(b.agg.failed, s.agg.failed);
  EXPECT_EQ(b.agg.rejected, s.agg.rejected);
  EXPECT_EQ(b.agg.expired, s.agg.expired);
  EXPECT_EQ(b.agg.cancelled, s.agg.cancelled);
  EXPECT_EQ(b.agg.queued, s.agg.queued);
  EXPECT_EQ(b.agg.executing, s.agg.executing);
  EXPECT_EQ(b.agg.cache.bytes_saved, s.agg.cache.bytes_saved);
  EXPECT_EQ(b.agg.exec.modeled_seeks, s.agg.exec.modeled_seeks);
  EXPECT_EQ(b.agg.total_queue_wait_s, s.agg.total_queue_wait_s);
  EXPECT_EQ(b.agg.peak_queue_depth, s.agg.peak_queue_depth);
  EXPECT_EQ(b.agg.sessions_opened, s.agg.sessions_opened);
  EXPECT_EQ(b.agg.sessions_open, s.agg.sessions_open);
  EXPECT_EQ(b.agg.ingests, s.agg.ingests);
  EXPECT_EQ(b.agg.responses_shm, s.agg.responses_shm);
  EXPECT_EQ(b.agg.responses_tcp, s.agg.responses_tcp);
  EXPECT_EQ(b.agg.bytes_shm, s.agg.bytes_shm);
  EXPECT_EQ(b.agg.bytes_tcp, s.agg.bytes_tcp);
  EXPECT_EQ(b.agg.ingest.bytes_written, s.agg.ingest.bytes_written);
  EXPECT_EQ(b.agg.ingest.wall_s, s.agg.ingest.wall_s);
  EXPECT_EQ(b.agg.ingest.threads, s.agg.ingest.threads);
  EXPECT_EQ(b.agg.ingest.write_behind, s.agg.ingest.write_behind);
  EXPECT_EQ(b.cache.lookups, s.cache.lookups);
  EXPECT_EQ(b.cache.entries, s.cache.entries);

  const Bytes p = encode_stats(s);
  for (std::size_t len = 0; len < p.size(); ++len) {
    EXPECT_FALSE(decode_stats({p.data(), len}).is_ok());
  }
}

TEST(WireSessionStats, RoundTrip) {
  service::SessionStats s;
  s.label = "viz";
  s.open = true;
  s.submitted = 4;
  s.completed = 3;
  s.failed = 1;
  s.rejected = 2;
  s.cache = {9, 8, 7, 6};
  s.exec = {1, 2, 3, 4, 5, 6};
  s.total_queue_wait_s = 0.5;
  s.total_modeled_s = 1.25;
  auto back = decode_session_stats(encode_session_stats(s));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().label, s.label);
  EXPECT_EQ(back.value().open, s.open);
  EXPECT_EQ(back.value().submitted, s.submitted);
  EXPECT_EQ(back.value().completed, s.completed);
  EXPECT_EQ(back.value().failed, s.failed);
  EXPECT_EQ(back.value().rejected, s.rejected);
  EXPECT_EQ(back.value().cache.hits, s.cache.hits);
  EXPECT_EQ(back.value().exec.extents_naive, s.exec.extents_naive);
  EXPECT_EQ(back.value().total_queue_wait_s, s.total_queue_wait_s);
  EXPECT_EQ(back.value().total_modeled_s, s.total_modeled_s);
}

TEST(WireVariableList, RoundTripMixedLayouts) {
  std::vector<MlocStore::VariableDesc> vars(2);
  vars[0].name = "temp";
  vars[0].layout.chunk_shape = NDShape{16, 16};
  vars[0].epoch = 3;
  vars[0].plod_capable = true;
  vars[0].num_groups = 7;
  vars[1].name = "salinity";
  vars[1].layout.chunk_shape = NDShape{8, 8};
  vars[1].layout.num_bins = 9;
  vars[1].layout.order = LevelOrder::kVSM;
  vars[1].layout.curve = sfc::CurveKind::kGeneralizedMorton;
  vars[1].layout.interleave = "yyyxxx";
  vars[1].layout.codec = "isobar";
  vars[1].epoch = 1;
  vars[1].plod_capable = false;
  vars[1].num_groups = 1;

  auto back = decode_variable_list(encode_variable_list(vars));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  ASSERT_EQ(back.value().size(), 2u);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    EXPECT_EQ(back.value()[i].name, vars[i].name);
    EXPECT_EQ(back.value()[i].layout, vars[i].layout);
    EXPECT_EQ(back.value()[i].epoch, vars[i].epoch);
    EXPECT_EQ(back.value()[i].plod_capable, vars[i].plod_capable);
    EXPECT_EQ(back.value()[i].num_groups, vars[i].num_groups);
  }

  // Truncations never decode.
  const Bytes full = encode_variable_list(vars);
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(
        decode_variable_list(std::span(full.data(), n)).is_ok());
  }
}

// --------------------------------------------------------- server fixture

MlocConfig small_config(const NDShape& shape, const NDShape& chunk) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = 16;
  cfg.layout.codec = "mzip";
  cfg.layout.sample_stride = 7;
  return cfg;
}

Result<MlocStore> make_store(pfs::PfsStorage* fs) {
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      fs, "net", small_config(grid.shape(), NDShape{16, 16}));
  if (!store.is_ok()) return store;
  MLOC_RETURN_IF_ERROR(store.value().write_variable("phi", grid));
  Grid rho = datagen::gts_like(64, 1234);
  MLOC_RETURN_IF_ERROR(store.value().write_variable("rho", rho));
  return store;
}

Request vc_request(double lo, double hi, bool values = true) {
  Request req;
  req.var = "phi";
  req.query.vc = ValueConstraint{lo, hi};
  req.query.values_needed = values;
  return req;
}

struct ServedStore {
  pfs::PfsStorage fs;
  std::unique_ptr<QueryService> svc;
  std::unique_ptr<Server> server;

  explicit ServedStore(ServiceConfig cfg = {}, ServerConfig srv_cfg = {}) {
    auto store = make_store(&fs);
    MLOC_CHECK(store.is_ok());
    svc = std::make_unique<QueryService>(std::move(store).value(), cfg);
    server = std::make_unique<Server>(*svc, srv_cfg);
    MLOC_CHECK(server->start().is_ok());
  }

  // Client is deliberately non-movable, so connect one in place.
  void connect(net::Client* c) const {
    MLOC_CHECK(c->connect("127.0.0.1", server->port()).is_ok());
  }
};

TEST(NetServer, ServedResultsMatchInProcessExecution) {
  // Cold expected results, computed before the store moves into the
  // service (same pattern as the service hammer test).
  pfs::PfsStorage expected_fs;
  auto expected_store = make_store(&expected_fs);
  ASSERT_TRUE(expected_store.is_ok());
  const Request vc = vc_request(0.25, 0.75);
  auto expect_vc = expected_store.value().execute("phi", vc.query, 1);
  ASSERT_TRUE(expect_vc.is_ok());

  Request mv;
  mv.var = "phi";
  service::MultivarSpec spec;
  spec.preds.push_back({"phi", ValueConstraint{0.2, 0.8}});
  spec.preds.push_back({"rho", ValueConstraint{0.3, 0.9}});
  spec.combine = MlocStore::Combine::kAnd;
  spec.fetch_var = "phi";
  mv.multivar = spec;
  auto expect_mv = expected_store.value().multivar_select(
      spec.preds, spec.combine, spec.fetch_var, 7, 1);
  ASSERT_TRUE(expect_mv.is_ok());

  ServedStore served;
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.open_session("match-test").is_ok());

  auto got_vc = c.query(vc);
  ASSERT_TRUE(got_vc.is_ok()) << got_vc.status().to_string();
  ASSERT_TRUE(got_vc.value().status.is_ok())
      << got_vc.value().status.to_string();
  EXPECT_EQ(got_vc.value().result.positions, expect_vc.value().positions);
  EXPECT_EQ(got_vc.value().result.values, expect_vc.value().values);

  auto got_mv = c.query(mv);
  ASSERT_TRUE(got_mv.is_ok()) << got_mv.status().to_string();
  ASSERT_TRUE(got_mv.value().status.is_ok())
      << got_mv.value().status.to_string();
  EXPECT_EQ(got_mv.value().result.positions, expect_mv.value().positions);
  EXPECT_EQ(got_mv.value().result.values, expect_mv.value().values);
}

TEST(NetServer, PipelinedQueriesCollectOutOfOrder) {
  ServedStore served;
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.open_session().is_ok());

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = c.send_query(
        vc_request(0.1 * i, 0.1 * i + 0.2, /*values=*/i % 2 == 0));
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  // Collect newest-first: responses arrive in completion order, the
  // client stashes whatever lands before the id it wants.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    auto resp = c.wait(*it);
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    EXPECT_TRUE(resp.value().status.is_ok());
  }
}

TEST(NetServer, SessionLifecycleOverWire) {
  ServedStore served;
  net::Client c;
  served.connect(&c);
  EXPECT_TRUE(c.ping().is_ok());

  // Query without a session: a clean error response, connection usable.
  auto no_session = c.query(vc_request(0.0, 1.0));
  ASSERT_TRUE(no_session.is_ok());
  EXPECT_EQ(no_session.value().status.code(), ErrorCode::kFailedPrecondition);

  auto sid = c.open_session("lifecycle");
  ASSERT_TRUE(sid.is_ok());
  EXPECT_NE(sid.value(), 0u);
  // Second open on the same connection is refused.
  EXPECT_EQ(c.open_session("again").status().code(),
            ErrorCode::kFailedPrecondition);

  auto resp = c.query(vc_request(0.4, 0.6));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().status.is_ok());
  EXPECT_EQ(resp.value().stats.session, sid.value());

  auto stats = c.session_stats();
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().label, "lifecycle");
  EXPECT_TRUE(stats.value().open);
  EXPECT_EQ(stats.value().submitted, 1u);
  EXPECT_EQ(stats.value().completed, 1u);

  EXPECT_TRUE(c.close_session().is_ok());
  EXPECT_EQ(c.close_session().code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(c.ping().is_ok());
}

TEST(NetServer, StatsSnapshotOverWireIsConsistent) {
  ServedStore served;
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.open_session().is_ok());
  for (int i = 0; i < 3; ++i) {
    auto resp = c.query(vc_request(0.3, 0.7));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_TRUE(resp.value().status.is_ok());
  }
  auto snap = c.stats();
  ASSERT_TRUE(snap.is_ok()) << snap.status().to_string();
  const service::AggregateStats& a = snap.value().agg;
  EXPECT_EQ(a.submitted, a.completed + a.failed + a.expired + a.cancelled +
                             a.queued + a.executing);
  EXPECT_EQ(a.submitted, 3u);
  EXPECT_EQ(a.completed, 3u);
  EXPECT_GT(snap.value().cache.lookups, 0u);
}

TEST(NetServer, VariableListOverWireMatchesDescribeAll) {
  ServedStore served;
  net::Client c;
  served.connect(&c);
  auto vars = c.list_variables();
  ASSERT_TRUE(vars.is_ok()) << vars.status().to_string();

  const auto local = served.svc->store().describe_all();
  ASSERT_EQ(vars.value().size(), local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(vars.value()[i].name, local[i].name);
    EXPECT_EQ(vars.value()[i].layout, local[i].layout);
    EXPECT_EQ(vars.value()[i].epoch, local[i].epoch);
    EXPECT_EQ(vars.value()[i].plod_capable, local[i].plod_capable);
    EXPECT_EQ(vars.value()[i].num_groups, local[i].num_groups);
  }
}

TEST(NetServer, CancelQueuedQueryAndCancelCompletedQuery) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.start_paused = true;
  ServedStore served(cfg);
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.open_session().is_ok());

  // Queued (service paused): cancel succeeds; the Cancelled response is
  // produced at dispatch time, so it arrives once dispatch resumes.
  auto id = c.send_query(vc_request(0.0, 1.0));
  ASSERT_TRUE(id.is_ok());
  EXPECT_TRUE(c.cancel(id.value()).is_ok());
  served.svc->resume();
  auto resp = c.wait(id.value());
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp.value().status.code(), ErrorCode::kCancelled);

  // Completed: the request id is no longer in flight, so the server
  // answers NotFound without touching the service.
  auto done = c.query(vc_request(0.2, 0.4));
  ASSERT_TRUE(done.is_ok());
  ASSERT_TRUE(done.value().status.is_ok());
  EXPECT_EQ(c.cancel(2).code(), ErrorCode::kNotFound);
  // Unknown id: same NotFound, connection still fine.
  EXPECT_EQ(c.cancel(999999).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(c.ping().is_ok());
}

TEST(NetServer, DeadlineExpiryDeliveredToSlowReader) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.start_paused = true;
  ServedStore served(cfg);
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.open_session().is_ok());

  Request req = vc_request(0.0, 1.0);
  req.deadline_s = 0.02;
  auto id = c.send_query(req);
  ASSERT_TRUE(id.is_ok());
  // The deadline expires while the query is queued; the client is not
  // reading yet (slow connection) so the response sits in the outbox
  // until we collect it.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  served.svc->resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  auto resp = c.wait(id.value());
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(resp.value().status.code(), ErrorCode::kDeadlineExceeded);
}

TEST(NetServer, SessionCloseWithInFlightQueries) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.start_paused = true;
  ServedStore served(cfg);
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.open_session().is_ok());

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = c.send_query(vc_request(0.1, 0.9));
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  // Close the session while all three are queued: the close succeeds and
  // the in-flight queries still resolve normally.
  EXPECT_TRUE(c.close_session().is_ok());
  served.svc->resume();
  for (std::uint64_t id : ids) {
    auto resp = c.wait(id);
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    EXPECT_TRUE(resp.value().status.is_ok())
        << resp.value().status.to_string();
  }
  // New queries on the closed session are rejected by the service.
  auto rejected = c.query(vc_request(0.1, 0.9));
  ASSERT_TRUE(rejected.is_ok());
  EXPECT_EQ(rejected.value().status.code(), ErrorCode::kFailedPrecondition);
}

// -------------------------------------------------- raw-socket edge cases

int raw_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MLOC_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  MLOC_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0);
  return fd;
}

void raw_send(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    MLOC_CHECK(n > 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Read one whole frame (header + payload); returns false on EOF.
bool raw_read_frame(int fd, FrameHeader* h, Bytes* payload) {
  Bytes head(kHeaderBytes);
  std::size_t off = 0;
  while (off < head.size()) {
    ssize_t n = ::recv(fd, head.data() + off, head.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  auto decoded = decode_header(head);
  MLOC_CHECK(decoded.is_ok());
  *h = decoded.value();
  payload->resize(h->payload_len);
  off = 0;
  while (off < payload->size()) {
    ssize_t n = ::recv(fd, payload->data() + off, payload->size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

TEST(NetServer, UnknownFrameTypeIsSkippedNotFatal) {
  ServedStore served;
  const int fd = raw_connect(served.server->port());

  // Same version, unknown type: the server must answer Unsupported and
  // keep the connection parseable (versioning rule in wire.hpp).
  FrameHeader h;
  h.type = static_cast<FrameType>(907);
  h.request_id = 5;
  const Bytes payload = {1, 2, 3};
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.payload_crc = crc32(payload);
  Bytes frame(kHeaderBytes);
  encode_header(h, frame.data());
  frame.insert(frame.end(), payload.begin(), payload.end());
  raw_send(fd, frame);

  FrameHeader reply;
  Bytes reply_payload;
  ASSERT_TRUE(raw_read_frame(fd, &reply, &reply_payload));
  EXPECT_EQ(reply.type, FrameType::kAck);
  EXPECT_EQ(reply.request_id, 5u);
  auto ack = decode_status(reply_payload);
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(ack.value().carried.code(), ErrorCode::kUnsupported);

  // Connection still usable afterwards.
  raw_send(fd, encode_frame(FrameType::kPing, 6, {}));
  ASSERT_TRUE(raw_read_frame(fd, &reply, &reply_payload));
  EXPECT_EQ(reply.type, FrameType::kPong);
  EXPECT_EQ(reply.request_id, 6u);
  ::close(fd);
}

TEST(NetServer, CorruptStreamClosesConnection) {
  ServedStore served;
  for (int variant = 0; variant < 3; ++variant) {
    const int fd = raw_connect(served.server->port());
    Bytes bad;
    if (variant == 0) {  // garbage magic
      bad.assign(kHeaderBytes, 0x5A);
    } else if (variant == 1) {  // wrong protocol version
      FrameHeader h;
      h.version = kProtocolVersion + 7;
      bad.resize(kHeaderBytes);
      encode_header(h, bad.data());
    } else {  // valid header, corrupt payload CRC
      bad = encode_frame(FrameType::kPing, 1, {});
      Bytes payload = {9, 9};
      bad = encode_frame(FrameType::kOpenSession, 1, payload);
      bad[bad.size() - 1] ^= 0xFF;
    }
    raw_send(fd, bad);
    FrameHeader reply;
    Bytes reply_payload;
    EXPECT_FALSE(raw_read_frame(fd, &reply, &reply_payload))
        << "variant " << variant;
    ::close(fd);
  }
  // Give the stats a moment to settle, then check the teardown counted.
  for (int i = 0; i < 100 && served.server->stats().protocol_errors < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(served.server->stats().protocol_errors, 3u);
}

TEST(NetServer, ConnectionDropWithInFlightQueriesClosesSession) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.start_paused = true;
  ServedStore served(cfg);
  {
    net::Client c;
    served.connect(&c);
    ASSERT_TRUE(c.open_session("dropped").is_ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(c.send_query(vc_request(0.1, 0.9)).is_ok());
    }
    // Client destructor closes the socket with three queries in flight.
  }
  // The server notices the EOF, closes the session, and drops the three
  // responses when they resolve.
  for (int i = 0; i < 200 && served.svc->aggregate().sessions_open != 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(served.svc->aggregate().sessions_open, 0u);
  served.svc->resume();
  for (int i = 0; i < 200 && served.server->stats().responses_dropped < 3;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(served.server->stats().responses_dropped, 3u);
  const service::AggregateStats agg = served.svc->aggregate();
  EXPECT_EQ(agg.submitted, agg.completed + agg.failed + agg.expired +
                               agg.cancelled + agg.queued + agg.executing);
}

// ------------------------------------------------------- shutdown / hammer

TEST(NetServer, GracefulShutdownDrainsInFlight) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  ServedStore served(cfg);
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.open_session().is_ok());

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    auto id = c.send_query(vc_request(0.05 * i, 0.05 * i + 0.3));
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  // Frames on one connection are handled in order, so a pong proves every
  // query above was admitted before the drain begins.
  ASSERT_TRUE(c.ping().is_ok());
  std::thread stopper([&] { served.server->shutdown(5.0); });
  // Every submitted query must produce a wire response before the server
  // tears the connection down.
  for (std::uint64_t id : ids) {
    auto resp = c.wait(id);
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    EXPECT_TRUE(resp.value().status.is_ok());
  }
  stopper.join();
  EXPECT_EQ(served.server->stats().responses_dropped, 0u);
  // New connections are refused after shutdown.
  net::Client late;
  Status st = late.connect("127.0.0.1", served.server->port());
  if (st.is_ok()) {
    EXPECT_FALSE(late.ping().is_ok());
  }
}

TEST(NetServer, HammerManyClientsManyInFlight) {
  // The TSan workhorse: several client threads, each with its own
  // connection, pipelining batches and checking every response against
  // the cold baseline.
  pfs::PfsStorage expected_fs;
  auto expected_store = make_store(&expected_fs);
  ASSERT_TRUE(expected_store.is_ok());
  const Request probe = vc_request(0.25, 0.75);
  auto expected = expected_store.value().execute("phi", probe.query, 1);
  ASSERT_TRUE(expected.is_ok());

  ServiceConfig cfg;
  cfg.num_workers = 4;
  ServerConfig srv_cfg;
  srv_cfg.num_loops = 2;
  ServedStore served(cfg, srv_cfg);

  constexpr int kThreads = 4;
  constexpr int kBatches = 3;
  constexpr int kPipelined = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      net::Client c;
      if (!c.connect("127.0.0.1", served.server->port()).is_ok() ||
          !c.open_session("hammer").is_ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int b = 0; b < kBatches; ++b) {
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < kPipelined; ++i) {
          auto id = c.send_query(probe);
          if (!id.is_ok()) {
            failures.fetch_add(1);
            return;
          }
          ids.push_back(id.value());
        }
        for (std::uint64_t id : ids) {
          auto resp = c.wait(id);
          if (!resp.is_ok() || !resp.value().status.is_ok()) {
            failures.fetch_add(1);
            return;
          }
          if (resp.value().result.positions != expected.value().positions ||
              resp.value().result.values != expected.value().values) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const service::AggregateStats agg = served.svc->aggregate();
  EXPECT_EQ(agg.completed,
            static_cast<std::uint64_t>(kThreads * kBatches * kPipelined));
  EXPECT_EQ(agg.submitted, agg.completed + agg.failed + agg.expired +
                               agg.cancelled + agg.queued + agg.executing);
}

TEST(NetServer, ShutdownUnderLoadNeverHangsOrCrashes) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  ServedStore served(cfg);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        net::Client c;
        if (!c.connect("127.0.0.1", served.server->port()).is_ok()) return;
        if (!c.open_session("load").is_ok()) return;
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 4; ++i) {
          auto id = c.send_query(vc_request(0.2, 0.8));
          if (!id.is_ok()) return;
          ids.push_back(id.value());
        }
        for (std::uint64_t id : ids) {
          // Transport errors are expected once shutdown begins; response
          // payloads must still decode when they do arrive.
          auto resp = c.wait(id);
          if (!resp.is_ok()) return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  served.server->shutdown(2.0);
  stop.store(true);
  for (auto& th : threads) th.join();

  // Shutdown left nothing in flight and the service ledger balances.
  const service::AggregateStats agg = served.svc->aggregate();
  EXPECT_EQ(agg.queued, 0u);
  EXPECT_EQ(agg.executing, 0u);
  EXPECT_EQ(agg.submitted, agg.completed + agg.failed + agg.expired +
                               agg.cancelled);
}

}  // namespace
}  // namespace mloc
