// Unit tests for src/array: shapes, regions, grids, chunk lattices.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "array/chunking.hpp"
#include "array/grid.hpp"
#include "array/region.hpp"
#include "array/shape.hpp"

namespace mloc {
namespace {

// ----------------------------------------------------------------- Shape

TEST(NDShape, VolumeAndExtents) {
  NDShape s{4, 5, 6};
  EXPECT_EQ(s.ndims(), 3);
  EXPECT_EQ(s.extent(0), 4u);
  EXPECT_EQ(s.extent(2), 6u);
  EXPECT_EQ(s.volume(), 120u);
  EXPECT_EQ(s.to_string(), "[4x5x6]");
}

TEST(NDShape, LinearizeRowMajorLastDimFastest) {
  NDShape s{2, 3};
  EXPECT_EQ(s.linearize({0, 0}), 0u);
  EXPECT_EQ(s.linearize({0, 1}), 1u);
  EXPECT_EQ(s.linearize({0, 2}), 2u);
  EXPECT_EQ(s.linearize({1, 0}), 3u);
  EXPECT_EQ(s.linearize({1, 2}), 5u);
}

TEST(NDShape, LinearizeDelinearizeBijective) {
  NDShape s{3, 4, 5, 2};
  for (std::uint64_t off = 0; off < s.volume(); ++off) {
    Coord c = s.delinearize(off);
    EXPECT_TRUE(s.contains(c));
    EXPECT_EQ(s.linearize(c), off);
  }
}

TEST(NDShape, Contains) {
  NDShape s{4, 4};
  EXPECT_TRUE(s.contains({3, 3}));
  EXPECT_FALSE(s.contains({4, 0}));
  EXPECT_FALSE(s.contains({0, 4}));
}

TEST(NDShape, Equality) {
  EXPECT_EQ(NDShape({2, 3}), NDShape({2, 3}));
  EXPECT_FALSE(NDShape({2, 3}) == NDShape({3, 2}));
  EXPECT_FALSE(NDShape({2, 3}) == NDShape({2, 3, 1}));
}

// ---------------------------------------------------------------- Region

TEST(Region, VolumeAndEmpty) {
  Region r(2, {1, 2}, {4, 6});
  EXPECT_EQ(r.volume(), 12u);
  EXPECT_FALSE(r.empty());
  Region e(2, {3, 3}, {3, 5});
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.volume(), 0u);
}

TEST(Region, WholeCoversShape) {
  NDShape s{7, 9};
  Region w = Region::whole(s);
  EXPECT_EQ(w.volume(), s.volume());
  EXPECT_TRUE(w.contains(Coord{6, 8}));
  EXPECT_FALSE(w.contains(Coord{7, 0}));
}

TEST(Region, ContainsPointHalfOpen) {
  Region r(2, {1, 1}, {3, 3});
  EXPECT_TRUE(r.contains(Coord{1, 1}));
  EXPECT_TRUE(r.contains(Coord{2, 2}));
  EXPECT_FALSE(r.contains(Coord{3, 3}));
  EXPECT_FALSE(r.contains(Coord{0, 2}));
}

TEST(Region, ContainsRegion) {
  Region big(2, {0, 0}, {10, 10});
  Region inner(2, {2, 3}, {5, 7});
  EXPECT_TRUE(big.contains(inner));
  EXPECT_FALSE(inner.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Region, IntersectionAndIntersects) {
  Region a(2, {0, 0}, {5, 5});
  Region b(2, {3, 3}, {8, 8});
  EXPECT_TRUE(a.intersects(b));
  Region c = a.intersection(b);
  EXPECT_EQ(c, Region(2, {3, 3}, {5, 5}));

  Region d(2, {5, 0}, {6, 5});  // touches a at x=5 boundary: half-open → no
  EXPECT_FALSE(a.intersects(d));
  EXPECT_TRUE(a.intersection(d).empty());
}

TEST(Region, ForEachVisitsRowMajor) {
  Region r(2, {1, 2}, {3, 4});
  std::vector<Coord> visited;
  r.for_each([&](const Coord& c) { visited.push_back(c); });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_EQ(visited[0], (Coord{1, 2}));
  EXPECT_EQ(visited[1], (Coord{1, 3}));
  EXPECT_EQ(visited[2], (Coord{2, 2}));
  EXPECT_EQ(visited[3], (Coord{2, 3}));
}

TEST(Region, ForEach3D) {
  Region r(3, {0, 0, 0}, {2, 2, 2});
  int count = 0;
  r.for_each([&](const Coord&) { ++count; });
  EXPECT_EQ(count, 8);
}

TEST(Region, ForEachEmptyVisitsNothing) {
  Region r(2, {1, 1}, {1, 5});
  int count = 0;
  r.for_each([&](const Coord&) { ++count; });
  EXPECT_EQ(count, 0);
}

// ------------------------------------------------------------------ Grid

TEST(Grid, ZeroInitialized) {
  Grid g(NDShape{3, 3});
  for (std::uint64_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.at_linear(i), 0.0);
  }
}

TEST(Grid, AtAndLinearAgree) {
  Grid g(NDShape{4, 5});
  g.at({2, 3}) = 7.5;
  EXPECT_EQ(g.at_linear(NDShape({4, 5}).linearize({2, 3})), 7.5);
}

TEST(Grid, ExtractRegionRowMajor) {
  NDShape s{4, 4};
  Grid g(s);
  for (std::uint64_t i = 0; i < s.volume(); ++i) {
    g.at_linear(i) = static_cast<double>(i);
  }
  auto vals = g.extract(Region(2, {1, 1}, {3, 3}));
  EXPECT_EQ(vals, (std::vector<double>{5, 6, 9, 10}));
}

TEST(Grid, ExtractWholeEqualsValues) {
  NDShape s{2, 3, 2};
  Grid g(s);
  std::iota(g.values().begin(), g.values().end(), 0.0);
  auto vals = g.extract(Region::whole(s));
  EXPECT_TRUE(std::equal(vals.begin(), vals.end(), g.values().begin()));
}

TEST(Grid, InsertThenExtractRoundTrips) {
  Grid g(NDShape{5, 5});
  const Region r(2, {1, 2}, {4, 5});
  std::vector<double> payload(r.volume());
  std::iota(payload.begin(), payload.end(), 100.0);
  g.insert(r, payload);
  EXPECT_EQ(g.extract(r), payload);
  EXPECT_EQ(g.at({0, 0}), 0.0);  // untouched outside the region
}

// ------------------------------------------------------------- Chunking

TEST(ChunkGrid, ExactTiling) {
  ChunkGrid cg(NDShape{8, 8}, NDShape{4, 4});
  EXPECT_EQ(cg.num_chunks(), 4u);
  EXPECT_EQ(cg.lattice_shape(), NDShape({2, 2}));
  EXPECT_EQ(cg.chunk_region(0), Region(2, {0, 0}, {4, 4}));
  EXPECT_EQ(cg.chunk_region(3), Region(2, {4, 4}, {8, 8}));
}

TEST(ChunkGrid, RaggedEdgesClipped) {
  ChunkGrid cg(NDShape{10, 6}, NDShape{4, 4});
  EXPECT_EQ(cg.lattice_shape(), NDShape({3, 2}));
  // Bottom-right chunk covers the 2x2 remainder.
  Region last = cg.chunk_region(cg.num_chunks() - 1);
  EXPECT_EQ(last, Region(2, {8, 4}, {10, 6}));
}

TEST(ChunkGrid, ChunkOfElement) {
  ChunkGrid cg(NDShape{8, 8}, NDShape{4, 4});
  EXPECT_EQ(cg.chunk_of({0, 0}), 0u);
  EXPECT_EQ(cg.chunk_of({3, 7}), 1u);
  EXPECT_EQ(cg.chunk_of({7, 1}), 2u);
  EXPECT_EQ(cg.chunk_of({5, 5}), 3u);
}

TEST(ChunkGrid, ChunkIdCoordBijective) {
  ChunkGrid cg(NDShape{16, 12, 8}, NDShape{4, 4, 4});
  for (ChunkId id = 0; id < cg.num_chunks(); ++id) {
    EXPECT_EQ(cg.chunk_id(cg.chunk_coord(id)), id);
  }
}

TEST(ChunkGrid, ChunksOverlappingQuery) {
  ChunkGrid cg(NDShape{8, 8}, NDShape{4, 4});
  auto hits = cg.chunks_overlapping(Region(2, {2, 2}, {6, 6}));
  EXPECT_EQ(hits, (std::vector<ChunkId>{0, 1, 2, 3}));
  hits = cg.chunks_overlapping(Region(2, {0, 0}, {4, 4}));
  EXPECT_EQ(hits, (std::vector<ChunkId>{0}));
  hits = cg.chunks_overlapping(Region(2, {0, 0}, {0, 0}));
  EXPECT_TRUE(hits.empty());
}

TEST(ChunkGrid, ChunkRegionsPartitionArray) {
  // Every element belongs to exactly one chunk region.
  ChunkGrid cg(NDShape{9, 7}, NDShape{4, 3});
  std::vector<int> cover(NDShape({9, 7}).volume(), 0);
  const NDShape s = cg.array_shape();
  for (ChunkId id = 0; id < cg.num_chunks(); ++id) {
    cg.chunk_region(id).for_each(
        [&](const Coord& c) { ++cover[s.linearize(c)]; });
  }
  for (int c : cover) EXPECT_EQ(c, 1);
}

TEST(ChunkGrid, OverlapConsistentWithChunkOf) {
  ChunkGrid cg(NDShape{12, 12}, NDShape{5, 5});
  const Region q(2, {3, 6}, {11, 9});
  auto hits = cg.chunks_overlapping(q);
  // Brute force: chunk ids of all points in q.
  std::vector<ChunkId> expect;
  q.for_each([&](const Coord& c) { expect.push_back(cg.chunk_of(c)); });
  std::sort(expect.begin(), expect.end());
  expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
  EXPECT_EQ(hits, expect);
}

}  // namespace
}  // namespace mloc
