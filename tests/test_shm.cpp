// Shared-memory transport tests: the ring segment itself (cursor
// protocol, wraparound, exhaustion, validation against corrupt or
// mismatched segments), the kShmOffer/kShmAccept/kShmAttach negotiation
// with every fallback path degrading cleanly to TCP, crash reclamation
// (no leaked /dev/shm entries), byte identity of shm-served responses
// against in-process execution, and a multi-client pipelining hammer
// (the TSan workhorse for the ring's produced/consumed protocol).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datagen/datagen.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/shm.hpp"
#include "net/wire.hpp"
#include "service/query_service.hpp"
#include "util/assert.hpp"

namespace mloc {
namespace {

using namespace mloc::net;
using service::QueryService;
using service::Request;
using service::ServiceConfig;

// ------------------------------------------------------------- ring unit

Bytes pattern_bytes(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return b;
}

TEST(ShmRing, CreateOpenPublishViewRoundTrip) {
  auto seg = ShmServerSegment::create(kShmMinRingBytes);
  ASSERT_TRUE(seg.is_ok()) << seg.status().to_string();
  auto cli = ShmClientSegment::open(seg.value()->info());
  ASSERT_TRUE(cli.is_ok()) << cli.status().to_string();

  const Bytes payload = pattern_bytes(1000, 3);
  auto slot = seg.value()->try_alloc(payload.size());
  ASSERT_TRUE(slot.has_value());
  std::memcpy(slot->data, payload.data(), payload.size());
  seg.value()->publish(*slot);

  auto view = cli.value()->view(slot->offset,
                                static_cast<std::uint32_t>(payload.size()),
                                slot->release);
  ASSERT_TRUE(view.is_ok()) << view.status().to_string();
  ASSERT_EQ(view.value().size(), payload.size());
  EXPECT_EQ(std::memcmp(view.value().data(), payload.data(), payload.size()),
            0);
  cli.value()->release(slot->release);
}

TEST(ShmRing, WraparoundNeverSplitsAPayload) {
  // 1000-byte payloads in a 4096-byte ring: the allocator must skip the
  // tail rather than split, and the skip is accounted in the cursors so
  // producer and consumer agree across dozens of wraps.
  auto seg = ShmServerSegment::create(kShmMinRingBytes);
  ASSERT_TRUE(seg.is_ok());
  auto cli = ShmClientSegment::open(seg.value()->info());
  ASSERT_TRUE(cli.is_ok());

  for (int i = 0; i < 64; ++i) {
    const Bytes payload =
        pattern_bytes(1000, static_cast<std::uint8_t>(i * 13 + 1));
    auto slot = seg.value()->try_alloc(payload.size());
    ASSERT_TRUE(slot.has_value()) << "iteration " << i;
    // The payload must be contiguous inside the data area.
    ASSERT_LE(slot->offset + payload.size(), kShmMinRingBytes);
    std::memcpy(slot->data, payload.data(), payload.size());
    seg.value()->publish(*slot);

    auto view = cli.value()->view(
        slot->offset, static_cast<std::uint32_t>(payload.size()),
        slot->release);
    ASSERT_TRUE(view.is_ok()) << "iteration " << i << ": "
                              << view.status().to_string();
    EXPECT_EQ(
        std::memcmp(view.value().data(), payload.data(), payload.size()), 0)
        << "iteration " << i;
    cli.value()->release(slot->release);
  }
}

TEST(ShmRing, FullRingRefusesUntilConsumerReleases) {
  auto seg = ShmServerSegment::create(kShmMinRingBytes);
  ASSERT_TRUE(seg.is_ok());
  auto cli = ShmClientSegment::open(seg.value()->info());
  ASSERT_TRUE(cli.is_ok());

  std::vector<ShmSlot> slots;
  for (int i = 0; i < 3; ++i) {
    auto slot = seg.value()->try_alloc(1200);
    ASSERT_TRUE(slot.has_value()) << "slot " << i;
    seg.value()->publish(*slot);
    slots.push_back(*slot);
  }
  // 3 x 1200 = 3600 live plus the 496-byte tail skip: no room left.
  EXPECT_FALSE(seg.value()->try_alloc(1200).has_value());

  // Releasing the oldest slot makes exactly that much room again.
  cli.value()->release(slots[0].release);
  auto freed = seg.value()->try_alloc(1200);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(freed->offset, 0u);  // wrapped into the reclaimed space
}

TEST(ShmRing, OversizePayloadNeverFits) {
  auto seg = ShmServerSegment::create(kShmMinRingBytes);
  ASSERT_TRUE(seg.is_ok());
  EXPECT_FALSE(seg.value()->try_alloc(kShmMinRingBytes + 1).has_value());
}

TEST(ShmRing, OpenRejectsMissingOrMismatchedSegments) {
  // Nonexistent name.
  {
    ShmInfo info;
    info.name = "/mloc-test-definitely-missing";
    info.ring_bytes = kShmMinRingBytes;
    info.data_offset = kShmControlBytes;
    info.token = 1;
    EXPECT_FALSE(ShmClientSegment::open(info).is_ok());
  }
  auto seg = ShmServerSegment::create(kShmMinRingBytes);
  ASSERT_TRUE(seg.is_ok());
  // Token mismatch: a stale or spoofed accept frame must not attach.
  {
    ShmInfo info = seg.value()->info();
    info.token ^= 1;
    auto r = ShmClientSegment::open(info);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kCorruptData);
  }
  // Geometry mismatch against the mapped control block.
  {
    ShmInfo info = seg.value()->info();
    info.ring_bytes *= 2;
    EXPECT_FALSE(ShmClientSegment::open(info).is_ok());
  }
}

TEST(ShmRing, ViewRejectsCorruptDescriptors) {
  auto seg = ShmServerSegment::create(kShmMinRingBytes);
  ASSERT_TRUE(seg.is_ok());
  auto cli = ShmClientSegment::open(seg.value()->info());
  ASSERT_TRUE(cli.is_ok());

  auto slot = seg.value()->try_alloc(100);
  ASSERT_TRUE(slot.has_value());
  seg.value()->publish(*slot);

  // Structurally inconsistent descriptors (offset/len/release disagree).
  EXPECT_FALSE(cli.value()->view(slot->offset, 100, slot->release + 100)
                   .is_ok());
  EXPECT_FALSE(cli.value()->view(slot->offset, 50, slot->release).is_ok());
  // Descriptor for bytes the producer has not published yet.
  EXPECT_FALSE(cli.value()->view(100, 100, slot->release + 200).is_ok());
  // The genuine descriptor still works after the rejections.
  EXPECT_TRUE(
      cli.value()->view(slot->offset, 100, slot->release).is_ok());
}

// ------------------------------------------------------- served fixture

MlocConfig small_config(const NDShape& shape, const NDShape& chunk) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = 16;
  cfg.layout.codec = "mzip";
  cfg.layout.sample_stride = 7;
  return cfg;
}

Result<MlocStore> make_store(pfs::PfsStorage* fs) {
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      fs, "net", small_config(grid.shape(), NDShape{16, 16}));
  if (!store.is_ok()) return store;
  MLOC_RETURN_IF_ERROR(store.value().write_variable("phi", grid));
  return store;
}

Request vc_request(double lo, double hi, bool values = true) {
  Request req;
  req.var = "phi";
  req.query.vc = ValueConstraint{lo, hi};
  req.query.values_needed = values;
  return req;
}

struct ServedStore {
  pfs::PfsStorage fs;
  std::unique_ptr<QueryService> svc;
  std::unique_ptr<Server> server;

  explicit ServedStore(ServiceConfig cfg = {}, ServerConfig srv_cfg = {}) {
    auto store = make_store(&fs);
    MLOC_CHECK(store.is_ok());
    svc = std::make_unique<QueryService>(std::move(store).value(), cfg);
    server = std::make_unique<Server>(*svc, srv_cfg);
    MLOC_CHECK(server->start().is_ok());
  }

  void connect(net::Client* c) const {
    MLOC_CHECK(c->connect("127.0.0.1", server->port()).is_ok());
  }
};

/// /dev/shm entries created by this process ("/mloc-<pid>-..."): the
/// segment name only exists during the handshake window, so a clean
/// server leaves zero behind.
int count_own_shm_entries() {
  const std::string prefix = "mloc-" + std::to_string(::getpid()) + "-";
  DIR* d = ::opendir("/dev/shm");
  if (d == nullptr) return 0;
  int n = 0;
  while (dirent* e = ::readdir(d)) {
    if (std::strncmp(e->d_name, prefix.c_str(), prefix.size()) == 0) ++n;
  }
  ::closedir(d);
  return n;
}

// ---------------------------------------------------------- negotiation

TEST(ShmNegotiation, DisabledServerRefusesAndTcpStillServes) {
  ServerConfig srv_cfg;
  srv_cfg.enable_shm = false;
  ServedStore served({}, srv_cfg);
  net::Client c;
  served.connect(&c);

  Status st = c.enable_shm();
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kUnsupported);
  EXPECT_FALSE(c.shm_active());

  ASSERT_TRUE(c.open_session("tcp-only").is_ok());
  auto resp = c.query(vc_request(0.25, 0.75));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  ASSERT_TRUE(resp.value().status.is_ok());
  EXPECT_FALSE(resp.value().stats.via_shm);
  EXPECT_EQ(served.server->stats().shm_segments, 0u);
  EXPECT_EQ(count_own_shm_entries(), 0);
}

TEST(ShmNegotiation, ServesByteIdenticalResponsesViaRing) {
  // Cold expected results, computed before the store moves into the
  // service.
  pfs::PfsStorage expected_fs;
  auto expected_store = make_store(&expected_fs);
  ASSERT_TRUE(expected_store.is_ok());
  const Request probe = vc_request(0.25, 0.75);
  auto expected = expected_store.value().execute("phi", probe.query, 1);
  ASSERT_TRUE(expected.is_ok());

  ServedStore served;
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.enable_shm().is_ok());
  EXPECT_TRUE(c.shm_active());
  ASSERT_TRUE(c.open_session("shm").is_ok());

  for (int i = 0; i < 4; ++i) {
    auto resp = c.query(probe);
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    ASSERT_TRUE(resp.value().status.is_ok());
    EXPECT_TRUE(resp.value().stats.via_shm);
    EXPECT_EQ(resp.value().result.positions, expected.value().positions);
    EXPECT_EQ(resp.value().result.values, expected.value().values);
  }

  // Counters land just after the response is enqueued; let them settle.
  ServerStats st = served.server->stats();
  for (int i = 0; i < 200 && st.responses_shm < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    st = served.server->stats();
  }
  EXPECT_EQ(st.shm_segments, 1u);
  EXPECT_EQ(st.shm_attached, 1u);
  EXPECT_EQ(st.responses_shm, 4u);
  // Service-level transport counters went through record_transport.
  const service::AggregateStats agg = served.svc->aggregate();
  EXPECT_EQ(agg.responses_shm, 4u);
  EXPECT_GT(agg.bytes_shm, 0u);
  EXPECT_EQ(agg.responses_tcp, 0u);
  // The segment name was unlinked the moment the client attached.
  EXPECT_EQ(count_own_shm_entries(), 0);
}

TEST(ShmNegotiation, SecondOfferOnSameConnectionIsRefused) {
  ServedStore served;
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.enable_shm().is_ok());
  EXPECT_FALSE(c.enable_shm().is_ok());
  EXPECT_TRUE(c.shm_active());  // the first ring is untouched

  ASSERT_TRUE(c.open_session().is_ok());
  auto resp = c.query(vc_request(0.3, 0.6));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().stats.via_shm);
}

// Raw-socket helpers for handshake sequences the Client cannot produce.

int raw_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  MLOC_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  MLOC_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0);
  return fd;
}

void raw_send(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    MLOC_CHECK(n > 0);
    off += static_cast<std::size_t>(n);
  }
}

bool raw_read_frame(int fd, FrameHeader* h, Bytes* payload) {
  Bytes head(kHeaderBytes);
  std::size_t off = 0;
  while (off < head.size()) {
    ssize_t n = ::recv(fd, head.data() + off, head.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  auto decoded = decode_header(head);
  MLOC_CHECK(decoded.is_ok());
  *h = decoded.value();
  payload->resize(h->payload_len);
  off = 0;
  while (off < payload->size()) {
    ssize_t n = ::recv(fd, payload->data() + off, payload->size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

TEST(ShmNegotiation, UnmappableSegmentFallsBackToTcp) {
  // A client that accepts the offer but cannot map the segment (here:
  // the name vanishes before it attaches — same shape as a container
  // boundary) reports mapped=false; the server tears the ring down and
  // the connection keeps serving over TCP.
  ServedStore served;
  const int fd = raw_connect(served.server->port());

  raw_send(fd, encode_frame(FrameType::kShmOffer, 1,
                            encode_shm_offer(kShmMinRingBytes)));
  FrameHeader h;
  Bytes payload;
  ASSERT_TRUE(raw_read_frame(fd, &h, &payload));
  ASSERT_EQ(h.type, FrameType::kShmAccept);
  auto info = decode_shm_accept(payload);
  ASSERT_TRUE(info.is_ok()) << info.status().to_string();
  // Make the segment unmappable for this "client".
  ASSERT_EQ(::shm_unlink(info.value().name.c_str()), 0);

  raw_send(fd,
           encode_frame(FrameType::kShmAttach, 2, encode_shm_attach(false)));
  ASSERT_TRUE(raw_read_frame(fd, &h, &payload));
  ASSERT_EQ(h.type, FrameType::kAck);
  auto ack = decode_status(payload);
  ASSERT_TRUE(ack.is_ok());
  EXPECT_TRUE(ack.value().carried.is_ok());

  // The connection still serves queries — over TCP.
  raw_send(fd, encode_frame(FrameType::kOpenSession, 3,
                            encode_open_session("raw-fallback")));
  ASSERT_TRUE(raw_read_frame(fd, &h, &payload));
  ASSERT_EQ(h.type, FrameType::kSessionOpened);
  raw_send(fd, encode_frame(FrameType::kQuery, 4,
                            encode_request(vc_request(0.25, 0.75))));
  ASSERT_TRUE(raw_read_frame(fd, &h, &payload));
  ASSERT_EQ(h.type, FrameType::kQueryResult);
  auto resp = decode_response(payload);
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_TRUE(resp.value().status.is_ok());
  EXPECT_FALSE(resp.value().stats.via_shm);
  EXPECT_FALSE(resp.value().result.positions.empty());
  ::close(fd);

  EXPECT_EQ(count_own_shm_entries(), 0);
}

TEST(ShmNegotiation, NeverAttachedSegmentIsReclaimedOnDisconnect) {
  // Offer accepted, then the client dies without ever attaching: the
  // segment must not outlive the connection.
  ServedStore served;
  const int fd = raw_connect(served.server->port());
  raw_send(fd, encode_frame(FrameType::kShmOffer, 1,
                            encode_shm_offer(kShmMinRingBytes)));
  FrameHeader h;
  Bytes payload;
  ASSERT_TRUE(raw_read_frame(fd, &h, &payload));
  ASSERT_EQ(h.type, FrameType::kShmAccept);
  EXPECT_EQ(count_own_shm_entries(), 1);  // handshake window: name exists
  ::close(fd);

  for (int i = 0; i < 200 && count_own_shm_entries() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count_own_shm_entries(), 0);
}

// ----------------------------------------------- backpressure / fallback

TEST(ShmBackpressure, FullRingFallsBackPerResponseAndStaysIdentical) {
  pfs::PfsStorage expected_fs;
  auto expected_store = make_store(&expected_fs);
  ASSERT_TRUE(expected_store.is_ok());
  const Request probe = vc_request(0.48, 0.52, /*values=*/false);
  auto expected = expected_store.value().execute("phi", probe.query, 1);
  ASSERT_TRUE(expected.is_ok());

  // Clamp the ring to the minimum 4 KiB: a handful of responses fit, the
  // rest of a 32-deep pipeline must fall back to TCP frames.
  ServerConfig srv_cfg;
  srv_cfg.max_shm_ring_bytes = kShmMinRingBytes;
  ServedStore served({}, srv_cfg);
  net::Client c;
  served.connect(&c);
  ASSERT_TRUE(c.enable_shm(1 << 20).is_ok());  // request is clamped down
  ASSERT_TRUE(c.open_session("pipeline").is_ok());

  constexpr int kPipelined = 32;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kPipelined; ++i) {
    auto id = c.send_query(probe);
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  // Let the server publish every response before the client drains any
  // slot, so the ring demonstrably fills.
  for (int i = 0; i < 1000; ++i) {
    const ServerStats st = served.server->stats();
    if (st.responses_shm + st.responses_tcp >= kPipelined) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  int via_shm = 0, via_tcp = 0;
  for (std::uint64_t id : ids) {
    auto resp = c.wait(id);
    ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
    ASSERT_TRUE(resp.value().status.is_ok());
    EXPECT_EQ(resp.value().result.positions, expected.value().positions);
    EXPECT_EQ(resp.value().result.values, expected.value().values);
    (resp.value().stats.via_shm ? via_shm : via_tcp)++;
  }
  EXPECT_EQ(via_shm + via_tcp, kPipelined);
  EXPECT_GT(via_shm, 0) << "ring served nothing";
  EXPECT_GT(via_tcp, 0) << "ring never filled";
  ServerStats st = served.server->stats();
  for (int i = 0;
       i < 200 && st.responses_shm + st.responses_tcp <
                      static_cast<std::uint64_t>(kPipelined);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    st = served.server->stats();
  }
  EXPECT_EQ(st.responses_shm, static_cast<std::uint64_t>(via_shm));
  EXPECT_EQ(st.responses_tcp, static_cast<std::uint64_t>(via_tcp));
  EXPECT_GT(st.shm_fallbacks, 0u);

  // The connection recovers: with the ring drained, shm serves again.
  auto resp = c.query(probe);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().stats.via_shm);
}

// ------------------------------------------------------ crash reclamation

TEST(ShmReclaim, ClientCrashMidStreamLeaksNothing) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.start_paused = true;
  ServedStore served(cfg);
  {
    net::Client c;
    served.connect(&c);
    ASSERT_TRUE(c.enable_shm().is_ok());
    ASSERT_TRUE(c.open_session("doomed").is_ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(c.send_query(vc_request(0.1, 0.9)).is_ok());
    }
    // Destructor closes the socket with three queries in flight and
    // published-but-unread slots about to be produced.
  }
  served.svc->resume();
  for (int i = 0; i < 200 && served.svc->aggregate().sessions_open != 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(served.svc->aggregate().sessions_open, 0u);
  // The segment was unlinked at attach; the server unmapped its side on
  // disconnect, so nothing remains in /dev/shm.
  EXPECT_EQ(count_own_shm_entries(), 0);

  // A fresh client negotiates and serves via shm — nothing was poisoned.
  net::Client again;
  served.connect(&again);
  ASSERT_TRUE(again.enable_shm().is_ok());
  ASSERT_TRUE(again.open_session("fresh").is_ok());
  auto resp = again.query(vc_request(0.25, 0.75));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  ASSERT_TRUE(resp.value().status.is_ok());
  EXPECT_TRUE(resp.value().stats.via_shm);
  EXPECT_EQ(served.server->stats().shm_attached, 2u);
}

// ----------------------------------------------------------- TSan hammer

TEST(ShmHammer, ManyClientsPipeliningViaRings) {
  pfs::PfsStorage expected_fs;
  auto expected_store = make_store(&expected_fs);
  ASSERT_TRUE(expected_store.is_ok());
  const Request probe = vc_request(0.25, 0.75);
  auto expected = expected_store.value().execute("phi", probe.query, 1);
  ASSERT_TRUE(expected.is_ok());

  ServiceConfig cfg;
  cfg.num_workers = 4;
  ServerConfig srv_cfg;
  srv_cfg.num_loops = 2;
  // Small rings so the hammer also exercises the fallback path under
  // contention, not just the happy path.
  srv_cfg.max_shm_ring_bytes = 64 << 10;
  ServedStore served(cfg, srv_cfg);

  constexpr int kThreads = 4;
  constexpr int kBatches = 3;
  constexpr int kPipelined = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<int> via_shm{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      net::Client c;
      if (!c.connect("127.0.0.1", served.server->port()).is_ok() ||
          !c.enable_shm(64 << 10).is_ok() ||
          !c.open_session("hammer").is_ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int b = 0; b < kBatches; ++b) {
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < kPipelined; ++i) {
          auto id = c.send_query(probe);
          if (!id.is_ok()) {
            failures.fetch_add(1);
            return;
          }
          ids.push_back(id.value());
        }
        for (std::uint64_t id : ids) {
          auto resp = c.wait(id);
          if (!resp.is_ok() || !resp.value().status.is_ok()) {
            failures.fetch_add(1);
            return;
          }
          if (resp.value().stats.via_shm) via_shm.fetch_add(1);
          if (resp.value().result.positions != expected.value().positions ||
              resp.value().result.values != expected.value().values) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(via_shm.load(), 0);
  EXPECT_EQ(count_own_shm_entries(), 0);

  // Transport counters land after the response is enqueued for delivery,
  // so a client can observe its response a moment before the counter —
  // wait for the ledger to settle.
  service::AggregateStats agg = served.svc->aggregate();
  for (int i = 0;
       i < 200 && agg.responses_shm + agg.responses_tcp != agg.completed;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    agg = served.svc->aggregate();
  }
  EXPECT_EQ(agg.completed,
            static_cast<std::uint64_t>(kThreads * kBatches * kPipelined));
  EXPECT_EQ(agg.responses_shm + agg.responses_tcp, agg.completed);
}

}  // namespace
}  // namespace mloc
