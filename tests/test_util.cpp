// Unit tests for src/util: Status/Result, byte serialization, RNG, timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace mloc {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "Ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = corrupt_data("bad magic");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kCorruptData);
  EXPECT_EQ(s.message(), "bad magic");
  EXPECT_EQ(s.to_string(), "CorruptData: bad magic");
}

TEST(Status, EveryCodeHasDistinctName) {
  const ErrorCode codes[] = {
      ErrorCode::kOk,          ErrorCode::kInvalidArgument,
      ErrorCode::kOutOfRange,  ErrorCode::kNotFound,
      ErrorCode::kCorruptData, ErrorCode::kUnsupported,
      ErrorCode::kFailedPrecondition, ErrorCode::kIoError,
      ErrorCode::kInternal};
  std::vector<std::string_view> names;
  for (auto c : codes) names.push_back(error_code_name(c));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = not_found("no such bin");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> parse_positive(int x) {
  if (x <= 0) return invalid_argument("not positive");
  return x;
}

Status use_assign_or_return(int x, int* out) {
  MLOC_ASSIGN_OR_RETURN(int v, parse_positive(x));
  *out = v * 2;
  return Status::ok();
}

TEST(Result, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(use_assign_or_return(21, &out).is_ok());
  EXPECT_EQ(out, 42);
  Status s = use_assign_or_return(-1, &out);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

// ----------------------------------------------------------------- Bytes

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-77);
  w.put_f64(3.14159);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8().value(), 0xAB);
  EXPECT_EQ(r.get_u16().value(), 0xBEEF);
  EXPECT_EQ(r.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64().value(), -77);
  EXPECT_DOUBLE_EQ(r.get_f64().value(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x11223344u);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x44);
  EXPECT_EQ(b[1], 0x33);
  EXPECT_EQ(b[2], 0x22);
  EXPECT_EQ(b[3], 0x11);
}

TEST(Bytes, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {0,      1,        127,        128,
                                 16383,  16384,    (1ull << 32) - 1,
                                 1ull << 32, ~0ull};
  for (std::uint64_t v : cases) {
    ByteWriter w;
    w.put_varint(v);
    ByteReader r(w.bytes());
    auto back = r.get_varint();
    ASSERT_TRUE(back.is_ok()) << v;
    EXPECT_EQ(back.value(), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Bytes, VarintSmallValuesAreOneByte) {
  ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(128);
  EXPECT_EQ(w.size(), 3u);  // 1 (prior) + 2
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string().value(), "hello");
  EXPECT_EQ(r.get_string().value(), "");
}

TEST(Bytes, TruncatedReadsFail) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_u8().is_ok());
  EXPECT_FALSE(r.get_u32().is_ok());
  EXPECT_EQ(r.get_u32().status().code(), ErrorCode::kCorruptData);
}

TEST(Bytes, TruncatedVarintFails) {
  Bytes b{0x80, 0x80};  // continuation bits set, stream ends
  ByteReader r(b);
  EXPECT_FALSE(r.get_varint().is_ok());
}

TEST(Bytes, OverlongVarintFails) {
  Bytes b(11, 0x80);  // 11 continuation bytes > 64 bits
  b.push_back(0x01);
  ByteReader r(b);
  EXPECT_FALSE(r.get_varint().is_ok());
}

TEST(Bytes, DoubleVectorRoundTrip) {
  std::vector<double> vals = {0.0, -1.5, 1e300, -1e-300,
                              std::numeric_limits<double>::infinity()};
  Bytes b = doubles_to_bytes(vals);
  EXPECT_EQ(b.size(), vals.size() * 8);
  auto back = bytes_to_doubles(b);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), vals);
}

TEST(Bytes, MisalignedDoubleBytesFail) {
  Bytes b(9, 0);
  EXPECT_FALSE(bytes_to_doubles(b).is_ok());
}

TEST(Bytes, GetBytesBorrowsSpan) {
  ByteWriter w;
  w.put_u8(1);
  w.put_u8(2);
  w.put_u8(3);
  ByteReader r(w.bytes());
  auto span = r.get_bytes(2);
  ASSERT_TRUE(span.is_ok());
  EXPECT_EQ(span.value()[0], 1);
  EXPECT_EQ(span.value()[1], 2);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_FALSE(r.get_bytes(2).is_ok());
}

// ------------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[rng.next_below(7)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform (expected 1000)
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.next_gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(42);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LE(same, 1);
}

// ----------------------------------------------------------------- Timer

TEST(ComponentTimes, Accumulates) {
  ComponentTimes a{1.0, 2.0, 3.0};
  ComponentTimes b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.io, 1.5);
  EXPECT_DOUBLE_EQ(a.decompress, 2.5);
  EXPECT_DOUBLE_EQ(a.reconstruct, 3.5);
  EXPECT_DOUBLE_EQ(a.total(), 7.5);
}

TEST(ComponentTimes, MaxWithTakesPerComponentMax) {
  ComponentTimes a{1.0, 5.0, 2.0};
  ComponentTimes b{3.0, 1.0, 2.5};
  a.max_with(b);
  EXPECT_DOUBLE_EQ(a.io, 3.0);
  EXPECT_DOUBLE_EQ(a.decompress, 5.0);
  EXPECT_DOUBLE_EQ(a.reconstruct, 2.5);
}

TEST(ComponentTimes, DividesForAveraging) {
  ComponentTimes a{2.0, 4.0, 8.0};
  a /= 2.0;
  EXPECT_DOUBLE_EQ(a.io, 1.0);
  EXPECT_DOUBLE_EQ(a.decompress, 2.0);
  EXPECT_DOUBLE_EQ(a.reconstruct, 4.0);
}

TEST(Stopwatch, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  double t1 = sw.seconds();
  double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.restart();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace mloc
