// Tests for src/parallel: rank execution/aggregation, even splitting,
// thread pool correctness under load.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/runtime.hpp"

namespace mloc::parallel {
namespace {

TEST(RunRanks, ExecutesEveryRankOnce) {
  std::vector<int> visited;
  auto ctxs = run_ranks(5, [&](RankContext& ctx) {
    visited.push_back(ctx.rank);
    EXPECT_EQ(ctx.num_ranks, 5);
  });
  EXPECT_EQ(visited, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ctxs.size(), 5u);
}

TEST(RunRanks, MergedLogKeepsRankTags) {
  auto ctxs = run_ranks(3, [&](RankContext& ctx) {
    ctx.io_log.add(0, static_cast<std::uint64_t>(ctx.rank) * 100, 10,
                   static_cast<std::uint32_t>(ctx.rank));
  });
  auto merged = merged_io_log(ctxs);
  ASSERT_EQ(merged.records().size(), 3u);
  EXPECT_EQ(merged.records()[2].rank, 2u);
  EXPECT_EQ(merged.total_bytes(), 30u);
}

TEST(RunRanks, MaxRankTimesIsPerComponentMax) {
  auto ctxs = run_ranks(3, [&](RankContext& ctx) {
    ctx.times.decompress = 1.0 + ctx.rank;      // max at rank 2
    ctx.times.reconstruct = 3.0 - ctx.rank;     // max at rank 0
  });
  const ComponentTimes t = max_rank_times(ctxs);
  EXPECT_DOUBLE_EQ(t.decompress, 3.0);
  EXPECT_DOUBLE_EQ(t.reconstruct, 3.0);
}

TEST(SplitEven, CoversWithoutOverlap) {
  for (std::size_t n : {0ull, 1ull, 7ull, 100ull, 101ull}) {
    for (int parts : {1, 2, 3, 8, 17}) {
      auto chunks = split_even(n, parts);
      ASSERT_EQ(chunks.size(), static_cast<std::size_t>(parts));
      std::size_t expect_begin = 0;
      for (auto [b, e] : chunks) {
        EXPECT_EQ(b, expect_begin);
        EXPECT_LE(b, e);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, n);
      // Balance: sizes differ by at most 1.
      std::size_t mn = n, mx = 0;
      for (auto [b, e] : chunks) {
        mn = std::min(mn, e - b);
        mx = std::max(mx, e - b);
      }
      if (n > 0) {
      EXPECT_LE(mx - mn, 1u);
    }
    }
  }
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, TasksCanAccumulateResults) {
  ThreadPool pool(3);
  std::vector<std::uint64_t> partial(16, 0);
  for (int t = 0; t < 16; ++t) {
    pool.submit([&partial, t] {
      std::uint64_t sum = 0;
      for (int i = 0; i <= 1000; ++i) sum += static_cast<std::uint64_t>(i);
      partial[t] = sum;
    });
  }
  pool.wait_idle();
  for (auto v : partial) EXPECT_EQ(v, 500500u);
}

TEST(ThreadPool, SubmitWaitableCompletesBeforeWaitReturns) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<TaskHandle> handles;
  handles.reserve(32);
  for (int i = 0; i < 32; ++i) {
    handles.push_back(pool.submit_waitable(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& h : handles) {
    EXPECT_TRUE(h.valid());
    h.wait();
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SubmitWaitablePropagatesExceptions) {
  ThreadPool pool(2);
  TaskHandle ok = pool.submit_waitable([] {});
  TaskHandle bad = pool.submit_waitable(
      [] { throw std::runtime_error("task failed"); });
  ok.wait();  // unaffected sibling completes normally
  EXPECT_THROW(bad.wait(), std::runtime_error);
}

TEST(ThreadPool, DefaultTaskHandleIsInvalid) {
  TaskHandle h;
  EXPECT_FALSE(h.valid());
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 50);
  }
}

}  // namespace
}  // namespace mloc::parallel
