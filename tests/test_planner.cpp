// Tests for src/planner: estimates track measured query behaviour within a
// modest factor, monotonicity properties, rank recommendation, and the
// order advisor's Table VII crossover.
#include <gtest/gtest.h>

#include <limits>

#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "planner/planner.hpp"

namespace mloc::planner {
namespace {

struct StoreFixture {
  pfs::PfsStorage fs;
  Grid grid;
  Result<MlocStore> store;

  explicit StoreFixture(const std::string& codec = "mzip")
      : grid(datagen::gts_like(256, 3)), store(make_store(codec)) {}

  Result<MlocStore> make_store(const std::string& codec) {
    MlocConfig cfg;
    cfg.shape = NDShape{256, 256};
    cfg.layout.chunk_shape = NDShape{32, 32};
    cfg.layout.num_bins = 32;
    cfg.layout.codec = codec;
    auto s = MlocStore::create(&fs, "t", cfg);
    if (s.is_ok()) {
      MLOC_RETURN_IF_ERROR(s.value().write_variable("phi", grid));
    }
    return s;
  }
};

TEST(Planner, BinCountsMatchEngineExactly) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    Query q;
    q.vc = datagen::random_vc(fx.grid, 0.05, rng);
    q.values_needed = false;
    auto est = planner.estimate("phi", q);
    auto actual = fx.store.value().execute("phi", q);
    ASSERT_TRUE(est.is_ok() && actual.is_ok());
    EXPECT_EQ(est.value().bins_touched, actual.value().bins_touched);
    EXPECT_EQ(est.value().aligned_bins, actual.value().aligned_bins);
  }
}

TEST(Planner, ByteEstimateWithinSmallFactorOfMeasured) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  Rng rng(2);
  for (double sel : {0.01, 0.1}) {
    Query q;
    q.sc = datagen::random_sc(fx.grid.shape(), sel, rng);
    auto est = planner.estimate("phi", q);
    auto actual = fx.store.value().execute("phi", q);
    ASSERT_TRUE(est.is_ok() && actual.is_ok());
    const double ratio = static_cast<double>(est.value().est_bytes) /
                         static_cast<double>(actual.value().bytes_read);
    EXPECT_GT(ratio, 0.2) << sel;
    EXPECT_LT(ratio, 5.0) << sel;
  }
}

TEST(Planner, PointEstimateTracksSelectivity) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  Rng rng(3);
  Query q;
  q.vc = datagen::random_vc(fx.grid, 0.10, rng);
  q.values_needed = false;
  auto est = planner.estimate("phi", q);
  auto actual = fx.store.value().execute("phi", q);
  ASSERT_TRUE(est.is_ok() && actual.is_ok());
  const double measured = static_cast<double>(actual.value().positions.size());
  EXPECT_GT(est.value().est_points, measured * 0.25);
  EXPECT_LT(est.value().est_points, measured * 4.0);
}

TEST(Planner, LowerPlodEstimatesFewerBytes) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  Query q;
  q.sc = Region(2, {0, 0}, {128, 128});
  q.plod_level = 2;
  auto low = planner.estimate("phi", q);
  q.plod_level = 7;
  auto full = planner.estimate("phi", q);
  ASSERT_TRUE(low.is_ok() && full.is_ok());
  EXPECT_LT(low.value().est_bytes, full.value().est_bytes);
  EXPECT_LT(low.value().est_io_seconds, full.value().est_io_seconds);
}

TEST(Planner, MoreRanksNeverSlower) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  Query q;
  q.sc = Region(2, {0, 0}, {128, 128});
  double prev = 1e18;
  for (int ranks : {1, 2, 4, 8, 16}) {
    auto est = planner.estimate("phi", q, ranks);
    ASSERT_TRUE(est.is_ok());
    EXPECT_LE(est.value().est_io_seconds, prev * (1 + 1e-9));
    prev = est.value().est_io_seconds;
  }
}

TEST(Planner, EmptyQueriesEstimateZero) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  Query q;
  q.vc = ValueConstraint{5.0, 5.0};
  auto est = planner.estimate("phi", q);
  ASSERT_TRUE(est.is_ok());
  EXPECT_EQ(est.value().bins_touched, 0u);
  EXPECT_EQ(est.value().est_bytes, 0u);
}

TEST(Planner, RecommendRanksSaturates) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  Query q;
  q.sc = Region(2, {0, 0}, {64, 64});  // small query: few ranks suffice
  auto ranks = planner.recommend_ranks("phi", q, 128);
  ASSERT_TRUE(ranks.is_ok());
  EXPECT_GE(ranks.value(), 1);
  EXPECT_LE(ranks.value(), 128);
  // A tiny query should not demand the full 128 ranks.
  EXPECT_LT(ranks.value(), 128);
}

TEST(Planner, UnknownVariableFails) {
  StoreFixture fx;
  ASSERT_TRUE(fx.store.is_ok());
  QueryPlanner planner(&fx.store.value());
  EXPECT_FALSE(planner.estimate("ghost", Query{}).is_ok());
}

// -------------------------------------------------------- order advisor

TEST(OrderAdvisor, PlodHeavyWorkloadsPreferVms) {
  WorkloadProfile w;
  w.value_reduced = 0.8;
  w.value_full_precision = 0.1;
  w.region_queries = 0.1;
  w.reduced_level = 2;
  EXPECT_EQ(recommend_order(w).value(), LevelOrder::kVMS);
}

TEST(OrderAdvisor, FullPrecisionWorkloadsPreferVsm) {
  WorkloadProfile w;
  w.value_full_precision = 0.9;
  w.region_queries = 0.1;
  EXPECT_EQ(recommend_order(w).value(), LevelOrder::kVSM);
}

TEST(OrderAdvisor, AdviceMatchesMeasuredTableVII) {
  // Validate the advisor against actual stores: the order it picks for a
  // pure workload must be the one with lower modeled I/O on that workload.
  Grid grid = datagen::gts_like(256, 9);
  MlocConfig base;
  base.shape = grid.shape();
  base.layout.chunk_shape = NDShape{32, 32};
  base.layout.num_bins = 16;
  base.layout.codec = "mzip";

  pfs::PfsStorage fs;
  base.layout.order = LevelOrder::kVMS;
  auto vms = MlocStore::create(&fs, "vms", base);
  base.layout.order = LevelOrder::kVSM;
  auto vsm = MlocStore::create(&fs, "vsm", base);
  ASSERT_TRUE(vms.is_ok() && vsm.is_ok());
  ASSERT_TRUE(vms.value().write_variable("phi", grid).is_ok());
  ASSERT_TRUE(vsm.value().write_variable("phi", grid).is_ok());

  Query reduced;
  reduced.sc = Region(2, {64, 64}, {192, 192});
  reduced.plod_level = 2;
  Query full = reduced;
  full.plod_level = 7;

  auto vms_reduced = vms.value().execute("phi", reduced);
  auto vsm_reduced = vsm.value().execute("phi", reduced);
  auto vms_full = vms.value().execute("phi", full);
  auto vsm_full = vsm.value().execute("phi", full);
  ASSERT_TRUE(vms_reduced.is_ok() && vsm_reduced.is_ok() &&
              vms_full.is_ok() && vsm_full.is_ok());

  WorkloadProfile reduced_heavy;
  reduced_heavy.value_reduced = 1.0;
  const LevelOrder pick_reduced = recommend_order(reduced_heavy).value();
  const bool vms_wins_reduced =
      vms_reduced.value().times.io < vsm_reduced.value().times.io;
  EXPECT_EQ(pick_reduced == LevelOrder::kVMS, vms_wins_reduced);

  WorkloadProfile full_heavy;
  full_heavy.value_full_precision = 1.0;
  const LevelOrder pick_full = recommend_order(full_heavy).value();
  const bool vms_wins_full =
      vms_full.value().times.io < vsm_full.value().times.io;
  EXPECT_EQ(pick_full == LevelOrder::kVMS, vms_wins_full);
}

TEST(OrderAdvisor, DecisionIsScaleInvariant) {
  // Fractions need not sum to 1: query *counts* work just as well.
  WorkloadProfile normalized;
  normalized.value_reduced = 0.8;
  normalized.value_full_precision = 0.1;
  normalized.region_queries = 0.1;
  normalized.reduced_level = 2;
  WorkloadProfile counts = normalized;
  counts.value_reduced *= 1000;
  counts.value_full_precision *= 1000;
  counts.region_queries *= 1000;
  EXPECT_EQ(recommend_order(normalized).value(), recommend_order(counts).value());
}

TEST(OrderAdvisor, AllZeroProfileDefaultsToVms) {
  EXPECT_EQ(recommend_order(WorkloadProfile{}).value(), LevelOrder::kVMS);
}

TEST(OrderAdvisor, FragmentsPerBinClampedToAtLeastOne) {
  // With <= 1 fragment per bin, V-S-M's reduced-precision read is a single
  // run: it must win over V-M-S's per-group runs, even when the caller
  // passes a degenerate (fractional or zero) average.
  WorkloadProfile reduced_heavy;
  reduced_heavy.value_reduced = 1.0;
  reduced_heavy.reduced_level = 2;
  for (double frags : {1.0, 0.2, 0.0}) {
    EXPECT_EQ(recommend_order(reduced_heavy, frags).value(),
              LevelOrder::kVSM)
        << frags;
  }
  // Sanity: with many fragments per bin the same workload flips to V-M-S.
  EXPECT_EQ(recommend_order(reduced_heavy, 16.0).value(), LevelOrder::kVMS);
}

TEST(OrderAdvisor, NonFiniteAndNegativeWeightsAreRejected) {
  // A NaN/inf/negative weight means the caller's workload accounting is
  // broken; the advisor surfaces that instead of clamping it away.
  WorkloadProfile w;
  w.value_full_precision = 0.9;
  w.value_reduced = -5.0;
  EXPECT_FALSE(recommend_order(w).is_ok());
  w.value_reduced = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(recommend_order(w).is_ok());
  w.value_reduced = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(recommend_order(w).is_ok());
  w.value_reduced = 0.1;
  EXPECT_TRUE(recommend_order(w).is_ok());
  EXPECT_FALSE(recommend_order(w, -3.0).is_ok());
  EXPECT_FALSE(
      recommend_order(w, std::numeric_limits<double>::infinity()).is_ok());
}

}  // namespace
}  // namespace mloc::planner
