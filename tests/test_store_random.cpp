// Randomized cross-check sweeps: hundreds of random queries against
// brute-force scans across codecs, level orders, dimensionalities, PLoD
// levels, and rank counts — the safety net for the full pipeline. Also
// fuzzes codec decoders with random corruptions (must error or mismatch,
// never crash or hang).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "compress/registry.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "plod/plod.hpp"
#include "util/rng.hpp"

namespace mloc {
namespace {

struct Truth {
  std::vector<std::uint64_t> positions;
  std::vector<double> values;
};

Truth brute_force(const Grid& grid, const Query& q) {
  // Store semantics: constraints on original values; returned values at
  // the queried PLoD level.
  Truth out;
  std::vector<double> level_values(grid.values().begin(),
                                   grid.values().end());
  if (q.plod_level < 7) {
    auto shredded = plod::shred(level_values);
    level_values = plod::assemble(shredded, q.plod_level).value();
  }
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    if (q.vc.has_value() && !q.vc->matches(grid.at_linear(i))) continue;
    if (q.sc.has_value() && !q.sc->contains(grid.shape().delinearize(i))) {
      continue;
    }
    out.positions.push_back(i);
    if (q.values_needed) out.values.push_back(level_values[i]);
  }
  return out;
}

Query random_query(const Grid& grid, Rng& rng, bool allow_plod) {
  Query q;
  const int kind = static_cast<int>(rng.next_below(4));
  if (kind == 0 || kind == 2) {
    q.vc = datagen::random_vc(grid, rng.next_double(0.005, 0.3), rng);
  }
  if (kind == 1 || kind == 2) {
    q.sc = datagen::random_sc(grid.shape(), rng.next_double(0.005, 0.3), rng);
  }
  // kind == 3: unconstrained full fetch (rare but legal).
  q.values_needed = rng.next_double() < 0.7;
  if (allow_plod && rng.next_double() < 0.3) {
    q.plod_level = 1 + static_cast<int>(rng.next_below(7));
  }
  return q;
}

class RandomQueries
    : public ::testing::TestWithParam<
          std::tuple<std::string, LevelOrder, int /*ndims*/>> {};

TEST_P(RandomQueries, MatchBruteForceExactly) {
  const auto& [codec, order, ndims] = GetParam();
  const bool lossless = make_double_codec(codec).value()->lossless();
  const bool plod_capable = is_byte_codec(codec);

  Grid grid = (ndims == 2) ? datagen::gts_like(96, 77)
                           : datagen::s3d_like(20, 78);
  MlocConfig cfg;
  cfg.shape = grid.shape();
  cfg.layout.chunk_shape = (ndims == 2) ? NDShape{16, 16} : NDShape{8, 8, 8};
  cfg.layout.num_bins = 12;
  cfg.layout.codec = codec;
  cfg.layout.order = order;
  pfs::PfsStorage fs;
  auto store = MlocStore::create(&fs, "r", cfg);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value().write_variable("v", grid).is_ok());

  Rng rng(1234 + static_cast<std::uint64_t>(order) * 7 + ndims);
  const int num_queries = 40;
  for (int i = 0; i < num_queries; ++i) {
    const Query q = random_query(grid, rng, plod_capable);
    const int ranks = 1 + static_cast<int>(rng.next_below(9));
    auto res = store.value().execute("v", q, ranks);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();

    if (lossless) {
      const Truth truth = brute_force(grid, q);
      ASSERT_EQ(res.value().positions, truth.positions)
          << "query " << i << " codec " << codec;
      if (q.values_needed) {
        ASSERT_EQ(res.value().values, truth.values) << "query " << i;
      }
    } else {
      // Lossy codec: every returned value within the bound; every returned
      // position consistent with the widened constraints.
      const double eps = make_double_codec(codec).value()->max_relative_error();
      for (std::size_t k = 0; k < res.value().positions.size(); ++k) {
        const std::uint64_t p = res.value().positions[k];
        if (q.sc.has_value()) {
          ASSERT_TRUE(q.sc->contains(grid.shape().delinearize(p)));
        }
        if (q.values_needed) {
          const double truth_v = grid.at_linear(p);
          ASSERT_LE(std::abs(res.value().values[k] - truth_v),
                    eps * std::abs(truth_v) + 1e-300);
        }
        if (q.vc.has_value()) {
          const double v = grid.at_linear(p);
          const double margin = 2 * eps * std::abs(v) + 1e-12;
          ASSERT_GE(v, q.vc->lo - margin);
          ASSERT_LT(v, q.vc->hi + margin);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomQueries,
    ::testing::Values(
        std::tuple{std::string("mzip"), LevelOrder::kVMS, 2},
        std::tuple{std::string("mzip"), LevelOrder::kVSM, 2},
        std::tuple{std::string("mzip"), LevelOrder::kVMS, 3},
        std::tuple{std::string("raw"), LevelOrder::kVSM, 3},
        std::tuple{std::string("isobar"), LevelOrder::kVMS, 2},
        std::tuple{std::string("isobar"), LevelOrder::kVMS, 3},
        std::tuple{std::string("xor-delta"), LevelOrder::kVMS, 2},
        std::tuple{std::string("isabela:0.001"), LevelOrder::kVMS, 2}));

// ---------------------------------------------------------- decoder fuzz

class DecoderFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(DecoderFuzz, RandomCorruptionsNeverCrash) {
  const std::string codec_name = GetParam();
  auto codec = make_double_codec(codec_name).value();
  Rng rng(555);
  std::vector<double> values(3000);
  for (auto& v : values) v = 100.0 + 20.0 * rng.next_gaussian();
  const Bytes good = codec->encode(values).value();

  for (int trial = 0; trial < 200; ++trial) {
    Bytes bad = good;
    const int mutations = 1 + static_cast<int>(rng.next_below(8));
    for (int m = 0; m < mutations; ++m) {
      const auto mode = rng.next_below(3);
      if (mode == 0 && !bad.empty()) {
        bad[rng.next_below(bad.size())] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
      } else if (mode == 1 && bad.size() > 4) {
        bad.resize(rng.next_below(bad.size()));  // truncate
      } else {
        bad.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
      }
    }
    // Must terminate without UB; outcome may be an error or garbage of a
    // plausible size, never a crash/hang.
    auto res = codec->decode(bad);
    if (res.is_ok()) {
      EXPECT_LT(res.value().size(), values.size() * 16 + 1024);
    }
  }
}

TEST_P(DecoderFuzz, RandomGarbageInputsNeverCrash) {
  const std::string codec_name = GetParam();
  auto codec = make_double_codec(codec_name).value();
  Rng rng(556);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage(rng.next_below(512));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    auto res = codec->decode(garbage);
    if (res.is_ok()) {
      EXPECT_LT(res.value().size(), 1u << 22);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, DecoderFuzz,
                         ::testing::Values("mzip", "rle", "isobar",
                                           "xor-delta", "isabela"));

}  // namespace
}  // namespace mloc
