// Parallel ingestion pipeline tests: byte-identical store output for any
// thread count / write-behind combination across every layout config, fsck
// cleanliness of pipeline-written stores, ingest stats accounting,
// re-ingest freshness through the fragment cache, and a concurrent
// ingest+query hammer for TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "ingest/ingest.hpp"
#include "service/fragment_cache.hpp"
#include "tools/fsck.hpp"

namespace mloc {
namespace {

MlocConfig small_config(const NDShape& shape, const NDShape& chunk,
                        const std::string& codec,
                        LevelOrder order = LevelOrder::kVMS) {
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout.chunk_shape = chunk;
  cfg.layout.num_bins = 16;
  cfg.layout.codec = codec;
  cfg.layout.order = order;
  cfg.layout.sample_stride = 7;
  return cfg;
}

Result<MlocStore> build_store(pfs::PfsStorage& fs, const std::string& codec,
                              LevelOrder order,
                              const ingest::WriteOptions& opts) {
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      &fs, "s", small_config(grid.shape(), NDShape{16, 16}, codec, order));
  if (!store.is_ok()) return store;
  MLOC_RETURN_IF_ERROR(store.value().write_variable("phi", grid, opts));
  return store;
}

/// Every file's exact bytes, keyed by name — the byte-identity oracle.
std::map<std::string, Bytes> snapshot(const pfs::PfsStorage& fs) {
  std::map<std::string, Bytes> out;
  for (const auto& [name, size] : fs.listing()) {
    auto id = fs.open(name);
    EXPECT_TRUE(id.is_ok());
    auto bytes = fs.read(id.value(), 0, size);
    EXPECT_TRUE(bytes.is_ok());
    out[name] = std::move(bytes).value();
  }
  return out;
}

// -------------------------------------------------- byte-identity sweeps

class IngestConfigs
    : public ::testing::TestWithParam<std::tuple<std::string, LevelOrder>> {};

TEST_P(IngestConfigs, ParallelOutputByteIdenticalToSerial) {
  const auto& [codec, order] = GetParam();
  pfs::PfsStorage fs_serial;
  auto serial = build_store(fs_serial, codec, order, {});
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  const auto want = snapshot(fs_serial);
  ASSERT_FALSE(want.empty());

  for (const int threads : {2, 8}) {
    for (const bool write_behind : {false, true}) {
      pfs::PfsStorage fs;
      auto store = build_store(fs, codec, order,
                               {.threads = threads,
                                .write_behind = write_behind});
      ASSERT_TRUE(store.is_ok()) << store.status().to_string();
      const auto got = snapshot(fs);
      ASSERT_EQ(got.size(), want.size());
      for (const auto& [name, bytes] : want) {
        auto it = got.find(name);
        ASSERT_NE(it, got.end()) << name;
        EXPECT_EQ(it->second, bytes)
            << name << " differs at threads=" << threads
            << " write_behind=" << write_behind;
      }
    }
  }
}

TEST_P(IngestConfigs, FsckCleanOnPipelineStores) {
  const auto& [codec, order] = GetParam();
  for (const bool write_behind : {false, true}) {
    pfs::PfsStorage fs;
    auto store =
        build_store(fs, codec, order,
                    {.threads = 4, .write_behind = write_behind});
    ASSERT_TRUE(store.is_ok()) << store.status().to_string();
    fsck::LayoutVerifier verifier(&fs);
    const fsck::Report report = verifier.verify_store("s");
    EXPECT_TRUE(report.ok()) << report.human();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, IngestConfigs,
    ::testing::Values(
        std::make_tuple("mzip", LevelOrder::kVMS),
        std::make_tuple("mzip", LevelOrder::kVSM),
        std::make_tuple("rle", LevelOrder::kVMS),
        std::make_tuple("xor-delta", LevelOrder::kVMS),
        std::make_tuple("isabela:0.01", LevelOrder::kVMS)));

// ------------------------------------------------------- stats and reuse

TEST(Ingest, StatsAccountForTheWrite) {
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      &fs, "s", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value()
                  .write_variable("phi", grid, {.threads = 2})
                  .is_ok());
  const ingest::IngestStats stats = store.value().ingest_stats();
  EXPECT_EQ(stats.cells_routed, grid.size());
  EXPECT_GT(stats.fragments_encoded, 0u);
  EXPECT_EQ(stats.bins_written, 16u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_GT(stats.wall_s, 0.0);
  EXPECT_EQ(stats.threads, 2);

  // A second write accumulates.
  ASSERT_TRUE(store.value().write_variable("psi", grid).is_ok());
  const ingest::IngestStats two = store.value().ingest_stats();
  EXPECT_EQ(two.cells_routed, 2 * grid.size());
  EXPECT_EQ(two.bins_written, 32u);
  EXPECT_EQ(two.threads, 1);  // last write's configuration
}

TEST(Ingest, ReingestServesFreshDataThroughWarmCache) {
  // A query warms the fragment cache; re-writing the variable must not let
  // stale decompressed payloads answer for the new data (epoch bump +
  // provider erase).
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      &fs, "s", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  service::FragmentCache cache;
  store.value().set_fragment_provider(&cache);
  ASSERT_TRUE(store.value().write_variable("phi", grid).is_ok());

  Query q;
  q.sc = Region(2, {0, 0}, {16, 16});
  q.values_needed = true;
  auto cold = store.value().execute("phi", q);
  ASSERT_TRUE(cold.is_ok());
  ASSERT_GT(cache.stats().entries, 0u);  // the cache really is warm

  Grid fresh = datagen::gts_like(64, 99);
  ASSERT_TRUE(
      store.value().write_variable("phi", fresh, {.threads = 2}).is_ok());
  EXPECT_EQ(cache.stats().entries, 0u);  // old generation erased

  auto warm = store.value().execute("phi", q);
  ASSERT_TRUE(warm.is_ok());
  ASSERT_EQ(warm.value().values.size(), 256u);
  for (std::size_t i = 0; i < warm.value().values.size(); ++i) {
    const Coord c = fresh.shape().delinearize(warm.value().positions[i]);
    EXPECT_EQ(warm.value().values[i], fresh.at(c)) << i;
  }
}

// ------------------------------------------------------------ TSan hammer

TEST(Ingest, ConcurrentIngestAndQueryHammer) {
  // Queries against a stable variable run from several threads while the
  // main thread repeatedly re-ingests a second variable through the
  // parallel pipeline with write-behind. Every query must succeed: ingest
  // touches only "hot"'s subfiles and the store publishes states under its
  // reader/writer gate.
  pfs::PfsStorage fs;
  Grid grid = datagen::gts_like(64, 42);
  auto store = MlocStore::create(
      &fs, "s", small_config(grid.shape(), NDShape{16, 16}, "mzip"));
  ASSERT_TRUE(store.is_ok());
  service::FragmentCache cache;
  store.value().set_fragment_provider(&cache);
  ASSERT_TRUE(store.value().write_variable("stable", grid).is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Query q;
      q.sc = Region(2, {0, 0}, {32, 32});
      q.values_needed = true;
      if (t == 1) q.vc = ValueConstraint{-0.5, 0.75};
      while (!stop.load(std::memory_order_relaxed)) {
        auto res = store.value().execute("stable", q, 2);
        if (!res.is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 6; ++round) {
    Grid hot = datagen::gts_like(64, 100 + round);
    ASSERT_TRUE(store.value()
                    .write_variable("hot", hot,
                                    {.threads = 2, .write_behind = true})
                    .is_ok())
        << round;
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);

  // The hammered store is still structurally sound.
  fsck::LayoutVerifier verifier(&fs);
  const fsck::Report report = verifier.verify_store("s");
  EXPECT_TRUE(report.ok()) << report.human();
}

}  // namespace
}  // namespace mloc
