// Tests for src/plod: shred/assemble round trips, the paper's error-bound
// claims per level (Table VI magnitude check), midpoint-fill bias
// properties, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "plod/plod.hpp"
#include "util/rng.hpp"

namespace mloc::plod {
namespace {

std::vector<double> sample_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) {
    // Wide dynamic range, both signs.
    const double mag = std::pow(10.0, rng.next_double(-6.0, 6.0));
    v = (rng.next_double() < 0.5 ? -1.0 : 1.0) * mag;
  }
  return out;
}

TEST(Plod, GroupSizes) {
  EXPECT_EQ(group_bytes(0), 2);
  for (int g = 1; g < kNumGroups; ++g) EXPECT_EQ(group_bytes(g), 1);
  EXPECT_EQ(level_bytes(1), 2);
  EXPECT_EQ(level_bytes(2), 3);
  EXPECT_EQ(level_bytes(7), 8);
}

TEST(Plod, ShredProducesCorrectPlaneSizes) {
  auto vals = sample_values(100, 1);
  Shredded s = shred(vals);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.groups[0].size(), 200u);
  for (int g = 1; g < kNumGroups; ++g) {
    EXPECT_EQ(s.groups[g].size(), 100u);
  }
}

TEST(Plod, FullPrecisionRoundTripIsBitExact) {
  auto vals = sample_values(1000, 2);
  vals.push_back(0.0);
  vals.push_back(-0.0);
  vals.push_back(std::numeric_limits<double>::infinity());
  vals.push_back(std::numeric_limits<double>::quiet_NaN());
  vals.push_back(std::numeric_limits<double>::denorm_min());
  Shredded s = shred(vals);
  auto back = assemble(s, 7);
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back.value().size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    std::uint64_t a, b;
    std::memcpy(&a, &vals[i], 8);
    std::memcpy(&b, &back.value()[i], 8);
    EXPECT_EQ(a, b) << "index " << i;
  }
}

class PlodLevelErrors : public ::testing::TestWithParam<int> {};

TEST_P(PlodLevelErrors, RelativeErrorWithinTheoreticalBound) {
  const int level = GetParam();
  auto vals = sample_values(20000, 42);
  Shredded s = shred(vals);
  auto approx = assemble(s, level);
  ASSERT_TRUE(approx.is_ok());
  const double bound = level_max_relative_error(level);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    const double rel =
        std::abs(approx.value()[i] - vals[i]) / std::abs(vals[i]);
    ASSERT_LE(rel, bound) << "level " << level << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, PlodLevelErrors, ::testing::Range(1, 8));

TEST(Plod, ErrorBoundsShrinkByFactor256PerLevel) {
  for (int level = 1; level < 6; ++level) {
    EXPECT_DOUBLE_EQ(level_max_relative_error(level),
                     256.0 * level_max_relative_error(level + 1));
  }
  EXPECT_EQ(level_max_relative_error(7), 0.0);
}

TEST(Plod, Level2MatchesPaperErrorScale) {
  // Paper: PLoD level 2 (three bytes) gives max per-point relative error
  // ~0.008% for mean-value analysis. The hard bound is 2^-13 ≈ 0.012%.
  EXPECT_NEAR(level_max_relative_error(2), 1.22e-4, 1e-5);
}

TEST(Plod, MidpointFillBeatsZeroFillOnAverage) {
  // The design rationale for 0x7F/0xFF fill: zero fill always truncates
  // toward zero (biased); midpoint fill halves the expected error.
  auto vals = sample_values(5000, 7);
  Shredded s = shred(vals);
  auto mid = assemble(s, 2).value();

  // Zero-fill reference: mask the low 6 bytes.
  double mid_err = 0, zero_err = 0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &vals[i], 8);
    bits &= 0xFFFFFF0000000000ull;
    double z;
    std::memcpy(&z, &bits, 8);
    zero_err += std::abs(z - vals[i]) / std::abs(vals[i]);
    mid_err += std::abs(mid[i] - vals[i]) / std::abs(vals[i]);
  }
  EXPECT_LT(mid_err, zero_err);
}

TEST(Plod, MeanAnalysisAtLevel2IsAccurate) {
  // The paper's headline use case: mean-value analytics on 3-byte data.
  Rng rng(11);
  std::vector<double> vals(100000);
  for (auto& v : vals) v = 300.0 + 50.0 * rng.next_gaussian();
  Shredded s = shred(vals);
  auto approx = assemble(s, 2).value();
  double true_mean = 0, approx_mean = 0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    true_mean += vals[i];
    approx_mean += approx[i];
  }
  true_mean /= static_cast<double>(vals.size());
  approx_mean /= static_cast<double>(vals.size());
  EXPECT_LT(std::abs(approx_mean - true_mean) / std::abs(true_mean), 8e-5);
}

TEST(Plod, EmptyInput) {
  Shredded s = shred({});
  EXPECT_EQ(s.count, 0u);
  auto back = assemble(s, 3);
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(Plod, AssembleRejectsBadLevel) {
  Shredded s = shred(std::vector<double>{1.0});
  EXPECT_FALSE(assemble(s, 0).is_ok());
  EXPECT_FALSE(assemble(s, 8).is_ok());
}

TEST(Plod, AssembleRejectsWrongPlaneSizes) {
  std::vector<std::uint8_t> g0(6, 0);  // says 3 values
  std::vector<std::uint8_t> g1(2, 0);  // but only 2 here
  std::vector<std::span<const std::uint8_t>> groups = {g0, g1};
  auto res = assemble(groups, 2, 3);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kCorruptData);
}

TEST(Plod, AssembleRejectsMissingGroups) {
  std::vector<std::uint8_t> g0(4, 0);
  std::vector<std::span<const std::uint8_t>> groups = {g0};
  EXPECT_FALSE(assemble(groups, 3, 2).is_ok());
}

// ---------------------------------------------------------------------------
// Differential tests: the blocked kernels must be byte-identical to the
// retained per-value references for every bit pattern, including ones that
// are special-cased by IEEE-754 arithmetic (the kernels only move bytes, so
// NaN payloads and denormals must survive untouched), and for counts that
// straddle the 16-value block boundary and the scalar tail.

// Random wide-range doubles salted with NaN/inf/denormal/zero patterns.
std::vector<double> adversarial_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 11) {
      case 0:
        out[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        out[i] = std::numeric_limits<double>::infinity();
        break;
      case 2:
        out[i] = -std::numeric_limits<double>::infinity();
        break;
      case 3:
        out[i] = std::numeric_limits<double>::denorm_min();
        break;
      case 4:
        out[i] = -4097.0 * std::numeric_limits<double>::denorm_min();
        break;
      case 5:
        out[i] = (i % 2 != 0u) ? 0.0 : -0.0;
        break;
      default: {
        const double mag = std::pow(10.0, rng.next_double(-300.0, 300.0));
        out[i] = (rng.next_double() < 0.5 ? -1.0 : 1.0) * mag;
      }
    }
  }
  return out;
}

// Counts around the 16-value punpck block, the 64-value cache block, and a
// large buffer exercising many full blocks plus a tail.
const std::size_t kDiffCounts[] = {0, 1, 15, 16, 17, 63, 64, 65, 4096, 4099};

// Bitwise comparison — NaN payloads and signed zeros must match too.
// (memcmp's nonnull contract forbids empty vectors' data().)
bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct PlaneBufs {
  std::array<Bytes, kNumGroups> bufs;
  PlaneSpans spans;
  explicit PlaneBufs(std::size_t count) {
    for (int g = 0; g < kNumGroups; ++g) {
      bufs[g].resize(static_cast<std::size_t>(group_bytes(g)) * count);
      spans[g] = bufs[g];
    }
  }
};

TEST(PlodDifferential, ShredMatchesScalarReference) {
  for (const std::size_t n : kDiffCounts) {
    const auto vals = adversarial_values(n, 1000 + n);
    PlaneBufs fast(n);
    PlaneBufs ref(n);
    shred_into(vals, fast.spans);
    mloc::detail::scalar::plod_shred_into(vals, ref.spans);
    for (int g = 0; g < kNumGroups; ++g) {
      EXPECT_EQ(fast.bufs[g], ref.bufs[g]) << "n=" << n << " group=" << g;
    }
  }
}

TEST(PlodDifferential, AssembleMatchesScalarReferenceAtEveryLevel) {
  for (const std::size_t n : kDiffCounts) {
    const auto vals = adversarial_values(n, 2000 + n);
    const Shredded s = shred(vals);
    std::vector<std::span<const std::uint8_t>> groups;
    for (const auto& g : s.groups) groups.emplace_back(g);
    for (int level = 1; level <= kNumGroups; ++level) {
      std::vector<double> fast(n);
      std::vector<double> ref(n);
      ASSERT_TRUE(assemble_into(groups, level, fast).is_ok());
      ASSERT_TRUE(
          mloc::detail::scalar::plod_assemble_into(groups, level, ref).is_ok());
      EXPECT_TRUE(bitwise_equal(fast, ref)) << "n=" << n << " level=" << level;
    }
  }
}

TEST(PlodDifferential, DegradeMatchesShredThenAssemble) {
  for (const std::size_t n : kDiffCounts) {
    const auto vals = adversarial_values(n, 3000 + n);
    const Shredded s = shred(vals);
    for (int level = 1; level <= kNumGroups; ++level) {
      const auto assembled = assemble(s, level);
      ASSERT_TRUE(assembled.is_ok());
      std::vector<double> degraded(n);
      degrade_into(vals, level, degraded);
      EXPECT_TRUE(bitwise_equal(degraded, assembled.value()))
          << "n=" << n << " level=" << level;
    }
  }
}

}  // namespace
}  // namespace mloc::plod
