// Wire-server load generator: replays a mixed VC / SC / multivar query
// trace against a Server over localhost TCP from hundreds of simulated
// concurrent clients (real connections, pipelined in-flight queries), and
// gates two properties:
//
//   * fidelity — every served response's positions/values arrays are
//     byte-identical to QueryService::run() in-process on the same store;
//   * overhead — served throughput stays above a floor fraction of the
//     in-process throughput for the same total work and worker count
//     (MLOC_SERVER_FLOOR, default 0.25; the wire adds encode + CRC +
//     loopback TCP, not a 4x slowdown).
//
// Emits BENCH_server.json (clients, qps both ways, p50/p95/p99 latency,
// identical_ok, throughput_ok) and exits non-zero when either gate fails —
// CI runs this as the server smoke test.
//
// Knobs (env): MLOC_SERVER_CLIENTS (default 512 connections),
// MLOC_SERVER_QUERIES_PER_CLIENT (default 4), MLOC_SERVER_THREADS (driver
// threads, default 8), MLOC_SERVER_WORKERS (service workers, default 4),
// MLOC_SERVER_FLOOR, MLOC_BENCH_JSON (output path).
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "datagen/datagen.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/query_service.hpp"
#include "util/timer.hpp"

using namespace mloc;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

/// Nearest-rank percentile over an unsorted sample (sorted in place).
double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Lift the soft fd limit to the hard limit; 512 connections plus epoll
/// and store fds can exceed a conservative default soft limit.
void raise_fd_limit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }
}

/// The mixed trace: exploration-style templates covering value-constrained
/// retrieval (with and without values), region windows at mixed PLoD
/// levels, combined constraints, and multi-variable selection.
std::vector<service::Request> make_trace() {
  std::vector<service::Request> t;
  {
    service::Request r;  // narrow VC, full values
    r.var = "v";
    r.query.vc = ValueConstraint{0.20, 0.35};
    t.push_back(r);
  }
  {
    service::Request r;  // VC, positions only
    r.var = "v";
    r.query.vc = ValueConstraint{0.60, 0.70};
    r.query.values_needed = false;
    t.push_back(r);
  }
  {
    service::Request r;  // region window, coarse precision
    r.var = "v";
    r.query.sc = Region(2, Coord{32, 32}, Coord{96, 96});
    r.query.plod_level = 3;
    t.push_back(r);
  }
  {
    service::Request r;  // overlapping window, full precision
    r.var = "w";
    r.query.sc = Region(2, Coord{64, 48}, Coord{128, 112});
    t.push_back(r);
  }
  {
    service::Request r;  // VC restricted to a region
    r.var = "v";
    r.query.vc = ValueConstraint{0.10, 0.50};
    r.query.sc = Region(2, Coord{0, 0}, Coord{128, 128});
    r.query.plod_level = 5;
    t.push_back(r);
  }
  {
    service::Request r;  // multivar AND with value fetch
    r.var = "v";
    service::MultivarSpec mv;
    mv.preds.push_back({"v", ValueConstraint{0.30, 0.60}});
    mv.preds.push_back({"w", ValueConstraint{0.40, 0.80}});
    mv.combine = MlocStore::Combine::kAnd;
    mv.fetch_var = "v";
    r.multivar = std::move(mv);
    t.push_back(r);
  }
  {
    service::Request r;  // multivar OR, positions only
    r.var = "w";
    service::MultivarSpec mv;
    mv.preds.push_back({"v", ValueConstraint{0.00, 0.05}});
    mv.preds.push_back({"w", ValueConstraint{0.95, 1.00}});
    mv.combine = MlocStore::Combine::kOr;
    r.multivar = std::move(mv);
    t.push_back(r);
  }
  {
    service::Request r;  // wide VC at coarse precision
    r.var = "w";
    r.query.vc = ValueConstraint{0.00, 0.40};
    r.query.plod_level = 2;
    t.push_back(r);
  }
  return t;
}

Result<MlocStore> build_store(pfs::PfsStorage* fs) {
  MlocConfig cfg;
  cfg.shape = NDShape{256, 256};
  cfg.layout.chunk_shape = NDShape{64, 64};
  cfg.layout.num_bins = 16;
  cfg.layout.codec = "mzip";
  auto store = MlocStore::create(fs, "net", cfg);
  if (!store.is_ok()) return store;
  MLOC_RETURN_IF_ERROR(
      store.value().write_variable("v", datagen::gts_like(256, 7)));
  MLOC_RETURN_IF_ERROR(
      store.value().write_variable("w", datagen::gts_like(256, 19)));
  return store;
}

/// A QueryService plus the storage its store borrows (their lifetimes are
/// tied; the service alone would dangle).
struct ServiceBox {
  explicit ServiceBox(int workers) : fs(bench::default_pfs()) {
    auto store = build_store(&fs);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
    service::ServiceConfig cfg;
    cfg.num_workers = workers;
    cfg.max_queue_depth = 1 << 16;  // admission must not throttle the bench
    cfg.cache.budget_bytes = 64ull << 20;
    svc = std::make_unique<service::QueryService>(std::move(store).value(),
                                                  cfg);
  }

  pfs::PfsStorage fs;
  std::unique_ptr<service::QueryService> svc;
};

/// One query's ground truth, captured from QueryService::run in-process.
struct Expected {
  std::vector<std::uint64_t> positions;
  std::vector<double> values;
};

}  // namespace

int main() {
  raise_fd_limit();
  const int clients = std::max(1, env_int("MLOC_SERVER_CLIENTS", 512));
  const int per_client =
      std::max(1, env_int("MLOC_SERVER_QUERIES_PER_CLIENT", 4));
  const int threads = std::max(1, env_int("MLOC_SERVER_THREADS", 8));
  const int workers = std::max(1, env_int("MLOC_SERVER_WORKERS", 4));
  const double floor = env_double("MLOC_SERVER_FLOOR", 0.25);
  const std::vector<service::Request> trace = make_trace();
  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * per_client;

  std::printf(
      "Server load test: %d clients x %d queries (%llu total, %zu-template "
      "trace), %d driver threads, %d service workers\n",
      clients, per_client, static_cast<unsigned long long>(total),
      trace.size(), threads, workers);

  // ------------------------------------------------ ground truth, in-process
  std::vector<Expected> expected(trace.size());
  {
    ServiceBox box(workers);
    service::QueryService& svc = *box.svc;
    auto sid = svc.open_session("truth");
    MLOC_CHECK(sid.is_ok());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      service::Response r = svc.run(sid.value(), trace[i]);
      MLOC_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
      expected[i].positions = std::move(r.result.positions);
      expected[i].values = std::move(r.result.values);
    }
  }

  // ------------------------------------------------ in-process baseline
  double inproc_qps = 0;
  {
    ServiceBox box(workers);
    service::QueryService& svc = *box.svc;
    std::atomic<std::uint64_t> mismatches{0};
    Stopwatch wall;
    std::vector<std::thread> drivers;
    for (int t = 0; t < threads; ++t) {
      drivers.emplace_back([&, t] {
        auto sid = svc.open_session("baseline-" + std::to_string(t));
        MLOC_CHECK(sid.is_ok());
        const std::uint64_t lo = total * t / threads;
        const std::uint64_t hi = total * (t + 1) / threads;
        for (std::uint64_t q = lo; q < hi; ++q) {
          const std::size_t k = q % trace.size();
          service::Response r = svc.run(sid.value(), trace[k]);
          MLOC_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
          if (r.result.positions != expected[k].positions ||
              r.result.values != expected[k].values) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : drivers) th.join();
    inproc_qps = static_cast<double>(total) / wall.seconds();
    MLOC_CHECK_MSG(mismatches.load() == 0,
                   "in-process responses diverged across repetitions");
  }
  std::printf("in-process: %.0f q/s\n", inproc_qps);

  // ------------------------------------------------ served over localhost
  ServiceBox box(workers);
  net::ServerConfig srv_cfg;
  srv_cfg.num_loops = 2;
  net::Server server(*box.svc, srv_cfg);
  {
    Status st = server.start();
    MLOC_CHECK_MSG(st.is_ok(), st.to_string().c_str());
  }

  using Clock = std::chrono::steady_clock;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> transport_errors{0};
  std::mutex lat_mutex;
  std::vector<double> latencies;  // seconds, one entry per served query
  latencies.reserve(total);

  Stopwatch wall;
  std::vector<std::thread> drivers;
  for (int t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      const int conn_lo = clients * t / threads;
      const int conn_hi = clients * (t + 1) / threads;
      const int nconns = conn_hi - conn_lo;
      if (nconns <= 0) return;

      // This thread's slice of the fleet: every connection opens a session
      // and pipelines its whole batch before anything is collected, so all
      // of the slice's queries are genuinely in flight at once.
      std::vector<std::unique_ptr<net::Client>> conns;
      conns.reserve(static_cast<std::size_t>(nconns));
      for (int c = 0; c < nconns; ++c) {
        auto cl = std::make_unique<net::Client>();
        if (!cl->connect("127.0.0.1", server.port()).is_ok() ||
            !cl->open_session("load-" + std::to_string(conn_lo + c))
                 .is_ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        conns.push_back(std::move(cl));
      }

      struct Sent {
        std::uint64_t id = 0;
        std::size_t template_idx = 0;
        Clock::time_point at;
      };
      std::vector<std::vector<Sent>> sent(conns.size());
      for (std::size_t c = 0; c < conns.size(); ++c) {
        for (int q = 0; q < per_client; ++q) {
          const std::size_t k =
              (static_cast<std::size_t>(conn_lo + c) * per_client + q) %
              trace.size();
          auto id = conns[c]->send_query(trace[k]);
          if (!id.is_ok()) {
            transport_errors.fetch_add(1);
            return;
          }
          sent[c].push_back({id.value(), k, Clock::now()});
        }
      }

      std::vector<double> my_lat;
      my_lat.reserve(conns.size() * static_cast<std::size_t>(per_client));
      for (std::size_t c = 0; c < conns.size(); ++c) {
        for (const Sent& s : sent[c]) {
          auto resp = conns[c]->wait(s.id);
          if (!resp.is_ok() || !resp.value().status.is_ok()) {
            transport_errors.fetch_add(1);
            continue;
          }
          my_lat.push_back(
              std::chrono::duration<double>(Clock::now() - s.at).count());
          const Expected& e = expected[s.template_idx];
          if (resp.value().result.positions != e.positions ||
              resp.value().result.values != e.values) {
            mismatches.fetch_add(1);
          }
        }
        (void)conns[c]->close_session();
      }
      std::lock_guard lock(lat_mutex);
      latencies.insert(latencies.end(), my_lat.begin(), my_lat.end());
    });
  }
  for (auto& th : drivers) th.join();
  const double server_wall_s = wall.seconds();
  const double server_qps = static_cast<double>(latencies.size()) /
                            server_wall_s;
  server.shutdown();

  const bool identical_ok =
      mismatches.load() == 0 && transport_errors.load() == 0 &&
      latencies.size() == total;
  const double ratio = inproc_qps > 0 ? server_qps / inproc_qps : 0.0;
  const bool throughput_ok = server_qps >= floor * inproc_qps;
  const double p50 = percentile(latencies, 0.50) * 1e3;
  const double p95 = percentile(latencies, 0.95) * 1e3;
  const double p99 = percentile(latencies, 0.99) * 1e3;

  std::printf(
      "served:     %.0f q/s (%.2fx in-process, floor %.2f) — "
      "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
      server_qps, ratio, floor, p50, p95, p99);
  std::printf(
      "fidelity:   %llu/%llu responses collected, %llu mismatches, %llu "
      "transport errors\n",
      static_cast<unsigned long long>(latencies.size()),
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(mismatches.load()),
      static_cast<unsigned long long>(transport_errors.load()));

  const char* json_path = std::getenv("MLOC_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_server.json";
  std::FILE* f = std::fopen(json_path, "w");
  MLOC_CHECK_MSG(f != nullptr, "cannot open BENCH_server.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"server\",\n");
  std::fprintf(f, "  \"clients\": %d,\n", clients);
  std::fprintf(f, "  \"queries_per_client\": %d,\n", per_client);
  std::fprintf(f, "  \"total_queries\": %llu,\n",
               static_cast<unsigned long long>(total));
  std::fprintf(f, "  \"driver_threads\": %d,\n", threads);
  std::fprintf(f, "  \"service_workers\": %d,\n", workers);
  std::fprintf(f, "  \"inproc_qps\": %.3f,\n", inproc_qps);
  std::fprintf(f, "  \"server_qps\": %.3f,\n", server_qps);
  std::fprintf(f, "  \"server_vs_inproc\": %.4f,\n", ratio);
  std::fprintf(f, "  \"throughput_floor\": %.4f,\n", floor);
  std::fprintf(f, "  \"p50_ms\": %.4f,\n", p50);
  std::fprintf(f, "  \"p95_ms\": %.4f,\n", p95);
  std::fprintf(f, "  \"p99_ms\": %.4f,\n", p99);
  std::fprintf(f, "  \"mismatches\": %llu,\n",
               static_cast<unsigned long long>(mismatches.load()));
  std::fprintf(f, "  \"transport_errors\": %llu,\n",
               static_cast<unsigned long long>(transport_errors.load()));
  std::fprintf(f, "  \"identical_ok\": %s,\n",
               identical_ok ? "true" : "false");
  std::fprintf(f, "  \"throughput_ok\": %s\n",
               throughput_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (identical_ok=%s, throughput_ok=%s)\n", json_path,
              identical_ok ? "true" : "false",
              throughput_ok ? "true" : "false");

  if (!identical_ok) {
    std::fprintf(stderr,
                 "FAIL: served responses were not byte-identical to the "
                 "in-process baseline\n");
    return 1;
  }
  if (!throughput_ok) {
    std::fprintf(stderr,
                 "FAIL: served throughput %.0f q/s fell below %.2f x "
                 "in-process (%.0f q/s)\n",
                 server_qps, floor, inproc_qps);
    return 1;
  }
  return 0;
}
