// Wire-server load generator: replays a mixed VC / SC / multivar query
// trace against a Server over localhost from hundreds of simulated
// concurrent clients (real connections, pipelined in-flight queries),
// once over plain TCP and once over the negotiated shared-memory fast
// path, and gates three properties:
//
//   * fidelity — every served response's positions/values arrays are
//     byte-identical to QueryService::run() in-process on the same
//     store, over both transports;
//   * overhead — served TCP throughput stays above a floor fraction of
//     the in-process throughput for the same total work and worker
//     count (MLOC_SERVER_FLOOR, default 0.25);
//   * fast path — shm throughput beats TCP by at least MLOC_SHM_FLOOR
//     (default 1.15x): skipping the response copy, CRC, and loopback
//     socket for bulk payloads must actually show up in q/s.
//
// Latency accounting: client round-trip conflates three things — time
// in the admission queue (a function of offered load, not transport),
// query execution, and the wire itself. Each response carries
// queue_wait_s and exec_wall_s from the service, so percentiles are
// reported separately for round-trip, queue wait, and execution.
// Samples completing inside the warmup window (the first
// MLOC_SERVER_WARMUP fraction of the pass wall, default 0.10) are
// excluded from percentile math: connection setup and cold caches
// otherwise dominate the tail.
//
// Emits BENCH_server.json (clients, qps in-process / tcp / shm,
// shm_vs_tcp, split percentiles, identical_ok, throughput_ok, shm_ok)
// and exits non-zero when any gate fails — CI runs this as the server
// smoke test.
//
// Knobs (env): MLOC_SERVER_CLIENTS (default 512 connections),
// MLOC_SERVER_QUERIES_PER_CLIENT (default 4), MLOC_SERVER_THREADS
// (driver threads, default 8), MLOC_SERVER_WORKERS (service workers,
// default 4), MLOC_SERVER_FLOOR, MLOC_SHM_FLOOR, MLOC_SERVER_WARMUP,
// MLOC_SERVER_SHM_RING_KB (per-client ring, default 2048),
// MLOC_BENCH_JSON (output path).
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "datagen/datagen.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/query_service.hpp"
#include "util/timer.hpp"

using namespace mloc;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

/// Nearest-rank percentile over an unsorted sample (sorted in place).
double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Lift the soft fd limit to the hard limit; 512 connections plus epoll
/// and store fds can exceed a conservative default soft limit.
void raise_fd_limit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }
}

/// The mixed trace: exploration-style templates covering value-constrained
/// retrieval (with and without values), region windows at mixed PLoD
/// levels, combined constraints, and multi-variable selection.
std::vector<service::Request> make_trace() {
  std::vector<service::Request> t;
  {
    service::Request r;  // narrow VC, full values
    r.var = "v";
    r.query.vc = ValueConstraint{0.20, 0.35};
    t.push_back(r);
  }
  {
    service::Request r;  // VC, positions only
    r.var = "v";
    r.query.vc = ValueConstraint{0.60, 0.70};
    r.query.values_needed = false;
    t.push_back(r);
  }
  {
    service::Request r;  // region window, coarse precision
    r.var = "v";
    r.query.sc = Region(2, Coord{32, 32}, Coord{96, 96});
    r.query.plod_level = 3;
    t.push_back(r);
  }
  {
    service::Request r;  // overlapping window, full precision
    r.var = "w";
    r.query.sc = Region(2, Coord{64, 48}, Coord{128, 112});
    t.push_back(r);
  }
  {
    service::Request r;  // VC restricted to a region
    r.var = "v";
    r.query.vc = ValueConstraint{0.10, 0.50};
    r.query.sc = Region(2, Coord{0, 0}, Coord{128, 128});
    r.query.plod_level = 5;
    t.push_back(r);
  }
  {
    service::Request r;  // multivar AND with value fetch
    r.var = "v";
    service::MultivarSpec mv;
    mv.preds.push_back({"v", ValueConstraint{0.30, 0.60}});
    mv.preds.push_back({"w", ValueConstraint{0.40, 0.80}});
    mv.combine = MlocStore::Combine::kAnd;
    mv.fetch_var = "v";
    r.multivar = std::move(mv);
    t.push_back(r);
  }
  {
    service::Request r;  // multivar OR, positions only
    r.var = "w";
    service::MultivarSpec mv;
    mv.preds.push_back({"v", ValueConstraint{0.00, 0.05}});
    mv.preds.push_back({"w", ValueConstraint{0.95, 1.00}});
    mv.combine = MlocStore::Combine::kOr;
    r.multivar = std::move(mv);
    t.push_back(r);
  }
  {
    service::Request r;  // wide VC at coarse precision
    r.var = "w";
    r.query.vc = ValueConstraint{0.00, 0.40};
    r.query.plod_level = 2;
    t.push_back(r);
  }
  return t;
}

Result<MlocStore> build_store(pfs::PfsStorage* fs) {
  MlocConfig cfg;
  cfg.shape = NDShape{256, 256};
  cfg.layout.chunk_shape = NDShape{64, 64};
  cfg.layout.num_bins = 16;
  cfg.layout.codec = "mzip";
  auto store = MlocStore::create(fs, "net", cfg);
  if (!store.is_ok()) return store;
  MLOC_RETURN_IF_ERROR(
      store.value().write_variable("v", datagen::gts_like(256, 7)));
  MLOC_RETURN_IF_ERROR(
      store.value().write_variable("w", datagen::gts_like(256, 19)));
  return store;
}

/// A QueryService plus the storage its store borrows (their lifetimes are
/// tied; the service alone would dangle).
struct ServiceBox {
  explicit ServiceBox(int workers) : fs(bench::default_pfs()) {
    auto store = build_store(&fs);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
    service::ServiceConfig cfg;
    cfg.num_workers = workers;
    cfg.max_queue_depth = 1 << 16;  // admission must not throttle the bench
    cfg.cache.budget_bytes = 64ull << 20;
    svc = std::make_unique<service::QueryService>(std::move(store).value(),
                                                  cfg);
  }

  pfs::PfsStorage fs;
  std::unique_ptr<service::QueryService> svc;
};

/// One query's ground truth, captured from QueryService::run in-process.
struct Expected {
  std::vector<std::uint64_t> positions;
  std::vector<double> values;
};

/// One collected response, timed against the pass start so warmup
/// samples can be excluded after the fact.
struct Sample {
  double rtt_s = 0;         ///< client submit -> response collected
  double queue_wait_s = 0;  ///< admission queue (from the service)
  double exec_wall_s = 0;   ///< query execution (from the service)
  double done_s = 0;        ///< completion time since pass start
};

/// Round-trip / queue / exec percentiles over the steady-state window.
struct LatencySplit {
  double p50 = 0, p95 = 0, p99 = 0;              // round-trip, ms
  double queue_p50 = 0, queue_p95 = 0, queue_p99 = 0;
  double exec_p50 = 0, exec_p95 = 0, exec_p99 = 0;
  std::uint64_t samples = 0;           ///< steady-state samples used
  std::uint64_t warmup_excluded = 0;   ///< samples inside the warmup window
};

struct ServedPass {
  double qps = 0;
  double wall_s = 0;
  std::uint64_t collected = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t shm_clients = 0;    ///< connections that negotiated a ring
  std::uint64_t shm_responses = 0;  ///< responses with stats.via_shm set
  std::uint64_t shm_fallbacks = 0;  ///< server-side ring-full -> TCP frame
  LatencySplit lat;
};

LatencySplit split_latencies(std::vector<Sample>& samples, double wall_s,
                             double warmup_frac) {
  LatencySplit out;
  const double cutoff = wall_s * warmup_frac;
  std::vector<double> rtt, queue, exec;
  rtt.reserve(samples.size());
  for (const Sample& s : samples) {
    if (s.done_s < cutoff) {
      ++out.warmup_excluded;
      continue;
    }
    rtt.push_back(s.rtt_s);
    queue.push_back(s.queue_wait_s);
    exec.push_back(s.exec_wall_s);
  }
  // A tiny run can complete entirely inside the warmup window; report
  // over everything rather than an empty set.
  if (rtt.empty()) {
    out.warmup_excluded = 0;
    for (const Sample& s : samples) {
      rtt.push_back(s.rtt_s);
      queue.push_back(s.queue_wait_s);
      exec.push_back(s.exec_wall_s);
    }
  }
  out.samples = rtt.size();
  out.p50 = percentile(rtt, 0.50) * 1e3;
  out.p95 = percentile(rtt, 0.95) * 1e3;
  out.p99 = percentile(rtt, 0.99) * 1e3;
  out.queue_p50 = percentile(queue, 0.50) * 1e3;
  out.queue_p95 = percentile(queue, 0.95) * 1e3;
  out.queue_p99 = percentile(queue, 0.99) * 1e3;
  out.exec_p50 = percentile(exec, 0.50) * 1e3;
  out.exec_p95 = percentile(exec, 0.95) * 1e3;
  out.exec_p99 = percentile(exec, 0.99) * 1e3;
  return out;
}

/// One full served pass: a fresh service + server, the whole client
/// fleet, every query checked against `expected`. With `use_shm` each
/// client offers a ring after opening its session (best-effort — a
/// refusal keeps that client on TCP, and the shm_clients count exposes
/// how many actually negotiated).
ServedPass run_served(const char* label, bool use_shm,
                      std::uint64_t ring_bytes,
                      const std::vector<service::Request>& trace,
                      const std::vector<Expected>& expected, int clients,
                      int per_client, int threads, int workers,
                      double warmup_frac) {
  ServiceBox box(workers);
  net::ServerConfig srv_cfg;
  srv_cfg.num_loops = 2;
  net::Server server(*box.svc, srv_cfg);
  {
    Status st = server.start();
    MLOC_CHECK_MSG(st.is_ok(), st.to_string().c_str());
  }

  using Clock = std::chrono::steady_clock;
  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * per_client;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> transport_errors{0};
  std::atomic<std::uint64_t> shm_clients{0};
  std::atomic<std::uint64_t> shm_responses{0};
  std::mutex sample_mutex;
  std::vector<Sample> samples;  // one entry per served query
  samples.reserve(total);

  Stopwatch wall;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> drivers;
  for (int t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      const int conn_lo = clients * t / threads;
      const int conn_hi = clients * (t + 1) / threads;
      const int nconns = conn_hi - conn_lo;
      if (nconns <= 0) return;

      // This thread's slice of the fleet: every connection opens a session
      // and pipelines its whole batch before anything is collected, so all
      // of the slice's queries are genuinely in flight at once.
      std::vector<std::unique_ptr<net::Client>> conns;
      conns.reserve(static_cast<std::size_t>(nconns));
      for (int c = 0; c < nconns; ++c) {
        auto cl = std::make_unique<net::Client>();
        if (!cl->connect("127.0.0.1", server.port()).is_ok() ||
            !cl->open_session("load-" + std::to_string(conn_lo + c))
                 .is_ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        if (use_shm && cl->enable_shm(ring_bytes).is_ok()) {
          shm_clients.fetch_add(1);
        }
        conns.push_back(std::move(cl));
      }

      struct Sent {
        std::uint64_t id = 0;
        std::size_t template_idx = 0;
        Clock::time_point at;
      };
      std::vector<std::vector<Sent>> sent(conns.size());
      for (std::size_t c = 0; c < conns.size(); ++c) {
        for (int q = 0; q < per_client; ++q) {
          const std::size_t k =
              (static_cast<std::size_t>(conn_lo + c) * per_client + q) %
              trace.size();
          auto id = conns[c]->send_query(trace[k]);
          if (!id.is_ok()) {
            transport_errors.fetch_add(1);
            return;
          }
          sent[c].push_back({id.value(), k, Clock::now()});
        }
      }

      std::vector<Sample> my;
      my.reserve(conns.size() * static_cast<std::size_t>(per_client));
      for (std::size_t c = 0; c < conns.size(); ++c) {
        for (const Sent& s : sent[c]) {
          auto resp = conns[c]->wait(s.id);
          if (!resp.is_ok() || !resp.value().status.is_ok()) {
            transport_errors.fetch_add(1);
            continue;
          }
          const Clock::time_point now = Clock::now();
          Sample sample;
          sample.rtt_s = std::chrono::duration<double>(now - s.at).count();
          sample.queue_wait_s = resp.value().stats.queue_wait_s;
          sample.exec_wall_s = resp.value().stats.exec_wall_s;
          sample.done_s = std::chrono::duration<double>(now - t0).count();
          my.push_back(sample);
          if (resp.value().stats.via_shm) shm_responses.fetch_add(1);
          const Expected& e = expected[s.template_idx];
          if (resp.value().result.positions != e.positions ||
              resp.value().result.values != e.values) {
            mismatches.fetch_add(1);
          }
        }
        (void)conns[c]->close_session();
      }
      std::lock_guard lock(sample_mutex);
      samples.insert(samples.end(), my.begin(), my.end());
    });
  }
  for (auto& th : drivers) th.join();

  ServedPass pass;
  pass.wall_s = wall.seconds();
  pass.collected = samples.size();
  pass.qps = static_cast<double>(samples.size()) / pass.wall_s;
  pass.mismatches = mismatches.load();
  pass.transport_errors = transport_errors.load();
  pass.shm_clients = shm_clients.load();
  pass.shm_responses = shm_responses.load();
  const net::ServerStats st = server.stats();
  pass.shm_fallbacks = st.shm_fallbacks;
  server.shutdown();
  pass.lat = split_latencies(samples, pass.wall_s, warmup_frac);

  std::printf(
      "%s:  %.0f q/s — rtt p50 %.2f / p95 %.2f / p99 %.2f ms "
      "(queue p50 %.2f, exec p50 %.2f; %llu warmup samples excluded)\n",
      label, pass.qps, pass.lat.p50, pass.lat.p95, pass.lat.p99,
      pass.lat.queue_p50, pass.lat.exec_p50,
      static_cast<unsigned long long>(pass.lat.warmup_excluded));
  if (use_shm) {
    std::printf(
        "       shm: %llu/%d clients negotiated, %llu/%llu responses via "
        "ring, %llu ring-full fallbacks\n",
        static_cast<unsigned long long>(pass.shm_clients), clients,
        static_cast<unsigned long long>(pass.shm_responses),
        static_cast<unsigned long long>(pass.collected),
        static_cast<unsigned long long>(pass.shm_fallbacks));
  }
  return pass;
}

void print_pass_json(std::FILE* f, const char* prefix,
                     const ServedPass& pass) {
  const LatencySplit& l = pass.lat;
  std::fprintf(f, "  \"%s_qps\": %.3f,\n", prefix, pass.qps);
  std::fprintf(f, "  \"%s_p50_ms\": %.4f,\n", prefix, l.p50);
  std::fprintf(f, "  \"%s_p95_ms\": %.4f,\n", prefix, l.p95);
  std::fprintf(f, "  \"%s_p99_ms\": %.4f,\n", prefix, l.p99);
  std::fprintf(f, "  \"%s_queue_p50_ms\": %.4f,\n", prefix, l.queue_p50);
  std::fprintf(f, "  \"%s_queue_p95_ms\": %.4f,\n", prefix, l.queue_p95);
  std::fprintf(f, "  \"%s_queue_p99_ms\": %.4f,\n", prefix, l.queue_p99);
  std::fprintf(f, "  \"%s_exec_p50_ms\": %.4f,\n", prefix, l.exec_p50);
  std::fprintf(f, "  \"%s_exec_p95_ms\": %.4f,\n", prefix, l.exec_p95);
  std::fprintf(f, "  \"%s_exec_p99_ms\": %.4f,\n", prefix, l.exec_p99);
  std::fprintf(f, "  \"%s_warmup_excluded\": %llu,\n", prefix,
               static_cast<unsigned long long>(l.warmup_excluded));
}

}  // namespace

int main() {
  raise_fd_limit();
  const int clients = std::max(1, env_int("MLOC_SERVER_CLIENTS", 512));
  const int per_client =
      std::max(1, env_int("MLOC_SERVER_QUERIES_PER_CLIENT", 4));
  const int threads = std::max(1, env_int("MLOC_SERVER_THREADS", 8));
  const int workers = std::max(1, env_int("MLOC_SERVER_WORKERS", 4));
  const double floor = env_double("MLOC_SERVER_FLOOR", 0.25);
  const double shm_floor = env_double("MLOC_SHM_FLOOR", 1.15);
  const double warmup_frac = env_double("MLOC_SERVER_WARMUP", 0.10);
  const std::uint64_t ring_bytes =
      static_cast<std::uint64_t>(
          std::max(4, env_int("MLOC_SERVER_SHM_RING_KB", 2048)))
      << 10;
  const std::vector<service::Request> trace = make_trace();
  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * per_client;

  std::printf(
      "Server load test: %d clients x %d queries (%llu total, %zu-template "
      "trace), %d driver threads, %d service workers, %llu KiB shm rings\n",
      clients, per_client, static_cast<unsigned long long>(total),
      trace.size(), threads, workers,
      static_cast<unsigned long long>(ring_bytes >> 10));

  // ------------------------------------------------ ground truth, in-process
  std::vector<Expected> expected(trace.size());
  {
    ServiceBox box(workers);
    service::QueryService& svc = *box.svc;
    auto sid = svc.open_session("truth");
    MLOC_CHECK(sid.is_ok());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      service::Response r = svc.run(sid.value(), trace[i]);
      MLOC_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
      expected[i].positions = std::move(r.result.positions);
      expected[i].values = std::move(r.result.values);
    }
  }

  // ------------------------------------------------ in-process baseline
  double inproc_qps = 0;
  {
    ServiceBox box(workers);
    service::QueryService& svc = *box.svc;
    std::atomic<std::uint64_t> mismatches{0};
    Stopwatch wall;
    std::vector<std::thread> drivers;
    for (int t = 0; t < threads; ++t) {
      drivers.emplace_back([&, t] {
        auto sid = svc.open_session("baseline-" + std::to_string(t));
        MLOC_CHECK(sid.is_ok());
        const std::uint64_t lo = total * t / threads;
        const std::uint64_t hi = total * (t + 1) / threads;
        for (std::uint64_t q = lo; q < hi; ++q) {
          const std::size_t k = q % trace.size();
          service::Response r = svc.run(sid.value(), trace[k]);
          MLOC_CHECK_MSG(r.status.is_ok(), r.status.to_string().c_str());
          if (r.result.positions != expected[k].positions ||
              r.result.values != expected[k].values) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : drivers) th.join();
    inproc_qps = static_cast<double>(total) / wall.seconds();
    MLOC_CHECK_MSG(mismatches.load() == 0,
                   "in-process responses diverged across repetitions");
  }
  std::printf("in-process: %.0f q/s\n", inproc_qps);

  // ------------------------------------------------ served, both transports
  const ServedPass tcp =
      run_served("tcp   ", /*use_shm=*/false, ring_bytes, trace, expected,
                 clients, per_client, threads, workers, warmup_frac);
  const ServedPass shm =
      run_served("shm   ", /*use_shm=*/true, ring_bytes, trace, expected,
                 clients, per_client, threads, workers, warmup_frac);

  const bool identical_ok =
      tcp.mismatches == 0 && tcp.transport_errors == 0 &&
      tcp.collected == total && shm.mismatches == 0 &&
      shm.transport_errors == 0 && shm.collected == total;
  const double ratio = inproc_qps > 0 ? tcp.qps / inproc_qps : 0.0;
  const bool throughput_ok = tcp.qps >= floor * inproc_qps;
  const double shm_vs_tcp = tcp.qps > 0 ? shm.qps / tcp.qps : 0.0;
  const bool shm_ok = shm_vs_tcp >= shm_floor;

  std::printf(
      "served:     tcp %.0f q/s (%.2fx in-process, floor %.2f); shm %.0f "
      "q/s (%.2fx tcp, floor %.2f)\n",
      tcp.qps, ratio, floor, shm.qps, shm_vs_tcp, shm_floor);
  std::printf(
      "fidelity:   %llu+%llu/%llu responses collected, %llu mismatches, "
      "%llu transport errors\n",
      static_cast<unsigned long long>(tcp.collected),
      static_cast<unsigned long long>(shm.collected),
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(tcp.mismatches + shm.mismatches),
      static_cast<unsigned long long>(tcp.transport_errors +
                                      shm.transport_errors));

  const char* json_path = std::getenv("MLOC_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_server.json";
  std::FILE* f = std::fopen(json_path, "w");
  MLOC_CHECK_MSG(f != nullptr, "cannot open BENCH_server.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"server\",\n");
  std::fprintf(f, "  \"clients\": %d,\n", clients);
  std::fprintf(f, "  \"queries_per_client\": %d,\n", per_client);
  std::fprintf(f, "  \"total_queries\": %llu,\n",
               static_cast<unsigned long long>(total));
  std::fprintf(f, "  \"driver_threads\": %d,\n", threads);
  std::fprintf(f, "  \"service_workers\": %d,\n", workers);
  std::fprintf(f, "  \"shm_ring_kb\": %llu,\n",
               static_cast<unsigned long long>(ring_bytes >> 10));
  std::fprintf(f, "  \"warmup_frac\": %.4f,\n", warmup_frac);
  std::fprintf(f, "  \"inproc_qps\": %.3f,\n", inproc_qps);
  // server_qps keeps its original meaning (served TCP throughput) so
  // existing dashboards and jq gates keep working.
  std::fprintf(f, "  \"server_qps\": %.3f,\n", tcp.qps);
  std::fprintf(f, "  \"server_vs_inproc\": %.4f,\n", ratio);
  std::fprintf(f, "  \"throughput_floor\": %.4f,\n", floor);
  print_pass_json(f, "tcp", tcp);
  print_pass_json(f, "shm", shm);
  std::fprintf(f, "  \"shm_vs_tcp\": %.4f,\n", shm_vs_tcp);
  std::fprintf(f, "  \"shm_floor\": %.4f,\n", shm_floor);
  std::fprintf(f, "  \"shm_clients\": %llu,\n",
               static_cast<unsigned long long>(shm.shm_clients));
  std::fprintf(f, "  \"shm_responses\": %llu,\n",
               static_cast<unsigned long long>(shm.shm_responses));
  std::fprintf(f, "  \"shm_fallbacks\": %llu,\n",
               static_cast<unsigned long long>(shm.shm_fallbacks));
  std::fprintf(f, "  \"mismatches\": %llu,\n",
               static_cast<unsigned long long>(tcp.mismatches +
                                               shm.mismatches));
  std::fprintf(f, "  \"transport_errors\": %llu,\n",
               static_cast<unsigned long long>(tcp.transport_errors +
                                               shm.transport_errors));
  std::fprintf(f, "  \"identical_ok\": %s,\n",
               identical_ok ? "true" : "false");
  std::fprintf(f, "  \"throughput_ok\": %s,\n",
               throughput_ok ? "true" : "false");
  std::fprintf(f, "  \"shm_ok\": %s\n", shm_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (identical_ok=%s, throughput_ok=%s, shm_ok=%s)\n",
              json_path, identical_ok ? "true" : "false",
              throughput_ok ? "true" : "false", shm_ok ? "true" : "false");

  if (!identical_ok) {
    std::fprintf(stderr,
                 "FAIL: served responses were not byte-identical to the "
                 "in-process baseline\n");
    return 1;
  }
  if (!throughput_ok) {
    std::fprintf(stderr,
                 "FAIL: served throughput %.0f q/s fell below %.2f x "
                 "in-process (%.0f q/s)\n",
                 tcp.qps, floor, inproc_qps);
    return 1;
  }
  if (!shm_ok) {
    std::fprintf(stderr,
                 "FAIL: shm throughput %.0f q/s is only %.2fx tcp "
                 "(%.0f q/s); floor %.2fx\n",
                 shm.qps, shm_vs_tcp, tcp.qps, shm_floor);
    return 1;
  }
  return 0;
}
