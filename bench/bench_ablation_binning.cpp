// Ablation: equal-frequency vs equal-width binning — the paper's §III-B-1
// claim that "MLOC applies equal frequency binning to prevent load
// imbalance". Reports bin-population imbalance and the mean/worst region
// query times under both schemes on a skewed (Gaussian-ish) field.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(10, cfg.queries_per_cell);
  std::printf("Ablation — equal-frequency vs equal-width binning, %d"
              " queries\n", queries);

  const Dataset gts = make_gts(false, cfg);
  constexpr int kRanks = 8;

  TablePrinter table(
      "Binning ablation on GTS (skewed value distribution)",
      {"max/min bin pop", "mean region q (s)", "worst region q (s)"});

  for (const auto& [label, kind] :
       std::vector<std::pair<std::string, BinningKind>>{
           {"equal-frequency", BinningKind::kEqualFrequency},
           {"equal-width", BinningKind::kEqualWidth}}) {
    pfs::PfsStorage fs(default_pfs());
    MlocConfig mcfg;
    mcfg.shape = gts.grid.shape();
    mcfg.layout.chunk_shape = gts.chunk;
    mcfg.layout.num_bins = 100;
    mcfg.layout.codec = kMlocCol;
    mcfg.layout.binning = kind;
    auto store = MlocStore::create(&fs, "bk", mcfg);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
    MLOC_CHECK(store.value().write_variable("v", gts.grid).is_ok());

    // Bin population imbalance from the actual scheme.
    auto scheme = store.value().binning("v").value();
    std::vector<std::uint64_t> pop(scheme->num_bins(), 0);
    for (std::uint64_t i = 0; i < gts.grid.size(); ++i) {
      ++pop[scheme->bin_of(gts.grid.at_linear(i))];
    }
    std::uint64_t mx = 0, mn = ~0ull;
    for (auto p : pop) {
      mx = std::max(mx, p);
      mn = std::min(mn, p == 0 ? 1 : p);  // avoid div by zero display
    }

    Rng rng(cfg.seed + 104);
    double total = 0, worst = 0;
    for (int i = 0; i < queries; ++i) {
      Query q;
      q.vc = datagen::random_vc(gts.grid, 0.02, rng);
      q.values_needed = false;
      auto res = store.value().execute("v", q, kRanks);
      MLOC_CHECK(res.is_ok());
      total += res.value().times.total();
      worst = std::max(worst, res.value().times.total());
    }
    table.add_row(label,
                  {static_cast<double>(mx) / static_cast<double>(mn),
                   total / queries, worst},
                  "%.4f");
  }
  table.print();
  std::printf(
      "\nExpected: equal-width bins are badly imbalanced on skewed data"
      " (dense\ncenter bins hold orders of magnitude more points), making"
      " query cost\nunpredictable — the paper's argument for equal"
      " frequency.\n");
  return 0;
}
