// Reproduces paper Fig. 7: value-query performance (10% region
// selectivity, large datasets) as the MPI process count grows 8 -> 128.
// Expected shape: decompression/reconstruction scale down with ranks; the
// I/O component stops improving once the OSTs saturate (contention), so
// the total levels off — and effective throughput approaches the array's
// aggregate bandwidth.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(2, cfg.queries_per_cell / 8);
  std::printf("Fig. 7 reproduction — scalability of value queries (10%%),"
              " %d queries per point\n", queries);

  const Dataset gts = make_gts(true, cfg);
  const Dataset s3d = make_s3d(true, cfg);

  for (const Dataset* ds : {&gts, &s3d}) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "f7", *ds, kMlocCol);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());

    TablePrinter table(
        std::string("Fig 7: value query (10%) on ") + ds->label +
            " vs process count",
        {"I/O (s)", "Decompress (s)", "Reconstruct (s)", "Total (s)",
         "Throughput (MB/s)"});
    for (int ranks : {8, 16, 32, 64, 128}) {
      Rng rng(cfg.seed + 71);  // same query sequence for every rank count
      ComponentTimes sum;
      std::uint64_t bytes = 0;
      for (int i = 0; i < queries; ++i) {
        Query q;
        q.sc = datagen::random_sc(ds->grid.shape(), 0.10, rng);
        auto res = store.value().execute("v", q, ranks);
        MLOC_CHECK(res.is_ok());
        sum += res.value().times;
        bytes += res.value().bytes_read;
      }
      sum /= queries;
      const double throughput =
          static_cast<double>(bytes / queries) / sum.total() / 1e6;
      table.add_row(std::to_string(ranks) + " procs",
                    {sum.io, sum.decompress, sum.reconstruct, sum.total(),
                     throughput},
                    "%.4f");
    }
    table.print();
  }

  std::printf(
      "\nPaper Fig. 7 shape: decompression+reconstruction shrink with more"
      " processes;\nI/O saturates (contention); MLOC reaches ~2 GB/s at 128"
      " procs on their array\n(our emulated array saturates at its own"
      " aggregate bandwidth, 8 x 50 MB/s).\n");
  return 0;
}
