// Ablation: codec throughput and compression ratio (google-benchmark).
// Measures encode/decode rates of every registered codec on an S3D-like
// value buffer — the data that backs the MLOC-COL/ISO/ISA trade-off
// (paper §III-B-4: block/bin sizing for "compression ratio and
// throughput").
#include <benchmark/benchmark.h>

#include <vector>

#include "compress/registry.hpp"
#include "datagen/datagen.hpp"

namespace {

using namespace mloc;

const std::vector<double>& sample_values() {
  static const std::vector<double> values = [] {
    Grid g = datagen::s3d_like(64, 20120910);
    return std::vector<double>(g.values().begin(), g.values().end());
  }();
  return values;
}

void BM_Encode(benchmark::State& state, const std::string& codec_name) {
  auto codec = make_double_codec(codec_name).value();
  const auto& values = sample_values();
  std::uint64_t encoded_size = 0;
  for (auto _ : state) {
    auto enc = codec->encode(values);
    MLOC_CHECK(enc.is_ok());
    encoded_size = enc.value().size();
    benchmark::DoNotOptimize(enc.value().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 8));
  state.counters["ratio"] =
      static_cast<double>(values.size() * 8) /
      static_cast<double>(encoded_size);
}

void BM_Decode(benchmark::State& state, const std::string& codec_name) {
  auto codec = make_double_codec(codec_name).value();
  const auto& values = sample_values();
  const Bytes encoded = codec->encode(values).value();
  for (auto _ : state) {
    auto dec = codec->decode(encoded);
    MLOC_CHECK(dec.is_ok());
    benchmark::DoNotOptimize(dec.value().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 8));
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : mloc::registered_codec_names()) {
    benchmark::RegisterBenchmark(("encode/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Encode(s, name);
                                 });
    benchmark::RegisterBenchmark(("decode/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Decode(s, name);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
