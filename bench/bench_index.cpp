// Hierarchical bitmap index A/B: the same value-query workload planned and
// executed twice on the same store — once through the .hbx tree
// (ExecOptions::use_hbx, the default) and once through the flat per-bin
// positional path (use_hbx = false). Planned I/O is classified by subfile
// (.idx vs .hbx vs .dat) to show the tree's core claim: fully-covered bins
// are answered from aggregate node bitmaps with zero .idx reads, so the
// hierarchical path strictly reduces .idx bytes and never adds modeled
// seeks. Results must stay bit-identical. Counters land in
// BENCH_index.json; CI jq-asserts the reduction and the binary exits
// non-zero on any regression.
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "datagen/datagen.hpp"
#include "util/rng.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

constexpr int kRanks = 4;

struct SideTotals {
  std::uint64_t idx_bytes = 0;   ///< planned bytes on .idx subfiles
  std::uint64_t hbx_bytes = 0;   ///< planned bytes on the .hbx subfile
  std::uint64_t dat_bytes = 0;   ///< planned bytes on .dat subfiles
  std::uint64_t modeled_seeks = 0;
  std::uint64_t bytes_read = 0;  ///< executed (merged) bytes
  std::uint64_t aligned_bins = 0;
  double modeled_io_s = 0;
};

struct ConfigResult {
  std::string label;
  int num_bins = 0;
  int fanout = 0;
  int queries = 0;
  SideTotals hier;
  SideTotals flat;
  bool identical = true;
};

/// Split one plan's predicted I/O by subfile kind.
void classify(const exec::PlanSummary& s, const std::set<pfs::FileId>& idx,
              pfs::FileId hbx, SideTotals* out) {
  for (const pfs::IoRecord& r : s.planned_io.records()) {
    if (idx.count(r.file) != 0) {
      out->idx_bytes += r.len;
    } else if (r.file == hbx) {
      out->hbx_bytes += r.len;
    } else {
      out->dat_bytes += r.len;
    }
  }
  out->modeled_seeks += s.stats.modeled_seeks;
}

void json_side(std::FILE* f, const char* key, const SideTotals& t,
               const char* tail) {
  std::fprintf(
      f,
      "      \"%s\": {\"idx_bytes\": %llu, \"hbx_bytes\": %llu, "
      "\"dat_bytes\": %llu, \"modeled_seeks\": %llu, \"bytes_read\": %llu, "
      "\"aligned_bins\": %llu, \"modeled_io_s\": %.9f}%s\n",
      key, static_cast<unsigned long long>(t.idx_bytes),
      static_cast<unsigned long long>(t.hbx_bytes),
      static_cast<unsigned long long>(t.dat_bytes),
      static_cast<unsigned long long>(t.modeled_seeks),
      static_cast<unsigned long long>(t.bytes_read),
      static_cast<unsigned long long>(t.aligned_bins), t.modeled_io_s, tail);
}

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(6, cfg.queries_per_cell / 2);
  const Dataset ds = make_gts(false, cfg);
  std::printf("Hierarchical index A/B — value queries on %s, %d per"
              " selectivity cell, %d ranks\n",
              ds.label.c_str(), queries, kRanks);

  struct Config {
    const char* label;
    LevelOrder order;
    sfc::CurveKind curve;
    int num_bins;
    int fanout;
  };
  const std::vector<Config> configs = {
      {"VMS/hilbert  64 bins f4", LevelOrder::kVMS, sfc::CurveKind::kHilbert,
       64, 4},
      {"VSM/morton   96 bins f8", LevelOrder::kVSM, sfc::CurveKind::kMorton,
       96, 8},
      {"VMS/rowmajor 128 bins f2", LevelOrder::kVMS,
       sfc::CurveKind::kRowMajor, 128, 2},
  };
  const double sels[] = {0.05, 0.2, 0.5};

  std::vector<ConfigResult> results;
  for (const Config& c : configs) {
    MlocConfig mc;
    mc.shape = ds.grid.shape();
    mc.layout.chunk_shape = ds.chunk;
    mc.layout.num_bins = c.num_bins;
    mc.layout.codec = kMlocCol;
    mc.layout.order = c.order;
    mc.layout.curve = c.curve;
    mc.layout.index_fanout = c.fanout;

    pfs::PfsStorage fs(default_pfs());
    auto store = MlocStore::create(&fs, "idx", mc);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
    MlocStore& st = store.value();
    MLOC_CHECK_MSG(st.write_variable("v", ds.grid).is_ok(),
                   "ingest failed");

    auto bins = st.bin_subfiles("v");
    auto hbx = st.hbx_subfile("v");
    MLOC_CHECK(bins.is_ok() && hbx.is_ok());
    MLOC_CHECK_MSG(hbx.value().present, "store built without an index");
    std::set<pfs::FileId> idx_files;
    for (const auto& b : bins.value()) idx_files.insert(b.idx);

    ConfigResult res;
    res.label = c.label;
    res.num_bins = c.num_bins;
    res.fanout = c.fanout;

    exec::ExecOptions hier_opts;
    exec::ExecOptions flat_opts;
    flat_opts.use_hbx = false;

    // Plan everything first — MlocStore::plan is side-effect-free, so the
    // hierarchical and flat images are costed against identical cache
    // state (cold headers for both sides).
    Rng rng(cfg.seed + 41);
    std::vector<Query> mix;
    for (double sel : sels) {
      for (int i = 0; i < queries; ++i) {
        Query q;
        q.vc = datagen::random_vc(ds.grid, sel, rng);
        q.values_needed = false;
        mix.push_back(q);
      }
    }
    res.queries = static_cast<int>(mix.size());
    for (const Query& q : mix) {
      auto ph = st.plan("v", q, kRanks, hier_opts);
      auto pf = st.plan("v", q, kRanks, flat_opts);
      MLOC_CHECK_MSG(ph.is_ok(), ph.status().to_string().c_str());
      MLOC_CHECK_MSG(pf.is_ok(), pf.status().to_string().c_str());
      classify(ph.value(), idx_files, hbx.value().file, &res.hier);
      classify(pf.value(), idx_files, hbx.value().file, &res.flat);
    }

    // Then execute both sides: results must be bit-identical, and the
    // executed byte/seek counters corroborate the planned image.
    for (const Query& q : mix) {
      auto rh = st.execute("v", q, kRanks, hier_opts);
      auto rf = st.execute("v", q, kRanks, flat_opts);
      MLOC_CHECK_MSG(rh.is_ok(), rh.status().to_string().c_str());
      MLOC_CHECK_MSG(rf.is_ok(), rf.status().to_string().c_str());
      res.identical =
          res.identical && rh.value().positions == rf.value().positions;
      res.hier.bytes_read += rh.value().exec.bytes_read;
      res.flat.bytes_read += rf.value().exec.bytes_read;
      res.hier.aligned_bins += rh.value().aligned_bins;
      res.flat.aligned_bins += rf.value().aligned_bins;
      res.hier.modeled_io_s += rh.value().times.io;
      res.flat.modeled_io_s += rf.value().times.io;
    }
    results.push_back(res);
  }

  TablePrinter table("Hierarchical vs flat index resolution (per config)",
                     {".idx KB flat", ".idx KB hier", ".hbx KB hier",
                      "seeks flat", "seeks hier", "aligned bins"});
  for (const ConfigResult& r : results) {
    table.add_row(r.label,
                  {static_cast<double>(r.flat.idx_bytes) / 1024.0,
                   static_cast<double>(r.hier.idx_bytes) / 1024.0,
                   static_cast<double>(r.hier.hbx_bytes) / 1024.0,
                   static_cast<double>(r.flat.modeled_seeks),
                   static_cast<double>(r.hier.modeled_seeks),
                   static_cast<double>(r.hier.aligned_bins)});
  }
  table.print();

  SideTotals total_hier, total_flat;
  bool identical = true;
  for (const ConfigResult& r : results) {
    total_hier.idx_bytes += r.hier.idx_bytes;
    total_hier.hbx_bytes += r.hier.hbx_bytes;
    total_hier.modeled_seeks += r.hier.modeled_seeks;
    total_hier.aligned_bins += r.hier.aligned_bins;
    total_flat.idx_bytes += r.flat.idx_bytes;
    total_flat.modeled_seeks += r.flat.modeled_seeks;
    identical = identical && r.identical;
  }

  // The tree's claim, gated per config: strictly fewer .idx bytes (covered
  // bins skip their positional blobs and fragment tables entirely) and no
  // extra modeled seeks, with bit-identical results.
  bool index_ok = identical;
  for (const ConfigResult& r : results) {
    index_ok = index_ok && r.hier.idx_bytes < r.flat.idx_bytes &&
               r.hier.modeled_seeks <= r.flat.modeled_seeks &&
               r.hier.aligned_bins > 0;
  }

  const char* json_path = std::getenv("MLOC_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_index.json";
  std::FILE* f = std::fopen(json_path, "w");
  MLOC_CHECK_MSG(f != nullptr, "cannot open BENCH_index.json for writing");
  std::fprintf(f, "{\n  \"bench\": \"index\",\n  \"scale\": %.3f,\n",
               cfg.scale);
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"num_bins\": %d, \"fanout\": %d, "
                 "\"queries\": %d, \"identical\": %s,\n",
                 r.label.c_str(), r.num_bins, r.fanout, r.queries,
                 r.identical ? "true" : "false");
    json_side(f, "hier", r.hier, ",");
    json_side(f, "flat", r.flat, "");
    std::fprintf(f, "    }%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"idx_bytes_flat\": %llu,\n  \"idx_bytes_hier\": %llu,\n"
      "  \"hbx_bytes_hier\": %llu,\n  \"modeled_seeks_flat\": %llu,\n"
      "  \"modeled_seeks_hier\": %llu,\n  \"aligned_bins_hier\": %llu,\n"
      "  \"identical\": %s,\n  \"index_ok\": %s\n}\n",
      static_cast<unsigned long long>(total_flat.idx_bytes),
      static_cast<unsigned long long>(total_hier.idx_bytes),
      static_cast<unsigned long long>(total_hier.hbx_bytes),
      static_cast<unsigned long long>(total_flat.modeled_seeks),
      static_cast<unsigned long long>(total_hier.modeled_seeks),
      static_cast<unsigned long long>(total_hier.aligned_bins),
      identical ? "true" : "false", index_ok ? "true" : "false");
  std::fclose(f);

  std::printf("\ntotals: .idx bytes %llu flat -> %llu hier (+%llu .hbx), "
              "seeks %llu -> %llu\n",
              static_cast<unsigned long long>(total_flat.idx_bytes),
              static_cast<unsigned long long>(total_hier.idx_bytes),
              static_cast<unsigned long long>(total_hier.hbx_bytes),
              static_cast<unsigned long long>(total_flat.modeled_seeks),
              static_cast<unsigned long long>(total_hier.modeled_seeks));
  std::printf("wrote %s (index_ok=%s)\n", json_path,
              index_ok ? "true" : "false");

  if (!index_ok) {
    std::fprintf(stderr,
                 "FAIL: hierarchical path did not strictly reduce .idx"
                 " bytes at equal-or-fewer seeks with identical results\n");
    return 1;
  }
  return 0;
}
