// Serving-layer throughput: client count x fragment-cache budget sweep on
// a repeated-region exploration workload (the access pattern §II calls
// heterogeneous exploration: clients revisit overlapping regions at mixed
// PLoD levels). Reports queries/sec both in wall-clock terms and in the
// repo's modeled time (PFS cost model + measured CPU), plus the cache
// hit ratio and payload bytes never re-read — the counters that prove the
// speedup comes from the cache, not timing noise.
#include <cstdio>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "service/query_service.hpp"
#include "util/timer.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

struct CellResult {
  double wall_qps = 0;
  double modeled_qps = 0;
  double mean_modeled_ms = 0;
  double hit_ratio = 0;
  double mib_saved = 0;
};

/// Run `rounds` passes over the fixed region set from `clients` concurrent
/// sessions; every query goes through the service.
CellResult run_cell(service::QueryService& svc, int clients, int rounds,
                    const std::vector<Region>& regions) {
  std::vector<CacheStats> cache(clients);
  std::vector<double> modeled(clients, 0.0);
  std::vector<std::uint64_t> done(clients, 0);

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto sid = svc.open_session("bench-" + std::to_string(t));
      MLOC_CHECK(sid.is_ok());
      for (int r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < regions.size(); ++i) {
          service::Request req;
          req.var = "v";
          req.query.sc = regions[i];
          req.query.plod_level = (i + static_cast<std::size_t>(r)) % 2 == 0
                                     ? 3
                                     : 7;
          service::Response resp = svc.run(sid.value(), req);
          MLOC_CHECK_MSG(resp.status.is_ok(),
                         resp.status.to_string().c_str());
          cache[t] += resp.stats.cache;
          modeled[t] += resp.stats.modeled_s;
          ++done[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s = wall.seconds();

  CellResult out;
  CacheStats total_cache;
  double total_modeled = 0;
  std::uint64_t n = 0;
  for (int t = 0; t < clients; ++t) {
    total_cache += cache[t];
    total_modeled += modeled[t];
    n += done[t];
  }
  out.wall_qps = static_cast<double>(n) / wall_s;
  // Modeled latencies accrue per client; with `clients` concurrent
  // sessions the modeled steady-state throughput is n / (sum / clients).
  out.modeled_qps = static_cast<double>(n) / (total_modeled / clients);
  out.mean_modeled_ms = total_modeled / static_cast<double>(n) * 1e3;
  const std::uint64_t consults =
      total_cache.hits + total_cache.partial_hits + total_cache.misses;
  out.hit_ratio =
      consults == 0
          ? 0.0
          : static_cast<double>(total_cache.hits + total_cache.partial_hits) /
                static_cast<double>(consults);
  out.mib_saved = static_cast<double>(total_cache.bytes_saved) / (1 << 20);
  return out;
}

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int rounds = std::max(2, cfg.queries_per_cell / 5);
  const Dataset ds = make_gts(false, cfg);
  std::printf("Service throughput — repeated-region workload on %s, %d"
              " rounds over 6 regions per client\n",
              ds.label.c_str(), rounds);

  // Six overlapping exploration windows, ~1.5%% of the domain each.
  std::vector<Region> regions;
  const std::uint32_t e0 = ds.grid.shape().extent(0);
  const std::uint32_t e1 = ds.grid.shape().extent(1);
  const std::uint32_t w0 = e0 / 8, w1 = e1 / 8;
  for (std::uint32_t i = 0; i < 6; ++i) {
    const std::uint32_t lo0 = i * e0 / 12, lo1 = e1 / 4 + i * e1 / 16;
    regions.emplace_back(2, Coord{lo0, lo1}, Coord{lo0 + w0, lo1 + w1});
  }

  const std::vector<std::pair<const char*, std::uint64_t>> budgets = {
      {"cold (no cache)", 0},
      {"8 MiB cache", 8ull << 20},
      {"64 MiB cache", 64ull << 20},
  };
  const std::vector<int> client_counts = {1, 2, 4, 8};

  // cold_qps[clients index] for the speedup summary.
  std::vector<double> cold_modeled_qps(client_counts.size(), 0);
  std::vector<double> warm_modeled_qps(client_counts.size(), 0);
  std::vector<double> cold_wall_qps(client_counts.size(), 0);
  std::vector<double> warm_wall_qps(client_counts.size(), 0);
  std::vector<double> warm_hit(client_counts.size(), 0);

  for (std::size_t b = 0; b < budgets.size(); ++b) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "svc", ds, kMlocCol);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());

    service::ServiceConfig svc_cfg;
    svc_cfg.num_workers = 8;
    svc_cfg.cache.budget_bytes = budgets[b].second;
    svc_cfg.cache.shards = 8;
    service::QueryService svc(std::move(store).value(), svc_cfg);

    TablePrinter table(std::string("Service throughput — ") + budgets[b].first,
                       {"q/s (wall)", "q/s (modeled)", "modeled ms/q",
                        "hit %", "MiB saved"});
    for (std::size_t c = 0; c < client_counts.size(); ++c) {
      const CellResult cell =
          run_cell(svc, client_counts[c], rounds, regions);
      table.add_row(std::to_string(client_counts[c]) + " clients",
                    {cell.wall_qps, cell.modeled_qps, cell.mean_modeled_ms,
                     cell.hit_ratio * 100.0, cell.mib_saved});
      if (budgets[b].second == 0) {
        cold_modeled_qps[c] = cell.modeled_qps;
        cold_wall_qps[c] = cell.wall_qps;
      } else if (b + 1 == budgets.size()) {
        warm_modeled_qps[c] = cell.modeled_qps;
        warm_wall_qps[c] = cell.wall_qps;
        warm_hit[c] = cell.hit_ratio;
      }
    }
    table.print();
  }

  std::printf("\nwarm (64 MiB) vs cold speedup, by client count:\n");
  for (std::size_t c = 0; c < client_counts.size(); ++c) {
    std::printf(
        "  %d clients: %5.1fx modeled, %5.2fx wall (warm hit ratio"
        " %.0f%%)\n",
        client_counts[c], warm_modeled_qps[c] / cold_modeled_qps[c],
        warm_wall_qps[c] / cold_wall_qps[c], warm_hit[c] * 100.0);
  }
  std::printf(
      "\nThe hit/miss counters above attribute the gap: warm runs serve"
      " fragments\nfrom the cache (payload reads avoided), cold runs pay"
      " the full PFS + decode\npath on every query.\n");
  return 0;
}
