// Serving-layer throughput: client count x fragment-cache budget sweep on
// a repeated-region exploration workload (the access pattern §II calls
// heterogeneous exploration: clients revisit overlapping regions at mixed
// PLoD levels). Reports queries/sec both in wall-clock terms and in the
// repo's modeled time (PFS cost model + measured CPU), plus p50/p95
// per-query latency, the cache hit ratio and payload bytes never re-read.
//
// A second section exercises the staged execution engine directly:
// the same query mix runs cold vs warm (shared FragmentCache) and
// coalesced vs naive (ExecOptions::naive_io), and the extent/seek
// counters land in a machine-readable BENCH_engine.json so the perf
// trajectory is tracked across PRs. Exits non-zero if coalescing fails
// to reduce extents — CI runs this as a smoke test of the engine's
// core claim.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "service/query_service.hpp"
#include "util/timer.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

/// Nearest-rank percentile over an unsorted sample (sorted in place).
double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct CellResult {
  double wall_qps = 0;
  double modeled_qps = 0;
  double p50_modeled_ms = 0;
  double p95_modeled_ms = 0;
  double p50_wall_ms = 0;
  double p95_wall_ms = 0;
  double hit_ratio = 0;
  double mib_saved = 0;
};

/// Run `rounds` passes over the fixed region set from `clients` concurrent
/// sessions; every query goes through the service.
CellResult run_cell(service::QueryService& svc, int clients, int rounds,
                    const std::vector<Region>& regions) {
  std::vector<CacheStats> cache(clients);
  std::vector<double> modeled(clients, 0.0);
  std::vector<std::uint64_t> done(clients, 0);
  std::mutex lat_mutex;
  std::vector<double> modeled_lat;  // seconds, one entry per query
  std::vector<double> wall_lat;     // queue wait + store wall, per query

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto sid = svc.open_session("bench-" + std::to_string(t));
      MLOC_CHECK(sid.is_ok());
      std::vector<double> my_modeled, my_wall;
      for (int r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < regions.size(); ++i) {
          service::Request req;
          req.var = "v";
          req.query.sc = regions[i];
          req.query.plod_level = (i + static_cast<std::size_t>(r)) % 2 == 0
                                     ? 3
                                     : 7;
          service::Response resp = svc.run(sid.value(), req);
          MLOC_CHECK_MSG(resp.status.is_ok(),
                         resp.status.to_string().c_str());
          cache[t] += resp.stats.cache;
          modeled[t] += resp.stats.modeled_s;
          my_modeled.push_back(resp.stats.modeled_s);
          my_wall.push_back(resp.stats.queue_wait_s + resp.stats.exec_wall_s);
          ++done[t];
        }
      }
      std::lock_guard lock(lat_mutex);
      modeled_lat.insert(modeled_lat.end(), my_modeled.begin(),
                         my_modeled.end());
      wall_lat.insert(wall_lat.end(), my_wall.begin(), my_wall.end());
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s = wall.seconds();

  CellResult out;
  CacheStats total_cache;
  double total_modeled = 0;
  std::uint64_t n = 0;
  for (int t = 0; t < clients; ++t) {
    total_cache += cache[t];
    total_modeled += modeled[t];
    n += done[t];
  }
  out.wall_qps = static_cast<double>(n) / wall_s;
  // Modeled latencies accrue per client; with `clients` concurrent
  // sessions the modeled steady-state throughput is n / (sum / clients).
  out.modeled_qps = static_cast<double>(n) / (total_modeled / clients);
  out.p50_modeled_ms = percentile(modeled_lat, 0.50) * 1e3;
  out.p95_modeled_ms = percentile(modeled_lat, 0.95) * 1e3;
  out.p50_wall_ms = percentile(wall_lat, 0.50) * 1e3;
  out.p95_wall_ms = percentile(wall_lat, 0.95) * 1e3;
  const std::uint64_t consults =
      total_cache.hits + total_cache.partial_hits + total_cache.misses;
  out.hit_ratio =
      consults == 0
          ? 0.0
          : static_cast<double>(total_cache.hits + total_cache.partial_hits) /
                static_cast<double>(consults);
  out.mib_saved = static_cast<double>(total_cache.bytes_saved) / (1 << 20);
  return out;
}

/// Engine counters for one pass of the query mix through a store.
struct EnginePass {
  ExecStats exec;
  double modeled_io_s = 0;
};

EnginePass run_mix(MlocStore& store, const std::vector<Query>& mix,
                   const exec::ExecOptions& opts) {
  EnginePass out;
  for (const Query& q : mix) {
    auto r = store.execute("v", q, 2, opts);
    MLOC_CHECK_MSG(r.is_ok(), r.status().to_string().c_str());
    out.exec += r.value().exec;
    out.modeled_io_s += r.value().times.io;
  }
  return out;
}

void json_exec(std::FILE* f, const char* key, const EnginePass& p,
               const char* tail) {
  std::fprintf(
      f,
      "    \"%s\": {\"bytes_planned\": %llu, \"bytes_read\": %llu, "
      "\"bytes_from_cache\": %llu, \"bytes_bridged\": %llu, "
      "\"extents_naive\": %llu, "
      "\"extents_coalesced\": %llu, \"modeled_seeks\": %llu, "
      "\"modeled_io_s\": %.9f}%s\n",
      key, static_cast<unsigned long long>(p.exec.bytes_planned),
      static_cast<unsigned long long>(p.exec.bytes_read),
      static_cast<unsigned long long>(p.exec.bytes_from_cache),
      static_cast<unsigned long long>(p.exec.bytes_bridged),
      static_cast<unsigned long long>(p.exec.extents_naive),
      static_cast<unsigned long long>(p.exec.extents_coalesced),
      static_cast<unsigned long long>(p.exec.modeled_seeks), p.modeled_io_s,
      tail);
}

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int rounds = std::max(2, cfg.queries_per_cell / 5);
  const Dataset ds = make_gts(false, cfg);
  std::printf("Service throughput — repeated-region workload on %s, %d"
              " rounds over 6 regions per client\n",
              ds.label.c_str(), rounds);

  // Six overlapping exploration windows, ~1.5%% of the domain each.
  std::vector<Region> regions;
  const std::uint32_t e0 = ds.grid.shape().extent(0);
  const std::uint32_t e1 = ds.grid.shape().extent(1);
  const std::uint32_t w0 = e0 / 8, w1 = e1 / 8;
  for (std::uint32_t i = 0; i < 6; ++i) {
    const std::uint32_t lo0 = i * e0 / 12, lo1 = e1 / 4 + i * e1 / 16;
    regions.emplace_back(2, Coord{lo0, lo1}, Coord{lo0 + w0, lo1 + w1});
  }

  const std::vector<std::pair<const char*, std::uint64_t>> budgets = {
      {"cold (no cache)", 0},
      {"8 MiB cache", 8ull << 20},
      {"64 MiB cache", 64ull << 20},
  };
  const std::vector<int> client_counts = {1, 2, 4, 8};

  // cold_qps[clients index] for the speedup summary; warm cells also feed
  // the JSON trajectory file.
  std::vector<double> cold_modeled_qps(client_counts.size(), 0);
  std::vector<double> warm_modeled_qps(client_counts.size(), 0);
  std::vector<double> cold_wall_qps(client_counts.size(), 0);
  std::vector<double> warm_wall_qps(client_counts.size(), 0);
  std::vector<double> warm_hit(client_counts.size(), 0);
  std::vector<CellResult> cold_cells(client_counts.size());
  std::vector<CellResult> warm_cells(client_counts.size());

  for (std::size_t b = 0; b < budgets.size(); ++b) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "svc", ds, kMlocCol);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());

    service::ServiceConfig svc_cfg;
    svc_cfg.num_workers = 8;
    svc_cfg.cache.budget_bytes = budgets[b].second;
    svc_cfg.cache.shards = 8;
    service::QueryService svc(std::move(store).value(), svc_cfg);

    TablePrinter table(std::string("Service throughput — ") + budgets[b].first,
                       {"q/s (wall)", "q/s (modeled)", "p50 ms", "p95 ms",
                        "hit %", "MiB saved"});
    for (std::size_t c = 0; c < client_counts.size(); ++c) {
      const CellResult cell =
          run_cell(svc, client_counts[c], rounds, regions);
      table.add_row(std::to_string(client_counts[c]) + " clients",
                    {cell.wall_qps, cell.modeled_qps, cell.p50_modeled_ms,
                     cell.p95_modeled_ms, cell.hit_ratio * 100.0,
                     cell.mib_saved});
      if (budgets[b].second == 0) {
        cold_modeled_qps[c] = cell.modeled_qps;
        cold_wall_qps[c] = cell.wall_qps;
        cold_cells[c] = cell;
      } else if (b + 1 == budgets.size()) {
        warm_modeled_qps[c] = cell.modeled_qps;
        warm_wall_qps[c] = cell.wall_qps;
        warm_hit[c] = cell.hit_ratio;
        warm_cells[c] = cell;
      }
    }
    table.print();
  }

  std::printf("\nwarm (64 MiB) vs cold speedup, by client count:\n");
  for (std::size_t c = 0; c < client_counts.size(); ++c) {
    std::printf(
        "  %d clients: %5.1fx modeled, %5.2fx wall (warm hit ratio"
        " %.0f%%)\n",
        client_counts[c], warm_modeled_qps[c] / cold_modeled_qps[c],
        warm_wall_qps[c] / cold_wall_qps[c], warm_hit[c] * 100.0);
  }

  // ------------------------------------------------------ engine section
  // Same mix, driven through MlocStore::execute so ExecOptions is under
  // our control: coalesced vs naive scheduling on a cold store, then a
  // cold -> warm pass against a shared FragmentCache.
  std::vector<Query> mix;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    Query q;
    q.sc = regions[i];
    q.plod_level = i % 2 == 0 ? 3 : 7;
    mix.push_back(q);
  }

  pfs::PfsStorage engine_fs(default_pfs());
  auto engine_store = build_mloc(&engine_fs, "engine", ds, kMlocCol,
                                 LevelOrder::kVMS, sfc::CurveKind::kHilbert,
                                 /*num_bins=*/16);
  MLOC_CHECK_MSG(engine_store.is_ok(),
                 engine_store.status().to_string().c_str());
  MlocStore& es = engine_store.value();

  exec::ExecOptions coalesced_opts;
  exec::ExecOptions naive_opts;
  naive_opts.naive_io = true;
  // No fragment provider attached: both passes pay full payload I/O, so
  // the only difference is the schedule.
  const EnginePass naive = run_mix(es, mix, naive_opts);
  const EnginePass coalesced = run_mix(es, mix, coalesced_opts);

  service::FragmentCache engine_cache;
  es.set_fragment_provider(&engine_cache);
  const EnginePass cold = run_mix(es, mix, coalesced_opts);
  const EnginePass warm = run_mix(es, mix, coalesced_opts);
  es.set_fragment_provider(nullptr);

  const bool coalescing_ok =
      coalesced.exec.extents_coalesced < coalesced.exec.extents_naive &&
      coalesced.exec.modeled_seeks < naive.exec.modeled_seeks &&
      coalesced.modeled_io_s <= naive.modeled_io_s;
  // Gap bridging trades bytes for seeks; if the welded gap bytes ever
  // exceed twice the bytes the plan actually needed, the scheduler is
  // reading the store to save seeks — a regression worth failing on.
  const bool bridging_ok =
      coalesced.exec.bytes_bridged <= 2 * coalesced.exec.bytes_planned;

  std::printf("\nEngine (16-bin V-M-S store, %zu-query mix, 2 ranks):\n",
              mix.size());
  std::printf("  extents: %llu naive -> %llu coalesced\n",
              static_cast<unsigned long long>(coalesced.exec.extents_naive),
              static_cast<unsigned long long>(
                  coalesced.exec.extents_coalesced));
  std::printf("  modeled seeks: %llu naive -> %llu coalesced\n",
              static_cast<unsigned long long>(naive.exec.modeled_seeks),
              static_cast<unsigned long long>(coalesced.exec.modeled_seeks));
  std::printf("  warm cache: %.1f MiB served from cache (%.1f MiB read"
              " cold)\n",
              static_cast<double>(warm.exec.bytes_from_cache) / (1 << 20),
              static_cast<double>(cold.exec.bytes_read) / (1 << 20));
  std::printf("  gap bridging: %.2f MiB welded into %.2f MiB planned\n",
              static_cast<double>(coalesced.exec.bytes_bridged) / (1 << 20),
              static_cast<double>(coalesced.exec.bytes_planned) / (1 << 20));

  const char* json_path = std::getenv("MLOC_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_engine.json";
  std::FILE* f = std::fopen(json_path, "w");
  MLOC_CHECK_MSG(f != nullptr, "cannot open BENCH_engine.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"service_throughput\",\n");
  std::fprintf(f, "  \"scale\": %.3f,\n", cfg.scale);
  std::fprintf(f, "  \"rounds\": %d,\n", rounds);
  std::fprintf(f, "  \"throughput\": [\n");
  for (std::size_t c = 0; c < client_counts.size(); ++c) {
    for (int warm_row = 0; warm_row < 2; ++warm_row) {
      const CellResult& cell = warm_row ? warm_cells[c] : cold_cells[c];
      std::fprintf(
          f,
          "    {\"clients\": %d, \"cache\": \"%s\", \"wall_qps\": %.3f, "
          "\"modeled_qps\": %.3f, \"p50_modeled_ms\": %.4f, "
          "\"p95_modeled_ms\": %.4f, \"p50_wall_ms\": %.4f, "
          "\"p95_wall_ms\": %.4f, \"hit_ratio\": %.4f}%s\n",
          client_counts[c], warm_row ? "warm64MiB" : "cold", cell.wall_qps,
          cell.modeled_qps, cell.p50_modeled_ms, cell.p95_modeled_ms,
          cell.p50_wall_ms, cell.p95_wall_ms, cell.hit_ratio,
          c + 1 == client_counts.size() && warm_row == 1 ? "" : ",");
    }
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"engine\": {\n");
  json_exec(f, "naive", naive, ",");
  json_exec(f, "coalesced", coalesced, ",");
  json_exec(f, "cold", cold, ",");
  json_exec(f, "warm", warm, ",");
  std::fprintf(f, "    \"coalescing_ok\": %s,\n",
               coalescing_ok ? "true" : "false");
  std::fprintf(f, "    \"bridging_ok\": %s\n", bridging_ok ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (coalescing_ok=%s, bridging_ok=%s)\n", json_path,
              coalescing_ok ? "true" : "false", bridging_ok ? "true" : "false");

  if (!coalescing_ok) {
    std::fprintf(stderr,
                 "FAIL: coalescing did not reduce extents/seeks vs the"
                 " naive schedule\n");
    return 1;
  }
  if (!bridging_ok) {
    std::fprintf(stderr,
                 "FAIL: gap bridging read more than 2x the planned bytes\n");
    return 1;
  }
  return 0;
}
