// Reproduces paper Fig. 6: execution-time breakdown (I/O, decompression,
// reconstruction) for value-retrieval access at 0.1% region selectivity on
// the large S3D dataset. Expected shape: SeqScan is all I/O; MLOC-ISA has
// the least I/O but the most decompression (B-spline reconstruction);
// MLOC-COL/ISO sit between.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(3, cfg.queries_per_cell / 4);
  std::printf("Fig. 6 reproduction — component breakdown, value queries"
              " (0.1%%) on large S3D, %d queries\n", queries);

  const Dataset s3d = make_s3d(true, cfg);
  constexpr int kRanks = 8;

  TablePrinter table(
      "Fig 6: per-component time (s) for 0.1% value retrieval on S3D-large",
      {"I/O", "Decompress", "Reconstruct", "Total"});

  for (const auto& [label, codec] :
       std::vector<std::pair<std::string, std::string>>{
           {"MLOC-COL", kMlocCol},
           {"MLOC-ISO", kMlocIso},
           {"MLOC-ISA", kMlocIsa}}) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "f6", s3d, codec);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
    Rng rng(cfg.seed + 61);
    ComponentTimes sum;
    for (int i = 0; i < queries; ++i) {
      Query q;
      q.sc = datagen::random_sc(s3d.grid.shape(), 0.001, rng);
      auto res = store.value().execute("v", q, kRanks);
      MLOC_CHECK(res.is_ok());
      sum += res.value().times;
    }
    sum /= queries;
    table.add_row(label, {sum.io, sum.decompress, sum.reconstruct,
                          sum.total()}, "%.4f");
  }

  {
    pfs::PfsStorage fs(default_pfs());
    auto store = baselines::SeqScanStore::create(&fs, "f6", s3d.grid);
    MLOC_CHECK(store.is_ok());
    Rng rng(cfg.seed + 62);
    ComponentTimes sum;
    for (int i = 0; i < queries; ++i) {
      auto sc = datagen::random_sc(s3d.grid.shape(), 0.001, rng);
      auto res = store.value().value_query(sc, kRanks);
      MLOC_CHECK(res.is_ok());
      sum += res.value().times;
    }
    sum /= queries;
    table.add_row("Seq. Scan", {sum.io, sum.decompress, sum.reconstruct,
                                sum.total()}, "%.4f");
  }

  table.print();
  std::printf(
      "\nPaper Fig. 6 shape: SeqScan I/O-dominated with zero decompression;"
      "\nMLOC-ISA least I/O, most decompression; COL/ISO in between.\n");
  return 0;
}
