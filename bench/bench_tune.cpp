// Autotuner end-to-end check: the layout mloc_tune recommends must be
// real, not just cheaper on paper. Builds a GTS-like store under a
// deliberately mismatched default layout, tunes it against a recorded
// workload, re-ingests the variable under the recommendation, and then
// replays the trace on both stores, asserting
//   (a) the planner oracle is exact: for every query, measured PFS bytes
//       and modeled seeks equal the estimate used during tuning, and
//   (b) the recommendation wins where it counts: measured modeled I/O
//       under the tuned layout beats the default layout.
// Emits a one-object JSON summary on stdout for CI (`jq` asserts the
// predicted costs ordered the same way the measurements did).
#include <cstdio>
#include <string>

#include "common/bench_common.hpp"
#include "planner/planner.hpp"
#include "tune/tuner.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

/// The recorded workload: mostly selective reduced-precision value
/// retrieval with a few full-precision region scans mixed in.
tune::QueryTrace make_trace(const Dataset& ds, std::uint64_t seed) {
  tune::QueryTrace t;
  Rng rng(seed);
  for (int i = 0; i < 6; ++i) {
    tune::TracedQuery tq;
    tq.var = "v";
    tq.num_ranks = 4;
    tq.query.plod_level = 2;
    tq.query.vc = datagen::random_vc(ds.grid, 0.10, rng);
    t.queries.push_back(tq);
  }
  for (int i = 0; i < 2; ++i) {
    tune::TracedQuery tq;
    tq.var = "v";
    tq.num_ranks = 4;
    tq.query.sc = datagen::random_sc(ds.grid.shape(), 0.05, rng);
    t.queries.push_back(tq);
  }
  return t;
}

/// Replay the trace: estimate-then-execute each query, asserting the
/// oracle's bytes/seeks match execution exactly (the estimate is taken
/// immediately before each execute, so both see the same cache state).
/// Returns total measured modeled I/O seconds.
double replay_and_check(MlocStore& store, const tune::QueryTrace& trace,
                        const char* label) {
  planner::QueryPlanner planner(&store);
  double measured_io = 0.0;
  for (const tune::TracedQuery& tq : trace.queries) {
    auto est = planner.estimate("v", tq.query, tq.num_ranks);
    MLOC_CHECK_MSG(est.is_ok(), est.status().to_string().c_str());
    auto res = store.execute("v", tq.query, tq.num_ranks);
    MLOC_CHECK_MSG(res.is_ok(), res.status().to_string().c_str());
    if (est.value().est_bytes != res.value().exec.bytes_read ||
        est.value().est_seeks != res.value().exec.modeled_seeks) {
      std::fprintf(stderr,
                   "%s: oracle mismatch: predicted %llu B / %llu seeks, "
                   "measured %llu B / %llu seeks\n",
                   label,
                   (unsigned long long)est.value().est_bytes,
                   (unsigned long long)est.value().est_seeks,
                   (unsigned long long)res.value().exec.bytes_read,
                   (unsigned long long)res.value().exec.modeled_seeks);
      MLOC_CHECK(false);
    }
    measured_io += res.value().times.io;
  }
  return measured_io;
}

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  // Every evaluated layout re-ingests the variable, so the dataset is a
  // scaled-down GTS slice (512^2) rather than the table benchmarks' full
  // grids — large enough that bytes and seeks differentiate layouts,
  // small enough that the ~20-evaluation search runs in seconds.
  const Dataset ds{Grid(datagen::gts_like(512, cfg.seed + 5)),
                   NDShape{64, 64}, "GTS 512^2"};

  // Mismatched default: coarse bins and fine chunks for a workload that
  // is mostly selective low-PLoD value retrieval.
  VariableLayout bad;
  bad.chunk_shape = NDShape{32, 32};
  bad.num_bins = 4;
  bad.order = LevelOrder::kVMS;

  pfs::PfsStorage fs(default_pfs());
  MlocConfig store_cfg;
  store_cfg.shape = ds.grid.shape();
  store_cfg.layout = bad;
  auto store = MlocStore::create(&fs, "tune", store_cfg);
  MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
  MLOC_CHECK(store.value().write_variable("v", ds.grid).is_ok());

  const tune::QueryTrace trace = make_trace(ds, cfg.seed + 17);

  tune::SearchSpace space;
  space.seed = cfg.seed;
  space.random_restarts = 1;
  space.interleave_samples = 2;
  space.max_rounds = 4;
  auto tuned = tune::tune_variable(store.value(), "v", trace, space);
  MLOC_CHECK_MSG(tuned.is_ok(), tuned.status().to_string().c_str());
  const tune::TuneResult& r = tuned.value();

  // Re-ingest under the recommendation on identical PFS hardware.
  pfs::PfsStorage tuned_fs(default_pfs());
  MlocConfig tuned_cfg;
  tuned_cfg.shape = ds.grid.shape();
  tuned_cfg.layout = r.recommended;
  auto tuned_store = MlocStore::create(&tuned_fs, "tune", tuned_cfg);
  MLOC_CHECK(tuned_store.is_ok());
  MLOC_CHECK(tuned_store.value().write_variable("v", ds.grid).is_ok());

  const double measured_default =
      replay_and_check(store.value(), trace, "default");
  const double measured_tuned =
      replay_and_check(tuned_store.value(), trace, "tuned");

  std::printf(
      "Layout autotuning on %s — %d traced queries, %d layouts evaluated\n"
      "  default:     %s\n               predicted %.4f s, measured %.4f s\n"
      "  recommended: %s\n               predicted %.4f s, measured %.4f s\n",
      ds.label.c_str(), r.trace_queries, r.evaluations,
      r.baseline.describe().c_str(), r.predicted_cost_default,
      measured_default, r.recommended.describe().c_str(),
      r.predicted_cost_tuned, measured_tuned);

  MLOC_CHECK_MSG(r.predicted_cost_tuned < r.predicted_cost_default,
                 "tuner failed to beat the mismatched default");
  MLOC_CHECK_MSG(measured_tuned < measured_default,
                 "recommendation did not win on measured modeled I/O");

  std::printf(
      "{\"predicted_cost_default\":%.9g,\"predicted_cost_tuned\":%.9g,"
      "\"measured_io_default\":%.9g,\"measured_io_tuned\":%.9g,"
      "\"oracle_exact\":true}\n",
      r.predicted_cost_default, r.predicted_cost_tuned, measured_default,
      measured_tuned);
  return 0;
}
