#include "common/bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mloc::bench {

ScaleConfig scale_from_env() {
  ScaleConfig cfg;
  if (const char* s = std::getenv("MLOC_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) cfg.scale = v;
  }
  if (const char* q = std::getenv("MLOC_QUERIES")) {
    const int v = std::atoi(q);
    if (v > 0) cfg.queries_per_cell = v;
  }
  if (const char* seed = std::getenv("MLOC_SEED")) {
    cfg.seed = std::strtoull(seed, nullptr, 10);
  }
  return cfg;
}

namespace {

/// Round `edge * scale^(1/ndims)` down to a positive multiple of `chunk`.
std::uint32_t scaled_edge(std::uint32_t edge, std::uint32_t chunk, double scale,
                          int ndims) {
  const double factor = std::pow(scale, 1.0 / ndims);
  auto scaled = static_cast<std::uint32_t>(edge * factor);
  scaled = (scaled / chunk) * chunk;
  return scaled < chunk ? chunk : scaled;
}

}  // namespace

Dataset make_gts(bool large, const ScaleConfig& cfg) {
  const std::uint32_t chunk = large ? 512 : 256;
  const std::uint32_t base_edge = large ? 4096 : 2048;
  const std::uint32_t edge = scaled_edge(base_edge, chunk, cfg.scale, 2);
  Dataset ds{datagen::gts_like(edge, cfg.seed + (large ? 1 : 0)),
             NDShape{chunk, chunk},
             std::string("GTS") + (large ? "-large" : "")};
  return ds;
}

Dataset make_s3d(bool large, const ScaleConfig& cfg) {
  const std::uint32_t chunk = large ? 64 : 32;
  const std::uint32_t base_edge = large ? 256 : 128;
  const std::uint32_t edge = scaled_edge(base_edge, chunk, cfg.scale, 3);
  Dataset ds{datagen::s3d_like(edge, cfg.seed + (large ? 3 : 2)),
             NDShape{chunk, chunk, chunk},
             std::string("S3D") + (large ? "-large" : "")};
  return ds;
}

Result<MlocStore> build_mloc(pfs::PfsStorage* fs, const std::string& name,
                             const Dataset& ds, const std::string& codec,
                             LevelOrder order, sfc::CurveKind curve,
                             int num_bins) {
  MlocConfig cfg;
  cfg.shape = ds.grid.shape();
  cfg.layout.chunk_shape = ds.chunk;
  cfg.layout.num_bins = num_bins;
  cfg.layout.codec = codec;
  cfg.layout.order = order;
  cfg.layout.curve = curve;
  auto store = MlocStore::create(fs, name, cfg);
  if (!store.is_ok()) return store.status();
  MLOC_RETURN_IF_ERROR(store.value().write_variable("v", ds.grid));
  return store;
}

pfs::PfsConfig default_pfs() {
  // Emulated Lens-era Lustre, rebalanced for the reduced dataset scale:
  // datasets are ~1/256 of the paper's, but seek counts shrink only ~4x
  // (chunk/bin counts stay comparable). Latency terms are therefore scaled
  // ~1/10 so the latency:transfer balance of the original testbed is
  // preserved; aggregate bandwidth (8 x 50 MB/s = 400 MB/s) matches the
  // paper's implied 8-process scan rate (512 GB / ~2200 s, Table IV).
  pfs::PfsConfig cfg;
  cfg.num_osts = 8;
  cfg.stripe_size = 1 << 20;
  cfg.seek_latency_s = 0.5e-3;
  cfg.ost_bandwidth_bps = 50e6;
  cfg.open_latency_s = 0.1e-3;
  return cfg;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof buf, "%.2f GB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.2f MB", b / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f KB", b / 1024.0);
  }
  return buf;
}

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& cells, const char* fmt) {
  std::vector<std::string> row;
  row.push_back(label);
  for (double c : cells) {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, c);
    row.emplace_back(buf);
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::add_text_row(const std::string& label,
                                const std::vector<std::string>& cells) {
  std::vector<std::string> row;
  row.push_back(label);
  row.insert(row.end(), cells.begin(), cells.end());
  rows_.push_back(std::move(row));
}

void TablePrinter::print() const {
  std::vector<std::size_t> width(columns_.size() + 1, 0);
  width[0] = 10;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    width[i + 1] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      if (row[i].size() > width[i]) width[i] = row[i].size();
    }
  }

  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%-*s", static_cast<int>(width[0] + 2), "");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%*s", static_cast<int>(width[i + 1] + 2), columns_[i].c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    std::printf("%-*s", static_cast<int>(width[0] + 2), row[0].c_str());
    for (std::size_t i = 1; i < row.size(); ++i) {
      std::printf("%*s", static_cast<int>(width[i] + 2), row[i].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace mloc::bench
