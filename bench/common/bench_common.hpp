// Shared benchmark harness: dataset-scale configuration, paper-style table
// printing, dataset and store builders used by every bench_table*/bench_fig*
// binary.
//
// Scale note (DESIGN.md §4): the paper's "8 GB" datasets map to a 32 MB
// class and "512 GB" to a 128 MB class by default; MLOC_SCALE multiplies
// the element count. Absolute times come from the PFS cost model plus
// measured CPU — compare shapes/ratios with the paper, not seconds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/grid.hpp"
#include "baselines/fastbit_like.hpp"
#include "baselines/scidb_like.hpp"
#include "baselines/seqscan.hpp"
#include "core/store.hpp"
#include "datagen/datagen.hpp"
#include "pfs/pfs.hpp"

namespace mloc::bench {

/// Experiment scale knobs, read from the environment.
struct ScaleConfig {
  double scale = 1.0;        ///< MLOC_SCALE: dataset volume multiplier
  int queries_per_cell = 20; ///< MLOC_QUERIES: queries averaged per cell
  std::uint64_t seed = 20120910;  ///< MLOC_SEED
};

ScaleConfig scale_from_env();

/// One benchmark dataset: the grid, its chunking, and a display label.
struct Dataset {
  Grid grid;
  NDShape chunk;
  std::string label;
};

/// GTS-like 2-D dataset. Paper: 8 GB = 32768^2 chunked 2048^2 (and 512 GB
/// replication). Here: small = 2048^2 (32 MB) chunk 256^2; large = 4096^2
/// (128 MB) chunk 512^2; MLOC_SCALE multiplies the element count.
Dataset make_gts(bool large, const ScaleConfig& cfg);

/// S3D-like 3-D dataset. Paper: 8 GB = 1024^3 chunked 128^3. Here:
/// small = 128^3 (16 MB) chunk 32^3; large = 256^3 (128 MB) chunk 64^3.
Dataset make_s3d(bool large, const ScaleConfig& cfg);

/// The three MLOC configurations of §IV-A-2.
inline const char* kMlocCol = "mzip";           // MLOC-COL: byte columns
inline const char* kMlocIso = "isobar";         // MLOC-ISO: lossless FP
inline const char* kMlocIsa = "isabela:0.01";   // MLOC-ISA: lossy

/// Build an MLOC store over `ds` with 100 equal-frequency bins.
Result<MlocStore> build_mloc(pfs::PfsStorage* fs, const std::string& name,
                             const Dataset& ds, const std::string& codec,
                             LevelOrder order = LevelOrder::kVMS,
                             sfc::CurveKind curve = sfc::CurveKind::kHilbert,
                             int num_bins = 100);

/// Default PFS the experiments run on (8 OSTs, 1 MiB stripes).
pfs::PfsConfig default_pfs();

/// Fixed-width table printer matching the paper's row/column layout.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns);

  void add_row(const std::string& label, const std::vector<double>& cells,
               const char* fmt = "%.2f");
  void add_text_row(const std::string& label,
                    const std::vector<std::string>& cells);

  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Bytes -> "X.XX GB/MB/KB" for storage tables.
std::string format_bytes(std::uint64_t bytes);

}  // namespace mloc::bench
