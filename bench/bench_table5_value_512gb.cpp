// Reproduces paper Table V: value-query response time on the
// "512 GB"-class datasets, region selectivity 0.1% and 1%, no VC — MLOC
// variants vs sequential scan. Expected shape: MLOC-ISA best at small
// selectivity (least bytes) but overtaken at 1% by the B-spline
// reconstruction cost; all MLOC variants beat SeqScan.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(3, cfg.queries_per_cell / 4);
  std::printf("Table V reproduction — value queries on large datasets,"
              " %d per cell\n", queries);

  const Dataset gts = make_gts(true, cfg);
  const Dataset s3d = make_s3d(true, cfg);
  const double sels[2] = {0.001, 0.01};
  constexpr int kRanks = 8;

  TablePrinter table(
      "Table V: value query response time (s), large datasets, no VC",
      {"0.1% GTS", "1% GTS", "0.1% S3D", "1% S3D"});

  for (const auto& [label, codec] :
       std::vector<std::pair<std::string, std::string>>{
           {"MLOC-COL", kMlocCol},
           {"MLOC-ISO", kMlocIso},
           {"MLOC-ISA", kMlocIsa}}) {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = build_mloc(&fs, "t5", *ds, codec);
      MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
      Rng rng(cfg.seed + 51);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          Query q;
          q.sc = datagen::random_sc(ds->grid.shape(), sel, rng);
          auto res = store.value().execute("v", q, kRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row(label, cells);
  }

  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = baselines::SeqScanStore::create(&fs, "t5", ds->grid);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 52);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto sc = datagen::random_sc(ds->grid.shape(), sel, rng);
          auto res = store.value().value_query(sc, kRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("Seq. Scan", cells);
  }

  table.print();
  std::printf(
      "\nPaper Table V (s): MLOC-ISA 7.8-44, MLOC-ISO 8.8-38, MLOC-COL"
      " 13-39,\nSeqScan 37-249; ISA best at 0.1%%, ISO best at 1%%.\n");
  return 0;
}
