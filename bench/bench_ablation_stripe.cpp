// Ablation: PFS stripe size (paper §III-C: "MLOC adjusts the chunk size
// ... to ensure that the size of the smallest unit accessed is within one
// stripe (e.g., 1MB)"). Sweeps the emulated Lustre stripe size for a fixed
// store and reports modeled I/O of value queries.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(5, cfg.queries_per_cell / 2);
  std::printf("Ablation — stripe size sweep, %d queries per cell\n", queries);

  const Dataset gts = make_gts(true, cfg);
  constexpr int kRanks = 8;

  TablePrinter table("Stripe-size ablation: 1% value queries on GTS-large",
                     {"I/O (s)", "Total (s)"});
  for (std::uint64_t stripe_kb : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    pfs::PfsConfig pfs_cfg = default_pfs();
    pfs_cfg.stripe_size = stripe_kb << 10;
    pfs::PfsStorage fs(pfs_cfg);
    auto store = build_mloc(&fs, "stripe", gts, kMlocCol);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
    Rng rng(cfg.seed + 103);
    double io = 0, total = 0;
    for (int i = 0; i < queries; ++i) {
      Query q;
      q.sc = datagen::random_sc(gts.grid.shape(), 0.01, rng);
      auto res = store.value().execute("v", q, kRanks);
      MLOC_CHECK(res.is_ok());
      io += res.value().times.io;
      total += res.value().times.total();
    }
    table.add_row(std::to_string(stripe_kb) + " KiB",
                  {io / queries, total / queries}, "%.4f");
  }
  table.print();
  std::printf(
      "\nExpected: very small stripes limit per-extent parallel width; very"
      "\nlarge stripes serialize each extent onto one OST. The balance sits"
      "\nnear the access-unit size (paper recommends ~1 MiB).\n");
  return 0;
}
