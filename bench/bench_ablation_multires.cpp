// Ablation: subset-based vs precision-based (PLoD) multiresolution —
// the design argument of paper §III-B-3. At matched I/O budgets the
// subset-based approach misses entire points (fine for visualization),
// while PLoD returns every point at bounded precision (fine for
// analytics). Reported: bytes read, point coverage, and mean-statistic
// error for each resolution setting.
#include <cmath>
#include <cstdio>

#include "analytics/analytics.hpp"
#include "common/bench_common.hpp"
#include "multires/subset.hpp"
#include "plod/plod.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  std::printf("Ablation — subset-based vs precision-based multiresolution\n");

  const Dataset s3d = make_s3d(false, cfg);
  const auto truth = analytics::compute_stats(std::vector<double>(
      s3d.grid.values().begin(), s3d.grid.values().end()));

  // Precision-based store (MLOC-COL, PLoD byte columns).
  pfs::PfsStorage fs1(default_pfs());
  auto plod_store = build_mloc(&fs1, "p", s3d, kMlocCol);
  MLOC_CHECK_MSG(plod_store.is_ok(), plod_store.status().to_string().c_str());

  // Subset-based store (hierarchical Hilbert levels).
  pfs::PfsStorage fs2(default_pfs());
  multires::SubsetStore::Config scfg;
  scfg.shape = s3d.grid.shape();
  scfg.num_levels = 4;
  scfg.codec = "mzip";
  auto subset_store = multires::SubsetStore::create(&fs2, "s", scfg);
  MLOC_CHECK(subset_store.is_ok());
  MLOC_CHECK(subset_store.value().write_variable("v", s3d.grid).is_ok());

  TablePrinter table(
      "Multiresolution ablation on S3D (full-domain read)",
      {"Bytes read (MB)", "Point coverage (%)", "Max pt rel err",
       "Mean-stat error"});

  for (int level = 1; level <= 7; level += 1) {
    if (level > 4 && level < 7) continue;  // keep the table compact
    Query q;
    q.plod_level = level;
    auto res = plod_store.value().execute("v", q, 8);
    MLOC_CHECK(res.is_ok());
    const auto stats = analytics::compute_stats(res.value().values);
    table.add_row(
        "PLoD " + std::to_string(level) + " (" + std::to_string(level + 1) +
            "B)",
        {static_cast<double>(res.value().bytes_read) / 1e6, 100.0,
         plod::level_max_relative_error(level),
         std::abs(stats.mean - truth.mean) / std::abs(truth.mean)},
        "%.3g");
  }

  for (int level = 0; level < 4; ++level) {
    auto res = subset_store.value().read_level("v", level, {}, 8);
    MLOC_CHECK(res.is_ok());
    const auto stats = analytics::compute_stats(res.value().values);
    table.add_row(
        "Subset lvl " + std::to_string(level),
        {static_cast<double>(res.value().bytes_read) / 1e6,
         100.0 * subset_store.value().coverage(level),
         0.0,  // returned points are exact...
         std::abs(stats.mean - truth.mean) / std::abs(truth.mean)},
        "%.3g");
  }

  table.print();
  std::printf(
      "\nExpected (paper's argument): subsets read fewest bytes but miss"
      " most points —\nstatistics drift from sampling error; PLoD covers"
      " 100%% of points with a hard\nper-point bound, so mean-statistics"
      " stay accurate at a fraction of full I/O.\n");
  return 0;
}
