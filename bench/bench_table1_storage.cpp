// Reproduces paper Table I: storage requirements of data + index for the
// "8 GB"-class GTS dataset under every scenario. Expected shape: MLOC-ISA
// far below raw (paper: 38%), lossless MLOC near raw (~105%), FastBit far
// above raw (~225%), SciDB slightly above raw (overlap replication).
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

void add_scenario(TablePrinter& table, const std::string& label,
                  std::uint64_t data, std::uint64_t index,
                  std::uint64_t raw) {
  const std::uint64_t total = data + index;
  table.add_text_row(
      label, {format_bytes(data), index ? format_bytes(index) : "N/A",
              format_bytes(total),
              [&] {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%.0f%%",
                              100.0 * static_cast<double>(total) /
                                  static_cast<double>(raw));
                return std::string(buf);
              }()});
}

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  const Dataset ds = make_gts(/*large=*/false, cfg);
  const std::uint64_t raw = ds.grid.size() * sizeof(double);
  std::printf("Table I reproduction — storage for %s (%s raw)\n",
              ds.label.c_str(), format_bytes(raw).c_str());

  TablePrinter table("Table I: space requirements of data and index",
                     {"Data size", "Index size", "Total size", "% of raw"});

  for (const auto& [label, codec] :
       std::vector<std::pair<std::string, std::string>>{
           {"MLOC-COL", kMlocCol},
           {"MLOC-ISO", kMlocIso},
           {"MLOC-ISA", kMlocIsa}}) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "t1", ds, codec);
    if (!store.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", label.c_str(),
                   store.status().to_string().c_str());
      return 1;
    }
    add_scenario(table, label, store.value().data_bytes(),
                 store.value().index_bytes(), raw);
  }

  {
    pfs::PfsStorage fs(default_pfs());
    auto store = baselines::SeqScanStore::create(&fs, "t1", ds.grid);
    add_scenario(table, "Seq. Scan", store.value().data_bytes(), 0, raw);
  }
  {
    pfs::PfsStorage fs(default_pfs());
    auto store = baselines::FastBitStore::create(&fs, "t1", ds.grid,
                                                 /*num_bins=*/1000);
    add_scenario(table, "FastBit", store.value().data_bytes(),
                 store.value().index_bytes(), raw);
  }
  {
    pfs::PfsStorage fs(default_pfs());
    baselines::SciDbStore::Options opts;
    opts.chunk_shape = ds.chunk;
    opts.overlap = ds.chunk.extent(0) / 40;  // ~10% volume inflation in 2-D
    auto store = baselines::SciDbStore::create(&fs, "t1", ds.grid, opts);
    add_scenario(table, "SciDB*", store.value().data_bytes(), 0, raw);
  }

  table.print();
  std::printf(
      "\nPaper Table I (8 GB raw): MLOC-COL 8.1 GB (101%%), MLOC-ISO 8.5 GB"
      " (106%%),\nMLOC-ISA 3.2 GB (40%%), SeqScan 8.0 GB (100%%), FastBit"
      " 18.0 GB (225%%), SciDB 8.8 GB (110%%).\n");
  return 0;
}
