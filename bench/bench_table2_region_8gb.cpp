// Reproduces paper Table II: region-query (value-constrained, region-only)
// response time on the "8 GB"-class GTS and S3D datasets, value selectivity
// 1% and 10%, no SC. Expected shape: MLOC approaches win by 1-2 orders of
// magnitude (aligned-bin index-only answers); FastBit pays its full index
// load; SeqScan and SciDB scan everything.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

constexpr int kMlocRanks = 8;  // paper: 8 cores for MPI-based access

double avg_mloc_region(const MlocStore& store, const Dataset& ds,
                       double selectivity, int queries, Rng& rng) {
  double total = 0;
  for (int i = 0; i < queries; ++i) {
    Query q;
    q.vc = datagen::random_vc(ds.grid, selectivity, rng);
    q.values_needed = false;
    auto res = store.execute("v", q, kMlocRanks);
    MLOC_CHECK_MSG(res.is_ok(), res.status().to_string().c_str());
    total += res.value().times.total();
  }
  return total / queries;
}

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = cfg.queries_per_cell;
  std::printf("Table II reproduction — region queries, %d per cell\n",
              queries);

  const Dataset gts = make_gts(false, cfg);
  const Dataset s3d = make_s3d(false, cfg);
  const double sels[2] = {0.01, 0.10};

  TablePrinter table(
      "Table II: region query response time (s), no SC",
      {"1% GTS", "10% GTS", "1% S3D", "10% S3D"});

  // MLOC rows.
  for (const auto& [label, codec] :
       std::vector<std::pair<std::string, std::string>>{
           {"MLOC-COL", kMlocCol},
           {"MLOC-ISO", kMlocIso},
           {"MLOC-ISA", kMlocIsa}}) {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = build_mloc(&fs, "t2", *ds, codec);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 21);
      for (double sel : sels) {
        cells.push_back(avg_mloc_region(store.value(), *ds, sel, queries, rng));
      }
    }
    // Reorder to (1% GTS, 10% GTS, 1% S3D, 10% S3D) — already built so.
    table.add_row(label, cells);
  }

  // Seq. Scan.
  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = baselines::SeqScanStore::create(&fs, "t2", ds->grid);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 22);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto vc = datagen::random_vc(ds->grid, sel, rng);
          auto res = store.value().region_query(vc, false, kMlocRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("Seq. Scan", cells);
  }

  // FastBit.
  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = baselines::FastBitStore::create(&fs, "t2", ds->grid, 1000);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 23);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto vc = datagen::random_vc(ds->grid, sel, rng);
          auto res = store.value().region_query(vc, false);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("FastBit", cells);
  }

  // SciDB.
  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      baselines::SciDbStore::Options opts;
      opts.chunk_shape = ds->chunk;
      opts.overlap = ds->chunk.extent(0) / 40;
      auto store = baselines::SciDbStore::create(&fs, "t2", ds->grid, opts);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 24);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto vc = datagen::random_vc(ds->grid, sel, rng);
          auto res = store.value().region_query(vc, false, kMlocRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("SciDB", cells);
  }

  table.print();
  std::printf(
      "\nPaper Table II (s): MLOC 0.3-1.7, SeqScan 19-23, FastBit 37-38,"
      " SciDB 207-677.\n");
  return 0;
}
