// Reproduces paper Table VII: effect of the level-order permutation —
// V-M-S vs V-S-M — on value-retrieval access (1% selectivity, large S3D)
// at 3-byte PLoD and at full precision. Expected shape: V-M-S wins the
// low-PLoD access (byte groups contiguous bin-wide); V-S-M wins
// full-precision access (each fragment's groups adjacent); both remain
// within a modest factor of each other (the flexibility claim).
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(3, cfg.queries_per_cell / 4);
  std::printf("Table VII reproduction — optimization order, %d queries"
              " per cell\n", queries);

  const Dataset s3d = make_s3d(true, cfg);
  constexpr int kRanks = 8;

  TablePrinter table(
      "Table VII: value retrieval (10%) on S3D-large, order comparison (s)",
      {"3-byte PLoD access", "Full-precision access"});

  for (const auto& [label, order] :
       std::vector<std::pair<std::string, LevelOrder>>{
           {"V-M-S order", LevelOrder::kVMS},
           {"V-S-M order", LevelOrder::kVSM}}) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "t7", s3d, kMlocCol, order);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());

    // Selectivity note: the paper's 1% of 512 GB covers dozens of chunks
    // per bin (the regime where V-M-S's bin-contiguous byte groups pay
    // off). At this reproduction's scale, 1% touches only 1-2 chunks, so
    // 10% is used to reproduce the same fragments-per-bin regime.
    std::vector<double> cells;
    for (int level : {2, 7}) {
      Rng rng(cfg.seed + 91);  // identical queries for both orders
      double total = 0;
      for (int i = 0; i < queries; ++i) {
        Query q;
        q.sc = datagen::random_sc(s3d.grid.shape(), 0.10, rng);
        q.plod_level = level;
        auto res = store.value().execute("v", q, kRanks);
        MLOC_CHECK(res.is_ok());
        total += res.value().times.total();
      }
      cells.push_back(total / queries);
    }
    table.add_row(label, cells, "%.3f");
  }

  table.print();
  std::printf(
      "\nPaper Table VII (s): V-M-S 19.45 / 39.34; V-S-M 23.70 / 35.47 —"
      "\nV-M-S wins 3-byte access, V-S-M wins full precision, both within"
      " ~20%%.\n");
  return 0;
}
