// Ingestion pipeline throughput: serial vs parallel write_variable sweep
// (1/2/4/8 threads with write-behind) across three layout configs, with a
// built-in byte-identity self-check — every parallel store's files must be
// byte-for-byte equal to the serial store's, CRC footers included — and an
// fsck pass over the 4-thread store. Results land in BENCH_ingest.json
// (`MLOC_BENCH_JSON` overrides the path) so CI can jq-assert the two core
// claims: `parallel_identical == true` and `speedup_4t >= 1.5`.
//
// Speedups are wall-clock and only meaningful when the host actually has
// the cores, so both this binary's exit status and the CI jq assertion
// enforce the 4t floor only when `host_threads >= 4` (hardware_concurrency
// may also report 0 = unknown); the identity check is load-bearing at any
// core count.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "core/store.hpp"
#include "ingest/ingest.hpp"
#include "tools/fsck.hpp"
#include "util/timer.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

struct LayoutConfig {
  const char* key;    // JSON identifier
  const char* codec;
  LevelOrder order;
};

const std::vector<LayoutConfig> kConfigs = {
    {"mzip-vms", kMlocCol, LevelOrder::kVMS},
    {"mzip-vsm", kMlocCol, LevelOrder::kVSM},
    {"isabela-vms", kMlocIsa, LevelOrder::kVMS},
};

const std::vector<int> kThreadCounts = {2, 4, 8};

/// Every file's exact bytes, keyed by name — the byte-identity oracle.
std::map<std::string, Bytes> snapshot(const pfs::PfsStorage& fs) {
  std::map<std::string, Bytes> out;
  for (const auto& [name, size] : fs.listing()) {
    auto id = fs.open(name);
    MLOC_CHECK_MSG(id.is_ok(), name.c_str());
    auto bytes = fs.read(id.value(), 0, size);
    MLOC_CHECK_MSG(bytes.is_ok(), name.c_str());
    out[name] = std::move(bytes).value();
  }
  return out;
}

struct IngestRun {
  double wall_s = 0;                  // best-of-reps write_variable wall
  ingest::IngestStats stats;          // stats from the best rep
  std::map<std::string, Bytes> files; // store bytes from the last rep
  bool fsck_ok = true;
};

/// Ingest `ds` into a fresh store `reps` times with `opts`; keep the best
/// wall time and the final store's file bytes.
IngestRun run_ingest(const Dataset& ds, const LayoutConfig& lc,
                     const ingest::WriteOptions& opts, int reps,
                     bool run_fsck) {
  IngestRun out;
  out.wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    pfs::PfsStorage fs(default_pfs());
    MlocConfig cfg;
    cfg.shape = ds.grid.shape();
    cfg.layout.chunk_shape = ds.chunk;
    cfg.layout.num_bins = 64;
    cfg.layout.codec = lc.codec;
    cfg.layout.order = lc.order;
    auto store = MlocStore::create(&fs, "bench", cfg);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());

    Stopwatch sw;
    Status st = store.value().write_variable("v", ds.grid, opts);
    const double wall = sw.seconds();
    MLOC_CHECK_MSG(st.is_ok(), st.to_string().c_str());
    if (wall < out.wall_s) {
      out.wall_s = wall;
      out.stats = store.value().ingest_stats();
    }
    if (rep + 1 == reps) {
      out.files = snapshot(fs);
      if (run_fsck) {
        fsck::Report report = fsck::LayoutVerifier(&fs).verify_store("bench");
        out.fsck_ok = report.ok();
        if (!out.fsck_ok) {
          std::fprintf(stderr, "fsck failed:\n%s\n", report.human().c_str());
        }
      }
    }
  }
  return out;
}

bool same_files(const std::map<std::string, Bytes>& a,
                const std::map<std::string, Bytes>& b) {
  return a == b;
}

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  const char* reps_env = std::getenv("MLOC_INGEST_REPS");
  const int reps = std::max(1, reps_env != nullptr ? std::atoi(reps_env) : 2);
  const int host_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  const Dataset ds = make_gts(false, cfg);
  std::printf("Ingestion pipeline — %s, 64 bins, best of %d rep(s), host"
              " has %d hardware thread(s)\n",
              ds.label.c_str(), reps, host_threads);

  // per config: serial run + one run per parallel thread count.
  std::vector<IngestRun> serial(kConfigs.size());
  std::vector<std::vector<IngestRun>> par(
      kConfigs.size(), std::vector<IngestRun>(kThreadCounts.size()));
  bool all_identical = true;
  bool all_fsck_ok = true;

  TablePrinter table("Ingest wall seconds (lower is better)",
                     {"serial", "2t", "4t", "8t", "4t speedup"});
  for (std::size_t c = 0; c < kConfigs.size(); ++c) {
    serial[c] = run_ingest(ds, kConfigs[c], {}, reps, /*run_fsck=*/false);
    for (std::size_t t = 0; t < kThreadCounts.size(); ++t) {
      const bool fsck_this = kThreadCounts[t] == 4;
      par[c][t] = run_ingest(
          ds, kConfigs[c],
          {.threads = kThreadCounts[t], .write_behind = true}, reps,
          fsck_this);
      const bool identical = same_files(serial[c].files, par[c][t].files);
      all_identical = all_identical && identical;
      all_fsck_ok = all_fsck_ok && par[c][t].fsck_ok;
      if (!identical) {
        std::fprintf(stderr, "FAIL: %s at %d threads is not byte-identical"
                             " to the serial store\n",
                     kConfigs[c].key, kThreadCounts[t]);
      }
    }
    table.add_row(kConfigs[c].key,
                  {serial[c].wall_s, par[c][0].wall_s, par[c][1].wall_s,
                   par[c][2].wall_s, serial[c].wall_s / par[c][1].wall_s},
                  "%.3f");
  }
  table.print();

  // Aggregate speedups: total serial wall over total parallel wall.
  std::vector<double> speedup(kThreadCounts.size(), 0.0);
  double serial_total = 0;
  for (std::size_t c = 0; c < kConfigs.size(); ++c) {
    serial_total += serial[c].wall_s;
  }
  for (std::size_t t = 0; t < kThreadCounts.size(); ++t) {
    double par_total = 0;
    for (std::size_t c = 0; c < kConfigs.size(); ++c) {
      par_total += par[c][t].wall_s;
    }
    speedup[t] = serial_total / par_total;
  }
  std::printf("\naggregate speedup: %.2fx at 2t, %.2fx at 4t, %.2fx at 8t"
              " (identical=%s, fsck=%s)\n",
              speedup[0], speedup[1], speedup[2],
              all_identical ? "yes" : "NO", all_fsck_ok ? "clean" : "DIRTY");

  const char* json_path = std::getenv("MLOC_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_ingest.json";
  std::FILE* f = std::fopen(json_path, "w");
  MLOC_CHECK_MSG(f != nullptr, "cannot open BENCH_ingest.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ingest\",\n");
  std::fprintf(f, "  \"scale\": %.3f,\n", cfg.scale);
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"host_threads\": %d,\n", host_threads);
  std::fprintf(f, "  \"grid_cells\": %llu,\n",
               static_cast<unsigned long long>(ds.grid.size()));
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t c = 0; c < kConfigs.size(); ++c) {
    std::fprintf(f, "    {\"config\": \"%s\", \"serial_s\": %.6f, "
                    "\"encode_s\": %.6f, \"flush_s\": %.6f, \"parallel\":\n",
                 kConfigs[c].key, serial[c].wall_s,
                 serial[c].stats.encode_s, serial[c].stats.flush_s);
    std::fprintf(f, "      [\n");
    for (std::size_t t = 0; t < kThreadCounts.size(); ++t) {
      const bool identical = same_files(serial[c].files, par[c][t].files);
      std::fprintf(
          f,
          "        {\"threads\": %d, \"wall_s\": %.6f, \"speedup\": %.3f, "
          "\"identical\": %s, \"fsck_ok\": %s}%s\n",
          kThreadCounts[t], par[c][t].wall_s,
          serial[c].wall_s / par[c][t].wall_s, identical ? "true" : "false",
          par[c][t].fsck_ok ? "true" : "false",
          t + 1 == kThreadCounts.size() ? "" : ",");
    }
    std::fprintf(f, "      ]}%s\n", c + 1 == kConfigs.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"parallel_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"fsck_ok\": %s,\n", all_fsck_ok ? "true" : "false");
  std::fprintf(f, "  \"speedup_2t\": %.3f,\n", speedup[0]);
  std::fprintf(f, "  \"speedup_4t\": %.3f,\n", speedup[1]);
  std::fprintf(f, "  \"speedup_8t\": %.3f\n", speedup[2]);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);

  if (!all_identical || !all_fsck_ok) {
    std::fprintf(stderr, "FAIL: parallel ingest output differs from serial"
                         " or fsck found damage\n");
    return 1;
  }
  if (host_threads < 4) {
    std::printf("note: host reports %d hardware thread(s) (0 = unknown);"
                " skipping the 4t speedup floor\n",
                host_threads);
  } else if (speedup[1] < 1.5) {
    std::fprintf(stderr,
                 "FAIL: 4-thread speedup %.2fx is below the 1.5x floor on a"
                 " %d-thread host\n",
                 speedup[1], host_threads);
    return 1;
  }
  return 0;
}
