// Reproduces paper Fig. 8: multiresolution (PLoD) value-query performance
// at 1% selectivity on the large datasets, MLOC-COL, levels 2..7.
// Expected shape: response time grows with PLoD level, driven almost
// entirely by I/O (more byte groups fetched); reconstruction stays flat.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(3, cfg.queries_per_cell / 4);
  std::printf("Fig. 8 reproduction — PLoD value queries (1%%) on large"
              " datasets, MLOC-COL, %d queries per point\n", queries);

  const Dataset gts = make_gts(true, cfg);
  const Dataset s3d = make_s3d(true, cfg);
  constexpr int kRanks = 8;

  for (const Dataset* ds : {&gts, &s3d}) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "f8", *ds, kMlocCol);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());

    TablePrinter table(
        std::string("Fig 8: PLoD sweep, 1% value queries on ") + ds->label,
        {"I/O (s)", "Decompress (s)", "Reconstruct (s)", "Total (s)",
         "Bytes read (MB)"});
    for (int level = 2; level <= 7; ++level) {
      Rng rng(cfg.seed + 81);  // same queries at every level
      ComponentTimes sum;
      std::uint64_t bytes = 0;
      for (int i = 0; i < queries; ++i) {
        Query q;
        q.sc = datagen::random_sc(ds->grid.shape(), 0.01, rng);
        q.plod_level = level;
        auto res = store.value().execute("v", q, kRanks);
        MLOC_CHECK(res.is_ok());
        sum += res.value().times;
        bytes += res.value().bytes_read;
      }
      sum /= queries;
      table.add_row("PLoD " + std::to_string(level) + " (" +
                        std::to_string(level + 1) + "B)",
                    {sum.io, sum.decompress, sum.reconstruct, sum.total(),
                     static_cast<double>(bytes / queries) / 1e6},
                    "%.4f");
    }
    table.print();
  }

  std::printf(
      "\nPaper Fig. 8 shape: lower PLoD => proportionally less I/O and lower"
      " total;\nreconstruction flat across levels.\n");
  return 0;
}
