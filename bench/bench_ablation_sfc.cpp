// Ablation: space-filling-curve choice for chunk ordering (paper §III-B-2
// motivates Hilbert via Moon et al.'s clustering result). Compares modeled
// I/O of spatially-constrained value queries under Hilbert, Morton, and
// row-major chunk order on the same dataset and codec.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(5, cfg.queries_per_cell / 2);
  std::printf("Ablation — chunk ordering curve, value queries, %d per cell\n",
              queries);

  const Dataset gts = make_gts(false, cfg);
  constexpr int kRanks = 8;

  TablePrinter table("SFC ablation: 1% value queries on GTS (s)",
                     {"I/O (s)", "Total (s)"});
  for (const auto& [label, curve] :
       std::vector<std::pair<std::string, sfc::CurveKind>>{
           {"Hilbert", sfc::CurveKind::kHilbert},
           {"Morton", sfc::CurveKind::kMorton},
           {"Row-major", sfc::CurveKind::kRowMajor}}) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "sfc", gts, kMlocCol, LevelOrder::kVMS,
                            curve);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
    Rng rng(cfg.seed + 101);  // identical queries for every curve
    double io = 0, total = 0;
    for (int i = 0; i < queries; ++i) {
      Query q;
      q.sc = datagen::random_sc(gts.grid.shape(), 0.01, rng);
      auto res = store.value().execute("v", q, kRanks);
      MLOC_CHECK(res.is_ok());
      io += res.value().times.io;
      total += res.value().times.total();
    }
    table.add_row(label, {io / queries, total / queries}, "%.4f");
  }
  table.print();
  std::printf(
      "\nExpected: Hilbert lowest modeled I/O (best seek clustering for"
      " arbitrary\nrectangles); Morton and row-major trade places depending"
      " on rectangle shape.\n");
  return 0;
}
