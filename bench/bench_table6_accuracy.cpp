// Reproduces paper Table VI: accuracy of analytics on PLoD-degraded data —
// equal-width-histogram error and K-means misclassification at 2/3/4-byte
// PLoD for three S3D-like variables. Expected shape: percent-level error
// at 2 bytes, <=0.1% at 3 bytes, negligible at 4 bytes.
#include <cstdio>
#include <vector>

#include "analytics/analytics.hpp"
#include "common/bench_common.hpp"
#include "plod/plod.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  std::printf("Table VI reproduction — PLoD accuracy for analytics\n");

  // Three S3D-like velocity components (paper: vu, vv, vw, 20M points
  // each; scaled here). Velocity fields have the wide dynamic range that
  // makes equal-width-histogram error meaningful.
  const std::uint32_t edge = 128;
  const Grid vu = datagen::s3d_velocity_like(edge, cfg.seed + 111);
  const Grid vv = datagen::s3d_velocity_like(edge, cfg.seed + 222);
  const Grid vw = datagen::s3d_velocity_like(edge, cfg.seed + 333);

  auto values_of = [](const Grid& g) {
    return std::vector<double>(g.values().begin(), g.values().end());
  };
  const std::vector<std::vector<double>> vars = {values_of(vu), values_of(vv),
                                                 values_of(vw)};
  TablePrinter table(
      "Table VI: histogram error and K-means misclassification (%)",
      {"hist vu", "hist vv", "hist vw", "kmeans vv+vw"});

  for (int bytes = 2; bytes <= 4; ++bytes) {
    const int level = bytes - 1;  // PLoD level L keeps L+1 bytes
    std::vector<double> cells;

    std::vector<std::vector<double>> degraded;
    for (const auto& v : vars) {
      auto shredded = plod::shred(v);
      degraded.push_back(plod::assemble(shredded, level).value());
    }
    for (int i = 0; i < 3; ++i) {
      const auto hist = analytics::build_histogram(vars[i], 100);
      cells.push_back(100.0 *
                      analytics::histogram_error(hist, vars[i], degraded[i]));
    }

    // K-means on (vv, vw) pairs, as in the paper's last column.
    std::vector<double> pts, pts_degraded;
    const std::size_t n = vars[1].size();
    pts.reserve(2 * n);
    pts_degraded.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(vars[1][i]);
      pts.push_back(vars[2][i]);
      pts_degraded.push_back(degraded[1][i]);
      pts_degraded.push_back(degraded[2][i]);
    }
    cells.push_back(100.0 * analytics::kmeans_misclassification(
                                pts, pts_degraded, 2, 5, 100, cfg.seed + 6));

    table.add_row(std::to_string(bytes) + " bytes", cells, "%.4g");
  }

  table.print();
  std::printf(
      "\nPaper Table VI (%%): 2B hist 1.8-8.2, kmeans 4.3; 3B hist"
      " 0.007-0.03, kmeans 0.017;\n4B all <= 1.6e-4.\n");
  return 0;
}
