// Reproduces paper Table IV: region-query response time on the
// "512 GB"-class datasets, value selectivity 1% and 10% — MLOC variants vs
// sequential scan only (the other baselines already lost at 8 GB).
// Expected shape: MLOC orders of magnitude faster (SeqScan must read the
// entire dataset; MLOC touches only the bins the VC covers).
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(3, cfg.queries_per_cell / 4);
  std::printf("Table IV reproduction — region queries on large datasets,"
              " %d per cell\n", queries);

  const Dataset gts = make_gts(true, cfg);
  const Dataset s3d = make_s3d(true, cfg);
  const double sels[2] = {0.01, 0.10};
  constexpr int kRanks = 8;

  TablePrinter table(
      "Table IV: region query response time (s), large datasets, no SC",
      {"1% GTS", "10% GTS", "1% S3D", "10% S3D"});

  for (const auto& [label, codec] :
       std::vector<std::pair<std::string, std::string>>{
           {"MLOC-COL", kMlocCol},
           {"MLOC-ISO", kMlocIso},
           {"MLOC-ISA", kMlocIsa}}) {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = build_mloc(&fs, "t4", *ds, codec);
      MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());
      Rng rng(cfg.seed + 41);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          Query q;
          q.vc = datagen::random_vc(ds->grid, sel, rng);
          q.values_needed = false;
          auto res = store.value().execute("v", q, kRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row(label, cells);
  }

  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = baselines::SeqScanStore::create(&fs, "t4", ds->grid);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 42);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto vc = datagen::random_vc(ds->grid, sel, rng);
          auto res = store.value().region_query(vc, false, kRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("Seq. Scan", cells);
  }

  table.print();
  std::printf(
      "\nPaper Table IV (s): MLOC 16-44, SeqScan 1423-2317 (~40-90x).\n");
  return 0;
}
