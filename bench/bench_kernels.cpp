// Hot-kernel microbenchmarks: the blocked/SWAR fast paths vs the retained
// scalar references in mloc::detail::scalar (DESIGN.md §11). Each kernel
// runs best-of-reps on both implementations, asserts the outputs are
// byte-/bit-identical, and reports GB/s plus the fast/scalar speedup.
// Results land in BENCH_kernels.json (`MLOC_BENCH_JSON` overrides the
// path); the binary exits non-zero if any kernel's outputs differ or its
// speedup drops below 1.0, and CI's bench-smoke job jq-asserts the same
// two claims from the JSON.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "binning/binning.hpp"
#include "bitmap/bitmap.hpp"
#include "common/bench_common.hpp"
#include "compress/mzip.hpp"
#include "plod/plod.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

int g_reps = 5;

/// Best-of-reps wall time of fn().
template <typename Fn>
double best_seconds(Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < g_reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

struct KernelResult {
  std::string name;
  double mb = 0;  // bytes processed per run, in MB
  double scalar_s = 0;
  double fast_s = 0;
  bool identical = false;

  [[nodiscard]] double speedup() const { return scalar_s / fast_s; }
  [[nodiscard]] double gbps(double s) const { return mb / 1000.0 / s; }
};

std::vector<double> smooth_field(std::size_t n, std::uint64_t seed) {
  // Random walk: smooth enough that PLoD planes compress, noisy enough
  // that mzip's match search actually works (not one giant fill).
  std::vector<double> v(n);
  Rng rng(seed);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.next_gaussian() * 0.01;
    v[i] = std::sin(static_cast<double>(i) * 1e-4) * 100.0 + x;
  }
  return v;
}

plod::Shredded alloc_planes(std::size_t n, plod::PlaneSpans& spans) {
  plod::Shredded buf;
  buf.count = n;
  for (int g = 0; g < plod::kNumGroups; ++g) {
    buf.groups[g].resize(n * static_cast<std::size_t>(plod::group_bytes(g)));
    spans[g] = buf.groups[g];
  }
  return buf;
}

KernelResult bench_plod_shred(const std::vector<double>& values) {
  const std::size_t n = values.size();
  plod::PlaneSpans fast_spans;
  plod::PlaneSpans ref_spans;
  plod::Shredded fast_buf = alloc_planes(n, fast_spans);
  plod::Shredded ref_buf = alloc_planes(n, ref_spans);

  KernelResult out;
  out.name = "plod_shred";
  out.mb = static_cast<double>(n * sizeof(double)) / 1e6;
  out.fast_s = best_seconds([&] { plod::shred_into(values, fast_spans); });
  out.scalar_s = best_seconds(
      [&] { detail::scalar::plod_shred_into(values, ref_spans); });
  out.identical = fast_buf.groups == ref_buf.groups;
  return out;
}

KernelResult bench_plod_assemble(const std::vector<double>& values,
                                 int level) {
  const std::size_t n = values.size();
  plod::PlaneSpans spans;
  plod::Shredded buf = alloc_planes(n, spans);
  plod::shred_into(values, spans);
  std::vector<std::span<const std::uint8_t>> groups;
  for (int g = 0; g < level; ++g) groups.emplace_back(buf.groups[g]);

  std::vector<double> fast_out(n);
  std::vector<double> ref_out(n);
  KernelResult out;
  out.name = "plod_assemble_l" + std::to_string(level);
  out.mb = static_cast<double>(n * sizeof(double)) / 1e6;
  out.fast_s = best_seconds([&] {
    MLOC_CHECK(plod::assemble_into(groups, level, fast_out).is_ok());
  });
  out.scalar_s = best_seconds([&] {
    MLOC_CHECK(
        detail::scalar::plod_assemble_into(groups, level, ref_out).is_ok());
  });
  out.identical =
      std::memcmp(fast_out.data(), ref_out.data(), n * sizeof(double)) == 0;
  return out;
}

KernelResult bench_bin_route(const std::vector<double>& values,
                             int num_bins) {
  BinningScheme scheme = BinningScheme::equal_frequency(
      std::span<const double>(values.data(),
                              std::min<std::size_t>(values.size(), 65536)),
      num_bins);
  std::vector<int> fast_bins(values.size());
  std::vector<int> ref_bins(values.size());
  KernelResult out;
  out.name = "bin_route_" + std::to_string(num_bins);
  out.mb = static_cast<double>(values.size() * sizeof(double)) / 1e6;
  out.fast_s =
      best_seconds([&] { scheme.bin_of_batch(values, fast_bins); });
  out.scalar_s = best_seconds(
      [&] { detail::scalar::bin_of_batch(scheme, values, ref_bins); });
  out.identical = fast_bins == ref_bins;
  return out;
}

KernelResult bench_mzip_encode(const std::vector<double>& values) {
  // Encode the PLoD byte planes — the exact payload the ingest encode
  // stage feeds mzip, fragment by fragment.
  plod::PlaneSpans spans;
  plod::Shredded buf = alloc_planes(values.size(), spans);
  plod::shred_into(values, spans);
  Bytes raw;
  for (int g = 0; g < plod::kNumGroups; ++g) {
    raw.insert(raw.end(), buf.groups[g].begin(), buf.groups[g].end());
  }

  const MzipCodec codec;  // default max_chain, as the ingest path uses it
  Bytes fast_out;
  Bytes ref_out;
  KernelResult out;
  out.name = "mzip_encode";
  out.mb = static_cast<double>(raw.size()) / 1e6;
  out.fast_s = best_seconds([&] {
    auto enc = codec.encode(raw);
    MLOC_CHECK(enc.is_ok());
    fast_out = std::move(enc).value();
  });
  out.scalar_s = best_seconds([&] {
    auto enc = detail::scalar::mzip_encode(raw, 64);
    MLOC_CHECK(enc.is_ok());
    ref_out = std::move(enc).value();
  });
  out.identical = fast_out == ref_out;
  // Sanity: the stream must still round-trip.
  auto dec = codec.decode(fast_out);
  MLOC_CHECK(dec.is_ok());
  MLOC_CHECK(dec.value() == raw);
  return out;
}

Bitmap random_bitmap(std::uint64_t nbits, double density, std::uint64_t seed) {
  Bitmap bm(nbits);
  Rng rng(seed);
  const auto nset = static_cast<std::uint64_t>(
      static_cast<double>(nbits) * density);
  for (std::uint64_t i = 0; i < nset; ++i) {
    bm.set(rng.next_below(nbits));
  }
  return bm;
}

KernelResult bench_bitmap_count(const Bitmap& bm) {
  KernelResult out;
  out.name = "bitmap_count";
  out.mb = static_cast<double>(bm.byte_size()) / 1e6;
  std::uint64_t fast_n = 0;
  std::uint64_t ref_n = 0;
  out.fast_s = best_seconds([&] { fast_n = bm.count(); });
  out.scalar_s = best_seconds([&] { ref_n = detail::scalar::bitmap_count(bm); });
  out.identical = fast_n == ref_n;
  return out;
}

KernelResult bench_bitmap_for_each(const Bitmap& bm) {
  KernelResult out;
  out.name = "bitmap_for_each";
  out.mb = static_cast<double>(bm.byte_size()) / 1e6;
  std::vector<std::uint64_t> fast_idx;
  std::vector<std::uint64_t> ref_idx;
  out.fast_s = best_seconds([&] {
    fast_idx.clear();
    fast_idx.reserve(bm.count());
    bm.for_each_set([&](std::uint64_t i) { fast_idx.push_back(i); });
  });
  out.scalar_s = best_seconds([&] {
    ref_idx.clear();
    detail::scalar::bitmap_collect_set(bm, ref_idx);
  });
  out.identical = fast_idx == ref_idx;
  return out;
}

/// Clustered bitmap (long zero stretches + dense islands) — the shape WAH
/// compresses well and the annihilator fast path feeds on.
Bitmap clustered_bitmap(std::uint64_t nbits, std::uint64_t seed) {
  Bitmap bm(nbits);
  Rng rng(seed);
  std::uint64_t pos = 0;
  while (pos < nbits) {
    pos += 512 + rng.next_below(8192);  // zero gap
    const std::uint64_t run = 32 + rng.next_below(512);
    for (std::uint64_t i = 0; i < run && pos + i < nbits; ++i) {
      if (rng.next_below(4) != 0) bm.set(pos + i);
    }
    pos += run;
  }
  return bm;
}

KernelResult bench_wah_and(std::uint64_t nbits) {
  const WahBitmap a = WahBitmap::compress(clustered_bitmap(nbits, 1));
  const WahBitmap b = WahBitmap::compress(clustered_bitmap(nbits, 2));
  KernelResult out;
  out.name = "wah_and";
  out.mb = static_cast<double>(a.byte_size() + b.byte_size()) / 1e6;
  WahBitmap fast_out;
  WahBitmap ref_out;
  out.fast_s =
      best_seconds([&] { fast_out = WahBitmap::logical_and(a, b); });
  out.scalar_s =
      best_seconds([&] { ref_out = detail::scalar::wah_logical_and(a, b); });
  Bitmap plain_and = clustered_bitmap(nbits, 1);
  plain_and &= clustered_bitmap(nbits, 2);
  out.identical =
      fast_out == ref_out && fast_out == WahBitmap::compress(plain_and);
  return out;
}

}  // namespace

int main() {
  const char* reps_env = std::getenv("MLOC_KERNEL_REPS");
  if (reps_env != nullptr) g_reps = std::max(1, std::atoi(reps_env));
  const int host_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::printf("Kernel microbench — best of %d rep(s)\n", g_reps);

  constexpr std::size_t kValues = 1u << 20;  // 8 MB of doubles
  const std::vector<double> field = smooth_field(kValues, 20120910);
  std::vector<double> mixed = field;  // add NaNs/extremes for bin routing
  Rng rng(7);
  for (int i = 0; i < 1024; ++i) {
    mixed[rng.next_below(kValues)] = std::numeric_limits<double>::quiet_NaN();
  }

  std::vector<KernelResult> results;
  results.push_back(bench_plod_shred(field));
  results.push_back(bench_plod_assemble(field, plod::kNumGroups));
  results.push_back(bench_plod_assemble(field, 2));
  results.push_back(bench_bin_route(mixed, 64));
  results.push_back(bench_bin_route(mixed, 1024));
  results.push_back(bench_mzip_encode(
      std::vector<double>(field.begin(), field.begin() + (1u << 19))));
  const Bitmap dense = random_bitmap(1u << 26, 0.5, 11);
  const Bitmap sparse = random_bitmap(1u << 26, 0.01, 13);
  results.push_back(bench_bitmap_count(dense));
  results.push_back(bench_bitmap_for_each(sparse));
  results.push_back(bench_wah_and(1u << 26));

  TablePrinter table("Kernel throughput (GB/s, higher is better)",
                     {"MB", "scalar GB/s", "fast GB/s", "speedup"});
  bool all_identical = true;
  bool all_speedup_ok = true;
  for (const KernelResult& k : results) {
    table.add_row(k.name,
                  {k.mb, k.gbps(k.scalar_s), k.gbps(k.fast_s), k.speedup()},
                  "%.2f");
    all_identical = all_identical && k.identical;
    all_speedup_ok = all_speedup_ok && k.speedup() >= 1.0;
    if (!k.identical) {
      std::fprintf(stderr, "FAIL: %s fast output differs from scalar\n",
                   k.name.c_str());
    }
    if (k.speedup() < 1.0) {
      std::fprintf(stderr, "FAIL: %s speedup %.3f < 1.0\n", k.name.c_str(),
                   k.speedup());
    }
  }
  table.print();

  const char* json_path = std::getenv("MLOC_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_kernels.json";
  std::FILE* f = std::fopen(json_path, "w");
  MLOC_CHECK_MSG(f != nullptr, "cannot open BENCH_kernels.json for writing");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"reps\": %d,\n", g_reps);
  std::fprintf(f, "  \"host_threads\": %d,\n", host_threads);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& k = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"mb\": %.2f, "
                 "\"scalar_gbps\": %.3f, \"fast_gbps\": %.3f, "
                 "\"speedup\": %.3f, \"identical\": %s}%s\n",
                 k.name.c_str(), k.mb, k.gbps(k.scalar_s), k.gbps(k.fast_s),
                 k.speedup(), k.identical ? "true" : "false",
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"all_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"all_speedup_ok\": %s\n",
               all_speedup_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);

  if (!all_identical || !all_speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: a kernel differs from its scalar reference or "
                 "regressed below 1.0x\n");
    return 1;
  }
  return 0;
}
