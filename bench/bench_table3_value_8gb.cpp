// Reproduces paper Table III: value-query (spatially-constrained
// value-retrieval) response time on the "8 GB"-class datasets, region
// selectivity 0.1% and 1%, no VC. Expected shape: SeqScan is competitive
// (offset-computed partial reads); MLOC-ISA wins via data reduction;
// FastBit pays its index load; SciDB pays chunk granularity + executor.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

namespace {

constexpr int kMlocRanks = 8;

}  // namespace

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = cfg.queries_per_cell;
  std::printf("Table III reproduction — value queries, %d per cell\n",
              queries);

  const Dataset gts = make_gts(false, cfg);
  const Dataset s3d = make_s3d(false, cfg);
  const double sels[2] = {0.001, 0.01};

  TablePrinter table(
      "Table III: value query response time (s), no VC",
      {"0.1% GTS", "1% GTS", "0.1% S3D", "1% S3D"});

  for (const auto& [label, codec] :
       std::vector<std::pair<std::string, std::string>>{
           {"MLOC-COL", kMlocCol},
           {"MLOC-ISO", kMlocIso},
           {"MLOC-ISA", kMlocIsa}}) {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = build_mloc(&fs, "t3", *ds, codec);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 31);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          Query q;
          q.sc = datagen::random_sc(ds->grid.shape(), sel, rng);
          auto res = store.value().execute("v", q, kMlocRanks);
          MLOC_CHECK_MSG(res.is_ok(), res.status().to_string().c_str());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row(label, cells);
  }

  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = baselines::SeqScanStore::create(&fs, "t3", ds->grid);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 32);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto sc = datagen::random_sc(ds->grid.shape(), sel, rng);
          auto res = store.value().value_query(sc, kMlocRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("Seq. Scan", cells);
  }

  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      auto store = baselines::FastBitStore::create(&fs, "t3", ds->grid, 1000);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 33);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto sc = datagen::random_sc(ds->grid.shape(), sel, rng);
          auto res = store.value().value_query(sc);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("FastBit", cells);
  }

  {
    std::vector<double> cells;
    for (const Dataset* ds : {&gts, &s3d}) {
      pfs::PfsStorage fs(default_pfs());
      baselines::SciDbStore::Options opts;
      opts.chunk_shape = ds->chunk;
      opts.overlap = ds->chunk.extent(0) / 40;
      auto store = baselines::SciDbStore::create(&fs, "t3", ds->grid, opts);
      MLOC_CHECK(store.is_ok());
      Rng rng(cfg.seed + 34);
      for (double sel : sels) {
        double total = 0;
        for (int i = 0; i < queries; ++i) {
          auto sc = datagen::random_sc(ds->grid.shape(), sel, rng);
          auto res = store.value().value_query(sc, kMlocRanks);
          MLOC_CHECK(res.is_ok());
          total += res.value().times.total();
        }
        cells.push_back(total / queries);
      }
    }
    table.add_row("SciDB", cells);
  }

  table.print();
  std::printf(
      "\nPaper Table III (s): MLOC-ISA best (1.5-3.4), MLOC-COL/ISO 2.2-5.3,"
      " SeqScan 1.8-5.9,\nFastBit 37-40, SciDB 29-469.\n");
  return 0;
}
