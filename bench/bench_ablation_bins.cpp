// Ablation: number of equal-frequency bins (the paper fixes 100 and argues
// bin count balances search-space pruning against subfile overheads).
// Sweeps bin counts and reports region-query time (pruning benefit), value
// query time (per-bin overhead cost), and index size.
#include <cstdio>

#include "common/bench_common.hpp"

using namespace mloc;
using namespace mloc::bench;

int main() {
  const ScaleConfig cfg = scale_from_env();
  const int queries = std::max(5, cfg.queries_per_cell / 2);
  std::printf("Ablation — bin count sweep, %d queries per cell\n", queries);

  const Dataset gts = make_gts(false, cfg);
  constexpr int kRanks = 8;

  TablePrinter table(
      "Bin-count ablation on GTS",
      {"Region 1% (s)", "Value 1% (s)", "Index (MB)", "Files"});
  for (int bins : {10, 25, 50, 100, 200, 400}) {
    pfs::PfsStorage fs(default_pfs());
    auto store = build_mloc(&fs, "bins", gts, kMlocCol, LevelOrder::kVMS,
                            sfc::CurveKind::kHilbert, bins);
    MLOC_CHECK_MSG(store.is_ok(), store.status().to_string().c_str());

    Rng rng(cfg.seed + 102);
    double region_s = 0, value_s = 0;
    for (int i = 0; i < queries; ++i) {
      Query rq;
      rq.vc = datagen::random_vc(gts.grid, 0.01, rng);
      rq.values_needed = false;
      auto rres = store.value().execute("v", rq, kRanks);
      MLOC_CHECK(rres.is_ok());
      region_s += rres.value().times.total();

      Query vq;
      vq.sc = datagen::random_sc(gts.grid.shape(), 0.01, rng);
      auto vres = store.value().execute("v", vq, kRanks);
      MLOC_CHECK(vres.is_ok());
      value_s += vres.value().times.total();
    }
    table.add_row(std::to_string(bins) + " bins",
                  {region_s / queries, value_s / queries,
                   static_cast<double>(store.value().index_bytes()) / 1e6,
                   static_cast<double>(fs.num_files())},
                  "%.4f");
  }
  table.print();
  std::printf(
      "\nExpected: region queries improve with more bins (finer pruning);"
      "\nvalue queries degrade (every bin is touched: more files/seeks);"
      "\nthe paper's 100 bins sits near the balance point.\n");
  return 0;
}
