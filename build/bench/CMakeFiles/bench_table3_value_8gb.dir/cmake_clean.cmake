file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_value_8gb.dir/bench_table3_value_8gb.cpp.o"
  "CMakeFiles/bench_table3_value_8gb.dir/bench_table3_value_8gb.cpp.o.d"
  "bench_table3_value_8gb"
  "bench_table3_value_8gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_value_8gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
