
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_value_8gb.cpp" "bench/CMakeFiles/bench_table3_value_8gb.dir/bench_table3_value_8gb.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_value_8gb.dir/bench_table3_value_8gb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mloc_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
