# Empty compiler generated dependencies file for bench_table3_value_8gb.
# This may be replaced when dependencies are built.
