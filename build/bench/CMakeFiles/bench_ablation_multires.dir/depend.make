# Empty dependencies file for bench_ablation_multires.
# This may be replaced when dependencies are built.
