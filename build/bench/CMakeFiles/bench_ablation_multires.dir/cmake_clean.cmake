file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multires.dir/bench_ablation_multires.cpp.o"
  "CMakeFiles/bench_ablation_multires.dir/bench_ablation_multires.cpp.o.d"
  "bench_ablation_multires"
  "bench_ablation_multires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
