# Empty dependencies file for mloc_bench_common.
# This may be replaced when dependencies are built.
