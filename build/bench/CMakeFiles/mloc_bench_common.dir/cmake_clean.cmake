file(REMOVE_RECURSE
  "CMakeFiles/mloc_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/mloc_bench_common.dir/common/bench_common.cpp.o.d"
  "libmloc_bench_common.a"
  "libmloc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mloc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
