file(REMOVE_RECURSE
  "libmloc_bench_common.a"
)
