file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_order.dir/bench_table7_order.cpp.o"
  "CMakeFiles/bench_table7_order.dir/bench_table7_order.cpp.o.d"
  "bench_table7_order"
  "bench_table7_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
