# Empty compiler generated dependencies file for bench_table5_value_512gb.
# This may be replaced when dependencies are built.
