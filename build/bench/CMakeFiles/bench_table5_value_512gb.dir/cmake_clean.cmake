file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_value_512gb.dir/bench_table5_value_512gb.cpp.o"
  "CMakeFiles/bench_table5_value_512gb.dir/bench_table5_value_512gb.cpp.o.d"
  "bench_table5_value_512gb"
  "bench_table5_value_512gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_value_512gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
