file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_components.dir/bench_fig6_components.cpp.o"
  "CMakeFiles/bench_fig6_components.dir/bench_fig6_components.cpp.o.d"
  "bench_fig6_components"
  "bench_fig6_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
