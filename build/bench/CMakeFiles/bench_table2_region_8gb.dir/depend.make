# Empty dependencies file for bench_table2_region_8gb.
# This may be replaced when dependencies are built.
