file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sfc.dir/bench_ablation_sfc.cpp.o"
  "CMakeFiles/bench_ablation_sfc.dir/bench_ablation_sfc.cpp.o.d"
  "bench_ablation_sfc"
  "bench_ablation_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
