# Empty dependencies file for bench_table4_region_512gb.
# This may be replaced when dependencies are built.
