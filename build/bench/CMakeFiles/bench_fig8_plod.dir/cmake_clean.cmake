file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_plod.dir/bench_fig8_plod.cpp.o"
  "CMakeFiles/bench_fig8_plod.dir/bench_fig8_plod.cpp.o.d"
  "bench_fig8_plod"
  "bench_fig8_plod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_plod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
