file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_binning.dir/bench_ablation_binning.cpp.o"
  "CMakeFiles/bench_ablation_binning.dir/bench_ablation_binning.cpp.o.d"
  "bench_ablation_binning"
  "bench_ablation_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
