file(REMOVE_RECURSE
  "CMakeFiles/test_plod.dir/test_plod.cpp.o"
  "CMakeFiles/test_plod.dir/test_plod.cpp.o.d"
  "test_plod"
  "test_plod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
