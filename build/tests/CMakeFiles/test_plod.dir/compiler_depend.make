# Empty compiler generated dependencies file for test_plod.
# This may be replaced when dependencies are built.
