file(REMOVE_RECURSE
  "CMakeFiles/test_pfs.dir/test_pfs.cpp.o"
  "CMakeFiles/test_pfs.dir/test_pfs.cpp.o.d"
  "test_pfs"
  "test_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
