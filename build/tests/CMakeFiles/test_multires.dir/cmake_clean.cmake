file(REMOVE_RECURSE
  "CMakeFiles/test_multires.dir/test_multires.cpp.o"
  "CMakeFiles/test_multires.dir/test_multires.cpp.o.d"
  "test_multires"
  "test_multires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
