# Empty compiler generated dependencies file for test_multires.
# This may be replaced when dependencies are built.
