# Empty dependencies file for test_store_random.
# This may be replaced when dependencies are built.
