file(REMOVE_RECURSE
  "CMakeFiles/test_store_random.dir/test_store_random.cpp.o"
  "CMakeFiles/test_store_random.dir/test_store_random.cpp.o.d"
  "test_store_random"
  "test_store_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
