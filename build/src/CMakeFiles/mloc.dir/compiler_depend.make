# Empty compiler generated dependencies file for mloc.
# This may be replaced when dependencies are built.
