
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/analytics.cpp" "src/CMakeFiles/mloc.dir/analytics/analytics.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/analytics/analytics.cpp.o.d"
  "/root/repo/src/array/chunking.cpp" "src/CMakeFiles/mloc.dir/array/chunking.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/array/chunking.cpp.o.d"
  "/root/repo/src/array/grid.cpp" "src/CMakeFiles/mloc.dir/array/grid.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/array/grid.cpp.o.d"
  "/root/repo/src/array/region.cpp" "src/CMakeFiles/mloc.dir/array/region.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/array/region.cpp.o.d"
  "/root/repo/src/array/shape.cpp" "src/CMakeFiles/mloc.dir/array/shape.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/array/shape.cpp.o.d"
  "/root/repo/src/baselines/fastbit_like.cpp" "src/CMakeFiles/mloc.dir/baselines/fastbit_like.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/baselines/fastbit_like.cpp.o.d"
  "/root/repo/src/baselines/scidb_like.cpp" "src/CMakeFiles/mloc.dir/baselines/scidb_like.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/baselines/scidb_like.cpp.o.d"
  "/root/repo/src/baselines/seqscan.cpp" "src/CMakeFiles/mloc.dir/baselines/seqscan.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/baselines/seqscan.cpp.o.d"
  "/root/repo/src/binning/binning.cpp" "src/CMakeFiles/mloc.dir/binning/binning.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/binning/binning.cpp.o.d"
  "/root/repo/src/bitmap/bitmap.cpp" "src/CMakeFiles/mloc.dir/bitmap/bitmap.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/bitmap/bitmap.cpp.o.d"
  "/root/repo/src/compress/bspline.cpp" "src/CMakeFiles/mloc.dir/compress/bspline.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/bspline.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/CMakeFiles/mloc.dir/compress/huffman.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/huffman.cpp.o.d"
  "/root/repo/src/compress/isabela.cpp" "src/CMakeFiles/mloc.dir/compress/isabela.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/isabela.cpp.o.d"
  "/root/repo/src/compress/isobar.cpp" "src/CMakeFiles/mloc.dir/compress/isobar.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/isobar.cpp.o.d"
  "/root/repo/src/compress/mzip.cpp" "src/CMakeFiles/mloc.dir/compress/mzip.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/mzip.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/CMakeFiles/mloc.dir/compress/registry.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/registry.cpp.o.d"
  "/root/repo/src/compress/rle.cpp" "src/CMakeFiles/mloc.dir/compress/rle.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/rle.cpp.o.d"
  "/root/repo/src/compress/xor_delta.cpp" "src/CMakeFiles/mloc.dir/compress/xor_delta.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/compress/xor_delta.cpp.o.d"
  "/root/repo/src/core/layout.cpp" "src/CMakeFiles/mloc.dir/core/layout.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/core/layout.cpp.o.d"
  "/root/repo/src/core/store.cpp" "src/CMakeFiles/mloc.dir/core/store.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/core/store.cpp.o.d"
  "/root/repo/src/datagen/datagen.cpp" "src/CMakeFiles/mloc.dir/datagen/datagen.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/datagen/datagen.cpp.o.d"
  "/root/repo/src/multires/subset.cpp" "src/CMakeFiles/mloc.dir/multires/subset.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/multires/subset.cpp.o.d"
  "/root/repo/src/parallel/runtime.cpp" "src/CMakeFiles/mloc.dir/parallel/runtime.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/parallel/runtime.cpp.o.d"
  "/root/repo/src/pfs/pfs.cpp" "src/CMakeFiles/mloc.dir/pfs/pfs.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/pfs/pfs.cpp.o.d"
  "/root/repo/src/planner/planner.cpp" "src/CMakeFiles/mloc.dir/planner/planner.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/planner/planner.cpp.o.d"
  "/root/repo/src/plod/plod.cpp" "src/CMakeFiles/mloc.dir/plod/plod.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/plod/plod.cpp.o.d"
  "/root/repo/src/sfc/hilbert.cpp" "src/CMakeFiles/mloc.dir/sfc/hilbert.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/sfc/hilbert.cpp.o.d"
  "/root/repo/src/staging/staging.cpp" "src/CMakeFiles/mloc.dir/staging/staging.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/staging/staging.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/mloc.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/mloc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/mloc.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/util/status.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/mloc.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/mloc.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
