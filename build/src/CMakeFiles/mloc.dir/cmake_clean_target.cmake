file(REMOVE_RECURSE
  "libmloc.a"
)
