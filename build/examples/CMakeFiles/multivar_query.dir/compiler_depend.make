# Empty compiler generated dependencies file for multivar_query.
# This may be replaced when dependencies are built.
