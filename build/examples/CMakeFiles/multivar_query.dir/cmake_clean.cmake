file(REMOVE_RECURSE
  "CMakeFiles/multivar_query.dir/multivar_query.cpp.o"
  "CMakeFiles/multivar_query.dir/multivar_query.cpp.o.d"
  "multivar_query"
  "multivar_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multivar_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
