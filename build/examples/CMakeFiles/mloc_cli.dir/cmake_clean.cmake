file(REMOVE_RECURSE
  "CMakeFiles/mloc_cli.dir/mloc_cli.cpp.o"
  "CMakeFiles/mloc_cli.dir/mloc_cli.cpp.o.d"
  "mloc_cli"
  "mloc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mloc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
