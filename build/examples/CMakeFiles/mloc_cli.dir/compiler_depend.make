# Empty compiler generated dependencies file for mloc_cli.
# This may be replaced when dependencies are built.
