file(REMOVE_RECURSE
  "CMakeFiles/fusion_threshold_query.dir/fusion_threshold_query.cpp.o"
  "CMakeFiles/fusion_threshold_query.dir/fusion_threshold_query.cpp.o.d"
  "fusion_threshold_query"
  "fusion_threshold_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_threshold_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
