# Empty dependencies file for fusion_threshold_query.
# This may be replaced when dependencies are built.
