file(REMOVE_RECURSE
  "CMakeFiles/insitu_staging.dir/insitu_staging.cpp.o"
  "CMakeFiles/insitu_staging.dir/insitu_staging.cpp.o.d"
  "insitu_staging"
  "insitu_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
