# Empty compiler generated dependencies file for insitu_staging.
# This may be replaced when dependencies are built.
