# Empty compiler generated dependencies file for multires_explorer.
# This may be replaced when dependencies are built.
