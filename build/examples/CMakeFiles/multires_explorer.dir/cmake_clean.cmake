file(REMOVE_RECURSE
  "CMakeFiles/multires_explorer.dir/multires_explorer.cpp.o"
  "CMakeFiles/multires_explorer.dir/multires_explorer.cpp.o.d"
  "multires_explorer"
  "multires_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multires_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
