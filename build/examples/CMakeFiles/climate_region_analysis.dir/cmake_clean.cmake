file(REMOVE_RECURSE
  "CMakeFiles/climate_region_analysis.dir/climate_region_analysis.cpp.o"
  "CMakeFiles/climate_region_analysis.dir/climate_region_analysis.cpp.o.d"
  "climate_region_analysis"
  "climate_region_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_region_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
