// libFuzzer harness for the wire-protocol decoders (src/net/wire.hpp).
//
// The contract under test is the one the module header states: decoding
// never trusts a length before bounds-checking it, and a malformed frame
// yields a clean Status — never a crash, never UB. The harness drives the
// same surface a hostile peer reaches: header validation, payload
// verification, and every payload decoder, each over attacker-controlled
// bytes. Run with UBSan linked so "clean" means no silent overflow either.
#include <cstddef>
#include <cstdint>
#include <span>

#include "net/wire.hpp"

namespace {

// First input byte steers which payload decoder sees the rest, so corpus
// entries stay small and the fuzzer can target one decoder at a time.
void fuzz_payload_decoders(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  const std::uint8_t selector = data[0];
  const auto payload = data.subspan(1);
  switch (selector % 12) {
    case 0: (void)mloc::net::decode_open_session(payload); break;
    case 1: (void)mloc::net::decode_session_opened(payload); break;
    case 2: (void)mloc::net::decode_request(payload); break;
    case 3: (void)mloc::net::decode_cancel(payload); break;
    case 4: (void)mloc::net::decode_status(payload); break;
    case 5: (void)mloc::net::decode_response(payload); break;
    case 6: (void)mloc::net::decode_stats(payload); break;
    case 7: (void)mloc::net::decode_session_stats(payload); break;
    case 8: (void)mloc::net::decode_shm_offer(payload); break;
    case 9: (void)mloc::net::decode_shm_accept(payload); break;
    case 10: (void)mloc::net::decode_shm_attach(payload); break;
    case 11: (void)mloc::net::decode_shm_result(payload); break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  // Frame path: exactly what the server does with bytes off the socket.
  if (size >= mloc::net::kHeaderBytes) {
    auto header = mloc::net::decode_header(bytes);
    if (header.is_ok()) {
      (void)mloc::net::verify_payload(header.value(),
                                      bytes.subspan(mloc::net::kHeaderBytes));
    }
  }

  // Payload path: decoders see the body only after CRC checks in real use,
  // but they must hold up against arbitrary bytes regardless.
  fuzz_payload_decoders(bytes);
  return 0;
}
