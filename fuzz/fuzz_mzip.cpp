// libFuzzer harness for the mzip decoder (src/compress/mzip.hpp).
//
// mzip streams come off the PFS, where the threat model is corruption
// rather than hostility — but the decoder's contract is the same either
// way: arbitrary bytes produce either a valid decode or a clean error
// Status, never a crash or UB (Huffman tables, match distances, and output
// lengths are all attacker-influenced). When a mutated stream does decode,
// the harness additionally checks the codec's round-trip property:
// re-encoding the decoded bytes must reproduce them exactly.
#include <cstddef>
#include <cstdint>
#include <span>

#include "compress/mzip.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const mloc::MzipCodec codec;
  auto decoded = codec.decode({data, size});
  if (!decoded.is_ok()) return 0;

  // The fuzzer found (or mutated its way back to) a valid stream: the
  // decoded plaintext must survive a fresh encode/decode cycle bit-exactly.
  auto reencoded = codec.encode(decoded.value());
  if (!reencoded.is_ok()) __builtin_trap();
  auto redecoded = codec.decode(reencoded.value());
  if (!redecoded.is_ok()) __builtin_trap();
  if (redecoded.value() != decoded.value()) __builtin_trap();
  return 0;
}
