// Seed-corpus generator for the fuzz harnesses.
//
//   make_seeds <out_dir>
//
// Writes <out_dir>/wire/* and <out_dir>/mzip/* — valid artefacts produced
// by the real encoders, so the fuzzers start from deep inside the accepting
// states (CRC-correct frames, well-formed Huffman streams) instead of
// spending their budget rediscovering the magic number. Wire seeds come in
// both shapes the harness consumes: whole frames (header path) and
// selector-prefixed payloads (decoder dispatch path). Mirrors the corpora
// the round-trip unit tests exercise; regenerate whenever the wire format
// or mzip bitstream changes.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "compress/mzip.hpp"
#include "net/wire.hpp"

namespace {

void write_seed(const std::filesystem::path& dir, const std::string& name,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "make_seeds: failed writing " << (dir / name) << "\n";
    std::exit(1);
  }
}

mloc::Bytes with_selector(std::uint8_t selector,
                          std::span<const std::uint8_t> payload) {
  mloc::Bytes out;
  out.reserve(payload.size() + 1);
  out.push_back(selector);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void make_wire_seeds(const std::filesystem::path& dir) {
  using namespace mloc::net;

  const mloc::Bytes open = encode_open_session("fuzz-session");
  const mloc::Bytes cancel = encode_cancel(42);
  const mloc::Bytes ok_status = encode_status(mloc::Status::ok());
  const mloc::Bytes err_status =
      encode_status(mloc::corrupt_data("seed: carried error"));

  mloc::service::Request req;
  req.var = "temperature";
  req.priority = 3;
  req.deadline_s = 0.5;
  const mloc::Bytes request = encode_request(req);

  const mloc::Bytes stats = encode_stats(StatsSnapshot{});
  const mloc::Bytes session_stats =
      encode_session_stats(mloc::service::SessionStats{});

  mloc::service::Response resp;
  resp.result.positions = {1, 5, 9};
  resp.result.values = {1.5, -2.25, 8.0};
  EncodedResponse enc = encode_response_frame(7, std::move(resp));
  mloc::Bytes response_frame = enc.head;
  const auto* pos_bytes =
      reinterpret_cast<const std::uint8_t*>(enc.positions.data());
  response_frame.insert(
      response_frame.end(), pos_bytes,
      pos_bytes + enc.positions.size() * sizeof(std::uint64_t));
  const auto* val_bytes =
      reinterpret_cast<const std::uint8_t*>(enc.values.data());
  response_frame.insert(response_frame.end(), val_bytes,
                        val_bytes + enc.values.size() * sizeof(double));

  // Whole frames — exercise the header + payload-CRC path.
  write_seed(dir, "frame_ping", encode_frame(FrameType::kPing, 1, {}));
  write_seed(dir, "frame_open", encode_frame(FrameType::kOpenSession, 2, open));
  write_seed(dir, "frame_query", encode_frame(FrameType::kQuery, 3, request));
  write_seed(dir, "frame_cancel", encode_frame(FrameType::kCancel, 4, cancel));
  write_seed(dir, "frame_ack", encode_frame(FrameType::kAck, 5, ok_status));
  write_seed(dir, "frame_response", response_frame);

  // Selector-prefixed payloads — exercise each payload decoder directly
  // (selector values match fuzz_wire.cpp's dispatch table).
  write_seed(dir, "payload_open", with_selector(0, open));
  write_seed(dir, "payload_session_opened",
             with_selector(1, encode_session_opened(99)));
  write_seed(dir, "payload_request", with_selector(2, request));
  write_seed(dir, "payload_cancel", with_selector(3, cancel));
  write_seed(dir, "payload_status", with_selector(4, err_status));
  // Strip the frame header so selector 5 sees the response *payload*.
  write_seed(dir, "payload_response",
             with_selector(5, std::span<const std::uint8_t>(response_frame)
                                  .subspan(kHeaderBytes)));
  write_seed(dir, "payload_stats", with_selector(6, stats));
  write_seed(dir, "payload_session_stats", with_selector(7, session_stats));
}

void make_mzip_seeds(const std::filesystem::path& dir) {
  const mloc::MzipCodec codec;
  const auto emit = [&](const std::string& name, const mloc::Bytes& raw) {
    auto encoded = codec.encode(raw);
    if (!encoded.is_ok()) {
      std::cerr << "make_seeds: mzip encode failed for " << name << "\n";
      std::exit(1);
    }
    write_seed(dir, name, encoded.value());
  };

  emit("empty", {});

  mloc::Bytes text;
  const std::string phrase = "multi-level layout optimization ";
  for (int i = 0; i < 32; ++i) text.insert(text.end(), phrase.begin(), phrase.end());
  emit("text", text);

  mloc::Bytes runs(4096, 0x00);
  for (std::size_t i = 1024; i < 2048; ++i) runs[i] = 0xFF;
  emit("runs", runs);

  // Byte-plane-like data: low entropy with a short period, the shape PLoD
  // byte groups actually hand the codec.
  mloc::Bytes planes(8192);
  std::uint32_t state = 0x9E3779B9u;
  for (auto& b : planes) {
    state = state * 1664525u + 1013904223u;
    b = static_cast<std::uint8_t>((state >> 24) & 0x0F);
  }
  emit("planes", planes);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_seeds <out_dir>\n";
    return 1;
  }
  const std::filesystem::path root(argv[1]);
  std::error_code ec;
  std::filesystem::create_directories(root / "wire", ec);
  std::filesystem::create_directories(root / "mzip", ec);
  if (ec) {
    std::cerr << "make_seeds: cannot create " << root << ": " << ec.message()
              << "\n";
    return 1;
  }
  make_wire_seeds(root / "wire");
  make_mzip_seeds(root / "mzip");
  std::cout << "seed corpora written under " << root << "\n";
  return 0;
}
