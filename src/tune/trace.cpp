#include "tune/trace.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "array/region.hpp"

namespace mloc::tune {
namespace {

void append_double(std::string& out, double v) {
  // Shortest round-trip representation (%.17g always round-trips, and the
  // parser accepts any strtod-compatible spelling).
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Strict cursor parser for the trace schema — not a general JSON reader,
/// but accepts the full grammar this module emits, with arbitrary
/// whitespace and key order.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Status expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return corrupt_data(std::string("trace: expected '") + c + "' at byte " +
                          std::to_string(pos_));
    }
    ++pos_;
    return Status::ok();
  }

  Result<std::string> parse_string() {
    MLOC_RETURN_IF_ERROR(expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default:
            return corrupt_data("trace: unsupported string escape");
        }
      } else {
        out += c;
      }
    }
    MLOC_RETURN_IF_ERROR(expect('"'));
    return out;
  }

  Result<double> parse_double() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr == begin) {
      return corrupt_data("trace: bad number at byte " + std::to_string(pos_));
    }
    pos_ += static_cast<std::size_t>(ptr - begin);
    return v;
  }

  Result<bool> parse_bool() {
    skip_ws();
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    return corrupt_data("trace: expected boolean at byte " +
                        std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<Coord> parse_coord_array(Cursor& c, int* ndims) {
  Coord out{};
  MLOC_RETURN_IF_ERROR(c.expect('['));
  int n = 0;
  if (!c.peek_is(']')) {
    while (true) {
      MLOC_ASSIGN_OR_RETURN(double v, c.parse_double());
      if (v < 0 || v != std::floor(v)) {
        return corrupt_data("trace: coordinates must be non-negative ints");
      }
      if (n >= NDShape::kMaxDims) {
        return corrupt_data("trace: too many coordinate dimensions");
      }
      out[n++] = static_cast<std::uint32_t>(v);
      if (!c.peek_is(',')) break;
      MLOC_RETURN_IF_ERROR(c.expect(','));
    }
  }
  MLOC_RETURN_IF_ERROR(c.expect(']'));
  if (n == 0) return corrupt_data("trace: empty coordinate array");
  *ndims = n;
  return out;
}

Result<TracedQuery> parse_query(Cursor& c) {
  TracedQuery out;
  MLOC_RETURN_IF_ERROR(c.expect('{'));
  bool first = true;
  while (!c.peek_is('}')) {
    if (!first) MLOC_RETURN_IF_ERROR(c.expect(','));
    first = false;
    MLOC_ASSIGN_OR_RETURN(std::string key, c.parse_string());
    MLOC_RETURN_IF_ERROR(c.expect(':'));
    if (key == "var") {
      MLOC_ASSIGN_OR_RETURN(out.var, c.parse_string());
    } else if (key == "ranks") {
      MLOC_ASSIGN_OR_RETURN(double v, c.parse_double());
      if (v < 1 || v != std::floor(v)) {
        return corrupt_data("trace: ranks must be a positive integer");
      }
      out.num_ranks = static_cast<int>(v);
    } else if (key == "plod_level") {
      MLOC_ASSIGN_OR_RETURN(double v, c.parse_double());
      if (v < 1 || v > 7 || v != std::floor(v)) {
        return corrupt_data("trace: plod_level must be in [1,7]");
      }
      out.query.plod_level = static_cast<int>(v);
    } else if (key == "values_needed") {
      MLOC_ASSIGN_OR_RETURN(out.query.values_needed, c.parse_bool());
    } else if (key == "vc") {
      MLOC_RETURN_IF_ERROR(c.expect('['));
      MLOC_ASSIGN_OR_RETURN(double lo, c.parse_double());
      MLOC_RETURN_IF_ERROR(c.expect(','));
      MLOC_ASSIGN_OR_RETURN(double hi, c.parse_double());
      MLOC_RETURN_IF_ERROR(c.expect(']'));
      out.query.vc = ValueConstraint{lo, hi};
    } else if (key == "sc") {
      MLOC_RETURN_IF_ERROR(c.expect('{'));
      Coord lo{}, hi{};
      int lo_dims = 0, hi_dims = 0;
      bool inner_first = true;
      while (!c.peek_is('}')) {
        if (!inner_first) MLOC_RETURN_IF_ERROR(c.expect(','));
        inner_first = false;
        MLOC_ASSIGN_OR_RETURN(std::string bound, c.parse_string());
        MLOC_RETURN_IF_ERROR(c.expect(':'));
        if (bound == "lo") {
          MLOC_ASSIGN_OR_RETURN(lo, parse_coord_array(c, &lo_dims));
        } else if (bound == "hi") {
          MLOC_ASSIGN_OR_RETURN(hi, parse_coord_array(c, &hi_dims));
        } else {
          return corrupt_data("trace: unknown sc key \"" + bound + "\"");
        }
      }
      MLOC_RETURN_IF_ERROR(c.expect('}'));
      if (lo_dims == 0 || lo_dims != hi_dims) {
        return corrupt_data("trace: sc needs lo and hi of equal rank");
      }
      for (int d = 0; d < lo_dims; ++d) {
        if (lo[d] > hi[d]) return corrupt_data("trace: sc lo > hi");
      }
      out.query.sc = Region(lo_dims, lo, hi);
    } else {
      return corrupt_data("trace: unknown query key \"" + key + "\"");
    }
  }
  MLOC_RETURN_IF_ERROR(c.expect('}'));
  if (out.var.empty()) return corrupt_data("trace: query without a var");
  return out;
}

}  // namespace

std::string QueryTrace::to_json() const {
  std::string out = "{\"queries\":[";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const TracedQuery& tq = queries[i];
    if (i > 0) out += ",";
    out += "\n{\"var\":\"" + tq.var + "\"";
    out += ",\"ranks\":" + std::to_string(tq.num_ranks);
    out += ",\"plod_level\":" + std::to_string(tq.query.plod_level);
    out += ",\"values_needed\":";
    out += tq.query.values_needed ? "true" : "false";
    if (tq.query.vc.has_value()) {
      out += ",\"vc\":[";
      append_double(out, tq.query.vc->lo);
      out += ",";
      append_double(out, tq.query.vc->hi);
      out += "]";
    }
    if (tq.query.sc.has_value()) {
      const Region& r = *tq.query.sc;
      out += ",\"sc\":{\"lo\":[";
      for (int d = 0; d < r.ndims(); ++d) {
        if (d > 0) out += ",";
        out += std::to_string(r.lo(d));
      }
      out += "],\"hi\":[";
      for (int d = 0; d < r.ndims(); ++d) {
        if (d > 0) out += ",";
        out += std::to_string(r.hi(d));
      }
      out += "]}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Result<QueryTrace> QueryTrace::from_json(std::string_view text) {
  Cursor c(text);
  QueryTrace out;
  MLOC_RETURN_IF_ERROR(c.expect('{'));
  MLOC_ASSIGN_OR_RETURN(std::string key, c.parse_string());
  if (key != "queries") return corrupt_data("trace: expected \"queries\"");
  MLOC_RETURN_IF_ERROR(c.expect(':'));
  MLOC_RETURN_IF_ERROR(c.expect('['));
  if (!c.peek_is(']')) {
    while (true) {
      MLOC_ASSIGN_OR_RETURN(TracedQuery q, parse_query(c));
      out.queries.push_back(std::move(q));
      if (!c.peek_is(',')) break;
      MLOC_RETURN_IF_ERROR(c.expect(','));
    }
  }
  MLOC_RETURN_IF_ERROR(c.expect(']'));
  MLOC_RETURN_IF_ERROR(c.expect('}'));
  if (!c.at_end()) return corrupt_data("trace: trailing content");
  return out;
}

}  // namespace mloc::tune
