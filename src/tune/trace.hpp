// Workload traces — the recorded query mix the layout autotuner replays.
//
// The tuner's objective is not an abstract figure of merit: it is the
// modeled I/O cost of *this installation's* queries (paper §III-A-2's
// "user-defined priorities", made concrete). A QueryTrace captures that
// workload as a list of single-variable queries with their rank counts,
// serializable to a small line-oriented JSON document so traces can be
// recorded in production (QueryService::set_trace_recorder), committed to
// CI, or written by hand.
//
// The JSON form:
//   {"queries":[
//     {"var":"temp","ranks":2,"plod_level":7,"values_needed":true,
//      "vc":[0.2,0.8],"sc":{"lo":[0,0],"hi":[16,16]}}]}
// `vc` and `sc` are optional; omitted fields take Query defaults.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "query/query.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace mloc::tune {

/// One recorded query: everything needed to re-plan it against a
/// candidate layout. Multi-variable selections are decomposed by the
/// recorder into their single-variable passes (the tuner optimizes one
/// variable at a time).
struct TracedQuery {
  std::string var;
  Query query;
  int num_ranks = 1;
};

struct QueryTrace {
  std::vector<TracedQuery> queries;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static Result<QueryTrace> from_json(std::string_view text);
};

/// Thread-safe trace sink; the serving layer calls record() per dispatched
/// query, an operator snapshots and serializes the result.
class TraceRecorder {
 public:
  void record(TracedQuery q) MLOC_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    queries_.push_back(std::move(q));
  }

  [[nodiscard]] QueryTrace snapshot() const MLOC_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return QueryTrace{queries_};
  }

  [[nodiscard]] std::size_t size() const MLOC_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return queries_.size();
  }

 private:
  mutable sync::MutexHandle mu_;
  std::vector<TracedQuery> queries_ MLOC_GUARDED_BY(mu_);
};

}  // namespace mloc::tune
