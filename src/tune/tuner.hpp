// Layout autotuner — planner-driven search over per-variable layouts.
//
// The multi-level layout gives every variable independent knobs (bin
// count, level order, curve, chunk shape); the right setting depends on
// the workload, and the paper leaves the choice to "user-defined
// priorities". mloc_tune closes that loop mechanically: replay a recorded
// QueryTrace through QueryPlanner::estimate against candidate layouts and
// recommend the one with the lowest total modeled I/O.
//
// The oracle is exact, not a proxy: each candidate layout is actually
// ingested into a scratch in-memory store (same PFS cost model as the
// source) and every traced query is planned against it — the same
// side-effect-free ReadPlan costing the engine itself uses, so on a cold
// cache the predicted bytes/seeks match what execution would do
// (bench_tune asserts this). The search is coordinate descent over the
// axes (bins, order, curve incl. sampled generalized-Morton interleaves,
// chunk shape) with seeded random restarts; recommend_order seeds the
// level-order axis from the trace's workload mix.
#pragma once

#include <string>
#include <vector>

#include "core/store.hpp"
#include "tune/trace.hpp"
#include "util/status.hpp"

namespace mloc::tune {

/// Candidate axes the coordinate descent explores. Empty vectors fall back
/// to built-in defaults derived from the grid.
struct SearchSpace {
  std::vector<int> bin_counts;           ///< default {4,8,16,32,64,128}
  std::vector<NDShape> chunk_shapes;     ///< default: powers of two per axis
  /// Hierarchical-index fan-out axis (0 = no .hbx, >=2 builds the tree at
  /// ingest). Default {0, 2, 4, 8}.
  std::vector<int> index_fanouts;
  /// Generalized-Morton interleave patterns sampled per chunk-shape
  /// candidate (on top of row-major/Morton/Hilbert/canonical).
  int interleave_samples = 3;
  int random_restarts = 2;               ///< descent restarts from random points
  std::uint64_t seed = 7;                ///< restart + interleave sampling seed
  int max_rounds = 8;                    ///< descent rounds per start point
};

struct TuneResult {
  std::string var;
  VariableLayout baseline;          ///< the variable's current layout
  VariableLayout recommended;
  double predicted_cost_default = 0.0;  ///< trace cost under `baseline`
  double predicted_cost_tuned = 0.0;    ///< trace cost under `recommended`
  int evaluations = 0;              ///< candidate layouts actually ingested
  int trace_queries = 0;            ///< queries of the trace touching `var`
};

/// Tune one variable of `source` against `trace` (only entries whose var
/// matches are replayed; InvalidArgument when none do). The source store
/// is only read — candidates are ingested into private scratch storage.
/// For lossy double codecs the variable is reconstructed at the stored
/// precision, which is exactly what a re-ingest would see.
[[nodiscard]] Result<TuneResult> tune_variable(const MlocStore& source,
                                               const std::string& var,
                                               const QueryTrace& trace,
                                               const SearchSpace& space = {});

/// JSON report over per-variable results (stable keys, jq-friendly).
[[nodiscard]] std::string tune_report_json(
    const std::vector<TuneResult>& results);

}  // namespace mloc::tune
