#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "array/chunking.hpp"
#include "array/region.hpp"
#include "planner/planner.hpp"
#include "sfc/hilbert.hpp"
#include "util/rng.hpp"

namespace mloc::tune {
namespace {

/// One point of the curve axis: a kind plus, for generalized Morton, how to
/// materialize a pattern for the current chunk lattice. Patterns depend on
/// the lattice, so sampled candidates are identified by their sampling seed
/// and regenerated whenever the chunk-shape axis moves.
struct CurveCandidate {
  sfc::CurveKind kind = sfc::CurveKind::kHilbert;
  bool canonical = false;        ///< generalized: canonical interleave
  std::uint64_t sample_seed = 0; ///< generalized: shuffle seed (non-canonical)
};

/// Random coverage-valid interleave: give each dimension exactly the bits
/// the lattice needs, then shuffle the slot order.
std::string sample_interleave(const NDShape& lattice, std::uint64_t seed) {
  static constexpr char kDims[] = {'x', 'y', 'z', 'w'};
  std::string slots;
  for (int d = 0; d < lattice.ndims(); ++d) {
    int bits = 1;
    while ((1u << bits) < lattice.extent(d)) ++bits;
    slots.append(static_cast<std::size_t>(bits), kDims[d]);
  }
  Rng rng(seed);
  for (std::size_t i = slots.size(); i > 1; --i) {
    std::swap(slots[i - 1], slots[rng.next_below(i)]);
  }
  return slots;
}

Result<std::string> materialize_interleave(const CurveCandidate& c,
                                           const NDShape& lattice) {
  if (c.kind != sfc::CurveKind::kGeneralizedMorton) return std::string();
  if (c.canonical) return sfc::canonical_interleave(lattice);
  std::string pattern = sample_interleave(lattice, c.sample_seed);
  MLOC_RETURN_IF_ERROR(sfc::validate_interleave(pattern, lattice));
  return pattern;
}

/// Reconstruct the variable's grid from the source store: one whole-domain
/// full-precision value query. Lossless codecs reproduce the original
/// bits; lossy ones yield the stored approximation — exactly the data a
/// re-ingest under a new layout would start from.
Result<Grid> reconstruct_grid(const MlocStore& source,
                              const std::string& var) {
  const NDShape& shape = source.config().shape;
  Query q;
  q.sc = Region::whole(shape);
  q.values_needed = true;
  MLOC_ASSIGN_OR_RETURN(QueryResult res, source.execute(var, q));
  if (res.positions.size() != shape.volume()) {
    return corrupt_data("tune: whole-domain query returned " +
                        std::to_string(res.positions.size()) + " of " +
                        std::to_string(shape.volume()) + " cells");
  }
  std::vector<double> values(shape.volume(), 0.0);
  for (std::size_t i = 0; i < res.positions.size(); ++i) {
    values[res.positions[i]] = res.values[i];
  }
  return Grid(shape, std::move(values));
}

/// Total modeled I/O seconds of the trace under one candidate layout:
/// ingest into private scratch storage and replay every query through the
/// planner's exact-plan oracle.
Result<double> trace_cost(const pfs::PfsConfig& pfs_cfg, const NDShape& shape,
                          const std::string& var, const Grid& grid,
                          const VariableLayout& layout,
                          const std::vector<const TracedQuery*>& queries) {
  pfs::PfsStorage scratch(pfs_cfg);
  MlocConfig cfg;
  cfg.shape = shape;
  cfg.layout = layout;
  MLOC_ASSIGN_OR_RETURN(MlocStore store,
                        MlocStore::create(&scratch, "tune-scratch", cfg));
  MLOC_RETURN_IF_ERROR(store.write_variable(var, grid, layout));
  planner::QueryPlanner planner(&store);
  double total = 0.0;
  for (const TracedQuery* tq : queries) {
    MLOC_ASSIGN_OR_RETURN(planner::CostEstimate est,
                          planner.estimate(var, tq->query, tq->num_ranks));
    total += est.est_io_seconds;
  }
  return total;
}

std::string layout_key(const VariableLayout& layout) {
  ByteWriter w;
  layout.serialize(w);
  Bytes b = std::move(w).take();
  return {b.begin(), b.end()};
}

std::vector<int> default_bin_counts(const NDShape& shape) {
  std::vector<int> out;
  for (int b : {4, 8, 16, 32, 64, 128}) {
    if (static_cast<std::uint64_t>(b) * 4 <= shape.volume()) out.push_back(b);
  }
  if (out.empty()) out.push_back(2);
  return out;
}

std::vector<NDShape> default_chunk_shapes(const NDShape& shape) {
  // Power-of-two cubes no larger than the grid; always at least two
  // chunks along the longest axis so the curve axis has something to
  // reorder.
  std::vector<NDShape> out;
  for (std::uint32_t side : {8u, 16u, 32u, 64u}) {
    Coord c{};
    bool fits = true, splits = false;
    for (int d = 0; d < shape.ndims(); ++d) {
      if (side > shape.extent(d)) fits = false;
      if (side * 2 <= shape.extent(d)) splits = true;
      c[d] = side;
    }
    if (fits && splits) out.push_back(NDShape(shape.ndims(), c));
  }
  if (out.empty()) {
    Coord c{};
    for (int d = 0; d < shape.ndims(); ++d) {
      c[d] = std::max(1u, shape.extent(d) / 2);
    }
    out.push_back(NDShape(shape.ndims(), c));
  }
  return out;
}

/// Workload mix of the trace, for seeding the level-order axis with the
/// closed-form advisor before the planner-exact search refines it.
planner::WorkloadProfile profile_of(
    const std::vector<const TracedQuery*>& queries) {
  planner::WorkloadProfile w;
  int reduced_level_sum = 0, reduced_n = 0;
  for (const TracedQuery* tq : queries) {
    if (!tq->query.values_needed) {
      w.region_queries += 1.0;
    } else if (tq->query.plod_level < 7) {
      w.value_reduced += 1.0;
      reduced_level_sum += tq->query.plod_level;
      ++reduced_n;
    } else {
      w.value_full_precision += 1.0;
    }
  }
  if (reduced_n > 0) w.reduced_level = reduced_level_sum / reduced_n;
  return w;
}

void append_layout_json(std::string& out, const VariableLayout& l) {
  out += "{\"order\":\"" + std::string(level_order_name(l.order)) + "\",";
  out += "\"curve\":\"" + std::string(sfc::curve_kind_name(l.curve)) + "\",";
  out += "\"interleave\":\"" + l.interleave + "\",";
  out += "\"codec\":\"" + l.codec + "\",";
  out += "\"chunk_shape\":\"" + l.chunk_shape.to_string() + "\",";
  out += "\"num_bins\":" + std::to_string(l.num_bins) + ",";
  out += "\"index_fanout\":" + std::to_string(l.index_fanout) + ",";
  out += "\"sample_stride\":" + std::to_string(l.sample_stride) + "}";
}

void append_cost(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

Result<TuneResult> tune_variable(const MlocStore& source,
                                 const std::string& var,
                                 const QueryTrace& trace,
                                 const SearchSpace& space) {
  MLOC_ASSIGN_OR_RETURN(const VariableLayout* baseline,
                        source.variable_layout(var));

  std::vector<const TracedQuery*> queries;
  for (const TracedQuery& tq : trace.queries) {
    if (tq.var == var) queries.push_back(&tq);
  }
  if (queries.empty()) {
    return invalid_argument("tune: trace has no queries for variable " + var);
  }

  const NDShape& shape = source.config().shape;
  MLOC_ASSIGN_OR_RETURN(Grid grid, reconstruct_grid(source, var));

  // ---- candidate axes ------------------------------------------------
  std::vector<int> bins =
      space.bin_counts.empty() ? default_bin_counts(shape) : space.bin_counts;
  if (std::find(bins.begin(), bins.end(), baseline->num_bins) == bins.end()) {
    bins.push_back(baseline->num_bins);
  }
  std::vector<NDShape> chunks = space.chunk_shapes.empty()
                                    ? default_chunk_shapes(shape)
                                    : space.chunk_shapes;
  if (std::find(chunks.begin(), chunks.end(), baseline->chunk_shape) ==
      chunks.end()) {
    chunks.push_back(baseline->chunk_shape);
  }
  std::vector<int> fanouts = space.index_fanouts.empty()
                                 ? std::vector<int>{0, 2, 4, 8}
                                 : space.index_fanouts;
  if (std::find(fanouts.begin(), fanouts.end(), baseline->index_fanout) ==
      fanouts.end()) {
    fanouts.push_back(baseline->index_fanout);
  }

  // Level-order axis, advisor-recommended order first so descent starts
  // each round from the closed-form model's pick.
  std::vector<LevelOrder> orders = {LevelOrder::kVMS, LevelOrder::kVSM};
  {
    MLOC_ASSIGN_OR_RETURN(LevelOrder advised,
                          planner::recommend_order(profile_of(queries)));
    if (advised == LevelOrder::kVSM) std::swap(orders[0], orders[1]);
  }

  Rng seed_rng(space.seed);
  std::vector<CurveCandidate> curves = {
      {sfc::CurveKind::kHilbert, false, 0},
      {sfc::CurveKind::kMorton, false, 0},
      {sfc::CurveKind::kRowMajor, false, 0},
      {sfc::CurveKind::kGeneralizedMorton, true, 0},
  };
  for (int i = 0; i < space.interleave_samples; ++i) {
    curves.push_back(
        {sfc::CurveKind::kGeneralizedMorton, false, seed_rng.next_u64()});
  }

  // ---- memoized oracle ----------------------------------------------
  const pfs::PfsConfig& pfs_cfg = source.pfs_config();
  std::map<std::string, double> memo;
  int evaluations = 0;
  auto cost_of = [&](const VariableLayout& layout) -> Result<double> {
    const std::string key = layout_key(layout);
    if (auto it = memo.find(key); it != memo.end()) return it->second;
    MLOC_ASSIGN_OR_RETURN(
        double c, trace_cost(pfs_cfg, shape, var, grid, layout, queries));
    memo.emplace(key, c);
    ++evaluations;
    return c;
  };

  MLOC_ASSIGN_OR_RETURN(const double default_cost, cost_of(*baseline));

  // Apply a curve candidate to a layout whose chunk shape is already set.
  auto with_curve = [&](VariableLayout l,
                        const CurveCandidate& c) -> Result<VariableLayout> {
    const ChunkGrid cg(shape, l.chunk_shape);
    l.curve = c.kind;
    MLOC_ASSIGN_OR_RETURN(l.interleave,
                          materialize_interleave(c, cg.lattice_shape()));
    return l;
  };

  // ---- coordinate descent with random restarts -----------------------
  VariableLayout best = *baseline;
  double best_cost = default_cost;

  const int starts = 1 + std::max(0, space.random_restarts);
  for (int s = 0; s < starts; ++s) {
    VariableLayout cur = *baseline;  // codec and stride stay fixed
    if (s > 0) {
      Rng r(seed_rng.next_u64());
      cur.num_bins = bins[r.next_below(bins.size())];
      cur.chunk_shape = chunks[r.next_below(chunks.size())];
      cur.order = orders[r.next_below(orders.size())];
      cur.index_fanout = fanouts[r.next_below(fanouts.size())];
      MLOC_ASSIGN_OR_RETURN(
          cur, with_curve(cur, curves[r.next_below(curves.size())]));
    }
    auto cur_cost_r = cost_of(cur);
    if (!cur_cost_r.is_ok()) continue;  // degenerate random start
    double cur_cost = cur_cost_r.value();

    for (int round = 0; round < space.max_rounds; ++round) {
      bool improved = false;

      for (LevelOrder o : orders) {
        VariableLayout cand = cur;
        cand.order = o;
        MLOC_ASSIGN_OR_RETURN(double c, cost_of(cand));
        if (c < cur_cost) { cur = cand; cur_cost = c; improved = true; }
      }
      for (int b : bins) {
        VariableLayout cand = cur;
        cand.num_bins = b;
        MLOC_ASSIGN_OR_RETURN(double c, cost_of(cand));
        if (c < cur_cost) { cur = cand; cur_cost = c; improved = true; }
      }
      for (const NDShape& ch : chunks) {
        VariableLayout cand = cur;
        cand.chunk_shape = ch;
        if (cand.curve == sfc::CurveKind::kGeneralizedMorton) {
          // The pattern is lattice-specific: re-canonicalize under the new
          // lattice (sampled refinement happens on the curve axis below).
          const ChunkGrid cg(shape, ch);
          cand.interleave = sfc::canonical_interleave(cg.lattice_shape());
        }
        MLOC_ASSIGN_OR_RETURN(double c, cost_of(cand));
        if (c < cur_cost) { cur = cand; cur_cost = c; improved = true; }
      }
      for (const CurveCandidate& cc : curves) {
        MLOC_ASSIGN_OR_RETURN(VariableLayout cand, with_curve(cur, cc));
        MLOC_ASSIGN_OR_RETURN(double c, cost_of(cand));
        if (c < cur_cost) { cur = cand; cur_cost = c; improved = true; }
      }
      for (int f : fanouts) {
        VariableLayout cand = cur;
        cand.index_fanout = f;
        MLOC_ASSIGN_OR_RETURN(double c, cost_of(cand));
        if (c < cur_cost) { cur = cand; cur_cost = c; improved = true; }
      }

      if (!improved) break;
    }
    if (cur_cost < best_cost) {
      best = cur;
      best_cost = cur_cost;
    }
  }

  TuneResult out;
  out.var = var;
  out.baseline = *baseline;
  out.recommended = best;
  out.predicted_cost_default = default_cost;
  out.predicted_cost_tuned = best_cost;
  out.evaluations = evaluations;
  out.trace_queries = static_cast<int>(queries.size());
  return out;
}

std::string tune_report_json(const std::vector<TuneResult>& results) {
  std::string out = "{\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TuneResult& r = results[i];
    if (i > 0) out += ",";
    out += "\n{\"var\":\"" + r.var + "\",";
    out += "\"trace_queries\":" + std::to_string(r.trace_queries) + ",";
    out += "\"evaluations\":" + std::to_string(r.evaluations) + ",";
    out += "\"predicted_cost_default\":";
    append_cost(out, r.predicted_cost_default);
    out += ",\"predicted_cost_tuned\":";
    append_cost(out, r.predicted_cost_tuned);
    out += ",\"baseline\":";
    append_layout_json(out, r.baseline);
    out += ",\"recommended\":";
    append_layout_json(out, r.recommended);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mloc::tune
