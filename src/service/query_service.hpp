// Concurrent query service — the serving layer over one MlocStore.
//
// The paper's access protocol (§III-D) runs one-shot cold queries; a
// production deployment instead serves many concurrent clients whose
// exploratory queries revisit the same regions and precision prefixes.
// QueryService provides that layer:
//
//   * sessions — clients open a session, submit queries against it, and
//     read per-session aggregates; closing a session stops new submissions
//     while in-flight queries finish normally;
//   * admission control — at most `max_queue_depth` queries wait at once;
//     submissions beyond it are rejected immediately (ResourceExhausted)
//     so overload produces fast feedback instead of unbounded queues;
//   * bounded concurrency — execution happens on a parallel::ThreadPool of
//     `num_workers` threads (the max-in-flight limit);
//   * scheduling — FIFO by default, or highest-priority-first (FIFO among
//     equals) with SchedulingPolicy::kPriority;
//   * deadlines/cancellation — a query whose deadline passes while queued
//     (or whose execution overruns it) resolves to DeadlineExceeded; a
//     queued query can be cancelled by id;
//   * a shared FragmentCache attached to the store as FragmentProvider, so
//     decompressed fragments are amortized across queries and clients;
//   * per-query ServiceStats (queue wait, cache hits/misses, bytes saved,
//     modeled vs measured time) plus service- and session-level aggregates.
//
// Thread-safety: every public method may be called from any thread.
// MlocStore::execute is const and reads only immutable state, so worker
// threads run queries concurrently without a store lock; the cache is
// internally sharded and locked.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/store.hpp"
#include "parallel/runtime.hpp"
#include "service/fragment_cache.hpp"
#include "tune/trace.hpp"
#include "util/sync.hpp"

namespace mloc::service {

using SessionId = std::uint64_t;
using QueryId = std::uint64_t;

enum class SchedulingPolicy : std::uint8_t {
  kFifo = 0,      ///< strict submission order
  kPriority = 1,  ///< highest Request::priority first, FIFO among equals
};

struct ServiceConfig {
  int num_workers = 4;               ///< max queries executing at once
  std::size_t max_queue_depth = 256; ///< admission limit on waiting queries
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  FragmentCache::Config cache;       ///< budget 0 disables the cache
  double default_deadline_s = 0.0;   ///< 0 = no deadline
  int default_num_ranks = 1;         ///< emulated ranks per query
  /// Write-path options applied by QueryService::ingest (pipeline threads,
  /// write-behind flushing).
  ingest::WriteOptions ingest;
  /// Start with dispatch suspended; no query runs until resume(). Used by
  /// tests and maintenance windows to stage a queue deterministically.
  bool start_paused = false;
};

/// Multi-variable selection carried by a Request (paper §III-D-4): each
/// predicate runs as a region-only pass, the position bitmaps are combined,
/// and `fetch_var` (optional) is retrieved at the surviving positions.
struct MultivarSpec {
  std::vector<MlocStore::VarConstraint> preds;
  MlocStore::Combine combine = MlocStore::Combine::kAnd;
  std::string fetch_var;  ///< empty = positions only
};

/// One query submission. Unset fields fall back to the service defaults.
struct Request {
  std::string var;
  Query query;
  /// When set, the request is a multi-variable selection: `multivar` is
  /// executed instead of (var, query.vc, query.sc); query.plod_level still
  /// selects the precision of fetched values.
  std::optional<MultivarSpec> multivar;
  int priority = 0;        ///< larger runs earlier under kPriority
  double deadline_s = -1;  ///< seconds from submission; <0 = default, 0 = none
  int num_ranks = 0;       ///< 0 = service default
};

/// Per-query serving metrics, returned alongside the result.
struct ServiceStats {
  QueryId query_id = 0;
  SessionId session = 0;
  double queue_wait_s = 0.0;  ///< submission -> dispatch (wall clock)
  double exec_wall_s = 0.0;   ///< measured wall time inside the store
  double modeled_s = 0.0;     ///< QueryResult::times.total(): modeled io+cpu
  CacheStats cache;           ///< fragment-cache accounting for this query
  ExecStats exec;             ///< engine accounting: bytes planned/read/
                              ///< cached, extents before/after coalescing
  /// Set by the wire server when the response payload travelled through a
  /// shared-memory ring slot instead of a TCP frame. Always false for
  /// in-process callers.
  bool via_shm = false;
};

/// Everything a client gets back for one submission.
struct Response {
  Status status;       ///< ok, or why the query produced no result
  QueryResult result;  ///< valid only when status.is_ok()
  ServiceStats stats;
};

/// A submitted query: its id (usable with cancel()) and pending response.
struct Submission {
  QueryId id = 0;
  std::future<Response> response;
};

/// Service-wide counters (a consistent snapshot under one lock).
///
/// Invariant, visible in every snapshot:
///   submitted == completed + failed + expired + cancelled
///                + queued + executing
/// `submitted` counts only *admitted* queries; refusals (unknown/closed
/// session, queue full, shutdown) count in `rejected` alone. The `queued`
/// and `executing` gauges track work currently inside the service, so a
/// reader can tell a quiet service from one mid-dispatch. (Before the wire
/// server landed, `submitted` also counted queue-full refusals and there
/// were no gauges, so concurrent readers could never reconcile the
/// counters against each other.)
struct AggregateStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< resolved ok
  std::uint64_t failed = 0;      ///< store returned an error
  std::uint64_t rejected = 0;    ///< refused at admission (queue full/closed)
  std::uint64_t expired = 0;     ///< deadline passed
  std::uint64_t cancelled = 0;
  std::uint64_t queued = 0;      ///< gauge: admitted, not yet dispatched
  std::uint64_t executing = 0;   ///< gauge: dispatched, not yet resolved
  CacheStats cache;              ///< summed per-query cache stats
  ExecStats exec;                ///< summed per-query engine stats
  double total_queue_wait_s = 0.0;
  double total_exec_wall_s = 0.0;
  double total_modeled_s = 0.0;
  std::size_t peak_queue_depth = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t ingests = 0;          ///< successful QueryService::ingest calls
  std::uint64_t ingest_failures = 0;
  /// Per-transport response delivery, folded in by the wire server via
  /// record_transport() — outside the submitted invariant above (a
  /// response is counted here only once a front end delivers it, and
  /// in-process callers never do). Bytes count the response payload, not
  /// framing.
  std::uint64_t responses_shm = 0;
  std::uint64_t responses_tcp = 0;
  std::uint64_t bytes_shm = 0;
  std::uint64_t bytes_tcp = 0;
  /// Cumulative write-path accounting (MlocStore::ingest_stats snapshot).
  ingest::IngestStats ingest;
};

/// Per-session slice of the aggregates. Mirrors the service-wide
/// invariant: submitted counts admitted queries only (and equals
/// completed + failed + in-flight), refusals land in `rejected`.
struct SessionStats {
  std::string label;
  bool open = false;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;    ///< any non-ok resolution after admission
  std::uint64_t rejected = 0;  ///< refused at admission (queue full/closed)
  CacheStats cache;
  ExecStats exec;
  double total_queue_wait_s = 0.0;
  double total_modeled_s = 0.0;
};

class QueryService {
 public:
  /// Takes ownership of the store; `cfg.cache.budget_bytes > 0` attaches a
  /// FragmentCache to it as the FragmentProvider.
  explicit QueryService(MlocStore store, ServiceConfig cfg = {});

  /// Fails queued-but-undispatched queries with FailedPrecondition, then
  /// drains in-flight queries to completion.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  Result<SessionId> open_session(std::string label = "")
      MLOC_EXCLUDES(mutex_);
  Status close_session(SessionId id) MLOC_EXCLUDES(mutex_);

  /// Submit a query. Always returns a Submission; admission rejections and
  /// execution errors surface through Response::status.
  Submission submit(SessionId session, Request req) MLOC_EXCLUDES(mutex_);

  /// Invoked exactly once per submit_async call with the final Response —
  /// from a worker thread on normal resolution, from the submitting thread
  /// on admission rejection, or from the destructor on shutdown. No service
  /// lock is held during the call; re-entering the service (e.g. cancel)
  /// from inside the callback is allowed.
  using ResponseCallback = std::function<void(Response)>;

  /// Callback-flavored submission for event-driven callers (the wire
  /// server): no future, no blocked thread per in-flight query. Returns the
  /// QueryId usable with cancel(), or 0 when the request was rejected at
  /// admission (the callback still fires with the rejection Response).
  QueryId submit_async(SessionId session, Request req, ResponseCallback cb)
      MLOC_EXCLUDES(mutex_);

  /// Convenience: submit and block for the response.
  Response run(SessionId session, Request req);

  /// Cancel a queued query. Fails with NotFound once it has been
  /// dispatched (running queries are not interrupted).
  Status cancel(QueryId id) MLOC_EXCLUDES(mutex_);

  /// Write (or re-write) a variable through the parallel ingestion
  /// pipeline with the configured ServiceConfig::ingest options, while
  /// queries keep executing. Runs on the caller's thread — the query
  /// worker pool is never blocked by a write — and the store serializes
  /// concurrent ingests internally. On a re-ingest the fragment cache
  /// entries of the old generation are dropped (epoch bump + erase) so
  /// later queries see only fresh data.
  Status ingest(const std::string& var, const Grid& grid)
      MLOC_EXCLUDES(mutex_);

  /// Suspend/resume dispatch. pause() lets already-dispatched queries
  /// finish but keeps new arrivals queued; admission control still applies.
  void pause() MLOC_EXCLUDES(mutex_);
  void resume() MLOC_EXCLUDES(mutex_);

  /// Fold one delivered response into the per-transport aggregates
  /// (AggregateStats::responses_shm/...). Called by a front end (the wire
  /// server) after it has chosen how to ship the response; `payload_bytes`
  /// is the response payload size on the wire or in the ring.
  void record_transport(bool via_shm, std::uint64_t payload_bytes)
      MLOC_EXCLUDES(mutex_);

  [[nodiscard]] AggregateStats aggregate() const MLOC_EXCLUDES(mutex_);
  [[nodiscard]] Result<SessionStats> session_stats(SessionId id) const
      MLOC_EXCLUDES(mutex_);
  [[nodiscard]] FragmentCache::Stats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] const MlocStore& store() const noexcept { return store_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  /// Attach a workload-trace sink (nullptr detaches). Every successfully
  /// executed single-variable query is recorded with its effective rank
  /// count — the exact input mloc_tune replays. The recorder is not owned
  /// and must outlive the service (or be detached first); multi-variable
  /// selections are not recorded (the tuner works per variable).
  void set_trace_recorder(tune::TraceRecorder* recorder) noexcept {
    trace_recorder_.store(recorder, std::memory_order_release);
  }

 private:
  struct PendingQuery {
    QueryId id = 0;
    SessionId session = 0;
    Request req;
    std::promise<Response> promise;   ///< used when `callback` is empty
    ResponseCallback callback;        ///< set by submit_async
    Stopwatch queued;  ///< started at submission; read at dispatch
    double deadline_s = 0.0;  ///< 0 = none, relative to submission
    bool cancelled = false;
  };
  struct SessionState {
    SessionStats stats;
  };

  /// Outcome of the locked admission phase.
  struct AdmitDecision {
    Status reject;         ///< ok = admitted
    bool dispatch = false; ///< kick a pool worker (admitted while running)
    QueryId id = 0;        ///< assigned id (0 on rejection)
  };

  /// Shared admission path behind submit/submit_async: run admission
  /// control, enqueue or resolve a rejection, kick a worker.
  QueryId admit(SessionId session, Request req,
                std::unique_ptr<PendingQuery> p) MLOC_EXCLUDES(mutex_);
  /// Locked admission phase: validate the session, apply queue-depth
  /// control, and either enqueue `p` (consumed) or leave it for the caller
  /// to resolve with the rejection. Callers hold the lock; rejection
  /// resolution and the pool kick happen unlocked.
  AdmitDecision admit_locked(SessionId session, Request req,
                             std::unique_ptr<PendingQuery>& p)
      MLOC_REQUIRES(mutex_);
  /// Worker-thread body: pop the scheduled pending query and execute it.
  void dispatch_one() MLOC_EXCLUDES(mutex_);
  /// Locked scheduling phase of dispatch_one: pick the next query under
  /// the configured policy, move the queued->executing gauges.
  std::unique_ptr<PendingQuery> pop_scheduled_locked() MLOC_REQUIRES(mutex_);
  /// Resolve a query and fold its stats into the aggregates.
  void finish(std::unique_ptr<PendingQuery> p, Response resp)
      MLOC_EXCLUDES(mutex_);
  /// Locked stats phase of finish(): fold one resolution into the service
  /// and session aggregates. The response delivery happens unlocked.
  void fold_stats_locked(const PendingQuery& p, const Response& resp)
      MLOC_REQUIRES(mutex_);

  ServiceConfig cfg_;
  MlocStore store_;
  FragmentCache cache_;
  /// Optional workload sink, swapped atomically (readers are worker
  /// threads mid-dispatch; no lock needed for a pointer load).
  std::atomic<tune::TraceRecorder*> trace_recorder_{nullptr};

  mutable sync::Mutex mutex_;
  std::deque<std::unique_ptr<PendingQuery>> pending_ MLOC_GUARDED_BY(mutex_);
  /// queued while paused (no pool task yet)
  std::size_t undispatched_ MLOC_GUARDED_BY(mutex_) = 0;
  bool paused_ MLOC_GUARDED_BY(mutex_) = false;
  bool shutdown_ MLOC_GUARDED_BY(mutex_) = false;
  QueryId next_query_ MLOC_GUARDED_BY(mutex_) = 1;
  SessionId next_session_ MLOC_GUARDED_BY(mutex_) = 1;
  std::map<SessionId, SessionState> sessions_ MLOC_GUARDED_BY(mutex_);
  AggregateStats agg_ MLOC_GUARDED_BY(mutex_);

  /// Declared last: its destructor drains worker tasks that touch the
  /// members above, so it must be destroyed first.
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace mloc::service
