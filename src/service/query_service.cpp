#include "service/query_service.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace mloc::service {

QueryService::QueryService(MlocStore store, ServiceConfig cfg)
    : cfg_(cfg),
      store_(std::move(store)),
      cache_(cfg.cache),
      paused_(cfg.start_paused) {
  MLOC_CHECK(cfg_.num_workers >= 1);
  MLOC_CHECK(cfg_.max_queue_depth >= 1);
  if (cfg_.cache.budget_bytes > 0) {
    store_.set_fragment_provider(&cache_);
  }
  pool_ = std::make_unique<parallel::ThreadPool>(cfg_.num_workers);
}

QueryService::~QueryService() {
  std::deque<std::unique_ptr<PendingQuery>> orphans;
  {
    sync::MutexLock lock(mutex_);
    shutdown_ = true;
    orphans.swap(pending_);
    agg_.queued -= orphans.size();
  }
  for (auto& p : orphans) {
    Response resp;
    resp.status = failed_precondition("service shutting down");
    resp.stats.query_id = p->id;
    resp.stats.session = p->session;
    resp.stats.queue_wait_s = p->queued.seconds();
    if (p->callback) {
      p->callback(std::move(resp));
    } else {
      p->promise.set_value(std::move(resp));
    }
  }
  // pool_ destruction drains in-flight dispatch tasks; they find an empty
  // queue and return.
}

Result<SessionId> QueryService::open_session(std::string label) {
  sync::MutexLock lock(mutex_);
  if (shutdown_) return failed_precondition("service shutting down");
  const SessionId id = next_session_++;
  SessionState& s = sessions_[id];
  s.stats.label = std::move(label);
  s.stats.open = true;
  ++agg_.sessions_opened;
  ++agg_.sessions_open;
  return id;
}

Status QueryService::close_session(SessionId id) {
  sync::MutexLock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return not_found("no such session");
  if (!it->second.stats.open) {
    return failed_precondition("session already closed");
  }
  it->second.stats.open = false;
  --agg_.sessions_open;
  return Status::ok();
}

QueryService::AdmitDecision QueryService::admit_locked(
    SessionId session, Request req, std::unique_ptr<PendingQuery>& p) {
  AdmitDecision out;
  auto it = sessions_.find(session);
  if (shutdown_) {
    out.reject = failed_precondition("service shutting down");
  } else if (it == sessions_.end()) {
    out.reject = not_found("no such session");
  } else if (!it->second.stats.open) {
    out.reject = failed_precondition("session closed");
  } else if (pending_.size() >= cfg_.max_queue_depth) {
    out.reject = resource_exhausted("admission queue full");
  }
  if (out.reject.is_ok()) {
    ++agg_.submitted;
    ++agg_.queued;
    ++it->second.stats.submitted;
    p->id = out.id = next_query_++;
    p->deadline_s =
        req.deadline_s < 0 ? cfg_.default_deadline_s : req.deadline_s;
    p->req = std::move(req);
    pending_.push_back(std::move(p));
    agg_.peak_queue_depth = std::max(agg_.peak_queue_depth, pending_.size());
    if (paused_) {
      ++undispatched_;
    } else {
      out.dispatch = true;
    }
  } else {
    ++agg_.rejected;
    if (it != sessions_.end()) ++it->second.stats.rejected;
  }
  return out;
}

QueryId QueryService::admit(SessionId session, Request req,
                            std::unique_ptr<PendingQuery> p) {
  p->session = session;

  AdmitDecision decision;
  {
    sync::MutexLock lock(mutex_);
    decision = admit_locked(session, std::move(req), p);
  }
  if (!decision.reject.is_ok()) {
    Response resp;
    resp.status = std::move(decision.reject);
    resp.stats.session = session;
    if (p->callback) {
      p->callback(std::move(resp));
    } else {
      p->promise.set_value(std::move(resp));
    }
    return 0;
  }
  if (decision.dispatch) {
    pool_->submit([this] { dispatch_one(); });
  }
  return decision.id;
}

Submission QueryService::submit(SessionId session, Request req) {
  auto p = std::make_unique<PendingQuery>();
  Submission out;
  out.response = p->promise.get_future();
  out.id = admit(session, std::move(req), std::move(p));
  return out;
}

QueryId QueryService::submit_async(SessionId session, Request req,
                                   ResponseCallback cb) {
  auto p = std::make_unique<PendingQuery>();
  p->callback = std::move(cb);
  return admit(session, std::move(req), std::move(p));
}

Response QueryService::run(SessionId session, Request req) {
  return submit(session, std::move(req)).response.get();
}

Status QueryService::cancel(QueryId id) {
  sync::MutexLock lock(mutex_);
  for (auto& p : pending_) {
    if (p->id == id) {
      if (p->cancelled) return failed_precondition("already cancelled");
      p->cancelled = true;
      return Status::ok();
    }
  }
  return not_found("query not queued (already dispatched or unknown)");
}

Status QueryService::ingest(const std::string& var, const Grid& grid) {
  {
    sync::MutexLock lock(mutex_);
    if (shutdown_) return failed_precondition("service shutting down");
  }
  // No service lock while writing: the store serializes ingests itself and
  // queries proceed against the published state throughout.
  Status st = store_.write_variable(var, grid, cfg_.ingest);
  sync::MutexLock lock(mutex_);
  st.is_ok() ? ++agg_.ingests : ++agg_.ingest_failures;
  agg_.ingest = store_.ingest_stats();
  return st;
}

void QueryService::pause() {
  sync::MutexLock lock(mutex_);
  paused_ = true;
}

void QueryService::resume() {
  std::size_t n = 0;
  {
    sync::MutexLock lock(mutex_);
    if (!paused_) return;
    paused_ = false;
    n = undispatched_;
    undispatched_ = 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    pool_->submit([this] { dispatch_one(); });
  }
}

std::unique_ptr<QueryService::PendingQuery>
QueryService::pop_scheduled_locked() {
  if (pending_.empty()) return nullptr;  // raced with shutdown/another worker
  std::size_t pick = 0;
  if (cfg_.policy == SchedulingPolicy::kPriority) {
    for (std::size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i]->req.priority > pending_[pick]->req.priority) pick = i;
    }
  }
  std::unique_ptr<PendingQuery> p = std::move(pending_[pick]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
  --agg_.queued;
  ++agg_.executing;
  return p;
}

void QueryService::dispatch_one() {
  std::unique_ptr<PendingQuery> p;
  {
    sync::MutexLock lock(mutex_);
    p = pop_scheduled_locked();
  }
  if (p == nullptr) return;
  const bool was_cancelled = p->cancelled;

  Response resp;
  resp.stats.query_id = p->id;
  resp.stats.session = p->session;
  resp.stats.queue_wait_s = p->queued.seconds();

  if (was_cancelled) {
    resp.status = cancelled("cancelled while queued");
    finish(std::move(p), std::move(resp));
    return;
  }
  if (p->deadline_s > 0 && resp.stats.queue_wait_s > p->deadline_s) {
    resp.status = deadline_exceeded("deadline passed while queued");
    finish(std::move(p), std::move(resp));
    return;
  }

  const int ranks =
      p->req.num_ranks > 0 ? p->req.num_ranks : cfg_.default_num_ranks;
  Stopwatch sw;
  auto result =
      p->req.multivar.has_value()
          ? store_.multivar_select(p->req.multivar->preds,
                                   p->req.multivar->combine,
                                   p->req.multivar->fetch_var,
                                   p->req.query.plod_level, ranks)
          : store_.execute(p->req.var, p->req.query, ranks);
  resp.stats.exec_wall_s = sw.seconds();
  if (!result.is_ok()) {
    resp.status = result.status();
  } else {
    if (auto* rec = trace_recorder_.load(std::memory_order_acquire);
        rec != nullptr) {
      if (!p->req.multivar.has_value()) {
        rec->record({p->req.var, p->req.query, ranks});
      } else {
        // A multivariable request decomposes into one region-only query
        // per predicate (its fetch pass depends on the selection's
        // bounding box, unknowable from the request alone, so it is not
        // traced). Recording the decomposed form keeps the trace
        // replayable through single-variable planner estimation.
        for (const auto& pred : p->req.multivar->preds) {
          Query region_q;
          region_q.vc = pred.vc;
          region_q.values_needed = false;
          rec->record({pred.var, region_q, ranks});
        }
      }
    }
    resp.result = std::move(result).value();
    resp.stats.modeled_s = resp.result.times.total();
    resp.stats.cache = resp.result.cache;
    resp.stats.exec = resp.result.exec;
    if (p->deadline_s > 0 &&
        p->queued.seconds() > p->deadline_s) {
      resp.status = deadline_exceeded("execution overran the deadline");
      resp.result = QueryResult{};
    }
  }
  finish(std::move(p), std::move(resp));
}

void QueryService::fold_stats_locked(const PendingQuery& p,
                                     const Response& resp) {
  --agg_.executing;
  agg_.total_queue_wait_s += resp.stats.queue_wait_s;
  agg_.total_exec_wall_s += resp.stats.exec_wall_s;
  agg_.total_modeled_s += resp.stats.modeled_s;
  agg_.cache += resp.stats.cache;
  agg_.exec += resp.stats.exec;
  switch (resp.status.code()) {
    case ErrorCode::kOk: ++agg_.completed; break;
    case ErrorCode::kDeadlineExceeded: ++agg_.expired; break;
    case ErrorCode::kCancelled: ++agg_.cancelled; break;
    default: ++agg_.failed; break;
  }
  auto it = sessions_.find(p.session);
  if (it != sessions_.end()) {
    SessionStats& s = it->second.stats;
    resp.status.is_ok() ? ++s.completed : ++s.failed;
    s.cache += resp.stats.cache;
    s.exec += resp.stats.exec;
    s.total_queue_wait_s += resp.stats.queue_wait_s;
    s.total_modeled_s += resp.stats.modeled_s;
  }
}

void QueryService::finish(std::unique_ptr<PendingQuery> p, Response resp) {
  {
    sync::MutexLock lock(mutex_);
    fold_stats_locked(*p, resp);
  }
  if (p->callback) {
    p->callback(std::move(resp));
  } else {
    p->promise.set_value(std::move(resp));
  }
}

void QueryService::record_transport(bool via_shm,
                                    std::uint64_t payload_bytes) {
  sync::MutexLock lock(mutex_);
  if (via_shm) {
    ++agg_.responses_shm;
    agg_.bytes_shm += payload_bytes;
  } else {
    ++agg_.responses_tcp;
    agg_.bytes_tcp += payload_bytes;
  }
}

AggregateStats QueryService::aggregate() const {
  sync::MutexLock lock(mutex_);
  return agg_;
}

Result<SessionStats> QueryService::session_stats(SessionId id) const {
  sync::MutexLock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return not_found("no such session");
  return it->second.stats;
}

}  // namespace mloc::service
