#include "service/fragment_cache.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace mloc::service {

std::size_t FragmentCache::KeyHash::operator()(
    const FragmentKey& key) const noexcept {
  std::uint64_t h = fnv1a64(
      {reinterpret_cast<const std::uint8_t*>(key.var.data()), key.var.size()});
  h ^= static_cast<std::uint64_t>(key.bin) * kFnvPrime;
  h ^= (static_cast<std::uint64_t>(key.chunk) + 0x9e3779b97f4a7c15ull) *
       kFnvPrime;
  h ^= (key.epoch + 0xc2b2ae3d27d4eb4full) * kFnvPrime;
  return static_cast<std::size_t>(h);
}

FragmentCache::FragmentCache(Config cfg) : cfg_(cfg) {
  MLOC_CHECK(cfg_.shards >= 1);
  shard_budget_ = cfg_.budget_bytes / static_cast<std::uint64_t>(cfg_.shards);
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FragmentCache::Shard& FragmentCache::shard_for(const FragmentKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const FragmentData> FragmentCache::lookup(
    const FragmentKey& key) {
  Shard& shard = shard_for(key);
  sync::MutexLock lock(shard.mutex);
  ++shard.stats.lookups;
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
  return it->second->data;
}

void FragmentCache::insert(const FragmentKey& key,
                           std::shared_ptr<const FragmentData> data) {
  if (data == nullptr) return;
  const std::uint64_t bytes = data->byte_size();
  Shard& shard = shard_for(key);
  sync::MutexLock lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& existing = *it->second;
    // Merge: an entry accumulates the union of what queries have decoded
    // for this fragment — the deepest PLoD prefix (or the whole-value
    // buffer, already full precision) plus the positional index. Published
    // FragmentData is immutable, so a gain produces a fresh merged object.
    const bool deeper = existing.data->values.empty() &&
                        data->depth() > existing.data->depth();
    const bool gains_values =
        existing.data->values.empty() && !data->values.empty();
    const bool gains_positions =
        existing.data->positions.empty() && !data->positions.empty();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (!deeper && !gains_values && !gains_positions) return;
    auto merged = std::make_shared<FragmentData>(*existing.data);
    if (deeper) merged->planes = data->planes;
    if (gains_values) merged->values = data->values;
    if (gains_positions) merged->positions = data->positions;
    merged->count = existing.data->count != 0 ? existing.data->count
                                              : data->count;
    const std::uint64_t merged_bytes = merged->byte_size();
    shard.bytes -= existing.bytes;
    shard.bytes += merged_bytes;
    existing.data = std::move(merged);
    existing.bytes = merged_bytes;
    ++shard.stats.upgrades;
  } else {
    shard.lru.push_front(Entry{key, std::move(data), bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.stats.insertions;
  }
  evict_to_budget(shard);
  shard.stats.bytes_cached = shard.bytes;
  shard.stats.entries = shard.index.size();
}

void FragmentCache::evict_to_budget(Shard& shard) {
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void FragmentCache::erase(const std::string& var) {
  // Entries of one variable scatter across shards (the key hash mixes bin
  // and chunk), so every shard is scanned. Runs once per re-ingest; shard
  // locks are taken one at a time, so concurrent queries only ever wait on
  // the shard being swept.
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    sync::MutexLock lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.var == var) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
    shard.stats.bytes_cached = shard.bytes;
    shard.stats.entries = shard.index.size();
  }
}

void FragmentCache::clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    sync::MutexLock lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
    shard.stats.bytes_cached = 0;
    shard.stats.entries = 0;
  }
}

// Documented thread-safety-analysis escape (1 of 2 repo-wide; see DESIGN.md
// §13): the coherent snapshot holds *every* shard lock at once — a lock set
// whose size is a runtime value (cfg_.shards), which the static analysis
// cannot represent. The discipline is still simple and auditable: locks are
// acquired in ascending shard order (the only place more than one shard lock
// is ever held), all counters are read, then all locks are released in
// reverse order.
FragmentCache::Stats FragmentCache::stats() const MLOC_NO_THREAD_SAFETY_ANALYSIS {
  // Hold every shard lock while summing so the snapshot is coherent: without
  // this, a reader racing an insert could observe `entries` from one shard
  // state and `bytes_cached`/`lookups` from another, and cross-counter
  // invariants (lookups == hits + misses) could appear violated.
  for (const auto& shard : shards_) shard->mutex.lock();
  Stats out;
  for (const auto& shard : shards_) {
    out.lookups += shard->stats.lookups;
    out.hits += shard->stats.hits;
    out.misses += shard->stats.misses;
    out.insertions += shard->stats.insertions;
    out.upgrades += shard->stats.upgrades;
    out.evictions += shard->stats.evictions;
    out.bytes_cached += shard->bytes;
    out.entries += shard->index.size();
  }
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    (*it)->mutex.unlock();
  }
  return out;
}

}  // namespace mloc::service
