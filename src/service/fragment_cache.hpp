// Sharded LRU cache of decompressed fragment payloads — the serving
// layer's highest-leverage component (exploratory workloads revisit the
// same regions and precision prefixes over and over).
//
// Keyed by (variable, bin, chunk); the entry stores the deepest decoded
// PLoD byte-group prefix seen so far (or the whole decoded buffer in
// whole-value mode). Because a prefix at depth D answers any request at
// level <= D, a level-3 entry serves a level-2 query outright, and a
// level-7 query only fetches the missing planes 3..6 from the PFS
// (MlocStore::fetch_fragment_values does the splice; this class only
// stores and evicts).
//
// Eviction is byte-budgeted LRU, independently per shard (shard budget =
// total budget / shards). Sharding by key hash keeps lock contention flat
// as the client count grows; entries are handed out as shared_ptr, so an
// eviction never invalidates a payload a concurrent query is reading.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/store.hpp"
#include "util/sync.hpp"

namespace mloc::service {

class FragmentCache final : public FragmentProvider {
 public:
  struct Config {
    std::uint64_t budget_bytes = 64ull << 20;  ///< total across shards
    int shards = 8;
  };

  /// Global counters. stats() sums these under all shard locks at once, so
  /// a snapshot is coherent even while queries run (lookups == hits +
  /// misses holds in every snapshot).
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;        ///< lookup returned an entry
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;  ///< new keys admitted
    std::uint64_t upgrades = 0;    ///< existing entry replaced by a deeper one
    std::uint64_t evictions = 0;   ///< entries dropped to fit the budget
    std::uint64_t bytes_cached = 0;
    std::uint64_t entries = 0;
  };

  FragmentCache() : FragmentCache(Config{}) {}
  explicit FragmentCache(Config cfg);

  FragmentCache(const FragmentCache&) = delete;
  FragmentCache& operator=(const FragmentCache&) = delete;

  // FragmentProvider interface (thread-safe).
  std::shared_ptr<const FragmentData> lookup(const FragmentKey& key) override;
  void insert(const FragmentKey& key,
              std::shared_ptr<const FragmentData> data) override;
  /// Drop all entries of `var` across every epoch (re-ingest invalidation).
  void erase(const std::string& var) override;

  /// Drop every entry (budget and counters for bytes/entries reset; the
  /// cumulative hit/miss/eviction counters are kept).
  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  struct KeyHash {
    std::size_t operator()(const FragmentKey& key) const noexcept;
  };
  struct Entry {
    FragmentKey key;
    std::shared_ptr<const FragmentData> data;
    std::uint64_t bytes = 0;
  };
  struct Shard {
    mutable sync::Mutex mutex;
    /// front = most recently used
    std::list<Entry> lru MLOC_GUARDED_BY(mutex);
    std::unordered_map<FragmentKey, std::list<Entry>::iterator, KeyHash> index
        MLOC_GUARDED_BY(mutex);
    std::uint64_t bytes MLOC_GUARDED_BY(mutex) = 0;
    /// bytes_cached/entries maintained on the fly
    Stats stats MLOC_GUARDED_BY(mutex);
  };

  Shard& shard_for(const FragmentKey& key);
  /// Pop LRU entries until the shard fits its budget. Caller holds the lock.
  void evict_to_budget(Shard& shard) MLOC_REQUIRES(shard.mutex);

  Config cfg_;
  std::uint64_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mloc::service
