// Query model — the access patterns of paper §II.
//
// A Query combines an optional value constraint (VC, half-open value range),
// an optional spatial constraint (SC, hyper-rectangle), a PLoD level, and
// whether values must be materialized (value-retrieval) or positions
// suffice (region-only). Multi-variable access composes two queries through
// a position bitmap (§III-D-4).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "array/region.hpp"
#include "util/timer.hpp"

namespace mloc {

/// Half-open value range [lo, hi).
struct ValueConstraint {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  /// A constraint is well-formed when both bounds are non-NaN and the
  /// half-open range is non-empty (lo < hi). A degenerate range (lo == hi)
  /// or a NaN bound can never match anything; MlocStore rejects such
  /// queries with InvalidArgument instead of silently returning nothing.
  [[nodiscard]] bool valid() const noexcept {
    return !std::isnan(lo) && !std::isnan(hi) && lo < hi;
  }

  [[nodiscard]] bool matches(double v) const noexcept {
    return v >= lo && v < hi;
  }
};

struct Query {
  std::optional<ValueConstraint> vc;  ///< value constraint, if any
  std::optional<Region> sc;           ///< spatial constraint, if any
  /// PLoD level (7 = full precision). Controls the precision of the
  /// *returned* values only: value constraints are always evaluated
  /// against the stored full-precision data (the same values the binning
  /// index and zone maps were built from), so the qualifying-position set
  /// is independent of plod_level. Misaligned bins under a VC therefore
  /// fetch full precision for filtering even at reduced levels.
  int plod_level = 7;
  bool values_needed = true;          ///< false = region-only access
};

/// FragmentProvider (serving-layer cache) accounting for one query. All
/// counters stay zero when the store has no provider attached (cold access).
struct CacheStats {
  std::uint64_t hits = 0;          ///< fragments fully served from cache
  std::uint64_t partial_hits = 0;  ///< PLoD prefix reuse: some planes cached
  std::uint64_t misses = 0;        ///< provider consulted, nothing usable
  std::uint64_t bytes_saved = 0;   ///< compressed payload bytes not re-read

  CacheStats& operator+=(const CacheStats& o) noexcept {
    hits += o.hits;
    partial_hits += o.partial_hits;
    misses += o.misses;
    bytes_saved += o.bytes_saved;
    return *this;
  }
};

/// Read-plan / batch-I/O accounting for one query through the staged
/// execution engine (src/exec). `extents_naive` counts the read requests
/// the plan would issue without coalescing (one per segment/header, the
/// pre-engine behavior); `extents_coalesced` counts the requests actually
/// issued after the IoScheduler merged adjacent and near-adjacent extents.
struct ExecStats {
  std::uint64_t bytes_planned = 0;    ///< bytes the plan needed pre-cache
  std::uint64_t bytes_read = 0;       ///< bytes issued to the PFS (merged)
  std::uint64_t bytes_from_cache = 0; ///< bytes pruned at plan time
  std::uint64_t extents_naive = 0;     ///< read requests before coalescing
  std::uint64_t extents_coalesced = 0; ///< read requests actually issued
  std::uint64_t modeled_seeks = 0;     ///< per-rank coalesced extents (model)
  /// Gap bytes read only because same-class bridging welded two extents
  /// together (the waste behind bytes_read > bytes_planned; each bridged
  /// gap trades its bytes for one saved seek).
  std::uint64_t bytes_bridged = 0;

  ExecStats& operator+=(const ExecStats& o) noexcept {
    bytes_planned += o.bytes_planned;
    bytes_read += o.bytes_read;
    bytes_from_cache += o.bytes_from_cache;
    extents_naive += o.extents_naive;
    extents_coalesced += o.extents_coalesced;
    modeled_seeks += o.modeled_seeks;
    bytes_bridged += o.bytes_bridged;
    return *this;
  }
};

/// Result of one query execution.
struct QueryResult {
  /// Qualifying positions as row-major linear offsets into the variable's
  /// grid, ascending.
  std::vector<std::uint64_t> positions;
  /// Values parallel to `positions` (empty for region-only queries).
  std::vector<double> values;

  // --- accounting ---
  ComponentTimes times;             ///< modeled io + measured CPU breakdown
  std::uint64_t bins_touched = 0;
  std::uint64_t aligned_bins = 0;   ///< bins answered from the index alone
  std::uint64_t fragments_read = 0; ///< (bin, chunk) cells fetched from data
  std::uint64_t fragments_skipped = 0;  ///< pruned by zone maps (VC disjoint)
  std::uint64_t bytes_read = 0;     ///< payload bytes fetched from the PFS
  CacheStats cache;                 ///< fragment-provider hit/miss accounting
  ExecStats exec;                   ///< read-plan / coalescing accounting
};

}  // namespace mloc
