// On-PFS layout metadata for one MLOC variable.
//
// Each bin owns two subfiles (paper Fig. 4):
//   <store>/<var>.bin<k>.idx — fragment table + positional index blobs;
//   <store>/<var>.bin<k>.dat — compressed value payload segments.
//
// A *fragment* is the set of points of one chunk that fall into one bin —
// the smallest unit MLOC relocates ("certain bytes of values inside a block
// within a bin", §III-B-5). Fragments appear in Hilbert-curve chunk order.
// The fragment table records, per fragment, the chunk id, point count, the
// positional-index blob extent (in .idx, relative to the end of the
// table), and one payload segment per byte group (in .dat).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "array/chunking.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace mloc {

/// Extent within a subfile, with an FNV-1a integrity checksum of its
/// (compressed) bytes — verified on every read before decode.
struct Segment {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t checksum = 0;

  [[nodiscard]] bool operator==(const Segment&) const = default;
};

struct FragmentInfo {
  ChunkId chunk = 0;          ///< row-major chunk id
  std::uint64_t count = 0;    ///< points of this chunk in this bin
  Segment positions;          ///< delta-varint local offsets, in .idx
                              ///< (offset relative to the blob section)
  std::vector<Segment> groups;///< payload per byte group, in .dat
  /// Zone map: value range of the fragment's points (closed interval on
  /// the original values). Extends the paper's aligned-*bin* fast path to
  /// fragment granularity: a VC containing [min,max] qualifies the whole
  /// fragment without decompression; a disjoint VC skips it outright.
  double min_value = 0.0;
  double max_value = 0.0;

  [[nodiscard]] bool operator==(const FragmentInfo&) const = default;
};

/// Fragment table of one bin, Hilbert order.
struct BinLayout {
  std::vector<FragmentInfo> fragments;

  [[nodiscard]] std::uint64_t total_points() const noexcept {
    std::uint64_t n = 0;
    for (const auto& f : fragments) n += f.count;
    return n;
  }

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<BinLayout> deserialize(ByteReader& r);

  [[nodiscard]] bool operator==(const BinLayout&) const = default;
};

/// One-slot cache for a bin's decoded fragment table. A bin's .idx header
/// is immutable once written, so the first decode (or the writer itself)
/// publishes the layout and every later query skips the header read and
/// re-parse entirely — repeated queries stop paying one header extent per
/// (rank, bin) in both wall time and the modeled seek count.
class BinHeaderCache {
 public:
  [[nodiscard]] std::shared_ptr<const BinLayout> get() const
      MLOC_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return layout_;
  }

  /// First writer wins; later calls are no-ops (the header is immutable,
  /// so any decoded copy is as good as another).
  void put(std::shared_ptr<const BinLayout> layout) MLOC_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    if (!layout_) layout_ = std::move(layout);
  }

 private:
  mutable sync::Mutex mu_;
  std::shared_ptr<const BinLayout> layout_ MLOC_GUARDED_BY(mu_);
};

// --- Subfile footer -------------------------------------------------------
//
// Every subfile MlocStore writes (.meta, .idx, .dat) ends with a fixed
// 8-byte footer: CRC-32 of the payload (all preceding bytes, little-endian
// u32) followed by the magic "MLCF". Per-segment FNV checksums only cover
// extents a query happens to read; the footer covers the whole file — in
// particular the fragment-table header bytes — so fsck and first-read
// verification catch truncation, extension, and header damage too.

inline constexpr std::uint32_t kSubfileFooterMagic = 0x4643'4C4Du;  // "MLCF"
inline constexpr std::size_t kSubfileFooterSize = 8;

/// Append the CRC footer to a finished subfile image.
void append_subfile_footer(Bytes& file);

/// Validate the footer of a subfile image; returns the payload length
/// (file size minus footer) or CorruptData on a missing/mismatched footer.
[[nodiscard]] Result<std::uint64_t> verify_subfile_footer(
    std::span<const std::uint8_t> file);

/// Encode ascending local offsets as delta varints (first absolute).
Bytes encode_positions(std::span<const std::uint32_t> local_offsets);

/// Inverse of encode_positions; `count` values expected.
[[nodiscard]] Result<std::vector<std::uint32_t>> decode_positions(
    std::span<const std::uint8_t> blob, std::uint64_t count);

}  // namespace mloc
