// MlocStore — the MLOC framework's public entry point.
//
// A store lives on a pfs::PfsStorage and holds any number of variables that
// share one grid shape (paper Fig. 1 pipeline); every other layout choice —
// chunking, bin count, curve, level order, codec — is a per-variable
// VariableLayout, so mixed-layout stores are first-class. Writing a
// variable runs the full multi-level layout pipeline under its layout:
// equal-frequency binning -> per-bin subfiles -> (PLoD byte grouping and
// curve-ordered fragment placement, in the configured order) -> compression.
// Queries execute the parallel access protocol of §III-D: bin selection by
// VC, fragment selection by SC via the Hilbert mapping, column-order block
// assignment to ranks, per-rank fetch/decompress/filter, and gather.
//
// All reads are logged per rank; QueryResult::times combines the PFS cost
// model's I/O makespan with measured per-rank decompress/reconstruct CPU.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "array/chunking.hpp"
#include "array/grid.hpp"
#include "binning/binning.hpp"
#include "bitmap/bitmap.hpp"
#include "compress/codec.hpp"
#include "core/config.hpp"
#include "core/layout.hpp"
#include "exec/read_plan.hpp"
#include "ingest/ingest.hpp"
#include "parallel/runtime.hpp"
#include "pfs/pfs.hpp"
#include "query/query.hpp"
#include "util/sync.hpp"

namespace mloc {

namespace exec {
struct StoreView;  // engine-facing projection (exec/engine.hpp)
}  // namespace exec

/// Identity of one fragment's decompressed payload: the (variable, bin,
/// chunk) cell of a store. The PLoD level is deliberately not part of the
/// key — a cached entry holds the *deepest* decoded byte-group prefix seen
/// so far, and any request at level <= that depth is a hit (a level-3 entry
/// serves a level-2 request).
/// FragmentKey::chunk sentinel for cached hierarchical-index tree nodes:
/// a decoded .hbx node is keyed as {var, node_id, kHbxNodeChunk, epoch}.
/// Real chunks are lattice cells, far below this value.
inline constexpr ChunkId kHbxNodeChunk = 0xFFFF'FFFFu;

struct FragmentKey {
  std::string var;
  int bin = 0;
  ChunkId chunk = 0;
  /// Ingest generation of the variable. Bumped on every re-ingest, so
  /// entries cached before a rewrite can never answer queries against the
  /// fresh layout (the store additionally asks the provider to erase them).
  std::uint64_t epoch = 0;

  [[nodiscard]] bool operator==(const FragmentKey&) const = default;
};

/// Decompressed state of one fragment, as much as has been decoded so
/// far. In PLoD mode `planes` holds the decoded byte-group planes
/// 0..depth-1 (`values` empty); in whole-value mode `values` holds the
/// full decoded buffer (`planes` empty). `positions` holds the decoded
/// chunk-local positional index (empty until a query has decoded it).
/// Immutable once published to a provider — providers merge rather than
/// mutate.
struct FragmentData {
  std::vector<Bytes> planes;   ///< decoded byte-group planes, prefix order
  std::vector<double> values;  ///< whole-value mode payload
  std::vector<std::uint32_t> positions;  ///< decoded chunk-local positions
  std::uint64_t count = 0;     ///< points in the fragment (sanity check)
  /// Decoded hierarchical-index tree node (keys with chunk ==
  /// kHbxNodeChunk); empty for ordinary fragment entries.
  WahBitmap node_bitmap;
  bool has_node = false;

  /// PLoD depth of the prefix (0 in whole-value mode).
  [[nodiscard]] int depth() const noexcept {
    return static_cast<int>(planes.size());
  }
  /// Approximate heap footprint, for byte-budget accounting.
  [[nodiscard]] std::size_t byte_size() const noexcept {
    std::size_t b = sizeof(FragmentData);
    for (const auto& p : planes) b += p.size();
    if (has_node) b += node_bitmap.byte_size();
    return b + values.size() * sizeof(double) +
           positions.size() * sizeof(std::uint32_t);
  }
};

/// Serving-layer hook (src/service): a provider may hold decompressed
/// fragment payloads and positional indexes between queries. Cached
/// planes/positions bypass PFS reads entirely — they produce no IoLog
/// records, so the cost model charges only the misses — while misses
/// flow through the store's normal fetch path unchanged. Implementations must be thread-safe: concurrent
/// MlocStore::execute() calls consult the provider without locking.
class FragmentProvider {
 public:
  virtual ~FragmentProvider() = default;

  /// Return the cached payload for `key`, or nullptr on miss. The returned
  /// object must stay immutable and alive for the shared_ptr's lifetime
  /// even if the provider evicts it concurrently.
  virtual std::shared_ptr<const FragmentData> lookup(const FragmentKey& key) = 0;

  /// Offer a freshly decoded payload. The provider may ignore it (budget)
  /// or replace a shallower entry for the same key.
  virtual void insert(const FragmentKey& key,
                      std::shared_ptr<const FragmentData> data) = 0;

  /// Drop every cached entry of `var`, regardless of epoch. Called by the
  /// store after a re-ingest: the epoch bump already makes stale entries
  /// unreachable, erase reclaims their byte budget.
  virtual void erase(const std::string& var) { (void)var; }
};

class MlocStore {
 public:
  /// Create an empty store named `name` on `fs` (non-owning; must outlive
  /// the store). Fails on invalid config or name collision.
  [[nodiscard]] static Result<MlocStore> create(pfs::PfsStorage* fs, std::string name,
                                  MlocConfig cfg);

  /// Re-open a store previously created on `fs` from its metadata file.
  [[nodiscard]] static Result<MlocStore> open(pfs::PfsStorage* fs, const std::string& name);

  /// Ingest one variable through the layout pipeline (serial reference
  /// path) under the store's default layout. The grid shape must match the
  /// store config. Writing a name that already exists replaces it: the
  /// fresh layout is published atomically, the fragment-provider entries of
  /// the old generation are dropped, and in-flight queries against the old
  /// state fail cleanly (checksum mismatch) rather than reading mixed
  /// generations.
  [[nodiscard]] Status write_variable(const std::string& var, const Grid& grid)
      MLOC_EXCLUDES(ingest_mu_, vars_mu_);

  /// Ingest with explicit pipeline options (worker threads, write-behind
  /// subfile flushing — see ingest::WriteOptions). Output bytes are
  /// identical for any option combination. One ingest runs at a time
  /// (internally serialized); queries may run concurrently.
  [[nodiscard]] Status write_variable(const std::string& var, const Grid& grid,
                        const ingest::WriteOptions& opts)
      MLOC_EXCLUDES(ingest_mu_, vars_mu_);

  /// Ingest under an explicit per-variable layout (validated first —
  /// InvalidArgument on a bad bin count, stride, chunk shape, codec, or
  /// interleave). A re-ingest may change the layout: the variable's new
  /// generation lives entirely under the new one.
  [[nodiscard]] Status write_variable(const std::string& var, const Grid& grid,
                        const VariableLayout& layout,
                        const ingest::WriteOptions& opts = {})
      MLOC_EXCLUDES(ingest_mu_, vars_mu_);

  /// Cumulative write-path accounting across all write_variable calls.
  [[nodiscard]] ingest::IngestStats ingest_stats() const
      MLOC_EXCLUDES(vars_mu_);

  /// Execute a query (paper §III-D). `num_ranks` parallel processes are
  /// emulated; results are identical for any rank count.
  [[nodiscard]] Result<QueryResult> execute(const std::string& var, const Query& q,
                              int num_ranks = 1) const;

  /// Execute with explicit engine options (coalescing gap, naive I/O for
  /// A/B comparison, decode worker count). The overload above uses
  /// exec::ExecOptions defaults.
  [[nodiscard]] Result<QueryResult> execute(const std::string& var, const Query& q,
                              int num_ranks,
                              const exec::ExecOptions& opts) const;

  /// Cost a query without executing it: the PlanSummary of the exact
  /// ReadPlan execute() would run. Side-effect-free — consults the bin
  /// header cache and any attached FragmentProvider but never warms them.
  /// Feeding summary.planned_io to pfs::model_makespan reproduces the
  /// modeled I/O seconds execution would report; on cold caches the byte
  /// and extent counts match execution exactly. Drives
  /// QueryPlanner::estimate.
  [[nodiscard]] Result<exec::PlanSummary> plan(const std::string& var, const Query& q,
                                 int num_ranks = 1,
                                 const exec::ExecOptions& opts = {}) const;

  /// Multi-variable access (§III-D-4): select positions where `select_var`
  /// satisfies `vc` (region-only pass), then retrieve `fetch_var` values at
  /// those positions via a shared position bitmap.
  [[nodiscard]] Result<QueryResult> multivar_query(const std::string& select_var,
                                     ValueConstraint vc,
                                     const std::string& fetch_var,
                                     int plod_level = 7,
                                     int num_ranks = 1) const;

  /// One predicate of a multi-variable selection.
  struct VarConstraint {
    std::string var;
    ValueConstraint vc;
  };
  enum class Combine : std::uint8_t { kAnd, kOr };

  /// General multi-variable selection (paper §II "multi-variable data
  /// access ... may involve two or more variables"): evaluate each
  /// predicate as a region-only pass, combine the resulting position
  /// bitmaps in the WAH compressed domain, then fetch `fetch_var` at the
  /// surviving positions. With an empty `fetch_var` only positions are
  /// returned.
  [[nodiscard]] Result<QueryResult> multivar_select(const std::vector<VarConstraint>& preds,
                                      Combine combine,
                                      const std::string& fetch_var,
                                      int plod_level = 7,
                                      int num_ranks = 1) const;

  [[nodiscard]] const MlocConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::vector<std::string> variables() const
      MLOC_EXCLUDES(vars_mu_);

  /// Metadata accessors for the query planner.
  [[nodiscard]] Result<const BinningScheme*> binning(
      const std::string& var) const;
  /// Subfile locations of one variable's bins, for offline tooling
  /// (tools/fsck's LayoutVerifier walks the raw layout through these).
  struct BinSubfiles {
    pfs::FileId idx = 0;
    pfs::FileId dat = 0;
    std::uint64_t header_len = 0;  ///< fragment-table bytes at .idx start
  };
  [[nodiscard]] Result<std::vector<BinSubfiles>> bin_subfiles(
      const std::string& var) const;
  /// Hierarchical-index (.hbx) subfile location of one variable, for
  /// offline tooling and benches. `present` is false when the variable's
  /// layout has index_fanout == 0.
  struct HbxSubfile {
    bool present = false;
    pfs::FileId file = 0;
    std::uint64_t header_len = 0;
  };
  [[nodiscard]] Result<HbxSubfile> hbx_subfile(const std::string& var) const;
  /// This variable's layout / chunk lattice (pointers stay valid for the
  /// store's lifetime, like every find_var-derived pointer).
  [[nodiscard]] Result<const VariableLayout*> variable_layout(
      const std::string& var) const;
  [[nodiscard]] Result<const ChunkGrid*> chunk_grid(
      const std::string& var) const;
  [[nodiscard]] const pfs::PfsConfig& pfs_config() const noexcept {
    return fs_->config();
  }

  /// Everything offline tooling (fsck, the wire layer, mloc_tune) needs to
  /// describe one variable without touching its data.
  struct VariableDesc {
    std::string name;
    VariableLayout layout;
    std::uint64_t epoch = 0;
    /// True when the variable keeps PLoD byte columns (byte codec).
    bool plod_capable = false;
    int num_groups = 1;  ///< 7 in PLoD mode, 1 whole-value group otherwise
  };
  [[nodiscard]] Result<VariableDesc> describe(const std::string& var) const;
  [[nodiscard]] std::vector<VariableDesc> describe_all() const
      MLOC_EXCLUDES(vars_mu_);

  /// Storage accounting (paper Table I): payload (.dat) and index
  /// (.idx + metadata) bytes across all variables.
  [[nodiscard]] std::uint64_t data_bytes() const MLOC_EXCLUDES(vars_mu_);
  [[nodiscard]] std::uint64_t index_bytes() const MLOC_EXCLUDES(vars_mu_);

  /// Attach a decompressed-fragment provider (nullptr detaches). Non-owning;
  /// the provider must outlive the store and be thread-safe. Queries are
  /// otherwise safe to run concurrently from multiple threads (const reads
  /// throughout), so set this once before serving traffic.
  void set_fragment_provider(FragmentProvider* provider) noexcept {
    provider_ = provider;
  }
  [[nodiscard]] FragmentProvider* fragment_provider() const noexcept {
    return provider_;
  }

 private:
  struct BinFiles {
    pfs::FileId idx = 0;
    pfs::FileId dat = 0;
    std::uint64_t header_len = 0;  ///< fragment-table bytes at .idx start
    /// Lazy footer-verification state, shared across copies: bit 0 set once
    /// the .idx footer CRC has been checked, bit 1 for .dat. Stores opened
    /// from existing files start unverified; the first cache-miss read of
    /// each subfile pays one full-file CRC scan.
    std::shared_ptr<std::atomic<std::uint8_t>> footer_state =
        std::make_shared<std::atomic<std::uint8_t>>(0);
    /// Decoded fragment-table header, shared across copies. Populated at
    /// write time (created stores query header-warm) or by the first query
    /// that parses the header (reopened stores pay one cold read per bin).
    std::shared_ptr<BinHeaderCache> header_cache =
        std::make_shared<BinHeaderCache>();
  };
  /// Hierarchical-index subfile state, the .hbx analogue of BinFiles.
  struct HbxFiles {
    bool present = false;
    pfs::FileId file = 0;
    std::uint64_t header_len = 0;  ///< node-table bytes at .hbx start
    /// Bit 0 set once the .hbx footer CRC has been checked (lazy, like
    /// BinFiles::footer_state).
    std::shared_ptr<std::atomic<std::uint8_t>> footer_state =
        std::make_shared<std::atomic<std::uint8_t>>(0);
    /// Parsed node table, shared across copies; warmed at write time or by
    /// the first query that reads the header.
    std::shared_ptr<index::HbxHeaderCache> header_cache =
        std::make_shared<index::HbxHeaderCache>();
  };
  struct VariableState {
    std::string name;
    VariableLayout layout;
    /// Derived from `layout` by init_derived_state (never serialized).
    ChunkGrid chunk_grid;
    sfc::CurveOrder curve_order;
    std::shared_ptr<const ByteCodec> byte_codec;      // PLoD/COL mode
    std::shared_ptr<const DoubleCodec> double_codec;  // whole-value mode
    BinningScheme scheme;
    std::vector<BinFiles> bins;  ///< size = scheme.num_bins()
    HbxFiles hbx;                ///< hierarchical index (may be absent)
    std::uint64_t epoch = 0;     ///< ingest generation (FragmentKey::epoch)

    [[nodiscard]] bool plod_capable() const noexcept {
      return byte_codec != nullptr;
    }
  };

  MlocStore() = default;

  /// Materialize the layout-derived members of `vs` (chunk grid, curve
  /// order, codecs) from vs->layout against the store shape.
  [[nodiscard]] Status init_derived_state(VariableState* vs) const;
  [[nodiscard]] Status write_meta() MLOC_EXCLUDES(vars_mu_);

  /// Verify the footer CRC of one bin subfile if not already done (lazy,
  /// thread-safe; reads the whole file outside the modeled I/O log).
  [[nodiscard]] Status ensure_subfile_verified(const BinFiles& files, bool dat_file) const;
  /// Same, for the variable's .hbx subfile.
  [[nodiscard]] Status ensure_hbx_verified(const HbxFiles& files) const;
  [[nodiscard]] Result<const VariableState*> find_var(
      const std::string& var) const MLOC_EXCLUDES(vars_mu_);

  /// Shared query engine entry; `position_filter` (over linear grid
  /// offsets) implements the multi-variable second pass. Delegates to
  /// exec::execute_query over make_view(vs).
  [[nodiscard]] Result<QueryResult> execute_impl(const VariableState& vs, const Query& q,
                                   int num_ranks, const Bitmap* position_filter,
                                   const exec::ExecOptions& opts,
                                   WahBitmap* region_wah = nullptr) const;

  /// Build the engine-facing projection of one variable (non-owning; valid
  /// while `vs` and this store are alive and unmodified).
  exec::StoreView make_view(const VariableState& vs) const;

  pfs::PfsStorage* fs_ = nullptr;
  std::string name_;
  MlocConfig cfg_;
  pfs::FileId meta_file_ = 0;
  /// Serializes whole write_variable calls (one ingest at a time). Always
  /// taken before vars_mu_ (write_variable nests the publish block inside
  /// the ingest section) — declared so the analysis rejects an inversion.
  /// Handle types keep the mutex storage behind shared_ptr so the store
  /// stays movable (moves happen only at setup).
  sync::MutexHandle ingest_mu_ MLOC_ACQUIRED_BEFORE(vars_mu_);
  /// Published variable states. Reader/writer gated by vars_mu_; states
  /// are handed out as raw pointers (find_var/binning), so a replaced
  /// state is moved to retired_ instead of destroyed — every pointer ever
  /// returned stays valid for the store's lifetime.
  sync::SharedMutexHandle vars_mu_;
  std::vector<std::shared_ptr<VariableState>> vars_ MLOC_GUARDED_BY(vars_mu_);
  std::vector<std::shared_ptr<VariableState>> retired_
      MLOC_GUARDED_BY(vars_mu_);
  /// Ingest generation counter; 0 = opened state.
  std::uint64_t next_epoch_ MLOC_GUARDED_BY(vars_mu_) = 1;
  ingest::IngestStats ingest_stats_ MLOC_GUARDED_BY(vars_mu_);
  FragmentProvider* provider_ = nullptr;             // serving-layer cache
};

}  // namespace mloc
