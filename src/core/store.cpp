#include "core/store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "compress/registry.hpp"
#include "plod/plod.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace mloc {
namespace {

constexpr std::uint32_t kMetaMagic = 0x4D4C4F43;  // "MLOC"
constexpr std::uint32_t kMetaVersion = 2;         // v2: CRC subfile footers

std::string idx_name(const std::string& store, const std::string& var,
                     int bin) {
  return store + "/" + var + ".bin" + std::to_string(bin) + ".idx";
}
std::string dat_name(const std::string& store, const std::string& var,
                     int bin) {
  return store + "/" + var + ".bin" + std::to_string(bin) + ".dat";
}

void serialize_shape(ByteWriter& w, const NDShape& s) {
  w.put_u8(static_cast<std::uint8_t>(s.ndims()));
  for (int d = 0; d < s.ndims(); ++d) w.put_u32(s.extent(d));
}

Result<NDShape> deserialize_shape(ByteReader& r) {
  MLOC_ASSIGN_OR_RETURN(std::uint8_t ndims, r.get_u8());
  if (ndims < 1 || ndims > NDShape::kMaxDims) {
    return corrupt_data("meta: bad ndims");
  }
  Coord extents{};
  for (int d = 0; d < ndims; ++d) {
    MLOC_ASSIGN_OR_RETURN(extents[d], r.get_u32());
    if (extents[d] == 0) return corrupt_data("meta: zero extent");
  }
  return NDShape(ndims, extents);
}

/// Row-major shape of a region (for local-offset <-> coord mapping).
NDShape region_shape(const Region& region) {
  Coord extents{};
  for (int d = 0; d < region.ndims(); ++d) extents[d] = region.extent(d);
  return {region.ndims(), extents};
}

}  // namespace

// ------------------------------------------------------------- lifecycle

Status MlocStore::init_codecs() {
  if (is_byte_codec(cfg_.codec)) {
    MLOC_ASSIGN_OR_RETURN(byte_codec_, make_byte_codec(cfg_.codec));
  } else {
    MLOC_ASSIGN_OR_RETURN(double_codec_, make_double_codec(cfg_.codec));
  }
  return Status::ok();
}

int MlocStore::num_groups() const noexcept {
  return plod_capable() ? plod::kNumGroups : 1;
}

Result<MlocStore> MlocStore::create(pfs::PfsStorage* fs, std::string name,
                                    MlocConfig cfg) {
  MLOC_CHECK(fs != nullptr);
  if (cfg.shape.ndims() == 0 || cfg.chunk_shape.ndims() != cfg.shape.ndims()) {
    return invalid_argument("store: shape/chunk_shape dimensionality");
  }
  if (cfg.num_bins < 1) return invalid_argument("store: num_bins must be >= 1");
  if (cfg.sample_stride == 0) cfg.sample_stride = 1;

  MlocStore store;
  store.fs_ = fs;
  store.name_ = std::move(name);
  store.cfg_ = std::move(cfg);
  MLOC_RETURN_IF_ERROR(store.init_codecs());
  store.chunk_grid_ = ChunkGrid(store.cfg_.shape, store.cfg_.chunk_shape);
  store.curve_order_ = sfc::CurveOrder::make(
      store.cfg_.curve, store.chunk_grid_.lattice_shape());
  MLOC_ASSIGN_OR_RETURN(store.meta_file_,
                        fs->create(store.name_ + ".meta"));
  MLOC_RETURN_IF_ERROR(store.write_meta());
  return store;
}

Status MlocStore::write_meta() {
  ByteWriter w;
  w.put_u32(kMetaMagic);
  w.put_u32(kMetaVersion);
  serialize_shape(w, cfg_.shape);
  serialize_shape(w, cfg_.chunk_shape);
  w.put_u32(static_cast<std::uint32_t>(cfg_.num_bins));
  w.put_u8(static_cast<std::uint8_t>(cfg_.binning));
  w.put_u8(static_cast<std::uint8_t>(cfg_.curve));
  w.put_u8(static_cast<std::uint8_t>(cfg_.order));
  w.put_string(cfg_.codec);
  w.put_u32(cfg_.sample_stride);
  w.put_varint(vars_.size());
  for (const auto& v : vars_) {
    w.put_string(v.name);
    v.scheme.serialize(w);
    w.put_varint(v.bins.size());
    for (const auto& b : v.bins) w.put_varint(b.header_len);
  }
  Bytes meta = std::move(w).take();
  append_subfile_footer(meta);
  return fs_->set_contents(meta_file_, std::move(meta));
}

Result<MlocStore> MlocStore::open(pfs::PfsStorage* fs,
                                  const std::string& name) {
  MLOC_CHECK(fs != nullptr);
  MlocStore store;
  store.fs_ = fs;
  store.name_ = name;
  MLOC_ASSIGN_OR_RETURN(store.meta_file_, fs->open(name + ".meta"));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t meta_size,
                        fs->file_size(store.meta_file_));
  MLOC_ASSIGN_OR_RETURN(Bytes meta, fs->read(store.meta_file_, 0, meta_size));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t meta_payload,
                        verify_subfile_footer(meta));
  ByteReader r(std::span<const std::uint8_t>(meta).first(meta_payload));

  MLOC_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kMetaMagic) return corrupt_data("meta: bad magic");
  MLOC_ASSIGN_OR_RETURN(std::uint32_t version, r.get_u32());
  if (version != kMetaVersion) return unsupported("meta: unknown version");
  MLOC_ASSIGN_OR_RETURN(store.cfg_.shape, deserialize_shape(r));
  MLOC_ASSIGN_OR_RETURN(store.cfg_.chunk_shape, deserialize_shape(r));
  MLOC_ASSIGN_OR_RETURN(std::uint32_t num_bins, r.get_u32());
  store.cfg_.num_bins = static_cast<int>(num_bins);
  MLOC_ASSIGN_OR_RETURN(std::uint8_t binning, r.get_u8());
  if (binning > 1) return corrupt_data("meta: bad binning kind");
  store.cfg_.binning = static_cast<BinningKind>(binning);
  MLOC_ASSIGN_OR_RETURN(std::uint8_t curve, r.get_u8());
  if (curve > 2) return corrupt_data("meta: bad curve kind");
  store.cfg_.curve = static_cast<sfc::CurveKind>(curve);
  MLOC_ASSIGN_OR_RETURN(std::uint8_t order, r.get_u8());
  if (order > 1) return corrupt_data("meta: bad level order");
  store.cfg_.order = static_cast<LevelOrder>(order);
  MLOC_ASSIGN_OR_RETURN(store.cfg_.codec, r.get_string());
  MLOC_ASSIGN_OR_RETURN(store.cfg_.sample_stride, r.get_u32());
  MLOC_RETURN_IF_ERROR(store.init_codecs());
  store.chunk_grid_ = ChunkGrid(store.cfg_.shape, store.cfg_.chunk_shape);
  store.curve_order_ = sfc::CurveOrder::make(
      store.cfg_.curve, store.chunk_grid_.lattice_shape());

  MLOC_ASSIGN_OR_RETURN(std::uint64_t nvars, r.get_varint());
  if (nvars > 1024) return corrupt_data("meta: implausible variable count");
  for (std::uint64_t i = 0; i < nvars; ++i) {
    VariableState vs;
    MLOC_ASSIGN_OR_RETURN(vs.name, r.get_string());
    MLOC_ASSIGN_OR_RETURN(vs.scheme, BinningScheme::deserialize(r));
    MLOC_ASSIGN_OR_RETURN(std::uint64_t nbins, r.get_varint());
    if (nbins != static_cast<std::uint64_t>(vs.scheme.num_bins())) {
      return corrupt_data("meta: bin count mismatches scheme");
    }
    vs.bins.resize(nbins);
    for (std::uint64_t b = 0; b < nbins; ++b) {
      MLOC_ASSIGN_OR_RETURN(vs.bins[b].header_len, r.get_varint());
      MLOC_ASSIGN_OR_RETURN(
          vs.bins[b].idx,
          fs->open(idx_name(name, vs.name, static_cast<int>(b))));
      MLOC_ASSIGN_OR_RETURN(
          vs.bins[b].dat,
          fs->open(dat_name(name, vs.name, static_cast<int>(b))));
    }
    store.vars_.push_back(std::move(vs));
  }
  return store;
}

std::vector<std::string> MlocStore::variables() const {
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& v : vars_) out.push_back(v.name);
  return out;
}

Result<const BinningScheme*> MlocStore::binning(const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return &vs->scheme;
}

Result<std::vector<MlocStore::BinSubfiles>> MlocStore::bin_subfiles(
    const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  std::vector<BinSubfiles> out;
  out.reserve(vs->bins.size());
  for (const auto& b : vs->bins) {
    out.push_back({b.idx, b.dat, b.header_len});
  }
  return out;
}

Result<const MlocStore::VariableState*> MlocStore::find_var(
    const std::string& var) const {
  for (const auto& v : vars_) {
    if (v.name == var) return &v;
  }
  return not_found("store: no variable named " + var);
}

std::uint64_t MlocStore::data_bytes() const {
  std::uint64_t total = 0;
  for (const auto& v : vars_) {
    for (const auto& b : v.bins) {
      total += fs_->file_size(b.dat).value_or(0);
    }
  }
  return total;
}

std::uint64_t MlocStore::index_bytes() const {
  std::uint64_t total = fs_->file_size(meta_file_).value_or(0);
  for (const auto& v : vars_) {
    for (const auto& b : v.bins) {
      total += fs_->file_size(b.idx).value_or(0);
    }
  }
  return total;
}

// ------------------------------------------------------------ write path

Status MlocStore::write_variable(const std::string& var, const Grid& grid) {
  if (!(grid.shape() == cfg_.shape)) {
    return invalid_argument("store: grid shape mismatches config");
  }
  if (find_var(var).is_ok()) {
    return invalid_argument("store: variable exists: " + var);
  }

  // --- Level V: equal-frequency binning boundaries from a sample.
  std::vector<double> sample;
  sample.reserve(grid.size() / cfg_.sample_stride + 1);
  for (std::uint64_t i = 0; i < grid.size(); i += cfg_.sample_stride) {
    sample.push_back(grid.at_linear(i));
  }
  VariableState vs;
  vs.name = var;
  if (cfg_.binning == BinningKind::kEqualFrequency) {
    vs.scheme = BinningScheme::equal_frequency(sample, cfg_.num_bins);
  } else {
    double lo = sample[0], hi = sample[0];
    for (double v : sample) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(hi > lo)) hi = lo + 1.0;
    vs.scheme = BinningScheme::equal_width(lo, hi, cfg_.num_bins);
  }
  const int nbins = vs.scheme.num_bins();

  // --- Stage fragments: iterate chunks in curve order (level S), routing
  // each chunk's points to bins (level V).
  struct FragStage {
    ChunkId chunk;
    std::vector<std::uint32_t> offsets;  // local, ascending
    std::vector<double> values;          // parallel to offsets
  };
  std::vector<std::vector<FragStage>> staged(nbins);

  std::vector<std::vector<std::uint32_t>> chunk_offs(nbins);
  std::vector<std::vector<double>> chunk_vals(nbins);
  for (std::uint32_t rank = 0; rank < chunk_grid_.num_chunks(); ++rank) {
    const ChunkId chunk = curve_order_.chunk_at(rank);
    const Region region = chunk_grid_.chunk_region(chunk);
    const std::vector<double> vals = grid.extract(region);
    for (auto& o : chunk_offs) o.clear();
    for (auto& v : chunk_vals) v.clear();
    for (std::uint32_t i = 0; i < vals.size(); ++i) {
      const int b = vs.scheme.bin_of(vals[i]);
      chunk_offs[b].push_back(i);
      chunk_vals[b].push_back(vals[i]);
    }
    for (int b = 0; b < nbins; ++b) {
      if (chunk_offs[b].empty()) continue;
      FragStage frag{chunk, std::move(chunk_offs[b]),
                     std::move(chunk_vals[b])};
      staged[b].push_back(std::move(frag));
      chunk_offs[b] = {};
      chunk_vals[b] = {};
    }
  }

  // --- Emit per-bin subfiles: positional index (level V's index), then the
  // payload laid out by the configured M/S order, compressed per segment.
  const int groups = num_groups();
  for (int b = 0; b < nbins; ++b) {
    BinFiles files;
    MLOC_ASSIGN_OR_RETURN(files.idx, fs_->create(idx_name(name_, var, b)));
    MLOC_ASSIGN_OR_RETURN(files.dat, fs_->create(dat_name(name_, var, b)));

    BinLayout layout;
    layout.fragments.resize(staged[b].size());
    Bytes blob_section;
    for (std::size_t f = 0; f < staged[b].size(); ++f) {
      FragmentInfo& info = layout.fragments[f];
      info.chunk = staged[b][f].chunk;
      info.count = staged[b][f].offsets.size();
      const Bytes blob = encode_positions(staged[b][f].offsets);
      info.positions = {blob_section.size(), blob.size(), fnv1a64(blob)};
      blob_section.insert(blob_section.end(), blob.begin(), blob.end());
      info.groups.resize(groups);
      // Zone map over the original values (NaNs excluded: they never
      // satisfy a VC, and an empty range reads as VC-disjoint).
      info.min_value = std::numeric_limits<double>::infinity();
      info.max_value = -std::numeric_limits<double>::infinity();
      for (double v : staged[b][f].values) {
        if (std::isnan(v)) continue;
        info.min_value = std::min(info.min_value, v);
        info.max_value = std::max(info.max_value, v);
      }
    }

    // Payload emission. In PLoD mode each fragment is shredded into byte
    // planes; the (M, S) order decides whether groups or fragments are the
    // outer loop of the .dat file.
    Bytes dat;
    auto append_segment = [&](Segment* seg, const Bytes& encoded) {
      seg->offset = dat.size();
      seg->length = encoded.size();
      seg->checksum = fnv1a64(encoded);
      dat.insert(dat.end(), encoded.begin(), encoded.end());
    };
    if (plod_capable()) {
      std::vector<plod::Shredded> shredded(staged[b].size());
      for (std::size_t f = 0; f < staged[b].size(); ++f) {
        shredded[f] = plod::shred(staged[b][f].values);
      }
      if (cfg_.order == LevelOrder::kVMS) {
        for (int g = 0; g < groups; ++g) {
          for (std::size_t f = 0; f < staged[b].size(); ++f) {
            MLOC_ASSIGN_OR_RETURN(Bytes enc,
                                  byte_codec_->encode(shredded[f].groups[g]));
            append_segment(&layout.fragments[f].groups[g], enc);
          }
        }
      } else {  // kVSM: fragments outer, byte groups inner
        for (std::size_t f = 0; f < staged[b].size(); ++f) {
          for (int g = 0; g < groups; ++g) {
            MLOC_ASSIGN_OR_RETURN(Bytes enc,
                                  byte_codec_->encode(shredded[f].groups[g]));
            append_segment(&layout.fragments[f].groups[g], enc);
          }
        }
      }
    } else {
      for (std::size_t f = 0; f < staged[b].size(); ++f) {
        MLOC_ASSIGN_OR_RETURN(Bytes enc,
                              double_codec_->encode(staged[b][f].values));
        append_segment(&layout.fragments[f].groups[0], enc);
      }
    }

    ByteWriter header;
    layout.serialize(header);
    files.header_len = header.size();
    Bytes idx = std::move(header).take();
    idx.insert(idx.end(), blob_section.begin(), blob_section.end());
    append_subfile_footer(idx);
    append_subfile_footer(dat);
    MLOC_RETURN_IF_ERROR(fs_->set_contents(files.idx, std::move(idx)));
    MLOC_RETURN_IF_ERROR(fs_->set_contents(files.dat, std::move(dat)));
    // We wrote these bytes ourselves: no need to re-verify on first read.
    files.footer_state->store(3);
    vs.bins.push_back(files);
  }

  vars_.push_back(std::move(vs));
  return write_meta();
}

// ------------------------------------------------------------ query path

Status MlocStore::ensure_subfile_verified(const BinFiles& files,
                                          bool dat_file) const {
  const std::uint8_t bit = dat_file ? 2 : 1;
  if ((files.footer_state->load(std::memory_order_acquire) & bit) != 0) {
    return Status::ok();
  }
  const pfs::FileId id = dat_file ? files.dat : files.idx;
  MLOC_ASSIGN_OR_RETURN(std::uint64_t size, fs_->file_size(id));
  // Integrity scan, not query I/O: read without the IoLog so the cost
  // model charges only what the query itself fetches.
  MLOC_ASSIGN_OR_RETURN(Bytes content, fs_->read(id, 0, size));
  MLOC_RETURN_IF_ERROR(verify_subfile_footer(content).status());
  files.footer_state->fetch_or(bit, std::memory_order_acq_rel);
  return Status::ok();
}

Result<std::vector<double>> MlocStore::fetch_fragment_values(
    const VariableState& vs, int bin, const FragmentInfo& frag, int level,
    parallel::RankContext& ctx, CacheStats& cache) const {
  const BinFiles& files = vs.bins[bin];
  FragmentProvider* provider = provider_;
  if (plod_capable()) {
    // Consult the provider for a decoded byte-group prefix. Any entry at
    // least `level` deep is a full hit; a shallower one still saves its
    // planes (prefix reuse) and gets deepened after the partial fetch.
    std::shared_ptr<const FragmentData> hit;
    if (provider != nullptr) {
      hit = provider->lookup({vs.name, bin, frag.chunk});
      if (hit != nullptr && (hit->count != frag.count || hit->planes.empty())) {
        hit = nullptr;  // foreign/degenerate entry: treat as a miss
      }
    }
    const int have = hit == nullptr ? 0 : std::min(hit->depth(), level);
    for (int g = 0; g < have; ++g) {
      cache.bytes_saved += frag.groups[g].length;
    }

    // Cached planes answer groups [0, have); the PFS covers [have, level).
    std::shared_ptr<FragmentData> fresh;
    if (have < level) {
      MLOC_RETURN_IF_ERROR(ensure_subfile_verified(files, /*dat_file=*/true));
      fresh = std::make_shared<FragmentData>();
      fresh->count = frag.count;
      fresh->planes.reserve(static_cast<std::size_t>(level));
      for (int g = 0; g < have; ++g) fresh->planes.push_back(hit->planes[g]);
      for (int g = have; g < level; ++g) {
        MLOC_ASSIGN_OR_RETURN(
            Bytes raw, fs_->read(files.dat, frag.groups[g].offset,
                                 frag.groups[g].length, &ctx.io_log,
                                 static_cast<std::uint32_t>(ctx.rank)));
        if (fnv1a64(raw) != frag.groups[g].checksum) {
          return corrupt_data("fragment segment failed checksum");
        }
        Stopwatch sw;
        MLOC_ASSIGN_OR_RETURN(Bytes plane, byte_codec_->decode(raw));
        ctx.times.decompress += sw.seconds();
        fresh->planes.push_back(std::move(plane));
      }
    }
    if (provider != nullptr) {
      if (have >= level) {
        ++cache.hits;
      } else {
        have > 0 ? ++cache.partial_hits : ++cache.misses;
        provider->insert({vs.name, bin, frag.chunk}, fresh);
      }
    }

    Stopwatch sw;
    const auto& planes = fresh != nullptr ? fresh->planes : hit->planes;
    std::vector<std::span<const std::uint8_t>> spans;
    spans.reserve(static_cast<std::size_t>(level));
    for (int g = 0; g < level; ++g) spans.emplace_back(planes[g]);
    auto assembled = plod::assemble(spans, level, frag.count);
    ctx.times.reconstruct += sw.seconds();
    return assembled;
  }

  // Whole-value mode: the decoded buffer is cached at full precision.
  if (provider != nullptr) {
    auto hit = provider->lookup({vs.name, bin, frag.chunk});
    if (hit != nullptr && hit->count == frag.count && !hit->values.empty()) {
      ++cache.hits;
      cache.bytes_saved += frag.groups[0].length;
      return hit->values;
    }
  }
  MLOC_RETURN_IF_ERROR(ensure_subfile_verified(files, /*dat_file=*/true));
  MLOC_ASSIGN_OR_RETURN(
      Bytes raw, fs_->read(files.dat, frag.groups[0].offset,
                           frag.groups[0].length, &ctx.io_log,
                           static_cast<std::uint32_t>(ctx.rank)));
  if (fnv1a64(raw) != frag.groups[0].checksum) {
    return corrupt_data("fragment segment failed checksum");
  }
  Stopwatch sw;
  auto decoded = double_codec_->decode(raw);
  ctx.times.decompress += sw.seconds();
  if (provider != nullptr && decoded.is_ok()) {
    ++cache.misses;
    if (decoded.value().size() == frag.count) {
      auto fresh = std::make_shared<FragmentData>();
      fresh->count = frag.count;
      fresh->values = decoded.value();
      provider->insert({vs.name, bin, frag.chunk}, std::move(fresh));
    }
  }
  return decoded;
}

Result<QueryResult> MlocStore::execute(const std::string& var, const Query& q,
                                       int num_ranks) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return execute_impl(*vs, q, num_ranks, nullptr);
}

Result<QueryResult> MlocStore::execute_impl(const VariableState& vs,
                                            const Query& q, int num_ranks,
                                            const Bitmap* position_filter) const {
  if (num_ranks < 1) return invalid_argument("query: num_ranks must be >= 1");
  const int max_level = num_groups() == 1 ? 7 : plod::kNumGroups;
  if (q.plod_level < 1 || q.plod_level > 7) {
    return invalid_argument("query: PLoD level must be in [1,7]");
  }
  if (q.plod_level < 7 && !plod_capable()) {
    return unsupported(
        "query: PLoD levels below full precision need a byte-column codec "
        "(MLOC-COL); this store uses " + cfg_.codec);
  }
  (void)max_level;
  if (q.sc.has_value() && q.sc->ndims() != cfg_.shape.ndims()) {
    return invalid_argument("query: SC dimensionality mismatch");
  }
  // A degenerate ([lo, lo)) or NaN value range can never match; surface it
  // as a caller error rather than silently returning an empty result.
  if (q.vc.has_value() && !q.vc->valid()) {
    return invalid_argument(
        "query: value constraint is empty or NaN (requires lo < hi)");
  }

  QueryResult result;

  // --- Step 1 (paper Fig. 5): bins to access, from the VC vs bin bounds.
  int first_bin = 0;
  int last_bin = vs.scheme.num_bins() - 1;
  if (q.vc.has_value()) {
    const auto span = vs.scheme.bins_overlapping(q.vc->lo, q.vc->hi);
    if (span.empty()) return result;  // no bin can match
    first_bin = span.first;
    last_bin = span.last;
  }

  // --- Step 2: chunks to access, from the SC mapped to the chunk lattice.
  std::optional<std::set<ChunkId>> chunk_filter;
  if (q.sc.has_value()) {
    if (q.sc->empty()) return result;
    const auto hits = chunk_grid_.chunks_overlapping(*q.sc);
    chunk_filter.emplace(hits.begin(), hits.end());
  }

  const int nbins_touched = last_bin - first_bin + 1;
  result.bins_touched = static_cast<std::uint64_t>(nbins_touched);

  // --- Phase 1: read fragment tables of the touched bins. Bins are split
  // across ranks; each rank reads headers (index I/O) and keeps the
  // fragments passing the chunk filter.
  struct BinWork {
    int bin = 0;
    bool aligned = false;
    BinLayout layout;  // filtered
  };
  std::vector<BinWork> bin_work(nbins_touched);
  Status phase1_status = Status::ok();
  auto phase1 = parallel::run_ranks(num_ranks, [&](parallel::RankContext& ctx) {
    if (!phase1_status.is_ok()) return;
    const auto ranges = parallel::split_even(
        static_cast<std::size_t>(nbins_touched), ctx.num_ranks);
    for (std::size_t i = ranges[ctx.rank].first; i < ranges[ctx.rank].second;
         ++i) {
      const int bin = first_bin + static_cast<int>(i);
      const BinFiles& files = vs.bins[bin];
      auto header = fs_->read(files.idx, 0, files.header_len, &ctx.io_log,
                              static_cast<std::uint32_t>(ctx.rank));
      if (!header.is_ok()) {
        phase1_status = header.status();
        return;
      }
      Stopwatch sw;
      ByteReader r(header.value());
      auto layout = BinLayout::deserialize(r);
      if (!layout.is_ok()) {
        phase1_status = layout.status();
        return;
      }
      BinWork& w = bin_work[i];
      w.bin = bin;
      // Aligned-bin fast path: the VC contains the bin's interval, so all
      // (original) values qualify without decompression.
      w.aligned = q.vc.has_value() &&
                  vs.scheme.aligned(bin, q.vc->lo, q.vc->hi);
      if (chunk_filter.has_value()) {
        for (auto& f : layout.value().fragments) {
          if (chunk_filter->contains(f.chunk)) {
            w.layout.fragments.push_back(std::move(f));
          }
        }
      } else {
        w.layout = std::move(layout).value();
      }
      ctx.times.reconstruct += sw.seconds();
    }
  });
  MLOC_RETURN_IF_ERROR(phase1_status);

  for (const auto& w : bin_work) {
    if (w.aligned) ++result.aligned_bins;
  }

  // --- Phase 2: flatten work items in column (bin-major) order and split
  // them evenly across ranks; each rank fetches, decompresses, filters.
  struct Item {
    const BinWork* bin;
    const FragmentInfo* frag;
  };
  std::vector<Item> items;
  for (const auto& w : bin_work) {
    for (const auto& f : w.layout.fragments) items.push_back({&w, &f});
  }

  struct RankOutput {
    std::vector<std::uint64_t> positions;
    std::vector<double> values;
    std::uint64_t fragments_read = 0;
    std::uint64_t fragments_skipped = 0;
    CacheStats cache;
  };
  std::vector<RankOutput> outputs(num_ranks);
  Status phase2_status = Status::ok();

  // Region-only access to an aligned bin answers from the index alone; the
  // values qualify by bin construction (paper §III-D-1).
  const bool need_values_for_filter =
      q.vc.has_value();  // misaligned bins must reconstruct to test the VC
  auto phase2 = parallel::run_ranks(num_ranks, [&](parallel::RankContext& ctx) {
    if (!phase2_status.is_ok()) return;
    RankOutput& out = outputs[ctx.rank];
    const auto ranges = parallel::split_even(items.size(), ctx.num_ranks);
    for (std::size_t i = ranges[ctx.rank].first; i < ranges[ctx.rank].second;
         ++i) {
      const BinWork& bw = *items[i].bin;
      const FragmentInfo& frag = *items[i].frag;
      const BinFiles& files = vs.bins[bw.bin];

      // Zone-map fast paths for misaligned bins (extension of the paper's
      // aligned-bin rule to fragment granularity): a VC disjoint from the
      // fragment's value range skips it entirely; a VC containing the
      // range qualifies every point without decompression. Like binning,
      // zone maps range over original values — the semantics VC filtering
      // uses (see Query::plod_level).
      bool frag_aligned = false;
      if (q.vc.has_value() && !bw.aligned) {
        if (frag.max_value < q.vc->lo || frag.min_value >= q.vc->hi) {
          ++out.fragments_skipped;
          continue;
        }
        frag_aligned =
            q.vc->lo <= frag.min_value && frag.max_value < q.vc->hi;
      }

      // Positional index blob (always needed: positions are the output key
      // and drive SC / bitmap filtering). A provider hit serves the decoded
      // positions without touching the PFS; a miss publishes them so later
      // queries over the same fragment skip the read and the decode.
      std::shared_ptr<const FragmentData> pos_hit;
      if (provider_ != nullptr) {
        pos_hit = provider_->lookup({vs.name, bw.bin, frag.chunk});
        if (pos_hit != nullptr &&
            (pos_hit->positions.empty() || pos_hit->count != frag.count)) {
          pos_hit = nullptr;
        }
      }
      std::vector<std::uint32_t> decoded_positions;
      const std::vector<std::uint32_t>* local = nullptr;
      if (pos_hit != nullptr) {
        out.cache.bytes_saved += frag.positions.length;
        local = &pos_hit->positions;
      } else {
        if (Status s = ensure_subfile_verified(files, /*dat_file=*/false);
            !s.is_ok()) {
          phase2_status = s;
          return;
        }
        auto blob =
            fs_->read(files.idx, files.header_len + frag.positions.offset,
                      frag.positions.length, &ctx.io_log,
                      static_cast<std::uint32_t>(ctx.rank));
        if (!blob.is_ok()) {
          phase2_status = blob.status();
          return;
        }
        if (fnv1a64(blob.value()) != frag.positions.checksum) {
          phase2_status = corrupt_data("position blob failed checksum");
          return;
        }
        Stopwatch sw_pos;
        auto decoded = decode_positions(blob.value(), frag.count);
        if (!decoded.is_ok()) {
          phase2_status = decoded.status();
          return;
        }
        decoded_positions = std::move(decoded).value();
        ctx.times.reconstruct += sw_pos.seconds();
        local = &decoded_positions;
        if (provider_ != nullptr) {
          auto fresh = std::make_shared<FragmentData>();
          fresh->count = frag.count;
          fresh->positions = decoded_positions;
          provider_->insert({vs.name, bw.bin, frag.chunk}, std::move(fresh));
        }
      }

      // Values: needed when the caller wants them, or when a misaligned
      // bin/fragment forces VC re-filtering. VC filtering always runs on
      // full-precision values (the data the index was built from), so a
      // filtered fragment is fetched at full precision even when the
      // caller asked for a reduced PLoD level.
      const bool needs_vc_filter =
          need_values_for_filter && !bw.aligned && !frag_aligned;
      const bool fetch_values = q.values_needed || needs_vc_filter;
      const int fetch_level = needs_vc_filter ? 7 : q.plod_level;
      std::vector<double> vals;       // at fetch_level (filtering basis)
      std::vector<double> out_vals;   // at q.plod_level (returned values)
      if (fetch_values) {
        auto fetched = fetch_fragment_values(vs, bw.bin, frag, fetch_level,
                                             ctx, out.cache);
        if (!fetched.is_ok()) {
          phase2_status = fetched.status();
          return;
        }
        vals = std::move(fetched).value();
        if (vals.size() != frag.count) {
          phase2_status = corrupt_data("fragment value count mismatch");
          return;
        }
        ++out.fragments_read;
        if (q.values_needed) {
          if (fetch_level != q.plod_level) {
            Stopwatch sw_degrade;
            auto degraded =
                plod::assemble(plod::shred(vals), q.plod_level);
            if (!degraded.is_ok()) {
              phase2_status = degraded.status();
              return;
            }
            out_vals = std::move(degraded).value();
            ctx.times.reconstruct += sw_degrade.seconds();
          } else {
            out_vals = vals;
          }
        }
      }

      // Filter + emit (reconstruction).
      Stopwatch sw;
      const Region chunk_region = chunk_grid_.chunk_region(frag.chunk);
      const NDShape local_shape = region_shape(chunk_region);
      for (std::size_t k = 0; k < local->size(); ++k) {
        Coord coord = local_shape.delinearize((*local)[k]);
        for (int d = 0; d < cfg_.shape.ndims(); ++d) {
          coord[d] += chunk_region.lo(d);
        }
        if (q.sc.has_value() && !q.sc->contains(coord)) continue;
        const std::uint64_t linear = cfg_.shape.linearize(coord);
        if (position_filter != nullptr && !position_filter->get(linear)) {
          continue;
        }
        if (needs_vc_filter && !q.vc->matches(vals[k])) {
          continue;
        }
        out.positions.push_back(linear);
        if (q.values_needed) out.values.push_back(out_vals[k]);
      }
      ctx.times.reconstruct += sw.seconds();
    }
  });
  MLOC_RETURN_IF_ERROR(phase2_status);

  // --- Gather: merge rank outputs sorted by position (root process role).
  Stopwatch sw_gather;
  std::size_t total = 0;
  for (const auto& o : outputs) total += o.positions.size();
  std::vector<std::pair<std::uint64_t, double>> merged;
  merged.reserve(total);
  for (auto& o : outputs) {
    result.fragments_read += o.fragments_read;
    result.fragments_skipped += o.fragments_skipped;
    result.cache += o.cache;
    for (std::size_t k = 0; k < o.positions.size(); ++k) {
      merged.emplace_back(o.positions[k],
                          q.values_needed ? o.values[k] : 0.0);
    }
  }
  std::sort(merged.begin(), merged.end());
  result.positions.reserve(merged.size());
  if (q.values_needed) result.values.reserve(merged.size());
  for (const auto& [pos, val] : merged) {
    result.positions.push_back(pos);
    if (q.values_needed) result.values.push_back(val);
  }
  const double gather_s = sw_gather.seconds();

  // --- Timing: modeled I/O makespan over both phases' merged logs plus
  // per-phase CPU maxima (ranks synchronize at phase barriers).
  pfs::IoLog io;
  io.merge_from(parallel::merged_io_log(phase1));
  io.merge_from(parallel::merged_io_log(phase2));
  result.bytes_read = io.total_bytes();
  result.times.io = pfs::model_makespan(fs_->config(), io, num_ranks);
  const ComponentTimes cpu1 = parallel::max_rank_times(phase1);
  const ComponentTimes cpu2 = parallel::max_rank_times(phase2);
  result.times.decompress = cpu1.decompress + cpu2.decompress;
  result.times.reconstruct = cpu1.reconstruct + cpu2.reconstruct + gather_s;
  return result;
}

Result<QueryResult> MlocStore::multivar_query(const std::string& select_var,
                                              ValueConstraint vc,
                                              const std::string& fetch_var,
                                              int plod_level,
                                              int num_ranks) const {
  return multivar_select({{select_var, vc}}, Combine::kAnd, fetch_var,
                         plod_level, num_ranks);
}

Result<QueryResult> MlocStore::multivar_select(
    const std::vector<VarConstraint>& preds, Combine combine,
    const std::string& fetch_var, int plod_level, int num_ranks) const {
  if (preds.empty()) {
    return invalid_argument("multivar: at least one predicate required");
  }

  // Pass 1: one region-only query per predicate; each result becomes a
  // WAH bitmap, combined in the compressed domain (§III-D-4's
  // "synchronized bitmaps").
  QueryResult accumulated;
  std::optional<WahBitmap> combined;
  for (const auto& pred : preds) {
    MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(pred.var));
    Query region_q;
    region_q.vc = pred.vc;
    region_q.values_needed = false;
    MLOC_ASSIGN_OR_RETURN(QueryResult selected,
                          execute_impl(*vs, region_q, num_ranks, nullptr));
    Stopwatch sw;
    Bitmap plain(cfg_.shape.volume());
    for (std::uint64_t p : selected.positions) plain.set(p);
    WahBitmap wah = WahBitmap::compress(plain);
    if (!combined.has_value()) {
      combined = std::move(wah);
    } else if (combine == Combine::kAnd) {
      combined = WahBitmap::logical_and(*combined, wah);
    } else {
      combined = WahBitmap::logical_or(*combined, wah);
    }
    selected.times.reconstruct += sw.seconds();
    accumulated.times += selected.times;
    accumulated.bins_touched += selected.bins_touched;
    accumulated.aligned_bins += selected.aligned_bins;
    accumulated.fragments_read += selected.fragments_read;
    accumulated.bytes_read += selected.bytes_read;
    accumulated.cache += selected.cache;
  }

  Stopwatch sw;
  const Bitmap positions = combined->decompress();
  std::vector<std::uint64_t> selected_positions;
  positions.for_each_set(
      [&](std::uint64_t p) { selected_positions.push_back(p); });
  accumulated.times.reconstruct += sw.seconds();

  if (fetch_var.empty() || selected_positions.empty()) {
    accumulated.positions = std::move(selected_positions);
    return accumulated;
  }

  // Pass 2: value retrieval restricted by the combined bitmap, narrowed to
  // the selection's bounding box so only covering chunks are touched.
  MLOC_ASSIGN_OR_RETURN(const VariableState* fetch, find_var(fetch_var));
  Query fetch_q;
  fetch_q.plod_level = plod_level;
  fetch_q.values_needed = true;
  Coord lo = cfg_.shape.delinearize(selected_positions.front());
  Coord hi = lo;
  for (std::uint64_t p : selected_positions) {
    const Coord c = cfg_.shape.delinearize(p);
    for (int d = 0; d < cfg_.shape.ndims(); ++d) {
      lo[d] = std::min(lo[d], c[d]);
      hi[d] = std::max(hi[d], c[d]);
    }
  }
  for (int d = 0; d < cfg_.shape.ndims(); ++d) ++hi[d];
  fetch_q.sc = Region(cfg_.shape.ndims(), lo, hi);
  MLOC_ASSIGN_OR_RETURN(QueryResult fetched,
                        execute_impl(*fetch, fetch_q, num_ranks, &positions));

  fetched.times += accumulated.times;
  fetched.bins_touched += accumulated.bins_touched;
  fetched.aligned_bins += accumulated.aligned_bins;
  fetched.fragments_read += accumulated.fragments_read;
  fetched.bytes_read += accumulated.bytes_read;
  fetched.cache += accumulated.cache;
  return fetched;
}

}  // namespace mloc
