#include "core/store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compress/registry.hpp"
#include "exec/engine.hpp"
#include "ingest/ingest.hpp"
#include "plod/plod.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace mloc {
namespace {

constexpr std::uint32_t kMetaMagic = 0x4D4C4F43;  // "MLOC"
// v4: layouts carry index_fanout and each variable records its optional
// .hbx header length. v3 (per-variable layouts) and v2 (store-wide layout,
// CRC footers) still open; both read as index-less.
constexpr std::uint32_t kMetaVersion = 4;
constexpr std::uint32_t kMetaVersionV3 = 3;
constexpr std::uint32_t kLegacyMetaVersion = 2;

}  // namespace

// ------------------------------------------------------------- lifecycle

Status MlocStore::init_derived_state(VariableState* vs) const {
  MLOC_RETURN_IF_ERROR(validate_layout(vs->layout, cfg_.shape));
  vs->chunk_grid = ChunkGrid(cfg_.shape, vs->layout.chunk_shape);
  MLOC_ASSIGN_OR_RETURN(
      vs->curve_order,
      make_curve_order(vs->layout, vs->chunk_grid.lattice_shape()));
  vs->byte_codec.reset();
  vs->double_codec.reset();
  if (is_byte_codec(vs->layout.codec)) {
    MLOC_ASSIGN_OR_RETURN(vs->byte_codec, make_byte_codec(vs->layout.codec));
  } else {
    MLOC_ASSIGN_OR_RETURN(vs->double_codec,
                          make_double_codec(vs->layout.codec));
  }
  return Status::ok();
}

Result<MlocStore> MlocStore::create(pfs::PfsStorage* fs, std::string name,
                                    MlocConfig cfg) {
  MLOC_CHECK(fs != nullptr);
  if (cfg.shape.ndims() == 0) {
    return invalid_argument("store: shape must have at least one dimension");
  }
  MLOC_RETURN_IF_ERROR(validate_layout(cfg.layout, cfg.shape));

  MlocStore store;
  store.fs_ = fs;
  store.name_ = std::move(name);
  store.cfg_ = std::move(cfg);
  MLOC_ASSIGN_OR_RETURN(store.meta_file_,
                        fs->create(store.name_ + ".meta"));
  MLOC_RETURN_IF_ERROR(store.write_meta());
  return store;
}

Status MlocStore::write_meta() {
  ByteWriter w;
  w.put_u32(kMetaMagic);
  w.put_u32(kMetaVersion);
  serialize_shape(w, cfg_.shape);
  cfg_.layout.serialize(w);
  {
    sync::ReaderLock lock(vars_mu_);
    w.put_varint(vars_.size());
    for (const auto& v : vars_) {
      w.put_string(v->name);
      v->layout.serialize(w);
      v->scheme.serialize(w);
      w.put_varint(v->bins.size());
      for (const auto& b : v->bins) w.put_varint(b.header_len);
      // v4: .hbx node-table length; 0 = no hierarchical index.
      w.put_varint(v->hbx.present ? v->hbx.header_len : 0);
    }
  }
  Bytes meta = std::move(w).take();
  append_subfile_footer(meta);
  return fs_->set_contents(meta_file_, std::move(meta));
}

Result<MlocStore> MlocStore::open(pfs::PfsStorage* fs,
                                  const std::string& name) {
  MLOC_CHECK(fs != nullptr);
  MlocStore store;
  store.fs_ = fs;
  store.name_ = name;
  MLOC_ASSIGN_OR_RETURN(store.meta_file_, fs->open(name + ".meta"));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t meta_size,
                        fs->file_size(store.meta_file_));
  MLOC_ASSIGN_OR_RETURN(Bytes meta, fs->read(store.meta_file_, 0, meta_size));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t meta_payload,
                        verify_subfile_footer(meta));
  ByteReader r(std::span<const std::uint8_t>(meta).first(meta_payload));

  MLOC_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kMetaMagic) return corrupt_data("meta: bad magic");
  MLOC_ASSIGN_OR_RETURN(std::uint32_t version, r.get_u32());
  if (version != kMetaVersion && version != kMetaVersionV3 &&
      version != kLegacyMetaVersion) {
    return unsupported("meta: unknown version");
  }
  const bool has_index_fanout = version >= kMetaVersion;
  MLOC_ASSIGN_OR_RETURN(store.cfg_.shape, deserialize_shape(r));
  if (version == kLegacyMetaVersion) {
    // v2 stores carry one store-wide layout in fixed field order; it becomes
    // both the default layout and every variable's layout.
    VariableLayout& l = store.cfg_.layout;
    MLOC_ASSIGN_OR_RETURN(l.chunk_shape, deserialize_shape(r));
    MLOC_ASSIGN_OR_RETURN(std::uint32_t num_bins, r.get_u32());
    if (num_bins == 0) return corrupt_data("meta: zero bin count");
    l.num_bins = static_cast<int>(num_bins);
    MLOC_ASSIGN_OR_RETURN(std::uint8_t binning, r.get_u8());
    if (binning > 1) return corrupt_data("meta: bad binning kind");
    l.binning = static_cast<BinningKind>(binning);
    MLOC_ASSIGN_OR_RETURN(std::uint8_t curve, r.get_u8());
    if (curve > 2) return corrupt_data("meta: bad curve kind");
    l.curve = static_cast<sfc::CurveKind>(curve);
    MLOC_ASSIGN_OR_RETURN(std::uint8_t order, r.get_u8());
    if (order > 1) return corrupt_data("meta: bad level order");
    l.order = static_cast<LevelOrder>(order);
    MLOC_ASSIGN_OR_RETURN(l.codec, r.get_string());
    MLOC_ASSIGN_OR_RETURN(l.sample_stride, r.get_u32());
  } else {
    MLOC_ASSIGN_OR_RETURN(store.cfg_.layout,
                          VariableLayout::deserialize(r, has_index_fanout));
  }
  MLOC_RETURN_IF_ERROR(validate_layout(store.cfg_.layout, store.cfg_.shape));

  MLOC_ASSIGN_OR_RETURN(std::uint64_t nvars, r.get_varint());
  if (nvars > 1024) return corrupt_data("meta: implausible variable count");
  for (std::uint64_t i = 0; i < nvars; ++i) {
    VariableState vs;
    MLOC_ASSIGN_OR_RETURN(vs.name, r.get_string());
    if (version == kLegacyMetaVersion) {
      vs.layout = store.cfg_.layout;
    } else {
      MLOC_ASSIGN_OR_RETURN(vs.layout,
                            VariableLayout::deserialize(r, has_index_fanout));
    }
    MLOC_RETURN_IF_ERROR(store.init_derived_state(&vs));
    MLOC_ASSIGN_OR_RETURN(vs.scheme, BinningScheme::deserialize(r));
    MLOC_ASSIGN_OR_RETURN(std::uint64_t nbins, r.get_varint());
    if (nbins != static_cast<std::uint64_t>(vs.scheme.num_bins())) {
      return corrupt_data("meta: bin count mismatches scheme");
    }
    vs.bins.resize(nbins);
    for (std::uint64_t b = 0; b < nbins; ++b) {
      MLOC_ASSIGN_OR_RETURN(vs.bins[b].header_len, r.get_varint());
      MLOC_ASSIGN_OR_RETURN(
          vs.bins[b].idx,
          fs->open(ingest::idx_name(name, vs.name, static_cast<int>(b))));
      MLOC_ASSIGN_OR_RETURN(
          vs.bins[b].dat,
          fs->open(ingest::dat_name(name, vs.name, static_cast<int>(b))));
    }
    if (has_index_fanout) {
      MLOC_ASSIGN_OR_RETURN(std::uint64_t hbx_header_len, r.get_varint());
      if (hbx_header_len > 0) {
        vs.hbx.present = true;
        vs.hbx.header_len = hbx_header_len;
        MLOC_ASSIGN_OR_RETURN(vs.hbx.file,
                              fs->open(ingest::hbx_name(name, vs.name)));
      }
    }
    sync::WriterLock lock(store.vars_mu_);
    store.vars_.push_back(std::make_shared<VariableState>(std::move(vs)));
  }
  // A legacy store is kept byte-stable on open (read-only opens of archived
  // data must not mutate it); its meta upgrades to v3 on the next ingest.
  return store;
}

std::vector<std::string> MlocStore::variables() const {
  sync::ReaderLock lock(vars_mu_);
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& v : vars_) out.push_back(v->name);
  return out;
}

Result<const BinningScheme*> MlocStore::binning(const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return &vs->scheme;
}

Result<std::vector<MlocStore::BinSubfiles>> MlocStore::bin_subfiles(
    const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  std::vector<BinSubfiles> out;
  out.reserve(vs->bins.size());
  for (const auto& b : vs->bins) {
    out.push_back({b.idx, b.dat, b.header_len});
  }
  return out;
}

Result<MlocStore::HbxSubfile> MlocStore::hbx_subfile(
    const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  HbxSubfile out;
  out.present = vs->hbx.present;
  out.file = vs->hbx.file;
  out.header_len = vs->hbx.header_len;
  return out;
}

Result<const VariableLayout*> MlocStore::variable_layout(
    const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return &vs->layout;
}

Result<const ChunkGrid*> MlocStore::chunk_grid(const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return &vs->chunk_grid;
}

Result<MlocStore::VariableDesc> MlocStore::describe(
    const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  VariableDesc desc;
  desc.name = vs->name;
  desc.layout = vs->layout;
  desc.epoch = vs->epoch;
  desc.plod_capable = vs->plod_capable();
  desc.num_groups = vs->plod_capable() ? plod::kNumGroups : 1;
  return desc;
}

std::vector<MlocStore::VariableDesc> MlocStore::describe_all() const {
  sync::ReaderLock lock(vars_mu_);
  std::vector<VariableDesc> out;
  out.reserve(vars_.size());
  for (const auto& v : vars_) {
    VariableDesc desc;
    desc.name = v->name;
    desc.layout = v->layout;
    desc.epoch = v->epoch;
    desc.plod_capable = v->plod_capable();
    desc.num_groups = v->plod_capable() ? plod::kNumGroups : 1;
    out.push_back(std::move(desc));
  }
  return out;
}

Result<const MlocStore::VariableState*> MlocStore::find_var(
    const std::string& var) const {
  sync::ReaderLock lock(vars_mu_);
  for (const auto& v : vars_) {
    if (v->name == var) return v.get();
  }
  return not_found("store: no variable named " + var);
}

std::uint64_t MlocStore::data_bytes() const {
  sync::ReaderLock lock(vars_mu_);
  std::uint64_t total = 0;
  for (const auto& v : vars_) {
    for (const auto& b : v->bins) {
      total += fs_->file_size(b.dat).value_or(0);
    }
  }
  return total;
}

std::uint64_t MlocStore::index_bytes() const {
  sync::ReaderLock lock(vars_mu_);
  std::uint64_t total = fs_->file_size(meta_file_).value_or(0);
  for (const auto& v : vars_) {
    for (const auto& b : v->bins) {
      total += fs_->file_size(b.idx).value_or(0);
    }
    if (v->hbx.present) total += fs_->file_size(v->hbx.file).value_or(0);
  }
  return total;
}

// ------------------------------------------------------------ write path

Status MlocStore::write_variable(const std::string& var, const Grid& grid) {
  return write_variable(var, grid, cfg_.layout, ingest::WriteOptions{});
}

Status MlocStore::write_variable(const std::string& var, const Grid& grid,
                                 const ingest::WriteOptions& opts) {
  return write_variable(var, grid, cfg_.layout, opts);
}

Status MlocStore::write_variable(const std::string& var, const Grid& grid,
                                 const VariableLayout& layout,
                                 const ingest::WriteOptions& opts) {
  if (!(grid.shape() == cfg_.shape)) {
    return invalid_argument("store: grid shape mismatches config");
  }
  auto vs = std::make_shared<VariableState>();
  vs->name = var;
  vs->layout = layout;
  MLOC_RETURN_IF_ERROR(init_derived_state(vs.get()));

  // One ingest at a time; queries keep running against the published state.
  sync::MutexLock ingest_lock(ingest_mu_);

  ingest::StoreWriter writer;
  writer.fs = fs_;
  writer.layout = &vs->layout;
  writer.chunk_grid = &vs->chunk_grid;
  writer.curve = &vs->curve_order;
  writer.byte_codec = vs->byte_codec.get();
  writer.double_codec = vs->double_codec.get();
  writer.store_name = name_;
  MLOC_ASSIGN_OR_RETURN(ingest::IngestOutput out,
                        ingest::ingest_variable(writer, var, grid, opts));

  vs->scheme = std::move(out.scheme);
  vs->bins.reserve(out.bins.size());
  for (auto& bin : out.bins) {
    BinFiles files;
    files.idx = bin.idx;
    files.dat = bin.dat;
    files.header_len = bin.header_len;
    // We wrote these bytes ourselves: no need to re-verify on first read,
    // and the fragment table is in hand — publish it to the header cache so
    // queries against a freshly written variable never re-read bin headers.
    files.footer_state->store(3);
    files.header_cache->put(std::move(bin.layout));
    vs->bins.push_back(std::move(files));
  }
  if (out.hbx.present) {
    vs->hbx.present = true;
    vs->hbx.file = out.hbx.file;
    vs->hbx.header_len = out.hbx.header_len;
    // Same freshness argument as the bins: we wrote (and parsed) the .hbx
    // ourselves, so first reads skip the CRC scan and the node table is
    // already in hand.
    vs->hbx.footer_state->store(1);
    vs->hbx.header_cache->put(out.hbx.header);
  }

  {
    sync::WriterLock lock(vars_mu_);
    vs->epoch = next_epoch_++;
    bool replaced = false;
    for (auto& existing : vars_) {
      if (existing->name == var) {
        // Re-ingest: swap the fresh state in place (meta order preserved)
        // and retire the old one, keeping every raw pointer ever handed
        // out by find_var/binning valid. In-flight queries on the old
        // state fail cleanly on checksum mismatch against the reused
        // subfiles rather than reading mixed generations.
        retired_.push_back(std::move(existing));
        existing = vs;
        replaced = true;
        break;
      }
    }
    if (!replaced) vars_.push_back(std::move(vs));
    ingest_stats_ += out.stats;
  }
  // The epoch bump already hides the replaced variable's cached fragments;
  // erase reclaims their provider budget eagerly.
  if (provider_ != nullptr) provider_->erase(var);
  return write_meta();
}

ingest::IngestStats MlocStore::ingest_stats() const {
  sync::ReaderLock lock(vars_mu_);
  return ingest_stats_;
}

// ------------------------------------------------------------ query path

Status MlocStore::ensure_subfile_verified(const BinFiles& files,
                                          bool dat_file) const {
  const std::uint8_t bit = dat_file ? 2 : 1;
  if ((files.footer_state->load(std::memory_order_acquire) & bit) != 0) {
    return Status::ok();
  }
  const pfs::FileId id = dat_file ? files.dat : files.idx;
  MLOC_ASSIGN_OR_RETURN(std::uint64_t size, fs_->file_size(id));
  // Integrity scan, not query I/O: read without the IoLog so the cost
  // model charges only what the query itself fetches.
  MLOC_ASSIGN_OR_RETURN(Bytes content, fs_->read(id, 0, size));
  MLOC_RETURN_IF_ERROR(verify_subfile_footer(content).status());
  files.footer_state->fetch_or(bit, std::memory_order_acq_rel);
  return Status::ok();
}

Status MlocStore::ensure_hbx_verified(const HbxFiles& files) const {
  if ((files.footer_state->load(std::memory_order_acquire) & 1) != 0) {
    return Status::ok();
  }
  MLOC_ASSIGN_OR_RETURN(std::uint64_t size, fs_->file_size(files.file));
  // Integrity scan, not query I/O — outside the IoLog, like the bins.
  MLOC_ASSIGN_OR_RETURN(Bytes content, fs_->read(files.file, 0, size));
  MLOC_RETURN_IF_ERROR(verify_subfile_footer(content).status());
  files.footer_state->fetch_or(1, std::memory_order_acq_rel);
  return Status::ok();
}

Result<QueryResult> MlocStore::execute(const std::string& var, const Query& q,
                                       int num_ranks) const {
  return execute(var, q, num_ranks, exec::ExecOptions{});
}

Result<QueryResult> MlocStore::execute(const std::string& var, const Query& q,
                                       int num_ranks,
                                       const exec::ExecOptions& opts) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return execute_impl(*vs, q, num_ranks, nullptr, opts);
}

Result<exec::PlanSummary> MlocStore::plan(const std::string& var,
                                          const Query& q, int num_ranks,
                                          const exec::ExecOptions& opts) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return exec::plan_query(make_view(*vs), q, num_ranks, opts);
}

exec::StoreView MlocStore::make_view(const VariableState& vs) const {
  exec::StoreView view;
  view.fs = fs_;
  view.shape = &cfg_.shape;
  view.layout = &vs.layout;
  view.chunk_grid = &vs.chunk_grid;
  view.var = &vs.name;
  view.scheme = &vs.scheme;
  view.epoch = vs.epoch;
  view.bins.reserve(vs.bins.size());
  for (const BinFiles& files : vs.bins) {
    view.bins.push_back(
        {files.idx, files.dat, files.header_len, files.header_cache.get()});
  }
  view.byte_codec = vs.byte_codec.get();
  view.double_codec = vs.double_codec.get();
  view.provider = provider_;
  view.verify_subfile = [this, &vs](int bin, bool dat_file) {
    return ensure_subfile_verified(vs.bins[static_cast<std::size_t>(bin)],
                                   dat_file);
  };
  if (vs.hbx.present) {
    view.hbx.present = true;
    view.hbx.file = vs.hbx.file;
    view.hbx.header_len = vs.hbx.header_len;
    view.hbx.header_cache = vs.hbx.header_cache.get();
    view.verify_hbx = [this, &vs] { return ensure_hbx_verified(vs.hbx); };
  }
  return view;
}

Result<QueryResult> MlocStore::execute_impl(
    const VariableState& vs, const Query& q, int num_ranks,
    const Bitmap* position_filter, const exec::ExecOptions& opts,
    WahBitmap* region_wah) const {
  return exec::execute_query(make_view(vs), q, num_ranks, position_filter,
                             opts, region_wah);
}

Result<QueryResult> MlocStore::multivar_query(const std::string& select_var,
                                              ValueConstraint vc,
                                              const std::string& fetch_var,
                                              int plod_level,
                                              int num_ranks) const {
  return multivar_select({{select_var, vc}}, Combine::kAnd, fetch_var,
                         plod_level, num_ranks);
}

Result<QueryResult> MlocStore::multivar_select(
    const std::vector<VarConstraint>& preds, Combine combine,
    const std::string& fetch_var, int plod_level, int num_ranks) const {
  if (preds.empty()) {
    return invalid_argument("multivar: at least one predicate required");
  }

  // Pass 1: one region-only query per predicate; the engine returns each
  // result directly as a WAH bitmap (hierarchical-index node bitmaps merge
  // per tree level in the compressed domain, boundary bins are rasterized
  // once), combined here without ever materializing flat per-variable
  // position vectors (§III-D-4's "synchronized bitmaps").
  QueryResult accumulated;
  std::optional<WahBitmap> combined;
  for (const auto& pred : preds) {
    MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(pred.var));
    Query region_q;
    region_q.vc = pred.vc;
    region_q.values_needed = false;
    WahBitmap wah;
    MLOC_ASSIGN_OR_RETURN(
        QueryResult selected,
        execute_impl(*vs, region_q, num_ranks, nullptr, exec::ExecOptions{},
                     &wah));
    Stopwatch sw;
    if (!combined.has_value()) {
      combined = std::move(wah);
    } else if (combine == Combine::kAnd) {
      combined = WahBitmap::logical_and(*combined, wah);
    } else {
      combined = WahBitmap::logical_or(*combined, wah);
    }
    selected.times.reconstruct += sw.seconds();
    accumulated.times += selected.times;
    accumulated.bins_touched += selected.bins_touched;
    accumulated.aligned_bins += selected.aligned_bins;
    accumulated.fragments_read += selected.fragments_read;
    accumulated.bytes_read += selected.bytes_read;
    accumulated.cache += selected.cache;
    accumulated.exec += selected.exec;
  }

  Stopwatch sw;
  const Bitmap positions = combined->decompress();
  std::vector<std::uint64_t> selected_positions;
  selected_positions.reserve(positions.count());
  positions.for_each_set(
      [&](std::uint64_t p) { selected_positions.push_back(p); });
  accumulated.times.reconstruct += sw.seconds();

  if (fetch_var.empty() || selected_positions.empty()) {
    accumulated.positions = std::move(selected_positions);
    return accumulated;
  }

  // Pass 2: value retrieval restricted by the combined bitmap, narrowed to
  // the selection's bounding box so only covering chunks are touched.
  MLOC_ASSIGN_OR_RETURN(const VariableState* fetch, find_var(fetch_var));
  Query fetch_q;
  fetch_q.plod_level = plod_level;
  fetch_q.values_needed = true;
  Coord lo = cfg_.shape.delinearize(selected_positions.front());
  Coord hi = lo;
  for (std::uint64_t p : selected_positions) {
    const Coord c = cfg_.shape.delinearize(p);
    for (int d = 0; d < cfg_.shape.ndims(); ++d) {
      lo[d] = std::min(lo[d], c[d]);
      hi[d] = std::max(hi[d], c[d]);
    }
  }
  for (int d = 0; d < cfg_.shape.ndims(); ++d) ++hi[d];
  fetch_q.sc = Region(cfg_.shape.ndims(), lo, hi);
  MLOC_ASSIGN_OR_RETURN(
      QueryResult fetched,
      execute_impl(*fetch, fetch_q, num_ranks, &positions,
                   exec::ExecOptions{}));

  fetched.times += accumulated.times;
  fetched.bins_touched += accumulated.bins_touched;
  fetched.aligned_bins += accumulated.aligned_bins;
  fetched.fragments_read += accumulated.fragments_read;
  fetched.bytes_read += accumulated.bytes_read;
  fetched.cache += accumulated.cache;
  fetched.exec += accumulated.exec;
  return fetched;
}

}  // namespace mloc
