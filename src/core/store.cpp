#include "core/store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compress/registry.hpp"
#include "exec/engine.hpp"
#include "ingest/ingest.hpp"
#include "plod/plod.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace mloc {
namespace {

constexpr std::uint32_t kMetaMagic = 0x4D4C4F43;  // "MLOC"
constexpr std::uint32_t kMetaVersion = 2;         // v2: CRC subfile footers

void serialize_shape(ByteWriter& w, const NDShape& s) {
  w.put_u8(static_cast<std::uint8_t>(s.ndims()));
  for (int d = 0; d < s.ndims(); ++d) w.put_u32(s.extent(d));
}

Result<NDShape> deserialize_shape(ByteReader& r) {
  MLOC_ASSIGN_OR_RETURN(std::uint8_t ndims, r.get_u8());
  if (ndims < 1 || ndims > NDShape::kMaxDims) {
    return corrupt_data("meta: bad ndims");
  }
  Coord extents{};
  for (int d = 0; d < ndims; ++d) {
    MLOC_ASSIGN_OR_RETURN(extents[d], r.get_u32());
    if (extents[d] == 0) return corrupt_data("meta: zero extent");
  }
  return NDShape(ndims, extents);
}

}  // namespace

// ------------------------------------------------------------- lifecycle

Status MlocStore::init_codecs() {
  if (is_byte_codec(cfg_.codec)) {
    MLOC_ASSIGN_OR_RETURN(byte_codec_, make_byte_codec(cfg_.codec));
  } else {
    MLOC_ASSIGN_OR_RETURN(double_codec_, make_double_codec(cfg_.codec));
  }
  return Status::ok();
}

int MlocStore::num_groups() const noexcept {
  return plod_capable() ? plod::kNumGroups : 1;
}

Result<MlocStore> MlocStore::create(pfs::PfsStorage* fs, std::string name,
                                    MlocConfig cfg) {
  MLOC_CHECK(fs != nullptr);
  if (cfg.shape.ndims() == 0 || cfg.chunk_shape.ndims() != cfg.shape.ndims()) {
    return invalid_argument("store: shape/chunk_shape dimensionality");
  }
  if (cfg.num_bins < 1) return invalid_argument("store: num_bins must be >= 1");
  if (cfg.sample_stride == 0) cfg.sample_stride = 1;

  MlocStore store;
  store.fs_ = fs;
  store.name_ = std::move(name);
  store.cfg_ = std::move(cfg);
  MLOC_RETURN_IF_ERROR(store.init_codecs());
  store.chunk_grid_ = ChunkGrid(store.cfg_.shape, store.cfg_.chunk_shape);
  store.curve_order_ = sfc::CurveOrder::make(
      store.cfg_.curve, store.chunk_grid_.lattice_shape());
  MLOC_ASSIGN_OR_RETURN(store.meta_file_,
                        fs->create(store.name_ + ".meta"));
  MLOC_RETURN_IF_ERROR(store.write_meta());
  return store;
}

Status MlocStore::write_meta() {
  ByteWriter w;
  w.put_u32(kMetaMagic);
  w.put_u32(kMetaVersion);
  serialize_shape(w, cfg_.shape);
  serialize_shape(w, cfg_.chunk_shape);
  w.put_u32(static_cast<std::uint32_t>(cfg_.num_bins));
  w.put_u8(static_cast<std::uint8_t>(cfg_.binning));
  w.put_u8(static_cast<std::uint8_t>(cfg_.curve));
  w.put_u8(static_cast<std::uint8_t>(cfg_.order));
  w.put_string(cfg_.codec);
  w.put_u32(cfg_.sample_stride);
  {
    sync::ReaderLock lock(vars_mu_);
    w.put_varint(vars_.size());
    for (const auto& v : vars_) {
      w.put_string(v->name);
      v->scheme.serialize(w);
      w.put_varint(v->bins.size());
      for (const auto& b : v->bins) w.put_varint(b.header_len);
    }
  }
  Bytes meta = std::move(w).take();
  append_subfile_footer(meta);
  return fs_->set_contents(meta_file_, std::move(meta));
}

Result<MlocStore> MlocStore::open(pfs::PfsStorage* fs,
                                  const std::string& name) {
  MLOC_CHECK(fs != nullptr);
  MlocStore store;
  store.fs_ = fs;
  store.name_ = name;
  MLOC_ASSIGN_OR_RETURN(store.meta_file_, fs->open(name + ".meta"));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t meta_size,
                        fs->file_size(store.meta_file_));
  MLOC_ASSIGN_OR_RETURN(Bytes meta, fs->read(store.meta_file_, 0, meta_size));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t meta_payload,
                        verify_subfile_footer(meta));
  ByteReader r(std::span<const std::uint8_t>(meta).first(meta_payload));

  MLOC_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kMetaMagic) return corrupt_data("meta: bad magic");
  MLOC_ASSIGN_OR_RETURN(std::uint32_t version, r.get_u32());
  if (version != kMetaVersion) return unsupported("meta: unknown version");
  MLOC_ASSIGN_OR_RETURN(store.cfg_.shape, deserialize_shape(r));
  MLOC_ASSIGN_OR_RETURN(store.cfg_.chunk_shape, deserialize_shape(r));
  MLOC_ASSIGN_OR_RETURN(std::uint32_t num_bins, r.get_u32());
  store.cfg_.num_bins = static_cast<int>(num_bins);
  MLOC_ASSIGN_OR_RETURN(std::uint8_t binning, r.get_u8());
  if (binning > 1) return corrupt_data("meta: bad binning kind");
  store.cfg_.binning = static_cast<BinningKind>(binning);
  MLOC_ASSIGN_OR_RETURN(std::uint8_t curve, r.get_u8());
  if (curve > 2) return corrupt_data("meta: bad curve kind");
  store.cfg_.curve = static_cast<sfc::CurveKind>(curve);
  MLOC_ASSIGN_OR_RETURN(std::uint8_t order, r.get_u8());
  if (order > 1) return corrupt_data("meta: bad level order");
  store.cfg_.order = static_cast<LevelOrder>(order);
  MLOC_ASSIGN_OR_RETURN(store.cfg_.codec, r.get_string());
  MLOC_ASSIGN_OR_RETURN(store.cfg_.sample_stride, r.get_u32());
  MLOC_RETURN_IF_ERROR(store.init_codecs());
  store.chunk_grid_ = ChunkGrid(store.cfg_.shape, store.cfg_.chunk_shape);
  store.curve_order_ = sfc::CurveOrder::make(
      store.cfg_.curve, store.chunk_grid_.lattice_shape());

  MLOC_ASSIGN_OR_RETURN(std::uint64_t nvars, r.get_varint());
  if (nvars > 1024) return corrupt_data("meta: implausible variable count");
  for (std::uint64_t i = 0; i < nvars; ++i) {
    VariableState vs;
    MLOC_ASSIGN_OR_RETURN(vs.name, r.get_string());
    MLOC_ASSIGN_OR_RETURN(vs.scheme, BinningScheme::deserialize(r));
    MLOC_ASSIGN_OR_RETURN(std::uint64_t nbins, r.get_varint());
    if (nbins != static_cast<std::uint64_t>(vs.scheme.num_bins())) {
      return corrupt_data("meta: bin count mismatches scheme");
    }
    vs.bins.resize(nbins);
    for (std::uint64_t b = 0; b < nbins; ++b) {
      MLOC_ASSIGN_OR_RETURN(vs.bins[b].header_len, r.get_varint());
      MLOC_ASSIGN_OR_RETURN(
          vs.bins[b].idx,
          fs->open(ingest::idx_name(name, vs.name, static_cast<int>(b))));
      MLOC_ASSIGN_OR_RETURN(
          vs.bins[b].dat,
          fs->open(ingest::dat_name(name, vs.name, static_cast<int>(b))));
    }
    sync::WriterLock lock(store.vars_mu_);
    store.vars_.push_back(std::make_shared<VariableState>(std::move(vs)));
  }
  return store;
}

std::vector<std::string> MlocStore::variables() const {
  sync::ReaderLock lock(vars_mu_);
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& v : vars_) out.push_back(v->name);
  return out;
}

Result<const BinningScheme*> MlocStore::binning(const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return &vs->scheme;
}

Result<std::vector<MlocStore::BinSubfiles>> MlocStore::bin_subfiles(
    const std::string& var) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  std::vector<BinSubfiles> out;
  out.reserve(vs->bins.size());
  for (const auto& b : vs->bins) {
    out.push_back({b.idx, b.dat, b.header_len});
  }
  return out;
}

Result<const MlocStore::VariableState*> MlocStore::find_var(
    const std::string& var) const {
  sync::ReaderLock lock(vars_mu_);
  for (const auto& v : vars_) {
    if (v->name == var) return v.get();
  }
  return not_found("store: no variable named " + var);
}

std::uint64_t MlocStore::data_bytes() const {
  sync::ReaderLock lock(vars_mu_);
  std::uint64_t total = 0;
  for (const auto& v : vars_) {
    for (const auto& b : v->bins) {
      total += fs_->file_size(b.dat).value_or(0);
    }
  }
  return total;
}

std::uint64_t MlocStore::index_bytes() const {
  sync::ReaderLock lock(vars_mu_);
  std::uint64_t total = fs_->file_size(meta_file_).value_or(0);
  for (const auto& v : vars_) {
    for (const auto& b : v->bins) {
      total += fs_->file_size(b.idx).value_or(0);
    }
  }
  return total;
}

// ------------------------------------------------------------ write path

Status MlocStore::write_variable(const std::string& var, const Grid& grid) {
  return write_variable(var, grid, ingest::WriteOptions{});
}

Status MlocStore::write_variable(const std::string& var, const Grid& grid,
                                 const ingest::WriteOptions& opts) {
  if (!(grid.shape() == cfg_.shape)) {
    return invalid_argument("store: grid shape mismatches config");
  }
  // One ingest at a time; queries keep running against the published state.
  sync::MutexLock ingest_lock(ingest_mu_);

  ingest::StoreWriter writer;
  writer.fs = fs_;
  writer.cfg = &cfg_;
  writer.chunk_grid = &chunk_grid_;
  writer.curve = &curve_order_;
  writer.byte_codec = byte_codec_.get();
  writer.double_codec = double_codec_.get();
  writer.store_name = name_;
  MLOC_ASSIGN_OR_RETURN(ingest::IngestOutput out,
                        ingest::ingest_variable(writer, var, grid, opts));

  auto vs = std::make_shared<VariableState>();
  vs->name = var;
  vs->scheme = std::move(out.scheme);
  vs->bins.reserve(out.bins.size());
  for (auto& bin : out.bins) {
    BinFiles files;
    files.idx = bin.idx;
    files.dat = bin.dat;
    files.header_len = bin.header_len;
    // We wrote these bytes ourselves: no need to re-verify on first read,
    // and the fragment table is in hand — publish it to the header cache so
    // queries against a freshly written variable never re-read bin headers.
    files.footer_state->store(3);
    files.header_cache->put(std::move(bin.layout));
    vs->bins.push_back(std::move(files));
  }

  {
    sync::WriterLock lock(vars_mu_);
    vs->epoch = next_epoch_++;
    bool replaced = false;
    for (auto& existing : vars_) {
      if (existing->name == var) {
        // Re-ingest: swap the fresh state in place (meta order preserved)
        // and retire the old one, keeping every raw pointer ever handed
        // out by find_var/binning valid. In-flight queries on the old
        // state fail cleanly on checksum mismatch against the reused
        // subfiles rather than reading mixed generations.
        retired_.push_back(std::move(existing));
        existing = vs;
        replaced = true;
        break;
      }
    }
    if (!replaced) vars_.push_back(std::move(vs));
    ingest_stats_ += out.stats;
  }
  // The epoch bump already hides the replaced variable's cached fragments;
  // erase reclaims their provider budget eagerly.
  if (provider_ != nullptr) provider_->erase(var);
  return write_meta();
}

ingest::IngestStats MlocStore::ingest_stats() const {
  sync::ReaderLock lock(vars_mu_);
  return ingest_stats_;
}

// ------------------------------------------------------------ query path

Status MlocStore::ensure_subfile_verified(const BinFiles& files,
                                          bool dat_file) const {
  const std::uint8_t bit = dat_file ? 2 : 1;
  if ((files.footer_state->load(std::memory_order_acquire) & bit) != 0) {
    return Status::ok();
  }
  const pfs::FileId id = dat_file ? files.dat : files.idx;
  MLOC_ASSIGN_OR_RETURN(std::uint64_t size, fs_->file_size(id));
  // Integrity scan, not query I/O: read without the IoLog so the cost
  // model charges only what the query itself fetches.
  MLOC_ASSIGN_OR_RETURN(Bytes content, fs_->read(id, 0, size));
  MLOC_RETURN_IF_ERROR(verify_subfile_footer(content).status());
  files.footer_state->fetch_or(bit, std::memory_order_acq_rel);
  return Status::ok();
}

Result<QueryResult> MlocStore::execute(const std::string& var, const Query& q,
                                       int num_ranks) const {
  return execute(var, q, num_ranks, exec::ExecOptions{});
}

Result<QueryResult> MlocStore::execute(const std::string& var, const Query& q,
                                       int num_ranks,
                                       const exec::ExecOptions& opts) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return execute_impl(*vs, q, num_ranks, nullptr, opts);
}

Result<exec::PlanSummary> MlocStore::plan(const std::string& var,
                                          const Query& q, int num_ranks,
                                          const exec::ExecOptions& opts) const {
  MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(var));
  return exec::plan_query(make_view(*vs), q, num_ranks, opts);
}

exec::StoreView MlocStore::make_view(const VariableState& vs) const {
  exec::StoreView view;
  view.fs = fs_;
  view.cfg = &cfg_;
  view.chunk_grid = &chunk_grid_;
  view.var = &vs.name;
  view.scheme = &vs.scheme;
  view.epoch = vs.epoch;
  view.bins.reserve(vs.bins.size());
  for (const BinFiles& files : vs.bins) {
    view.bins.push_back(
        {files.idx, files.dat, files.header_len, files.header_cache.get()});
  }
  view.byte_codec = byte_codec_.get();
  view.double_codec = double_codec_.get();
  view.provider = provider_;
  view.verify_subfile = [this, &vs](int bin, bool dat_file) {
    return ensure_subfile_verified(vs.bins[static_cast<std::size_t>(bin)],
                                   dat_file);
  };
  return view;
}

Result<QueryResult> MlocStore::execute_impl(
    const VariableState& vs, const Query& q, int num_ranks,
    const Bitmap* position_filter, const exec::ExecOptions& opts) const {
  return exec::execute_query(make_view(vs), q, num_ranks, position_filter,
                             opts);
}

Result<QueryResult> MlocStore::multivar_query(const std::string& select_var,
                                              ValueConstraint vc,
                                              const std::string& fetch_var,
                                              int plod_level,
                                              int num_ranks) const {
  return multivar_select({{select_var, vc}}, Combine::kAnd, fetch_var,
                         plod_level, num_ranks);
}

Result<QueryResult> MlocStore::multivar_select(
    const std::vector<VarConstraint>& preds, Combine combine,
    const std::string& fetch_var, int plod_level, int num_ranks) const {
  if (preds.empty()) {
    return invalid_argument("multivar: at least one predicate required");
  }

  // Pass 1: one region-only query per predicate; each result becomes a
  // WAH bitmap, combined in the compressed domain (§III-D-4's
  // "synchronized bitmaps").
  QueryResult accumulated;
  std::optional<WahBitmap> combined;
  for (const auto& pred : preds) {
    MLOC_ASSIGN_OR_RETURN(const VariableState* vs, find_var(pred.var));
    Query region_q;
    region_q.vc = pred.vc;
    region_q.values_needed = false;
    MLOC_ASSIGN_OR_RETURN(
        QueryResult selected,
        execute_impl(*vs, region_q, num_ranks, nullptr, exec::ExecOptions{}));
    Stopwatch sw;
    Bitmap plain(cfg_.shape.volume());
    for (std::uint64_t p : selected.positions) plain.set(p);
    WahBitmap wah = WahBitmap::compress(plain);
    if (!combined.has_value()) {
      combined = std::move(wah);
    } else if (combine == Combine::kAnd) {
      combined = WahBitmap::logical_and(*combined, wah);
    } else {
      combined = WahBitmap::logical_or(*combined, wah);
    }
    selected.times.reconstruct += sw.seconds();
    accumulated.times += selected.times;
    accumulated.bins_touched += selected.bins_touched;
    accumulated.aligned_bins += selected.aligned_bins;
    accumulated.fragments_read += selected.fragments_read;
    accumulated.bytes_read += selected.bytes_read;
    accumulated.cache += selected.cache;
    accumulated.exec += selected.exec;
  }

  Stopwatch sw;
  const Bitmap positions = combined->decompress();
  std::vector<std::uint64_t> selected_positions;
  selected_positions.reserve(positions.count());
  positions.for_each_set(
      [&](std::uint64_t p) { selected_positions.push_back(p); });
  accumulated.times.reconstruct += sw.seconds();

  if (fetch_var.empty() || selected_positions.empty()) {
    accumulated.positions = std::move(selected_positions);
    return accumulated;
  }

  // Pass 2: value retrieval restricted by the combined bitmap, narrowed to
  // the selection's bounding box so only covering chunks are touched.
  MLOC_ASSIGN_OR_RETURN(const VariableState* fetch, find_var(fetch_var));
  Query fetch_q;
  fetch_q.plod_level = plod_level;
  fetch_q.values_needed = true;
  Coord lo = cfg_.shape.delinearize(selected_positions.front());
  Coord hi = lo;
  for (std::uint64_t p : selected_positions) {
    const Coord c = cfg_.shape.delinearize(p);
    for (int d = 0; d < cfg_.shape.ndims(); ++d) {
      lo[d] = std::min(lo[d], c[d]);
      hi[d] = std::max(hi[d], c[d]);
    }
  }
  for (int d = 0; d < cfg_.shape.ndims(); ++d) ++hi[d];
  fetch_q.sc = Region(cfg_.shape.ndims(), lo, hi);
  MLOC_ASSIGN_OR_RETURN(
      QueryResult fetched,
      execute_impl(*fetch, fetch_q, num_ranks, &positions,
                   exec::ExecOptions{}));

  fetched.times += accumulated.times;
  fetched.bins_touched += accumulated.bins_touched;
  fetched.aligned_bins += accumulated.aligned_bins;
  fetched.fragments_read += accumulated.fragments_read;
  fetched.bytes_read += accumulated.bytes_read;
  fetched.cache += accumulated.cache;
  fetched.exec += accumulated.exec;
  return fetched;
}

}  // namespace mloc
