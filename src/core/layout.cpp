#include "core/layout.hpp"

#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace mloc {

void append_subfile_footer(Bytes& file) {
  ByteWriter w;
  w.put_u32(crc32(file));
  w.put_u32(kSubfileFooterMagic);
  const Bytes footer = std::move(w).take();
  file.insert(file.end(), footer.begin(), footer.end());
}

Result<std::uint64_t> verify_subfile_footer(
    std::span<const std::uint8_t> file) {
  if (file.size() < kSubfileFooterSize) {
    return corrupt_data("subfile footer: file shorter than footer");
  }
  const std::uint64_t payload = file.size() - kSubfileFooterSize;
  ByteReader r(file.subspan(payload));
  MLOC_ASSIGN_OR_RETURN(std::uint32_t stored_crc, r.get_u32());
  MLOC_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kSubfileFooterMagic) {
    return corrupt_data("subfile footer: bad magic");
  }
  if (stored_crc != crc32(file.first(payload))) {
    return corrupt_data("subfile footer: CRC mismatch");
  }
  return payload;
}

void BinLayout::serialize(ByteWriter& w) const {
  w.put_varint(fragments.size());
  for (const auto& f : fragments) {
    w.put_varint(f.chunk);
    w.put_varint(f.count);
    w.put_varint(f.positions.offset);
    w.put_varint(f.positions.length);
    w.put_u64(f.positions.checksum);
    w.put_varint(f.groups.size());
    for (const auto& g : f.groups) {
      w.put_varint(g.offset);
      w.put_varint(g.length);
      w.put_u64(g.checksum);
    }
    w.put_f64(f.min_value);
    w.put_f64(f.max_value);
  }
}

Result<BinLayout> BinLayout::deserialize(ByteReader& r) {
  BinLayout out;
  MLOC_ASSIGN_OR_RETURN(std::uint64_t count, r.get_varint());
  if (count > (1ull << 32)) {
    return corrupt_data("bin layout: implausible fragment count");
  }
  out.fragments.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FragmentInfo f;
    MLOC_ASSIGN_OR_RETURN(std::uint64_t chunk, r.get_varint());
    f.chunk = static_cast<ChunkId>(chunk);
    MLOC_ASSIGN_OR_RETURN(f.count, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(f.positions.offset, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(f.positions.length, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(f.positions.checksum, r.get_u64());
    MLOC_ASSIGN_OR_RETURN(std::uint64_t ngroups, r.get_varint());
    if (ngroups > 8) return corrupt_data("bin layout: too many byte groups");
    f.groups.resize(ngroups);
    for (auto& g : f.groups) {
      MLOC_ASSIGN_OR_RETURN(g.offset, r.get_varint());
      MLOC_ASSIGN_OR_RETURN(g.length, r.get_varint());
      MLOC_ASSIGN_OR_RETURN(g.checksum, r.get_u64());
    }
    MLOC_ASSIGN_OR_RETURN(f.min_value, r.get_f64());
    MLOC_ASSIGN_OR_RETURN(f.max_value, r.get_f64());
    out.fragments.push_back(std::move(f));
  }
  return out;
}

Bytes encode_positions(std::span<const std::uint32_t> local_offsets) {
  ByteWriter w(local_offsets.size() + 8);
  std::uint32_t prev = 0;
  bool first = true;
  for (std::uint32_t off : local_offsets) {
    if (first) {
      w.put_varint(off);
      first = false;
    } else {
      MLOC_DCHECK(off > prev);
      w.put_varint(off - prev);
    }
    prev = off;
  }
  return std::move(w).take();
}

Result<std::vector<std::uint32_t>> decode_positions(
    std::span<const std::uint8_t> blob, std::uint64_t count) {
  ByteReader r(blob);
  std::vector<std::uint32_t> out;
  out.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    MLOC_ASSIGN_OR_RETURN(std::uint64_t delta, r.get_varint());
    if (i != 0 && delta == 0) {
      return corrupt_data("position index not strictly ascending");
    }
    const std::uint64_t value = (i == 0) ? delta : prev + delta;
    if (value > 0xFFFFFFFFull) {
      return corrupt_data("position index exceeds 32 bits");
    }
    MLOC_DCHECK(out.size() == i);
    MLOC_DCHECK(i == 0 || value > prev);
    out.push_back(static_cast<std::uint32_t>(value));
    prev = value;
  }
  if (!r.exhausted()) return corrupt_data("position blob has trailing bytes");
  return out;
}

}  // namespace mloc
