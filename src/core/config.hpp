// MLOC store configuration — which optimization levels run in which order
// (paper §III-A-2's user-defined priorities).
//
// The reproduction supports the orders the paper evaluates: value binning
// (V) is the outermost level (it defines the per-bin subfiling of Fig. 4),
// and the multiresolution (M) and spatial (S) levels swap beneath it:
//   * kVMS — bins > PLoD byte groups > Hilbert-ordered chunk fragments.
//     Low-PLoD reads are long contiguous runs (fast); full-precision reads
//     must gather one run per byte group (Table VII row 1).
//   * kVSM — bins > Hilbert-ordered fragments > byte groups within each
//     fragment. Full-precision fragment reads are single runs; low-PLoD
//     reads scatter (Table VII row 2).
//
// The codec name selects the compression mode:
//   * byte codecs ("mzip", "rle", "raw") enable PLoD byte-column storage —
//     the MLOC-COL configuration;
//   * double codecs ("isobar", "isabela[:eps]", "xor-delta") compress whole
//     fragment value buffers — MLOC-ISO / MLOC-ISA; PLoD is unavailable
//     because values are not stored byte-planar (paper §III-B-4).
//
// Layout choices are *per variable*: a store shares one grid shape across
// its variables (MlocConfig::shape), while everything the layout pipeline
// tunes — chunking, bin count, binning kind, curve, level order, codec,
// sample stride — lives in a VariableLayout carried by each variable.
// MlocConfig::layout is merely the default applied when write_variable is
// called without an explicit layout, which is what keeps single-layout
// stores a one-liner and makes mixed-layout stores legal.
#pragma once

#include <cstdint>
#include <string>

#include "array/shape.hpp"
#include "sfc/hilbert.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace mloc {

enum class LevelOrder : std::uint8_t {
  kVMS = 0,
  kVSM = 1,
};

/// Bin-boundary construction. The paper uses equal-frequency binning "to
/// prevent load imbalance" (§III-B-1); equal-width is provided for the
/// ablation that demonstrates why.
enum class BinningKind : std::uint8_t {
  kEqualFrequency = 0,
  kEqualWidth = 1,
};

[[nodiscard]] constexpr std::string_view level_order_name(
    LevelOrder order) noexcept {
  return order == LevelOrder::kVMS ? "V-M-S" : "V-S-M";
}

/// Per-variable layout: every knob the multi-level pipeline tunes. Two
/// variables of one store may use entirely different layouts (a smooth
/// field on V-M-S/Hilbert next to a rough one on V-S-M/generalized
/// Morton); the store only fixes the grid shape they share.
struct VariableLayout {
  NDShape chunk_shape;    ///< chunking of this variable
  int num_bins = 100;     ///< equal-frequency bins (paper default)
  BinningKind binning = BinningKind::kEqualFrequency;
  sfc::CurveKind curve = sfc::CurveKind::kHilbert;
  /// Generalized-Morton interleave pattern (e.g. "zyxzyx"), consumed only
  /// when curve == kGeneralizedMorton; must be empty otherwise.
  std::string interleave;
  LevelOrder order = LevelOrder::kVMS;
  std::string codec = "mzip";
  /// Binning boundaries are estimated from every `sample_stride`-th element
  /// (the paper computes them "from partial dataset").
  std::uint32_t sample_stride = 101;
  /// Hierarchical bitmap index (.hbx) fan-out: each tree level ORs this
  /// many children of the level below. 0 disables the index (the default,
  /// and the only value meta v3 stores can express); >= 2 builds it at
  /// ingest time.
  int index_fanout = 0;

  void serialize(ByteWriter& w) const;
  /// `with_index_fanout` is false when decoding meta-v3 layout records,
  /// which predate the index_fanout field (it reads as 0 / disabled).
  [[nodiscard]] static Result<VariableLayout> deserialize(
      ByteReader& r, bool with_index_fanout = true);

  /// One-line human rendering ("V-M-S hilbert 100 bins mzip chunks 16x16").
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const VariableLayout&) const = default;
};

struct MlocConfig {
  NDShape shape;          ///< full grid shape shared by every variable
  /// Default layout for variables ingested without an explicit one.
  VariableLayout layout;
};

/// Full ingest-time validation of a layout against the grid it will tile:
/// positive bin count and sample stride, chunk shape of matching rank with
/// extents in [1, grid extent], a resolvable codec name, and (for
/// generalized Morton) an interleave pattern that covers every lattice
/// dimension. Returns InvalidArgument naming the offending field.
[[nodiscard]] Status validate_layout(const VariableLayout& layout,
                                     const NDShape& grid_shape);

/// Curve order of the chunk lattice under `layout` (dispatches on
/// layout.curve; generalized Morton consumes layout.interleave).
[[nodiscard]] Result<sfc::CurveOrder> make_curve_order(
    const VariableLayout& layout, const NDShape& lattice);

/// Shape (de)serialization shared by the store meta format and the
/// variable-layout record.
void serialize_shape(ByteWriter& w, const NDShape& s);
[[nodiscard]] Result<NDShape> deserialize_shape(ByteReader& r);

}  // namespace mloc
