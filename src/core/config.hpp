// MLOC store configuration — which optimization levels run in which order
// (paper §III-A-2's user-defined priorities).
//
// The reproduction supports the orders the paper evaluates: value binning
// (V) is the outermost level (it defines the per-bin subfiling of Fig. 4),
// and the multiresolution (M) and spatial (S) levels swap beneath it:
//   * kVMS — bins > PLoD byte groups > Hilbert-ordered chunk fragments.
//     Low-PLoD reads are long contiguous runs (fast); full-precision reads
//     must gather one run per byte group (Table VII row 1).
//   * kVSM — bins > Hilbert-ordered fragments > byte groups within each
//     fragment. Full-precision fragment reads are single runs; low-PLoD
//     reads scatter (Table VII row 2).
//
// The codec name selects the compression mode:
//   * byte codecs ("mzip", "rle", "raw") enable PLoD byte-column storage —
//     the MLOC-COL configuration;
//   * double codecs ("isobar", "isabela[:eps]", "xor-delta") compress whole
//     fragment value buffers — MLOC-ISO / MLOC-ISA; PLoD is unavailable
//     because values are not stored byte-planar (paper §III-B-4).
#pragma once

#include <cstdint>
#include <string>

#include "array/shape.hpp"
#include "sfc/hilbert.hpp"

namespace mloc {

enum class LevelOrder : std::uint8_t {
  kVMS = 0,
  kVSM = 1,
};

/// Bin-boundary construction. The paper uses equal-frequency binning "to
/// prevent load imbalance" (§III-B-1); equal-width is provided for the
/// ablation that demonstrates why.
enum class BinningKind : std::uint8_t {
  kEqualFrequency = 0,
  kEqualWidth = 1,
};

[[nodiscard]] constexpr std::string_view level_order_name(
    LevelOrder order) noexcept {
  return order == LevelOrder::kVMS ? "V-M-S" : "V-S-M";
}

struct MlocConfig {
  NDShape shape;          ///< full variable grid shape
  NDShape chunk_shape;    ///< chunking of every variable
  int num_bins = 100;     ///< equal-frequency bins (paper default)
  BinningKind binning = BinningKind::kEqualFrequency;
  sfc::CurveKind curve = sfc::CurveKind::kHilbert;
  LevelOrder order = LevelOrder::kVMS;
  std::string codec = "mzip";
  /// Binning boundaries are estimated from every `sample_stride`-th element
  /// (the paper computes them "from partial dataset").
  std::uint32_t sample_stride = 101;
};

}  // namespace mloc
