#include "staging/staging.hpp"

#include "util/timer.hpp"

namespace mloc::staging {

std::string step_variable(const std::string& var, std::uint64_t step) {
  return var + "@" + std::to_string(step);
}

StagingPipeline::StagingPipeline(MlocStore* store, Options opts)
    : store_(store), opts_(opts) {
  MLOC_CHECK(store != nullptr);
  MLOC_CHECK(opts_.queue_capacity >= 1);
  worker_ = std::thread([this] { staging_loop(); });
}

StagingPipeline::~StagingPipeline() { (void)finish(); }

Status StagingPipeline::submit(const std::string& var, std::uint64_t step,
                               Grid grid) {
  const std::string name = step_variable(var, step);
  Stopwatch wait;
  sync::MutexLock lock(mutex_);
  if (stopping_) return failed_precondition("staging: pipeline finished");
  while (queue_.size() >= opts_.queue_capacity && first_error_.is_ok() &&
         !stopping_) {
    cv_space_.wait(lock);
  }
  if (!first_error_.is_ok()) return first_error_;
  if (stopping_) return failed_precondition("staging: pipeline finished");
  stats_.producer_wait_seconds += wait.seconds();
  stats_.bytes_in += grid.size() * sizeof(double);
  ++stats_.steps_submitted;
  queue_.push_back({name, std::move(grid)});
  cv_work_.notify_one();
  return Status::ok();
}

void StagingPipeline::staging_loop() {
  while (true) {
    Item item;
    {
      sync::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_work_.wait(lock);
      if (queue_.empty()) return;  // stopping and drained
      item = std::move(queue_.front());
      queue_.pop_front();
      cv_space_.notify_all();
    }
    Stopwatch sw;
    bool duplicate = false;
    {
      sync::MutexLock lock(mutex_);
      duplicate = !staged_names_.insert(item.var).second;
    }
    Status status =
        duplicate ? invalid_argument("staging: duplicate step " + item.var)
                  : store_->write_variable(item.var, item.grid);
    const double elapsed = sw.seconds();
    {
      sync::MutexLock lock(mutex_);
      stats_.staging_seconds += elapsed;
      if (status.is_ok()) {
        ++stats_.steps_staged;
      } else if (first_error_.is_ok()) {
        first_error_ = status;
        cv_space_.notify_all();  // unblock a waiting producer
      }
    }
  }
}

Status StagingPipeline::finish() {
  {
    sync::MutexLock lock(mutex_);
    if (stopping_ && !worker_.joinable()) return first_error_;
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  if (worker_.joinable()) worker_.join();
  sync::MutexLock lock(mutex_);
  return first_error_;
}

StagingPipeline::Stats StagingPipeline::stats() const {
  sync::MutexLock lock(mutex_);
  return stats_;
}

Result<std::vector<QueryResult>> query_time_range(
    const MlocStore& store, const std::string& var, std::uint64_t first_step,
    std::uint64_t last_step, const Query& q, int num_ranks) {
  if (first_step > last_step) {
    return invalid_argument("staging: inverted time range");
  }
  std::vector<QueryResult> out;
  out.reserve(last_step - first_step + 1);
  for (std::uint64_t step = first_step; step <= last_step; ++step) {
    MLOC_ASSIGN_OR_RETURN(
        QueryResult res,
        store.execute(step_variable(var, step), q, num_ranks));
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace mloc::staging
