// In-situ staging pipeline — paper contribution 4: "MLOC implements a data
// processing pipeline which is readily incorporated with existing data
// staging frameworks [DataStager, PreDatA] to achieve efficient in-situ
// data layout optimization and compression."
//
// The pipeline decouples the simulation's output cadence from MLOC's
// layout+compression work: the producer submits time-step grids and
// returns immediately (double-buffered, bounded queue = backpressure), a
// staging thread runs the full MLOC write path, and finish() drains the
// queue and surfaces the first error. Each submitted step becomes a store
// variable named "<var>@<step>", giving the spatio-temporal naming used by
// the time-range query helper.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <thread>

#include "core/store.hpp"
#include "util/sync.hpp"

namespace mloc::staging {

/// Variable name of one staged time step.
std::string step_variable(const std::string& var, std::uint64_t step);

class StagingPipeline {
 public:
  struct Options {
    /// Steps buffered before submit() blocks (producer backpressure).
    std::size_t queue_capacity = 2;
  };

  struct Stats {
    std::uint64_t steps_submitted = 0;
    std::uint64_t steps_staged = 0;
    std::uint64_t bytes_in = 0;       ///< raw grid bytes accepted
    double staging_seconds = 0.0;     ///< time spent inside the write path
    double producer_wait_seconds = 0.0;  ///< time submit() spent blocked
  };

  /// The store must outlive the pipeline. Writes are serialized on the
  /// staging thread; the producer thread only enqueues.
  StagingPipeline(MlocStore* store, Options opts);
  ~StagingPipeline();

  StagingPipeline(const StagingPipeline&) = delete;
  StagingPipeline& operator=(const StagingPipeline&) = delete;

  /// Enqueue one time step of `var`. Blocks while the queue is full.
  /// Fails immediately if a prior staging step already failed.
  Status submit(const std::string& var, std::uint64_t step, Grid grid)
      MLOC_EXCLUDES(mutex_);

  /// Drain the queue, stop the staging thread, and return the first
  /// staging error (Ok when everything landed). Idempotent.
  Status finish() MLOC_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const MLOC_EXCLUDES(mutex_);

 private:
  struct Item {
    std::string var;
    Grid grid;
  };

  void staging_loop() MLOC_EXCLUDES(mutex_);

  MlocStore* store_;
  Options opts_;

  mutable sync::Mutex mutex_;
  sync::CondVar cv_space_;
  sync::CondVar cv_work_;
  std::deque<Item> queue_ MLOC_GUARDED_BY(mutex_);
  /// Step names already staged. The store itself replaces on re-write
  /// (re-ingest), but a simulation emitting the same time step twice is a
  /// producer bug — the pipeline rejects it rather than silently
  /// overwriting the earlier step.
  std::set<std::string> staged_names_ MLOC_GUARDED_BY(mutex_);
  bool stopping_ MLOC_GUARDED_BY(mutex_) = false;
  Status first_error_ MLOC_GUARDED_BY(mutex_);
  Stats stats_ MLOC_GUARDED_BY(mutex_);
  /// Joined only by finish(), which serializes on itself via `stopping_`;
  /// the staging thread never touches it.
  std::thread worker_;
};

/// Query a time range [first_step, last_step] of a staged variable: runs
/// `q` against every step's variable and returns per-step results.
Result<std::vector<QueryResult>> query_time_range(
    const MlocStore& store, const std::string& var, std::uint64_t first_step,
    std::uint64_t last_step, const Query& q, int num_ranks = 1);

}  // namespace mloc::staging
