// Subset-based multiresolution storage — paper §III-B-3 (the "traditional"
// approach, after Pascucci's hierarchical indexing), complementing PLoD.
//
// Every grid point has a position p on the point-level Hilbert curve of the
// enclosing power-of-two cube. With fanout f = 2^ndims and L levels, the
// hierarchical level of p is determined by divisibility: the union of
// levels 0..k is exactly the positions divisible by f^(L-1-k) — a uniform
// ~f^(L-1-k)-fold subsample of the domain. Points of one level are stored
// contiguously ("data in the same resolution level together"), so reading
// resolution k is a prefix scan of level files 0..k.
//
// Each level file is cut into segments (<= kSegmentPoints points). The
// per-level index records every segment's compressed extent and the
// bounding box of its points, enabling spatial pruning of low-resolution
// reads. Values are compressed with any registered double codec.
//
// Trade-off vs PLoD (reproduced by bench_ablation_multires): a level-k
// subset read misses entire points — fine for visualization, wrong for
// point-accurate analytics — while PLoD returns *all* points at reduced
// precision.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "array/grid.hpp"
#include "compress/codec.hpp"
#include "pfs/pfs.hpp"
#include "query/query.hpp"

namespace mloc::multires {

class SubsetStore {
 public:
  struct Config {
    NDShape shape;
    int num_levels = 4;
    std::string codec = "mzip";
    std::uint32_t segment_points = 65536;
  };

  static Result<SubsetStore> create(pfs::PfsStorage* fs, std::string name,
                                    Config cfg);
  static Result<SubsetStore> open(pfs::PfsStorage* fs,
                                  const std::string& name);

  Status write_variable(const std::string& var, const Grid& grid);

  /// Read all points of resolution levels 0..`level`, optionally restricted
  /// to `sc`. Positions are row-major linear offsets, ascending; values
  /// parallel. Level num_levels-1 returns every point.
  Result<QueryResult> read_level(const std::string& var, int level,
                                 const std::optional<Region>& sc = {},
                                 int num_ranks = 1) const;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::vector<std::string> variables() const;

  /// Fraction of all points contained in levels 0..`level`.
  [[nodiscard]] double coverage(int level) const;

  [[nodiscard]] std::uint64_t data_bytes() const;
  [[nodiscard]] std::uint64_t index_bytes() const;

 private:
  struct SegmentInfo {
    std::uint64_t offset = 0;  ///< compressed extent in the level file
    std::uint64_t length = 0;
    std::uint64_t count = 0;   ///< points in this segment
    Region bbox;               ///< bounding box for spatial pruning
  };
  struct LevelState {
    pfs::FileId file = 0;
    std::vector<SegmentInfo> segments;
  };
  struct VariableState {
    std::string name;
    std::vector<LevelState> levels;
  };

  SubsetStore() = default;

  Status init();
  Status write_meta();

  /// Points of each level, in curve order (shared by all variables).
  std::vector<std::vector<std::uint64_t>> level_positions_;  // linear offsets

  pfs::PfsStorage* fs_ = nullptr;
  std::string name_;
  Config cfg_;
  pfs::FileId meta_file_ = 0;
  std::shared_ptr<const DoubleCodec> codec_;
  std::vector<VariableState> vars_;
};

}  // namespace mloc::multires
