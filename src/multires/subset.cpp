#include "multires/subset.hpp"

#include <algorithm>

#include "compress/registry.hpp"
#include "parallel/runtime.hpp"
#include "sfc/hilbert.hpp"
#include "util/timer.hpp"

namespace mloc::multires {
namespace {

constexpr std::uint32_t kMetaMagic = 0x4D52530Bu;  // "MRS"

std::string level_file_name(const std::string& store, const std::string& var,
                            int level) {
  return store + "/" + var + ".lvl" + std::to_string(level) + ".dat";
}

void serialize_region(ByteWriter& w, const Region& r) {
  w.put_u8(static_cast<std::uint8_t>(r.ndims()));
  for (int d = 0; d < r.ndims(); ++d) {
    w.put_u32(r.lo(d));
    w.put_u32(r.hi(d));
  }
}

Result<Region> deserialize_region(ByteReader& r) {
  MLOC_ASSIGN_OR_RETURN(std::uint8_t ndims, r.get_u8());
  if (ndims < 1 || ndims > NDShape::kMaxDims) {
    return corrupt_data("subset meta: bad region ndims");
  }
  Coord lo{}, hi{};
  for (int d = 0; d < ndims; ++d) {
    MLOC_ASSIGN_OR_RETURN(lo[d], r.get_u32());
    MLOC_ASSIGN_OR_RETURN(hi[d], r.get_u32());
    if (lo[d] > hi[d]) return corrupt_data("subset meta: inverted region");
  }
  return Region(ndims, lo, hi);
}

}  // namespace

Status SubsetStore::init() {
  if (cfg_.shape.ndims() == 0) {
    return invalid_argument("subset: shape required");
  }
  if (cfg_.num_levels < 1 || cfg_.num_levels > 16) {
    return invalid_argument("subset: num_levels must be in [1,16]");
  }
  if (cfg_.segment_points == 0) {
    return invalid_argument("subset: segment_points must be positive");
  }
  MLOC_ASSIGN_OR_RETURN(codec_, make_double_codec(cfg_.codec));

  // Walk the point-level Hilbert curve of the enclosing cube once; grid
  // points get partitioned into levels by curve-position divisibility.
  const int ndims = cfg_.shape.ndims();
  const int order = sfc::covering_order(cfg_.shape);
  const std::uint64_t curve_len = 1ull << (order * ndims);
  level_positions_.assign(cfg_.num_levels, {});
  for (std::uint64_t p = 0; p < curve_len; ++p) {
    const Coord axes = sfc::hilbert_axes(ndims, order, p);
    if (!cfg_.shape.contains(axes)) continue;
    const int level = sfc::hier_level(p, cfg_.num_levels, ndims);
    level_positions_[level].push_back(cfg_.shape.linearize(axes));
  }
  return Status::ok();
}

Result<SubsetStore> SubsetStore::create(pfs::PfsStorage* fs, std::string name,
                                        Config cfg) {
  MLOC_CHECK(fs != nullptr);
  SubsetStore store;
  store.fs_ = fs;
  store.name_ = std::move(name);
  store.cfg_ = std::move(cfg);
  MLOC_RETURN_IF_ERROR(store.init());
  MLOC_ASSIGN_OR_RETURN(store.meta_file_,
                        fs->create(store.name_ + ".mrsmeta"));
  MLOC_RETURN_IF_ERROR(store.write_meta());
  return store;
}

Status SubsetStore::write_meta() {
  ByteWriter w;
  w.put_u32(kMetaMagic);
  w.put_u8(static_cast<std::uint8_t>(cfg_.shape.ndims()));
  for (int d = 0; d < cfg_.shape.ndims(); ++d) {
    w.put_u32(cfg_.shape.extent(d));
  }
  w.put_u8(static_cast<std::uint8_t>(cfg_.num_levels));
  w.put_string(cfg_.codec);
  w.put_u32(cfg_.segment_points);
  w.put_varint(vars_.size());
  for (const auto& v : vars_) {
    w.put_string(v.name);
    for (const auto& lvl : v.levels) {
      w.put_varint(lvl.segments.size());
      for (const auto& seg : lvl.segments) {
        w.put_varint(seg.offset);
        w.put_varint(seg.length);
        w.put_varint(seg.count);
        serialize_region(w, seg.bbox);
      }
    }
  }
  return fs_->set_contents(meta_file_, std::move(w).take());
}

Result<SubsetStore> SubsetStore::open(pfs::PfsStorage* fs,
                                      const std::string& name) {
  MLOC_CHECK(fs != nullptr);
  SubsetStore store;
  store.fs_ = fs;
  store.name_ = name;
  MLOC_ASSIGN_OR_RETURN(store.meta_file_, fs->open(name + ".mrsmeta"));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t size, fs->file_size(store.meta_file_));
  MLOC_ASSIGN_OR_RETURN(Bytes meta, fs->read(store.meta_file_, 0, size));
  ByteReader r(meta);
  MLOC_ASSIGN_OR_RETURN(std::uint32_t magic, r.get_u32());
  if (magic != kMetaMagic) return corrupt_data("subset meta: bad magic");
  MLOC_ASSIGN_OR_RETURN(std::uint8_t ndims, r.get_u8());
  if (ndims < 1 || ndims > NDShape::kMaxDims) {
    return corrupt_data("subset meta: bad ndims");
  }
  Coord extents{};
  for (int d = 0; d < ndims; ++d) {
    MLOC_ASSIGN_OR_RETURN(extents[d], r.get_u32());
  }
  store.cfg_.shape = NDShape(ndims, extents);
  MLOC_ASSIGN_OR_RETURN(std::uint8_t levels, r.get_u8());
  store.cfg_.num_levels = levels;
  MLOC_ASSIGN_OR_RETURN(store.cfg_.codec, r.get_string());
  MLOC_ASSIGN_OR_RETURN(store.cfg_.segment_points, r.get_u32());
  MLOC_RETURN_IF_ERROR(store.init());

  MLOC_ASSIGN_OR_RETURN(std::uint64_t nvars, r.get_varint());
  if (nvars > 1024) return corrupt_data("subset meta: variable count");
  for (std::uint64_t i = 0; i < nvars; ++i) {
    VariableState vs;
    MLOC_ASSIGN_OR_RETURN(vs.name, r.get_string());
    vs.levels.resize(store.cfg_.num_levels);
    for (int lvl = 0; lvl < store.cfg_.num_levels; ++lvl) {
      MLOC_ASSIGN_OR_RETURN(std::uint64_t nsegs, r.get_varint());
      if (nsegs > (1ull << 32)) return corrupt_data("subset meta: segments");
      vs.levels[lvl].segments.resize(nsegs);
      for (auto& seg : vs.levels[lvl].segments) {
        MLOC_ASSIGN_OR_RETURN(seg.offset, r.get_varint());
        MLOC_ASSIGN_OR_RETURN(seg.length, r.get_varint());
        MLOC_ASSIGN_OR_RETURN(seg.count, r.get_varint());
        MLOC_ASSIGN_OR_RETURN(seg.bbox, deserialize_region(r));
      }
      MLOC_ASSIGN_OR_RETURN(
          vs.levels[lvl].file,
          fs->open(level_file_name(name, vs.name, lvl)));
    }
    store.vars_.push_back(std::move(vs));
  }
  return store;
}

std::vector<std::string> SubsetStore::variables() const {
  std::vector<std::string> out;
  for (const auto& v : vars_) out.push_back(v.name);
  return out;
}

double SubsetStore::coverage(int level) const {
  MLOC_CHECK(level >= 0 && level < cfg_.num_levels);
  std::uint64_t count = 0;
  for (int l = 0; l <= level; ++l) count += level_positions_[l].size();
  return static_cast<double>(count) /
         static_cast<double>(cfg_.shape.volume());
}

std::uint64_t SubsetStore::data_bytes() const {
  std::uint64_t total = 0;
  for (const auto& v : vars_) {
    for (const auto& lvl : v.levels) {
      total += fs_->file_size(lvl.file).value_or(0);
    }
  }
  return total;
}

std::uint64_t SubsetStore::index_bytes() const {
  return fs_->file_size(meta_file_).value_or(0);
}

Status SubsetStore::write_variable(const std::string& var, const Grid& grid) {
  if (!(grid.shape() == cfg_.shape)) {
    return invalid_argument("subset: grid shape mismatches config");
  }
  for (const auto& v : vars_) {
    if (v.name == var) return invalid_argument("subset: variable exists");
  }

  VariableState vs;
  vs.name = var;
  vs.levels.resize(cfg_.num_levels);
  for (int lvl = 0; lvl < cfg_.num_levels; ++lvl) {
    LevelState& state = vs.levels[lvl];
    MLOC_ASSIGN_OR_RETURN(state.file,
                          fs_->create(level_file_name(name_, var, lvl)));
    const auto& positions = level_positions_[lvl];
    for (std::size_t base = 0; base < positions.size();
         base += cfg_.segment_points) {
      const std::size_t n =
          std::min<std::size_t>(cfg_.segment_points, positions.size() - base);
      std::vector<double> values(n);
      Coord lo{}, hi{};
      bool first = true;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t pos = positions[base + i];
        values[i] = grid.at_linear(pos);
        const Coord c = cfg_.shape.delinearize(pos);
        if (first) {
          lo = c;
          hi = c;
          first = false;
        } else {
          for (int d = 0; d < cfg_.shape.ndims(); ++d) {
            lo[d] = std::min(lo[d], c[d]);
            hi[d] = std::max(hi[d], c[d]);
          }
        }
      }
      for (int d = 0; d < cfg_.shape.ndims(); ++d) ++hi[d];  // half-open
      MLOC_ASSIGN_OR_RETURN(Bytes enc, codec_->encode(values));
      SegmentInfo seg;
      MLOC_ASSIGN_OR_RETURN(std::uint64_t off, fs_->file_size(state.file));
      seg.offset = off;
      seg.length = enc.size();
      seg.count = n;
      seg.bbox = Region(cfg_.shape.ndims(), lo, hi);
      MLOC_RETURN_IF_ERROR(fs_->append(state.file, enc));
      state.segments.push_back(seg);
    }
  }
  vars_.push_back(std::move(vs));
  return write_meta();
}

Result<QueryResult> SubsetStore::read_level(const std::string& var, int level,
                                            const std::optional<Region>& sc,
                                            int num_ranks) const {
  if (level < 0 || level >= cfg_.num_levels) {
    return invalid_argument("subset: level out of range");
  }
  if (num_ranks < 1) return invalid_argument("subset: num_ranks >= 1");
  const VariableState* vs = nullptr;
  for (const auto& v : vars_) {
    if (v.name == var) vs = &v;
  }
  if (vs == nullptr) return not_found("subset: no variable named " + var);
  if (sc.has_value() && sc->ndims() != cfg_.shape.ndims()) {
    return invalid_argument("subset: SC dimensionality mismatch");
  }

  // Work items: (level, segment) pairs passing the bbox prune.
  struct Item {
    int lvl;
    std::size_t seg;
    std::size_t pos_base;  ///< offset into level_positions_[lvl]
  };
  std::vector<Item> items;
  for (int l = 0; l <= level; ++l) {
    std::size_t base = 0;
    for (std::size_t s = 0; s < vs->levels[l].segments.size(); ++s) {
      const auto& seg = vs->levels[l].segments[s];
      if (!sc.has_value() || sc->intersects(seg.bbox)) {
        items.push_back({l, s, base});
      }
      base += seg.count;
    }
  }

  QueryResult result;
  struct RankOut {
    std::vector<std::pair<std::uint64_t, double>> hits;
  };
  std::vector<RankOut> outs(num_ranks);
  Status status = Status::ok();
  auto ranks = parallel::run_ranks(num_ranks, [&](parallel::RankContext& ctx) {
    if (!status.is_ok()) return;
    const auto ranges = parallel::split_even(items.size(), ctx.num_ranks);
    for (std::size_t i = ranges[ctx.rank].first; i < ranges[ctx.rank].second;
         ++i) {
      const Item& item = items[i];
      const auto& seg = vs->levels[item.lvl].segments[item.seg];
      auto raw = fs_->read(vs->levels[item.lvl].file, seg.offset, seg.length,
                           &ctx.io_log, static_cast<std::uint32_t>(ctx.rank));
      if (!raw.is_ok()) {
        status = raw.status();
        return;
      }
      Stopwatch sw_dec;
      auto values = codec_->decode(raw.value());
      ctx.times.decompress += sw_dec.seconds();
      if (!values.is_ok()) {
        status = values.status();
        return;
      }
      if (values.value().size() != seg.count) {
        status = corrupt_data("subset: segment count mismatch");
        return;
      }
      Stopwatch sw_rec;
      const auto& positions = level_positions_[item.lvl];
      for (std::size_t k = 0; k < seg.count; ++k) {
        const std::uint64_t pos = positions[item.pos_base + k];
        if (sc.has_value() && !sc->contains(cfg_.shape.delinearize(pos))) {
          continue;
        }
        outs[ctx.rank].hits.emplace_back(pos, values.value()[k]);
      }
      ctx.times.reconstruct += sw_rec.seconds();
    }
  });
  MLOC_RETURN_IF_ERROR(status);

  Stopwatch sw_gather;
  std::vector<std::pair<std::uint64_t, double>> merged;
  for (auto& o : outs) {
    merged.insert(merged.end(), o.hits.begin(), o.hits.end());
  }
  std::sort(merged.begin(), merged.end());
  result.positions.reserve(merged.size());
  result.values.reserve(merged.size());
  for (const auto& [pos, val] : merged) {
    result.positions.push_back(pos);
    result.values.push_back(val);
  }
  const double gather_s = sw_gather.seconds();

  const auto io = parallel::merged_io_log(ranks);
  result.bytes_read = io.total_bytes();
  result.fragments_read = items.size();
  result.times.io = pfs::model_makespan(fs_->config(), io, num_ranks);
  const auto cpu = parallel::max_rank_times(ranks);
  result.times.decompress = cpu.decompress;
  result.times.reconstruct = cpu.reconstruct + gather_s;
  return result;
}

}  // namespace mloc::multires
