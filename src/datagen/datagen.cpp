#include "datagen/datagen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace mloc::datagen {
namespace {

constexpr double kTwoPi = 6.283185307179586;

}  // namespace

Grid gts_like(std::uint32_t edge, std::uint64_t seed) {
  MLOC_CHECK(edge >= 4);
  Grid grid(NDShape{edge, edge});
  Rng rng(seed);

  // A few global poloidal/radial modes with random phases, mimicking the
  // turbulent transport structures of gyrokinetic potential fields.
  struct Mode {
    double kr, kp, amp, phase;
  };
  std::vector<Mode> modes;
  for (int m = 0; m < 12; ++m) {
    modes.push_back({rng.next_double(0.5, 6.0), rng.next_double(1.0, 14.0),
                     rng.next_double(0.2, 1.0) / (1.0 + m * 0.3),
                     rng.next_double(0.0, kTwoPi)});
  }
  const double cx = 0.5, cy = 0.5;
  for (std::uint32_t i = 0; i < edge; ++i) {
    for (std::uint32_t j = 0; j < edge; ++j) {
      const double x = static_cast<double>(i) / edge - cx;
      const double y = static_cast<double>(j) / edge - cy;
      const double r = std::sqrt(x * x + y * y) * 2.0;
      const double theta = std::atan2(y, x);
      double v = 0.0;
      for (const Mode& m : modes) {
        v += m.amp * std::sin(m.kr * kTwoPi * r + m.phase) *
             std::cos(m.kp * theta);
      }
      // Radial envelope (core-peaked) plus fine-grained noise.
      v *= std::exp(-2.0 * r * r);
      v += 0.02 * rng.next_gaussian();
      grid.at({i, j}) = v;
    }
  }
  return grid;
}

Grid s3d_like(std::uint32_t edge, std::uint64_t seed) {
  MLOC_CHECK(edge >= 4);
  Grid grid(NDShape{edge, edge, edge});
  Rng rng(seed);

  // Wrinkled flame front: temperature transitions from unburnt (~800 K) to
  // burnt (~2400 K) across a sigmoid surface perturbed by vortical modes.
  struct Wave {
    double kx, ky, amp, phase;
  };
  std::vector<Wave> waves;
  for (int w = 0; w < 8; ++w) {
    waves.push_back({rng.next_double(1.0, 6.0), rng.next_double(1.0, 6.0),
                     rng.next_double(0.01, 0.06), rng.next_double(0.0, kTwoPi)});
  }
  const double front_pos = rng.next_double(0.35, 0.65);
  const double thickness = rng.next_double(0.02, 0.05);
  for (std::uint32_t i = 0; i < edge; ++i) {
    for (std::uint32_t j = 0; j < edge; ++j) {
      for (std::uint32_t k = 0; k < edge; ++k) {
        const double x = static_cast<double>(i) / edge;
        const double y = static_cast<double>(j) / edge;
        const double z = static_cast<double>(k) / edge;
        double wrinkle = 0.0;
        for (const Wave& w : waves) {
          wrinkle += w.amp * std::sin(w.kx * kTwoPi * y + w.phase) *
                     std::cos(w.ky * kTwoPi * z);
        }
        const double s = (x - front_pos - wrinkle) / thickness;
        const double t = 800.0 + 1600.0 / (1.0 + std::exp(-s));
        grid.at({i, j, k}) = t + 3.0 * rng.next_gaussian();
      }
    }
  }
  return grid;
}

Grid s3d_species_like(const Grid& temperature, std::uint64_t seed) {
  Grid grid(temperature.shape());
  Rng rng(seed);
  // Mass fraction anti-correlated with temperature (fuel consumed where
  // burnt), with independent small-scale fluctuations.
  const auto vals = temperature.values();
  double lo = vals[0], hi = vals[0];
  for (double v : vals) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = (hi > lo) ? hi - lo : 1.0;
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    const double t01 = (vals[i] - lo) / span;
    grid.at_linear(i) =
        0.12 * (1.0 - t01) + 0.004 * rng.next_gaussian();
  }
  return grid;
}

Grid s3d_velocity_like(std::uint32_t edge, std::uint64_t seed) {
  MLOC_CHECK(edge >= 4);
  Grid grid(NDShape{edge, edge, edge});
  Rng rng(seed);

  struct Wave {
    double kx, ky, kz, amp, phase;
  };
  std::vector<Wave> waves;
  for (int w = 0; w < 10; ++w) {
    waves.push_back({rng.next_double(1.0, 8.0), rng.next_double(1.0, 8.0),
                     rng.next_double(1.0, 8.0), rng.next_double(0.05, 0.25),
                     rng.next_double(0.0, kTwoPi)});
  }
  struct Core {
    double cx, cy, cz, peak, radius;
  };
  std::vector<Core> cores;
  for (int c = 0; c < 6; ++c) {
    cores.push_back({rng.next_double(0.1, 0.9), rng.next_double(0.1, 0.9),
                     rng.next_double(0.1, 0.9),
                     (rng.next_double() < 0.5 ? -1.0 : 1.0) *
                         rng.next_double(8.0, 16.0),
                     rng.next_double(0.02, 0.05)});
  }
  for (std::uint32_t i = 0; i < edge; ++i) {
    for (std::uint32_t j = 0; j < edge; ++j) {
      for (std::uint32_t k = 0; k < edge; ++k) {
        const double x = static_cast<double>(i) / edge;
        const double y = static_cast<double>(j) / edge;
        const double z = static_cast<double>(k) / edge;
        double v = 0.0;
        for (const Wave& w : waves) {
          v += w.amp * std::sin(w.kx * kTwoPi * x + w.phase) *
               std::cos(w.ky * kTwoPi * y) * std::sin(w.kz * kTwoPi * z);
        }
        for (const Core& c : cores) {
          const double dx = x - c.cx, dy = y - c.cy, dz = z - c.cz;
          const double d2 = dx * dx + dy * dy + dz * dz;
          v += c.peak * std::exp(-d2 / (c.radius * c.radius));
        }
        v += 0.01 * rng.next_gaussian();
        grid.at({i, j, k}) = v;
      }
    }
  }
  return grid;
}

ValueConstraint random_vc(const Grid& grid, double selectivity, Rng& rng) {
  MLOC_CHECK(selectivity > 0.0 && selectivity <= 1.0);
  // Sample ~64k points, sort, pick a quantile window of width selectivity.
  const std::uint64_t n = grid.size();
  const std::uint64_t sample_target = std::min<std::uint64_t>(n, 65536);
  const std::uint64_t stride = std::max<std::uint64_t>(1, n / sample_target);
  std::vector<double> sample;
  sample.reserve(sample_target + 1);
  for (std::uint64_t i = 0; i < n; i += stride) {
    sample.push_back(grid.at_linear(i));
  }
  std::sort(sample.begin(), sample.end());
  const double qlo = rng.next_double(0.0, 1.0 - selectivity);
  const auto ilo =
      static_cast<std::size_t>(qlo * static_cast<double>(sample.size() - 1));
  const auto ihi = static_cast<std::size_t>(
      std::min<double>(qlo + selectivity, 1.0) *
      static_cast<double>(sample.size() - 1));
  ValueConstraint vc;
  vc.lo = sample[ilo];
  vc.hi = std::max(sample[ihi], sample[ilo] + 1e-12);
  return vc;
}

Region random_sc(const NDShape& shape, double selectivity, Rng& rng) {
  MLOC_CHECK(selectivity > 0.0 && selectivity <= 1.0);
  const int d = shape.ndims();
  // Target edge fraction per dim: selectivity^(1/d), jittered by up to 2x
  // per dimension while keeping the product fixed.
  std::array<double, 4> frac{};
  double target = std::pow(selectivity, 1.0 / d);
  double carry = 1.0;
  for (int dim = 0; dim < d; ++dim) {
    double f;
    if (dim + 1 == d) {
      f = selectivity / carry;  // exact product
    } else {
      const double jitter = std::exp(rng.next_double(-0.35, 0.35));
      f = target * jitter;
      carry *= f;
    }
    frac[dim] = std::clamp(f, 1e-6, 1.0);
  }
  Coord lo{}, hi{};
  for (int dim = 0; dim < d; ++dim) {
    const auto extent = shape.extent(dim);
    auto len = static_cast<std::uint32_t>(
        std::max(1.0, std::round(frac[dim] * extent)));
    len = std::min(len, extent);
    const std::uint32_t start =
        (extent == len)
            ? 0
            : static_cast<std::uint32_t>(rng.next_below(extent - len + 1));
    lo[dim] = start;
    hi[dim] = start + len;
  }
  return {d, lo, hi};
}

}  // namespace mloc::datagen
