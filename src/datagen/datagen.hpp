// Synthetic scientific datasets and query workloads.
//
// The paper evaluates on GTS (2-D plasma turbulence, aggregated time steps)
// and S3D (3-D turbulent combustion) production data, which are not
// redistributable. These generators produce fields with the properties the
// experiments actually exercise:
//   * smooth multiscale spatial structure (Hilbert locality, ISABELA's
//     sorted-curve smoothness, ISOBAR's compressible high byte planes);
//   * a wide, skewed value distribution (equal-frequency binning and
//     selectivity-controlled VC generation);
//   * deterministic output from a seed (replicated "time steps" use
//     decorrelated child seeds, mirroring the paper's replication of one
//     step to build large datasets).
//
// Query workloads follow §IV-A: random value constraints of a target value
// selectivity (from sampled quantiles) and random hyper-rectangles of a
// target region selectivity.
#pragma once

#include <cstdint>

#include "array/grid.hpp"
#include "query/query.hpp"
#include "util/rng.hpp"

namespace mloc::datagen {

/// GTS-like 2-D field (edge x edge): superposed radial/poloidal modes over
/// a toroidal cross-section plus small-scale turbulence noise.
Grid gts_like(std::uint32_t edge, std::uint64_t seed);

/// S3D-like 3-D field (edge^3): flame-front sigmoids between burnt/unburnt
/// temperature levels, wrinkled by vortical perturbations.
Grid s3d_like(std::uint32_t edge, std::uint64_t seed);

/// A second S3D-like variable correlated with `temperature` (mimics a
/// species mass fraction): used by multi-variable query tests/examples.
Grid s3d_species_like(const Grid& temperature, std::uint64_t seed);

/// S3D-like 3-D velocity component: smooth small-amplitude turbulence
/// (|v| ~ 0.5) punctured by a few strong vortex cores (peaks ~ +-15),
/// giving the wide dynamic range of real DNS velocity fields. Used by the
/// Table VI accuracy evaluation, where equal-width histogram error depends
/// on the ratio of typical magnitude to full range.
Grid s3d_velocity_like(std::uint32_t edge, std::uint64_t seed);

/// Value constraint with (approximately) the requested selectivity: picks a
/// random quantile window [q, q + selectivity] from a sample of the grid.
ValueConstraint random_vc(const Grid& grid, double selectivity, Rng& rng);

/// Random hyper-rectangle with volume ≈ selectivity * grid volume, edge
/// proportions uniform within a factor of 2 per dimension.
Region random_sc(const NDShape& shape, double selectivity, Rng& rng);

}  // namespace mloc::datagen
