// Plain and WAH-compressed bitmaps.
//
// MLOC represents spatial index results as bitmaps to minimize memory
// footprint and inter-rank communication (paper §III-D-4): a region-only
// query over variable A yields a bitmap of qualifying positions that is
// broadcast and reused to drive value-retrieval on variable B. The
// FastBit-like baseline builds its whole per-bin index out of these.
//
// WahBitmap is the Word-Aligned Hybrid encoding (Wu et al., the scheme
// FastBit uses): a sequence of 32-bit words, each either a literal holding
// 31 payload bits (MSB=0) or a fill (MSB=1, bit30 = fill value, low 30 bits
// = run length in 31-bit groups). Logical AND/OR run directly on the
// compressed form.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace mloc {

class Bitmap;
class WahBitmap;

namespace detail::scalar {
/// Retained bit-at-a-time / group-at-a-time references for differential
/// tests and bench_kernels A/B runs against the word-level fast paths.
std::uint64_t bitmap_count(const Bitmap& bm);
std::uint64_t bitmap_collect_set(const Bitmap& bm,
                                 std::vector<std::uint64_t>& out);
WahBitmap wah_logical_and(const WahBitmap& a, const WahBitmap& b);
WahBitmap wah_logical_or(const WahBitmap& a, const WahBitmap& b);
}  // namespace detail::scalar

/// Uncompressed dynamic bitset.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::uint64_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return nbits_; }

  void set(std::uint64_t i, bool v = true) noexcept {
    MLOC_DCHECK(i < nbits_);
    if (v) {
      words_[i >> 6] |= (1ull << (i & 63));
    } else {
      words_[i >> 6] &= ~(1ull << (i & 63));
    }
  }
  [[nodiscard]] bool get(std::uint64_t i) const noexcept {
    MLOC_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set bits (8-way unrolled word popcount; see DESIGN.md §11).
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// In-place logical ops. Preconditions: equal sizes.
  Bitmap& operator&=(const Bitmap& o) noexcept;
  Bitmap& operator|=(const Bitmap& o) noexcept;
  /// Flip all bits (trailing padding stays clear).
  void flip() noexcept;

  [[nodiscard]] bool operator==(const Bitmap& o) const noexcept {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  /// Invoke fn(index) for every set bit, ascending. Word-level: zero words
  /// (the common case in sparse filter results) cost one load + compare;
  /// set bits are extracted via ctz + clear-lowest, never per-bit get().
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<std::uint64_t>(w) * 64 + static_cast<unsigned>(bit));
        word &= word - 1;
      }
    }
  }

  /// Heap bytes used by the raw representation (for Table I accounting).
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  friend class WahBitmap;
  std::uint64_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Word-Aligned Hybrid compressed bitmap.
class WahBitmap {
 public:
  WahBitmap() = default;

  static WahBitmap compress(const Bitmap& plain);
  [[nodiscard]] Bitmap decompress() const;

  [[nodiscard]] std::uint64_t size_bits() const noexcept { return nbits_; }
  /// Compressed storage footprint in bytes (words + length field).
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return words_.size() * sizeof(std::uint32_t) + sizeof(std::uint64_t);
  }

  /// Population count straight off the compressed words.
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Compressed-domain logical ops. Preconditions: equal size_bits().
  /// Runs of the op's annihilator fill (zero fills for AND, one fills for
  /// OR) are skipped whole — the other operand's groups are never decoded
  /// across them. Output is canonical and byte-identical to the retained
  /// group-at-a-time reference (detail::scalar::wah_logical_*).
  static WahBitmap logical_and(const WahBitmap& a, const WahBitmap& b);
  static WahBitmap logical_or(const WahBitmap& a, const WahBitmap& b);

  void serialize(ByteWriter& w) const;
  static Result<WahBitmap> deserialize(ByteReader& r);

  [[nodiscard]] bool operator==(const WahBitmap& o) const noexcept {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

 private:
  friend WahBitmap detail::scalar::wah_logical_and(const WahBitmap& a,
                                                   const WahBitmap& b);
  friend WahBitmap detail::scalar::wah_logical_or(const WahBitmap& a,
                                                  const WahBitmap& b);

  /// Fast merge: `ann` is the op's annihilating fill value (false for AND,
  /// true for OR); runs of it pass through without decoding the other side.
  template <typename Op>
  static WahBitmap binary_op(const WahBitmap& a, const WahBitmap& b, Op op,
                             bool ann);
  /// Retained group-at-a-time merge (no annihilator skipping), reachable
  /// via detail::scalar::wah_logical_* for A/B runs.
  template <typename Op>
  static WahBitmap binary_op_reference(const WahBitmap& a, const WahBitmap& b,
                                       Op op);

  void append_group(std::uint32_t group31);  // with run coalescing
  void append_fill(bool bit, std::uint32_t ngroups);

  std::uint64_t nbits_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace mloc
