// Plain and WAH-compressed bitmaps.
//
// MLOC represents spatial index results as bitmaps to minimize memory
// footprint and inter-rank communication (paper §III-D-4): a region-only
// query over variable A yields a bitmap of qualifying positions that is
// broadcast and reused to drive value-retrieval on variable B. The
// FastBit-like baseline builds its whole per-bin index out of these.
//
// WahBitmap is the Word-Aligned Hybrid encoding (Wu et al., the scheme
// FastBit uses): a sequence of 32-bit words, each either a literal holding
// 31 payload bits (MSB=0) or a fill (MSB=1, bit30 = fill value, low 30 bits
// = run length in 31-bit groups). Logical AND/OR run directly on the
// compressed form.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace mloc {

/// Uncompressed dynamic bitset.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::uint64_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return nbits_; }

  void set(std::uint64_t i, bool v = true) noexcept {
    MLOC_DCHECK(i < nbits_);
    if (v) {
      words_[i >> 6] |= (1ull << (i & 63));
    } else {
      words_[i >> 6] &= ~(1ull << (i & 63));
    }
  }
  [[nodiscard]] bool get(std::uint64_t i) const noexcept {
    MLOC_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set bits.
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// In-place logical ops. Preconditions: equal sizes.
  Bitmap& operator&=(const Bitmap& o) noexcept;
  Bitmap& operator|=(const Bitmap& o) noexcept;
  /// Flip all bits (trailing padding stays clear).
  void flip() noexcept;

  [[nodiscard]] bool operator==(const Bitmap& o) const noexcept {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  /// Invoke fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<std::uint64_t>(w) * 64 + bit);
        word &= word - 1;
      }
    }
  }

  /// Heap bytes used by the raw representation (for Table I accounting).
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  friend class WahBitmap;
  std::uint64_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Word-Aligned Hybrid compressed bitmap.
class WahBitmap {
 public:
  WahBitmap() = default;

  static WahBitmap compress(const Bitmap& plain);
  [[nodiscard]] Bitmap decompress() const;

  [[nodiscard]] std::uint64_t size_bits() const noexcept { return nbits_; }
  /// Compressed storage footprint in bytes (words + length field).
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return words_.size() * sizeof(std::uint32_t) + sizeof(std::uint64_t);
  }

  /// Population count straight off the compressed words.
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Compressed-domain logical ops. Preconditions: equal size_bits().
  static WahBitmap logical_and(const WahBitmap& a, const WahBitmap& b);
  static WahBitmap logical_or(const WahBitmap& a, const WahBitmap& b);

  void serialize(ByteWriter& w) const;
  static Result<WahBitmap> deserialize(ByteReader& r);

  [[nodiscard]] bool operator==(const WahBitmap& o) const noexcept {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

 private:
  template <typename Op>
  static WahBitmap binary_op(const WahBitmap& a, const WahBitmap& b, Op op);

  void append_group(std::uint32_t group31);  // with run coalescing
  void append_fill(bool bit, std::uint32_t ngroups);

  std::uint64_t nbits_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace mloc
