#include "bitmap/bitmap.hpp"

#include <bit>

namespace mloc {
namespace {

constexpr std::uint32_t kFillFlag = 0x80000000u;
constexpr std::uint32_t kFillBit = 0x40000000u;
constexpr std::uint32_t kLenMask = 0x3FFFFFFFu;
constexpr std::uint32_t kPayloadMask = 0x7FFFFFFFu;

bool is_fill(std::uint32_t w) noexcept { return (w & kFillFlag) != 0; }
bool fill_value(std::uint32_t w) noexcept { return (w & kFillBit) != 0; }
std::uint32_t fill_len(std::uint32_t w) noexcept { return w & kLenMask; }

/// Streams a WAH word vector as a sequence of 31-bit groups, exposing runs.
class GroupCursor {
 public:
  explicit GroupCursor(const std::vector<std::uint32_t>& words)
      : words_(words) {
    advance_word();
  }

  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Current group payload (31 bits).
  [[nodiscard]] std::uint32_t payload() const noexcept {
    return in_fill_ ? (fill_value_ ? kPayloadMask : 0u) : literal_;
  }

  /// Number of identical groups available at the current position
  /// (>=1 while not done; >1 only inside a fill run).
  [[nodiscard]] std::uint32_t run_remaining() const noexcept {
    return in_fill_ ? fill_remaining_ : 1;
  }
  [[nodiscard]] bool run_is_fill() const noexcept { return in_fill_; }
  [[nodiscard]] bool run_fill_value() const noexcept { return fill_value_; }

  /// Consume n groups (n <= run_remaining()).
  void consume(std::uint32_t n) noexcept {
    if (in_fill_) {
      MLOC_DCHECK(n <= fill_remaining_);
      fill_remaining_ -= n;
      if (fill_remaining_ == 0) advance_word();
    } else {
      MLOC_DCHECK(n == 1);
      advance_word();
    }
  }

  /// Consume n groups across run boundaries without exposing payloads —
  /// used to stream past the other operand's annihilator fills.
  void skip(std::uint32_t n) noexcept {
    while (n > 0 && !done_) {
      const std::uint32_t step = std::min(n, run_remaining());
      consume(step);
      n -= step;
    }
    MLOC_DCHECK(n == 0);
  }

 private:
  void advance_word() noexcept {
    if (pos_ >= words_.size()) {
      done_ = true;
      return;
    }
    const std::uint32_t w = words_[pos_++];
    if (is_fill(w)) {
      in_fill_ = true;
      fill_value_ = fill_value(w);
      fill_remaining_ = fill_len(w);
      MLOC_DCHECK(fill_remaining_ > 0);
    } else {
      in_fill_ = false;
      literal_ = w & kPayloadMask;
    }
  }

  const std::vector<std::uint32_t>& words_;
  std::size_t pos_ = 0;
  bool done_ = false;
  bool in_fill_ = false;
  bool fill_value_ = false;
  std::uint32_t fill_remaining_ = 0;
  std::uint32_t literal_ = 0;
};

}  // namespace

std::uint64_t Bitmap::count() const noexcept {
  // 8-way unrolled with 4 accumulators: breaks the add dependency chain so
  // the popcounts pipeline (DESIGN.md §11).
  const std::uint64_t* w = words_.data();
  const std::size_t nw = words_.size();
  std::uint64_t c0 = 0;
  std::uint64_t c1 = 0;
  std::uint64_t c2 = 0;
  std::uint64_t c3 = 0;
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    c0 += static_cast<std::uint64_t>(std::popcount(w[i + 0])) +
          static_cast<std::uint64_t>(std::popcount(w[i + 4]));
    c1 += static_cast<std::uint64_t>(std::popcount(w[i + 1])) +
          static_cast<std::uint64_t>(std::popcount(w[i + 5]));
    c2 += static_cast<std::uint64_t>(std::popcount(w[i + 2])) +
          static_cast<std::uint64_t>(std::popcount(w[i + 6]));
    c3 += static_cast<std::uint64_t>(std::popcount(w[i + 3])) +
          static_cast<std::uint64_t>(std::popcount(w[i + 7]));
  }
  for (; i < nw; ++i) {
    c0 += static_cast<std::uint64_t>(std::popcount(w[i]));
  }
  return c0 + c1 + c2 + c3;
}

Bitmap& Bitmap::operator&=(const Bitmap& o) noexcept {
  MLOC_CHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

Bitmap& Bitmap::operator|=(const Bitmap& o) noexcept {
  MLOC_CHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

void Bitmap::flip() noexcept {
  for (auto& w : words_) w = ~w;
  // Clear padding bits past nbits_ so count()/== stay meaningful.
  const std::uint64_t tail = nbits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ull << tail) - 1;
  }
}

void WahBitmap::append_fill(bool bit, std::uint32_t ngroups) {
  if (ngroups == 0) return;
  // Coalesce with a preceding fill of the same value.
  if (!words_.empty() && is_fill(words_.back()) &&
      fill_value(words_.back()) == bit &&
      fill_len(words_.back()) + static_cast<std::uint64_t>(ngroups) <= kLenMask) {
    words_.back() += ngroups;
    return;
  }
  while (ngroups > 0) {
    const std::uint32_t n = std::min(ngroups, kLenMask);
    words_.push_back(kFillFlag | (bit ? kFillBit : 0u) | n);
    ngroups -= n;
  }
}

void WahBitmap::append_group(std::uint32_t group31) {
  if (group31 == 0) {
    append_fill(false, 1);
  } else if (group31 == kPayloadMask) {
    append_fill(true, 1);
  } else {
    words_.push_back(group31);
  }
}

WahBitmap WahBitmap::compress(const Bitmap& plain) {
  WahBitmap out;
  out.nbits_ = plain.size();
  const std::uint64_t ngroups = (plain.size() + 30) / 31;
  const auto& words = plain.words_;
  for (std::uint64_t g = 0; g < ngroups; ++g) {
    // Extract the 31-bit group straight from the 64-bit word array; padding
    // bits past size() are always clear in Bitmap's representation.
    const std::uint64_t bitpos = g * 31;
    const std::size_t w = bitpos >> 6;
    const int shift = static_cast<int>(bitpos & 63);
    std::uint64_t window = words[w] >> shift;
    if (shift > 33 && w + 1 < words.size()) {
      window |= words[w + 1] << (64 - shift);
    }
    out.append_group(static_cast<std::uint32_t>(window & kPayloadMask));
  }
  return out;
}

Bitmap WahBitmap::decompress() const {
  Bitmap out(nbits_);
  std::uint64_t bitpos = 0;
  GroupCursor cur(words_);
  while (!cur.done()) {
    if (cur.run_is_fill()) {
      const std::uint32_t n = cur.run_remaining();
      if (cur.run_fill_value()) {
        const std::uint64_t end =
            std::min<std::uint64_t>(bitpos + 31ull * n, nbits_);
        for (std::uint64_t i = bitpos; i < end; ++i) out.set(i);
      }
      bitpos += 31ull * n;
      cur.consume(n);
    } else {
      std::uint32_t payload = cur.payload();
      while (payload != 0) {
        const int bit = __builtin_ctz(payload);
        const std::uint64_t i = bitpos + static_cast<std::uint64_t>(bit);
        if (i < nbits_) out.set(i);
        payload &= payload - 1;
      }
      bitpos += 31;
      cur.consume(1);
    }
  }
  return out;
}

std::uint64_t WahBitmap::count() const noexcept {
  // Popcount on compressed words; the final group's padding bits are never
  // set because compress() only writes bits < nbits_.
  std::uint64_t c = 0;
  for (auto w : words_) {
    if (is_fill(w)) {
      if (fill_value(w)) c += 31ull * fill_len(w);
    } else {
      c += static_cast<std::uint64_t>(std::popcount(w & kPayloadMask));
    }
  }
  return c;
}

template <typename Op>
WahBitmap WahBitmap::binary_op(const WahBitmap& a, const WahBitmap& b, Op op,
                               bool ann) {
  MLOC_CHECK(a.nbits_ == b.nbits_);
  WahBitmap out;
  out.nbits_ = a.nbits_;
  GroupCursor ca(a.words_);
  GroupCursor cb(b.words_);
  while (!ca.done() && !cb.done()) {
    // Annihilator fast path: a fill of the op's absorbing value (0-fill for
    // AND, 1-fill for OR) forces the result for its whole run, so the other
    // operand's groups are skipped wholesale, never decoded. append_fill's
    // coalescing makes the output identical to the group-at-a-time
    // reference below.
    if (ca.run_is_fill() && ca.run_fill_value() == ann) {
      const std::uint32_t n = ca.run_remaining();
      out.append_fill(ann, n);
      ca.consume(n);
      cb.skip(n);
    } else if (cb.run_is_fill() && cb.run_fill_value() == ann) {
      const std::uint32_t n = cb.run_remaining();
      out.append_fill(ann, n);
      cb.consume(n);
      ca.skip(n);
    } else if (ca.run_is_fill() && cb.run_is_fill()) {
      // Both identity fills: op(!ann, !ann) for the overlapping run.
      const std::uint32_t n = std::min(ca.run_remaining(), cb.run_remaining());
      const bool v = op(ca.run_fill_value(), cb.run_fill_value());
      out.append_fill(v, n);
      ca.consume(n);
      cb.consume(n);
    } else if (ca.run_is_fill()) {
      // a is an identity fill, b a literal: the result is b's group.
      out.append_group(cb.payload());
      ca.consume(1);
      cb.consume(1);
    } else if (cb.run_is_fill()) {
      out.append_group(ca.payload());
      ca.consume(1);
      cb.consume(1);
    } else {
      const std::uint32_t merged = op(ca.payload(), cb.payload()) & kPayloadMask;
      out.append_group(merged);
      ca.consume(1);
      cb.consume(1);
    }
  }
  MLOC_CHECK(ca.done() == cb.done());  // equal sizes → streams end together
  return out;
}

template <typename Op>
WahBitmap WahBitmap::binary_op_reference(const WahBitmap& a, const WahBitmap& b,
                                         Op op) {
  MLOC_CHECK(a.nbits_ == b.nbits_);
  WahBitmap out;
  out.nbits_ = a.nbits_;
  GroupCursor ca(a.words_);
  GroupCursor cb(b.words_);
  while (!ca.done() && !cb.done()) {
    if (ca.run_is_fill() && cb.run_is_fill()) {
      const std::uint32_t n = std::min(ca.run_remaining(), cb.run_remaining());
      const bool v = op(ca.run_fill_value(), cb.run_fill_value());
      out.append_fill(v, n);
      ca.consume(n);
      cb.consume(n);
    } else {
      const std::uint32_t merged = op(ca.payload(), cb.payload()) & kPayloadMask;
      out.append_group(merged);
      ca.consume(1);
      cb.consume(1);
    }
  }
  MLOC_CHECK(ca.done() == cb.done());  // equal sizes → streams end together
  return out;
}

WahBitmap WahBitmap::logical_and(const WahBitmap& a, const WahBitmap& b) {
  return binary_op(
      a, b, [](auto x, auto y) { return x & y; }, /*ann=*/false);
}

WahBitmap WahBitmap::logical_or(const WahBitmap& a, const WahBitmap& b) {
  return binary_op(
      a, b, [](auto x, auto y) { return x | y; }, /*ann=*/true);
}

void WahBitmap::serialize(ByteWriter& w) const {
  w.put_varint(nbits_);
  w.put_varint(words_.size());
  for (auto word : words_) w.put_u32(word);
}

Result<WahBitmap> WahBitmap::deserialize(ByteReader& r) {
  WahBitmap out;
  MLOC_ASSIGN_OR_RETURN(out.nbits_, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(std::uint64_t nwords, r.get_varint());
  if (nwords > r.remaining() / sizeof(std::uint32_t)) {
    return corrupt_data("WAH word count exceeds stream");
  }
  out.words_.reserve(nwords);
  for (std::uint64_t i = 0; i < nwords; ++i) {
    MLOC_ASSIGN_OR_RETURN(std::uint32_t word, r.get_u32());
    if (is_fill(word) && fill_len(word) == 0) {
      return corrupt_data("WAH fill word with zero length");
    }
    out.words_.push_back(word);
  }
  // Validate total group count against nbits_.
  std::uint64_t groups = 0;
  for (auto word : out.words_) groups += is_fill(word) ? fill_len(word) : 1;
  if (groups != (out.nbits_ + 30) / 31) {
    return corrupt_data("WAH group count mismatches bit count");
  }
  return out;
}

namespace detail::scalar {

std::uint64_t bitmap_count(const Bitmap& bm) {
  std::uint64_t c = 0;
  for (std::uint64_t i = 0; i < bm.size(); ++i) {
    c += bm.get(i) ? 1 : 0;
  }
  return c;
}

std::uint64_t bitmap_collect_set(const Bitmap& bm,
                                 std::vector<std::uint64_t>& out) {
  for (std::uint64_t i = 0; i < bm.size(); ++i) {
    if (bm.get(i)) out.push_back(i);
  }
  return out.size();
}

WahBitmap wah_logical_and(const WahBitmap& a, const WahBitmap& b) {
  return WahBitmap::binary_op_reference(
      a, b, [](auto x, auto y) { return x & y; });
}

WahBitmap wah_logical_or(const WahBitmap& a, const WahBitmap& b) {
  return WahBitmap::binary_op_reference(
      a, b, [](auto x, auto y) { return x | y; });
}

}  // namespace detail::scalar

}  // namespace mloc
