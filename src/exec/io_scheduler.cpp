#include "exec/io_scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace mloc::exec {

std::vector<pfs::ReadRequest> coalesce_segments(
    std::span<const PlannedSegment> segments, std::uint64_t max_gap_bytes,
    std::vector<SlotRef>* slots, std::uint64_t* bridged_bytes) {
  if (slots != nullptr) {
    slots->assign(segments.size(), SlotRef{});
  }
  // Sort indices, not segments, so each input keeps its slot.
  std::vector<std::size_t> order(segments.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PlannedSegment& x = segments[a];
    const PlannedSegment& y = segments[b];
    if (x.file != y.file) return x.file < y.file;
    if (x.offset != y.offset) return x.offset < y.offset;
    return x.len < y.len;
  });

  std::vector<pfs::ReadRequest> merged;
  std::uint32_t tail_class = 0;
  for (const std::size_t i : order) {
    const PlannedSegment& s = segments[i];
    if (s.len == 0) continue;  // nothing to read; slot stays extent = -1
    bool extend = false;
    if (!merged.empty() && merged.back().file == s.file) {
      const std::uint64_t tail_end = merged.back().offset + merged.back().len;
      if (s.offset <= tail_end) {
        extend = true;  // overlapping or exactly adjacent: free merge
      } else if (s.merge_class == tail_class &&
                 s.offset - tail_end <= max_gap_bytes) {
        extend = true;  // same stream, small gap: bridge it
        if (bridged_bytes != nullptr) *bridged_bytes += s.offset - tail_end;
      }
    }
    if (extend) {
      pfs::ReadRequest& tail = merged.back();
      const std::uint64_t end =
          std::max(tail.offset + tail.len, s.offset + s.len);
      tail.len = end - tail.offset;
    } else {
      merged.push_back({s.file, s.offset, s.len});
    }
    tail_class = s.merge_class;
    if (slots != nullptr) {
      (*slots)[i] = {static_cast<int>(merged.size()) - 1,
                     s.offset - merged.back().offset};
    }
  }
  return merged;
}

std::vector<pfs::ReadRequest> naive_schedule(
    std::span<const PlannedSegment> segments, std::vector<SlotRef>* slots) {
  std::vector<pfs::ReadRequest> out;
  out.reserve(segments.size());
  if (slots != nullptr) slots->assign(segments.size(), SlotRef{});
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const PlannedSegment& s = segments[i];
    if (s.len == 0) continue;
    out.push_back({s.file, s.offset, s.len});
    if (slots != nullptr) {
      (*slots)[i] = {static_cast<int>(out.size()) - 1, 0};
    }
  }
  return out;
}

}  // namespace mloc::exec
