#include "exec/decode_pipeline.hpp"

#include <utility>

#include "plod/plod.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace mloc::exec {
namespace {

/// Row-major shape of a region (local-offset <-> coord mapping).
NDShape region_shape(const Region& region) {
  Coord extents{};
  for (int d = 0; d < region.ndims(); ++d) extents[d] = region.extent(d);
  return {region.ndims(), extents};
}

}  // namespace

DecodedFragment decode_fragment(const DecodeInput& in) {
  DecodedFragment out;
  const StoreView& view = *in.view;
  const Query& q = *in.q;
  const FragmentTask& task = *in.task;
  const FragmentInfo& frag = *task.frag;

  std::size_t si = 0;  // cursor over the task's segments
  auto next_bytes = [&]() -> std::span<const std::uint8_t> {
    const PlannedSegment& seg = in.segments[si];
    const SlotRef& slot = in.slots[si];
    ++si;
    if (slot.extent < 0) return {};
    return std::span<const std::uint8_t>((*in.buffers)[slot.extent])
        .subspan(slot.delta, seg.len);
  };

  // --- Positional index: cached decode or blob decode from the batch.
  std::vector<std::uint32_t> decoded_positions;
  const std::vector<std::uint32_t>* local = nullptr;
  if (task.blob_cached) {
    local = &task.cached->positions;
  } else {
    const std::span<const std::uint8_t> blob = next_bytes();
    if (fnv1a64(blob) != frag.positions.checksum) {
      out.status = corrupt_data("position blob failed checksum");
      return out;
    }
    Stopwatch sw_pos;
    auto decoded = decode_positions(blob, frag.count);
    if (!decoded.is_ok()) {
      out.status = decoded.status();
      return out;
    }
    decoded_positions = std::move(decoded).value();
    out.reconstruct_s += sw_pos.seconds();
    local = &decoded_positions;
    if (view.provider != nullptr) {
      auto fresh = std::make_shared<FragmentData>();
      fresh->count = frag.count;
      fresh->positions = decoded_positions;
      out.fresh_positions = std::move(fresh);
    }
  }

  // --- Values: decode at fetch_level, degrade to the requested level.
  std::vector<double> vals;      // at fetch_level (filtering basis)
  std::vector<double> out_vals;  // at q.plod_level (returned values)
  if (task.fetch_values) {
    if (view.plod_capable()) {
      // Cached planes answer groups [0, cached_depth); the batch buffers
      // cover [cached_depth, fetch_level).
      std::shared_ptr<FragmentData> fresh;
      if (task.cached_depth < task.fetch_level) {
        fresh = std::make_shared<FragmentData>();
        fresh->count = frag.count;
        fresh->planes.reserve(static_cast<std::size_t>(task.fetch_level));
        for (int g = 0; g < task.cached_depth; ++g) {
          fresh->planes.push_back(task.cached->planes[g]);
        }
        for (int g = task.cached_depth; g < task.fetch_level; ++g) {
          const std::span<const std::uint8_t> raw = next_bytes();
          if (fnv1a64(raw) != frag.groups[g].checksum) {
            out.status = corrupt_data("fragment segment failed checksum");
            return out;
          }
          Stopwatch sw;
          auto plane = view.byte_codec->decode(raw);
          out.decompress_s += sw.seconds();
          if (!plane.is_ok()) {
            out.status = plane.status();
            return out;
          }
          fresh->planes.push_back(std::move(plane).value());
        }
        if (view.provider != nullptr) out.fresh_payload = fresh;
      }
      Stopwatch sw;
      const auto& planes =
          fresh != nullptr ? fresh->planes : task.cached->planes;
      std::vector<std::span<const std::uint8_t>> spans;
      spans.reserve(static_cast<std::size_t>(task.fetch_level));
      for (int g = 0; g < task.fetch_level; ++g) spans.emplace_back(planes[g]);
      vals.resize(frag.count);
      const Status assembled =
          plod::assemble_into(spans, task.fetch_level, vals);
      out.reconstruct_s += sw.seconds();
      if (!assembled.is_ok()) {
        out.status = assembled;
        return out;
      }
    } else {
      // Whole-value mode: the decoded buffer is cached at full precision.
      if (task.cached_depth > 0) {
        vals = task.cached->values;
      } else {
        const std::span<const std::uint8_t> raw = next_bytes();
        if (fnv1a64(raw) != frag.groups[0].checksum) {
          out.status = corrupt_data("fragment segment failed checksum");
          return out;
        }
        Stopwatch sw;
        auto decoded = view.double_codec->decode(raw);
        out.decompress_s += sw.seconds();
        if (!decoded.is_ok()) {
          out.status = decoded.status();
          return out;
        }
        vals = std::move(decoded).value();
        if (view.provider != nullptr && vals.size() == frag.count) {
          auto fresh = std::make_shared<FragmentData>();
          fresh->count = frag.count;
          fresh->values = vals;
          out.fresh_payload = std::move(fresh);
        }
      }
    }
    if (vals.size() != frag.count) {
      out.status = corrupt_data("fragment value count mismatch");
      return out;
    }
    if (q.values_needed) {
      if (view.plod_capable() && task.fetch_level != q.plod_level) {
        // One masked pass instead of shred + assemble round-tripping
        // through byte planes; bit-identical by degrade_into's contract.
        Stopwatch sw_degrade;
        out_vals.resize(vals.size());
        plod::degrade_into(vals, q.plod_level, out_vals);
        out.reconstruct_s += sw_degrade.seconds();
      } else {
        out_vals = vals;
      }
    }
  }

  // --- Filter + emit (reconstruction).
  Stopwatch sw;
  const Region chunk_region = view.chunk_grid->chunk_region(frag.chunk);
  const NDShape local_shape = region_shape(chunk_region);
  const NDShape& shape = *view.shape;
  for (std::size_t k = 0; k < local->size(); ++k) {
    Coord coord = local_shape.delinearize((*local)[k]);
    for (int d = 0; d < shape.ndims(); ++d) {
      coord[d] += chunk_region.lo(d);
    }
    if (q.sc.has_value() && !q.sc->contains(coord)) continue;
    const std::uint64_t linear = shape.linearize(coord);
    if (in.position_filter != nullptr && !in.position_filter->get(linear)) {
      continue;
    }
    if (task.needs_vc_filter && !q.vc->matches(vals[k])) {
      continue;
    }
    out.positions.push_back(linear);
    if (q.values_needed) out.values.push_back(out_vals[k]);
  }
  out.reconstruct_s += sw.seconds();
  return out;
}

DecodePipeline::DecodePipeline(int workers, std::size_t expected_tasks,
                               std::size_t min_tasks) {
  if (workers > 0 && expected_tasks >= min_tasks) {
    pool_ = std::make_unique<parallel::ThreadPool>(workers);
  }
}

void DecodePipeline::submit(std::function<void()> job) {
  if (pool_ != nullptr) {
    pool_->submit(std::move(job));
  } else {
    job();
  }
}

void DecodePipeline::wait() {
  if (pool_ != nullptr) pool_->wait_idle();
}

}  // namespace mloc::exec
