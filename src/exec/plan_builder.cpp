// PlanBuilder — stage 1 of the query engine: resolve a query into a
// ReadPlan and its costable PlanSummary.
//
// Every decision the old monolithic execute path made mid-read is made
// here, up front:
//   - bins from the VC, chunks from the SC (paper Fig. 5 steps 1-2);
//   - fragment-table headers via the per-bin BinHeaderCache (cold reads
//     are consumed here and charged to the owning phase-1 rank);
//   - zone-map pruning and aligned-bin/-fragment classification;
//   - FragmentProvider consultation: cache hits prune their extents from
//     the plan (hit/miss/bytes_saved accounting is fixed at plan time);
//   - per-rank segment lists with merge classes for the IoScheduler.
//
// The same function serves execution (warm=true) and planner estimation
// (warm=false, side-effect-free), which is what makes planner predictions
// match the executed plan exactly.
#include <algorithm>
#include <optional>
#include <set>

#include "exec/engine.hpp"
#include "exec/io_scheduler.hpp"
#include "parallel/runtime.hpp"
#include "plod/plod.hpp"
#include "util/timer.hpp"

namespace mloc::exec {
namespace {

// Merge classes (unique within a bin; cross-bin collisions are harmless
// because segments of different bins live in different files).
constexpr std::uint32_t kBlobClass = 1;     ///< positional-index blob stream
constexpr std::uint32_t kStreamClass = 2;   ///< whole-fragment payload scan
constexpr std::uint32_t kSectionClassBase = 3;  ///< VMS byte-group sections
constexpr std::uint32_t kHbxClass = 15;     ///< .hbx node-bitmap stream
constexpr std::uint32_t kPrivateClassBase = 16; ///< per-task (no bridging)

/// Fraction of a chunk's volume the SC overlaps (1 when there is no SC).
double sc_fraction(const Region& chunk_region, const std::optional<Region>& sc) {
  if (!sc.has_value()) return 1.0;
  const Region overlap = chunk_region.intersection(*sc);
  if (overlap.empty() || chunk_region.volume() == 0) return 0.0;
  return static_cast<double>(overlap.volume()) /
         static_cast<double>(chunk_region.volume());
}

}  // namespace

int StoreView::num_groups() const noexcept {
  return plod_capable() ? plod::kNumGroups : 1;
}

Result<ReadPlan> build_plan(const StoreView& view, const Query& q,
                            int num_ranks, const ExecOptions& opts,
                            bool warm) {
  ReadPlan plan;
  plan.num_ranks = num_ranks;
  plan.ranks.resize(static_cast<std::size_t>(num_ranks));
  PlanSummary& sum = plan.summary;

  const bool plod = view.plod_capable();
  const int ngroups = view.num_groups();
  // Planner calls clamp instead of rejecting; execute_query validates the
  // raw level before planning, so clamping never changes execution.
  const int req_level = plod ? std::clamp(q.plod_level, 1, ngroups) : 1;

  // --- Step 1 (paper Fig. 5): bins to access, from the VC vs bin bounds.
  int first_bin = 0;
  int last_bin = view.scheme->num_bins() - 1;
  if (q.vc.has_value()) {
    const auto span = view.scheme->bins_overlapping(q.vc->lo, q.vc->hi);
    if (span.empty()) return plan;  // no bin can match
    first_bin = span.first;
    last_bin = span.last;
  }

  // --- Step 2: chunks to access, from the SC mapped to the chunk lattice.
  std::optional<std::set<ChunkId>> chunk_filter;
  if (q.sc.has_value()) {
    if (q.sc->empty()) return plan;
    const auto hits = view.chunk_grid->chunks_overlapping(*q.sc);
    chunk_filter.emplace(hits.begin(), hits.end());
  }

  const int nbins_touched = last_bin - first_bin + 1;
  sum.bins_touched = static_cast<std::uint64_t>(nbins_touched);

  // --- Hierarchical index (tentpole of ISSUE 9): a region-only VC query
  // resolves the aligned interior of its bin span top-down through the
  // .hbx tree — fully-covered subtrees contribute their aggregate bitmap
  // with zero .idx reads, and only the boundary bins fall through to the
  // positional-index path below. Value-retrieval queries keep the flat
  // path: they must touch the fragments anyway.
  int hbx_first = 0, hbx_last = -1;  // empty span
  const bool hbx_usable = opts.use_hbx && view.hbx.present &&
                          q.vc.has_value() && !q.values_needed;
  if (hbx_usable) {
    std::shared_ptr<const index::HbxHeader> header =
        view.hbx.header_cache != nullptr ? view.hbx.header_cache->get()
                                         : nullptr;
    if (header == nullptr) {
      // Cold node-table read: consumed here, charged to rank 0 (one small
      // read per store open, the .hbx analogue of a bin header).
      MLOC_ASSIGN_OR_RETURN(
          Bytes raw, view.fs->read(view.hbx.file, 0, view.hbx.header_len));
      Stopwatch sw;
      MLOC_ASSIGN_OR_RETURN(index::HbxHeader parsed,
                            index::HbxHeader::deserialize(raw));
      auto owned = std::make_shared<const index::HbxHeader>(std::move(parsed));
      plan.ranks[0].header_parse_s += sw.seconds();
      if (view.hbx.header_len > 0) {
        plan.ranks[0].header_reads.push_back(
            {view.hbx.file, 0, view.hbx.header_len, 0});
      }
      if (warm && view.hbx.header_cache != nullptr) {
        view.hbx.header_cache->put(owned);
      }
      header = std::move(owned);
    }
    if (header->num_bins != view.scheme->num_bins() ||
        header->nbits != view.shape->volume()) {
      return corrupt_data("hbx: node table mismatches store geometry");
    }
    // Aligned interior: the maximal contiguous run of VC-aligned bins.
    // With interval binning only the two boundary bins can be misaligned;
    // the full-scan guard below keeps correctness even if they aren't.
    int a = first_bin, b = last_bin;
    while (a <= b && !view.scheme->aligned(a, q.vc->lo, q.vc->hi)) ++a;
    while (b >= a && !view.scheme->aligned(b, q.vc->lo, q.vc->hi)) --b;
    bool contiguous = a <= b;
    for (int bin = a; bin <= b && contiguous; ++bin) {
      contiguous = view.scheme->aligned(bin, q.vc->lo, q.vc->hi);
    }
    if (contiguous && a <= b) {
      hbx_first = a;
      hbx_last = b;
      plan.hbx_header = header;
      sum.aligned_bins +=
          static_cast<std::uint64_t>(hbx_last - hbx_first + 1);
      double sc_vol_frac = 1.0;
      if (q.sc.has_value()) {
        sc_vol_frac = static_cast<double>(q.sc->volume()) /
                      static_cast<double>(view.shape->volume());
      }
      std::vector<std::size_t> nodes =
          index::cover(*header, hbx_first, hbx_last);
      // cover() emits bin-span order (mixed levels). Node payloads are laid
      // out id-major in the .hbx, so re-sorting by id puts each rank's
      // share in file order and lets sibling runs (consecutive ids, gap 0)
      // coalesce into single extents. Result order is irrelevant: node
      // bitmaps are OR-folded and the gather sorts positions globally.
      std::sort(nodes.begin(), nodes.end());
      const auto node_ranges = parallel::split_even(nodes.size(), num_ranks);
      for (int r = 0; r < num_ranks; ++r) {
        RankPlan& rp = plan.ranks[static_cast<std::size_t>(r)];
        for (std::size_t i = node_ranges[static_cast<std::size_t>(r)].first;
             i < node_ranges[static_cast<std::size_t>(r)].second; ++i) {
          const std::size_t id = nodes[i];
          const index::HbxNode& n = header->nodes[id];
          HbxNodeTask task;
          task.node = id;
          if (view.provider != nullptr) {
            auto hit = view.provider->lookup(
                {*view.var, static_cast<int>(id), kHbxNodeChunk, view.epoch});
            if (hit != nullptr && hit->has_node) {
              task.cached = std::move(hit);
              ++sum.cache.hits;
              sum.cache.bytes_saved += n.length;
            } else {
              ++sum.cache.misses;
            }
          }
          if (task.cached == nullptr) {
            task.has_segment = true;
            task.seg_index = rp.hbx_segments.size();
            rp.hbx_segments.push_back({view.hbx.file,
                                       view.hbx.header_len + n.offset,
                                       n.length, kHbxClass});
          }
          sum.est_points += static_cast<double>(n.popcount) * sc_vol_frac;
          rp.hbx_tasks.push_back(std::move(task));
        }
      }
    }
  }

  // Bins the flat positional-index path still owns: the span minus the
  // tree-covered interior (at most the two boundary bins when the index
  // ran, the whole span otherwise).
  std::vector<int> flat_bins;
  flat_bins.reserve(static_cast<std::size_t>(nbins_touched));
  for (int bin = first_bin; bin <= last_bin; ++bin) {
    if (bin < hbx_first || bin > hbx_last) flat_bins.push_back(bin);
  }

  // --- Headers: bins split across ranks (phase-1 assignment). A cached
  // header costs nothing; a cold one is read+parsed here and charged to
  // the rank that owns the bin.
  struct BinWork {
    int bin = 0;
    bool aligned = false;
    std::vector<const FragmentInfo*> frags;  ///< chunk-filtered, curve order
  };
  std::vector<BinWork> bin_work(flat_bins.size());
  const auto bin_ranges = parallel::split_even(flat_bins.size(), num_ranks);
  for (int r = 0; r < num_ranks; ++r) {
    RankPlan& rp = plan.ranks[static_cast<std::size_t>(r)];
    for (std::size_t i = bin_ranges[static_cast<std::size_t>(r)].first;
         i < bin_ranges[static_cast<std::size_t>(r)].second; ++i) {
      const int bin = flat_bins[i];
      const StoreView::BinRef& ref = view.bins[static_cast<std::size_t>(bin)];
      std::shared_ptr<const BinLayout> layout =
          ref.header_cache != nullptr ? ref.header_cache->get() : nullptr;
      if (layout == nullptr) {
        MLOC_ASSIGN_OR_RETURN(
            Bytes header, view.fs->read(ref.idx, 0, ref.header_len));
        Stopwatch sw;
        ByteReader rd(header);
        MLOC_ASSIGN_OR_RETURN(BinLayout parsed, BinLayout::deserialize(rd));
        auto owned = std::make_shared<const BinLayout>(std::move(parsed));
        rp.header_parse_s += sw.seconds();
        if (ref.header_len > 0) {
          rp.header_reads.push_back(
              {ref.idx, 0, ref.header_len, static_cast<std::uint32_t>(r)});
        }
        if (warm && ref.header_cache != nullptr) {
          ref.header_cache->put(owned);
        }
        layout = std::move(owned);
      }
      BinWork& w = bin_work[i];
      w.bin = bin;
      // Aligned-bin fast path: the VC contains the bin's interval, so all
      // (original) values qualify without decompression.
      w.aligned = q.vc.has_value() &&
                  view.scheme->aligned(bin, q.vc->lo, q.vc->hi);
      for (const auto& f : layout->fragments) {
        if (!chunk_filter.has_value() || chunk_filter->contains(f.chunk)) {
          w.frags.push_back(&f);
        }
      }
      plan.layouts.push_back(std::move(layout));
    }
  }
  for (const auto& w : bin_work) {
    if (w.aligned) ++sum.aligned_bins;
  }

  // --- Fragments: flatten in column (bin-major) order and split evenly
  // across ranks (phase-2 assignment, unchanged from the monolith).
  struct ItemRef {
    const BinWork* bin;
    const FragmentInfo* frag;
  };
  std::vector<ItemRef> items;
  for (const auto& w : bin_work) {
    for (const FragmentInfo* f : w.frags) items.push_back({&w, f});
  }

  // With the tree covering the aligned interior, only boundary bins reach
  // the flat path. Splitting their fragments mid-bin would shred each
  // bin's byte-group section streams across ranks (one unbridgeable extent
  // per group per rank instead of a single whole-bin scan), so flat bins
  // are then assigned to ranks whole; node reads occupy the other ranks.
  std::vector<std::pair<std::size_t, std::size_t>> item_ranges;
  if (plan.hbx_header != nullptr && !bin_work.empty()) {
    std::vector<std::size_t> first_item(bin_work.size() + 1, 0);
    for (std::size_t w = 0; w < bin_work.size(); ++w) {
      first_item[w + 1] = first_item[w] + bin_work[w].frags.size();
    }
    for (const auto& br : parallel::split_even(bin_work.size(), num_ranks)) {
      item_ranges.emplace_back(first_item[br.first], first_item[br.second]);
    }
  } else {
    item_ranges = parallel::split_even(items.size(), num_ranks);
  }
  std::uint32_t next_private_class = kPrivateClassBase;
  std::uint64_t planned_seg_bytes = 0;
  std::uint64_t planned_seg_count = 0;
  for (int r = 0; r < num_ranks; ++r) {
    RankPlan& rp = plan.ranks[static_cast<std::size_t>(r)];
    for (std::size_t i = item_ranges[static_cast<std::size_t>(r)].first;
         i < item_ranges[static_cast<std::size_t>(r)].second; ++i) {
      const BinWork& bw = *items[i].bin;
      const FragmentInfo& frag = *items[i].frag;
      FragmentTask task;
      task.bin = bw.bin;
      task.frag = &frag;
      task.bin_aligned = bw.aligned;
      // Empty range even for skipped tasks, so consecutive-run segment
      // arithmetic in the executor stays valid.
      task.seg_begin = rp.segments.size();

      // Zone-map fast paths for misaligned bins: a VC disjoint from the
      // fragment's value range skips it entirely; a VC containing the
      // range qualifies every point without decompression.
      if (q.vc.has_value() && !bw.aligned) {
        if (frag.max_value < q.vc->lo || frag.min_value >= q.vc->hi) {
          task.skipped = true;
          ++sum.fragments_skipped;
          rp.tasks.push_back(std::move(task));
          continue;
        }
        task.frag_aligned =
            q.vc->lo <= frag.min_value && frag.max_value < q.vc->hi;
      }

      // One provider lookup decides both the positional index and the
      // payload prefix — cache hits prune their extents from the plan.
      std::shared_ptr<const FragmentData> hit;
      if (view.provider != nullptr) {
        hit = view.provider->lookup(
            {*view.var, bw.bin, frag.chunk, view.epoch});
      }
      task.cached = hit;

      const bool pos_usable = hit != nullptr && hit->count == frag.count &&
                              !hit->positions.empty();
      if (pos_usable) {
        task.blob_cached = true;
        sum.cache.bytes_saved += frag.positions.length;
      } else {
        const StoreView::BinRef& ref =
            view.bins[static_cast<std::size_t>(bw.bin)];
        rp.segments.push_back({ref.idx,
                               ref.header_len + frag.positions.offset,
                               frag.positions.length, kBlobClass});
      }

      task.needs_vc_filter =
          q.vc.has_value() && !bw.aligned && !task.frag_aligned;
      task.fetch_values = q.values_needed || task.needs_vc_filter;
      task.fetch_level =
          plod ? (task.needs_vc_filter ? ngroups : req_level) : 1;

      if (task.fetch_values) {
        ++sum.fragments_to_fetch;
        const StoreView::BinRef& ref =
            view.bins[static_cast<std::size_t>(bw.bin)];
        if (plod) {
          const bool planes_usable = hit != nullptr &&
                                     hit->count == frag.count &&
                                     !hit->planes.empty();
          task.cached_depth =
              planes_usable ? std::min(hit->depth(), task.fetch_level) : 0;
          for (int g = 0; g < task.cached_depth; ++g) {
            sum.cache.bytes_saved += frag.groups[g].length;
          }
          if (view.provider != nullptr) {
            if (task.cached_depth >= task.fetch_level) {
              ++sum.cache.hits;
            } else {
              task.cached_depth > 0 ? ++sum.cache.partial_hits
                                    : ++sum.cache.misses;
            }
          }
          // Merge class: VMS sections bridge within a byte-group section;
          // a VSM full scan bridges across skipped fragments; a VSM
          // partial/reduced fetch stays private so bridging never re-reads
          // the planes the level (or the cache) skipped.
          std::uint32_t cls;
          if (view.layout->order == LevelOrder::kVMS) {
            cls = 0;  // per-group, assigned below
          } else if (task.cached_depth == 0 && task.fetch_level == ngroups) {
            cls = kStreamClass;
          } else {
            cls = next_private_class++;
          }
          for (int g = task.cached_depth; g < task.fetch_level; ++g) {
            const std::uint32_t group_cls =
                view.layout->order == LevelOrder::kVMS
                    ? kSectionClassBase + static_cast<std::uint32_t>(g)
                    : cls;
            rp.segments.push_back({ref.dat, frag.groups[g].offset,
                                   frag.groups[g].length, group_cls});
          }
        } else {
          const bool vals_usable = hit != nullptr &&
                                   hit->count == frag.count &&
                                   !hit->values.empty();
          if (vals_usable) {
            task.cached_depth = 1;  // full hit: no payload segment
            if (view.provider != nullptr) ++sum.cache.hits;
            sum.cache.bytes_saved += frag.groups[0].length;
          } else {
            if (view.provider != nullptr) ++sum.cache.misses;
            rp.segments.push_back({ref.dat, frag.groups[0].offset,
                                   frag.groups[0].length, kStreamClass});
          }
        }
      }
      task.seg_count = rp.segments.size() - task.seg_begin;

      // Expected qualifying points: fragment count scaled by the SC's
      // chunk-overlap fraction and the VC survival rate (aligned => 1,
      // misaligned => 1/2 in expectation).
      double vc_frac = 1.0;
      if (q.vc.has_value() && !bw.aligned && !task.frag_aligned) {
        vc_frac = 0.5;
      }
      sum.est_points +=
          static_cast<double>(frag.count) * vc_frac *
          sc_fraction(view.chunk_grid->chunk_region(frag.chunk), q.sc);

      rp.tasks.push_back(std::move(task));
    }

    // Predicted I/O for this rank: cold header reads plus the merged
    // extents the IoScheduler will issue (hierarchical-index node reads
    // are scheduled as their own batch, exactly as the executor does).
    for (const auto& rec : rp.header_reads) {
      sum.planned_io.add(rec.file, rec.offset, rec.len, rec.rank);
    }
    const std::vector<pfs::ReadRequest> merged =
        opts.naive_io
            ? naive_schedule(rp.segments, nullptr)
            : coalesce_segments(rp.segments, opts.coalesce_gap_bytes, nullptr,
                                &sum.stats.bytes_bridged);
    for (const auto& m : merged) {
      sum.planned_io.add(m.file, m.offset, m.len,
                         static_cast<std::uint32_t>(r));
    }
    const std::vector<pfs::ReadRequest> hbx_merged =
        opts.naive_io
            ? naive_schedule(rp.hbx_segments, nullptr)
            : coalesce_segments(rp.hbx_segments, opts.coalesce_gap_bytes,
                                nullptr, &sum.stats.bytes_bridged);
    for (const auto& m : hbx_merged) {
      sum.planned_io.add(m.file, m.offset, m.len,
                         static_cast<std::uint32_t>(r));
    }
    std::uint64_t rank_naive = 0;
    for (const auto& s : rp.segments) {
      planned_seg_bytes += s.len;
      if (s.len > 0) ++rank_naive;
    }
    for (const auto& s : rp.hbx_segments) {
      planned_seg_bytes += s.len;
      if (s.len > 0) ++rank_naive;
    }
    planned_seg_count += rank_naive;
    sum.stats.extents_naive += rank_naive + rp.header_reads.size();
    sum.stats.extents_coalesced +=
        merged.size() + hbx_merged.size() + rp.header_reads.size();
  }
  (void)planned_seg_count;

  std::uint64_t header_bytes = 0;
  for (const auto& rp : plan.ranks) {
    for (const auto& rec : rp.header_reads) header_bytes += rec.len;
  }
  sum.stats.bytes_from_cache = sum.cache.bytes_saved;
  sum.stats.bytes_planned =
      planned_seg_bytes + header_bytes + sum.cache.bytes_saved;
  sum.stats.bytes_read = sum.planned_io.total_bytes();
  sum.stats.modeled_seeks = pfs::coalesced_extent_count(sum.planned_io);
  return plan;
}

Result<PlanSummary> plan_query(const StoreView& view, const Query& q,
                               int num_ranks, const ExecOptions& opts) {
  if (num_ranks < 1) {
    return invalid_argument("query: num_ranks must be >= 1");
  }
  if (q.sc.has_value() && q.sc->ndims() != view.shape->ndims()) {
    return invalid_argument("query: SC dimensionality mismatch");
  }
  MLOC_ASSIGN_OR_RETURN(ReadPlan plan,
                        build_plan(view, q, num_ranks, opts, /*warm=*/false));
  return std::move(plan.summary);
}

}  // namespace mloc::exec
