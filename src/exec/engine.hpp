// Staged query engine (paper §III-D executed in three explicit stages).
//
// MlocStore::execute / multivar_* are thin wrappers over execute_query;
// QueryPlanner::estimate costs the identical plan through plan_query.
// Both consume a StoreView — a non-owning projection of one variable's
// state — so the engine stays free of MlocStore internals.
//
// Pipeline per query:
//   build_plan     resolves bins → fragments → segments; consults the
//                  FragmentProvider and the per-bin header cache so every
//                  cache decision is made before the first payload read;
//   IoScheduler    merges each rank's segments into batch extents
//                  (exec/io_scheduler.hpp);
//   DecodePipeline decodes + filters fragments on worker threads while
//                  the rank issues the next bin's batch read
//                  (exec/decode_pipeline.hpp).
//
// Determinism: rank bodies run sequentially (parallel::run_ranks); decode
// workers write disjoint per-task slots and are joined before any state is
// folded, in task order — results and provider contents are identical for
// any rank/worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/chunking.hpp"
#include "binning/binning.hpp"
#include "bitmap/bitmap.hpp"
#include "compress/codec.hpp"
#include "core/config.hpp"
#include "core/layout.hpp"
#include "core/store.hpp"
#include "exec/read_plan.hpp"
#include "index/hbx.hpp"
#include "pfs/pfs.hpp"
#include "query/query.hpp"

namespace mloc::exec {

/// Non-owning view of one variable of a store — everything the engine
/// needs, nothing it doesn't. Valid only for the duration of one
/// execute_query/plan_query call.
struct StoreView {
  const pfs::PfsStorage* fs = nullptr;
  const NDShape* shape = nullptr;           ///< full grid shape (store-wide)
  const VariableLayout* layout = nullptr;   ///< this variable's layout
  const ChunkGrid* chunk_grid = nullptr;
  const std::string* var = nullptr;
  const BinningScheme* scheme = nullptr;
  /// Ingest generation of the variable (FragmentKey::epoch).
  std::uint64_t epoch = 0;

  struct BinRef {
    pfs::FileId idx = 0;
    pfs::FileId dat = 0;
    std::uint64_t header_len = 0;
    BinHeaderCache* header_cache = nullptr;
  };
  std::vector<BinRef> bins;

  const ByteCodec* byte_codec = nullptr;      ///< PLoD/COL mode
  const DoubleCodec* double_codec = nullptr;  ///< whole-value mode
  FragmentProvider* provider = nullptr;
  /// Lazy footer verification of bin subfiles (absolute bin index).
  std::function<Status(int bin, bool dat_file)> verify_subfile;

  /// Hierarchical bitmap index (.hbx), when the layout carries one.
  struct HbxRef {
    bool present = false;
    pfs::FileId file = 0;
    std::uint64_t header_len = 0;  ///< node-table bytes at .hbx start
    index::HbxHeaderCache* header_cache = nullptr;
  };
  HbxRef hbx;
  /// Lazy footer verification of the .hbx subfile.
  std::function<Status()> verify_hbx;

  [[nodiscard]] bool plod_capable() const noexcept {
    return byte_codec != nullptr;
  }
  [[nodiscard]] int num_groups() const noexcept;
};

/// One fragment's resolved work: what to read (slots into the owning
/// rank's segment array) and how to decode/filter it.
struct FragmentTask {
  int bin = 0;                       ///< absolute bin index
  const FragmentInfo* frag = nullptr;
  bool skipped = false;              ///< zone-map pruned (no I/O, no output)
  bool bin_aligned = false;
  bool frag_aligned = false;
  bool needs_vc_filter = false;
  bool fetch_values = false;
  int fetch_level = 0;               ///< groups needed for decode
  int cached_depth = 0;              ///< planes already held by the provider
  bool blob_cached = false;          ///< positions served from the provider
  std::shared_ptr<const FragmentData> cached;  ///< provider entry, if any

  /// This task's segments: rank.segments[seg_begin, seg_begin+seg_count).
  /// Layout: [positions blob if !blob_cached][payload groups
  /// cached_depth..fetch_level, or the single whole-value segment].
  std::size_t seg_begin = 0;
  std::size_t seg_count = 0;
};

/// One hierarchical-index tree node resolved for this query: its aggregate
/// bitmap answers a fully-covered span of aligned bins with zero .idx
/// reads. Either served from the FragmentProvider (`cached`) or read from
/// the .hbx payload via this rank's hbx_segments.
struct HbxNodeTask {
  std::size_t node = 0;              ///< index into HbxHeader::nodes
  std::shared_ptr<const FragmentData> cached;  ///< provider entry, if any
  std::size_t seg_index = 0;         ///< slot in rank.hbx_segments
  bool has_segment = false;          ///< false when cached
};

struct RankPlan {
  /// Cold fragment-table reads this rank is charged for (the bytes were
  /// already consumed by the plan builder; execution only logs them).
  std::vector<pfs::IoRecord> header_reads;
  double header_parse_s = 0.0;       ///< measured parse+filter CPU
  std::vector<FragmentTask> tasks;   ///< bin-major order
  std::vector<PlannedSegment> segments;
  /// Hierarchical-index work, scheduled apart from the per-bin segments so
  /// the bin-run coalescing arithmetic stays untouched.
  std::vector<HbxNodeTask> hbx_tasks;
  std::vector<PlannedSegment> hbx_segments;
};

struct ReadPlan {
  int num_ranks = 1;
  std::vector<RankPlan> ranks;
  PlanSummary summary;
  /// Keeps FragmentInfo pointers in tasks alive (headers come from the
  /// BinHeaderCache or from a plan-time parse).
  std::vector<std::shared_ptr<const BinLayout>> layouts;
  /// Parsed .hbx node table backing HbxNodeTask::node (null when the
  /// query resolved no tree nodes).
  std::shared_ptr<const index::HbxHeader> hbx_header;
};

/// Stage 1: resolve a query into a ReadPlan. `warm` = execution mode:
/// freshly parsed headers are published to the bin header cache. With
/// `warm == false` (planner mode) the call is side-effect-free — it reads
/// the caches but never mutates them.
Result<ReadPlan> build_plan(const StoreView& view, const Query& q,
                            int num_ranks, const ExecOptions& opts, bool warm);

/// Execute a query end to end (validation, plan, batch I/O, overlapped
/// decode, gather). `position_filter` implements the multi-variable
/// second pass, as before the refactor.
///
/// `region_wah` (optional, region-only queries without SC/filter only):
/// when non-null, qualifying positions are returned as a WAH bitmap over
/// grid offsets instead of result.positions — hierarchical-index node
/// bitmaps merge per tree level directly in the compressed domain, and
/// only boundary-bin positions are rasterized. This is how multivariable
/// selection ANDs partial results without materializing flat per-variable
/// position vectors.
Result<QueryResult> execute_query(const StoreView& view, const Query& q,
                                  int num_ranks, const Bitmap* position_filter,
                                  const ExecOptions& opts,
                                  WahBitmap* region_wah = nullptr);

/// Cost a query without executing it: the PlanSummary of the same plan
/// execute_query would run, with no side effects on any cache. Feeding
/// summary.planned_io to pfs::model_makespan reproduces the modeled I/O
/// seconds execution will report; on a cold provider the byte and extent
/// counts match the executed plan exactly.
Result<PlanSummary> plan_query(const StoreView& view, const Query& q,
                               int num_ranks, const ExecOptions& opts);

}  // namespace mloc::exec
