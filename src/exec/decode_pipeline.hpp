// DecodePipeline — stage 3 of the query engine.
//
// decode_fragment() is the decode-only successor of the old
// MlocStore::fetch_fragment_values: it is fed pre-fetched buffers (the
// merged batch-read extents) and performs positional-index decode, codec
// decode, PLoD reassembly/degrade, and the VC/SC/bitmap filter for one
// fragment. It touches no shared state — results, provider candidates,
// and CPU timings come back in a DecodedFragment — so the pipeline can run
// it on worker threads while the owning rank issues the next bin's batch
// read. The rank folds results strictly in task order after wait(), which
// keeps output and provider contents deterministic for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "exec/engine.hpp"
#include "exec/io_scheduler.hpp"
#include "parallel/runtime.hpp"
#include "query/query.hpp"
#include "util/bytes.hpp"

namespace mloc::exec {

/// Everything decode_fragment needs, all read-only and owned elsewhere.
struct DecodeInput {
  const StoreView* view = nullptr;
  const Query* q = nullptr;
  const Bitmap* position_filter = nullptr;
  const FragmentTask* task = nullptr;
  /// The task's planned segments and their slots into `buffers`.
  std::span<const PlannedSegment> segments;
  std::span<const SlotRef> slots;
  const std::vector<Bytes>* buffers = nullptr;
};

/// Output of one fragment's decode+filter, private to the task.
struct DecodedFragment {
  Status status = Status::ok();
  std::vector<std::uint64_t> positions;  ///< qualifying linear positions
  std::vector<double> values;            ///< parallel (values_needed only)
  double decompress_s = 0.0;
  double reconstruct_s = 0.0;
  /// Provider-insert candidates, published by the rank in task order.
  std::shared_ptr<FragmentData> fresh_positions;
  std::shared_ptr<FragmentData> fresh_payload;
};

DecodedFragment decode_fragment(const DecodeInput& in);

/// Tiny wrapper around parallel::ThreadPool that degrades to inline
/// execution when no workers are configured (or the task count is too
/// small to amortize thread spawn).
class DecodePipeline {
 public:
  DecodePipeline(int workers, std::size_t expected_tasks,
                 std::size_t min_tasks);

  void submit(std::function<void()> job);
  void wait();

 private:
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace mloc::exec
