// IoScheduler — stage 2 of the query engine: turn a rank's planned
// segments into merged batch-read extents.
//
// Rules (documented in DESIGN.md §9):
//   - only segments of the same file ever merge (subfiles are per-bin, so
//     cross-bin merging is structurally impossible);
//   - exactly adjacent or overlapping segments (gap == 0) always merge —
//     the PFS cost model charges them a single seek regardless;
//   - a positive gap up to `max_gap_bytes` merges only when both sides
//     carry the same merge_class (the same byte-group section / blob
//     stream / whole-fragment scan), trading gap bytes for a saved seek;
//   - merging never reorders decode: every input segment keeps a SlotRef
//     locating its bytes inside the merged extent's buffer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/read_plan.hpp"
#include "pfs/pfs.hpp"

namespace mloc::exec {

/// Where an input segment's bytes live after coalescing.
struct SlotRef {
  int extent = -1;           ///< index into the merged-extent vector
  std::uint64_t delta = 0;   ///< byte offset inside that extent's buffer
};

/// Merge `segments` into batch-read extents. `slots` (if non-null) is
/// resized to segments.size() with one SlotRef per input, in input order.
/// Zero-length segments get extent = -1 and consume no I/O.
/// `bridged_bytes` (if non-null) accumulates the gap bytes read only
/// because same-class bridging welded two extents together — the waste
/// traded for saved seeks, surfaced as ExecStats::bytes_bridged.
std::vector<pfs::ReadRequest> coalesce_segments(
    std::span<const PlannedSegment> segments, std::uint64_t max_gap_bytes,
    std::vector<SlotRef>* slots, std::uint64_t* bridged_bytes = nullptr);

/// The identity schedule: one read per segment, plan order (the
/// pre-engine access pattern, kept for A/B comparison).
std::vector<pfs::ReadRequest> naive_schedule(
    std::span<const PlannedSegment> segments, std::vector<SlotRef>* slots);

}  // namespace mloc::exec
