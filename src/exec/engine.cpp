// execute_query — stages 2 and 3 of the query engine.
//
// Per rank (sequential, deterministic): inject the plan-time header reads
// into the rank's IoLog, then walk the rank's tasks in consecutive
// same-bin runs. Each run's segments are merged by the IoScheduler into a
// handful of batch extents, fetched with one vectorized read_batch call,
// and the per-fragment decode+filter jobs are handed to the DecodePipeline
// — so workers decode bin N while the rank issues bin N+1's batch read.
// Results are folded strictly in task order after the pipeline drains,
// keeping output and provider contents identical for any worker count.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "exec/decode_pipeline.hpp"
#include "exec/engine.hpp"
#include "exec/io_scheduler.hpp"
#include "parallel/runtime.hpp"
#include "plod/plod.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace mloc::exec {

Result<QueryResult> execute_query(const StoreView& view, const Query& q,
                                  int num_ranks, const Bitmap* position_filter,
                                  const ExecOptions& opts,
                                  WahBitmap* region_wah) {
  if (num_ranks < 1) return invalid_argument("query: num_ranks must be >= 1");
  if (q.plod_level < 1 || q.plod_level > 7) {
    return invalid_argument("query: PLoD level must be in [1,7]");
  }
  if (q.plod_level < 7 && !view.plod_capable()) {
    return unsupported(
        "query: PLoD levels below full precision need a byte-column codec "
        "(MLOC-COL); this store uses " + view.layout->codec);
  }
  if (q.sc.has_value() && q.sc->ndims() != view.shape->ndims()) {
    return invalid_argument("query: SC dimensionality mismatch");
  }
  // A degenerate ([lo, lo)) or NaN value range can never match; surface it
  // as a caller error rather than silently returning an empty result.
  if (q.vc.has_value() && !q.vc->valid()) {
    return invalid_argument(
        "query: value constraint is empty or NaN (requires lo < hi)");
  }
  if (region_wah != nullptr && q.values_needed) {
    return invalid_argument("query: region_wah requires a region-only query");
  }
  // Compressed-domain output: hierarchical-index node bitmaps merge per
  // tree level without ever materializing flat position vectors; only
  // boundary-bin positions are rasterized. Needs the full grid as the
  // domain, so an SC or a position filter falls back to the plain path
  // (the WAH is then built from the filtered positions at the end).
  const bool wah_mode = region_wah != nullptr && !q.sc.has_value() &&
                        position_filter == nullptr;

  MLOC_ASSIGN_OR_RETURN(ReadPlan plan,
                        build_plan(view, q, num_ranks, opts, /*warm=*/true));
  const PlanSummary& sum = plan.summary;

  QueryResult result;
  result.bins_touched = sum.bins_touched;
  result.aligned_bins = sum.aligned_bins;
  result.fragments_read = sum.fragments_to_fetch;
  result.fragments_skipped = sum.fragments_skipped;
  result.cache = sum.cache;
  result.exec = sum.stats;

  struct RankOutput {
    std::vector<std::uint64_t> positions;
    std::vector<double> values;
    /// wah_mode only: per-tree-level OR of this rank's hbx node bitmaps
    /// (index = HbxNode::level; empty WahBitmap = no nodes at that level).
    std::vector<WahBitmap> level_wahs;
  };
  std::vector<RankOutput> outputs(static_cast<std::size_t>(num_ranks));
  Status exec_status = Status::ok();

  auto contexts = parallel::run_ranks(num_ranks, [&](parallel::RankContext&
                                                         ctx) {
    if (!exec_status.is_ok()) return;
    RankPlan& rp = plan.ranks[static_cast<std::size_t>(ctx.rank)];
    RankOutput& out = outputs[static_cast<std::size_t>(ctx.rank)];

    // Cold header bytes were consumed by the plan builder; execution is
    // charged for them here so the IoLog matches the planned I/O exactly.
    for (const auto& rec : rp.header_reads) {
      ctx.io_log.add(rec.file, rec.offset, rec.len, rec.rank);
    }
    ctx.times.reconstruct += rp.header_parse_s;

    // --- Hierarchical-index nodes: one batch read covers this rank's .hbx
    // segments (scheduled exactly as the plan predicted), then each node's
    // aggregate bitmap is folded — cached nodes straight from the provider,
    // fresh ones checksum-verified, decoded, and published back.
    if (!rp.hbx_tasks.empty()) {
      if (!rp.hbx_segments.empty() && view.verify_hbx) {
        if (Status st = view.verify_hbx(); !st.is_ok()) {
          exec_status = std::move(st);
          return;
        }
      }
      std::vector<SlotRef> hbx_slots;
      const std::vector<pfs::ReadRequest> hbx_requests =
          opts.naive_io
              ? naive_schedule(rp.hbx_segments, &hbx_slots)
              : coalesce_segments(rp.hbx_segments, opts.coalesce_gap_bytes,
                                  &hbx_slots);
      auto hbx_bufs = view.fs->read_batch(
          hbx_requests, &ctx.io_log, static_cast<std::uint32_t>(ctx.rank));
      if (!hbx_bufs.is_ok()) {
        exec_status = hbx_bufs.status();
        return;
      }
      const std::vector<Bytes> hbx_buffers = std::move(hbx_bufs).value();
      if (wah_mode) {
        out.level_wahs.resize(
            static_cast<std::size_t>(plan.hbx_header->num_levels()));
      }

      for (const HbxNodeTask& task : rp.hbx_tasks) {
        const index::HbxNode& node = plan.hbx_header->nodes[task.node];
        const WahBitmap* wah = nullptr;
        WahBitmap fresh;
        if (task.cached != nullptr) {
          wah = &task.cached->node_bitmap;
        } else {
          const SlotRef& slot = hbx_slots[task.seg_index];
          const Bytes& buf =
              hbx_buffers[static_cast<std::size_t>(slot.extent)];
          const std::span<const std::uint8_t> raw(buf.data() + slot.delta,
                                                  node.length);
          if (fnv1a64(raw) != node.checksum) {
            exec_status = corrupt_data("hbx: node bitmap checksum mismatch");
            return;
          }
          Stopwatch sw;
          ByteReader rd(raw);
          auto parsed = WahBitmap::deserialize(rd);
          if (!parsed.is_ok()) {
            exec_status = parsed.status();
            return;
          }
          fresh = std::move(parsed).value();
          ctx.times.decompress += sw.seconds();
          if (fresh.size_bits() != view.shape->volume() ||
              fresh.count() != node.popcount) {
            exec_status = corrupt_data("hbx: node bitmap geometry mismatch");
            return;
          }
          if (view.provider != nullptr) {
            auto data = std::make_shared<FragmentData>();
            data->node_bitmap = fresh;
            data->has_node = true;
            data->count = node.popcount;
            view.provider->insert({*view.var, static_cast<int>(task.node),
                                   kHbxNodeChunk, view.epoch},
                                  std::move(data));
          }
          wah = &fresh;
        }

        Stopwatch sw_fold;
        if (wah_mode) {
          // Compressed-domain fold: OR into this node's tree level.
          WahBitmap& lw =
              out.level_wahs[static_cast<std::size_t>(node.level)];
          lw = lw.size_bits() == 0 ? *wah : WahBitmap::logical_or(lw, *wah);
        } else {
          const Bitmap plain = wah->decompress();
          plain.for_each_set([&](std::uint64_t pos) {
            if (q.sc.has_value() &&
                !q.sc->contains(view.shape->delinearize(pos))) {
              return;
            }
            if (position_filter != nullptr && !position_filter->get(pos)) {
              return;
            }
            out.positions.push_back(pos);
          });
        }
        ctx.times.reconstruct += sw_fold.seconds();
      }
    }

    DecodePipeline pipe(opts.decode_workers, rp.tasks.size(),
                        opts.min_decode_tasks);
    std::vector<DecodedFragment> decoded(rp.tasks.size());
    // Batch buffers and slot tables live until the pipeline drains; jobs
    // hold spans into them.
    std::vector<std::shared_ptr<std::vector<Bytes>>> buffer_sets;
    std::vector<std::shared_ptr<std::vector<SlotRef>>> slot_sets;
    Status rank_status = Status::ok();
    std::size_t folded_end = 0;  // tasks whose decode was dispatched

    std::size_t a = 0;
    while (a < rp.tasks.size()) {
      std::size_t b = a;
      while (b < rp.tasks.size() && rp.tasks[b].bin == rp.tasks[a].bin) ++b;
      const int bin = rp.tasks[a].bin;
      const StoreView::BinRef& ref = view.bins[static_cast<std::size_t>(bin)];
      const std::size_t seg_begin = rp.tasks[a].seg_begin;
      const std::size_t seg_end =
          rp.tasks[b - 1].seg_begin + rp.tasks[b - 1].seg_count;

      // Lazy footer verification, once per touched subfile per run — the
      // same checks the monolithic path made before its first reads.
      bool need_idx = false;
      bool need_dat = false;
      for (std::size_t s = seg_begin; s < seg_end; ++s) {
        (rp.segments[s].file == ref.idx ? need_idx : need_dat) = true;
      }
      if (view.verify_subfile) {
        if (need_idx) {
          if (Status st = view.verify_subfile(bin, false); !st.is_ok()) {
            rank_status = std::move(st);
            break;
          }
        }
        if (need_dat) {
          if (Status st = view.verify_subfile(bin, true); !st.is_ok()) {
            rank_status = std::move(st);
            break;
          }
        }
      }

      // Stage 2: merge the run's segments and fetch them in one batch.
      auto slots = std::make_shared<std::vector<SlotRef>>();
      const std::span<const PlannedSegment> run_segs(
          rp.segments.data() + seg_begin, seg_end - seg_begin);
      const std::vector<pfs::ReadRequest> requests =
          opts.naive_io
              ? naive_schedule(run_segs, slots.get())
              : coalesce_segments(run_segs, opts.coalesce_gap_bytes,
                                  slots.get());
      auto bufs = view.fs->read_batch(requests, &ctx.io_log,
                                      static_cast<std::uint32_t>(ctx.rank));
      if (!bufs.is_ok()) {
        rank_status = bufs.status();
        break;
      }
      auto buffers =
          std::make_shared<std::vector<Bytes>>(std::move(bufs).value());
      buffer_sets.push_back(buffers);
      slot_sets.push_back(slots);

      // Stage 3: dispatch decode+filter jobs; workers overlap the next
      // run's batch read.
      for (std::size_t ti = a; ti < b; ++ti) {
        const FragmentTask& task = rp.tasks[ti];
        if (task.skipped) continue;  // decoded[ti] stays empty/ok
        DecodeInput in;
        in.view = &view;
        in.q = &q;
        in.position_filter = position_filter;
        in.task = &task;
        in.segments = std::span<const PlannedSegment>(rp.segments)
                          .subspan(task.seg_begin, task.seg_count);
        in.slots = std::span<const SlotRef>(*slots).subspan(
            task.seg_begin - seg_begin, task.seg_count);
        in.buffers = buffers.get();
        pipe.submit(
            [&decoded, ti, in]() { decoded[ti] = decode_fragment(in); });
      }
      folded_end = b;
      a = b;
    }
    pipe.wait();

    // Fold in task order: first decode failure wins, then any run-boundary
    // failure (verify/batch read) that stopped dispatch.
    for (std::size_t ti = 0; ti < folded_end; ++ti) {
      const FragmentTask& task = rp.tasks[ti];
      DecodedFragment& d = decoded[ti];
      if (!d.status.is_ok()) {
        exec_status = std::move(d.status);
        return;
      }
      if (task.skipped) continue;
      ctx.times.decompress += d.decompress_s;
      ctx.times.reconstruct += d.reconstruct_s;
      if (view.provider != nullptr) {
        const FragmentKey key{*view.var, task.bin, task.frag->chunk,
                              view.epoch};
        if (d.fresh_positions != nullptr) {
          view.provider->insert(key, std::move(d.fresh_positions));
        }
        if (d.fresh_payload != nullptr) {
          view.provider->insert(key, std::move(d.fresh_payload));
        }
      }
      out.positions.insert(out.positions.end(), d.positions.begin(),
                           d.positions.end());
      out.values.insert(out.values.end(), d.values.begin(), d.values.end());
    }
    if (!rank_status.is_ok()) exec_status = std::move(rank_status);
  });
  MLOC_RETURN_IF_ERROR(exec_status);

  // --- Gather: merge rank outputs sorted by position (root process role).
  Stopwatch sw_gather;
  if (wah_mode) {
    // Compressed-domain gather: OR the per-rank level bitmaps tree level
    // by tree level (coarse to fine), then fold in the rasterized
    // boundary-bin positions. Same set as the flat gather, by OR
    // associativity; positions stay unmaterialized.
    WahBitmap acc;
    std::size_t nlevels = 0;
    for (const auto& o : outputs) nlevels = std::max(nlevels, o.level_wahs.size());
    for (std::size_t lvl = nlevels; lvl-- > 0;) {
      for (const auto& o : outputs) {
        if (lvl >= o.level_wahs.size()) continue;
        const WahBitmap& lw = o.level_wahs[lvl];
        if (lw.size_bits() == 0) continue;
        acc = acc.size_bits() == 0 ? lw : WahBitmap::logical_or(acc, lw);
      }
    }
    std::size_t nflat = 0;
    for (const auto& o : outputs) nflat += o.positions.size();
    if (nflat > 0 || acc.size_bits() == 0) {
      Bitmap flat(view.shape->volume());
      for (const auto& o : outputs) {
        for (const std::uint64_t pos : o.positions) flat.set(pos);
      }
      const WahBitmap flat_wah = WahBitmap::compress(flat);
      acc = acc.size_bits() == 0 ? flat_wah
                                 : WahBitmap::logical_or(acc, flat_wah);
    }
    *region_wah = std::move(acc);
  } else {
    std::size_t total = 0;
    for (const auto& o : outputs) total += o.positions.size();
    std::vector<std::pair<std::uint64_t, double>> merged;
    merged.reserve(total);
    for (const auto& o : outputs) {
      for (std::size_t k = 0; k < o.positions.size(); ++k) {
        merged.emplace_back(o.positions[k],
                            q.values_needed ? o.values[k] : 0.0);
      }
    }
    std::sort(merged.begin(), merged.end());
    result.positions.reserve(merged.size());
    if (q.values_needed) result.values.reserve(merged.size());
    for (const auto& [pos, val] : merged) {
      result.positions.push_back(pos);
      if (q.values_needed) result.values.push_back(val);
    }
    if (region_wah != nullptr) {
      // SC/filter fallback: the WAH is built from the already-filtered
      // positions; callers see the same contract either way.
      Bitmap flat(view.shape->volume());
      for (const std::uint64_t pos : result.positions) flat.set(pos);
      *region_wah = WahBitmap::compress(flat);
      result.positions.clear();
    }
  }
  const double gather_s = sw_gather.seconds();

  // --- Timing: modeled I/O makespan over the merged logs plus per-rank
  // CPU maxima (ranks synchronize before the gather).
  const pfs::IoLog io = parallel::merged_io_log(contexts);
  result.bytes_read = io.total_bytes();
  result.exec.bytes_read = io.total_bytes();
  result.exec.modeled_seeks = pfs::coalesced_extent_count(io);
  result.times.io = pfs::model_makespan(view.fs->config(), io, num_ranks);
  const ComponentTimes cpu = parallel::max_rank_times(contexts);
  result.times.decompress = cpu.decompress;
  result.times.reconstruct = cpu.reconstruct + gather_s;
  return result;
}

}  // namespace mloc::exec
