// Read-plan types shared by the staged query engine (src/exec), MlocStore,
// and QueryPlanner.
//
// A query is executed in three explicit stages (ISSUE 3 tentpole):
//   1. PlanBuilder   — resolve bins/fragments/byte-groups into per-file
//                      extents; prune everything satisfiable from the
//                      FragmentProvider (cache hits decided at *plan* time);
//   2. IoScheduler   — sort + coalesce adjacent/near-adjacent extents per
//                      subfile into merged batch reads (one modeled seek
//                      per merged extent, matching the PFS cost model);
//   3. DecodePipeline— PLoD reassembly, codec decode, and positional-index
//                      decode on worker threads, overlapped with the next
//                      bin's batch reads.
//
// PlanSummary is the *costable* image of a query: the planner derives its
// estimates from the same plan the engine executes, so extent and byte
// predictions match the executed plan exactly on cold caches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pfs/pfs.hpp"
#include "query/query.hpp"

namespace mloc::exec {

/// One planned subfile extent, before coalescing. `merge_class` groups
/// segments the IoScheduler may bridge across small gaps: extents that are
/// exactly adjacent (gap == 0) always merge — the cost model would charge
/// them one seek anyway — but a gap is only worth bridging when both sides
/// belong to the same access stream (same byte-group section, same
/// positional-blob sequence, the same whole-fragment scan). Classes keep
/// the scheduler from welding a reduced-precision PLoD read into the full
/// fragment it deliberately skipped.
struct PlannedSegment {
  pfs::FileId file = 0;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  std::uint32_t merge_class = 0;
};

/// Engine tuning knobs (defaults match the benched configuration).
struct ExecOptions {
  /// Maximum same-class gap (bytes) the IoScheduler bridges. Reading a gap
  /// costs len/bandwidth; skipping it costs a seek — at the default PFS
  /// model (5 ms seek, 300 MB/s) the break-even gap is ~1.5 MB, so 64 KiB
  /// bridging is always profitable. 0 disables gap bridging (adjacent
  /// extents still merge).
  std::uint64_t coalesce_gap_bytes = 64 * 1024;
  /// Issue one read per planned segment in plan order instead of merged
  /// batches — reproduces the pre-engine access pattern, kept for A/B
  /// comparison in tests and bench_service_throughput.
  bool naive_io = false;
  /// Decode worker threads per rank (0 = decode inline on the rank).
  int decode_workers = 2;
  /// Don't spin up workers for fewer decode tasks than this.
  std::size_t min_decode_tasks = 8;
  /// Resolve region-only value-constraint queries through the variable's
  /// hierarchical bitmap index (.hbx) when it has one: aligned bins are
  /// answered from tree-node bitmaps with zero .idx reads and only
  /// boundary bins fall through to the positional-index path. Disable for
  /// A/B comparison against the flat per-bin path (bench_index).
  bool use_hbx = true;
};

/// Plan-derived query cost image. Produced by MlocStore::plan without
/// touching provider or header-cache state, and by the engine as the
/// blueprint it then executes.
struct PlanSummary {
  std::uint64_t bins_touched = 0;
  std::uint64_t aligned_bins = 0;
  std::uint64_t fragments_to_fetch = 0;   ///< fragments needing payload I/O
  std::uint64_t fragments_skipped = 0;    ///< zone-map pruned
  double est_points = 0.0;                ///< expected qualifying points
  /// Predicted I/O: cold header reads plus merged payload/blob extents,
  /// tagged with the rank that will issue them. Feeding this log to
  /// pfs::model_makespan yields the same modeled seconds the execution
  /// will report.
  pfs::IoLog planned_io;
  ExecStats stats;
  CacheStats cache;                       ///< predicted provider accounting
};

}  // namespace mloc::exec
