// Hierarchical bitmap index (".hbx" subfile).
//
// A per-variable tree of coarse-to-fine WAH bitmaps over the bin
// hierarchy (the multi-level scheme of "Hierarchical Bitmap Indexing for
// Range and Membership Queries on Multidimensional Arrays"). Level 0
// holds one leaf bitmap per bin — the set of grid positions whose value
// falls in that bin — and every level-k node is the OR of `fanout`
// consecutive level-(k-1) children, up to a root level with a single
// node. A value-range predicate then resolves top-down: subtrees fully
// inside the range contribute their aggregate bitmap with zero .idx
// reads, subtrees fully outside are pruned, and only the (at most two)
// boundary bins fall through to the positional-index path.
//
// On disk the index is one CRC-sealed subfile per variable,
// `<store>/<var>.hbx`:
//
//   header:  magic "MHBX", version, fanout, num_bins, nbits, level table,
//            node table (level-major, leaves first; each node records its
//            bin span, payload extent, FNV-1a checksum and popcount)
//   payload: concatenated serialized WahBitmaps in node order
//   footer:  CRC-32 + "MLCF" (core/layout.hpp), like .meta/.idx/.dat
//
// The header is small (tens of bytes per node) and read once per store
// open; individual node bitmaps are fetched on demand by the query
// engine and cached in the FragmentCache keyed by epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace mloc::index {

inline constexpr std::uint32_t kHbxMagic = 0x5842'484Du;  // "MHBX"
inline constexpr std::uint32_t kHbxVersion = 1;

/// One tree node: an aggregate bitmap over a contiguous span of bins.
struct HbxNode {
  int level = 0;               ///< 0 = leaf (single bin).
  int first_bin = 0;           ///< First bin covered (inclusive).
  int bin_count = 0;           ///< Number of bins covered.
  std::uint64_t offset = 0;    ///< Payload-relative byte offset.
  std::uint64_t length = 0;    ///< Serialized WahBitmap length in bytes.
  std::uint64_t checksum = 0;  ///< FNV-1a of the serialized payload.
  std::uint64_t popcount = 0;  ///< Set bits (exact selectivity for planning).

  [[nodiscard]] int last_bin() const noexcept {
    return first_bin + bin_count - 1;
  }
};

/// Parsed .hbx header: the node table plus level structure. Immutable
/// after parse; shared across queries via HbxHeaderCache.
struct HbxHeader {
  int fanout = 0;
  int num_bins = 0;
  std::uint64_t nbits = 0;      ///< Domain size every bitmap spans.
  std::uint64_t header_len = 0; ///< Serialized header size in bytes.
  /// Level-major, leaves first: nodes[level_begin[k]..level_begin[k+1]).
  std::vector<HbxNode> nodes;
  std::vector<std::size_t> level_begin;  ///< num_levels()+1 entries.

  [[nodiscard]] int num_levels() const noexcept {
    return static_cast<int>(level_begin.size()) - 1;
  }
  [[nodiscard]] std::span<const HbxNode> level(int k) const noexcept {
    return {nodes.data() + level_begin[static_cast<std::size_t>(k)],
            nodes.data() + level_begin[static_cast<std::size_t>(k) + 1]};
  }

  /// Serialized header image (magic through node table, no payload).
  [[nodiscard]] Bytes serialize() const;
  static Result<HbxHeader> deserialize(std::span<const std::uint8_t> bytes);
};

/// A freshly built index: the parsed header, the node bitmaps (level-major,
/// same order as header.nodes) and the sealed on-disk file image.
struct HbxBuild {
  HbxHeader header;
  std::vector<WahBitmap> bitmaps;
  Bytes file;
};

/// Build the tree from per-bin leaf bitmaps (all spanning `nbits`
/// positions). Precondition: fanout >= 2, leaves non-empty.
HbxBuild build_index(const std::vector<WahBitmap>& leaves,
                     std::uint64_t nbits, int fanout);

/// Minimal top-down cover of the aligned bin span [first_bin, last_bin]
/// (inclusive): node ids whose aggregate bitmaps OR to exactly the union
/// of those bins' leaves. Fully-covered subtrees are taken whole;
/// partially-covered ones descend; disjoint ones are pruned. Returns
/// nodes in (level descending, bin ascending) order; empty when the span
/// is empty or out of range.
std::vector<std::size_t> cover(const HbxHeader& h, int first_bin,
                               int last_bin);

/// One-slot parsed-header cache, mirroring core BinHeaderCache: first
/// writer wins, the header is immutable so any decoded copy is as good
/// as another.
class HbxHeaderCache {
 public:
  [[nodiscard]] std::shared_ptr<const HbxHeader> get() const
      MLOC_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    return header_;
  }

  void put(std::shared_ptr<const HbxHeader> header) MLOC_EXCLUDES(mu_) {
    sync::MutexLock lock(mu_);
    if (!header_) header_ = std::move(header);
  }

 private:
  mutable sync::Mutex mu_;
  std::shared_ptr<const HbxHeader> header_ MLOC_GUARDED_BY(mu_);
};

}  // namespace mloc::index
