#include "index/hbx.hpp"

#include <algorithm>
#include <utility>

#include "core/layout.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace mloc::index {

Bytes HbxHeader::serialize() const {
  ByteWriter w;
  w.put_u32(kHbxMagic);
  w.put_u32(kHbxVersion);
  w.put_varint(static_cast<std::uint64_t>(fanout));
  w.put_varint(static_cast<std::uint64_t>(num_bins));
  w.put_varint(nbits);
  w.put_varint(static_cast<std::uint64_t>(num_levels()));
  for (int k = 0; k < num_levels(); ++k) {
    w.put_varint(level(k).size());
  }
  for (const HbxNode& n : nodes) {
    w.put_varint(static_cast<std::uint64_t>(n.first_bin));
    w.put_varint(static_cast<std::uint64_t>(n.bin_count));
    w.put_varint(n.offset);
    w.put_varint(n.length);
    w.put_u64(n.checksum);
    w.put_varint(n.popcount);
  }
  return std::move(w).take();
}

Result<HbxHeader> HbxHeader::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  MLOC_ASSIGN_OR_RETURN(const std::uint32_t magic, r.get_u32());
  if (magic != kHbxMagic) return corrupt_data("hbx: bad magic");
  MLOC_ASSIGN_OR_RETURN(const std::uint32_t version, r.get_u32());
  if (version != kHbxVersion) return corrupt_data("hbx: unsupported version");

  HbxHeader h;
  MLOC_ASSIGN_OR_RETURN(const std::uint64_t fanout, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(const std::uint64_t num_bins, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(h.nbits, r.get_varint());
  if (fanout < 2 || fanout > 1u << 20) return corrupt_data("hbx: bad fanout");
  if (num_bins == 0 || num_bins > 1u << 24) {
    return corrupt_data("hbx: bad bin count");
  }
  h.fanout = static_cast<int>(fanout);
  h.num_bins = static_cast<int>(num_bins);

  MLOC_ASSIGN_OR_RETURN(const std::uint64_t num_levels, r.get_varint());
  if (num_levels == 0 || num_levels > 64) {
    return corrupt_data("hbx: bad level count");
  }
  h.level_begin.resize(num_levels + 1, 0);
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < num_levels; ++k) {
    MLOC_ASSIGN_OR_RETURN(const std::uint64_t count, r.get_varint());
    if (count == 0 || count > num_bins) {
      return corrupt_data("hbx: bad level node count");
    }
    total += count;
    h.level_begin[k + 1] = total;
  }
  if (h.level_begin[1] != num_bins) {
    return corrupt_data("hbx: leaf level must have one node per bin");
  }
  if (total > (std::uint64_t{1} << 28)) {
    return corrupt_data("hbx: node table too large");
  }

  h.nodes.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    HbxNode& n = h.nodes[i];
    MLOC_ASSIGN_OR_RETURN(const std::uint64_t first_bin, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(const std::uint64_t bin_count, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(n.offset, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(n.length, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(n.checksum, r.get_u64());
    MLOC_ASSIGN_OR_RETURN(n.popcount, r.get_varint());
    if (bin_count == 0 || first_bin + bin_count > num_bins) {
      return corrupt_data("hbx: node bin span out of range");
    }
    n.first_bin = static_cast<int>(first_bin);
    n.bin_count = static_cast<int>(bin_count);
  }
  // Assign levels and check each level tiles [0, num_bins) in order.
  for (int k = 0; k < static_cast<int>(num_levels); ++k) {
    int next_bin = 0;
    for (std::size_t i = h.level_begin[static_cast<std::size_t>(k)];
         i < h.level_begin[static_cast<std::size_t>(k) + 1]; ++i) {
      HbxNode& n = h.nodes[i];
      n.level = k;
      if (n.first_bin != next_bin) {
        return corrupt_data("hbx: level does not tile the bin span");
      }
      next_bin = n.first_bin + n.bin_count;
    }
    if (next_bin != h.num_bins) {
      return corrupt_data("hbx: level does not cover all bins");
    }
  }
  h.header_len = r.position();
  return h;
}

HbxBuild build_index(const std::vector<WahBitmap>& leaves,
                     std::uint64_t nbits, int fanout) {
  MLOC_CHECK(fanout >= 2);
  MLOC_CHECK(!leaves.empty());

  HbxBuild out;
  out.bitmaps = leaves;
  out.header.fanout = fanout;
  out.header.num_bins = static_cast<int>(leaves.size());
  out.header.nbits = nbits;
  out.header.level_begin.push_back(0);
  out.header.level_begin.push_back(leaves.size());
  for (std::size_t b = 0; b < leaves.size(); ++b) {
    HbxNode n;
    n.level = 0;
    n.first_bin = static_cast<int>(b);
    n.bin_count = 1;
    out.header.nodes.push_back(n);
  }

  // OR consecutive fanout-sized groups of the previous level until a
  // single root remains (a one-bin variable stops at the leaf level).
  std::size_t prev_begin = 0;
  std::size_t prev_end = leaves.size();
  int level = 0;
  while (prev_end - prev_begin > 1) {
    ++level;
    const std::size_t begin = out.header.nodes.size();
    for (std::size_t i = prev_begin; i < prev_end;
         i += static_cast<std::size_t>(fanout)) {
      const std::size_t hi =
          std::min(prev_end, i + static_cast<std::size_t>(fanout));
      WahBitmap agg = out.bitmaps[i];
      for (std::size_t j = i + 1; j < hi; ++j) {
        agg = WahBitmap::logical_or(agg, out.bitmaps[j]);
      }
      HbxNode n;
      n.level = level;
      n.first_bin = out.header.nodes[i].first_bin;
      n.bin_count = out.header.nodes[hi - 1].first_bin +
                    out.header.nodes[hi - 1].bin_count - n.first_bin;
      out.header.nodes.push_back(n);
      out.bitmaps.push_back(std::move(agg));
    }
    prev_begin = begin;
    prev_end = out.header.nodes.size();
    out.header.level_begin.push_back(prev_end);
  }

  // Serialize payloads and fill node extents.
  ByteWriter payload;
  for (std::size_t i = 0; i < out.bitmaps.size(); ++i) {
    HbxNode& n = out.header.nodes[i];
    const std::size_t start = payload.size();
    out.bitmaps[i].serialize(payload);
    n.offset = start;
    n.length = payload.size() - start;
    n.checksum = fnv1a64(std::span<const std::uint8_t>(
        payload.bytes().data() + start, n.length));
    n.popcount = out.bitmaps[i].count();
  }

  out.file = out.header.serialize();
  out.header.header_len = out.file.size();
  const Bytes payload_bytes = std::move(payload).take();
  out.file.insert(out.file.end(), payload_bytes.begin(), payload_bytes.end());
  append_subfile_footer(out.file);
  return out;
}

namespace {

/// Children of node `id` (at level k > 0) are the level-(k-1) nodes whose
/// bin span falls inside the parent's. Levels tile the bin range in
/// order, so a binary search by first_bin finds the child run.
std::pair<std::size_t, std::size_t> child_range(const HbxHeader& h,
                                                std::size_t id) {
  const HbxNode& parent = h.nodes[id];
  MLOC_DCHECK(parent.level > 0);
  const std::size_t lo = h.level_begin[static_cast<std::size_t>(parent.level) - 1];
  const std::size_t hi = h.level_begin[static_cast<std::size_t>(parent.level)];
  std::size_t first = lo;
  while (first < hi && h.nodes[first].first_bin < parent.first_bin) ++first;
  std::size_t last = first;
  while (last < hi && h.nodes[last].last_bin() <= parent.last_bin()) ++last;
  return {first, last};
}

void cover_node(const HbxHeader& h, std::size_t id, int first_bin,
                int last_bin, std::vector<std::size_t>& out) {
  const HbxNode& n = h.nodes[id];
  if (n.last_bin() < first_bin || n.first_bin > last_bin) return;  // pruned
  if (n.first_bin >= first_bin && n.last_bin() <= last_bin) {
    out.push_back(id);  // fully covered: take the aggregate whole
    return;
  }
  MLOC_DCHECK(n.level > 0);  // a leaf spans one bin, so it can't straddle
  const auto [lo, hi] = child_range(h, id);
  for (std::size_t c = lo; c < hi; ++c) cover_node(h, c, first_bin, last_bin, out);
}

}  // namespace

std::vector<std::size_t> cover(const HbxHeader& h, int first_bin,
                               int last_bin) {
  std::vector<std::size_t> out;
  if (first_bin > last_bin || last_bin < 0 || first_bin >= h.num_bins) {
    return out;
  }
  const int top = h.num_levels() - 1;
  for (std::size_t id = h.level_begin[static_cast<std::size_t>(top)];
       id < h.level_begin[static_cast<std::size_t>(top) + 1]; ++id) {
    cover_node(h, id, std::max(first_bin, 0),
               std::min(last_bin, h.num_bins - 1), out);
  }
  return out;
}

}  // namespace mloc::index
