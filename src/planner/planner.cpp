#include "planner/planner.hpp"

#include <algorithm>
#include <cmath>

namespace mloc::planner {

QueryPlanner::QueryPlanner(const MlocStore* store) : store_(store) {
  MLOC_CHECK(store != nullptr);
}

Result<CostEstimate> QueryPlanner::estimate(const std::string& var,
                                            const Query& q,
                                            int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("planner: num_ranks >= 1");

  // Cost the exact ReadPlan the engine would execute (exec::plan_query is
  // side-effect-free: it consults the header cache and any attached
  // FragmentProvider but never warms them). Bin, fragment, byte, and
  // extent counts are therefore *predictions of the real plan*, not
  // closed-form approximations — on cold caches they match execution
  // exactly.
  MLOC_ASSIGN_OR_RETURN(exec::PlanSummary sum,
                        store_->plan(var, q, num_ranks));

  CostEstimate est;
  est.bins_touched = sum.bins_touched;
  est.aligned_bins = sum.aligned_bins;
  est.est_fragments = sum.fragments_to_fetch;
  est.est_seeks = sum.stats.modeled_seeks;
  est.est_bytes = sum.stats.bytes_read;
  est.est_points = sum.est_points;

  // Makespan: the engine's rank split is not guaranteed monotone in the
  // rank count (a lucky split at fewer ranks can beat an unlucky one at
  // more), but a scheduler granted `num_ranks` processes may always leave
  // some idle. Cost the plan at every power-of-two candidate up to
  // num_ranks and take the best — candidates nest along the power-of-two
  // chain, so more ranks never estimate slower.
  const pfs::PfsConfig& pfs = store_->pfs_config();
  double best = pfs::model_makespan(pfs, sum.planned_io, num_ranks);
  for (int r = 1; r < num_ranks; r *= 2) {
    MLOC_ASSIGN_OR_RETURN(exec::PlanSummary s, store_->plan(var, q, r));
    best = std::min(best, pfs::model_makespan(pfs, s.planned_io, r));
  }
  est.est_io_seconds = best;
  return est;
}

Result<int> QueryPlanner::recommend_ranks(const std::string& var,
                                          const Query& q, int max_ranks,
                                          double tolerance) const {
  if (max_ranks < 1) return invalid_argument("planner: max_ranks >= 1");
  MLOC_ASSIGN_OR_RETURN(CostEstimate at_max, estimate(var, q, max_ranks));
  for (int ranks = 1; ranks < max_ranks; ranks *= 2) {
    MLOC_ASSIGN_OR_RETURN(CostEstimate est, estimate(var, q, ranks));
    if (est.est_io_seconds <= at_max.est_io_seconds * (1.0 + tolerance)) {
      return ranks;
    }
  }
  return max_ranks;
}

Result<LevelOrder> recommend_order(const WorkloadProfile& workload,
                                   double avg_fragments_per_bin) {
  // Relative seek cost per bin for each order (byte model of §III-B-5):
  //   V-M-S: reduced-precision read touches `level` group runs; full
  //          precision touches all 7.
  //   V-S-M: full precision streams fragments in one run; reduced
  //          precision seeks once per fragment.
  // The comparison is scale-invariant, so fractions need not sum to 1 —
  // but a negative or non-finite input means the caller's workload
  // accounting is broken, and silently clamping it would launder that bug
  // into a confident recommendation. Reject instead.
  const auto check = [](double w, const char* name) {
    if (!std::isfinite(w) || w < 0.0) {
      return invalid_argument(std::string("recommend_order: ") + name +
                              " must be finite and non-negative");
    }
    return Status::ok();
  };
  MLOC_RETURN_IF_ERROR(check(workload.region_queries, "region_queries"));
  MLOC_RETURN_IF_ERROR(
      check(workload.value_full_precision, "value_full_precision"));
  MLOC_RETURN_IF_ERROR(check(workload.value_reduced, "value_reduced"));
  MLOC_RETURN_IF_ERROR(
      check(avg_fragments_per_bin, "avg_fragments_per_bin"));
  const double region = workload.region_queries;
  const double full = workload.value_full_precision;
  const double reduced = workload.value_reduced;
  // A bin never holds fewer than one fragment.
  const double frags_per_bin = std::max(1.0, avg_fragments_per_bin);
  const double reduced_groups =
      static_cast<double>(std::clamp(workload.reduced_level, 1, 7));
  const double vms =
      reduced * reduced_groups + full * 7.0 + region * 1.0;
  const double vsm = reduced * frags_per_bin + full * 1.0 + region * 1.0;
  return vms <= vsm ? LevelOrder::kVMS : LevelOrder::kVSM;
}

}  // namespace mloc::planner
