#include "planner/planner.hpp"

#include <algorithm>
#include <cmath>

#include "plod/plod.hpp"

namespace mloc::planner {

QueryPlanner::QueryPlanner(const MlocStore* store) : store_(store) {
  MLOC_CHECK(store != nullptr);
}

Result<CostEstimate> QueryPlanner::estimate(const std::string& var,
                                            const Query& q,
                                            int num_ranks) const {
  if (num_ranks < 1) return invalid_argument("planner: num_ranks >= 1");
  MLOC_ASSIGN_OR_RETURN(const BinningScheme* scheme, store_->binning(var));
  const MlocConfig& cfg = store_->config();
  const ChunkGrid& chunks = store_->chunk_grid();
  const pfs::PfsConfig& pfs = store_->pfs_config();

  CostEstimate est;

  // --- Bins: from the VC vs bin bounds (the engine's step 1).
  int first_bin = 0, last_bin = scheme->num_bins() - 1;
  if (q.vc.has_value()) {
    const auto span = scheme->bins_overlapping(q.vc->lo, q.vc->hi);
    if (span.empty()) return est;
    first_bin = span.first;
    last_bin = span.last;
    for (int b = first_bin; b <= last_bin; ++b) {
      if (scheme->aligned(b, q.vc->lo, q.vc->hi)) ++est.aligned_bins;
    }
  }
  est.bins_touched = static_cast<std::uint64_t>(last_bin - first_bin + 1);

  // --- Chunks: from the SC mapped to the lattice.
  std::uint64_t chunks_touched = chunks.num_chunks();
  double sc_fraction = 1.0;
  if (q.sc.has_value()) {
    if (q.sc->empty()) return est;
    chunks_touched = chunks.chunks_overlapping(*q.sc).size();
    sc_fraction = static_cast<double>(q.sc->volume()) /
                  static_cast<double>(cfg.shape.volume());
  }

  // --- Selectivity: equal-frequency bins each hold ~1/num_bins of the
  // points; aligned bins contribute all of theirs, edge bins roughly half.
  const double bin_fraction =
      q.vc.has_value()
          ? (static_cast<double>(est.aligned_bins) +
             0.5 * static_cast<double>(est.bins_touched - est.aligned_bins)) /
                scheme->num_bins()
          : 1.0;
  est.est_points = bin_fraction * sc_fraction *
                   static_cast<double>(cfg.shape.volume());

  // --- Fragments: every touched (bin, chunk) cell is expected occupied
  // when chunks hold many points per bin (occupancy correction for small
  // chunks: 1 - (1-1/bins)^points_per_chunk).
  const double points_per_chunk =
      static_cast<double>(chunks.max_chunk_elements());
  const double occupancy =
      1.0 - std::pow(1.0 - 1.0 / scheme->num_bins(), points_per_chunk);
  const double frag_per_bin = static_cast<double>(chunks_touched) * occupancy;
  // Only non-answerable-from-index bins fetch data for region-only access.
  const double data_bins =
      (q.values_needed || !q.vc.has_value())
          ? static_cast<double>(est.bins_touched)
          : static_cast<double>(est.bins_touched - est.aligned_bins);
  est.est_fragments =
      static_cast<std::uint64_t>(std::ceil(frag_per_bin * data_bins));

  // --- Bytes: fragments are fetched whole, so payload scales with the
  // *chunk coverage* of the SC (not the SC's exact volume), at the queried
  // PLoD fraction, plus positional index blobs for every fetched fragment.
  const int level = store_->plod_capable() ? q.plod_level : 7;
  const double level_fraction =
      static_cast<double>(plod::level_bytes(level)) / 8.0;
  const double chunk_coverage = static_cast<double>(chunks_touched) /
                                static_cast<double>(chunks.num_chunks());
  const double fetched_points =
      bin_fraction * chunk_coverage * static_cast<double>(cfg.shape.volume());
  const double payload_bytes =
      (data_bins > 0 && est.bins_touched > 0
           ? fetched_points * (data_bins / static_cast<double>(est.bins_touched))
           : 0) *
      8.0 * level_fraction;
  const double index_bytes =
      fetched_points * 1.5 /*delta varints*/ +
      static_cast<double>(est.bins_touched) * 256 /*headers*/;
  // Per-segment codec framing: a DEFLATE-style stream carries ~170 bytes
  // of Huffman tables regardless of payload, which dominates when
  // fragments are small.
  const int groups_read_for_bytes = store_->plod_capable() ? level : 1;
  const double codec_overhead =
      static_cast<double>(est.est_fragments) * groups_read_for_bytes * 170.0;
  est.est_bytes =
      static_cast<std::uint64_t>(payload_bytes + index_bytes + codec_overhead);

  // --- Seeks: under V-M-S each touched bin pays one run per byte group
  // read (groups are bin-contiguous); under V-S-M one run per fragment
  // for reduced precision, one per contiguous fragment run for full.
  const int groups_read = store_->plod_capable() ? level : 1;
  // Hilbert clustering: contiguous fragment runs ~= fragments / 3 when a
  // spatial subset is touched, 1 when the whole bin streams.
  const double runs_per_bin =
      q.sc.has_value()
          ? std::max(1.0, frag_per_bin / 3.0)
          : 1.0;
  double seeks = 0;
  if (cfg.order == LevelOrder::kVMS) {
    seeks = data_bins * runs_per_bin * groups_read;
  } else {
    const bool prefix_contiguous = (groups_read == store_->num_groups());
    seeks = data_bins *
            (prefix_contiguous ? runs_per_bin : frag_per_bin);
  }
  seeks += static_cast<double>(est.bins_touched);  // index blob runs
  est.est_seeks = static_cast<std::uint64_t>(std::ceil(seeks));

  // --- Modeled makespan: per-rank critical path vs per-OST aggregate, the
  // same two bounds as pfs::model_makespan.
  const double opens =
      2.0 * static_cast<double>(est.bins_touched);  // idx + dat per bin
  const double per_rank =
      (opens * pfs.open_latency_s + seeks * pfs.seek_latency_s +
       static_cast<double>(est.est_bytes) /
           (pfs.ost_bandwidth_bps * std::min(pfs.num_osts, 4))) /
      num_ranks;
  const double ost_bound =
      static_cast<double>(est.est_bytes) /
          (pfs.ost_bandwidth_bps * pfs.num_osts) +
      seeks * pfs.seek_latency_s / pfs.num_osts;
  est.est_io_seconds = std::max(per_rank, ost_bound);
  return est;
}

Result<int> QueryPlanner::recommend_ranks(const std::string& var,
                                          const Query& q, int max_ranks,
                                          double tolerance) const {
  if (max_ranks < 1) return invalid_argument("planner: max_ranks >= 1");
  MLOC_ASSIGN_OR_RETURN(CostEstimate at_max, estimate(var, q, max_ranks));
  for (int ranks = 1; ranks < max_ranks; ranks *= 2) {
    MLOC_ASSIGN_OR_RETURN(CostEstimate est, estimate(var, q, ranks));
    if (est.est_io_seconds <= at_max.est_io_seconds * (1.0 + tolerance)) {
      return ranks;
    }
  }
  return max_ranks;
}

LevelOrder recommend_order(const WorkloadProfile& workload,
                           double avg_fragments_per_bin) {
  // Relative seek cost per bin for each order (byte model of §III-B-5):
  //   V-M-S: reduced-precision read touches `level` group runs; full
  //          precision touches all 7.
  //   V-S-M: full precision streams fragments in one run; reduced
  //          precision seeks once per fragment.
  const double reduced_groups =
      static_cast<double>(std::clamp(workload.reduced_level, 1, 7));
  const double vms = workload.value_reduced * reduced_groups +
                     workload.value_full_precision * 7.0 +
                     workload.region_queries * 1.0;
  const double vsm = workload.value_reduced * avg_fragments_per_bin +
                     workload.value_full_precision * 1.0 +
                     workload.region_queries * 1.0;
  return vms <= vsm ? LevelOrder::kVMS : LevelOrder::kVSM;
}

}  // namespace mloc::planner
