// Query cost estimation and workload-driven configuration advice.
//
// The paper leaves level-order selection to the user ("users can specify
// different orders of optimizations to achieve best performance for the
// most frequently used access patterns", §IV-D Table VII). This module
// makes that decision systematic:
//  * QueryPlanner::estimate — predict a query's bins, fragments, bytes,
//    and modeled I/O by building the exact ReadPlan the staged engine
//    would execute (exec::plan_query; metadata only, no payload reads)
//    and feeding its planned extents to the PFS cost model;
//  * QueryPlanner::recommend_ranks — smallest process count whose
//    estimated makespan is within tolerance of the saturation point;
//  * recommend_order — given a workload mix (fractions of region queries,
//    full-precision and reduced-precision value queries), pick V-M-S or
//    V-S-M via the seek model that produces Table VII's crossover.
#pragma once

#include <string>

#include "core/store.hpp"
#include "query/query.hpp"

namespace mloc::planner {

struct CostEstimate {
  std::uint64_t bins_touched = 0;
  std::uint64_t aligned_bins = 0;
  std::uint64_t est_fragments = 0;   ///< (bin, chunk) cells to fetch
  std::uint64_t est_seeks = 0;       ///< discontiguous extents
  std::uint64_t est_bytes = 0;       ///< payload + index bytes
  double est_points = 0.0;           ///< expected result cardinality
  double est_io_seconds = 0.0;       ///< modeled makespan at the given ranks
};

class QueryPlanner {
 public:
  /// The store must outlive the planner.
  explicit QueryPlanner(const MlocStore* store);

  /// Estimate the cost of `q` executed with `num_ranks` processes.
  [[nodiscard]] Result<CostEstimate> estimate(const std::string& var,
                                              const Query& q,
                                              int num_ranks = 1) const;

  /// Smallest power-of-two rank count (<= max_ranks) whose estimated I/O
  /// makespan is within `tolerance` of the max_ranks estimate.
  [[nodiscard]] Result<int> recommend_ranks(const std::string& var,
                                            const Query& q, int max_ranks,
                                            double tolerance = 0.1) const;

 private:
  const MlocStore* store_;
};

/// Fractions of an exploration workload, summing to ~1.
struct WorkloadProfile {
  double region_queries = 0.0;      ///< VC region-only accesses
  double value_full_precision = 0.0;///< SC value retrieval at PLoD 7
  double value_reduced = 0.0;       ///< SC value retrieval at low PLoD
  int reduced_level = 2;            ///< typical reduced PLoD level
};

/// Level-order recommendation from the seek model: V-M-S keeps each byte
/// group contiguous bin-wide (cheap reduced-precision reads, 7 runs for
/// full precision); V-S-M keeps each fragment contiguous (1 run for full
/// precision, one run per fragment for reduced). Workload weights must be
/// finite and non-negative (InvalidArgument otherwise — a NaN/inf weight
/// means the caller's accounting broke and any pick would be arbitrary);
/// negative fragment counts are likewise rejected.
Result<LevelOrder> recommend_order(const WorkloadProfile& workload,
                                   double avg_fragments_per_bin = 16.0);

}  // namespace mloc::planner
