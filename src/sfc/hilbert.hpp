// Space-filling curves: Hilbert and Morton (Z-order) index mappings.
//
// MLOC stores chunks along the Hilbert space-filling curve (paper §III-B-2)
// because of its strong geometric locality: consecutive curve positions are
// face-adjacent cells, so a spatial query touches long contiguous runs of
// the linearized order and few seeks. Morton order is provided as the
// ablation comparator (bench_ablation_sfc).
//
// The Hilbert mapping is Skilling's transpose algorithm (AIP Conf. Proc.
// 707, 2004), which works for any dimensionality; we expose 2-D..4-D to
// match NDShape::kMaxDims.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "array/chunking.hpp"
#include "array/shape.hpp"
#include "util/status.hpp"

namespace mloc::sfc {

/// Hilbert index of cell `axes` in a 2^order-per-side cube of `ndims`
/// dimensions. Preconditions: 1<=ndims<=4, order*ndims<=64, axes<2^order.
std::uint64_t hilbert_index(int ndims, int order, const Coord& axes);

/// Inverse of hilbert_index.
Coord hilbert_axes(int ndims, int order, std::uint64_t index);

/// Morton (Z-order) index: bit-interleave of the axis coordinates.
std::uint64_t morton_index(int ndims, int order, const Coord& axes);

/// Inverse of morton_index.
Coord morton_axes(int ndims, int order, std::uint64_t index);

/// Smallest `order` such that a 2^order-per-side cube covers `shape`.
int covering_order(const NDShape& shape);

/// Which curve linearizes a chunk lattice.
enum class CurveKind : std::uint8_t {
  kRowMajor = 0,  ///< plain row-major chunk ids (no reordering)
  kMorton = 1,
  kHilbert = 2,
  /// Bit-interleave driven by an explicit per-level dimension pattern
  /// (e.g. "zyxzyx"), after "Using Evolutionary Algorithms to Find
  /// Cache-Friendly Generalized Morton Layouts". Classic Morton is the
  /// special case of the canonical pattern (see canonical_interleave).
  kGeneralizedMorton = 3,
};

[[nodiscard]] constexpr std::string_view curve_kind_name(
    CurveKind kind) noexcept {
  switch (kind) {
    case CurveKind::kRowMajor: return "row-major";
    case CurveKind::kMorton: return "morton";
    case CurveKind::kHilbert: return "hilbert";
    case CurveKind::kGeneralizedMorton: return "generalized-morton";
  }
  return "?";
}

/// Parsed generalized-Morton interleave pattern. The pattern string names
/// one dimension per output bit, most significant first: letters 'x' (dim
/// 0), 'y', 'z', 'w', or digits '0'..'3'. Each occurrence of a dimension
/// consumes its next-highest coordinate bit, so a dimension appearing k
/// times contributes its k low bits.
struct InterleavePattern {
  /// Dimension index per bit slot, most-significant slot first.
  std::vector<std::uint8_t> slots;
  /// Per-dimension bit counts (occurrence counts in `slots`).
  std::array<std::uint8_t, NDShape::kMaxDims> bits{};
};

/// Parse `pattern` for an `ndims`-dimensional lattice. Fails on empty
/// patterns, unknown characters, dimensions >= ndims, or > 64 total slots.
Result<InterleavePattern> parse_interleave(std::string_view pattern,
                                           int ndims);

/// Parse plus coverage check against a concrete lattice: every dimension
/// must appear at least once and receive enough bits that 2^bits covers
/// its extent.
Status validate_interleave(std::string_view pattern, const NDShape& lattice);

/// The pattern that reproduces classic Morton order for `lattice`:
/// "xyz..." (all dims, dim 0 first) repeated covering_order times.
std::string canonical_interleave(const NDShape& lattice);

/// Generalized Morton index of `axes` under `p`. Precondition:
/// axes[d] < 2^p.bits[d] for every dimension p uses.
std::uint64_t generalized_morton_index(const InterleavePattern& p,
                                       const Coord& axes);

/// Inverse of generalized_morton_index.
Coord generalized_morton_axes(const InterleavePattern& p,
                              std::uint64_t index);

/// Total order of the cells of a (possibly non-power-of-two) lattice along
/// a space-filling curve. Cells of the enclosing power-of-two cube that fall
/// outside the lattice are skipped, yielding a dense rank in
/// [0, lattice.volume()). This is the paper's "no additional metadata"
/// property: the order is recomputable from the lattice dimensions alone.
class CurveOrder {
 public:
  CurveOrder() = default;

  /// Build the order for a pattern-free curve kind. Precondition:
  /// kind != kGeneralizedMorton (that family needs a pattern — use the
  /// overload below or make_generalized).
  static CurveOrder make(CurveKind kind, const NDShape& lattice);

  /// Build the order for any curve kind; `interleave` is consumed only by
  /// kGeneralizedMorton (and must then validate against the lattice).
  static Result<CurveOrder> make(CurveKind kind, std::string_view interleave,
                                 const NDShape& lattice);

  /// Generalized-Morton order from an explicit interleave pattern.
  static Result<CurveOrder> make_generalized(std::string_view interleave,
                                             const NDShape& lattice);

  [[nodiscard]] CurveKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t size() const noexcept { return rank_of_.size(); }

  /// Curve rank of a row-major chunk id.
  [[nodiscard]] std::uint32_t rank_of(ChunkId id) const noexcept {
    MLOC_DCHECK(id < rank_of_.size());
    return rank_of_[id];
  }

  /// Row-major chunk id at a curve rank.
  [[nodiscard]] ChunkId chunk_at(std::uint32_t rank) const noexcept {
    MLOC_DCHECK(rank < chunk_at_.size());
    return chunk_at_[rank];
  }

 private:
  CurveKind kind_ = CurveKind::kRowMajor;
  std::vector<std::uint32_t> rank_of_;  // chunk id -> curve rank
  std::vector<ChunkId> chunk_at_;       // curve rank -> chunk id
};

/// Hierarchical resolution level of a curve position, for the subset-based
/// multiresolution layout (paper §III-B-3, after Pascucci's hierarchical
/// indexing). With fanout f = 2^ndims, position 0 is level 0 and position
/// p>0 belongs to level k when f^(num_levels-1-k) is the largest power of f
/// dividing p. Coarser levels are sparser: level k holds ~f^k * (f-1)/f of
/// positions... concretely, levels partition [0, f^(num_levels-1)) such that
/// the union of levels 0..k is exactly the positions divisible by
/// f^(num_levels-1-k).
int hier_level(std::uint64_t curve_pos, int num_levels, int ndims);

/// Positions of `total` curve cells reordered so that levels are contiguous
/// (level 0 first). Returns rank->position permutation.
std::vector<std::uint32_t> hier_order(std::uint32_t total, int num_levels,
                                      int ndims);

}  // namespace mloc::sfc
