#include "sfc/hilbert.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mloc::sfc {
namespace {

// Skilling's transpose representation: X[i] holds the i-th axis; the Hilbert
// index is the bit-interleave of the transformed axes (most significant bit
// of X[0] first).

void axes_to_transpose(std::uint32_t* x, int bits, int n) {
  if (bits == 0) return;
  std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

void transpose_to_axes(std::uint32_t* x, int bits, int n) {
  if (bits == 0) return;
  const std::uint32_t top = 2u << (bits - 1);
  // Gray decode by h ^ (h >> 1).
  std::uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != top; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

std::uint64_t pack_transpose(const std::uint32_t* x, int bits, int n) {
  std::uint64_t h = 0;
  for (int j = bits - 1; j >= 0; --j) {
    for (int i = 0; i < n; ++i) {
      h = (h << 1) | ((x[i] >> j) & 1u);
    }
  }
  return h;
}

void unpack_transpose(std::uint64_t h, std::uint32_t* x, int bits, int n) {
  for (int i = 0; i < n; ++i) x[i] = 0;
  int bitpos = bits * n - 1;
  for (int j = bits - 1; j >= 0; --j) {
    for (int i = 0; i < n; ++i) {
      x[i] |= static_cast<std::uint32_t>((h >> bitpos) & 1u) << j;
      --bitpos;
    }
  }
}

void validate(int ndims, int order, const Coord* axes) {
  MLOC_CHECK(ndims >= 1 && ndims <= NDShape::kMaxDims);
  MLOC_CHECK(order >= 0 && order <= 31);
  MLOC_CHECK(ndims * order <= 64);
  if (axes != nullptr) {
    for (int d = 0; d < ndims; ++d) {
      MLOC_CHECK((*axes)[d] < (1ull << order));
    }
  }
}

}  // namespace

std::uint64_t hilbert_index(int ndims, int order, const Coord& axes) {
  validate(ndims, order, &axes);
  if (ndims == 1) return axes[0];
  std::uint32_t x[NDShape::kMaxDims];
  for (int d = 0; d < ndims; ++d) x[d] = axes[d];
  axes_to_transpose(x, order, ndims);
  return pack_transpose(x, order, ndims);
}

Coord hilbert_axes(int ndims, int order, std::uint64_t index) {
  validate(ndims, order, nullptr);
  Coord out{};
  if (ndims == 1) {
    out[0] = static_cast<std::uint32_t>(index);
    return out;
  }
  std::uint32_t x[NDShape::kMaxDims];
  unpack_transpose(index, x, order, ndims);
  transpose_to_axes(x, order, ndims);
  for (int d = 0; d < ndims; ++d) out[d] = x[d];
  return out;
}

std::uint64_t morton_index(int ndims, int order, const Coord& axes) {
  validate(ndims, order, &axes);
  std::uint64_t h = 0;
  for (int j = order - 1; j >= 0; --j) {
    for (int i = 0; i < ndims; ++i) {
      h = (h << 1) | ((axes[i] >> j) & 1u);
    }
  }
  return h;
}

Coord morton_axes(int ndims, int order, std::uint64_t index) {
  validate(ndims, order, nullptr);
  Coord out{};
  int bitpos = order * ndims - 1;
  for (int j = order - 1; j >= 0; --j) {
    for (int i = 0; i < ndims; ++i) {
      out[i] |= static_cast<std::uint32_t>((index >> bitpos) & 1u) << j;
      --bitpos;
    }
  }
  return out;
}

Result<InterleavePattern> parse_interleave(std::string_view pattern,
                                           int ndims) {
  MLOC_CHECK(ndims >= 1 && ndims <= NDShape::kMaxDims);
  if (pattern.empty()) {
    return invalid_argument("interleave: empty pattern");
  }
  if (pattern.size() > 64) {
    return invalid_argument("interleave: more than 64 bit slots");
  }
  InterleavePattern p;
  p.slots.reserve(pattern.size());
  for (char c : pattern) {
    int dim = -1;
    switch (c) {
      case 'x': case 'X': case '0': dim = 0; break;
      case 'y': case 'Y': case '1': dim = 1; break;
      case 'z': case 'Z': case '2': dim = 2; break;
      case 'w': case 'W': case '3': dim = 3; break;
      default:
        return invalid_argument(std::string("interleave: bad character '") +
                                c + "'");
    }
    if (dim >= ndims) {
      return invalid_argument(std::string("interleave: dimension '") + c +
                              "' outside a " + std::to_string(ndims) +
                              "-d lattice");
    }
    p.slots.push_back(static_cast<std::uint8_t>(dim));
    ++p.bits[static_cast<std::size_t>(dim)];
  }
  return p;
}

Status validate_interleave(std::string_view pattern, const NDShape& lattice) {
  MLOC_ASSIGN_OR_RETURN(InterleavePattern p,
                        parse_interleave(pattern, lattice.ndims()));
  for (int d = 0; d < lattice.ndims(); ++d) {
    const auto bits = p.bits[static_cast<std::size_t>(d)];
    if (bits == 0) {
      return invalid_argument("interleave: dimension " + std::to_string(d) +
                              " never appears in \"" + std::string(pattern) +
                              "\"");
    }
    if (bits < 64 && (1ull << bits) < lattice.extent(d)) {
      return invalid_argument(
          "interleave: dimension " + std::to_string(d) + " gets " +
          std::to_string(bits) + " bit(s), too few for extent " +
          std::to_string(lattice.extent(d)));
    }
  }
  return Status::ok();
}

std::string canonical_interleave(const NDShape& lattice) {
  static constexpr char kDimLetters[] = "xyzw";
  const int order = std::max(1, covering_order(lattice));
  std::string pattern;
  pattern.reserve(static_cast<std::size_t>(order * lattice.ndims()));
  for (int level = 0; level < order; ++level) {
    for (int d = 0; d < lattice.ndims(); ++d) pattern += kDimLetters[d];
  }
  return pattern;
}

std::uint64_t generalized_morton_index(const InterleavePattern& p,
                                       const Coord& axes) {
  std::array<int, NDShape::kMaxDims> next{};
  for (std::size_t d = 0; d < next.size(); ++d) next[d] = p.bits[d];
  std::uint64_t h = 0;
  for (std::uint8_t d : p.slots) {
    const int b = --next[d];
    MLOC_DCHECK(b >= 0);
    h = (h << 1) | ((axes[d] >> b) & 1u);
  }
  return h;
}

Coord generalized_morton_axes(const InterleavePattern& p,
                              std::uint64_t index) {
  std::array<int, NDShape::kMaxDims> next{};
  for (std::size_t d = 0; d < next.size(); ++d) next[d] = p.bits[d];
  Coord out{};
  int shift = static_cast<int>(p.slots.size());
  for (std::uint8_t d : p.slots) {
    --shift;
    const int b = --next[d];
    out[d] |= static_cast<std::uint32_t>((index >> shift) & 1u) << b;
  }
  return out;
}

int covering_order(const NDShape& shape) {
  std::uint32_t max_extent = 1;
  for (int d = 0; d < shape.ndims(); ++d) {
    max_extent = std::max(max_extent, shape.extent(d));
  }
  int order = 0;
  while ((1ull << order) < max_extent) ++order;
  return order;
}

namespace {

/// Enumerate lattice cells, key each by `key_of`, and sort: ranks are dense
/// positions of that order (shared by every curve family).
template <typename KeyFn>
void rank_by_key(const NDShape& lattice,
                 std::vector<std::uint32_t>* rank_of,
                 std::vector<ChunkId>* chunk_at, KeyFn key_of) {
  const auto total = static_cast<std::uint32_t>(lattice.volume());
  struct Keyed {
    std::uint64_t key;
    ChunkId id;
  };
  std::vector<Keyed> cells;
  cells.reserve(total);
  for (std::uint32_t id = 0; id < total; ++id) {
    cells.push_back({key_of(lattice.delinearize(id)), id});
  }
  std::sort(cells.begin(), cells.end(),
            [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  for (std::uint32_t rank = 0; rank < total; ++rank) {
    (*chunk_at)[rank] = cells[rank].id;
    (*rank_of)[cells[rank].id] = rank;
  }
}

}  // namespace

CurveOrder CurveOrder::make(CurveKind kind, const NDShape& lattice) {
  MLOC_CHECK(kind != CurveKind::kGeneralizedMorton);
  CurveOrder out;
  out.kind_ = kind;
  const auto total = lattice.volume();
  MLOC_CHECK(total <= (1ull << 32));
  out.rank_of_.resize(total);
  out.chunk_at_.resize(total);

  if (kind == CurveKind::kRowMajor) {
    for (std::uint32_t i = 0; i < total; ++i) {
      out.rank_of_[i] = i;
      out.chunk_at_[i] = i;
    }
    return out;
  }

  const int ndims = lattice.ndims();
  const int order = covering_order(lattice);
  rank_by_key(lattice, &out.rank_of_, &out.chunk_at_,
              [&](const Coord& c) {
                return kind == CurveKind::kHilbert
                           ? hilbert_index(ndims, order, c)
                           : morton_index(ndims, order, c);
              });
  return out;
}

Result<CurveOrder> CurveOrder::make(CurveKind kind,
                                    std::string_view interleave,
                                    const NDShape& lattice) {
  if (kind == CurveKind::kGeneralizedMorton) {
    return make_generalized(interleave, lattice);
  }
  return make(kind, lattice);
}

Result<CurveOrder> CurveOrder::make_generalized(std::string_view interleave,
                                                const NDShape& lattice) {
  MLOC_RETURN_IF_ERROR(validate_interleave(interleave, lattice));
  MLOC_ASSIGN_OR_RETURN(InterleavePattern p,
                        parse_interleave(interleave, lattice.ndims()));
  CurveOrder out;
  out.kind_ = CurveKind::kGeneralizedMorton;
  const auto total = lattice.volume();
  MLOC_CHECK(total <= (1ull << 32));
  out.rank_of_.resize(total);
  out.chunk_at_.resize(total);
  rank_by_key(lattice, &out.rank_of_, &out.chunk_at_,
              [&](const Coord& c) { return generalized_morton_index(p, c); });
  return out;
}

int hier_level(std::uint64_t curve_pos, int num_levels, int ndims) {
  MLOC_CHECK(num_levels >= 1 && ndims >= 1);
  if (curve_pos == 0 || num_levels == 1) return 0;
  const std::uint64_t fanout = 1ull << ndims;
  // Largest k such that fanout^k divides curve_pos.
  int divisible = 0;
  std::uint64_t p = curve_pos;
  while (divisible < num_levels - 1 && p % fanout == 0) {
    p /= fanout;
    ++divisible;
  }
  return num_levels - 1 - divisible;
}

std::vector<std::uint32_t> hier_order(std::uint32_t total, int num_levels,
                                      int ndims) {
  std::vector<std::uint32_t> order;
  order.reserve(total);
  for (int level = 0; level < num_levels; ++level) {
    for (std::uint32_t pos = 0; pos < total; ++pos) {
      if (hier_level(pos, num_levels, ndims) == level) order.push_back(pos);
    }
  }
  return order;
}

}  // namespace mloc::sfc
