// Bit-granular I/O over byte buffers, LSB-first within each byte.
// Used by the Huffman coder and the ISABELA permutation packer.
#pragma once

#include <cstdint>
#include <span>

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mloc {

class BitWriter {
 public:
  /// Append up to 57 bits (LSB-first) to the stream. Bits accumulate in a
  /// 64-bit word and drain to the buffer only when the next append could
  /// overflow it — one resize per ~8 calls instead of push_back per byte;
  /// put_bits is the inner loop of Huffman emission.
  void put_bits(std::uint64_t bits, int count) {
    MLOC_DCHECK(count >= 0 && count <= 57);
    MLOC_DCHECK(count == 64 || (bits >> count) == 0);
    if (nbits_ + count > 64) drain_bytes();
    acc_ |= bits << nbits_;
    nbits_ += count;
  }

  /// Flush the final partial byte (zero-padded). Call exactly once at end.
  void finish() {
    drain_bytes();
    if (nbits_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      nbits_ = 0;
    }
  }

  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }

 private:
  /// Move every complete byte of the accumulator into the buffer.
  void drain_bytes() {
    const int nb = nbits_ >> 3;
    if (nb == 0) return;
    const std::size_t old = buf_.size();
    buf_.resize(old + static_cast<std::size_t>(nb));
    std::uint8_t* p = buf_.data() + old;
    for (int k = 0; k < nb; ++k) {
      p[k] = static_cast<std::uint8_t>(acc_);
      acc_ >>= 8;
    }
    nbits_ &= 7;
  }

  Bytes buf_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  /// Read `count` bits LSB-first. Reading past the end yields zero bits and
  /// sets overrun() — callers validate symbol counts, so overrun only
  /// signals corruption.
  std::uint64_t get_bits(int count) noexcept {
    MLOC_DCHECK(count >= 0 && count <= 57);
    while (nbits_ < count) {
      if (pos_ < data_.size()) {
        acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
        nbits_ += 8;
      } else {
        overrun_ = true;
        nbits_ = count;  // zero-fill
      }
    }
    const std::uint64_t out = (count == 0) ? 0 : (acc_ & ((1ull << count) - 1));
    acc_ >>= count;
    nbits_ -= count;
    return out;
  }

  /// Peek without consuming (used by table-driven Huffman decode).
  std::uint64_t peek_bits(int count) noexcept {
    while (nbits_ < count && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    return (count == 0) ? 0
                        : (acc_ & ((1ull << count) - 1));  // zero-padded
  }

  void skip_bits(int count) noexcept { get_bits(count); }

  [[nodiscard]] bool overrun() const noexcept { return overrun_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
  bool overrun_ = false;
};

}  // namespace mloc
