// Bit-granular I/O over byte buffers, LSB-first within each byte.
// Used by the Huffman coder and the ISABELA permutation packer.
#pragma once

#include <cstdint>
#include <span>

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mloc {

class BitWriter {
 public:
  /// Append up to 57 bits (LSB-first) to the stream.
  void put_bits(std::uint64_t bits, int count) {
    MLOC_DCHECK(count >= 0 && count <= 57);
    MLOC_DCHECK(count == 64 || (bits >> count) == 0);
    acc_ |= bits << nbits_;
    nbits_ += count;
    while (nbits_ >= 8) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  /// Flush the final partial byte (zero-padded). Call exactly once at end.
  void finish() {
    if (nbits_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      nbits_ = 0;
    }
  }

  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  /// Read `count` bits LSB-first. Reading past the end yields zero bits and
  /// sets overrun() — callers validate symbol counts, so overrun only
  /// signals corruption.
  std::uint64_t get_bits(int count) noexcept {
    MLOC_DCHECK(count >= 0 && count <= 57);
    while (nbits_ < count) {
      if (pos_ < data_.size()) {
        acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
        nbits_ += 8;
      } else {
        overrun_ = true;
        nbits_ = count;  // zero-fill
      }
    }
    const std::uint64_t out = (count == 0) ? 0 : (acc_ & ((1ull << count) - 1));
    acc_ >>= count;
    nbits_ -= count;
    return out;
  }

  /// Peek without consuming (used by table-driven Huffman decode).
  std::uint64_t peek_bits(int count) noexcept {
    while (nbits_ < count && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    return (count == 0) ? 0
                        : (acc_ & ((1ull << count) - 1));  // zero-padded
  }

  void skip_bits(int count) noexcept { get_bits(count); }

  [[nodiscard]] bool overrun() const noexcept { return overrun_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
  bool overrun_ = false;
};

}  // namespace mloc
