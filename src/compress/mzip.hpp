// mzip: a from-scratch DEFLATE-style general-purpose compressor.
//
// MLOC-COL compresses PLoD byte-columns with "standard Zlib compression"
// (paper §III-B-4); this reproduction has no external zlib dependency, so
// mzip supplies the same mechanism: greedy LZ77 over a 32 KiB window with
// hash-chain match search, followed by canonical-Huffman entropy coding of
// a combined literal/length alphabet and a distance alphabet (DEFLATE's
// code tables). One dynamically-coded block per buffer.
#pragma once

#include "compress/codec.hpp"

namespace mloc {

class MzipCodec final : public ByteCodec {
 public:
  /// `max_chain` bounds the hash-chain walk per position: higher = better
  /// ratio, slower encode (zlib's compression-level analogue).
  explicit MzipCodec(int max_chain = 64) : max_chain_(max_chain) {
    MLOC_CHECK(max_chain >= 1);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "mzip";
  }

  [[nodiscard]] Result<Bytes> encode(
      std::span<const std::uint8_t> raw) const override;

  [[nodiscard]] Result<Bytes> decode(
      std::span<const std::uint8_t> stream) const override;

 private:
  int max_chain_;
};

namespace detail::scalar {

/// Retained byte-at-a-time encoder implementing the same tokenizer
/// contract as MzipCodec::encode (hash-chain walk order, greedy match
/// selection, incompressible-stretch skip-ahead) without the word-level
/// fast paths. Output is byte-identical to MzipCodec::encode with the same
/// max_chain; kept for differential tests and bench_kernels A/B runs.
Result<Bytes> mzip_encode(std::span<const std::uint8_t> raw, int max_chain);

}  // namespace detail::scalar

}  // namespace mloc
