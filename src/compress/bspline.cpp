#include "compress/bspline.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mloc {

CubicBSpline::CubicBSpline(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  MLOC_CHECK(coeffs_.size() >= 4);
  build_knots();
}

void CubicBSpline::build_knots() {
  // Clamped uniform knot vector: degree-3 spline with K coefficients needs
  // K+4 knots; the first and last 4 coincide at 0 and 1.
  const int k = static_cast<int>(coeffs_.size());
  knots_.assign(k + 4, 0.0);
  const int interior = k - 3;  // number of spans
  for (int i = 0; i < 4; ++i) {
    knots_[i] = 0.0;
    knots_[k + i] = 1.0;
  }
  for (int i = 1; i < interior; ++i) {
    knots_[3 + i] = static_cast<double>(i) / interior;
  }
}

void CubicBSpline::active_basis(double u, int* first, double basis[4]) const {
  const int k = static_cast<int>(coeffs_.size());
  u = std::clamp(u, 0.0, 1.0);
  // Find the knot span [knots_[s], knots_[s+1]) containing u, with
  // s in [3, k-1] (clamped so u=1 lands in the last span).
  int s = 3;
  {
    int lo = 3, hi = k - 1;
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      if (knots_[mid] <= u) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    s = std::min(lo, k - 1);
  }

  // Cox–de Boor triangular scheme for the 4 nonzero cubic basis functions
  // on span s (de Boor's algorithm, basis form).
  double left[4], right[4];
  basis[0] = 1.0;
  for (int j = 1; j <= 3; ++j) {
    left[j] = u - knots_[s + 1 - j];
    right[j] = knots_[s + j] - u;
    double saved = 0.0;
    for (int r = 0; r < j; ++r) {
      const double denom = right[r + 1] + left[j - r];
      const double temp = (denom != 0.0) ? basis[r] / denom : 0.0;
      basis[r] = saved + right[r + 1] * temp;
      saved = left[j - r] * temp;
    }
    basis[j] = saved;
  }
  *first = s - 3;
}

double CubicBSpline::evaluate(double u) const {
  int first = 0;
  double basis[4];
  active_basis(u, &first, basis);
  double v = 0.0;
  for (int i = 0; i < 4; ++i) {
    v += coeffs_[first + i] * basis[i];
  }
  return v;
}

CubicBSpline CubicBSpline::fit(std::span<const double> y, int num_coeffs) {
  MLOC_CHECK(num_coeffs >= 4);
  const int n = static_cast<int>(y.size());
  MLOC_CHECK(n >= 1);
  const int k = num_coeffs;

  // Skeleton spline used only for basis evaluation during assembly.
  CubicBSpline skel(std::vector<double>(k, 0.0));

  // Normal equations: (A^T A) c = A^T y, A is n x k with 4 nonzeros/row.
  std::vector<double> ata(static_cast<std::size_t>(k) * k, 0.0);
  std::vector<double> aty(k, 0.0);
  for (int i = 0; i < n; ++i) {
    const double u = (n == 1) ? 0.0 : static_cast<double>(i) / (n - 1);
    int first = 0;
    double b[4];
    skel.active_basis(u, &first, b);
    for (int r = 0; r < 4; ++r) {
      aty[first + r] += b[r] * y[i];
      for (int c = 0; c < 4; ++c) {
        ata[static_cast<std::size_t>(first + r) * k + (first + c)] +=
            b[r] * b[c];
      }
    }
  }
  // Tikhonov ridge keeps the system solvable when n < k or coverage is
  // sparse (coefficients with no supporting samples).
  const double ridge = 1e-9;
  for (int d = 0; d < k; ++d) {
    ata[static_cast<std::size_t>(d) * k + d] += ridge;
  }

  // Dense Gaussian elimination with partial pivoting (k is ~30).
  std::vector<double> c = aty;
  for (int col = 0; col < k; ++col) {
    int pivot = col;
    double best = std::abs(ata[static_cast<std::size_t>(col) * k + col]);
    for (int r = col + 1; r < k; ++r) {
      const double v = std::abs(ata[static_cast<std::size_t>(r) * k + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (pivot != col) {
      for (int j = 0; j < k; ++j) {
        std::swap(ata[static_cast<std::size_t>(col) * k + j],
                  ata[static_cast<std::size_t>(pivot) * k + j]);
      }
      std::swap(c[col], c[pivot]);
    }
    const double diag = ata[static_cast<std::size_t>(col) * k + col];
    MLOC_CHECK_MSG(diag != 0.0, "singular spline normal matrix");
    for (int r = col + 1; r < k; ++r) {
      const double f = ata[static_cast<std::size_t>(r) * k + col] / diag;
      if (f == 0.0) continue;
      for (int j = col; j < k; ++j) {
        ata[static_cast<std::size_t>(r) * k + j] -=
            f * ata[static_cast<std::size_t>(col) * k + j];
      }
      c[r] -= f * c[col];
    }
  }
  for (int row = k - 1; row >= 0; --row) {
    double v = c[row];
    for (int j = row + 1; j < k; ++j) {
      v -= ata[static_cast<std::size_t>(row) * k + j] * c[j];
    }
    c[row] = v / ata[static_cast<std::size_t>(row) * k + row];
  }

  return CubicBSpline(std::move(c));
}

}  // namespace mloc
