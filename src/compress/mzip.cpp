#include "compress/mzip.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <memory>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "compress/huffman.hpp"

namespace mloc {
namespace {

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;
constexpr int kHashBits = 15;
constexpr int kHashSize = 1 << kHashBits;
constexpr int kEndOfBlock = 256;
constexpr int kNumLitLen = 286;  // 0..255 literals, 256 EOB, 257..285 lengths
constexpr int kNumDist = 30;

// DEFLATE length codes: symbol 257+i covers lengths [base, base+2^extra).
constexpr std::array<int, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLenExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance codes: symbol i covers distances [base, base+2^extra).
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3, 3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8, 8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// len -> length-symbol lookup, indexed by len - kMinMatch. Replaces a
// 29-entry linear scan that ran worst-case for the most common (short)
// lengths — this is on the shared emission path, twice per match.
constexpr std::array<std::uint16_t, kMaxMatch - kMinMatch + 1> kLenSym = [] {
  std::array<std::uint16_t, kMaxMatch - kMinMatch + 1> t{};
  for (int len = kMinMatch; len <= kMaxMatch; ++len) {
    int sym = 0;
    for (int i = 28; i >= 0; --i) {
      if (len >= kLenBase[i]) {
        sym = 257 + i;
        break;
      }
    }
    t[static_cast<std::size_t>(len - kMinMatch)] =
        static_cast<std::uint16_t>(sym);
  }
  return t;
}();

int length_symbol(int len) {
  MLOC_DCHECK(len >= kMinMatch && len <= kMaxMatch);
  return kLenSym[static_cast<std::size_t>(len - kMinMatch)];
}

int distance_symbol(int dist) {
  MLOC_DCHECK(dist >= 1 && dist <= kWindowSize);
  // Distance codes pair up by power of two: symbols 2b-2 and 2b-1 split
  // [2^(b-1)+1, 2^b] in half, so the symbol falls out of the bit width of
  // dist - 1 plus its next-to-top bit. Matches the kDistBase table scan.
  const unsigned d = static_cast<unsigned>(dist) - 1;
  if (d < 4) return static_cast<int>(d);
  const int b = std::bit_width(d);
  return 2 * (b - 1) + static_cast<int>((d >> (b - 2)) & 1u);
}

std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of a 3-byte prefix.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

/// hash3 via one 4-byte load (top byte masked off) when alignment-free
/// word access matches the byte order; falls back to byte loads otherwise
/// or near the buffer end. Same value as hash3 in all cases.
std::uint32_t hash3_fast(const std::uint8_t* p, std::size_t avail) {
  if constexpr (std::endian::native == std::endian::little) {
    if (avail >= 4) {
      std::uint32_t v;
      std::memcpy(&v, p, sizeof v);
      return ((v & 0x00FFFFFFu) * 0x9E3779B1u) >> (32 - kHashBits);
    }
  }
  return hash3(p);
}

int match_length_ref(const std::uint8_t* a, const std::uint8_t* b,
                     int max_len) {
  int len = 0;
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

/// Byte-identical to match_length_ref: compares 8 bytes per step via
/// XOR + ctz (first differing byte = trailing-zero count / 8 on
/// little-endian), with an optional 32-byte AVX2 round on top.
int match_length_fast(const std::uint8_t* a, const std::uint8_t* b,
                      int max_len) {
  if constexpr (std::endian::native != std::endian::little) {
    return match_length_ref(a, b, max_len);
  }
  int len = 0;
#if defined(__AVX2__)
  while (len + 32 <= max_len) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + len));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + len));
    const auto eq = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xFFFFFFFFu) return len + std::countr_zero(~eq);
    len += 32;
  }
#endif
  while (len + 8 <= max_len) {
    std::uint64_t wa;
    std::uint64_t wb;
    std::memcpy(&wa, a + len, sizeof wa);
    std::memcpy(&wb, b + len, sizeof wb);
    const std::uint64_t x = wa ^ wb;
    if (x != 0) return len + (std::countr_zero(x) >> 3);
    len += 8;
  }
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

struct Token {
  // literal: dist == 0, len = byte value. match: dist >= 1, len >= kMinMatch.
  std::uint32_t len;
  std::uint32_t dist;
};

// Skip-ahead on incompressible stretches (zlib/LZ4-style): after miss_run
// consecutive match misses, each miss emits 1 + min(miss_run/32, 31)
// literals, searching and chain-indexing only the first. Part of the
// tokenizer contract — both instantiations below must apply it identically.
constexpr std::uint32_t kSkipShift = 5;
constexpr std::size_t kMaxSkipStep = 32;

/// LZ77 tokenizer. The token stream depends only on the contract (chain
/// walk order and budget, first-strictly-longest match, post-walk chain
/// insertion, interior-match indexing, skip-ahead) — never on kFast. The
/// kFast=true instantiation swaps in word-level hash/compare kernels and a
/// prefilter that skips candidates which disagree at offset best_len (such
/// candidates can't produce a strictly longer match, so skipping their
/// length computation is output-neutral). kFast=false is the retained
/// byte-at-a-time reference.
template <bool kFast>
void tokenize(std::span<const std::uint8_t> raw, int max_chain,
              std::vector<Token>& tokens) {
  const std::size_t n = raw.size();
  // Every token consumes at least one input byte, so n bounds the token
  // count; reserving it up front avoids a multi-MB realloc+copy mid-stream.
  // Untouched reserved pages are never faulted in, so the bound is free.
  tokens.reserve(n);
  std::vector<std::int32_t> head(kHashSize, -1);
  // prev is written before it is read on every path (a candidate index only
  // ever comes from a chain it was inserted into), so skip the O(n) fill.
  const auto prev = std::make_unique_for_overwrite<std::int32_t[]>(n);

  std::size_t pos = 0;
  std::uint32_t miss_run = 0;
  while (pos < n) {
    int best_len = 0;
    int best_dist = 0;
    if (pos + kMinMatch <= n) {
      const std::uint8_t* a = raw.data() + pos;
      const std::uint32_t h =
          kFast ? hash3_fast(a, n - pos) : hash3(a);
      std::int32_t cand = head[h];
      int chain = max_chain;
      const int max_len =
          static_cast<int>(std::min<std::size_t>(kMaxMatch, n - pos));
      while (cand >= 0 && chain-- > 0 &&
             pos - static_cast<std::size_t>(cand) <= kWindowSize) {
        const std::uint8_t* b = raw.data() + cand;
        if constexpr (kFast) {
          // A strictly longer match needs bytes [best_len-1, best_len] to
          // agree (16-bit probe) and, once best_len >= 3, the candidate's
          // first four bytes to equal a's (one 32-bit compare that also
          // rejects hash collisions). Both reads stay in bounds because
          // best_len < max_len here (the walk breaks at max_len), and both
          // are equality tests, so byte order does not matter. Skipped
          // candidates cannot beat best_len, so the token stream is
          // unchanged.
          if (best_len > 0) {
            std::uint16_t wa;
            std::uint16_t wb;
            std::memcpy(&wa, a + best_len - 1, sizeof wa);
            std::memcpy(&wb, b + best_len - 1, sizeof wb);
            if (wa != wb) {
              cand = prev[cand];
              continue;
            }
            if (best_len >= 3) {
              std::uint32_t da;
              std::uint32_t db;
              std::memcpy(&da, a, sizeof da);
              std::memcpy(&db, b, sizeof db);
              if (da != db) {
                cand = prev[cand];
                continue;
              }
            }
          }
        }
        const int len = kFast ? match_length_fast(a, b, max_len)
                              : match_length_ref(a, b, max_len);
        if (len > best_len) {
          best_len = len;
          best_dist = static_cast<int>(pos - static_cast<std::size_t>(cand));
          if (len >= max_len) break;
        }
        cand = prev[cand];
      }
      // Insert current position into the chain.
      prev[pos] = head[h];
      head[h] = static_cast<std::int32_t>(pos);
    }

    if (best_len >= kMinMatch) {
      miss_run = 0;
      tokens.push_back({static_cast<std::uint32_t>(best_len),
                        static_cast<std::uint32_t>(best_dist)});
      // Index the skipped positions so later matches can reference them.
      const std::size_t end =
          std::min(pos + static_cast<std::size_t>(best_len), n);
      for (std::size_t p = pos + 1; p + kMinMatch <= n && p < end; ++p) {
        const std::uint32_t h =
            kFast ? hash3_fast(raw.data() + p, n - p) : hash3(raw.data() + p);
        prev[p] = head[h];
        head[h] = static_cast<std::int32_t>(p);
      }
      pos = end;
    } else {
      ++miss_run;
      const std::size_t step =
          1 + std::min<std::size_t>(miss_run >> kSkipShift, kMaxSkipStep - 1);
      const std::size_t lits = std::min(step, n - pos);
      for (std::size_t k = 0; k < lits; ++k) {
        tokens.push_back({raw[pos + k], 0});
      }
      pos += lits;
    }
  }
}

/// Frequency + canonical-Huffman emission shared by both encoders.
Result<Bytes> encode_tokens(std::size_t raw_size,
                            const std::vector<Token>& tokens) {
  ByteWriter out;
  out.put_varint(raw_size);
  if (raw_size == 0) return std::move(out).take();

  std::vector<std::uint64_t> lit_freq(kNumLitLen, 0);
  std::vector<std::uint64_t> dist_freq(kNumDist, 0);
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      ++lit_freq[t.len];
    } else {
      ++lit_freq[length_symbol(static_cast<int>(t.len))];
      ++dist_freq[distance_symbol(static_cast<int>(t.dist))];
    }
  }
  ++lit_freq[kEndOfBlock];
  if (std::all_of(dist_freq.begin(), dist_freq.end(),
                  [](std::uint64_t f) { return f == 0; })) {
    dist_freq[0] = 1;  // keep the distance table well-formed
  }

  const HuffmanCode lit_code = HuffmanCode::from_frequencies(lit_freq);
  const HuffmanCode dist_code = HuffmanCode::from_frequencies(dist_freq);
  lit_code.serialize_lengths(out);
  dist_code.serialize_lengths(out);

  BitWriter bits;
  const Token* t_it = tokens.data();
  const Token* const t_end = t_it + tokens.size();
  while (t_it != t_end) {
    const Token& t = *t_it++;
    if (t.dist == 0) {
      // Pack a run of literal codes into one put_bits call while they fit
      // in the 57-bit budget. LSB-first concatenation is associative, so
      // the stream is identical to one call per symbol.
      std::uint64_t w = lit_code.code_bits(static_cast<int>(t.len));
      int nb = lit_code.code_length(static_cast<int>(t.len));
      while (t_it != t_end && t_it->dist == 0) {
        const int sym = static_cast<int>(t_it->len);
        const int l = lit_code.code_length(sym);
        if (nb + l > 57) break;
        w |= static_cast<std::uint64_t>(lit_code.code_bits(sym)) << nb;
        nb += l;
        ++t_it;
      }
      bits.put_bits(w, nb);
    } else {
      // Fuse the four match fields (length code, length extra bits,
      // distance code, distance extra bits) into one put_bits call.
      // LSB-first concatenation is associative, so the stream is identical;
      // worst case 15 + 5 + 15 + 13 = 48 bits, within the 57-bit limit.
      const int ls = length_symbol(static_cast<int>(t.len));
      const int ds = distance_symbol(static_cast<int>(t.dist));
      std::uint64_t w = lit_code.code_bits(ls);
      int nb = lit_code.code_length(ls);
      w |= static_cast<std::uint64_t>(
               t.len - static_cast<std::uint32_t>(kLenBase[ls - 257]))
           << nb;
      nb += kLenExtra[ls - 257];
      w |= static_cast<std::uint64_t>(dist_code.code_bits(ds)) << nb;
      nb += dist_code.code_length(ds);
      w |= static_cast<std::uint64_t>(
               t.dist - static_cast<std::uint32_t>(kDistBase[ds]))
           << nb;
      nb += kDistExtra[ds];
      bits.put_bits(w, nb);
    }
  }
  lit_code.encode_symbol(bits, kEndOfBlock);
  bits.finish();
  out.put_bytes(bits.bytes());
  return std::move(out).take();
}

}  // namespace

Result<Bytes> MzipCodec::encode(std::span<const std::uint8_t> raw) const {
  std::vector<Token> tokens;
  tokenize<true>(raw, max_chain_, tokens);
  return encode_tokens(raw.size(), tokens);
}

Result<Bytes> MzipCodec::decode(std::span<const std::uint8_t> stream) const {
  ByteReader r(stream);
  MLOC_ASSIGN_OR_RETURN(std::uint64_t raw_size, r.get_varint());
  if (raw_size == 0) {
    if (!r.exhausted()) return corrupt_data("mzip: trailing bytes after empty stream");
    return Bytes{};
  }
  if (raw_size > (1ull << 28)) {
    return corrupt_data("mzip: implausible raw size");
  }

  MLOC_ASSIGN_OR_RETURN(auto lit_lens,
                        HuffmanCode::deserialize_lengths(r, kNumLitLen));
  MLOC_ASSIGN_OR_RETURN(auto dist_lens,
                        HuffmanCode::deserialize_lengths(r, kNumDist));
  MLOC_ASSIGN_OR_RETURN(HuffmanCode lit_code, HuffmanCode::from_lengths(lit_lens));
  MLOC_ASSIGN_OR_RETURN(HuffmanCode dist_code,
                        HuffmanCode::from_lengths(dist_lens));

  MLOC_ASSIGN_OR_RETURN(auto payload, r.get_bytes(r.remaining()));
  BitReader bits(payload);

  Bytes out;
  // Bound the speculative reservation: raw_size is untrusted input.
  out.reserve(std::min<std::uint64_t>(raw_size, 1 << 20));
  while (true) {
    const int sym = lit_code.decode_symbol(bits);
    if (sym < 0 || bits.overrun()) return corrupt_data("mzip: bad symbol");
    if (sym == kEndOfBlock) break;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
    } else {
      const int li = sym - 257;
      if (li >= 29) return corrupt_data("mzip: bad length symbol");
      const int len = kLenBase[li] +
                      static_cast<int>(bits.get_bits(kLenExtra[li]));
      const int ds = dist_code.decode_symbol(bits);
      if (ds < 0 || ds >= kNumDist) return corrupt_data("mzip: bad distance symbol");
      const int dist = kDistBase[ds] +
                       static_cast<int>(bits.get_bits(kDistExtra[ds]));
      if (static_cast<std::size_t>(dist) > out.size()) {
        return corrupt_data("mzip: distance reaches before stream start");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) replicate.
      std::size_t from = out.size() - static_cast<std::size_t>(dist);
      for (int i = 0; i < len; ++i) out.push_back(out[from + i]);
    }
    if (out.size() > raw_size) return corrupt_data("mzip: output exceeds header size");
  }
  if (out.size() != raw_size) {
    return corrupt_data("mzip: output size mismatches header");
  }
  return out;
}

namespace detail::scalar {

Result<Bytes> mzip_encode(std::span<const std::uint8_t> raw, int max_chain) {
  MLOC_CHECK(max_chain >= 1);
  std::vector<Token> tokens;
  tokenize<false>(raw, max_chain, tokens);
  return encode_tokens(raw.size(), tokens);
}

}  // namespace detail::scalar

}  // namespace mloc
