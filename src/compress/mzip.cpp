#include "compress/mzip.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "compress/huffman.hpp"

namespace mloc {
namespace {

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;
constexpr int kHashBits = 15;
constexpr int kHashSize = 1 << kHashBits;
constexpr int kEndOfBlock = 256;
constexpr int kNumLitLen = 286;  // 0..255 literals, 256 EOB, 257..285 lengths
constexpr int kNumDist = 30;

// DEFLATE length codes: symbol 257+i covers lengths [base, base+2^extra).
constexpr std::array<int, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<int, 29> kLenExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance codes: symbol i covers distances [base, base+2^extra).
constexpr std::array<int, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<int, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3, 3,
                                            4, 4, 5,  5,  6,  6,  7,  7,  8, 8,
                                            9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int length_symbol(int len) {
  MLOC_DCHECK(len >= kMinMatch && len <= kMaxMatch);
  // Linear scan is fine: called per match, table has 29 entries.
  for (int i = 28; i >= 0; --i) {
    if (len >= kLenBase[i]) return 257 + i;
  }
  return 257;
}

int distance_symbol(int dist) {
  MLOC_DCHECK(dist >= 1 && dist <= kWindowSize);
  for (int i = 29; i >= 0; --i) {
    if (dist >= kDistBase[i]) return i;
  }
  return 0;
}

std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of a 3-byte prefix.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

struct Token {
  // literal: dist == 0, len = byte value. match: dist >= 1, len >= kMinMatch.
  std::uint32_t len;
  std::uint32_t dist;
};

}  // namespace

Result<Bytes> MzipCodec::encode(std::span<const std::uint8_t> raw) const {
  ByteWriter out;
  out.put_varint(raw.size());
  if (raw.empty()) return std::move(out).take();

  // ---- LZ77 tokenization with hash chains.
  std::vector<Token> tokens;
  tokens.reserve(raw.size() / 2 + 16);
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(raw.size(), -1);

  const auto n = raw.size();
  std::size_t pos = 0;
  while (pos < n) {
    int best_len = 0;
    int best_dist = 0;
    if (pos + kMinMatch <= n) {
      const std::uint32_t h = hash3(raw.data() + pos);
      std::int32_t cand = head[h];
      int chain = max_chain_;
      const int max_len =
          static_cast<int>(std::min<std::size_t>(kMaxMatch, n - pos));
      while (cand >= 0 && chain-- > 0 &&
             pos - static_cast<std::size_t>(cand) <= kWindowSize) {
        const std::uint8_t* a = raw.data() + pos;
        const std::uint8_t* b = raw.data() + cand;
        int len = 0;
        while (len < max_len && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = static_cast<int>(pos - static_cast<std::size_t>(cand));
          if (len >= max_len) break;
        }
        cand = prev[cand];
      }
      // Insert current position into the chain.
      prev[pos] = head[h];
      head[h] = static_cast<std::int32_t>(pos);
    }

    if (best_len >= kMinMatch) {
      tokens.push_back({static_cast<std::uint32_t>(best_len),
                        static_cast<std::uint32_t>(best_dist)});
      // Index the skipped positions so later matches can reference them.
      const std::size_t end = std::min(pos + static_cast<std::size_t>(best_len), n);
      for (std::size_t p = pos + 1; p + kMinMatch <= n && p < end; ++p) {
        const std::uint32_t h = hash3(raw.data() + p);
        prev[p] = head[h];
        head[h] = static_cast<std::int32_t>(p);
      }
      pos = end;
    } else {
      tokens.push_back({raw[pos], 0});
      ++pos;
    }
  }

  // ---- Frequency pass.
  std::vector<std::uint64_t> lit_freq(kNumLitLen, 0);
  std::vector<std::uint64_t> dist_freq(kNumDist, 0);
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      ++lit_freq[t.len];
    } else {
      ++lit_freq[length_symbol(static_cast<int>(t.len))];
      ++dist_freq[distance_symbol(static_cast<int>(t.dist))];
    }
  }
  ++lit_freq[kEndOfBlock];
  if (std::all_of(dist_freq.begin(), dist_freq.end(),
                  [](std::uint64_t f) { return f == 0; })) {
    dist_freq[0] = 1;  // keep the distance table well-formed
  }

  const HuffmanCode lit_code = HuffmanCode::from_frequencies(lit_freq);
  const HuffmanCode dist_code = HuffmanCode::from_frequencies(dist_freq);
  lit_code.serialize_lengths(out);
  dist_code.serialize_lengths(out);

  // ---- Emission pass.
  BitWriter bits;
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      lit_code.encode_symbol(bits, static_cast<int>(t.len));
    } else {
      const int ls = length_symbol(static_cast<int>(t.len));
      lit_code.encode_symbol(bits, ls);
      bits.put_bits(t.len - static_cast<std::uint32_t>(kLenBase[ls - 257]),
                    kLenExtra[ls - 257]);
      const int ds = distance_symbol(static_cast<int>(t.dist));
      dist_code.encode_symbol(bits, ds);
      bits.put_bits(t.dist - static_cast<std::uint32_t>(kDistBase[ds]),
                    kDistExtra[ds]);
    }
  }
  lit_code.encode_symbol(bits, kEndOfBlock);
  bits.finish();
  out.put_bytes(bits.bytes());
  return std::move(out).take();
}

Result<Bytes> MzipCodec::decode(std::span<const std::uint8_t> stream) const {
  ByteReader r(stream);
  MLOC_ASSIGN_OR_RETURN(std::uint64_t raw_size, r.get_varint());
  if (raw_size == 0) {
    if (!r.exhausted()) return corrupt_data("mzip: trailing bytes after empty stream");
    return Bytes{};
  }
  if (raw_size > (1ull << 28)) {
    return corrupt_data("mzip: implausible raw size");
  }

  MLOC_ASSIGN_OR_RETURN(auto lit_lens,
                        HuffmanCode::deserialize_lengths(r, kNumLitLen));
  MLOC_ASSIGN_OR_RETURN(auto dist_lens,
                        HuffmanCode::deserialize_lengths(r, kNumDist));
  MLOC_ASSIGN_OR_RETURN(HuffmanCode lit_code, HuffmanCode::from_lengths(lit_lens));
  MLOC_ASSIGN_OR_RETURN(HuffmanCode dist_code,
                        HuffmanCode::from_lengths(dist_lens));

  MLOC_ASSIGN_OR_RETURN(auto payload, r.get_bytes(r.remaining()));
  BitReader bits(payload);

  Bytes out;
  // Bound the speculative reservation: raw_size is untrusted input.
  out.reserve(std::min<std::uint64_t>(raw_size, 1 << 20));
  while (true) {
    const int sym = lit_code.decode_symbol(bits);
    if (sym < 0 || bits.overrun()) return corrupt_data("mzip: bad symbol");
    if (sym == kEndOfBlock) break;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
    } else {
      const int li = sym - 257;
      if (li >= 29) return corrupt_data("mzip: bad length symbol");
      const int len = kLenBase[li] +
                      static_cast<int>(bits.get_bits(kLenExtra[li]));
      const int ds = dist_code.decode_symbol(bits);
      if (ds < 0 || ds >= kNumDist) return corrupt_data("mzip: bad distance symbol");
      const int dist = kDistBase[ds] +
                       static_cast<int>(bits.get_bits(kDistExtra[ds]));
      if (static_cast<std::size_t>(dist) > out.size()) {
        return corrupt_data("mzip: distance reaches before stream start");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) replicate.
      std::size_t from = out.size() - static_cast<std::size_t>(dist);
      for (int i = 0; i < len; ++i) out.push_back(out[from + i]);
    }
    if (out.size() > raw_size) return corrupt_data("mzip: output exceeds header size");
  }
  if (out.size() != raw_size) {
    return corrupt_data("mzip: output size mismatches header");
  }
  return out;
}

}  // namespace mloc
