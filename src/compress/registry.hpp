// Codec registry: name -> DoubleCodec factory.
//
// MLOC stores the codec name in every subfile header so a reader opens the
// right decoder without out-of-band configuration. The registry also feeds
// the ablation bench (sweep all registered codecs over one workload).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compress/codec.hpp"

namespace mloc {

/// Construct a codec by registered name:
///   "raw", "mzip", "rle", "isobar", "xor-delta", "isabela"
/// "isabela" accepts an optional ":<error_bound>" suffix, e.g.
/// "isabela:0.001". Unknown names yield NotFound.
Result<std::shared_ptr<const DoubleCodec>> make_double_codec(
    const std::string& name);

/// Construct a bytes->bytes codec: "raw", "mzip", "rle". These are the
/// codecs eligible for PLoD byte-column compression (MLOC-COL mode);
/// NotFound for double-only codecs.
Result<std::shared_ptr<const ByteCodec>> make_byte_codec(
    const std::string& name);

/// True when `name` names a byte codec (PLoD-compatible).
bool is_byte_codec(const std::string& name);

/// All base codec names (without parameter suffixes).
std::vector<std::string> registered_codec_names();

}  // namespace mloc
