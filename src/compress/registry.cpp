#include "compress/registry.hpp"

#include <cstdlib>

#include "compress/isabela.hpp"
#include "compress/isobar.hpp"
#include "compress/mzip.hpp"
#include "compress/rle.hpp"
#include "compress/xor_delta.hpp"

namespace mloc {

Result<std::shared_ptr<const DoubleCodec>> make_double_codec(
    const std::string& name) {
  const auto colon = name.find(':');
  const std::string base = name.substr(0, colon);
  const std::string param =
      (colon == std::string::npos) ? "" : name.substr(colon + 1);

  if (base == "raw") {
    return std::shared_ptr<const DoubleCodec>(
        std::make_shared<ByteCodecAdapter>(std::make_shared<RawCodec>()));
  }
  if (base == "mzip") {
    return std::shared_ptr<const DoubleCodec>(
        std::make_shared<ByteCodecAdapter>(std::make_shared<MzipCodec>()));
  }
  if (base == "rle") {
    return std::shared_ptr<const DoubleCodec>(
        std::make_shared<ByteCodecAdapter>(std::make_shared<RleCodec>()));
  }
  if (base == "isobar") {
    return std::shared_ptr<const DoubleCodec>(std::make_shared<IsobarCodec>());
  }
  if (base == "xor-delta") {
    return std::shared_ptr<const DoubleCodec>(
        std::make_shared<XorDeltaCodec>());
  }
  if (base == "isabela") {
    IsabelaCodec::Options opts;
    if (!param.empty()) {
      const double eps = std::atof(param.c_str());
      if (eps <= 0.0 || eps >= 1.0) {
        return invalid_argument("isabela error bound must be in (0,1): " + param);
      }
      opts.error_bound = eps;
    }
    return std::shared_ptr<const DoubleCodec>(
        std::make_shared<IsabelaCodec>(opts));
  }
  return not_found("unknown codec: " + name);
}

Result<std::shared_ptr<const ByteCodec>> make_byte_codec(
    const std::string& name) {
  if (name == "raw") {
    return std::shared_ptr<const ByteCodec>(std::make_shared<RawCodec>());
  }
  if (name == "mzip") {
    return std::shared_ptr<const ByteCodec>(std::make_shared<MzipCodec>());
  }
  if (name == "rle") {
    return std::shared_ptr<const ByteCodec>(std::make_shared<RleCodec>());
  }
  return not_found("not a byte codec: " + name);
}

bool is_byte_codec(const std::string& name) {
  return name == "raw" || name == "mzip" || name == "rle";
}

std::vector<std::string> registered_codec_names() {
  return {"raw", "mzip", "rle", "isobar", "xor-delta", "isabela"};
}

}  // namespace mloc
