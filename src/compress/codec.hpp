// Codec interfaces (paper §III-B-4: "any compression technique ... can be
// plugged into the framework").
//
// Two shapes of codec exist in MLOC:
//  * ByteCodec — lossless bytes->bytes (mzip/Zlib-style, RLE, ISOBAR-like);
//    used on byte-columns (MLOC-COL) and whole-chunk buffers (MLOC-ISO).
//  * DoubleCodec — operates on double buffers and may be lossy within a
//    guaranteed point-wise relative error bound (ISABELA-like).
// ByteCodecAdapter lifts any ByteCodec to a (lossless) DoubleCodec so the
// MLOC pipeline deals in one interface.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace mloc {

class ByteCodec {
 public:
  virtual ~ByteCodec() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Compress `raw` into a self-describing stream.
  [[nodiscard]] virtual Result<Bytes> encode(
      std::span<const std::uint8_t> raw) const = 0;

  /// Invert encode(). Fails with CorruptData on malformed streams.
  [[nodiscard]] virtual Result<Bytes> decode(
      std::span<const std::uint8_t> stream) const = 0;
};

class DoubleCodec {
 public:
  virtual ~DoubleCodec() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True when decode returns bit-exact inputs.
  [[nodiscard]] virtual bool lossless() const noexcept = 0;

  /// Guaranteed max point-wise relative error (0 for lossless codecs).
  [[nodiscard]] virtual double max_relative_error() const noexcept = 0;

  [[nodiscard]] virtual Result<Bytes> encode(
      std::span<const double> values) const = 0;

  [[nodiscard]] virtual Result<std::vector<double>> decode(
      std::span<const std::uint8_t> stream) const = 0;
};

/// Lossless DoubleCodec backed by a ByteCodec over the raw byte image.
class ByteCodecAdapter final : public DoubleCodec {
 public:
  explicit ByteCodecAdapter(std::shared_ptr<const ByteCodec> inner)
      : inner_(std::move(inner)) {
    MLOC_CHECK(inner_ != nullptr);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return inner_->name();
  }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] double max_relative_error() const noexcept override {
    return 0.0;
  }

  [[nodiscard]] Result<Bytes> encode(
      std::span<const double> values) const override {
    const Bytes raw = doubles_to_bytes(values);
    return inner_->encode(raw);
  }

  [[nodiscard]] Result<std::vector<double>> decode(
      std::span<const std::uint8_t> stream) const override {
    MLOC_ASSIGN_OR_RETURN(Bytes raw, inner_->decode(stream));
    return bytes_to_doubles(raw);
  }

 private:
  std::shared_ptr<const ByteCodec> inner_;
};

/// Identity ByteCodec (stores raw). Baseline and incompressible-plane path.
class RawCodec final : public ByteCodec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "raw"; }
  [[nodiscard]] Result<Bytes> encode(
      std::span<const std::uint8_t> raw) const override {
    return Bytes(raw.begin(), raw.end());
  }
  [[nodiscard]] Result<Bytes> decode(
      std::span<const std::uint8_t> stream) const override {
    return Bytes(stream.begin(), stream.end());
  }
};

}  // namespace mloc
