// Byte-level run-length codec.
//
// Cheap pre/post stage for highly repetitive streams: ISABELA error
// corrections (mostly zeros) and near-constant PLoD byte planes. Format:
// varint raw size, then (byte, varint run_length) pairs.
#pragma once

#include "compress/codec.hpp"

namespace mloc {

class RleCodec final : public ByteCodec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "rle"; }

  [[nodiscard]] Result<Bytes> encode(
      std::span<const std::uint8_t> raw) const override;

  [[nodiscard]] Result<Bytes> decode(
      std::span<const std::uint8_t> stream) const override;
};

}  // namespace mloc
