// Canonical Huffman coding over small alphabets (<= 512 symbols).
//
// Shared entropy-coding stage of the mzip (DEFLATE-style) codec and the
// ISOBAR-like byte-plane compressor. Code lengths are limited to
// kMaxCodeLen via the standard overflow-rebalancing step, and only the
// length table is transmitted (canonical assignment is reproducible).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitstream.hpp"
#include "util/status.hpp"

namespace mloc {

class HuffmanCode {
 public:
  static constexpr int kMaxCodeLen = 15;

  /// Build from symbol frequencies (size = alphabet size, <= 512).
  /// Symbols with zero frequency get no code. At least one symbol must
  /// have nonzero frequency.
  static HuffmanCode from_frequencies(std::span<const std::uint64_t> freqs);

  /// Rebuild from transmitted code lengths. Fails on over-subscribed or
  /// invalid length tables (the Kraft sum must not exceed 1).
  static Result<HuffmanCode> from_lengths(std::span<const std::uint8_t> lengths);

  /// Per-symbol code lengths (0 = symbol unused) — what gets transmitted.
  [[nodiscard]] const std::vector<std::uint8_t>& lengths() const noexcept {
    return len_;
  }

  void encode_symbol(BitWriter& w, int symbol) const {
    MLOC_DCHECK(symbol >= 0 && static_cast<std::size_t>(symbol) < len_.size());
    MLOC_DCHECK(len_[symbol] > 0);
    w.put_bits(code_[symbol], len_[symbol]);
  }

  /// Raw code bits / length for a symbol, for callers that fuse several
  /// fields into one put_bits call. LSB-first, same as encode_symbol emits.
  [[nodiscard]] std::uint32_t code_bits(int symbol) const noexcept {
    MLOC_DCHECK(symbol >= 0 && static_cast<std::size_t>(symbol) < len_.size());
    return code_[symbol];
  }
  [[nodiscard]] int code_length(int symbol) const noexcept {
    MLOC_DCHECK(symbol >= 0 && static_cast<std::size_t>(symbol) < len_.size());
    return len_[symbol];
  }

  /// Decode one symbol; -1 on invalid/corrupt bit pattern.
  [[nodiscard]] int decode_symbol(BitReader& r) const {
    const auto window = static_cast<std::uint32_t>(r.peek_bits(max_len_));
    const std::int16_t sym = decode_table_[window];
    if (sym < 0) return -1;
    r.skip_bits(len_[sym]);
    return sym;
  }

  /// Serialize the length table compactly (RLE of zero runs).
  void serialize_lengths(ByteWriter& w) const;
  static Result<std::vector<std::uint8_t>> deserialize_lengths(
      ByteReader& r, std::size_t alphabet_size);

 private:
  void assign_canonical_codes();
  void build_decode_table();

  std::vector<std::uint8_t> len_;     // per-symbol code length
  std::vector<std::uint32_t> code_;   // per-symbol code bits (LSB-first order)
  std::vector<std::int16_t> decode_table_;  // window -> symbol (or -1)
  int max_len_ = 0;
};

}  // namespace mloc
