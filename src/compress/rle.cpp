#include "compress/rle.hpp"

#include <algorithm>

namespace mloc {

Result<Bytes> RleCodec::encode(std::span<const std::uint8_t> raw) const {
  ByteWriter out(raw.size() / 4 + 16);
  out.put_varint(raw.size());
  std::size_t i = 0;
  while (i < raw.size()) {
    const std::uint8_t value = raw[i];
    std::size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == value) ++run;
    out.put_u8(value);
    out.put_varint(run);
    i += run;
  }
  return std::move(out).take();
}

Result<Bytes> RleCodec::decode(std::span<const std::uint8_t> stream) const {
  ByteReader r(stream);
  MLOC_ASSIGN_OR_RETURN(std::uint64_t raw_size, r.get_varint());
  if (raw_size > (1ull << 28)) return corrupt_data("rle: raw size exceeds decode limit");
  Bytes out;
  // Bound the speculative reservation: raw_size is untrusted input.
  out.reserve(std::min<std::uint64_t>(raw_size, 1 << 20));
  while (out.size() < raw_size) {
    MLOC_ASSIGN_OR_RETURN(std::uint8_t value, r.get_u8());
    MLOC_ASSIGN_OR_RETURN(std::uint64_t run, r.get_varint());
    if (run == 0 || out.size() + run > raw_size) {
      return corrupt_data("rle: run overflows declared size");
    }
    out.insert(out.end(), run, value);
  }
  if (!r.exhausted()) return corrupt_data("rle: trailing bytes");
  return out;
}

}  // namespace mloc
