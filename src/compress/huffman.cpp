#include "compress/huffman.hpp"

#include <algorithm>
#include <queue>

namespace mloc {
namespace {

std::uint32_t reverse_bits(std::uint32_t v, int nbits) {
  std::uint32_t out = 0;
  for (int i = 0; i < nbits; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

}  // namespace

HuffmanCode HuffmanCode::from_frequencies(
    std::span<const std::uint64_t> freqs) {
  MLOC_CHECK(!freqs.empty() && freqs.size() <= 512);
  HuffmanCode hc;
  hc.len_.assign(freqs.size(), 0);

  // Collect used symbols.
  std::vector<int> used;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) used.push_back(static_cast<int>(s));
  }
  MLOC_CHECK_MSG(!used.empty(), "Huffman over empty frequency table");
  if (used.size() == 1) {
    hc.len_[used[0]] = 1;
    hc.assign_canonical_codes();
    hc.build_decode_table();
    return hc;
  }

  // Heap-based Huffman tree; node ids: [0, n) leaves, then internal.
  struct Node {
    std::uint64_t freq;
    int id;
  };
  auto cmp = [](const Node& a, const Node& b) {
    return a.freq > b.freq || (a.freq == b.freq && a.id > b.id);
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
  std::vector<int> parent(2 * used.size() - 1, -1);
  for (std::size_t i = 0; i < used.size(); ++i) {
    heap.push({freqs[used[i]], static_cast<int>(i)});
  }
  int next_id = static_cast<int>(used.size());
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    parent[a.id] = next_id;
    parent[b.id] = next_id;
    heap.push({a.freq + b.freq, next_id});
    ++next_id;
  }

  // Depth of each leaf = code length.
  std::vector<int> depth(used.size(), 0);
  for (std::size_t i = 0; i < used.size(); ++i) {
    int d = 0;
    for (int n = static_cast<int>(i); parent[n] != -1; n = parent[n]) ++d;
    depth[i] = d;
  }

  // Limit code lengths to kMaxCodeLen (zlib-style rebalancing): demote
  // overlong codes to kMaxCodeLen, then restore the Kraft equality by
  // deepening the shallowest over-allocated level.
  std::vector<int> bl_count(kMaxCodeLen + 1, 0);
  for (std::size_t i = 0; i < used.size(); ++i) {
    depth[i] = std::min(depth[i], kMaxCodeLen);
    ++bl_count[depth[i]];
  }
  // Kraft sum in units of 2^-kMaxCodeLen.
  auto kraft = [&] {
    std::int64_t sum = 0;
    for (int l = 1; l <= kMaxCodeLen; ++l) {
      sum += static_cast<std::int64_t>(bl_count[l]) << (kMaxCodeLen - l);
    }
    return sum;
  };
  const std::int64_t budget = 1ll << kMaxCodeLen;
  while (kraft() > budget) {
    // Find a code at the deepest non-max level and push it one deeper;
    // equivalently zlib moves one node from max-1... standard fix:
    int l = kMaxCodeLen - 1;
    while (bl_count[l] == 0) --l;
    --bl_count[l];
    ++bl_count[l + 1];
  }
  // Re-assign lengths: sort symbols by original depth (stable by frequency
  // order), hand out lengths from the adjusted histogram shallow-first to
  // the most frequent symbols.
  std::vector<std::size_t> order(used.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return freqs[used[a]] > freqs[used[b]];
  });
  std::vector<int> lengths_sorted;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    for (int c = 0; c < bl_count[l]; ++c) lengths_sorted.push_back(l);
  }
  MLOC_CHECK(lengths_sorted.size() == used.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    hc.len_[used[order[i]]] = static_cast<std::uint8_t>(lengths_sorted[i]);
  }

  hc.assign_canonical_codes();
  hc.build_decode_table();
  return hc;
}

Result<HuffmanCode> HuffmanCode::from_lengths(
    std::span<const std::uint8_t> lengths) {
  if (lengths.empty() || lengths.size() > 512) {
    return corrupt_data("Huffman alphabet size out of range");
  }
  HuffmanCode hc;
  hc.len_.assign(lengths.begin(), lengths.end());
  std::int64_t kraft_sum = 0;
  bool any = false;
  for (auto l : lengths) {
    if (l > kMaxCodeLen) return corrupt_data("Huffman code length > 15");
    if (l > 0) {
      any = true;
      kraft_sum += 1ll << (kMaxCodeLen - l);
    }
  }
  if (!any) return corrupt_data("Huffman table has no symbols");
  if (kraft_sum > (1ll << kMaxCodeLen)) {
    return corrupt_data("Huffman lengths over-subscribed");
  }
  hc.assign_canonical_codes();
  hc.build_decode_table();
  return hc;
}

void HuffmanCode::assign_canonical_codes() {
  code_.assign(len_.size(), 0);
  max_len_ = 0;
  for (auto l : len_) max_len_ = std::max<int>(max_len_, l);

  std::vector<int> bl_count(max_len_ + 1, 0);
  for (auto l : len_) {
    if (l > 0) ++bl_count[l];
  }
  std::vector<std::uint32_t> next_code(max_len_ + 2, 0);
  std::uint32_t code = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code + bl_count[l - 1]) << 1;
    next_code[l] = code;
  }
  for (std::size_t s = 0; s < len_.size(); ++s) {
    if (len_[s] == 0) continue;
    // Canonical code is MSB-first; the bitstream is LSB-first, so store the
    // reversed pattern for both encode and table-driven decode.
    code_[s] = reverse_bits(next_code[len_[s]]++, len_[s]);
  }
}

void HuffmanCode::build_decode_table() {
  decode_table_.assign(1ull << max_len_, -1);
  for (std::size_t s = 0; s < len_.size(); ++s) {
    const int l = len_[s];
    if (l == 0) continue;
    const std::uint32_t base = code_[s];
    const std::uint32_t step = 1u << l;
    for (std::uint32_t w = base; w < decode_table_.size();
         w += step) {
      decode_table_[w] = static_cast<std::int16_t>(s);
    }
    if (static_cast<std::size_t>(l) == static_cast<std::size_t>(max_len_)) {
      decode_table_[base] = static_cast<std::int16_t>(s);
    }
  }
}

void HuffmanCode::serialize_lengths(ByteWriter& w) const {
  // Nibble-packed lengths (each <= 15). Alphabet size is implied by caller.
  for (std::size_t i = 0; i < len_.size(); i += 2) {
    const std::uint8_t lo = len_[i];
    const std::uint8_t hi = (i + 1 < len_.size()) ? len_[i + 1] : 0;
    w.put_u8(static_cast<std::uint8_t>(lo | (hi << 4)));
  }
}

Result<std::vector<std::uint8_t>> HuffmanCode::deserialize_lengths(
    ByteReader& r, std::size_t alphabet_size) {
  std::vector<std::uint8_t> lengths(alphabet_size, 0);
  for (std::size_t i = 0; i < alphabet_size; i += 2) {
    MLOC_ASSIGN_OR_RETURN(std::uint8_t packed, r.get_u8());
    lengths[i] = packed & 0x0F;
    if (i + 1 < alphabet_size) lengths[i + 1] = packed >> 4;
  }
  return lengths;
}

}  // namespace mloc
