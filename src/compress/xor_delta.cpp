#include "compress/xor_delta.hpp"

#include <cstring>

#include "compress/mzip.hpp"

namespace mloc {

Result<Bytes> XorDeltaCodec::encode(std::span<const double> values) const {
  ByteWriter out;
  out.put_varint(values.size());
  if (values.empty()) return std::move(out).take();

  Bytes lens;     // per-value count of significant (non-leading-zero) bytes
  Bytes payload;  // significant bytes, low-order first
  lens.reserve(values.size());

  std::uint64_t prev = 0;
  for (double v : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    std::uint64_t residual = bits ^ prev;
    prev = bits;
    int nbytes = 8;
    while (nbytes > 0 && (residual >> (8 * (nbytes - 1))) == 0) --nbytes;
    lens.push_back(static_cast<std::uint8_t>(nbytes));
    for (int b = 0; b < nbytes; ++b) {
      payload.push_back(static_cast<std::uint8_t>(residual >> (8 * b)));
    }
  }

  const MzipCodec mzip;
  MLOC_ASSIGN_OR_RETURN(Bytes lens_packed, mzip.encode(lens));
  MLOC_ASSIGN_OR_RETURN(Bytes payload_packed, mzip.encode(payload));
  out.put_varint(lens_packed.size());
  out.put_bytes(lens_packed);
  out.put_varint(payload_packed.size());
  out.put_bytes(payload_packed);
  return std::move(out).take();
}

Result<std::vector<double>> XorDeltaCodec::decode(
    std::span<const std::uint8_t> stream) const {
  ByteReader r(stream);
  MLOC_ASSIGN_OR_RETURN(std::uint64_t count, r.get_varint());
  if (count == 0) return std::vector<double>{};
  if (count > (1ull << 37)) return corrupt_data("xor-delta: implausible count");

  const MzipCodec mzip;
  MLOC_ASSIGN_OR_RETURN(std::uint64_t lens_len, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(auto lens_packed, r.get_bytes(lens_len));
  MLOC_ASSIGN_OR_RETURN(Bytes lens, mzip.decode(lens_packed));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t payload_len, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(auto payload_packed, r.get_bytes(payload_len));
  MLOC_ASSIGN_OR_RETURN(Bytes payload, mzip.decode(payload_packed));

  if (lens.size() != count) return corrupt_data("xor-delta: length stream size");
  std::vector<double> out(count);
  std::size_t p = 0;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const int nbytes = lens[i];
    if (nbytes > 8 || p + nbytes > payload.size()) {
      return corrupt_data("xor-delta: payload truncated");
    }
    std::uint64_t residual = 0;
    for (int b = 0; b < nbytes; ++b) {
      residual |= static_cast<std::uint64_t>(payload[p++]) << (8 * b);
    }
    prev ^= residual;
    std::memcpy(&out[i], &prev, sizeof prev);
  }
  if (p != payload.size()) return corrupt_data("xor-delta: trailing payload");
  return out;
}

}  // namespace mloc
