// Cubic B-spline least-squares fitting of 1-D sequences.
//
// The numerical core of the ISABELA-like codec: after sorting, a window of
// doubles becomes a smooth monotone curve that a low-order spline captures
// with a handful of coefficients. Fitting uses a clamped uniform knot
// vector on [0,1] and solves the (small, dense) normal equations.
#pragma once

#include <span>
#include <vector>

namespace mloc {

class CubicBSpline {
 public:
  /// Fit `num_coeffs` control coefficients to samples y_i at parameters
  /// u_i = i/(n-1). Preconditions: num_coeffs >= 4, n >= 1.
  static CubicBSpline fit(std::span<const double> y, int num_coeffs);

  /// Construct directly from coefficients (decode path).
  explicit CubicBSpline(std::vector<double> coeffs);

  /// Evaluate at u in [0, 1].
  [[nodiscard]] double evaluate(double u) const;

  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coeffs_;
  }

  /// Basis values of the 4 active splines at u: returns the first active
  /// coefficient index and fills basis[0..3]. Exposed for the fitter and
  /// for tests of partition-of-unity.
  void active_basis(double u, int* first, double basis[4]) const;

 private:
  std::vector<double> coeffs_;
  std::vector<double> knots_;  // clamped uniform knot vector on [0,1]

  void build_knots();
};

}  // namespace mloc
