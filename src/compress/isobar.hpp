// ISOBAR-like lossless compressor for double-precision buffers.
//
// Reimplements the mechanism of ISOBAR (Schendel et al., ICDE 2012), the
// lossless backend of MLOC-ISO: scientific doubles have high-entropy
// mantissa tails that defeat general-purpose compressors, but the sign/
// exponent/leading-mantissa byte planes are highly compressible. The
// preconditioner shreds the buffer into its 8 byte planes, estimates each
// plane's zero-order entropy, routes compressible planes through mzip and
// stores incompressible planes raw — avoiding wasted compression effort
// and the size inflation of compressing noise.
//
// Stream format: varint count; for each of 8 planes: 1 flag byte
// (0=raw, 1=mzip) + varint payload length + payload.
#pragma once

#include "compress/codec.hpp"
#include "compress/mzip.hpp"

namespace mloc {

class IsobarCodec final : public DoubleCodec {
 public:
  /// Planes whose estimated entropy is below `entropy_threshold` bits/byte
  /// are routed to mzip (ISOBAR's compressibility test).
  explicit IsobarCodec(double entropy_threshold = 7.0)
      : threshold_(entropy_threshold) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "isobar";
  }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] double max_relative_error() const noexcept override {
    return 0.0;
  }

  [[nodiscard]] Result<Bytes> encode(
      std::span<const double> values) const override;

  [[nodiscard]] Result<std::vector<double>> decode(
      std::span<const std::uint8_t> stream) const override;

  /// Zero-order entropy of a byte buffer in bits/byte (exposed for tests
  /// and the ablation bench).
  static double byte_entropy(std::span<const std::uint8_t> bytes);

 private:
  double threshold_;
  MzipCodec mzip_;
};

}  // namespace mloc
