#include "compress/isobar.hpp"

#include <array>
#include <cmath>
#include <cstring>

namespace mloc {
namespace {

constexpr std::uint8_t kPlaneRaw = 0;
constexpr std::uint8_t kPlaneMzip = 1;

}  // namespace

double IsobarCodec::byte_entropy(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return 0.0;
  std::array<std::uint64_t, 256> hist{};
  for (std::uint8_t b : bytes) ++hist[b];
  double entropy = 0.0;
  const double n = static_cast<double>(bytes.size());
  for (std::uint64_t c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

Result<Bytes> IsobarCodec::encode(std::span<const double> values) const {
  ByteWriter out;
  out.put_varint(values.size());
  if (values.empty()) return std::move(out).take();

  // Shred into byte planes: plane p holds byte p of every value
  // (little-endian, so plane 7 = sign+exponent-high byte).
  std::array<Bytes, 8> planes;
  for (auto& p : planes) p.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof bits);
    for (int p = 0; p < 8; ++p) {
      planes[p][i] = static_cast<std::uint8_t>(bits >> (8 * p));
    }
  }

  for (int p = 0; p < 8; ++p) {
    const bool compressible = byte_entropy(planes[p]) < threshold_;
    if (compressible) {
      MLOC_ASSIGN_OR_RETURN(Bytes packed, mzip_.encode(planes[p]));
      // Guard against pathological inputs where mzip still inflates.
      if (packed.size() < planes[p].size()) {
        out.put_u8(kPlaneMzip);
        out.put_varint(packed.size());
        out.put_bytes(packed);
        continue;
      }
    }
    out.put_u8(kPlaneRaw);
    out.put_varint(planes[p].size());
    out.put_bytes(planes[p]);
  }
  return std::move(out).take();
}

Result<std::vector<double>> IsobarCodec::decode(
    std::span<const std::uint8_t> stream) const {
  ByteReader r(stream);
  MLOC_ASSIGN_OR_RETURN(std::uint64_t count, r.get_varint());
  if (count == 0) {
    if (!r.exhausted()) return corrupt_data("isobar: trailing bytes");
    return std::vector<double>{};
  }
  if (count > (1ull << 37)) return corrupt_data("isobar: implausible count");

  std::array<Bytes, 8> planes;
  for (int p = 0; p < 8; ++p) {
    MLOC_ASSIGN_OR_RETURN(std::uint8_t flag, r.get_u8());
    MLOC_ASSIGN_OR_RETURN(std::uint64_t len, r.get_varint());
    MLOC_ASSIGN_OR_RETURN(auto payload, r.get_bytes(len));
    if (flag == kPlaneMzip) {
      MLOC_ASSIGN_OR_RETURN(planes[p], mzip_.decode(payload));
    } else if (flag == kPlaneRaw) {
      planes[p].assign(payload.begin(), payload.end());
    } else {
      return corrupt_data("isobar: unknown plane flag");
    }
    if (planes[p].size() != count) {
      return corrupt_data("isobar: plane size mismatches count");
    }
  }

  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    for (int p = 0; p < 8; ++p) {
      bits |= static_cast<std::uint64_t>(planes[p][i]) << (8 * p);
    }
    std::memcpy(&out[i], &bits, sizeof bits);
  }
  return out;
}

}  // namespace mloc
