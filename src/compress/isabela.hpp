// ISABELA-like error-bounded lossy compressor for double buffers.
//
// Reimplements the mechanism of ISABELA (Lakshminarasimhan et al.,
// Euro-Par 2011), the lossy backend of MLOC-ISA. Per fixed-size window:
//   1. sort the values — turbulent data becomes a smooth monotone curve;
//   2. least-squares fit a cubic B-spline (few coefficients) to that curve;
//   3. store the sort permutation bit-packed (ceil(log2 W) bits/point);
//   4. store a per-point quantized log-ratio correction that guarantees
//      |decoded - original| <= error_bound * |original| point-wise.
// Values the multiplicative scheme cannot bound (zeros, sign flips across
// the fit, non-finite values) are stored verbatim in an exception list.
// Correction integers cluster near zero, so the concatenated zigzag-varint
// buffer is further squeezed with mzip.
#pragma once

#include "compress/codec.hpp"

namespace mloc {

class IsabelaCodec final : public DoubleCodec {
 public:
  struct Options {
    double error_bound = 0.01;  ///< max point-wise relative error
    int window = 1024;          ///< values per sorted window
    int coefficients = 30;      ///< B-spline coefficients per window
  };

  IsabelaCodec() : IsabelaCodec(Options{}) {}
  explicit IsabelaCodec(Options opts);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "isabela";
  }
  [[nodiscard]] bool lossless() const noexcept override { return false; }
  [[nodiscard]] double max_relative_error() const noexcept override {
    return opts_.error_bound;
  }

  [[nodiscard]] Result<Bytes> encode(
      std::span<const double> values) const override;

  [[nodiscard]] Result<std::vector<double>> decode(
      std::span<const std::uint8_t> stream) const override;

 private:
  Options opts_;
};

}  // namespace mloc
