// FPZip-flavoured lossless predictive float codec.
//
// Paper §III-B-4 lists FPZip as a pluggable compressor "specifically
// designed for floating point numbers". This reproduction implements the
// family's core mechanism: predict each double from its predecessor, XOR
// the bit patterns (smooth fields give XOR residuals with many leading
// zero bytes), and encode each residual as a 1-byte leading-zero count
// followed by only the significant bytes. The significant-byte stream is
// further entropy-packed with mzip.
#pragma once

#include "compress/codec.hpp"

namespace mloc {

class XorDeltaCodec final : public DoubleCodec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "xor-delta";
  }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] double max_relative_error() const noexcept override {
    return 0.0;
  }

  [[nodiscard]] Result<Bytes> encode(
      std::span<const double> values) const override;

  [[nodiscard]] Result<std::vector<double>> decode(
      std::span<const std::uint8_t> stream) const override;
};

}  // namespace mloc
