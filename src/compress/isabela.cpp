#include "compress/isabela.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "compress/bitstream.hpp"
#include "compress/bspline.hpp"
#include "compress/mzip.hpp"

namespace mloc {
namespace {

int bits_for(std::uint32_t n) {
  int b = 0;
  while ((1u << b) < n) ++b;
  return b;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

IsabelaCodec::IsabelaCodec(Options opts) : opts_(opts) {
  MLOC_CHECK(opts_.error_bound > 0.0 && opts_.error_bound < 1.0);
  MLOC_CHECK(opts_.window >= 8);
  MLOC_CHECK(opts_.coefficients >= 4);
}

Result<Bytes> IsabelaCodec::encode(std::span<const double> values) const {
  ByteWriter out;
  out.put_varint(values.size());
  out.put_f64(opts_.error_bound);
  out.put_varint(static_cast<std::uint64_t>(opts_.window));
  out.put_varint(static_cast<std::uint64_t>(opts_.coefficients));
  if (values.empty()) return std::move(out).take();

  const double log_step = std::log1p(opts_.error_bound);
  ByteWriter corrections;   // zigzag varints, all windows concatenated
  ByteWriter exceptions;    // (varint local index, f64), per window counted
  ByteWriter window_meta;   // per window: perm + coefficients + exc count

  std::vector<std::uint32_t> perm;
  std::vector<double> sorted;
  for (std::size_t base = 0; base < values.size();
       base += static_cast<std::size_t>(opts_.window)) {
    const auto n = static_cast<std::uint32_t>(std::min<std::size_t>(
        opts_.window, values.size() - base));
    auto win = values.subspan(base, n);

    // Sort order: sorted[i] = win[perm[i]].
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), 0u);
    std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
      const double va = win[a], vb = win[b];
      if (va != vb) return va < vb;
      return a < b;  // deterministic ties (and orders NaNs stably... NaNs
                     // compare false both ways, so index order applies)
    });
    sorted.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) sorted[i] = win[perm[i]];

    // Spline fit of the sorted curve. Non-finite values poison the normal
    // equations, so fit on a sanitized copy and except them below.
    std::vector<double> fit_input(sorted);
    for (auto& v : fit_input) {
      if (!std::isfinite(v)) v = 0.0;
    }
    const int k = std::min<int>(opts_.coefficients, std::max<int>(4, n));
    const CubicBSpline spline = CubicBSpline::fit(fit_input, k);

    // Permutation, bit-packed.
    const int pbits = bits_for(n);
    BitWriter packed;
    for (std::uint32_t p : perm) packed.put_bits(p, pbits);
    packed.finish();

    window_meta.put_varint(n);
    window_meta.put_bytes(packed.bytes());
    window_meta.put_varint(static_cast<std::uint64_t>(k));
    for (double cc : spline.coefficients()) window_meta.put_f64(cc);

    // Corrections + exceptions.
    ByteWriter win_exceptions;
    std::uint32_t exc_count = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const double orig = sorted[i];
      const double u = (n == 1) ? 0.0 : static_cast<double>(i) / (n - 1);
      const double approx = spline.evaluate(u);
      std::int64_t kq = 0;
      bool exception = false;
      if (!std::isfinite(orig) || orig == 0.0 || approx == 0.0 ||
          (orig > 0) != (approx > 0)) {
        exception = true;
      } else {
        const double ratio = orig / approx;  // > 0 by the sign check
        const double kf = std::log(ratio) / log_step;
        if (std::abs(kf) > 1e9) {
          exception = true;
        } else {
          kq = static_cast<std::int64_t>(std::llround(kf));
          // Verify the bound actually holds after rounding (floating-point
          // edge cases near the bound fall back to exceptions).
          const double rec = approx * std::exp(static_cast<double>(kq) * log_step);
          if (std::abs(rec - orig) > opts_.error_bound * std::abs(orig)) {
            exception = true;
          }
        }
      }
      if (exception) {
        corrections.put_varint(zigzag(0));
        win_exceptions.put_varint(i);
        win_exceptions.put_f64(orig);
        ++exc_count;
      } else {
        corrections.put_varint(zigzag(kq));
      }
    }
    exceptions.put_varint(exc_count);
    exceptions.put_bytes(win_exceptions.bytes());
  }

  // Assemble: window metadata, mzip-packed corrections, exceptions.
  const Bytes meta = std::move(window_meta).take();
  out.put_varint(meta.size());
  out.put_bytes(meta);

  const MzipCodec mzip;
  MLOC_ASSIGN_OR_RETURN(Bytes corr_packed, mzip.encode(corrections.bytes()));
  out.put_varint(corr_packed.size());
  out.put_bytes(corr_packed);

  const Bytes exc = std::move(exceptions).take();
  out.put_varint(exc.size());
  out.put_bytes(exc);
  return std::move(out).take();
}

Result<std::vector<double>> IsabelaCodec::decode(
    std::span<const std::uint8_t> stream) const {
  ByteReader r(stream);
  MLOC_ASSIGN_OR_RETURN(std::uint64_t count, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(double error_bound, r.get_f64());
  MLOC_ASSIGN_OR_RETURN(std::uint64_t window, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(std::uint64_t coefficients, r.get_varint());
  (void)coefficients;
  if (count == 0) return std::vector<double>{};
  if (count > (1ull << 37) || window == 0) {
    return corrupt_data("isabela: implausible header");
  }
  const double log_step = std::log1p(error_bound);
  if (!(log_step > 0.0)) return corrupt_data("isabela: bad error bound");

  MLOC_ASSIGN_OR_RETURN(std::uint64_t meta_len, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(auto meta_bytes, r.get_bytes(meta_len));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t corr_len, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(auto corr_packed, r.get_bytes(corr_len));
  MLOC_ASSIGN_OR_RETURN(std::uint64_t exc_len, r.get_varint());
  MLOC_ASSIGN_OR_RETURN(auto exc_bytes, r.get_bytes(exc_len));

  const MzipCodec mzip;
  MLOC_ASSIGN_OR_RETURN(Bytes corr_raw, mzip.decode(corr_packed));
  ByteReader corr(corr_raw);
  ByteReader meta(meta_bytes);
  ByteReader exc(exc_bytes);

  std::vector<double> out(count);
  for (std::size_t base = 0; base < count;
       base += static_cast<std::size_t>(window)) {
    const auto expect_n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(window, count - base));
    MLOC_ASSIGN_OR_RETURN(std::uint64_t n64, meta.get_varint());
    if (n64 != expect_n) return corrupt_data("isabela: window size mismatch");
    const auto n = static_cast<std::uint32_t>(n64);

    const int pbits = bits_for(n);
    const std::size_t perm_bytes = (static_cast<std::size_t>(pbits) * n + 7) / 8;
    MLOC_ASSIGN_OR_RETURN(auto perm_span, meta.get_bytes(perm_bytes));
    BitReader perm_bits(perm_span);
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      perm[i] = static_cast<std::uint32_t>(perm_bits.get_bits(pbits));
      if (perm[i] >= n) return corrupt_data("isabela: permutation out of range");
    }

    MLOC_ASSIGN_OR_RETURN(std::uint64_t k, meta.get_varint());
    if (k < 4 || k > 4096) return corrupt_data("isabela: bad coefficient count");
    std::vector<double> coeffs(k);
    for (auto& cc : coeffs) {
      MLOC_ASSIGN_OR_RETURN(cc, meta.get_f64());
    }
    const CubicBSpline spline(std::move(coeffs));

    // Reconstruct sorted values.
    std::vector<double> sorted(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      MLOC_ASSIGN_OR_RETURN(std::uint64_t zz, corr.get_varint());
      const std::int64_t kq = unzigzag(zz);
      const double u = (n == 1) ? 0.0 : static_cast<double>(i) / (n - 1);
      const double approx = spline.evaluate(u);
      sorted[i] = approx * std::exp(static_cast<double>(kq) * log_step);
    }
    // Overlay exceptions (verbatim values).
    MLOC_ASSIGN_OR_RETURN(std::uint64_t exc_count, exc.get_varint());
    for (std::uint64_t e = 0; e < exc_count; ++e) {
      MLOC_ASSIGN_OR_RETURN(std::uint64_t idx, exc.get_varint());
      MLOC_ASSIGN_OR_RETURN(double v, exc.get_f64());
      if (idx >= n) return corrupt_data("isabela: exception index out of range");
      sorted[idx] = v;
    }
    // Inverse permutation: win[perm[i]] = sorted[i]. Duplicate targets
    // cannot happen for a valid permutation; reject if they do.
    std::vector<bool> seen(n, false);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (seen[perm[i]]) return corrupt_data("isabela: permutation not bijective");
      seen[perm[i]] = true;
      out[base + perm[i]] = sorted[i];
    }
  }
  if (!meta.exhausted() || !corr.exhausted() || !exc.exhausted()) {
    return corrupt_data("isabela: trailing section bytes");
  }
  return out;
}

}  // namespace mloc
