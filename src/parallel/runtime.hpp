// Rank-based parallel runtime — the MPI substitute.
//
// The paper distributes query processing over MPI processes (§III-D); this
// reproduction targets a single machine, so "ranks" are tasks:
//   * Each rank gets a RankContext carrying its private pfs::IoLog and a
//     measured-CPU ComponentTimes. Ranks execute deterministically.
//   * Execution is sequential by default: with per-rank CPU measured
//     independently, the parallel makespan of a phase is the max across
//     ranks (plus PFS-modeled I/O contention from the merged logs) — this
//     gives faithful scaling results even on a 1-core host.
//   * A ThreadPool is provided for genuinely concurrent work where wall
//     time is not being attributed per rank.
//
// Block-to-rank assignment follows the paper's column order: equal block
// counts per rank, blocks of one bin kept on as few ranks as possible so
// each rank opens the fewest bin files (§III-D, Fig. 5).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "pfs/pfs.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace mloc::parallel {

/// Per-rank execution state handed to rank bodies.
struct RankContext {
  int rank = 0;
  int num_ranks = 1;
  pfs::IoLog io_log;      ///< reads issued by this rank
  ComponentTimes times;   ///< measured decompress/reconstruct CPU
};

/// Execute fn(ctx) for ranks 0..num_ranks-1 (sequentially, deterministic
/// order) and return the per-rank contexts for aggregation.
std::vector<RankContext> run_ranks(
    int num_ranks, const std::function<void(RankContext&)>& fn);

/// Merge all per-rank logs into one (records keep their rank tags).
pfs::IoLog merged_io_log(const std::vector<RankContext>& ranks);

/// Max of measured per-rank ComponentTimes — phase makespan under the
/// ranks-synchronize-at-phase-barriers execution model.
ComponentTimes max_rank_times(const std::vector<RankContext>& ranks);

/// Split n items into `parts` contiguous chunks of near-equal size
/// (first n % parts chunks get one extra). Returns [begin, end) pairs.
std::vector<std::pair<std::size_t, std::size_t>> split_even(std::size_t n,
                                                            int parts);

/// Waitable handle for one submitted task (ThreadPool::submit_waitable).
/// wait() blocks until the task has run; an exception thrown by the task is
/// captured on the worker and rethrown from wait() — the safe path back to
/// the caller that plain submit() lacks (there an escaping exception
/// terminates the process). Handles are single-use: wait() at most once.
class TaskHandle {
 public:
  TaskHandle() = default;

  /// True until wait() consumes the handle.
  [[nodiscard]] bool valid() const noexcept { return future_.valid(); }

  /// Block until the task finished; rethrows the task's exception, if any.
  void wait() { future_.get(); }

 private:
  friend class ThreadPool;
  explicit TaskHandle(std::future<void> future)
      : future_(std::move(future)) {}

  std::future<void> future_;
};

/// Minimal fixed-size thread pool (used where per-rank attribution is not
/// needed, e.g. speculative codec trials in the ablation bench).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; runs on some worker thread.
  void submit(std::function<void()> task) MLOC_EXCLUDES(mutex_);

  /// Enqueue a task and get a handle that joins it individually, with
  /// exception propagation. Used by the ingest pipeline to fold encoded
  /// fragments per bin while later bins are still encoding (wait_idle
  /// would serialize on the whole queue).
  TaskHandle submit_waitable(std::function<void()> task) MLOC_EXCLUDES(mutex_);

  /// Block until every submitted task has finished.
  void wait_idle() MLOC_EXCLUDES(mutex_);

 private:
  void worker_loop() MLOC_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  sync::Mutex mutex_;
  sync::CondVar cv_task_;
  sync::CondVar cv_idle_;
  std::queue<std::function<void()>> queue_ MLOC_GUARDED_BY(mutex_);
  int in_flight_ MLOC_GUARDED_BY(mutex_) = 0;
  bool stopping_ MLOC_GUARDED_BY(mutex_) = false;
};

}  // namespace mloc::parallel
