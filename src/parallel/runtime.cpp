#include "parallel/runtime.hpp"

#include "util/assert.hpp"

namespace mloc::parallel {

std::vector<RankContext> run_ranks(
    int num_ranks, const std::function<void(RankContext&)>& fn) {
  MLOC_CHECK(num_ranks >= 1);
  std::vector<RankContext> contexts(num_ranks);
  for (int r = 0; r < num_ranks; ++r) {
    contexts[r].rank = r;
    contexts[r].num_ranks = num_ranks;
    fn(contexts[r]);
  }
  return contexts;
}

pfs::IoLog merged_io_log(const std::vector<RankContext>& ranks) {
  pfs::IoLog out;
  for (const auto& ctx : ranks) out.merge_from(ctx.io_log);
  return out;
}

ComponentTimes max_rank_times(const std::vector<RankContext>& ranks) {
  ComponentTimes out;
  for (const auto& ctx : ranks) out.max_with(ctx.times);
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> split_even(std::size_t n,
                                                            int parts) {
  MLOC_CHECK(parts >= 1);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(parts);
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  std::size_t begin = 0;
  for (int p = 0; p < parts; ++p) {
    const std::size_t len = base + (static_cast<std::size_t>(p) < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

ThreadPool::ThreadPool(int num_threads) {
  MLOC_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    sync::MutexLock lock(mutex_);
    MLOC_CHECK_MSG(!stopping_, "submit on stopping pool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

TaskHandle ThreadPool::submit_waitable(std::function<void()> task) {
  // packaged_task is move-only; std::function requires copyable targets, so
  // the queue entry holds it through a shared_ptr.
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  TaskHandle handle(packaged->get_future());
  submit([packaged] { (*packaged)(); });
  return handle;
}

void ThreadPool::wait_idle() {
  sync::MutexLock lock(mutex_);
  while (in_flight_ != 0) cv_idle_.wait(lock);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      sync::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_task_.wait(lock);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      sync::MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace mloc::parallel
