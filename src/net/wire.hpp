// Wire protocol for the MLOC query server — versioned, length-prefixed
// binary frames carrying QueryService requests and responses over a byte
// stream (src/net/server.cpp serves them over TCP; the codec itself is
// transport-agnostic and is what the fuzz/round-trip tests exercise).
//
// Every frame is a fixed 28-byte header followed by `payload_len` payload
// bytes:
//
//   offset  size  field
//        0     4  magic        0x434F4C4D ("MLOC" when read as LE bytes)
//        4     2  version      protocol version (kProtocolVersion)
//        6     2  type         FrameType
//        8     8  request_id   client-chosen; echoed on the response
//       16     4  payload_len  bytes following the header (<= kMaxPayload)
//       20     4  payload_crc  CRC-32 of the payload bytes
//       24     4  header_crc   CRC-32 of header bytes [0, 24)
//
// All integers are little-endian. The header CRC lets a receiver reject a
// corrupt header before trusting payload_len; the payload CRC catches
// damage to the body. Decoding never trusts a length before bounds-checking
// it, and a malformed frame yields a clean Status (CorruptData /
// Unsupported), never UB — the property tests flip/truncate bytes at every
// offset to enforce this.
//
// Versioning rules: kProtocolVersion bumps on any layout change to the
// header or an existing payload. Adding a new FrameType is *not* a version
// bump — receivers reject unknown types per-frame (Unsupported) while the
// connection stays usable. A server never answers a frame whose version it
// does not speak (the connection closes), so mixed-version pipelines fail
// fast instead of misparsing.
//
// Response payloads put the positions/values arrays *last*, as raw
// little-endian element bytes: the server sends them straight from the
// engine's fold buffers with scatter-gather writev (no serialization copy),
// and the CRC is computed incrementally across the pieces.
//
// Shared-memory fast path (net/shm.hpp): a co-located client can offer a
// per-connection shm ring (kShmOffer -> kShmAccept -> kShmAttach). Once
// attached, query-result payloads are written into ring slots and only a
// small kShmResult descriptor travels over TCP; the slot bytes are the
// exact kQueryResult payload, so decode_response parses either transport.
// Ring bytes carry no payload CRC — they cross shared memory, not a
// network — while the descriptor frame keeps the normal frame CRCs. The
// capability is negotiated per connection, never assumed, so non-shm
// peers are unaffected.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/shm.hpp"
#include "service/query_service.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace mloc::net {

inline constexpr std::uint32_t kMagic = 0x434F4C4Du;  // "MLOC" as LE bytes
/// v2: response prefix gained the via_shm transport flag and the STATS
/// payload gained per-transport counters (existing-payload layout changes,
/// hence the bump). The shm frames themselves are new types, not a bump.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kHeaderBytes = 28;
/// Upper bound on payload_len: rejects absurd lengths (corrupt or hostile
/// headers) before any allocation. 1 GiB comfortably covers the largest
/// query result the engine can produce on test datasets.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

enum class FrameType : std::uint16_t {
  // client -> server
  kOpenSession = 1,   ///< payload: label string  -> kSessionOpened
  kCloseSession = 2,  ///< payload: empty         -> kAck
  kQuery = 3,         ///< payload: Request       -> kQueryResult
  kCancel = 4,        ///< payload: target request_id (u64) -> kAck
  kStats = 5,         ///< payload: empty         -> kStatsResult
  kSessionStats = 6,  ///< payload: empty         -> kSessionStatsResult
  kPing = 7,          ///< payload: empty         -> kPong
  kListVariables = 8, ///< payload: empty         -> kVariableList
  kShmOffer = 9,      ///< payload: ring_bytes    -> kShmAccept | kAck(error)
  kShmAttach = 10,    ///< payload: mapped flag   -> kAck
  // server -> client
  kSessionOpened = 64,      ///< payload: SessionId (u64)
  kQueryResult = 65,        ///< payload: Response
  kStatsResult = 66,        ///< payload: AggregateStats + cache Stats
  kSessionStatsResult = 67, ///< payload: SessionStats
  kAck = 68,                ///< payload: Status
  kPong = 69,               ///< payload: empty
  kVariableList = 70,       ///< payload: per-variable name + layout
  kShmAccept = 71,          ///< payload: segment name + geometry + token
  kShmResult = 72,          ///< payload: ring descriptor (response in shm)
};

/// True for the FrameType values this protocol version defines.
[[nodiscard]] bool frame_type_known(std::uint16_t raw) noexcept;

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  FrameType type = FrameType::kPing;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// Serialize `h` into exactly kHeaderBytes at `out` (header CRC included).
void encode_header(const FrameHeader& h, std::uint8_t* out) noexcept;

/// Validate magic, header CRC, version, frame type, and payload bound.
/// `bytes` must hold at least kHeaderBytes. Unknown type yields Unsupported
/// (skippable frame, connection still parseable); everything else
/// CorruptData.
Result<FrameHeader> decode_header(std::span<const std::uint8_t> bytes);

/// Check `payload` against the header's length and CRC.
Status verify_payload(const FrameHeader& h,
                      std::span<const std::uint8_t> payload);

/// Assemble a complete frame (header + payload) for small messages.
Bytes encode_frame(FrameType type, std::uint64_t request_id,
                   std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------- payloads

Bytes encode_open_session(std::string_view label);
Result<std::string> decode_open_session(std::span<const std::uint8_t> p);

Bytes encode_session_opened(service::SessionId id);
Result<service::SessionId> decode_session_opened(
    std::span<const std::uint8_t> p);

Bytes encode_request(const service::Request& req);
Result<service::Request> decode_request(std::span<const std::uint8_t> p);

Bytes encode_cancel(std::uint64_t target_request_id);
Result<std::uint64_t> decode_cancel(std::span<const std::uint8_t> p);

/// The Status carried by an kAck frame, wrapped so decode failure (outer
/// Result) stays distinguishable from a carried error (inner Status).
struct Ack {
  Status carried;
};

Bytes encode_status(const Status& st);
Result<Ack> decode_status(std::span<const std::uint8_t> p);

/// A response frame split for scatter-gather sending: `head` holds the
/// frame header plus every payload field up to the arrays; the arrays are
/// sent directly from the vectors (zero-copy from the engine's fold
/// buffers). The header's payload_len/payload_crc cover all three pieces.
struct EncodedResponse {
  Bytes head;
  std::vector<std::uint64_t> positions;
  std::vector<double> values;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return head.size() + positions.size() * sizeof(std::uint64_t) +
           values.size() * sizeof(double);
  }
};

/// Consumes `resp` (moves the result arrays out instead of copying them).
EncodedResponse encode_response_frame(std::uint64_t request_id,
                                      service::Response resp);

/// The kQueryResult payload minus the trailing arrays, for callers that
/// place the payload somewhere other than a TCP frame (the shm ring):
/// prefix bytes followed by the raw position/value element bytes are
/// exactly what decode_response parses.
Bytes encode_response_prefix(const service::Response& resp);

/// Inverse of encode_response_frame's payload (head payload + arrays).
Result<service::Response> decode_response(std::span<const std::uint8_t> p);

/// Service aggregates plus the fragment-cache counters in one frame, so a
/// remote reader gets the same coherent snapshot an in-process caller does.
struct StatsSnapshot {
  service::AggregateStats agg;
  service::FragmentCache::Stats cache;
};

Bytes encode_stats(const StatsSnapshot& s);
Result<StatsSnapshot> decode_stats(std::span<const std::uint8_t> p);

Bytes encode_session_stats(const service::SessionStats& s);
Result<service::SessionStats> decode_session_stats(
    std::span<const std::uint8_t> p);

// ------------------------------------------------- shm transport frames

/// kShmOffer: the ring size the client proposes (the server clamps it).
Bytes encode_shm_offer(std::uint64_t ring_bytes);
Result<std::uint64_t> decode_shm_offer(std::span<const std::uint8_t> p);

/// kShmAccept: the created segment's identity and geometry (net/shm.hpp).
Bytes encode_shm_accept(const ShmInfo& info);
Result<ShmInfo> decode_shm_accept(std::span<const std::uint8_t> p);

/// kShmAttach: whether the client mapped and validated the segment.
/// mapped=false reports a clean fallback — the server tears the segment
/// down and the connection stays on TCP.
Bytes encode_shm_attach(bool mapped);
Result<bool> decode_shm_attach(std::span<const std::uint8_t> p);

/// kShmResult payload: where in the ring the response payload lives.
/// `release` is the producer cursor after the allocation — the value the
/// client stores into `consumed` once it has copied the bytes out.
struct ShmDescriptor {
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  std::uint64_t release = 0;
};

Bytes encode_shm_result(const ShmDescriptor& d);
Result<ShmDescriptor> decode_shm_result(std::span<const std::uint8_t> p);

/// The store's per-variable inventory (MlocStore::describe_all), so a
/// remote reader can audit a mixed-layout store without filesystem
/// access. Layouts travel in their meta-v3 serialized form.
Bytes encode_variable_list(const std::vector<MlocStore::VariableDesc>& vars);
Result<std::vector<MlocStore::VariableDesc>> decode_variable_list(
    std::span<const std::uint8_t> p);

}  // namespace mloc::net
